//===- examples/producer_consumer.cpp - The paper's motivating pattern ----===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The producer-consumer sharing pattern is the paper's running example of
// why pure per-thread heaps fail ("it can lead to unbounded memory
// consumption ... even when the program's memory needs are in fact very
// small", §1) and the workload of Fig. 8(f-h). Here one producer thread
// allocates task objects and pushes them through a lock-free FIFO; the
// consumers process and FREE them — every block dies on a different
// thread than it was born on, and the allocator's space stays bounded.
//
// Build & run:  ./build/examples/producer_consumer [seconds]
//
//===----------------------------------------------------------------------===//

#include "baselines/AllocatorInterface.h"
#include "harness/Workloads.h"

#include <cstdio>
#include <cstdlib>

int main(int Argc, char **Argv) {
  const double Seconds = Argc > 1 ? std::atof(Argv[1]) : 1.0;
  auto Alloc = lfm::makeAllocator(lfm::AllocatorKind::LockFree, 4);

  std::printf("1 producer + 3 consumers, lock-free FIFO, %.1f s...\n",
              Seconds);
  const lfm::WorkloadResult R =
      lfm::runProducerConsumer(*Alloc, /*Threads=*/4, /*Work=*/500, Seconds,
                               /*DatabaseSize=*/1u << 18);

  const lfm::PageStats Space = Alloc->pageStats();
  std::printf("tasks processed: %llu (%.0f tasks/s)\n",
              static_cast<unsigned long long>(R.Ops), R.throughput());
  std::printf("every task = 4 cross-thread frees; peak space stayed at "
              "%.2f MB\n",
              static_cast<double>(Space.PeakBytes) / 1048576);
  std::printf("(a pure per-thread-heap allocator grows without bound "
              "under this pattern)\n");
  return 0;
}
