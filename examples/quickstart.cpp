//===- examples/quickstart.cpp - First steps with lfmalloc ----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Minimal tour of the public API:
//   1. the process-global lfMalloc/lfFree facade,
//   2. an LFAllocator instance with custom options and statistics,
//   3. the space meter behind the paper's §4.2.5 experiment.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/LFMalloc.h"

#include <cstdio>
#include <cstring>

int main() {
  // --- 1. The malloc/free-shaped facade. -------------------------------
  char *Greeting = static_cast<char *>(lfm::lfMalloc(64));
  std::snprintf(Greeting, 64, "hello from a completely lock-free malloc");
  std::printf("%s (usable size %zu)\n", Greeting,
              lfm::lfUsableSize(Greeting));
  Greeting = static_cast<char *>(lfm::lfRealloc(Greeting, 4096));
  std::printf("after realloc: usable size %zu\n",
              lfm::lfUsableSize(Greeting));
  lfm::lfFree(Greeting);

  // calloc is overflow-checked and zeroing.
  int *Table = static_cast<int *>(lfm::lfCalloc(1000, sizeof(int)));
  std::printf("calloc zeroed: table[999] = %d\n", Table[999]);
  lfm::lfFree(Table);

  // --- 2. A dedicated allocator instance. ------------------------------
  lfm::AllocatorOptions Opts;
  Opts.NumHeaps = 4;        // Paper: one heap per processor.
  Opts.EnableStats = true;  // Count which malloc path serves each request.
  lfm::LFAllocator Alloc(Opts);

  enum { N = 10'000 };
  void *Blocks[N];
  for (int I = 0; I < N; ++I) {
    Blocks[I] = Alloc.allocate(static_cast<std::size_t>(I) % 256);
    std::memset(Blocks[I], 0xab, static_cast<std::size_t>(I) % 256);
  }
  for (int I = 0; I < N; ++I)
    Alloc.deallocate(Blocks[I]);

  const lfm::OpStats Stats = Alloc.opStats();
  std::printf("\n%d allocations through a 4-heap instance:\n", N);
  std::printf("  served from the active superblock (fast path): %llu\n",
              static_cast<unsigned long long>(Stats.FromActive));
  std::printf("  served from partial superblocks:               %llu\n",
              static_cast<unsigned long long>(Stats.FromPartial));
  std::printf("  needed a brand-new superblock:                 %llu\n",
              static_cast<unsigned long long>(Stats.FromNewSb));
  std::printf("  superblocks that became EMPTY and were freed:  %llu\n",
              static_cast<unsigned long long>(Stats.SbFreed));

  // --- 3. The space meter. ---------------------------------------------
  const lfm::PageStats Space = Alloc.pageStats();
  std::printf("\nspace: %.2f MB mapped now, %.2f MB at peak, %llu mmap "
              "calls\n",
              static_cast<double>(Space.BytesInUse) / 1048576,
              static_cast<double>(Space.PeakBytes) / 1048576,
              static_cast<unsigned long long>(Space.MapCalls));
  return 0;
}
