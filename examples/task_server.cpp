//===- examples/task_server.cpp - A realistic composed workload -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// A miniature in-memory "server" built entirely from this repository's
// lock-free parts — the class of application the paper's introduction
// motivates ("commercial database and web servers ... that require a high
// level of availability"):
//
//   - request intake:   lock-free MS queue (ExtNodeQueue) of tasks,
//   - session index:    lock-free hash set of live session ids,
//   - all payloads:     the lock-free allocator (variable-size request
//                       bodies, fixed-size task structs, queue nodes),
//   - N worker threads consuming, 1 intake thread producing; every byte
//     is freed on a different thread than allocated it.
//
// Nothing in the request path can deadlock, and a worker stalled (or
// killed) mid-request cannot wedge intake — the properties the paper
// trades a few nanoseconds of contention-free latency for.
//
// Build & run:  ./build/examples/task_server [seconds] [workers]
//
//===----------------------------------------------------------------------===//

#include "baselines/AllocatorInterface.h"
#include "harness/ExtNodeQueue.h"
#include "lockfree/MichaelHashSet.h"
#include "support/Random.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

/// A "request": session id plus a variable-length body.
struct Request {
  std::uint64_t Session;
  std::uint32_t BodyBytes;
  bool CloseSession;
  unsigned char Body[]; // Trailing payload.
};

struct ServerStats {
  std::atomic<std::uint64_t> Served{0};
  std::atomic<std::uint64_t> Opened{0};
  std::atomic<std::uint64_t> Closed{0};
  std::atomic<std::uint64_t> BytesProcessed{0};
};

} // namespace

int main(int Argc, char **Argv) {
  const double Seconds = Argc > 1 ? std::atof(Argv[1]) : 1.0;
  const unsigned Workers = Argc > 2
                               ? static_cast<unsigned>(std::atoi(Argv[2]))
                               : 3;

  auto Alloc = makeAllocator(AllocatorKind::LockFree, Workers + 1);
  ExtNodeQueue Intake(*Alloc);
  MichaelHashSet<std::uint64_t> Sessions(
      4096, HazardDomain::global(),
      NodeMemory{[](void *Ctx, std::size_t N) {
                   return static_cast<MallocInterface *>(Ctx)->malloc(N);
                 },
                 [](void *Ctx, void *P) {
                   static_cast<MallocInterface *>(Ctx)->free(P);
                 },
                 Alloc.get()});
  ServerStats Stats;
  std::atomic<bool> Stop{false};

  // Workers: parse, index the session, "process" the body, free it all.
  std::vector<std::thread> Pool;
  for (unsigned W = 0; W < Workers; ++W)
    Pool.emplace_back([&] {
      void *Payload = nullptr;
      while (!Stop.load(std::memory_order_acquire)) {
        if (!Intake.dequeue(Payload)) {
          cpuRelax();
          continue;
        }
        auto *Req = static_cast<Request *>(Payload);
        if (Sessions.insert(Req->Session))
          Stats.Opened.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t Sum = 0;
        for (std::uint32_t I = 0; I < Req->BodyBytes; ++I)
          Sum += Req->Body[I];
        if (Req->CloseSession && Sessions.remove(Req->Session))
          Stats.Closed.fetch_add(1, std::memory_order_relaxed);
        Stats.BytesProcessed.fetch_add(Sum ? Req->BodyBytes
                                           : Req->BodyBytes,
                                       std::memory_order_relaxed);
        Stats.Served.fetch_add(1, std::memory_order_relaxed);
        Alloc->free(Req); // Freed by a different thread than allocated.
      }
    });

  // Intake: allocate a request of random size, enqueue it.
  std::thread IntakeThread([&] {
    XorShift128 Rng(2026);
    while (!Stop.load(std::memory_order_acquire)) {
      if (Intake.approxSize() > 512) {
        cpuRelax(); // Backpressure.
        continue;
      }
      const std::uint32_t BodyBytes =
          static_cast<std::uint32_t>(Rng.nextInRange(16, 1500));
      auto *Req = static_cast<Request *>(
          Alloc->malloc(sizeof(Request) + BodyBytes));
      if (!Req)
        continue;
      Req->Session = Rng.nextBounded(10'000);
      Req->BodyBytes = BodyBytes;
      Req->CloseSession = Rng.nextBounded(4) == 0;
      std::memset(Req->Body, static_cast<int>(BodyBytes & 0xff),
                  BodyBytes);
      Intake.enqueue(Req);
    }
  });

  std::this_thread::sleep_for(std::chrono::duration<double>(Seconds));
  Stop.store(true, std::memory_order_release);
  IntakeThread.join();
  for (auto &W : Pool)
    W.join();

  // Drain what intake produced after the workers left.
  void *Payload = nullptr;
  while (Intake.dequeue(Payload))
    Alloc->free(Payload);

  std::printf("task server: %u workers, %.1f s\n", Workers, Seconds);
  std::printf("  requests served:   %llu (%.0f/s)\n",
              static_cast<unsigned long long>(Stats.Served.load()),
              Stats.Served.load() / Seconds);
  std::printf("  body bytes:        %.1f MB\n",
              Stats.BytesProcessed.load() / 1048576.0);
  std::printf("  sessions opened:   %llu, closed: %llu, live: %lld\n",
              static_cast<unsigned long long>(Stats.Opened.load()),
              static_cast<unsigned long long>(Stats.Closed.load()),
              static_cast<long long>(Sessions.size()));
  const PageStats Space = Alloc->pageStats();
  std::printf("  allocator peak:    %.2f MB across queue nodes, request "
              "bodies, and index nodes\n",
              static_cast<double>(Space.PeakBytes) / 1048576);
  return 0;
}
