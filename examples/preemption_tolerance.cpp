//===- examples/preemption_tolerance.cpp - Locks vs lock-freedom ----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Demonstrates the paper's preemption-tolerance claim (§1): "When a thread
// is preempted while holding a mutual exclusion lock, other threads
// waiting for the same lock either spin uselessly ... Lock-free
// synchronization offers preemption-tolerant performance, regardless of
// arbitrary thread scheduling."
//
// We oversubscribe the machine (many more threads than cores) so the
// scheduler constantly preempts threads mid-operation. The single-lock
// allocator's throughput craters — preempted lock holders stall everyone —
// while the lock-free allocator's throughput barely moves.
//
// Build & run:  ./build/examples/preemption_tolerance
//
//===----------------------------------------------------------------------===//

#include "baselines/AllocatorInterface.h"
#include "harness/Workloads.h"

#include <cstdio>
#include <thread>

int main() {
  using namespace lfm;
  const unsigned Cores = std::thread::hardware_concurrency();
  const std::uint64_t Pairs = 100'000;

  std::printf("machine has %u core(s); sweeping thread counts well beyond "
              "that\n\n",
              Cores);
  std::printf("%8s %18s %18s %10s\n", "threads", "lock-free pairs/s",
              "one-lock pairs/s", "ratio");

  for (unsigned Threads : {1u, 4u, 16u, 32u}) {
    auto LockFree = makeAllocator(AllocatorKind::LockFree, 4);
    const double LfTput =
        runLinuxScalability(*LockFree, Threads, Pairs).throughput();

    auto Locked = makeAllocator(AllocatorKind::SerialLock, 1);
    const double LockTput =
        runLinuxScalability(*Locked, Threads, Pairs).throughput();

    std::printf("%8u %18.0f %18.0f %9.1fx\n", Threads, LfTput, LockTput,
                LockTput > 0 ? LfTput / LockTput : 0);
  }
  std::printf("\nthe lock-free column stays flat under oversubscription; "
              "the lock column collapses\n(lock-holder preemption — the "
              "paper's §4.2.2, where libc hits 331x slower at 16p).\n");
  return 0;
}
