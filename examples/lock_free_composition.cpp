//===- examples/lock_free_composition.cpp - The paper's §5 payoff ---------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The paper's closing claim (§5): "this work, in combination with recent
// lock-free methods for safe memory reclamation and ABA prevention ...
// allows lock-free algorithms including efficient algorithms for
// important object types such as LIFO stacks, FIFO queues, and linked
// lists and hash tables to be both completely dynamic and completely
// lock-free."
//
// This example is that composition, end to end: a lock-free hash table
// (Michael's list-based sets) whose every node is allocated by the
// lock-free malloc and reclaimed through hazard pointers back into it.
// No lock anywhere in the stack — not in the table, not in the memory
// reclamation, not in the allocator.
//
// Build & run:  ./build/examples/lock_free_composition [seconds]
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "lockfree/MichaelHashSet.h"
#include "support/Random.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

void *allocNode(void *Ctx, std::size_t Bytes) {
  return static_cast<LFAllocator *>(Ctx)->allocate(Bytes);
}

void freeNode(void *Ctx, void *Ptr) {
  static_cast<LFAllocator *>(Ctx)->deallocate(Ptr);
}

} // namespace

int main(int Argc, char **Argv) {
  const double Seconds = Argc > 1 ? std::atof(Argv[1]) : 1.0;

  AllocatorOptions Opts;
  Opts.NumHeaps = 4;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);

  // Every hash-table node is an lfmalloc block; removal retires the node
  // via hazard pointers and only then hands it back to deallocate().
  MichaelHashSet<std::uint64_t> Table(
      1024, HazardDomain::global(),
      NodeMemory{allocNode, freeNode, &Alloc});

  constexpr unsigned Threads = 4;
  std::atomic<bool> Stop{false};
  std::vector<std::uint64_t> Ops(Threads, 0);
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      XorShift128 Rng(T + 42);
      std::uint64_t Count = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        const std::uint64_t K = Rng.nextBounded(100'000);
        switch (Rng.nextBounded(4)) {
        case 0:
        case 1:
          Table.insert(K);
          break;
        case 2:
          Table.remove(K);
          break;
        default:
          Table.contains(K);
        }
        ++Count;
      }
      Ops[T] = Count;
    });

  std::this_thread::sleep_for(std::chrono::duration<double>(Seconds));
  Stop.store(true, std::memory_order_release);
  for (auto &T : Ts)
    T.join();

  std::uint64_t Total = 0;
  for (std::uint64_t C : Ops)
    Total += C;
  const OpStats St = Alloc.opStats();
  std::printf("%u threads, %.1f s of mixed insert/remove/lookup on a "
              "lock-free hash table\n",
              Threads, Seconds);
  std::printf("table ops: %llu (%.0f ops/s), final size %lld\n",
              static_cast<unsigned long long>(Total), Total / Seconds,
              static_cast<long long>(Table.size()));
  std::printf("every node came from the lock-free allocator: %llu mallocs, "
              "%llu frees so far\n",
              static_cast<unsigned long long>(St.Mallocs),
              static_cast<unsigned long long>(St.Frees));
  std::printf("no locks anywhere: table, reclamation, and allocator are "
              "all lock-free (paper §5).\n");
  return 0;
}
