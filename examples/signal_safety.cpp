//===- examples/signal_safety.cpp - Async-signal-safe malloc --------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Demonstrates the paper's async-signal-safety claim (§1): "if a thread
// receives a signal while holding a user-level lock in the allocator, and
// if the signal handler calls the allocator ... then the allocator
// becomes deadlocked due to circular dependence." A lock-free allocator
// has no lock to hold, so a signal handler may call it freely — even when
// the signal interrupted the allocator itself.
//
// The main thread hammers lfMalloc/lfFree while SIGALRM fires every few
// milliseconds; the handler itself allocates and frees. With a lock-based
// allocator this would eventually deadlock (handler spins on a lock the
// interrupted frame holds); here it provably cannot.
//
// Build & run:  ./build/examples/signal_safety [seconds]
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFMalloc.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <sys/time.h>
#include <unistd.h>

namespace {

std::atomic<std::uint64_t> HandlerAllocs{0};

/// The signal handler allocates, writes, and frees — exactly what POSIX
/// forbids for malloc-based allocators (malloc is not on the
/// async-signal-safe list) and what lock-freedom makes legal here.
void onAlarm(int) {
  void *P = lfm::lfMalloc(48);
  if (P) {
    std::memset(P, 0x42, 48);
    lfm::lfFree(P);
    HandlerAllocs.fetch_add(1, std::memory_order_relaxed);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  const double Seconds = Argc > 1 ? std::atof(Argv[1]) : 1.0;

  // Warm the allocator before installing the handler so even the very
  // first signal lands on an initialized instance.
  lfm::lfFree(lfm::lfMalloc(1));

  struct sigaction Sa = {};
  Sa.sa_handler = onAlarm;
  sigaction(SIGALRM, &Sa, nullptr);

  // 2 ms recurring interval timer.
  itimerval Timer = {};
  Timer.it_interval.tv_usec = 2000;
  Timer.it_value.tv_usec = 2000;
  setitimer(ITIMER_REAL, &Timer, nullptr);

  std::printf("allocating on the main thread while SIGALRM's handler also "
              "allocates...\n");
  const std::time_t Deadline = std::time(nullptr) + (time_t)(Seconds + 1);
  std::uint64_t MainAllocs = 0;
  while (std::time(nullptr) < Deadline) {
    void *P = lfm::lfMalloc(64);
    std::memset(P, 0x7, 64);
    lfm::lfFree(P);
    ++MainAllocs;
  }

  Timer = {};
  setitimer(ITIMER_REAL, &Timer, nullptr); // Disarm.

  std::printf("main thread malloc/free pairs: %llu\n",
              static_cast<unsigned long long>(MainAllocs));
  std::printf("signal-handler malloc/free pairs: %llu\n",
              static_cast<unsigned long long>(
                  HandlerAllocs.load(std::memory_order_relaxed)));
  std::printf("no deadlock: the allocator has no locks for the handler to "
              "deadlock on.\n");
  return HandlerAllocs.load() > 0 ? 0 : 1;
}
