//===- tests/heap_profiler_test.cpp - Sampling heap profiler tests --------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The sampling profiler's contract, tested end to end through LFAllocator:
// deterministic sampling under a fixed seed, exact accounting under full
// sampling (rate << allocation size forces every allocation to sample),
// accounted — never silent — table overflow, parseable gperftools heap_v2
// text (the stand-in for `pprof --text` accepting the file), well-formed
// JSON, surviving-allocation leak reports, and safety of concurrent
// export while the allocator runs. Everything derives its randomness from
// LFM_TEST_SEED (tests/TestSeed.h).
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "profiling/HeapProfiler.h"

#include "TestSeed.h"
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

/// Captures a FILE*-writing member call as a string.
template <typename Fn> std::string captureStream(Fn &&F) {
  char *Buf = nullptr;
  std::size_t Len = 0;
  std::FILE *Mem = open_memstream(&Buf, &Len);
  EXPECT_NE(Mem, nullptr);
  F(Mem);
  std::fclose(Mem);
  std::string S(Buf, Len);
  std::free(Buf);
  return S;
}

/// Captures a raw-fd-writing member call as a string (tmpfile round trip).
template <typename Fn> std::string captureFd(Fn &&F) {
  std::FILE *Tmp = std::tmpfile();
  EXPECT_NE(Tmp, nullptr);
  F(fileno(Tmp));
  std::fflush(Tmp);
  std::rewind(Tmp);
  std::string S;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), Tmp)) > 0)
    S.append(Buf, N);
  std::fclose(Tmp);
  return S;
}

/// Minimal JSON well-formedness check: balanced {}/[] outside strings,
/// escapes honored, nothing after the top-level value closes.
bool jsonBalanced(const std::string &S) {
  int Depth = 0;
  bool InString = false, Escaped = false, Closed = false;
  for (char C : S) {
    if (Escaped) {
      Escaped = false;
      continue;
    }
    if (InString) {
      if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (Closed && !std::isspace(static_cast<unsigned char>(C)))
      return false;
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      ++Depth;
      break;
    case '}':
    case ']':
      if (--Depth < 0)
        return false;
      if (Depth == 0)
        Closed = true;
      break;
    default:
      break;
    }
  }
  return Depth == 0 && !InString && Closed;
}

} // namespace

#if LFM_TELEMETRY

namespace {

/// Full-sampling profiler options: with RateBytes = 16, the geometric
/// interval is clamped to at most 64 * 16 = 1024 bytes, so every
/// allocation of >= 1024 bytes is guaranteed to sample — and each sample
/// of a B-byte object stands for exactly max(1, 16 / B) = 1 object, making
/// the estimated counters exact. That turns statistical machinery into
/// something unit tests can assert equalities against.
constexpr std::size_t FullSampleRate = 16;
constexpr std::size_t FullSampleMinBytes = 64 * FullSampleRate;

AllocatorOptions profiledOptions(std::size_t Rate,
                                 std::uint32_t SiteCap = 1024,
                                 std::uint32_t LiveCap = 8192) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 2;
  Opts.EnableProfiler = true;
  Opts.ProfileRateBytes = Rate;
  Opts.ProfileSeed = test::baseSeed() + 17;
  Opts.ProfileSiteCapacity = SiteCap;
  Opts.ProfileLiveCapacity = LiveCap;
  return Opts;
}

/// Allocates through \p Depth extra stack frames so each depth produces a
/// distinct call-site stack. noinline + the asm barrier keep the frames
/// real (no inlining, no tail-call collapse).
__attribute__((noinline)) void *allocAtDepth(LFAllocator &A, unsigned Depth,
                                             std::size_t Bytes) {
  void *P;
  if (Depth == 0)
    P = A.allocate(Bytes);
  else
    P = allocAtDepth(A, Depth - 1, Bytes);
  asm volatile("" : "+r"(P)::"memory");
  return P;
}

} // namespace

TEST(HeapProfiler, AttachesAndReportsConfig) {
  LFAllocator Alloc(profiledOptions(4096));
  ASSERT_TRUE(Alloc.profilerEnabled());
  profiling::HeapProfiler *P = Alloc.heapProfiler();
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->rateBytes(), 4096u);
  EXPECT_EQ(P->seed(), test::baseSeed() + 17);
  EXPECT_EQ(P->siteCapacity(), 1024u);
  EXPECT_EQ(P->liveCapacity(), 8192u);
}

TEST(HeapProfiler, SamplingIsDeterministicUnderFixedSeed) {
  // The identical single-threaded allocation sequence against the same
  // seed must sample identically: same sample count, same estimates.
  auto Run = [] {
    LFAllocator Alloc(profiledOptions(2048));
    std::vector<void *> Ptrs;
    for (unsigned I = 0; I < 4000; ++I)
      Ptrs.push_back(Alloc.allocate(16 + (I * 7) % 480));
    profiling::ProfileStats T = Alloc.heapProfiler()->totals();
    for (void *P : Ptrs)
      Alloc.deallocate(P);
    return T;
  };
  const profiling::ProfileStats A = Run();
  const profiling::ProfileStats B = Run();
  EXPECT_GT(A.Samples, 0u) << "rate too coarse for the workload";
  EXPECT_EQ(A.Samples, B.Samples);
  EXPECT_EQ(A.SampledTotalObjs, B.SampledTotalObjs);
  EXPECT_EQ(A.SampledTotalBytes, B.SampledTotalBytes);
  EXPECT_EQ(A.EstTotalObjs, B.EstTotalObjs);
  EXPECT_EQ(A.EstTotalBytes, B.EstTotalBytes);
}

TEST(HeapProfiler, FullSamplingAccountsExactly) {
  LFAllocator Alloc(profiledOptions(FullSampleRate));
  constexpr unsigned N = 512;
  constexpr std::size_t Bytes = 2048;
  static_assert(Bytes >= FullSampleMinBytes);

  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < N; ++I)
    Ptrs.push_back(Alloc.allocate(Bytes));

  profiling::ProfileStats T = Alloc.heapProfiler()->totals();
  EXPECT_EQ(T.Samples, N);
  EXPECT_EQ(T.EstTotalObjs, N);
  EXPECT_EQ(T.EstTotalBytes, N * Bytes);
  EXPECT_EQ(T.EstLiveObjs, N);
  EXPECT_EQ(T.EstLiveBytes, N * Bytes);
  EXPECT_EQ(T.DroppedSiteSamples, 0u);
  EXPECT_EQ(T.DroppedLiveSamples, 0u);

  // Free half; live halves, totals stay.
  for (unsigned I = 0; I < N / 2; ++I)
    Alloc.deallocate(Ptrs[I]);
  T = Alloc.heapProfiler()->totals();
  EXPECT_EQ(T.EstLiveObjs, N / 2);
  EXPECT_EQ(T.EstLiveBytes, (N / 2) * Bytes);
  EXPECT_EQ(T.EstTotalObjs, N);

  for (unsigned I = N / 2; I < N; ++I)
    Alloc.deallocate(Ptrs[I]);
  T = Alloc.heapProfiler()->totals();
  EXPECT_EQ(T.EstLiveObjs, 0u);
  EXPECT_EQ(T.EstLiveBytes, 0u);
}

TEST(HeapProfiler, SiteTableOverflowIsCountedNeverSilent) {
  // 12 distinct stacks into a 4-slot site table: samples that cannot claim
  // a slot land in DroppedSiteSamples, and every sample is accounted for
  // in exactly one place.
  LFAllocator Alloc(profiledOptions(FullSampleRate, /*SiteCap=*/4));
  std::vector<void *> Ptrs;
  constexpr unsigned PerDepth = 8;
  for (unsigned Depth = 0; Depth < 12; ++Depth)
    for (unsigned I = 0; I < PerDepth; ++I)
      Ptrs.push_back(allocAtDepth(Alloc, Depth, 4096));

  const profiling::ProfileStats T = Alloc.heapProfiler()->totals();
  EXPECT_EQ(T.Samples, 12 * PerDepth);
  EXPECT_GT(T.DroppedSiteSamples, 0u);
  EXPECT_EQ(T.SampledTotalObjs + T.DroppedSiteSamples, T.Samples);
  EXPECT_LE(T.SitesInUse, 4u);
  for (void *P : Ptrs)
    Alloc.deallocate(P);
}

TEST(HeapProfiler, LiveMapOverflowIsCountedNeverSilent) {
  LFAllocator Alloc(profiledOptions(FullSampleRate, 1024, /*LiveCap=*/64));
  constexpr unsigned N = 300;
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < N; ++I)
    Ptrs.push_back(Alloc.allocate(2048));

  const profiling::ProfileStats T = Alloc.heapProfiler()->totals();
  EXPECT_EQ(T.Samples, N);
  EXPECT_GT(T.DroppedLiveSamples, 0u);
  // Every sample either entered the live map or was counted as dropped.
  EXPECT_EQ(T.EstLiveObjs + T.DroppedLiveSamples, N);
  EXPECT_LE(T.LiveEntries, 64u);
  for (void *P : Ptrs)
    Alloc.deallocate(P);
}

TEST(HeapProfiler, HeapTextIsParseableHeapV2) {
  // The acceptance stand-in for `pprof --text`: parse the gperftools
  // heap_v2 grammar strictly and cross-check the header totals against
  // the per-site lines.
  LFAllocator Alloc(profiledOptions(FullSampleRate));
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 64; ++I)
    Ptrs.push_back(allocAtDepth(Alloc, I % 4, 2048));

  const std::string Text =
      captureFd([&](int Fd) { EXPECT_EQ(Alloc.heapProfileText(Fd), 0); });

  // Header: "heap profile: N: B [TN: TB] @ heap_v2/RATE".
  unsigned long long N = 0, B = 0, TN = 0, TB = 0, Rate = 0;
  ASSERT_EQ(std::sscanf(Text.c_str(),
                        "heap profile: %llu: %llu [%llu: %llu] @ heap_v2/%llu",
                        &N, &B, &TN, &TB, &Rate),
            5)
      << "unparseable header: " << Text.substr(0, 120);
  EXPECT_EQ(Rate, FullSampleRate);
  EXPECT_EQ(N, 64u);
  EXPECT_EQ(B, 64u * 2048u);

  // Site lines: "  N: B [TN: TB] @ 0xPC 0xPC ...", then a blank line and
  // the MAPPED_LIBRARIES section.
  unsigned long long SumN = 0, SumB = 0, SumTN = 0, SumTB = 0;
  std::size_t Pos = Text.find('\n');
  ASSERT_NE(Pos, std::string::npos);
  bool SawMaps = false;
  unsigned SiteLines = 0;
  while (Pos != std::string::npos) {
    const std::size_t Start = Pos + 1;
    Pos = Text.find('\n', Start);
    const std::string Line = Text.substr(
        Start, Pos == std::string::npos ? std::string::npos : Pos - Start);
    if (Line.empty())
      continue;
    if (Line == "MAPPED_LIBRARIES:") {
      SawMaps = true;
      break;
    }
    unsigned long long LN, LB, LTN, LTB;
    int Consumed = 0;
    ASSERT_EQ(std::sscanf(Line.c_str(), " %llu: %llu [%llu: %llu] @%n", &LN,
                          &LB, &LTN, &LTB, &Consumed),
              4)
        << "unparseable site line: " << Line;
    // The stack: one or more " 0x<hex>" tokens.
    const char *P = Line.c_str() + Consumed;
    unsigned Frames = 0;
    while (*P != '\0') {
      unsigned long long Pc = 0;
      int Len = 0;
      ASSERT_EQ(std::sscanf(P, " 0x%llx%n", &Pc, &Len), 1)
          << "bad stack token in: " << Line;
      EXPECT_NE(Pc, 0u);
      P += Len;
      ++Frames;
    }
    EXPECT_GT(Frames, 0u) << Line;
    SumN += LN;
    SumB += LB;
    SumTN += LTN;
    SumTB += LTB;
    ++SiteLines;
  }
  EXPECT_TRUE(SawMaps) << "missing MAPPED_LIBRARIES section";
  EXPECT_GT(SiteLines, 0u);
  EXPECT_EQ(SumN, N);
  EXPECT_EQ(SumB, B);
  EXPECT_EQ(SumTN, TN);
  EXPECT_EQ(SumTB, TB);
  // The maps section must carry this binary's own mapping for pprof to
  // symbolize against.
  EXPECT_NE(Text.find("heap_profiler_test", Text.find("MAPPED_LIBRARIES:")),
            std::string::npos);

  for (void *P : Ptrs)
    Alloc.deallocate(P);
}

TEST(HeapProfiler, JsonExportIsWellFormed) {
  LFAllocator Alloc(profiledOptions(FullSampleRate));
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 32; ++I)
    Ptrs.push_back(allocAtDepth(Alloc, I % 3, 1500));

  const std::string Json =
      captureStream([&](std::FILE *Out) { Alloc.heapProfileJson(Out); });
  EXPECT_TRUE(jsonBalanced(Json)) << Json.substr(0, 200);
  EXPECT_NE(Json.find("\"lfm-heapprofile-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(Json.find("\"sites\""), std::string::npos);
  EXPECT_NE(Json.find("\"stack\""), std::string::npos);

  for (void *P : Ptrs)
    Alloc.deallocate(P);
}

TEST(HeapProfiler, LeakReportFindsSurvivors) {
  LFAllocator Alloc(profiledOptions(FullSampleRate));
  constexpr unsigned N = 10;
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < N; ++I)
    Ptrs.push_back(Alloc.allocate(4096));
  for (unsigned I = 0; I < N / 2; ++I) {
    Alloc.deallocate(Ptrs[I]);
    Ptrs[I] = nullptr;
  }

  const std::string Report =
      captureFd([&](int Fd) { Alloc.leakReport(Fd); });
  EXPECT_NE(Report.find("lfm-leak-report: 5 objects / 20480 bytes"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("leak: "), std::string::npos) << Report;

  for (void *P : Ptrs)
    if (P)
      Alloc.deallocate(P);
}

TEST(HeapProfiler, LeakReportCleanWhenEverythingFreed) {
  LFAllocator Alloc(profiledOptions(FullSampleRate));
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 50; ++I)
    Ptrs.push_back(Alloc.allocate(2048));
  for (void *P : Ptrs)
    Alloc.deallocate(P);

  const std::string Report =
      captureFd([&](int Fd) { Alloc.leakReport(Fd); });
  EXPECT_NE(Report.find("lfm-leak-report: 0 objects / 0 bytes"),
            std::string::npos)
      << Report;
  EXPECT_NE(Report.find("no surviving sampled allocations"),
            std::string::npos)
      << Report;
  EXPECT_EQ(Report.find("leak: "), std::string::npos) << Report;
}

TEST(HeapProfiler, ConcurrentSamplingAndExportIsSafe) {
  // Exports run against a live, mutating profiler: the contract is no
  // crashes, no hangs, and every emitted document structurally valid —
  // not cross-counter consistency, which a racy snapshot cannot promise.
  LFAllocator Alloc(profiledOptions(1024));
  std::atomic<bool> Stop{false};

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < 4; ++T)
    Workers.emplace_back([&Alloc, &Stop, T] {
      std::vector<void *> Slots(64, nullptr);
      std::uint64_t R = test::baseSeed() + 31 * T + 1;
      while (!Stop.load(std::memory_order_relaxed)) {
        R ^= R << 13;
        R ^= R >> 7;
        R ^= R << 17;
        const unsigned I = static_cast<unsigned>(R % Slots.size());
        if (Slots[I]) {
          Alloc.deallocate(Slots[I]);
          Slots[I] = nullptr;
        } else {
          Slots[I] = Alloc.allocate(16 + R % 2000);
        }
      }
      for (void *P : Slots)
        if (P)
          Alloc.deallocate(P);
    });

  for (unsigned Round = 0; Round < 20; ++Round) {
    const std::string Json =
        captureStream([&](std::FILE *Out) { Alloc.heapProfileJson(Out); });
    EXPECT_TRUE(jsonBalanced(Json));
    const std::string Text =
        captureFd([&](int Fd) { EXPECT_EQ(Alloc.heapProfileText(Fd), 0); });
    EXPECT_EQ(Text.rfind("heap profile: ", 0), 0u);
    const profiling::ProfileStats T = Alloc.heapProfiler()->totals();
    EXPECT_LE(T.SitesInUse, T.SiteCapacity);
  }
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &W : Workers)
    W.join();
}

TEST(HeapProfiler, ProfilerStorageStaysOutOfAllocatorSpaceMeter) {
  // §4.2.5 honesty: the profiler's tables come from a private
  // PageAllocator, so attaching it must not inflate the instrumented
  // instance's bytes-from-OS.
  AllocatorOptions Plain;
  Plain.NumHeaps = 2;
  LFAllocator Bare(Plain);
  LFAllocator Profiled(profiledOptions(FullSampleRate));

  void *A = Bare.allocate(256);
  void *B = Profiled.allocate(256);
  EXPECT_EQ(Bare.pageStats().BytesInUse, Profiled.pageStats().BytesInUse);
  EXPECT_GT(Profiled.heapProfiler()->storageStats().BytesInUse, 0u);
  Bare.deallocate(A);
  Profiled.deallocate(B);
}

#ifndef NDEBUG
TEST(HeapProfilerDeathTest, AllocatorAssertsOnProfilerReentry) {
  // The reentry guard is the proof obligation that no profiler path
  // allocates from the allocator it instruments: entering the allocator
  // with the guard held must trip the debug assert.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  LFAllocator Alloc(profiledOptions(FullSampleRate));
  EXPECT_DEATH(
      {
        profiling::ReentryGuard Guard;
        Alloc.allocate(64);
      },
      "re-entered");
}
#endif // !NDEBUG

#else // !LFM_TELEMETRY

TEST(HeapProfilerDisabled, RequestingProfilerIsIgnoredZeroOverhead) {
  // The no-telemetry build's contract: EnableProfiler is inert and the
  // export surfaces stay well-formed.
  AllocatorOptions Opts;
  Opts.NumHeaps = 2;
  Opts.EnableProfiler = true;
  LFAllocator Alloc(Opts);
  EXPECT_FALSE(Alloc.profilerEnabled());

  void *P = Alloc.allocate(2048);
  EXPECT_NE(P, nullptr);
  Alloc.deallocate(P);

  const std::string Json =
      captureStream([&](std::FILE *Out) { Alloc.heapProfileJson(Out); });
  EXPECT_TRUE(jsonBalanced(Json));
  EXPECT_NE(Json.find("\"enabled\":false"), std::string::npos);

  const std::string Text =
      captureFd([&](int Fd) { EXPECT_EQ(Alloc.heapProfileText(Fd), 0); });
  EXPECT_EQ(Text.rfind("heap profile: 0: 0 [0: 0] @ heap_v2/1", 0), 0u);

  const std::string Report =
      captureFd([&](int Fd) { Alloc.leakReport(Fd); });
  EXPECT_NE(Report.find("profiler off"), std::string::npos);
}

#endif // LFM_TELEMETRY

TEST(HeapProfiler, DisabledByDefaultInEveryBuild) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 2;
  LFAllocator Alloc(Opts);
  EXPECT_FALSE(Alloc.profilerEnabled());
}
