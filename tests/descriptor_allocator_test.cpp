//===- tests/descriptor_allocator_test.cpp - Fig. 7 list tests ------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/DescriptorAllocator.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

struct DescAllocFixture : ::testing::Test {
  HazardDomain Domain;
  PageAllocator Pages;
  DescriptorAllocator Descs{Domain, Pages};
};

} // namespace

TEST_F(DescAllocFixture, AllocReturnsAlignedDistinctDescriptors) {
  std::set<Descriptor *> Seen;
  for (int I = 0; I < 300; ++I) { // Crosses a chunk boundary (127/chunk).
    Descriptor *D = Descs.alloc();
    ASSERT_NE(D, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(D) % DescriptorAlignment, 0u);
    EXPECT_TRUE(Seen.insert(D).second) << "descriptor handed out twice";
  }
  EXPECT_GE(Descs.mintedCount(), 300u);
}

TEST_F(DescAllocFixture, RetiredDescriptorsAreRecycled) {
  Descriptor *First = Descs.alloc();
  Descs.retire(First);
  Domain.drainAll(); // Push it back to the freelist.
  const std::uint64_t MintedBefore = Descs.mintedCount();
  Descriptor *Second = Descs.alloc();
  EXPECT_EQ(Second, First) << "freelist head should be the retired desc";
  EXPECT_EQ(Descs.mintedCount(), MintedBefore) << "no fresh minting needed";
}

TEST_F(DescAllocFixture, MintingIsBatched) {
  Descs.alloc();
  const std::uint64_t Minted = Descs.mintedCount();
  EXPECT_GT(Minted, 1u) << "one mint should stock a whole DESCSB batch";
  // Subsequent allocations within the batch must not mint again.
  for (std::uint64_t I = 1; I < Minted; ++I)
    Descs.alloc();
  EXPECT_EQ(Descs.mintedCount(), Minted);
}

TEST_F(DescAllocFixture, PagesAreChargedAndReturned) {
  EXPECT_EQ(Pages.stats().BytesInUse, 0u);
  Descs.alloc();
  EXPECT_GE(Pages.stats().BytesInUse, DescriptorAllocator::DescSbBytes);
  // Storage is type-stable: retire doesn't unmap; teardown does (checked
  // implicitly by PageAllocator books in the destructor-order test below).
}

TEST(DescriptorAllocatorLifetime, TeardownReturnsAllPages) {
  HazardDomain Domain;
  PageAllocator Pages;
  {
    DescriptorAllocator Descs(Domain, Pages);
    for (int I = 0; I < 500; ++I)
      Descs.alloc();
    EXPECT_GT(Pages.stats().BytesInUse, 0u);
  }
  EXPECT_EQ(Pages.stats().BytesInUse, 0u);
}

TEST_F(DescAllocFixture, TrimReturnsFullyFreeChunks) {
  // Mint several chunks' worth, retire everything, trim: all descriptor
  // storage must go back to the OS (§3.2.5: "space for descriptors can be
  // ... returned to the OS").
  std::vector<Descriptor *> All;
  for (int I = 0; I < 300; ++I)
    All.push_back(Descs.alloc());
  for (Descriptor *D : All)
    Descs.retire(D);
  const std::uint64_t Before = Pages.stats().BytesInUse;
  EXPECT_GT(Before, 0u);
  const std::size_t Freed = Descs.trimQuiescent();
  EXPECT_EQ(Pages.stats().BytesInUse, Before - Freed);
  EXPECT_EQ(Pages.stats().BytesInUse, 0u)
      << "all descriptors were free; everything should be trimmable";
  EXPECT_EQ(Descs.mintedCount(), 0u);

  // Minting must restart cleanly afterwards.
  Descriptor *D = Descs.alloc();
  ASSERT_NE(D, nullptr);
  Descs.retire(D);
}

TEST_F(DescAllocFixture, TrimKeepsChunksWithLiveDescriptors) {
  Descriptor *Live = Descs.alloc();
  std::vector<Descriptor *> Rest;
  for (int I = 0; I < 100; ++I)
    Rest.push_back(Descs.alloc());
  for (Descriptor *D : Rest)
    Descs.retire(D);
  Descs.trimQuiescent();
  EXPECT_GT(Pages.stats().BytesInUse, 0u)
      << "the chunk holding a live descriptor must survive";
  // The live descriptor must still be writable.
  Live->BlockSize = 123;
  EXPECT_EQ(Live->BlockSize, 123u);
  Descs.retire(Live);
}

TEST_F(DescAllocFixture, ConcurrentAllocRetireConservation) {
  constexpr int Threads = 8, Iters = 5000;
  std::atomic<bool> Fail{false};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      std::vector<Descriptor *> Mine;
      for (int I = 0; I < Iters; ++I) {
        Descriptor *D = Descs.alloc();
        if (!D) {
          Fail = true;
          continue;
        }
        // Scribble a thread-unique value; if two threads ever own the
        // same descriptor simultaneously this has a chance to differ.
        D->BlockSize = static_cast<std::uint32_t>(
            reinterpret_cast<std::uintptr_t>(&Mine));
        Mine.push_back(D);
        if (Mine.size() > 16 || (I & 7) == 0) {
          Descriptor *Victim = Mine.back();
          Mine.pop_back();
          if (Victim->BlockSize !=
              static_cast<std::uint32_t>(
                  reinterpret_cast<std::uintptr_t>(&Mine)))
            Fail = true;
          Descs.retire(Victim);
        }
      }
      for (Descriptor *D : Mine)
        Descs.retire(D);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_FALSE(Fail.load()) << "descriptor ownership violated";

  // After a drain, every descriptor is back in the freelist: allocating
  // mintedCount descriptors must require no new minting.
  Domain.drainAll();
  const std::uint64_t Minted = Descs.mintedCount();
  std::set<Descriptor *> All;
  for (std::uint64_t I = 0; I < Minted; ++I) {
    Descriptor *D = Descs.alloc();
    ASSERT_TRUE(All.insert(D).second);
  }
  EXPECT_EQ(Descs.mintedCount(), Minted);
}
