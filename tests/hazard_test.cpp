//===- tests/hazard_test.cpp - Hazard-pointer domain tests ----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lockfree/HazardPointers.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

struct Victim : HazardErasable {
  std::atomic<int> *ReclaimCounter = nullptr;
};

void countReclaim(HazardErasable *Obj, void *) {
  static_cast<Victim *>(Obj)->ReclaimCounter->fetch_add(1);
}

} // namespace

TEST(HazardDomain, ProtectReturnsValidatedPointer) {
  HazardDomain Domain;
  Victim V;
  std::atomic<Victim *> Src{&V};
  EXPECT_EQ(Domain.protect(0, Src), &V);
  Domain.clear(0);

  Src.store(nullptr);
  EXPECT_EQ(Domain.protect(0, Src), nullptr);
}

TEST(HazardDomain, ProtectFollowsSourceChanges) {
  HazardDomain Domain;
  Victim A, B;
  std::atomic<Victim *> Src{&A};
  // Single-threaded, protect just returns the current value; the loop in
  // protect() is exercised concurrently below.
  EXPECT_EQ(Domain.protect(1, Src), &A);
  Src.store(&B);
  EXPECT_EQ(Domain.protect(1, Src), &B);
  Domain.clear(1);
}

TEST(HazardDomain, RetireWithoutHazardReclaimsOnScan) {
  HazardDomain Domain;
  std::atomic<int> Reclaimed{0};
  // Retire more than ScanThreshold victims; the threshold scan must
  // reclaim them (none are protected).
  std::vector<Victim> Victims(HazardDomain::ScanThreshold + 8);
  for (auto &V : Victims) {
    V.ReclaimCounter = &Reclaimed;
    Domain.retire(&V, countReclaim, nullptr);
  }
  EXPECT_GT(Reclaimed.load(), 0) << "threshold scan should have fired";
  Domain.drainAll();
  EXPECT_EQ(Reclaimed.load(), static_cast<int>(Victims.size()));
}

TEST(HazardDomain, HazardDefersReclamation) {
  HazardDomain Domain;
  std::atomic<int> Reclaimed{0};
  Victim Protected;
  Protected.ReclaimCounter = &Reclaimed;
  std::atomic<Victim *> Src{&Protected};

  std::thread Holder([&] {
    EXPECT_EQ(Domain.protect(0, Src), &Protected);
    // Hold the hazard while the main thread retires and drains.
    while (Src.load() != nullptr)
      cpuRelax();
    Domain.clear(0);
  });

  while (!Holder.joinable())
    cpuRelax();
  // Give the holder time to publish.
  while (Domain.recordWatermark() < 1)
    cpuRelax();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  Domain.retire(&Protected, countReclaim, nullptr);
  Domain.drainAll();
  EXPECT_EQ(Reclaimed.load(), 0)
      << "object reclaimed while a hazard points at it";

  Src.store(nullptr); // Release the holder, which clears its hazard.
  Holder.join();
  Domain.drainAll();
  EXPECT_EQ(Reclaimed.load(), 1);
}

TEST(HazardDomain, RetiredCountTracksBacklog) {
  HazardDomain Domain;
  std::atomic<int> Reclaimed{0};
  Victim V;
  V.ReclaimCounter = &Reclaimed;
  Domain.retire(&V, countReclaim, nullptr);
  EXPECT_EQ(Domain.retiredCount(), 1u);
  Domain.drainAll();
  EXPECT_EQ(Domain.retiredCount(), 0u);
  EXPECT_EQ(Reclaimed.load(), 1);
}

TEST(HazardDomain, RecordsAreReusedAcrossThreads) {
  HazardDomain Domain;
  // Sequential threads must reuse released records rather than growing
  // the watermark without bound.
  for (int I = 0; I < 64; ++I) {
    std::thread([&] {
      Victim V;
      std::atomic<Victim *> Src{&V};
      Domain.protect(0, Src);
      Domain.clearAll();
    }).join();
  }
  EXPECT_LE(Domain.recordWatermark(), 4u)
      << "sequential threads must adopt released records";
}

TEST(HazardDomain, ManyThreadsRetireConcurrently) {
  HazardDomain Domain;
  std::atomic<int> Reclaimed{0};
  constexpr int Threads = 8, PerThread = 400;
  std::vector<std::vector<Victim>> Victims(Threads);
  for (auto &Vs : Victims) {
    Vs.resize(PerThread);
    for (auto &V : Vs)
      V.ReclaimCounter = &Reclaimed;
  }
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      for (auto &V : Victims[T])
        Domain.retire(&V, countReclaim, nullptr);
    });
  for (auto &T : Ts)
    T.join();
  Domain.drainAll();
  EXPECT_EQ(Reclaimed.load(), Threads * PerThread);
}

TEST(HazardDomain, GlobalDomainIsASingleton) {
  EXPECT_EQ(&HazardDomain::global(), &HazardDomain::global());
}

TEST(HazardDomain, PublishPinsWithoutValidation) {
  HazardDomain Domain;
  std::atomic<int> Reclaimed{0};
  Victim V;
  V.ReclaimCounter = &Reclaimed;
  Domain.publish(3, &V);
  Domain.retire(&V, countReclaim, nullptr);
  Domain.drainAll();
  EXPECT_EQ(Reclaimed.load(), 0) << "published hazard must pin the object";
  Domain.clear(3);
  Domain.drainAll();
  EXPECT_EQ(Reclaimed.load(), 1);
}
