//===- tests/malloc_ctl_test.cpp - Keyed control surface ------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// lf_malloc_ctl(): the Out/OutLen read protocol (probe, short buffer,
// exact), the In write protocol, error codes (ENOENT/EINVAL/EPERM/EIO),
// the stats/opt/retain/trim/dump key namespaces, byte-identical output
// between every legacy lf_malloc_* dump function and its ctl key, and
// the 1:1 mapping between the LFM_* environment registry and ctl keys.
//
// Everything here drives the process-wide default allocator, so each test
// restores any knob it changes.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFMalloc.h"
#include "support/RuntimeConfig.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace {

std::string slurp(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return {};
  std::string S;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    S.append(Buf, N);
  std::fclose(F);
  return S;
}

std::uint64_t getU64(const char *Key) {
  std::uint64_t V = 0;
  size_t Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl(Key, &V, &Len, nullptr, 0), 0) << Key;
  EXPECT_EQ(Len, sizeof(V));
  return V;
}

std::int64_t getI64(const char *Key) {
  std::int64_t V = 0;
  size_t Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl(Key, &V, &Len, nullptr, 0), 0) << Key;
  return V;
}

void setU64(const char *Key, std::uint64_t V) {
  EXPECT_EQ(lf_malloc_ctl(Key, nullptr, nullptr, &V, sizeof(V)), 0) << Key;
}

void setI64(const char *Key, std::int64_t V) {
  EXPECT_EQ(lf_malloc_ctl(Key, nullptr, nullptr, &V, sizeof(V)), 0) << Key;
}

} // namespace

TEST(MallocCtl, VersionProbeShortAndExactReads) {
  // Probe: null Out stores the required size.
  size_t Need = 0;
  ASSERT_EQ(lf_malloc_ctl("version", nullptr, &Need, nullptr, 0), 0);
  ASSERT_GT(Need, 1u);

  // Short buffer: EINVAL, required size stored.
  char Tiny[2];
  size_t Len = sizeof(Tiny);
  EXPECT_EQ(lf_malloc_ctl("version", Tiny, &Len, nullptr, 0), EINVAL);
  EXPECT_EQ(Len, Need);

  // Exact read.
  std::vector<char> Buf(Need);
  Len = Need;
  ASSERT_EQ(lf_malloc_ctl("version", Buf.data(), &Len, nullptr, 0), 0);
  EXPECT_STREQ(Buf.data(), "lfm-ctl-v1");

  // Missing OutLen is an error; writing a read-only key is EPERM.
  EXPECT_EQ(lf_malloc_ctl("version", Buf.data(), nullptr, nullptr, 0),
            EINVAL);
  EXPECT_EQ(lf_malloc_ctl("version", nullptr, nullptr, "x", 2), EPERM);
}

TEST(MallocCtl, UnknownKeysReturnEnoent) {
  size_t Len = 8;
  std::uint64_t V;
  EXPECT_EQ(lf_malloc_ctl("no.such.key", &V, &Len, nullptr, 0), ENOENT);
  EXPECT_EQ(lf_malloc_ctl("stats.no_such_counter", &V, &Len, nullptr, 0),
            ENOENT);
  EXPECT_EQ(lf_malloc_ctl("opt.no_such_option", &V, &Len, nullptr, 0),
            ENOENT);
  EXPECT_EQ(lf_malloc_ctl(nullptr, &V, &Len, nullptr, 0), EINVAL);
}

TEST(MallocCtl, StatsKeysTrackAllocatorActivity) {
  void *P = lf_malloc(512);
  ASSERT_NE(P, nullptr);
  // Gauges and space stats work in every build; the default allocator has
  // memory mapped the moment it exists.
  EXPECT_GT(getU64("stats.bytes_in_use"), 0u);
  EXPECT_GE(getU64("stats.peak_bytes"), getU64("stats.bytes_in_use"));
  (void)getU64("stats.mallocs"); // Counter key resolves (0 without stats).
  (void)getU64("stats.cached_superblocks");
  (void)getU64("stats.retained_bytes");
  (void)getU64("stats.decommitted_superblocks");
  (void)getU64("stats.parked_hyperblocks");
  (void)getI64("stats.retain_decay_ms");
  // Writing any stats key is EPERM.
  std::uint64_t V = 1;
  EXPECT_EQ(lf_malloc_ctl("stats.mallocs", nullptr, nullptr, &V, sizeof(V)),
            EPERM);
  lf_free(P);
}

TEST(MallocCtl, RetainKnobsRoundTripAndRestore) {
  const std::uint64_t OldMax = getU64("retain.max_bytes");
  const std::int64_t OldDecay = getI64("retain.decay_ms");

  setU64("retain.max_bytes", 8 << 20);
  EXPECT_EQ(getU64("retain.max_bytes"), 8u << 20);
  setI64("retain.decay_ms", 500);
  EXPECT_EQ(getI64("retain.decay_ms"), 500);

  // Wrong-size writes are EINVAL and leave the value alone.
  std::uint32_t Narrow = 7;
  EXPECT_EQ(lf_malloc_ctl("retain.max_bytes", nullptr, nullptr, &Narrow,
                          sizeof(Narrow)),
            EINVAL);
  EXPECT_EQ(getU64("retain.max_bytes"), 8u << 20);
  // A get with nowhere to put the value is EINVAL.
  EXPECT_EQ(lf_malloc_ctl("retain.max_bytes", nullptr, nullptr, nullptr, 0),
            EINVAL);

  setU64("retain.max_bytes", OldMax);
  setI64("retain.decay_ms", OldDecay);
}

TEST(MallocCtl, TrimActionReleasesRetainedSpike) {
  // Spike and free enough small blocks that empty superblocks pile up in
  // the retained cache, then trim through the ctl surface.
  std::vector<void *> Blocks;
  for (int I = 0; I < 8192; ++I) {
    void *P = lf_malloc(1024);
    ASSERT_NE(P, nullptr);
    Blocks.push_back(P);
  }
  for (void *P : Blocks)
    lf_free(P);

  std::uint64_t Released = 0;
  size_t Len = sizeof(Released);
  ASSERT_EQ(lf_malloc_ctl("trim", &Released, &Len, nullptr, 0), 0);
  EXPECT_GT(Released, 0u) << "a retained spike must release something";

  // Drained cache: the glibc-shaped wrapper reports nothing to release.
  EXPECT_EQ(lf_malloc_trim(0), 0);

  // A keep-bytes input of the wrong size is EINVAL.
  std::uint32_t Bad = 0;
  EXPECT_EQ(lf_malloc_ctl("trim", nullptr, nullptr, &Bad, sizeof(Bad)),
            EINVAL);

  // The allocator still serves after trimming.
  void *P = lf_malloc(1024);
  ASSERT_NE(P, nullptr);
  lf_free(P);
}

TEST(MallocCtl, OptKeysEchoResolvedOptions) {
  // The test environment does not set LFM_STATS/LFM_TRACE, so the echoes
  // read their defaults; what matters is that every key resolves and is
  // read-only.
  EXPECT_EQ(getU64("opt.stats"), 0u);
  EXPECT_EQ(getU64("opt.trace"), 0u);
  EXPECT_GT(getU64("opt.trace_events"), 0u);
  (void)getU64("opt.profile");
  EXPECT_GT(getU64("opt.profile_rate"), 0u);
  (void)getU64("opt.profile_seed");
  EXPECT_GT(getU64("opt.profile_sites"), 0u);
  EXPECT_GT(getU64("opt.profile_live"), 0u);
  char Prefix[256];
  size_t Len = sizeof(Prefix);
  ASSERT_EQ(lf_malloc_ctl("opt.profile_dump", Prefix, &Len, nullptr, 0), 0);
  EXPECT_STREQ(Prefix, "lfm-heap");
  (void)getU64("opt.leak_report");
  std::uint64_t V = 1;
  EXPECT_EQ(lf_malloc_ctl("opt.stats", nullptr, nullptr, &V, sizeof(V)),
            EPERM);
}

TEST(MallocCtl, DebugFailMapArmsAndDisarms) {
  // Arm far in the future (harmless), read the echo back, then disarm.
  std::int64_t Arm[2] = {std::int64_t{1} << 40, -1};
  ASSERT_EQ(lf_malloc_ctl("debug.fail_map", nullptr, nullptr, Arm,
                          sizeof(Arm)),
            0);
  EXPECT_EQ(getI64("debug.fail_map"), std::int64_t{1} << 40);
  std::int64_t Disarm = -1;
  ASSERT_EQ(lf_malloc_ctl("debug.fail_map", nullptr, nullptr, &Disarm,
                          sizeof(Disarm)),
            0);
  EXPECT_EQ(getI64("debug.fail_map"), -1);
  void *P = lf_malloc(64);
  EXPECT_NE(P, nullptr);
  lf_free(P);
}

TEST(MallocCtl, DumpKeysRejectBadPaths) {
  EXPECT_EQ(lf_malloc_ctl("dump.metrics", nullptr, nullptr,
                          "/nonexistent-dir-lfm/x.json",
                          sizeof("/nonexistent-dir-lfm/x.json")),
            EIO);
  // A path that is not NUL-terminated within InLen is malformed.
  const char Raw[4] = {'a', 'b', 'c', 'd'};
  EXPECT_EQ(lf_malloc_ctl("dump.metrics", nullptr, nullptr, Raw, 4), EINVAL);
}

TEST(MallocCtl, LegacyDumpFunctionsMatchCtlByteForByte) {
  // Each legacy function must round-trip through lf_malloc_ctl with
  // identical bytes. No allocator traffic happens between the paired
  // dumps, so the snapshots they serialize are identical.
  const struct {
    const char *CtlKey;
    int (*Legacy)(const char *);
  } Pairs[] = {
      {"dump.metrics", lf_malloc_metrics_json},
      {"dump.trace", lf_malloc_trace_dump},
      {"dump.topology", lf_malloc_heap_topology_json},
      {"dump.heap_profile", lf_malloc_heap_profile},
      {"dump.heap_profile_json", lf_malloc_heap_profile_json},
  };
  for (const auto &Pair : Pairs) {
    const std::string A = std::string("./ctl_golden_legacy.out");
    const std::string B = std::string("./ctl_golden_ctl.out");
    ASSERT_EQ(Pair.Legacy(A.c_str()), 0) << Pair.CtlKey;
    ASSERT_EQ(lf_malloc_ctl(Pair.CtlKey, nullptr, nullptr, B.c_str(),
                            std::strlen(B.c_str()) + 1),
              0)
        << Pair.CtlKey;
    const std::string LegacyOut = slurp(A);
    const std::string CtlOut = slurp(B);
    std::remove(A.c_str());
    std::remove(B.c_str());
    ASSERT_FALSE(LegacyOut.empty()) << Pair.CtlKey;
    EXPECT_EQ(LegacyOut, CtlOut) << Pair.CtlKey << " output diverged";
  }
}

TEST(MallocCtl, LeakReportLegacyMatchesCtl) {
  // The legacy entry point writes to stderr; capture it and compare with
  // the ctl key writing to a file.
  testing::internal::CaptureStderr();
  lf_malloc_leak_report();
  const std::string Legacy = testing::internal::GetCapturedStderr();
  const std::string Path = "./ctl_leak_report.out";
  ASSERT_EQ(lf_malloc_ctl("dump.leak_report", nullptr, nullptr, Path.c_str(),
                          Path.size() + 1),
            0);
  const std::string Ctl = slurp(Path);
  std::remove(Path.c_str());
  ASSERT_FALSE(Legacy.empty());
  EXPECT_EQ(Legacy, Ctl);
}

TEST(MallocCtl, EnvRegistryMapsOneToOneOntoCtlKeys) {
  // Every LFM_* variable that configures the default allocator declares
  // its ctl key in the RuntimeConfig registry; each such key must resolve
  // (a size probe succeeds). This is the contract that keeps the env
  // table, the ctl namespace, and docs/API.md from drifting apart.
  using namespace lfm::config;
  unsigned Mapped = 0;
  for (unsigned I = 0; I < NumVars; ++I) {
    const VarSpec &Spec = varSpec(static_cast<Var>(I));
    ASSERT_NE(Spec.EnvName, nullptr);
    EXPECT_EQ(std::strncmp(Spec.EnvName, "LFM_", 4), 0) << Spec.EnvName;
    ASSERT_NE(Spec.Help, nullptr);
    if (!Spec.CtlKey)
      continue; // Tool-only variable (bench harness, sched tests).
    size_t Need = 0;
    EXPECT_EQ(lf_malloc_ctl(Spec.CtlKey, nullptr, &Need, nullptr, 0), 0)
        << Spec.EnvName << " -> " << Spec.CtlKey << " does not resolve";
    EXPECT_GT(Need, 0u) << Spec.CtlKey;
    ++Mapped;
  }
  EXPECT_EQ(Mapped, 29u) << "allocator-facing variable count changed; "
                            "update docs/API.md and this test";
}

TEST(MallocCtl, LargeBackendNamespace) {
  // Kind echoes the selected backend and agrees with opt.large_backend.
  char Kind[16] = {};
  size_t Len = sizeof(Kind);
  ASSERT_EQ(lf_malloc_ctl("largebackend.kind", Kind, &Len, nullptr, 0), 0);
  const bool Buddy = std::strcmp(Kind, "buddy") == 0;
  EXPECT_TRUE(Buddy || std::strcmp(Kind, "os") == 0) << Kind;
  char OptKind[16] = {};
  Len = sizeof(OptKind);
  ASSERT_EQ(lf_malloc_ctl("opt.large_backend", OptKind, &Len, nullptr, 0), 0);
  EXPECT_STREQ(Kind, OptKind);
  EXPECT_GT(getU64("opt.buddy_span_bytes"), 0u);

  // Geometry and meter keys all resolve; exercise the backend so the
  // operation counters are live, then check basic accounting. Under the
  // os backend every gauge (geometry included) reads 0 by contract.
  void *P = lf_malloc(256 << 10);
  ASSERT_NE(P, nullptr);
  if (Buddy) {
    EXPECT_GE(getU64("largebackend.num_orders"), 1u);
    EXPECT_GT(getU64("largebackend.min_order_bytes"), 0u);
    EXPECT_GE(getU64("largebackend.max_order_bytes"),
              getU64("largebackend.min_order_bytes"));
    EXPECT_GT(getU64("largebackend.allocs"), 0u);
    EXPECT_GT(getU64("largebackend.spans_reserved"), 0u);
    EXPECT_GE(getU64("largebackend.bytes_reserved"),
              getU64("largebackend.bytes_committed"));
    EXPECT_GT(getU64("largebackend.bytes_allocated"), 0u);
  }
  (void)getU64("largebackend.frees");
  (void)getU64("largebackend.splits");
  (void)getU64("largebackend.coalesces");
  (void)getU64("largebackend.os_fallbacks");
  (void)getU64("largebackend.rollbacks");
  (void)getU64("largebackend.decommits");
  (void)getU64("largebackend.span_reserves");
  (void)getU64("largebackend.span_bytes");
  (void)getU64("largebackend.free_committed_bytes");
  lf_free(P);

  // Per-order free census: NumOrders u64 entries.
  const std::uint64_t Orders = getU64("largebackend.num_orders");
  size_t Need = 0;
  ASSERT_EQ(lf_malloc_ctl("largebackend.free_bytes_by_order", nullptr, &Need,
                          nullptr, 0),
            0);
  EXPECT_EQ(Need, Orders * sizeof(std::uint64_t));
  std::vector<std::uint64_t> ByOrder(Orders);
  Len = Need;
  ASSERT_EQ(lf_malloc_ctl("largebackend.free_bytes_by_order", ByOrder.data(),
                          &Len, nullptr, 0),
            0);

  // Status keys are read-only; trim is the one action key. Trimming to
  // keep 0 bytes decommits every free resident buddy it can claim.
  std::uint64_t V = 1;
  EXPECT_EQ(lf_malloc_ctl("largebackend.allocs", nullptr, nullptr, &V,
                          sizeof(V)),
            EPERM);
  std::uint64_t Keep = 0, Freed = ~0ull;
  Len = sizeof(Freed);
  EXPECT_EQ(lf_malloc_ctl("largebackend.trim", &Freed, &Len, &Keep,
                          sizeof(Keep)),
            0);
  EXPECT_NE(Freed, ~0ull);
  EXPECT_EQ(lf_malloc_ctl("largebackend.no_such_key", &V, &Len, nullptr, 0),
            ENOENT);
}
