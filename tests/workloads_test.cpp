//===- tests/workloads_test.cpp - Benchmark-workload integration tests ----===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Runs each of the paper's six benchmarks, scaled down, against every
// allocator kind: integration coverage of allocator x workload, plus
// sanity on the harness's own bookkeeping.
//
//===----------------------------------------------------------------------===//

#include "harness/Workloads.h"

#include <gtest/gtest.h>

using namespace lfm;

namespace {

struct WorkloadsOverAllocators
    : ::testing::TestWithParam<AllocatorKind> {};

std::string kindName(const ::testing::TestParamInfo<AllocatorKind> &Info) {
  std::string Name = allocatorKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

TEST_P(WorkloadsOverAllocators, LinuxScalability) {
  auto Alloc = makeAllocator(GetParam(), 4);
  const WorkloadResult R = runLinuxScalability(*Alloc, 3, 5'000);
  EXPECT_EQ(R.Ops, 15'000u);
  EXPECT_GT(R.Seconds, 0.0);
  EXPECT_GT(R.throughput(), 0.0);
}

TEST_P(WorkloadsOverAllocators, Threadtest) {
  auto Alloc = makeAllocator(GetParam(), 4);
  const WorkloadResult R = runThreadtest(*Alloc, 3, 4, 500);
  EXPECT_EQ(R.Ops, 3u * 4 * 500);
}

TEST_P(WorkloadsOverAllocators, ActiveFalseSharing) {
  auto Alloc = makeAllocator(GetParam(), 4);
  const WorkloadResult R = runFalseSharing(*Alloc, 3, 50, 100, false);
  EXPECT_EQ(R.Ops, 150u);
}

TEST_P(WorkloadsOverAllocators, PassiveFalseSharing) {
  auto Alloc = makeAllocator(GetParam(), 4);
  const WorkloadResult R = runFalseSharing(*Alloc, 3, 50, 100, true);
  EXPECT_EQ(R.Ops, 150u);
}

TEST_P(WorkloadsOverAllocators, Larson) {
  auto Alloc = makeAllocator(GetParam(), 4);
  const WorkloadResult R = runLarson(*Alloc, 3, 64, 16, 80, 0.05);
  EXPECT_GT(R.Ops, 0u) << "no pairs completed in the timed phase";
  EXPECT_GE(R.Seconds, 0.05);
}

TEST_P(WorkloadsOverAllocators, ProducerConsumer) {
  auto Alloc = makeAllocator(GetParam(), 4);
  const WorkloadResult R =
      runProducerConsumer(*Alloc, 3, 50, 0.05, 1u << 12);
  EXPECT_GT(R.Ops, 0u) << "no tasks processed";
}

TEST_P(WorkloadsOverAllocators, ProducerConsumerSingleThread) {
  // Degenerate case: the producer must self-consume.
  auto Alloc = makeAllocator(GetParam(), 2);
  const WorkloadResult R =
      runProducerConsumer(*Alloc, 1, 10, 0.05, 1u << 10);
  EXPECT_GT(R.Ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WorkloadsOverAllocators,
                         ::testing::Values(AllocatorKind::LockFree,
                                           AllocatorKind::LockFreeUni,
                                           AllocatorKind::SerialLock,
                                           AllocatorKind::Hoard,
                                           AllocatorKind::Ptmalloc),
                         kindName);

//===----------------------------------------------------------------------===
// Workload-level invariants (allocator-independent)
//===----------------------------------------------------------------------===

TEST(WorkloadInvariants, AllBlocksComeBack) {
  // After any workload completes, the allocator's live footprint must
  // return to (near) its pre-run level: the workloads must not leak.
  auto Alloc = makeAllocator(AllocatorKind::SerialLock, 2);
  runLinuxScalability(*Alloc, 2, 2'000);
  const std::uint64_t After1 = Alloc->pageStats().BytesInUse;
  runThreadtest(*Alloc, 2, 2, 500);
  runFalseSharing(*Alloc, 2, 20, 50, true);
  runLarson(*Alloc, 2, 32, 16, 80, 0.03);
  runProducerConsumer(*Alloc, 2, 10, 0.03, 1u << 10);
  // The serial engine never unmaps small-block regions, so "no leak"
  // means the footprint stabilizes rather than growing per run.
  const std::uint64_t After2 = Alloc->pageStats().BytesInUse;
  runLinuxScalability(*Alloc, 2, 2'000);
  EXPECT_LE(Alloc->pageStats().BytesInUse, After2 + 65536)
      << "repeated workloads keep growing the footprint: leak";
  (void)After1;
}

TEST(WorkloadInvariants, SingleThreadWorks) {
  auto Alloc = makeAllocator(AllocatorKind::LockFree, 1);
  EXPECT_EQ(runLinuxScalability(*Alloc, 1, 100).Ops, 100u);
  EXPECT_EQ(runThreadtest(*Alloc, 1, 1, 100).Ops, 100u);
  EXPECT_EQ(runFalseSharing(*Alloc, 1, 10, 10, false).Ops, 10u);
}

TEST(WorkloadInvariants, LarsonScalesOpsWithDuration) {
  auto Alloc = makeAllocator(AllocatorKind::LockFree, 2);
  const WorkloadResult Short = runLarson(*Alloc, 2, 64, 16, 80, 0.02);
  const WorkloadResult Long = runLarson(*Alloc, 2, 64, 16, 80, 0.2);
  EXPECT_GT(Long.Ops, Short.Ops) << "longer timed phase, fewer ops?";
}
