//===- tests/failure_injection_test.cpp - OOM failure paths ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Out-of-memory behaviour: when the OS refuses mappings, allocate() must
// return nullptr (never crash, never corrupt), and the allocator must
// recover completely once memory is available again.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "os/PageAllocator.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <vector>

using namespace lfm;

TEST(FailureInjection, PageAllocatorFailsOnCue) {
  PageAllocator Pages;
  Pages.injectMapFailuresAfter(2);
  void *A = Pages.map(OsPageSize);
  void *B = Pages.map(OsPageSize);
  EXPECT_NE(A, nullptr);
  EXPECT_NE(B, nullptr);
  EXPECT_EQ(Pages.map(OsPageSize), nullptr) << "third map must fail";
  EXPECT_EQ(Pages.map(OsPageSize), nullptr) << "and stay failing";
  Pages.injectMapFailuresAfter(-1); // Re-arm.
  void *C = Pages.map(OsPageSize);
  EXPECT_NE(C, nullptr);
  Pages.unmap(A, OsPageSize);
  Pages.unmap(B, OsPageSize);
  Pages.unmap(C, OsPageSize);
}

TEST(FailureInjection, MapFailureSetsEnomemAndCountsRetries) {
  PageAllocator Pages;
  Pages.injectMapFailuresAfter(0);
  errno = 0;
  EXPECT_EQ(Pages.map(OsPageSize), nullptr);
  EXPECT_EQ(errno, ENOMEM) << "failed map must set errno";
  const PageStats St = Pages.stats();
  EXPECT_EQ(St.MapFailures, 1u);
  // The retry loop attempted more than once before giving up.
  EXPECT_GE(St.MapRetries, 1u);
  Pages.injectMapFailuresAfter(-1);
}

TEST(FailureInjection, FiniteFailureBudgetRecoversWithinOneMapCall) {
  // A budget of one forced failure: the first attempt fails, the in-call
  // retry succeeds — the caller never sees the blip.
  PageAllocator Pages;
  Pages.injectMapFailures(0, 1);
  void *P = Pages.map(OsPageSize);
  ASSERT_NE(P, nullptr) << "retry-with-backoff must absorb a transient "
                           "failure";
  const PageStats St = Pages.stats();
  EXPECT_GE(St.MapRetries, 1u);
  EXPECT_EQ(St.MapFailures, 0u);
  Pages.unmap(P, OsPageSize);
}

TEST(FailureInjection, LargeMallocFailsGracefully) {
  LFAllocator Alloc;
  Alloc.debugInjectMapFailuresAfter(0);
  EXPECT_EQ(Alloc.allocate(1 << 20), nullptr);
  Alloc.debugInjectMapFailuresAfter(-1);
  void *P = Alloc.allocate(1 << 20);
  EXPECT_NE(P, nullptr) << "allocator must recover after OOM clears";
  Alloc.deallocate(P);
}

TEST(FailureInjection, SmallMallocFailsGracefullyAtEveryStage) {
  // Fail at successively later points of the first small allocation
  // (control structures exist; descriptor batch, then superblock memory
  // are the next mappings). Every stage must surface null, not crash.
  for (int FailAt = 0; FailAt < 4; ++FailAt) {
    AllocatorOptions Opts;
    Opts.NumHeaps = 1;
    Opts.HyperblockSize = 0;
    LFAllocator Alloc(Opts);
    Alloc.debugInjectMapFailuresAfter(FailAt);
    void *P = Alloc.allocate(64);
    if (P) {
      // Injection budget covered all required mappings; fine.
      std::memset(P, 1, 64);
      Alloc.deallocate(P);
    }
    Alloc.debugInjectMapFailuresAfter(-1);
    // Recovery: allocation must succeed now.
    void *Q = Alloc.allocate(64);
    ASSERT_NE(Q, nullptr) << "failed to recover after OOM at stage "
                          << FailAt;
    std::memset(Q, 2, 64);
    Alloc.deallocate(Q);
  }
}

TEST(FailureInjection, CallocAndReallocPropagateOom) {
  LFAllocator Alloc;
  void *P = Alloc.allocate(100);
  ASSERT_NE(P, nullptr);
  Alloc.debugInjectMapFailuresAfter(0);
  errno = 0;
  EXPECT_EQ(Alloc.allocateZeroed(1 << 20, 1), nullptr);
  EXPECT_EQ(errno, ENOMEM);
  errno = 0;
  EXPECT_EQ(Alloc.reallocate(P, 1 << 20), nullptr)
      << "failed realloc must return null";
  EXPECT_EQ(errno, ENOMEM);
  Alloc.debugInjectMapFailuresAfter(-1);
  // P must still be intact and freeable after the failed realloc.
  Alloc.deallocate(P);
}

TEST(FailureInjection, BooksStayBalancedAcrossOomWaves) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 2;
  Opts.SuperblockSize = 4096;
  Opts.HyperblockSize = 0;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);

  std::vector<void *> Live;
  for (int Wave = 0; Wave < 8; ++Wave) {
    // Alternate between constrained and unconstrained memory.
    Alloc.debugInjectMapFailuresAfter(Wave % 2 ? 1 : -1);
    for (int I = 0; I < 2000; ++I) {
      void *P = Alloc.allocate(static_cast<std::size_t>(I % 400));
      if (P) {
        std::memset(P, 0x5d, static_cast<std::size_t>(I % 400));
        Live.push_back(P);
      }
    }
    Alloc.debugInjectMapFailuresAfter(-1);
    for (void *P : Live)
      Alloc.deallocate(P);
    Live.clear();
  }
  const OpStats St = Alloc.opStats();
  EXPECT_EQ(St.Frees, St.Mallocs - (St.Mallocs - St.Frees));
  EXPECT_GT(St.Mallocs, 0u);
}

TEST(DescriptorTrim, ReturnsFullyFreeDescriptorChunks) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.SuperblockSize = 4096;
  Opts.HyperblockSize = 0;
  LFAllocator Alloc(Opts);

  // Burn through many superblocks (each needs a descriptor), then free
  // everything so the descriptors all retire.
  std::vector<void *> Blocks;
  for (int I = 0; I < 64 * 40; ++I) // ~40 superblocks of 64-byte blocks.
    Blocks.push_back(Alloc.allocate(56));
  for (void *P : Blocks)
    Alloc.deallocate(P);

  const std::uint64_t Before = Alloc.pageStats().BytesInUse;
  const std::size_t Freed = Alloc.trimQuiescent();
  EXPECT_EQ(Alloc.pageStats().BytesInUse, Before - Freed);

  // The allocator must still work after trimming.
  void *P = Alloc.allocate(56);
  ASSERT_NE(P, nullptr);
  Alloc.deallocate(P);
}
