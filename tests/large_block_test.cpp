//===- tests/large_block_test.cpp - Large-block path edge cases -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The paper handles "large" blocks by direct OS allocation (Fig. 4 malloc
// line 3, Fig. 6 free line 5). These tests pin the boundary between the
// superblock classes and the OS path: sizes straddling the largest size
// class +/- 1, zero-size malloc, and realloc shrink/grow across the
// small/large boundary.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/SizeClasses.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace lfm;

namespace {

class LargeBlockTest : public ::testing::Test {
protected:
  AllocatorOptions options() {
    AllocatorOptions Opts;
    Opts.NumHeaps = 1;
    Opts.EnableStats = true;
    return Opts;
  }

  /// Largest payload still served from superblocks by this instance; a
  /// request of Boundary+1 bytes must take the large-block OS path.
  static std::size_t boundaryPayload(const LFAllocator &A) {
    return classPayloadSize(A.numSizeClassesInUse() - 1);
  }

  static bool isLargePath(std::size_t Bytes, const LFAllocator &A) {
    return sizeToClass(Bytes) >= A.numSizeClassesInUse();
  }
};

TEST_F(LargeBlockTest, BoundaryStraddle) {
  LFAllocator A(options());
  const std::size_t Boundary = boundaryPayload(A);
  ASSERT_FALSE(isLargePath(Boundary, A));
  ASSERT_FALSE(isLargePath(Boundary - 1, A));
  ASSERT_TRUE(isLargePath(Boundary + 1, A));

  // Allocate the three straddling sizes, fill each distinctly, check no
  // overlap and correct usable sizes.
  struct Probe {
    std::size_t Bytes;
    unsigned char Fill;
    void *Ptr;
  };
  std::vector<Probe> Probes = {{Boundary - 1, 0xA1, nullptr},
                               {Boundary, 0xB2, nullptr},
                               {Boundary + 1, 0xC3, nullptr}};
  for (Probe &P : Probes) {
    P.Ptr = A.allocate(P.Bytes);
    ASSERT_NE(P.Ptr, nullptr);
    EXPECT_GE(A.usableSize(P.Ptr), P.Bytes);
    std::memset(P.Ptr, P.Fill, P.Bytes);
  }
  for (const Probe &P : Probes)
    for (std::size_t I = 0; I < P.Bytes; ++I)
      ASSERT_EQ(static_cast<unsigned char *>(P.Ptr)[I], P.Fill)
          << "byte " << I << " of the " << P.Bytes << "-byte block clobbered";
  for (const Probe &P : Probes)
    A.deallocate(P.Ptr);

  const OpStats St = A.opStats();
  if (A.options().EnableStats) {
    EXPECT_EQ(St.LargeMallocs, 1u);
    EXPECT_EQ(St.LargeFrees, 1u);
  }
}

TEST_F(LargeBlockTest, ZeroSizeMallocReturnsUniquePointers) {
  LFAllocator A(options());
  void *P1 = A.allocate(0);
  void *P2 = A.allocate(0);
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);
  EXPECT_NE(P1, P2) << "zero-size allocations must be distinct";
  A.deallocate(P1);
  A.deallocate(P2);
}

TEST_F(LargeBlockTest, ZeroSizeReallocFreesAndNulls) {
  LFAllocator A(options());
  void *P = A.allocate(64);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(A.reallocate(P, 0), nullptr); // C23 semantics: free, null.
}

TEST_F(LargeBlockTest, ReallocGrowSmallToLarge) {
  LFAllocator A(options());
  const std::size_t Boundary = boundaryPayload(A);
  char *P = static_cast<char *>(A.allocate(Boundary));
  ASSERT_NE(P, nullptr);
  for (std::size_t I = 0; I < Boundary; ++I)
    P[I] = static_cast<char>(I * 131 + 7);

  char *Q = static_cast<char *>(A.reallocate(P, Boundary * 4));
  ASSERT_NE(Q, nullptr);
  ASSERT_TRUE(isLargePath(Boundary * 4, A));
  EXPECT_GE(A.usableSize(Q), Boundary * 4);
  for (std::size_t I = 0; I < Boundary; ++I)
    ASSERT_EQ(Q[I], static_cast<char>(I * 131 + 7))
        << "content lost crossing into the large path at byte " << I;
  A.deallocate(Q);
}

TEST_F(LargeBlockTest, ReallocShrinkLargeToSmall) {
  LFAllocator A(options());
  const std::size_t Boundary = boundaryPayload(A);
  const std::size_t LargeBytes = Boundary * 3;
  ASSERT_TRUE(isLargePath(LargeBytes, A));
  char *P = static_cast<char *>(A.allocate(LargeBytes));
  ASSERT_NE(P, nullptr);
  const std::size_t Keep = 100;
  for (std::size_t I = 0; I < Keep; ++I)
    P[I] = static_cast<char>(I ^ 0x5A);

  // Shrink far below the boundary. The allocator may shrink in place or
  // move to a small block; either way the prefix must keep working.
  char *Q = static_cast<char *>(A.reallocate(P, Keep));
  ASSERT_NE(Q, nullptr);
  EXPECT_GE(A.usableSize(Q), Keep);
  for (std::size_t I = 0; I < Keep; ++I)
    ASSERT_EQ(Q[I], static_cast<char>(I ^ 0x5A));
  A.deallocate(Q);
}

TEST_F(LargeBlockTest, ReallocGrowWithinLarge) {
  LFAllocator A(options());
  const std::size_t Start = boundaryPayload(A) * 2;
  ASSERT_TRUE(isLargePath(Start, A));
  char *P = static_cast<char *>(A.allocate(Start));
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x77, Start);
  // Large->large growth exercises the mremap path (or copy fallback).
  char *Q = static_cast<char *>(A.reallocate(P, Start * 8));
  ASSERT_NE(Q, nullptr);
  EXPECT_GE(A.usableSize(Q), Start * 8);
  for (std::size_t I = 0; I < Start; ++I)
    ASSERT_EQ(static_cast<unsigned char>(Q[I]), 0x77u);
  A.deallocate(Q);
}

TEST_F(LargeBlockTest, HugeRequestFailsCleanly) {
  LFAllocator A(options());
  // An absurd size must return null, not crash or wrap the arithmetic.
  EXPECT_EQ(A.allocate(~std::size_t{0} - 100), nullptr);
  EXPECT_EQ(A.allocateZeroed(~std::size_t{0} / 2, 4), nullptr);
}

TEST_F(LargeBlockTest, LargeBlocksReturnPagesToOs) {
  LFAllocator A(options());
  const std::size_t Before = A.pageStats().BytesInUse;
  std::vector<void *> Ptrs;
  for (int I = 0; I < 8; ++I)
    Ptrs.push_back(A.allocate(1 << 20));
  EXPECT_GE(A.pageStats().BytesInUse, Before + (8u << 20));
  for (void *P : Ptrs)
    A.deallocate(P);
  EXPECT_EQ(A.pageStats().BytesInUse, Before)
      << "large frees must unmap immediately (Fig. 6 line 5)";
}

} // namespace
