//===- tests/latency_test.cpp - Sampled latency observability -------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Covers the tail-latency layer bottom-up: the shared log-linear bucket
// math, the sharded histogram's quantile-within-bucket-bounds contract,
// the deterministic sampler (seeded from LFM_TEST_SEED), and the
// allocator's per-path / per-class attribution as seen through
// metricsSnapshot().
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/SizeClasses.h"
#include "support/LogBuckets.h"
#include "telemetry/LatencyHistogram.h"
#include "telemetry/LatencyRecorder.h"
#include "telemetry/MetricsSnapshot.h"
#include "telemetry/TelemetryConfig.h"

#include "TestSeed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

using namespace lfm;
using telemetry::LatencyHistogramSnapshot;
using telemetry::LatencyPath;

//===----------------------------------------------------------------------===//
// LogBuckets: the shared bucket math
//===----------------------------------------------------------------------===//

TEST(LogBuckets, BoundsBracketEveryValue) {
  // Deterministic xorshift walk over the 64-bit domain.
  std::uint64_t X = test::baseSeed() | 1;
  for (unsigned I = 0; I < 100000; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    const unsigned B = logbuckets::bucketIndex(X);
    ASSERT_LT(B, logbuckets::NumBuckets);
    ASSERT_LE(logbuckets::bucketLower(B), X);
    if (B < logbuckets::NumBuckets - 1)
      ASSERT_LT(X, logbuckets::bucketUpper(B));
    else
      ASSERT_LE(X, logbuckets::bucketUpper(B));
  }
}

TEST(LogBuckets, IndexIsMonotoneAndBoundsTile) {
  // Buckets tile the domain: each upper bound is the next lower bound,
  // and the index is order-preserving across bucket boundaries.
  for (unsigned I = 0; I + 1 < logbuckets::NumBuckets; ++I) {
    ASSERT_EQ(logbuckets::bucketUpper(I), logbuckets::bucketLower(I + 1))
        << "gap or overlap at bucket " << I;
    ASSERT_EQ(logbuckets::bucketIndex(logbuckets::bucketLower(I)), I);
    ASSERT_EQ(logbuckets::bucketIndex(logbuckets::bucketUpper(I) - 1), I);
  }
  ASSERT_EQ(logbuckets::bucketIndex(~std::uint64_t{0}),
            logbuckets::NumBuckets - 1);
}

TEST(LogBuckets, RelativeResolutionIsBounded) {
  // The layout's contract: bucket width / lower bound <= 1/NumMinor for
  // every non-singleton bucket (12.5% with 8 minor buckets).
  for (unsigned I = logbuckets::NumMinor; I < logbuckets::NumBuckets - 1;
       ++I) {
    const double Lo = static_cast<double>(logbuckets::bucketLower(I));
    const double Width =
        static_cast<double>(logbuckets::bucketUpper(I) -
                            logbuckets::bucketLower(I));
    ASSERT_LE(Width / Lo, 1.0 / logbuckets::NumMinor + 1e-12)
        << "bucket " << I;
  }
}

//===----------------------------------------------------------------------===//
// LatencyHistogram: quantiles are exact bucket bounds
//===----------------------------------------------------------------------===//

#if LFM_TELEMETRY

TEST(LatencyHistogram, CountsSumAndMaxAreExactAtQuiescence) {
  telemetry::LatencyHistogram H;
  std::uint64_t Sum = 0, Max = 0;
  for (std::uint64_t V : {7ull, 100ull, 100ull, 5000ull, 123456789ull}) {
    H.record(V);
    Sum += V;
    Max = std::max(Max, V);
  }
  LatencyHistogramSnapshot Snap;
  H.snapshot(Snap);
  EXPECT_EQ(Snap.Count, 5u);
  EXPECT_EQ(Snap.SumNs, Sum);
  EXPECT_EQ(Snap.MaxNs, Max);
}

TEST(LatencyHistogram, QuantileBoundsBracketTheExactQuantile) {
  // Feed a deterministic heavy-tailed sample set, compute every exact
  // rank from the sorted data, and require [quantileLowerNs,
  // quantileUpperNs] to bracket it at each probed quantile.
  telemetry::LatencyHistogram H;
  std::vector<std::uint64_t> Values;
  std::uint64_t X = test::baseSeed() ^ 0xABCDEF12345ull;
  for (unsigned I = 0; I < 20000; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    // Mix of a tight mode (~100 ns) and a 1-in-16 heavy tail.
    const std::uint64_t V =
        (X & 0xF) == 0 ? 10000 + (X % 3000000) : 60 + (X % 90);
    Values.push_back(V);
    H.record(V);
  }
  LatencyHistogramSnapshot Snap;
  H.snapshot(Snap);
  ASSERT_EQ(Snap.Count, Values.size());
  std::sort(Values.begin(), Values.end());
  for (double Q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t Exact =
        Values[static_cast<std::size_t>(Q * (Values.size() - 1))];
    EXPECT_LE(Snap.quantileLowerNs(Q), Exact) << "Q=" << Q;
    EXPECT_GE(Snap.quantileUpperNs(Q), Exact) << "Q=" << Q;
    // The bracket is one bucket wide: within the layout's 12.5% relative
    // resolution (plus 1 for the singleton rounding).
    EXPECT_LE(Snap.quantileUpperNs(Q) - Snap.quantileLowerNs(Q),
              Snap.quantileLowerNs(Q) / logbuckets::NumMinor + 1)
        << "Q=" << Q;
  }
}

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  telemetry::LatencyHistogram H;
  LatencyHistogramSnapshot Snap;
  H.snapshot(Snap);
  EXPECT_EQ(Snap.Count, 0u);
  EXPECT_EQ(Snap.quantileUpperNs(0.5), 0u);
  EXPECT_EQ(Snap.quantileLowerNs(0.99), 0u);
}

//===----------------------------------------------------------------------===//
// LatencyRecorder: deterministic sampling
//===----------------------------------------------------------------------===//

namespace {

/// Drives \p N begin() probes on a fresh recorder and returns the index
/// of every probe that was sampled (single-threaded, so the gap sequence
/// is exactly the thread slot's seeded xorshift draw).
std::vector<unsigned> sampledIndices(std::uint64_t Period, std::uint64_t Seed,
                                     unsigned N) {
  telemetry::LatencyRecorder Rec({Period, Seed});
  std::vector<unsigned> Out;
  for (unsigned I = 0; I < N; ++I) {
    const std::uint64_t Start = Rec.begin();
    if (Start != 0) {
      Out.push_back(I);
      Rec.end(Start, LatencyPath::MallocActive, 0);
    }
  }
  return Out;
}

} // namespace

TEST(LatencyRecorder, SameSeedSameSchedule) {
  const std::uint64_t Seed = test::baseSeed();
  const auto A = sampledIndices(8, Seed, 4000);
  const auto B = sampledIndices(8, Seed, 4000);
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B) << "sampling schedule must be a pure function of the seed";
  // Mean gap ~8: the sample count lands within a loose 3x band.
  EXPECT_GT(A.size(), 4000u / 24);
  EXPECT_LT(A.size(), 4000u * 3 / 8);
}

TEST(LatencyRecorder, DifferentSeedsDiverge) {
  const std::uint64_t Seed = test::baseSeed();
  const auto A = sampledIndices(8, Seed, 4000);
  const auto B = sampledIndices(8, Seed + 1, 4000);
  EXPECT_NE(A, B);
}

TEST(LatencyRecorder, PeriodOneSamplesEveryOperation) {
  const auto A = sampledIndices(1, test::baseSeed(), 500);
  ASSERT_EQ(A.size(), 500u);
  telemetry::LatencyRecorder Rec({1, 0});
  for (unsigned I = 0; I < 100; ++I)
    Rec.recordNs(LatencyPath::FreeSmall, 0, 42);
  EXPECT_EQ(Rec.samples(), 100u);
  EXPECT_EQ(Rec.exporterSamples(), 0u);
}

TEST(LatencyRecorder, PeriodZeroDisablesEverything) {
  telemetry::LatencyRecorder Rec({0, 0});
  EXPECT_FALSE(Rec.enabled());
  EXPECT_EQ(Rec.begin(), 0u);
  EXPECT_EQ(Rec.rareBegin(), 0u);
  LatencyHistogramSnapshot Snap;
  Rec.snapshotPath(LatencyPath::MallocActive, Snap);
  EXPECT_EQ(Snap.Count, 0u);
}

TEST(LatencyRecorder, ClassSummariesAttributeByClass) {
  telemetry::LatencyRecorder Rec({1, 0});
  Rec.recordNs(LatencyPath::MallocActive, 3, 100);
  Rec.recordNs(LatencyPath::MallocActive, 3, 300);
  Rec.recordNs(LatencyPath::MallocLarge, NumSizeClasses, 9000);
  Rec.recordNs(LatencyPath::Trim, telemetry::LatencyRecorder::NoClass, 50);
  std::uint64_t Count = 0, Sum = 0, Max = 0;
  Rec.classSummary(3, Count, Sum, Max);
  EXPECT_EQ(Count, 2u);
  EXPECT_EQ(Sum, 400u);
  EXPECT_EQ(Max, 300u);
  Rec.classSummary(NumSizeClasses, Count, Sum, Max);
  EXPECT_EQ(Count, 1u);
  EXPECT_EQ(Sum, 9000u);
  // NoClass must not have leaked into any class slot.
  std::uint64_t Total = 0;
  for (unsigned C = 0; C < telemetry::NumLatencyClasses; ++C) {
    Rec.classSummary(C, Count, Sum, Max);
    Total += Count;
  }
  EXPECT_EQ(Total, 3u);
}

#endif // LFM_TELEMETRY

//===----------------------------------------------------------------------===//
// Allocator integration: per-path attribution through metricsSnapshot()
//===----------------------------------------------------------------------===//

namespace {

AllocatorOptions timedOptions() {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  Opts.LatencySamplePeriod = 1; // Every operation: exact attribution.
  Opts.LatencySampleSeed = test::baseSeed();
  return Opts;
}

std::uint64_t pathCount(const telemetry::MetricsSnapshot &Snap,
                        LatencyPath P) {
  return Snap.Latency[static_cast<unsigned>(P)].Count;
}

} // namespace

TEST(AllocatorLatency, EveryMallocAndFreeLandsOnExactlyOnePath) {
  LFAllocator Alloc(timedOptions());
  constexpr unsigned N = 2000;
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < N; ++I)
    Ptrs.push_back(Alloc.allocate(64));
  for (void *P : Ptrs)
    Alloc.deallocate(P);

  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
#if LFM_TELEMETRY
  ASSERT_TRUE(Snap.LatencyEnabled);
  EXPECT_EQ(Snap.LatencySamplePeriod, 1u);
  // Every sampled malloc is attributed to exactly one serving path.
  const std::uint64_t MallocTotal =
      pathCount(Snap, LatencyPath::MallocActive) +
      pathCount(Snap, LatencyPath::MallocPartial) +
      pathCount(Snap, LatencyPath::MallocNewSb) +
      pathCount(Snap, LatencyPath::MallocLarge);
  EXPECT_EQ(MallocTotal, N);
  const std::uint64_t FreeTotal =
      pathCount(Snap, LatencyPath::FreeSmall) +
      pathCount(Snap, LatencyPath::FreeSbRelease) +
      pathCount(Snap, LatencyPath::FreeLarge);
  EXPECT_EQ(FreeTotal, N);
  // The common case dominates: most mallocs served from the Active word,
  // at least one paid the new-superblock path.
  EXPECT_GT(pathCount(Snap, LatencyPath::MallocActive),
            pathCount(Snap, LatencyPath::MallocNewSb));
  EXPECT_GT(pathCount(Snap, LatencyPath::MallocNewSb), 0u);
  EXPECT_EQ(pathCount(Snap, LatencyPath::MallocLarge), 0u);
  EXPECT_EQ(Snap.counter(telemetry::Counter::LatencySamples),
            MallocTotal + FreeTotal);
  EXPECT_EQ(Snap.counter(telemetry::Counter::ExporterAllocs), 0u);
#else
  EXPECT_FALSE(Snap.LatencyEnabled);
  EXPECT_EQ(pathCount(Snap, LatencyPath::MallocActive), 0u);
#endif
}

TEST(AllocatorLatency, LargeOperationsUseTheLargePaths) {
  LFAllocator Alloc(timedOptions());
  void *P = Alloc.allocate(2 * 1024 * 1024);
  ASSERT_NE(P, nullptr);
  Alloc.deallocate(P);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  (void)Snap; // Only inspected in telemetry builds.
#if LFM_TELEMETRY
  EXPECT_EQ(pathCount(Snap, LatencyPath::MallocLarge), 1u);
  EXPECT_EQ(pathCount(Snap, LatencyPath::FreeLarge), 1u);
  // Large operations attribute to the shared beyond-class slot.
  EXPECT_EQ(Snap.LatencyClasses[NumSizeClasses].Count, 2u);
#endif
}

TEST(AllocatorLatency, ClassAttributionFollowsSizeToClass) {
  LFAllocator Alloc(timedOptions());
  constexpr std::size_t Size = 128;
  void *P = Alloc.allocate(Size);
  ASSERT_NE(P, nullptr);
  Alloc.deallocate(P);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  (void)Snap; // Only inspected in telemetry builds.
#if LFM_TELEMETRY
  const unsigned Class = sizeToClass(Size);
  ASSERT_LT(Class, NumSizeClasses);
  // One sampled malloc + one sampled free for this class.
  EXPECT_EQ(Snap.LatencyClasses[Class].Count, 2u);
  EXPECT_GT(Snap.LatencyClasses[Class].MaxNs, 0u);
#endif
}

TEST(AllocatorLatency, QuantileUpperBoundsAreMonotoneAcrossRanks) {
  LFAllocator Alloc(timedOptions());
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 4000; ++I)
    Ptrs.push_back(Alloc.allocate(48));
  for (void *P : Ptrs)
    Alloc.deallocate(P);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  (void)Snap; // Only inspected in telemetry builds.
#if LFM_TELEMETRY
  const telemetry::LatencyPathStats &S =
      Snap.Latency[static_cast<unsigned>(LatencyPath::MallocActive)];
  ASSERT_GT(S.Count, 0u);
  EXPECT_LE(S.P50UpperNs, S.P99UpperNs);
  EXPECT_LE(S.P99UpperNs, S.P999UpperNs);
  EXPECT_LE(S.P999UpperNs, logbuckets::bucketUpper(logbuckets::bucketIndex(
                               S.MaxNs)));
  EXPECT_GT(S.SumNs, 0u);
#endif
}

TEST(AllocatorLatency, StatsOffMeansNoRecorder) {
  AllocatorOptions Opts;
  Opts.EnableStats = false;
  Opts.LatencySamplePeriod = 1; // Ignored without stats.
  LFAllocator Alloc(Opts);
  void *P = Alloc.allocate(64);
  Alloc.deallocate(P);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_FALSE(Snap.LatencyEnabled);
  EXPECT_EQ(Snap.LatencySamplePeriod, 0u);
  EXPECT_EQ(Snap.counter(telemetry::Counter::LatencySamples), 0u);
}

TEST(AllocatorLatency, PeriodZeroWithStatsKeepsCountersButNoLatency) {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  Opts.LatencySamplePeriod = 0;
  LFAllocator Alloc(Opts);
  void *P = Alloc.allocate(64);
  Alloc.deallocate(P);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_FALSE(Snap.LatencyEnabled);
#if LFM_TELEMETRY
  EXPECT_EQ(Snap.counter(telemetry::Counter::Mallocs), 1u);
#endif
  EXPECT_EQ(Snap.counter(telemetry::Counter::LatencySamples), 0u);
}
