//===- tests/signal_safety_test.cpp - Async-signal-safety test ------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The paper's §1 async-signal-safety claim, as a test: a signal handler
// that calls malloc/free while the interrupted thread is itself inside
// malloc/free must make progress (a lock-based allocator deadlocks in
// this scenario; POSIX forbids malloc in handlers for exactly that
// reason).
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFMalloc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <ctime>
#include <sys/time.h>

namespace {

std::atomic<std::uint64_t> HandlerRounds{0};
std::atomic<bool> HandlerFailure{false};

void allocatingHandler(int) {
  // Allocate, verify writability, free — from signal context.
  void *P = lfm::lfMalloc(40);
  if (!P) {
    HandlerFailure.store(true);
    return;
  }
  std::memset(P, 0x99, 40);
  lfm::lfFree(P);
  HandlerRounds.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TEST(SignalSafety, HandlerAllocatesWhileMainThreadAllocates) {
  lfm::lfFree(lfm::lfMalloc(1)); // Initialize before signals can land.

  struct sigaction Sa = {};
  Sa.sa_handler = allocatingHandler;
  ASSERT_EQ(sigaction(SIGALRM, &Sa, nullptr), 0);

  itimerval Timer = {};
  Timer.it_interval.tv_usec = 1000; // 1 ms recurring.
  Timer.it_value.tv_usec = 1000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &Timer, nullptr), 0);

  // Hammer the allocator so signals frequently land mid-operation.
  const std::time_t Deadline = std::time(nullptr) + 2;
  std::uint64_t MainRounds = 0;
  while (std::time(nullptr) < Deadline) {
    void *P = lfm::lfMalloc(64);
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x44, 64);
    lfm::lfFree(P);
    ++MainRounds;
  }

  Timer = {};
  setitimer(ITIMER_REAL, &Timer, nullptr); // Disarm.

  EXPECT_FALSE(HandlerFailure.load());
  EXPECT_GT(HandlerRounds.load(), 50u)
      << "handler barely ran; timer misconfigured?";
  EXPECT_GT(MainRounds, 1000u)
      << "main thread starved: the handler blocked allocation progress";
}
