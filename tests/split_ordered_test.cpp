//===- tests/split_ordered_test.cpp - Split-ordered hash tests ------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lockfree/SplitOrderedHashSet.h"

#include "baselines/AllocatorInterface.h"
#include "support/Barrier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace lfm;

TEST(SplitOrderedHashSet, BasicSemantics) {
  HazardDomain Domain;
  SplitOrderedHashSet Set(Domain);
  EXPECT_FALSE(Set.contains(7));
  EXPECT_TRUE(Set.insert(7));
  EXPECT_FALSE(Set.insert(7));
  EXPECT_TRUE(Set.contains(7));
  EXPECT_EQ(Set.size(), 1);
  EXPECT_TRUE(Set.remove(7));
  EXPECT_FALSE(Set.remove(7));
  EXPECT_FALSE(Set.contains(7));
  EXPECT_EQ(Set.size(), 0);
}

TEST(SplitOrderedHashSet, KeyZeroAndLargeKeysWork) {
  HazardDomain Domain;
  SplitOrderedHashSet Set(Domain);
  // Key 0's split-order key is 1 (dummy 0 is 0) — must not collide.
  EXPECT_TRUE(Set.insert(0));
  EXPECT_TRUE(Set.contains(0));
  const std::uint64_t Big = (1ULL << 63) - 1;
  EXPECT_TRUE(Set.insert(Big));
  EXPECT_TRUE(Set.contains(Big));
  EXPECT_TRUE(Set.remove(0));
  EXPECT_TRUE(Set.contains(Big));
  EXPECT_TRUE(Set.remove(Big));
}

TEST(SplitOrderedHashSet, TableDoublesUnderLoad) {
  HazardDomain Domain;
  SplitOrderedHashSet Set(Domain, NodeMemory{nullptr, nullptr, nullptr},
                          /*LoadFactor=*/2);
  const std::uint64_t Before = Set.bucketCount();
  for (std::uint64_t K = 0; K < 4000; ++K)
    ASSERT_TRUE(Set.insert(K * 2654435761u));
  EXPECT_GT(Set.bucketCount(), Before)
      << "table never extended despite load factor 2";
  // Growth must not lose or duplicate anything.
  for (std::uint64_t K = 0; K < 4000; ++K) {
    ASSERT_TRUE(Set.contains(K * 2654435761u)) << K;
    ASSERT_FALSE(Set.insert(K * 2654435761u)) << K;
  }
  EXPECT_EQ(Set.size(), 4000);
}

TEST(SplitOrderedHashSet, RandomizedAgainstStdSet) {
  HazardDomain Domain;
  SplitOrderedHashSet Set(Domain);
  std::set<std::uint64_t> Model;
  XorShift128 Rng(4242);
  for (int I = 0; I < 30000; ++I) {
    const std::uint64_t K = Rng.nextBounded(2000);
    switch (Rng.nextBounded(3)) {
    case 0:
      ASSERT_EQ(Set.insert(K), Model.insert(K).second) << "key " << K;
      break;
    case 1:
      ASSERT_EQ(Set.remove(K), Model.erase(K) > 0) << "key " << K;
      break;
    default:
      ASSERT_EQ(Set.contains(K), Model.count(K) > 0) << "key " << K;
    }
  }
  EXPECT_EQ(Set.size(), static_cast<std::int64_t>(Model.size()));
}

TEST(SplitOrderedHashSet, ContendedInsertRemoveExactlyOnce) {
  HazardDomain Domain;
  SplitOrderedHashSet Set(Domain);
  constexpr unsigned Threads = 6, Keys = 3000;
  SpinBarrier PhaseBarrier(Threads);
  std::atomic<int> Inserted{0}, Removed{0};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (unsigned K = 0; K < Keys; ++K)
        if (Set.insert(K * 7919))
          Inserted.fetch_add(1);
      PhaseBarrier.arriveAndWait();
      for (unsigned K = 0; K < Keys; ++K)
        if (Set.remove(K * 7919))
          Removed.fetch_add(1);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Inserted.load(), static_cast<int>(Keys));
  EXPECT_EQ(Removed.load(), static_cast<int>(Keys));
  EXPECT_EQ(Set.size(), 0);
}

TEST(SplitOrderedHashSet, ConcurrentMixedChurnWithGrowth) {
  HazardDomain Domain;
  SplitOrderedHashSet Set(Domain, NodeMemory{nullptr, nullptr, nullptr},
                          /*LoadFactor=*/2);
  constexpr unsigned Threads = 8, Iters = 15000;
  std::atomic<long> Balance{0};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      XorShift128 Rng(T * 13 + 7);
      for (unsigned I = 0; I < Iters; ++I) {
        const std::uint64_t K = Rng.nextBounded(20'000);
        if (Rng.nextBounded(2)) {
          if (Set.insert(K))
            Balance.fetch_add(1);
        } else {
          if (Set.remove(K))
            Balance.fetch_sub(1);
        }
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Set.size(), Balance.load());
  // Verify membership exactly against a rebuilt model.
  long Present = 0;
  for (std::uint64_t K = 0; K < 20'000; ++K)
    if (Set.contains(K))
      ++Present;
  EXPECT_EQ(Present, Balance.load());
}

TEST(SplitOrderedHashSet, MallocBackedNodes) {
  // §5 composition over the resizable table.
  auto Alloc = makeAllocator(AllocatorKind::LockFree, 2);
  {
    HazardDomain Domain;
    SplitOrderedHashSet Set(
        Domain,
        NodeMemory{[](void *Ctx, std::size_t N) {
                     return static_cast<MallocInterface *>(Ctx)->malloc(N);
                   },
                   [](void *Ctx, void *P) {
                     static_cast<MallocInterface *>(Ctx)->free(P);
                   },
                   Alloc.get()});
    for (std::uint64_t K = 0; K < 5000; ++K)
      ASSERT_TRUE(Set.insert(K * 31));
    for (std::uint64_t K = 0; K < 5000; K += 2)
      ASSERT_TRUE(Set.remove(K * 31));
    EXPECT_EQ(Set.size(), 2500);
    EXPECT_GT(Alloc->pageStats().BytesInUse, 0u);
  }
  SUCCEED();
}
