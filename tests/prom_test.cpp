//===- tests/prom_test.cpp - Prometheus exposition contract ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// A strict parser over LFAllocator::prometheusText() and the
// lf_malloc_ctl("dump.prometheus") key: every line must be a well-formed
// HELP/TYPE comment or a sample, every sample's family must be declared,
// counter families must end in _total, histogram bucket series must be
// cumulative and monotone in le with +Inf equal to _count, and no series
// may appear twice. This is the contract a real scraper depends on.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/LFMalloc.h"
#include "telemetry/ContentionSite.h"
#include "telemetry/TelemetryConfig.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace lfm;

namespace {

struct Sample {
  std::string Family; ///< Metric name with labels stripped.
  std::string Labels; ///< Raw label block, "" when none.
  double Value = 0;
};

/// Minimal exposition-format 0.0.4 parser; fails the test on any
/// malformed line instead of guessing.
struct Exposition {
  std::map<std::string, std::string> Types; ///< family -> counter|gauge|...
  std::set<std::string> Helped;
  std::vector<Sample> Samples;
  std::set<std::string> SeriesSeen; ///< full "name{labels}" for dup check.
  std::vector<std::string> Errors;

  explicit Exposition(const std::string &Text) {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line)) {
      if (Line.empty()) {
        Errors.push_back("blank line");
        continue;
      }
      if (Line.rfind("# HELP ", 0) == 0) {
        const std::string Rest = Line.substr(7);
        const std::size_t Sp = Rest.find(' ');
        if (Sp == std::string::npos || Sp + 1 >= Rest.size())
          Errors.push_back("HELP without text: " + Line);
        else
          Helped.insert(Rest.substr(0, Sp));
        continue;
      }
      if (Line.rfind("# TYPE ", 0) == 0) {
        const std::string Rest = Line.substr(7);
        const std::size_t Sp = Rest.find(' ');
        if (Sp == std::string::npos) {
          Errors.push_back("TYPE without type: " + Line);
          continue;
        }
        const std::string Family = Rest.substr(0, Sp);
        const std::string Type = Rest.substr(Sp + 1);
        if (Type != "counter" && Type != "gauge" && Type != "histogram")
          Errors.push_back("unknown type: " + Line);
        if (!Types.emplace(Family, Type).second)
          Errors.push_back("duplicate TYPE for " + Family);
        continue;
      }
      if (Line[0] == '#') {
        Errors.push_back("unknown comment: " + Line);
        continue;
      }
      parseSample(Line);
    }
  }

  void parseSample(const std::string &Line) {
    const std::size_t Sp = Line.rfind(' ');
    if (Sp == std::string::npos || Sp + 1 >= Line.size()) {
      Errors.push_back("sample without value: " + Line);
      return;
    }
    const std::string Series = Line.substr(0, Sp);
    const std::string ValueText = Line.substr(Sp + 1);
    Sample S;
    char *End = nullptr;
    S.Value = std::strtod(ValueText.c_str(), &End);
    if (End == ValueText.c_str() || *End != '\0') {
      Errors.push_back("bad value: " + Line);
      return;
    }
    const std::size_t Brace = Series.find('{');
    if (Brace == std::string::npos) {
      S.Family = Series;
    } else {
      if (Series.back() != '}') {
        Errors.push_back("unterminated labels: " + Line);
        return;
      }
      S.Family = Series.substr(0, Brace);
      S.Labels = Series.substr(Brace + 1, Series.size() - Brace - 2);
    }
    if (!SeriesSeen.insert(Series).second)
      Errors.push_back("duplicate series: " + Series);
    Samples.push_back(S);
  }

  /// The family a sample belongs to for TYPE purposes: histogram samples
  /// use the base name without _bucket/_sum/_count.
  static std::string typeFamily(const std::string &Name) {
    for (const char *Suffix : {"_bucket", "_sum", "_count"}) {
      const std::string S(Suffix);
      if (Name.size() > S.size() &&
          Name.compare(Name.size() - S.size(), S.size(), S) == 0) {
        const std::string Base = Name.substr(0, Name.size() - S.size());
        return Base;
      }
    }
    return Name;
  }
};

std::string prometheusText(LFAllocator &Alloc) {
  char Path[] = "/tmp/lfm_prom_test_XXXXXX";
  const int Fd = ::mkstemp(Path);
  EXPECT_GE(Fd, 0);
  EXPECT_EQ(Alloc.prometheusText(Fd), 0);
  ::close(Fd);
  std::string Text;
  std::FILE *F = std::fopen(Path, "r");
  EXPECT_NE(F, nullptr);
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  std::remove(Path);
  return Text;
}

AllocatorOptions timedOptions() {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  Opts.LatencySamplePeriod = 1;
  return Opts;
}

} // namespace

TEST(Prometheus, ExpositionParsesStrictly) {
  LFAllocator Alloc(timedOptions());
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 500; ++I)
    Ptrs.push_back(Alloc.allocate(64));
  for (void *P : Ptrs)
    Alloc.deallocate(P);

  const Exposition E(prometheusText(Alloc));
  ASSERT_TRUE(E.Errors.empty()) << E.Errors.front();
  ASSERT_FALSE(E.Samples.empty());

  for (const Sample &S : E.Samples) {
    const std::string Family = Exposition::typeFamily(S.Family);
    // Histogram component names resolve to the declared base family;
    // plain counters/gauges must be declared under their own name.
    const auto It = E.Types.count(Family) ? E.Types.find(Family)
                                          : E.Types.find(S.Family);
    ASSERT_NE(It, E.Types.end()) << "undeclared family for " << S.Family;
    if (It->second == "counter") {
      EXPECT_TRUE(S.Family.size() > 6 &&
                  S.Family.compare(S.Family.size() - 6, 6, "_total") == 0)
          << "counter without _total: " << S.Family;
      EXPECT_GE(S.Value, 0.0);
    }
    EXPECT_TRUE(E.Helped.count(It->first)) << "TYPE without HELP: "
                                           << It->first;
  }

  // The core families a scraper would alert on must be present.
  for (const char *Must :
       {"lf_malloc_mallocs_total", "lf_malloc_frees_total",
        "lf_malloc_space_bytes_in_use", "lf_malloc_heaps",
        "lf_malloc_latency_sample_period"})
    EXPECT_TRUE(E.SeriesSeen.count(Must)) << Must << " missing";
}

TEST(Prometheus, LatencyHistogramIsCumulativeAndConsistent) {
  LFAllocator Alloc(timedOptions());
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 2000; ++I)
    Ptrs.push_back(Alloc.allocate(96));
  for (void *P : Ptrs)
    Alloc.deallocate(P);

  const Exposition E(prometheusText(Alloc));
  ASSERT_TRUE(E.Errors.empty()) << E.Errors.front();

#if LFM_TELEMETRY
  ASSERT_EQ(E.Types.count("lf_malloc_latency_ns"), 1u);
  ASSERT_EQ(E.Types.at("lf_malloc_latency_ns"), "histogram");

  // Group bucket samples by path label and check the histogram laws.
  std::map<std::string, std::vector<std::pair<double, double>>> Buckets;
  std::map<std::string, double> Counts, Infs;
  for (const Sample &S : E.Samples) {
    if (S.Family == "lf_malloc_latency_ns_count") {
      Counts[S.Labels] = S.Value;
      continue;
    }
    if (S.Family != "lf_malloc_latency_ns_bucket")
      continue;
    const std::size_t LePos = S.Labels.find("le=\"");
    ASSERT_NE(LePos, std::string::npos) << S.Labels;
    const std::string Le =
        S.Labels.substr(LePos + 4, S.Labels.size() - LePos - 5);
    const std::string Path = S.Labels.substr(0, LePos - 1);
    if (Le == "+Inf") {
      Infs[Path] = S.Value;
      continue;
    }
    Buckets[Path].emplace_back(std::stod(Le), S.Value);
  }
  ASSERT_FALSE(Infs.empty()) << "no latency histogram series";
  std::uint64_t TotalCount = 0;
  for (const auto &[Path, Series] : Buckets) {
    double LastLe = -1, LastCum = -1;
    for (const auto &[Le, Cum] : Series) {
      EXPECT_GT(Le, LastLe) << Path << ": le not increasing";
      EXPECT_GE(Cum, LastCum) << Path << ": buckets not cumulative";
      LastLe = Le;
      LastCum = Cum;
    }
    ASSERT_TRUE(Infs.count(Path)) << Path << ": missing +Inf";
    EXPECT_GE(Infs[Path], LastCum) << Path;
  }
  for (const auto &[Path, Inf] : Infs) {
    // _count carries the same path label block the buckets do.
    ASSERT_TRUE(Counts.count(Path)) << Path << ": missing _count";
    EXPECT_EQ(Inf, Counts[Path]) << Path << ": +Inf != _count";
    TotalCount += static_cast<std::uint64_t>(Inf);
  }
  // Period 1: every one of the 2000+2000 operations was sampled.
  EXPECT_GE(TotalCount, 4000u);
#endif // LFM_TELEMETRY
}

TEST(Prometheus, ContentionFamiliesExposePerSiteHistograms) {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  Opts.ContentionSamplePeriod = 1;
  LFAllocator Alloc(Opts);
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 1000; ++I)
    Ptrs.push_back(Alloc.allocate(64));
  for (void *P : Ptrs)
    Alloc.deallocate(P);

  const Exposition E(prometheusText(Alloc));
  ASSERT_TRUE(E.Errors.empty()) << E.Errors.front();
#if LFM_TELEMETRY
  ASSERT_EQ(E.Types.count("lf_malloc_cas_retries"), 1u);
  EXPECT_EQ(E.Types.at("lf_malloc_cas_retries"), "histogram");
  ASSERT_EQ(E.Types.count("lf_malloc_cas_loop_ns"), 1u);
  EXPECT_EQ(E.Types.at("lf_malloc_cas_loop_ns"), "histogram");

  // Every instrumented site gets its own labelled series on both
  // families, sampled or not — scrapers need stable series sets.
  std::set<std::string> RetrySites, LoopSites;
  double FreePushCount = -1;
  for (const Sample &S : E.Samples) {
    if (S.Family == "lf_malloc_cas_retries_count") {
      RetrySites.insert(S.Labels);
      if (S.Labels.find("site=\"free_push\"") != std::string::npos)
        FreePushCount = S.Value;
    }
    if (S.Family == "lf_malloc_cas_loop_ns_count")
      LoopSites.insert(S.Labels);
  }
  EXPECT_EQ(RetrySites.size(),
            static_cast<std::size_t>(telemetry::NumContentionSites));
  EXPECT_EQ(LoopSites.size(),
            static_cast<std::size_t>(telemetry::NumContentionSites));
  // Period 1: every free() filed one free_push loop sample.
  EXPECT_GE(FreePushCount, 1000.0);
#else
  EXPECT_EQ(E.Types.count("lf_malloc_cas_retries"), 0u);
#endif
  // The scalar health series are part of the core exposition in every
  // build (zeros when sampling is off).
  for (const char *Must :
       {"lf_malloc_contention_samples_total",
        "lf_malloc_contention_heat_dropped_total",
        "lf_malloc_contention_watchdog_armed",
        "lf_malloc_contention_watchdog_storms_total"})
    EXPECT_TRUE(E.SeriesSeen.count(Must)) << Must << " missing";
}

TEST(Prometheus, CtlDumpKeyWritesTheSameExposition) {
  // Through the default allocator: dump.prometheus to a file must parse
  // with the same strict parser (counters may be zero without LFM_STATS).
  const std::string Path = "./ctl_prom_dump.prom";
  ASSERT_EQ(lf_malloc_ctl("dump.prometheus", nullptr, nullptr, Path.c_str(),
                          Path.size() + 1),
            0);
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  std::string Text;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());
  const Exposition E(Text);
  EXPECT_TRUE(E.Errors.empty()) << E.Errors.front();
  EXPECT_TRUE(E.SeriesSeen.count("lf_malloc_mallocs_total"));
  EXPECT_TRUE(E.Types.count("lf_malloc_telemetry_compiled"));
}

TEST(Prometheus, SequencedDumpProducesDistinctParseableFiles) {
  // dump.prometheus_seq writes "<prefix>.<seq>.prom" using the cached
  // stats prefix (default "lfm-stats", sequence starts at 0000).
  std::remove("./lfm-stats.0000.prom");
  std::remove("./lfm-stats.0001.prom");
  ASSERT_EQ(lf_malloc_ctl("dump.prometheus_seq", nullptr, nullptr, nullptr,
                          0),
            0);
  ASSERT_EQ(lf_malloc_ctl("dump.prometheus_seq", nullptr, nullptr, nullptr,
                          0),
            0);
  for (const char *P : {"./lfm-stats.0000.prom", "./lfm-stats.0001.prom"}) {
    std::FILE *F = std::fopen(P, "r");
    ASSERT_NE(F, nullptr) << P;
    std::string Text;
    char Buf[4096];
    std::size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
      Text.append(Buf, N);
    std::fclose(F);
    std::remove(P);
    const Exposition E(Text);
    EXPECT_TRUE(E.Errors.empty()) << P << ": " << E.Errors.front();
    EXPECT_TRUE(E.SeriesSeen.count("lf_malloc_mallocs_total")) << P;
  }
}
