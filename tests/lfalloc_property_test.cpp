//===- tests/lfalloc_property_test.cpp - Configuration sweeps -------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Property-style sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) over the
// allocator's configuration space: heap counts x superblock sizes x
// partial-list policies x credit limits. The invariants checked for every
// configuration:
//   P1  every allocation is writable over its full usable size,
//   P2  live blocks never alias,
//   P3  mallocs == frees implies the op books balance,
//   P4  teardown returns every mapped byte (asserted inside munmap).
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "support/Random.h"

#include "TestSeed.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

using namespace lfm;

namespace {

using ConfigTuple =
    std::tuple<unsigned /*Heaps*/, std::size_t /*SbSize*/,
               PartialListPolicy, unsigned /*CreditsLimit*/,
               std::size_t /*HyperSize*/, unsigned /*PartialSlots*/,
               bool /*Tcache*/>;

class LFAllocConfigSweep : public ::testing::TestWithParam<ConfigTuple> {
protected:
  AllocatorOptions options() const {
    const auto [Heaps, SbSize, Policy, Credits, Hyper, Slots, Tcache] =
        GetParam();
    AllocatorOptions Opts;
    Opts.NumHeaps = Heaps;
    Opts.SuperblockSize = SbSize;
    Opts.PartialPolicy = Policy;
    Opts.CreditsLimit = Credits;
    Opts.HyperblockSize = Hyper;
    Opts.PartialSlotsPerHeap = Slots;
    Opts.EnableStats = true;
    // Half the matrix runs with the magazine layer in front of the same
    // configuration: every invariant must hold identically either way.
    Opts.EnableThreadCache = Tcache;
    Opts.ThreadCacheMagSize = 8;
    return Opts;
  }
};

std::string configName(const ::testing::TestParamInfo<ConfigTuple> &Info) {
  const auto [Heaps, SbSize, Policy, Credits, Hyper, Slots, Tcache] =
      Info.param;
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "h%u_sb%zu_%s_c%u_%s_p%u_%s", Heaps,
                SbSize, Policy == PartialListPolicy::Fifo ? "fifo" : "lifo",
                Credits, Hyper ? "hyper" : "direct", Slots,
                Tcache ? "tc" : "notc");
  return Buf;
}

} // namespace

TEST_P(LFAllocConfigSweep, SequentialChurnKeepsInvariants) {
  LFAllocator Alloc(options());
  XorShift128 Rng(42);
  std::map<unsigned char *, std::pair<std::size_t, unsigned char>> Live;

  for (int I = 0; I < 8000; ++I) {
    if (!Live.empty() && Rng.nextBounded(2) == 0) {
      auto It = Live.begin();
      std::advance(It, Rng.nextBounded(Live.size() > 8 ? 8 : Live.size()));
      auto [P, Meta] = *It;
      for (std::size_t K = 0; K < Meta.first; K += 11)
        ASSERT_EQ(P[K], Meta.second) << "P1/P2 violated";
      Alloc.deallocate(P);
      Live.erase(It);
    } else {
      const std::size_t N = Rng.nextBounded(1200);
      auto *P = static_cast<unsigned char *>(Alloc.allocate(N));
      ASSERT_NE(P, nullptr);
      ASSERT_GE(Alloc.usableSize(P), N);
      const auto V = static_cast<unsigned char>(Rng.next() | 1);
      std::memset(P, V, N);
      ASSERT_TRUE(Live.emplace(P, std::make_pair(N, V)).second)
          << "P2: allocator returned a live pointer again";
    }
  }
  for (auto &[P, Meta] : Live)
    Alloc.deallocate(P);
  const OpStats St = Alloc.opStats();
  EXPECT_EQ(St.Mallocs, St.Frees) << "P3 violated";
}

TEST_P(LFAllocConfigSweep, ParallelChurnKeepsInvariants) {
  LFAllocator Alloc(options());
  constexpr int Threads = 4, Iters = 8000, Slots = 24;
  std::atomic<int> Violations{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      XorShift128 Rng(T * 31 + 5);
      struct Rec {
        unsigned char *P = nullptr;
        std::size_t N = 0;
        unsigned char V = 0;
      } Slot[Slots];
      for (int I = 0; I < Iters; ++I) {
        Rec &R = Slot[Rng.nextBounded(Slots)];
        if (R.P) {
          for (std::size_t K = 0; K < R.N; K += 9)
            if (R.P[K] != R.V)
              Violations.fetch_add(1);
          Alloc.deallocate(R.P);
          R.P = nullptr;
        } else {
          R.N = Rng.nextBounded(600);
          R.V = static_cast<unsigned char>(Rng.next() | 1);
          R.P = static_cast<unsigned char *>(Alloc.allocate(R.N));
          if (R.P)
            std::memset(R.P, R.V, R.N);
          else
            Violations.fetch_add(1);
        }
      }
      for (Rec &R : Slot)
        if (R.P)
          Alloc.deallocate(R.P);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Violations.load(), 0);
  EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
}

namespace {

//===----------------------------------------------------------------------===//
// Seeded malloc/free trace-replay fuzzer.
//
// A single deterministic trace drawn from LFM_TEST_SEED (TestSeed.h): a
// skewed mix of sizes (mostly small-class, occasionally crossing into the
// large-block path), alignments, reallocs and lifetimes. A shadow
// std::unordered_map is the oracle: every live block carries a fill byte
// that must survive until its free, every freed block is poisoned before
// being handed back, so aliasing live blocks, use-after-free by the
// allocator's own metadata handling, or lost/duplicated blocks surface as
// pattern mismatches. Any failure prints the seed for exact replay.
//===----------------------------------------------------------------------===//

constexpr unsigned char PoisonByte = 0xDD;

struct ShadowRec {
  std::size_t Bytes;
  unsigned char Fill;
};

/// Draws an allocation size with the skew real traces show: mostly tiny,
/// a tail of medium sizes, and a sliver crossing the large-block boundary.
std::size_t drawSize(XorShift128 &Rng) {
  const std::uint64_t Bucket = Rng.nextBounded(100);
  if (Bucket < 8)
    return 0; // Zero-size malloc is legal and must stay unique.
  if (Bucket < 70)
    return Rng.nextBounded(256);
  if (Bucket < 90)
    return 256 + Rng.nextBounded(4096);
  if (Bucket < 97)
    return 4096 + Rng.nextBounded(60 * 1024);
  return 64 * 1024 + Rng.nextBounded(1 << 20); // Large path.
}

void replayTrace(std::uint64_t Seed, int Ops, bool WithTcache = false) {
  SCOPED_TRACE(::testing::Message()
               << "replay with: LFM_TEST_SEED=" << Seed
               << " ctest -R lfalloc_property"
               << (WithTcache ? " (tcache on)" : ""));
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  Opts.EnableThreadCache = WithTcache;
  LFAllocator Alloc(Opts);
  XorShift128 Rng(Seed);

  std::unordered_map<unsigned char *, ShadowRec> Shadow;
  std::vector<unsigned char *> Live; // Dense index for O(1) victim picks.

  const auto Verify = [&](unsigned char *P) {
    const ShadowRec &R = Shadow.at(P);
    for (std::size_t K = 0; K < R.Bytes; K += 7)
      ASSERT_EQ(P[K], R.Fill)
          << "live block clobbered at byte " << K << " of " << R.Bytes;
  };
  const auto Track = [&](unsigned char *P, std::size_t N) {
    ASSERT_NE(P, nullptr);
    ASSERT_GE(Alloc.usableSize(P), N);
    const auto Fill = static_cast<unsigned char>(Rng.next() | 1);
    std::memset(P, Fill, N);
    ASSERT_TRUE(Shadow.emplace(P, ShadowRec{N, Fill}).second)
        << "allocator returned a pointer that is still live";
    Live.push_back(P);
  };
  const auto RemoveAt = [&](std::size_t I) {
    Live[I] = Live.back();
    Live.pop_back();
  };

  for (int Op = 0; Op < Ops; ++Op) {
    const std::uint64_t Dice = Rng.nextBounded(100);
    // Lifetime mix: free pressure grows with the live population so
    // traces neither drain nor grow without bound.
    const bool WantFree =
        !Live.empty() && (Live.size() > 96 || Dice < 30 + Live.size() / 4);

    if (WantFree) {
      const std::size_t I = Rng.nextBounded(Live.size());
      unsigned char *P = Live[I];
      Verify(P);
      // Poison before the free: if the allocator ever aliases this block
      // with a live one, or trusts freed payload bytes it should not, the
      // poison shows up as a pattern mismatch elsewhere.
      std::memset(P, PoisonByte, Shadow.at(P).Bytes);
      Alloc.deallocate(P);
      Shadow.erase(P);
      RemoveAt(I);
    } else if (Dice >= 92 && !Live.empty()) {
      // Realloc a survivor: content up to min(old, new) must move intact.
      const std::size_t I = Rng.nextBounded(Live.size());
      unsigned char *P = Live[I];
      Verify(P);
      const ShadowRec Old = Shadow.at(P);
      const std::size_t NewBytes = drawSize(Rng);
      auto *Q = static_cast<unsigned char *>(Alloc.reallocate(P, NewBytes));
      Shadow.erase(P);
      RemoveAt(I);
      if (NewBytes == 0) {
        ASSERT_EQ(Q, nullptr); // C23: freed, nothing to track.
        continue;
      }
      ASSERT_NE(Q, nullptr);
      ASSERT_GE(Alloc.usableSize(Q), NewBytes);
      for (std::size_t K = 0; K < std::min(Old.Bytes, NewBytes); K += 7)
        ASSERT_EQ(Q[K], Old.Fill) << "realloc lost content at byte " << K;
      std::memset(Q, Old.Fill, NewBytes);
      ASSERT_TRUE(Shadow.emplace(Q, ShadowRec{NewBytes, Old.Fill}).second);
      Live.push_back(Q);
    } else if (Dice >= 84) {
      // Aligned allocation: power-of-two alignments from 8 to 4096.
      const std::size_t Align = std::size_t{8} << Rng.nextBounded(10);
      const std::size_t N = drawSize(Rng);
      auto *P =
          static_cast<unsigned char *>(Alloc.allocateAligned(Align, N));
      ASSERT_NE(P, nullptr);
      ASSERT_EQ(reinterpret_cast<std::uintptr_t>(P) % Align, 0u)
          << "allocateAligned(" << Align << ", " << N << ") misaligned";
      Track(P, N);
    } else {
      const std::size_t N = drawSize(Rng);
      Track(static_cast<unsigned char *>(Alloc.allocate(N)), N);
    }
    if (::testing::Test::HasFatalFailure())
      return;
  }

  // Drain with full verification; the books must balance afterwards.
  while (!Live.empty()) {
    unsigned char *P = Live.back();
    Live.pop_back();
    Verify(P);
    std::memset(P, PoisonByte, Shadow.at(P).Bytes);
    Alloc.deallocate(P);
    Shadow.erase(P);
  }
  EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
}

} // namespace

TEST(LFAllocTraceFuzz, SeededTraceReplays) {
  // Several independent streams off the one base seed; a CI failure names
  // the exact seed, so LFM_TEST_SEED=<seed> replays it bit-for-bit. Odd
  // streams run the identical trace with the magazine layer on: recycled
  // addresses now come out of the magazine, and the shadow oracle must
  // not notice any difference.
  for (std::uint64_t Stream = 0; Stream < 4; ++Stream)
    replayTrace(test::baseSeed() + Stream * 0x9e3779b9u, 6000,
                /*WithTcache=*/(Stream & 1) != 0);
}

TEST(LFAllocTraceFuzz, SkewedCrossThreadFreesThroughMagazines) {
  // Producer/consumer skew, the magazine layer's worst case: every block
  // is allocated on one thread (draining its magazine via batch refills)
  // and freed on others (overflowing theirs via flushes into the depot,
  // which the producer's refills then steal from). The shadow pattern
  // check rides on each block across the thread handoff.
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  Opts.EnableThreadCache = true;
  Opts.ThreadCacheMagSize = 8;
  LFAllocator Alloc(Opts);

  constexpr int Consumers = 3, PerConsumer = 4000;
  struct Slot {
    std::atomic<unsigned char *> P{nullptr};
    std::size_t N = 0;
    unsigned char V = 0;
  };
  std::vector<std::array<Slot, 8>> Mail(Consumers);
  std::atomic<int> Bad{0};

  std::vector<std::thread> Ts;
  Ts.emplace_back([&] {
    XorShift128 Rng(test::baseSeed() ^ 0x70DD);
    for (int C = 0; C < Consumers; ++C)
      for (int I = 0; I < PerConsumer; ++I) {
        Slot &S = Mail[C][I % 8];
        const std::size_t N = 1 + Rng.nextBounded(200); // Small classes.
        auto *P = static_cast<unsigned char *>(Alloc.allocate(N));
        if (!P) {
          Bad.fetch_add(1);
          continue;
        }
        const auto V = static_cast<unsigned char>(Rng.next() | 1);
        std::memset(P, V, N);
        while (S.P.load(std::memory_order_acquire) != nullptr)
          std::this_thread::yield();
        S.N = N;
        S.V = V;
        S.P.store(P, std::memory_order_release);
      }
  });
  for (int C = 0; C < Consumers; ++C)
    Ts.emplace_back([&, C] {
      for (int I = 0; I < PerConsumer; ++I) {
        Slot &S = Mail[C][I % 8];
        unsigned char *P = nullptr;
        while ((P = S.P.load(std::memory_order_acquire)) == nullptr)
          std::this_thread::yield();
        for (std::size_t K = 0; K < S.N; K += 13)
          if (P[K] != S.V)
            Bad.fetch_add(1);
        S.P.store(nullptr, std::memory_order_release);
        Alloc.deallocate(P);
      }
    });
  for (auto &T : Ts)
    T.join();

  ASSERT_EQ(Bad.load(), 0);
  const OpStats St = Alloc.opStats();
  EXPECT_EQ(St.Mallocs, St.Frees);
  std::string Msg;
  EXPECT_TRUE(Alloc.debugValidate(&Msg)) << Msg;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, LFAllocConfigSweep,
    ::testing::Combine(
        ::testing::Values(1u, 3u, 8u),                     // Heaps.
        ::testing::Values(std::size_t{4096},
                          std::size_t{16384}),             // Superblock.
        ::testing::Values(PartialListPolicy::Fifo,
                          PartialListPolicy::Lifo),        // Policy.
        ::testing::Values(1u, 64u),                        // CreditsLimit.
        ::testing::Values(std::size_t{0},
                          std::size_t{262144}),            // Hyperblock.
        ::testing::Values(1u, 4u),                         // Partial slots.
        ::testing::Bool()),                                // Thread cache.
    configName);
