//===- tests/lfalloc_property_test.cpp - Configuration sweeps -------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Property-style sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) over the
// allocator's configuration space: heap counts x superblock sizes x
// partial-list policies x credit limits. The invariants checked for every
// configuration:
//   P1  every allocation is writable over its full usable size,
//   P2  live blocks never alias,
//   P3  mallocs == frees implies the op books balance,
//   P4  teardown returns every mapped byte (asserted inside munmap).
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

using namespace lfm;

namespace {

using ConfigTuple =
    std::tuple<unsigned /*Heaps*/, std::size_t /*SbSize*/,
               PartialListPolicy, unsigned /*CreditsLimit*/,
               std::size_t /*HyperSize*/, unsigned /*PartialSlots*/>;

class LFAllocConfigSweep : public ::testing::TestWithParam<ConfigTuple> {
protected:
  AllocatorOptions options() const {
    const auto [Heaps, SbSize, Policy, Credits, Hyper, Slots] = GetParam();
    AllocatorOptions Opts;
    Opts.NumHeaps = Heaps;
    Opts.SuperblockSize = SbSize;
    Opts.PartialPolicy = Policy;
    Opts.CreditsLimit = Credits;
    Opts.HyperblockSize = Hyper;
    Opts.PartialSlotsPerHeap = Slots;
    Opts.EnableStats = true;
    return Opts;
  }
};

std::string configName(const ::testing::TestParamInfo<ConfigTuple> &Info) {
  const auto [Heaps, SbSize, Policy, Credits, Hyper, Slots] = Info.param;
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "h%u_sb%zu_%s_c%u_%s_p%u", Heaps, SbSize,
                Policy == PartialListPolicy::Fifo ? "fifo" : "lifo",
                Credits, Hyper ? "hyper" : "direct", Slots);
  return Buf;
}

} // namespace

TEST_P(LFAllocConfigSweep, SequentialChurnKeepsInvariants) {
  LFAllocator Alloc(options());
  XorShift128 Rng(42);
  std::map<unsigned char *, std::pair<std::size_t, unsigned char>> Live;

  for (int I = 0; I < 8000; ++I) {
    if (!Live.empty() && Rng.nextBounded(2) == 0) {
      auto It = Live.begin();
      std::advance(It, Rng.nextBounded(Live.size() > 8 ? 8 : Live.size()));
      auto [P, Meta] = *It;
      for (std::size_t K = 0; K < Meta.first; K += 11)
        ASSERT_EQ(P[K], Meta.second) << "P1/P2 violated";
      Alloc.deallocate(P);
      Live.erase(It);
    } else {
      const std::size_t N = Rng.nextBounded(1200);
      auto *P = static_cast<unsigned char *>(Alloc.allocate(N));
      ASSERT_NE(P, nullptr);
      ASSERT_GE(Alloc.usableSize(P), N);
      const auto V = static_cast<unsigned char>(Rng.next() | 1);
      std::memset(P, V, N);
      ASSERT_TRUE(Live.emplace(P, std::make_pair(N, V)).second)
          << "P2: allocator returned a live pointer again";
    }
  }
  for (auto &[P, Meta] : Live)
    Alloc.deallocate(P);
  const OpStats St = Alloc.opStats();
  EXPECT_EQ(St.Mallocs, St.Frees) << "P3 violated";
}

TEST_P(LFAllocConfigSweep, ParallelChurnKeepsInvariants) {
  LFAllocator Alloc(options());
  constexpr int Threads = 4, Iters = 8000, Slots = 24;
  std::atomic<int> Violations{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      XorShift128 Rng(T * 31 + 5);
      struct Rec {
        unsigned char *P = nullptr;
        std::size_t N = 0;
        unsigned char V = 0;
      } Slot[Slots];
      for (int I = 0; I < Iters; ++I) {
        Rec &R = Slot[Rng.nextBounded(Slots)];
        if (R.P) {
          for (std::size_t K = 0; K < R.N; K += 9)
            if (R.P[K] != R.V)
              Violations.fetch_add(1);
          Alloc.deallocate(R.P);
          R.P = nullptr;
        } else {
          R.N = Rng.nextBounded(600);
          R.V = static_cast<unsigned char>(Rng.next() | 1);
          R.P = static_cast<unsigned char *>(Alloc.allocate(R.N));
          if (R.P)
            std::memset(R.P, R.V, R.N);
          else
            Violations.fetch_add(1);
        }
      }
      for (Rec &R : Slot)
        if (R.P)
          Alloc.deallocate(R.P);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Violations.load(), 0);
  EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, LFAllocConfigSweep,
    ::testing::Combine(
        ::testing::Values(1u, 3u, 8u),                     // Heaps.
        ::testing::Values(std::size_t{4096},
                          std::size_t{16384}),             // Superblock.
        ::testing::Values(PartialListPolicy::Fifo,
                          PartialListPolicy::Lifo),        // Policy.
        ::testing::Values(1u, 64u),                        // CreditsLimit.
        ::testing::Values(std::size_t{0},
                          std::size_t{262144}),            // Hyperblock.
        ::testing::Values(1u, 4u)),                        // Partial slots.
    configName);
