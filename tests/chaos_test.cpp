//===- tests/chaos_test.cpp - Stalled-thread progress tests ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The paper's core guarantee, tested head-on: "if any thread is delayed
// arbitrarily (or even killed) at any point, then any other thread using
// the allocator will be able to determine enough of the state of the
// allocator to proceed with its own operation without waiting for the
// delayed thread" (§1). One victim thread is frozen at each interesting
// linearization point — holding a credit reservation, mid block-pop, mid
// free-push, right after emptying a superblock — while worker threads
// hammer the same heap. The workers must finish unconditionally; a
// lock-based allocator frozen at the analogous points deadlocks the
// system (demonstrated at the end with the serial-lock baseline given a
// bounded grace period).
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

using ChaosSite = AllocatorOptions::ChaosSite;

/// Freezes the first thread that hits TargetSite until released; all
/// other threads (and other sites) pass through untouched.
struct Freezer {
  explicit Freezer(ChaosSite Target) : Target(Target) {}

  static void hook(ChaosSite Site, void *Ctx) {
    static_cast<Freezer *>(Ctx)->onSite(Site);
  }

  void onSite(ChaosSite Site) {
    if (Site != Target)
      return;
    bool Expected = false;
    if (!Armed.compare_exchange_strong(Expected, true))
      return; // Only the first arrival becomes the victim.
    Frozen.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> Lock(M);
    Cv.wait(Lock, [&] { return Released; });
  }

  void release() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Released = true;
    }
    Cv.notify_all();
  }

  const ChaosSite Target;
  std::atomic<bool> Armed{false};
  std::atomic<bool> Frozen{false};
  std::mutex M;
  std::condition_variable Cv;
  bool Released = false;
};

/// Runs the scenario: freeze one victim at \p Site, verify N workers
/// complete their full workload while the victim stays frozen. With
/// \p WithTcache the same chaos sites live inside the magazine layer's
/// batch refill / chain flush, so the victim freezes mid-batch while the
/// workers' own magazines keep refilling around it.
void runFrozenVictimScenario(ChaosSite Site, bool WithTcache = false) {
  Freezer Freeze(Site);
  AllocatorOptions Opts;
  Opts.NumHeaps = 1; // One heap: victim and workers share EVERYTHING.
  Opts.SuperblockSize = 4096;
  Opts.EnableStats = true;
  Opts.ChaosHook = Freezer::hook;
  Opts.ChaosCtx = &Freeze;
  Opts.EnableThreadCache = WithTcache;
  // Tiny magazines: the fill-then-drain victim cycle overflows them, so
  // both batch directions (refill and chain flush) run every cycle.
  Opts.ThreadCacheMagSize = 4;
  LFAllocator Alloc(Opts);

  // The victim cycles fill-then-drain, which visits every chaos site:
  // the second allocation rides the Active path (AfterCreditReserve /
  // BeforePopCas), the first free hits BeforeFreeCas, and draining a
  // filled-up (FULL) superblock oldest-first reaches AfterEmptyTransition.
  // After release it finishes the cycle — freeing everything — and exits.
  std::thread Victim([&] {
    while (!Freeze.Frozen.load(std::memory_order_acquire)) {
      std::vector<void *> Mine;
      for (int I = 0; I < 200; ++I)
        if (void *P = Alloc.allocate(56))
          Mine.push_back(P);
      for (void *P : Mine)
        Alloc.deallocate(P);
    }
  });

  // Wait until the victim is actually frozen mid-operation.
  while (!Freeze.Frozen.load(std::memory_order_acquire))
    cpuRelax();

  // Workers: must complete a full allocation workload on the same heap
  // even though the victim is frozen inside the allocator.
  constexpr int Workers = 4, Iters = 20000;
  std::atomic<std::uint64_t> Completed{0};
  std::vector<std::thread> Ws;
  for (int W = 0; W < Workers; ++W)
    Ws.emplace_back([&] {
      void *Slots[16] = {};
      for (int I = 0; I < Iters; ++I) {
        const int S = I % 16;
        if (Slots[S]) {
          Alloc.deallocate(Slots[S]);
          Slots[S] = nullptr;
        } else {
          Slots[S] = Alloc.allocate(56);
          ASSERT_NE(Slots[S], nullptr);
          std::memset(Slots[S], 0x6e, 56);
        }
        Completed.fetch_add(1, std::memory_order_relaxed);
      }
      for (void *&P : Slots)
        if (P)
          Alloc.deallocate(P);
    });
  for (auto &W : Ws)
    W.join(); // If this hangs, lock-freedom is broken; ctest times out.

  EXPECT_EQ(Completed.load(),
            static_cast<std::uint64_t>(Workers) * Iters)
      << "workers stalled behind a frozen thread";
  EXPECT_TRUE(Freeze.Frozen.load()) << "victim thawed prematurely";

  Freeze.release();
  Victim.join();
}

} // namespace

TEST(Chaos, ProgressWithThreadFrozenHoldingCreditReservation) {
  runFrozenVictimScenario(ChaosSite::AfterCreditReserve);
}

TEST(Chaos, ProgressWithThreadFrozenMidPop) {
  runFrozenVictimScenario(ChaosSite::BeforePopCas);
}

TEST(Chaos, ProgressWithThreadFrozenMidFree) {
  runFrozenVictimScenario(ChaosSite::BeforeFreeCas);
}

TEST(Chaos, ProgressWithThreadFrozenAfterEmptyTransition) {
  runFrozenVictimScenario(ChaosSite::AfterEmptyTransition);
}

// The same four freeze points with the magazine layer on: the victim now
// freezes inside a batch refill (credits reserved, R blocks unpopped) or
// mid chain-flush, and the workers — whose fast path is plain loads and
// stores into their own magazines — must be entirely unaffected.

TEST(Chaos, TcacheProgressWithThreadFrozenHoldingBatchReservation) {
  runFrozenVictimScenario(ChaosSite::AfterCreditReserve,
                          /*WithTcache=*/true);
}

TEST(Chaos, TcacheProgressWithThreadFrozenMidBatchPop) {
  runFrozenVictimScenario(ChaosSite::BeforePopCas, /*WithTcache=*/true);
}

TEST(Chaos, TcacheProgressWithThreadFrozenMidChainFlush) {
  runFrozenVictimScenario(ChaosSite::BeforeFreeCas, /*WithTcache=*/true);
}

TEST(Chaos, TcacheProgressWithThreadFrozenAfterEmptyTransition) {
  runFrozenVictimScenario(ChaosSite::AfterEmptyTransition,
                          /*WithTcache=*/true);
}

TEST(Chaos, RepeatedFreezeThawCyclesStayCoherent) {
  // Freeze/thaw a victim at a rotating site many times; content and
  // accounting must stay intact throughout.
  for (ChaosSite Site :
       {ChaosSite::AfterCreditReserve, ChaosSite::BeforeFreeCas}) {
    Freezer Freeze(Site);
    AllocatorOptions Opts;
    Opts.NumHeaps = 1;
    Opts.SuperblockSize = 4096;
    Opts.EnableStats = true;
    Opts.ChaosHook = Freezer::hook;
    Opts.ChaosCtx = &Freeze;
    LFAllocator Alloc(Opts);

    std::thread Victim([&] {
      // A few pairs: the second allocation rides the Active fast path
      // (where AfterCreditReserve lives); the frees hit BeforeFreeCas.
      void *Mine[4] = {};
      for (void *&P : Mine)
        P = Alloc.allocate(56);
      for (void *P : Mine)
        Alloc.deallocate(P);
    });
    while (!Freeze.Frozen.load())
      cpuRelax();

    std::vector<void *> Blocks;
    for (int I = 0; I < 5000; ++I) {
      void *P = Alloc.allocate(56);
      ASSERT_NE(P, nullptr);
      std::memset(P, I & 0xff, 56);
      Blocks.push_back(P);
    }
    for (void *P : Blocks)
      Alloc.deallocate(P);

    Freeze.release();
    Victim.join();
    EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
  }
}
