//===- tests/extqueue_test.cpp - Malloc-backed MS queue tests -------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "harness/ExtNodeQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

struct ExtQueueTest : ::testing::TestWithParam<AllocatorKind> {};

std::string kindName(const ::testing::TestParamInfo<AllocatorKind> &Info) {
  std::string Name = allocatorKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

TEST_P(ExtQueueTest, FifoOrderOverMallocdNodes) {
  auto Alloc = makeAllocator(GetParam(), 2);
  HazardDomain Domain;
  ExtNodeQueue Q(*Alloc, Domain);
  int Values[100];
  for (int I = 0; I < 100; ++I) {
    Values[I] = I;
    ASSERT_TRUE(Q.enqueue(&Values[I]));
  }
  EXPECT_EQ(Q.approxSize(), 100);
  for (int I = 0; I < 100; ++I) {
    void *P = nullptr;
    ASSERT_TRUE(Q.dequeue(P));
    EXPECT_EQ(*static_cast<int *>(P), I);
  }
  void *P;
  EXPECT_FALSE(Q.dequeue(P));
}

TEST_P(ExtQueueTest, NodeMemoryFlowsThroughTheAllocator) {
  auto Alloc = makeAllocator(GetParam(), 2);
  const std::uint64_t Before = Alloc->pageStats().BytesInUse;
  {
    HazardDomain Domain;
    ExtNodeQueue Q(*Alloc, Domain);
    int V = 7;
    for (int I = 0; I < 10000; ++I) {
      ASSERT_TRUE(Q.enqueue(&V));
      void *P;
      ASSERT_TRUE(Q.dequeue(P));
    }
    EXPECT_GE(Alloc->pageStats().BytesInUse, Before)
        << "queue nodes must come from the allocator under test";
  }
  // Queue destroyed: all nodes freed back; footprint must not have grown
  // unboundedly with 10k enqueues (nodes are recycled via free()).
  SUCCEED();
}

TEST_P(ExtQueueTest, MpmcConservation) {
  auto Alloc = makeAllocator(GetParam(), 4);
  HazardDomain Domain;
  ExtNodeQueue Q(*Alloc, Domain);
  constexpr int Producers = 3, Consumers = 3, PerProducer = 8000;
  static std::uint64_t Payloads[Producers][PerProducer];
  std::atomic<bool> Done{false};
  std::vector<std::vector<std::uint64_t *>> Got(Consumers);
  std::vector<std::thread> Ts;

  for (int P = 0; P < Producers; ++P)
    Ts.emplace_back([&, P] {
      for (int I = 0; I < PerProducer; ++I) {
        Payloads[P][I] = (static_cast<std::uint64_t>(P) << 32) | I;
        ASSERT_TRUE(Q.enqueue(&Payloads[P][I]));
      }
    });
  for (int C = 0; C < Consumers; ++C)
    Ts.emplace_back([&, C] {
      void *P;
      for (;;) {
        if (Q.dequeue(P))
          Got[C].push_back(static_cast<std::uint64_t *>(P));
        else if (Done.load(std::memory_order_acquire))
          break;
        else
          cpuRelax();
      }
      while (Q.dequeue(P))
        Got[C].push_back(static_cast<std::uint64_t *>(P));
    });

  for (int P = 0; P < Producers; ++P)
    Ts[P].join();
  Done.store(true, std::memory_order_release);
  for (int C = 0; C < Consumers; ++C)
    Ts[Producers + C].join();

  std::map<std::uint64_t *, int> Counts;
  for (auto &G : Got)
    for (std::uint64_t *P : G)
      ++Counts[P];
  EXPECT_EQ(Counts.size(),
            static_cast<std::size_t>(Producers) * PerProducer);
  for (auto &[P, N] : Counts)
    ASSERT_EQ(N, 1);
}

INSTANTIATE_TEST_SUITE_P(OverAllocators, ExtQueueTest,
                         ::testing::Values(AllocatorKind::LockFree,
                                           AllocatorKind::SerialLock,
                                           AllocatorKind::Hoard,
                                           AllocatorKind::Ptmalloc),
                         kindName);
