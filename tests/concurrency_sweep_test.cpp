//===- tests/concurrency_sweep_test.cpp - Parameterized MPMC sweeps -------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// TEST_P sweeps of the lock-free containers over producer/consumer
// topologies (1x1, 1xN, Nx1, NxN) — each topology stresses different
// interleavings (tail races, head races, helping paths).
//
//===----------------------------------------------------------------------===//

#include "lockfree/LockFreeStack.h"
#include "lockfree/MSQueue.h"
#include "support/Platform.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

using namespace lfm;

namespace {

using Topology = std::tuple<int /*Producers*/, int /*Consumers*/>;

class MpmcTopology : public ::testing::TestWithParam<Topology> {};

std::string topologyName(const ::testing::TestParamInfo<Topology> &Info) {
  const auto [P, C] = Info.param;
  return "p" + std::to_string(P) + "_c" + std::to_string(C);
}

/// Generic conservation check: every tagged value produced is consumed
/// exactly once, across the given container operations.
template <typename PushFn, typename PopFn>
void checkConservation(int Producers, int Consumers, int PerProducer,
                       PushFn Push, PopFn Pop) {
  std::atomic<bool> Done{false};
  std::vector<std::vector<std::uint64_t>> Got(Consumers);
  std::vector<std::thread> Ts;
  for (int P = 0; P < Producers; ++P)
    Ts.emplace_back([&, P] {
      for (int I = 0; I < PerProducer; ++I)
        Push((static_cast<std::uint64_t>(P) << 32) | I);
    });
  for (int C = 0; C < Consumers; ++C)
    Ts.emplace_back([&, C] {
      std::uint64_t V;
      for (;;) {
        if (Pop(V))
          Got[C].push_back(V);
        else if (Done.load(std::memory_order_acquire))
          break;
        else
          cpuRelax();
      }
      while (Pop(V))
        Got[C].push_back(V);
    });
  for (int P = 0; P < Producers; ++P)
    Ts[P].join();
  Done.store(true, std::memory_order_release);
  for (int C = 0; C < Consumers; ++C)
    Ts[Producers + C].join();

  std::map<std::uint64_t, int> Counts;
  for (auto &G : Got)
    for (std::uint64_t V : G)
      ++Counts[V];
  ASSERT_EQ(Counts.size(),
            static_cast<std::size_t>(Producers) * PerProducer);
  for (auto &[V, N] : Counts)
    ASSERT_EQ(N, 1) << "value " << V;
}

} // namespace

TEST_P(MpmcTopology, MsQueueConservation) {
  const auto [Producers, Consumers] = GetParam();
  MSQueue<std::uint64_t> Queue;
  checkConservation(
      Producers, Consumers, 8000,
      [&](std::uint64_t V) { Queue.enqueue(V); },
      [&](std::uint64_t &V) { return Queue.dequeue(V); });
}

TEST_P(MpmcTopology, DynamicStackConservation) {
  const auto [Producers, Consumers] = GetParam();
  HazardDomain Domain;
  LockFreeStack<std::uint64_t> Stack(Domain);
  checkConservation(
      Producers, Consumers, 8000,
      [&](std::uint64_t V) { ASSERT_TRUE(Stack.push(V)); },
      [&](std::uint64_t &V) { return Stack.pop(V); });
}

INSTANTIATE_TEST_SUITE_P(Topologies, MpmcTopology,
                         ::testing::Values(Topology{1, 1}, Topology{1, 4},
                                           Topology{4, 1}, Topology{3, 3},
                                           Topology{6, 2}),
                         topologyName);

//===----------------------------------------------------------------------===
// Hazard-domain record churn across many short-lived threads
//===----------------------------------------------------------------------===

TEST(ConcurrencySweep, HazardRecordsSurviveThreadChurn) {
  // Waves of short-lived threads using the same structures: records must
  // be recycled and nothing may leak or crash at thread exits.
  HazardDomain Domain;
  MSQueue<int> Queue(Domain);
  for (int Wave = 0; Wave < 20; ++Wave) {
    std::vector<std::thread> Ts;
    for (int T = 0; T < 6; ++T)
      Ts.emplace_back([&] {
        for (int I = 0; I < 500; ++I) {
          Queue.enqueue(I);
          int V;
          Queue.dequeue(V);
        }
      });
    for (auto &T : Ts)
      T.join();
  }
  EXPECT_LE(Domain.recordWatermark(), 16u)
      << "records must be adopted across thread generations";
  EXPECT_TRUE(Queue.empty());
}
