//===- tests/dump_signal_test.cpp - Consolidated SIGUSR2 registrar --------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The DumpSignal registrar replaced per-subsystem sigaction calls, where
// whichever subsystem initialized last won the handler and init order
// decided which dumps fired. These tests pin the consolidated contract:
// every registered callback fires from one trigger regardless of the
// order subsystems armed themselves, both via dumpSignalFire() and via a
// real SIGUSR2 delivery.
//
// The slot table is process-wide and tombstoned slots are never reused,
// so the tests share one budget of DumpSignalCapacity slots; they are
// written to consume exactly that budget, ending on the ENOSPC check.
//
//===----------------------------------------------------------------------===//

#include "telemetry/DumpSignal.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <vector>

using namespace lfm;
using namespace lfm::telemetry;

namespace {

// Call journal. The raise() test runs on a quiesced single-threaded
// process, so the handler touching these plain globals is safe.
std::vector<int> Journal;
volatile std::sig_atomic_t SignalCalls[4] = {};

// Distinct function pointers standing in for the subsystems (profiler,
// latency, trace flush, shm publish). Each records its identity.
template <int N> void subsystem() {
  Journal.push_back(N);
  if (N < 4)
    SignalCalls[N] = SignalCalls[N] + 1;
}

} // namespace

// One binary-wide fixture-less sequence: gtest runs these in definition
// order, and the comments track the slot budget (capacity 8).
TEST(DumpSignal, AllRegistrantsFireRegardlessOfArmingOrder) {
  Journal.reserve(16); // No allocation later, even inside the handler.
  ASSERT_EQ(dumpSignalCount(), 0u);
  EXPECT_FALSE(dumpSignalInstalled());
  EXPECT_EQ(dumpSignalRegister(nullptr), EINVAL);

  // "Init order" deliberately scrambled: the latency dump arms before the
  // profiler, the shm publisher last. Slots consumed: 3.
  ASSERT_EQ(dumpSignalRegister(&subsystem<2>), 0);
  ASSERT_EQ(dumpSignalRegister(&subsystem<0>), 0);
  ASSERT_EQ(dumpSignalRegister(&subsystem<1>), 0);
  EXPECT_TRUE(dumpSignalInstalled())
      << "first registration must install the handler";
  EXPECT_EQ(dumpSignalCount(), 3u);

  // Re-arming is idempotent — the historical failure mode was the second
  // subsystem silently replacing the first.
  EXPECT_EQ(dumpSignalRegister(&subsystem<0>), 0);
  EXPECT_EQ(dumpSignalCount(), 3u);

  Journal.clear();
  dumpSignalFire();
  EXPECT_EQ(Journal, (std::vector<int>{2, 0, 1}))
      << "every registrant fires exactly once, in registration order";
}

TEST(DumpSignal, RealSignalDeliveryRunsTheWholeChain) {
  ASSERT_EQ(dumpSignalCount(), 3u) << "expects the prior test's registrants";
  SignalCalls[0] = 0;
  SignalCalls[1] = 0;
  SignalCalls[2] = 0;
  Journal.clear();
  ASSERT_EQ(std::raise(SIGUSR2), 0);
  EXPECT_EQ(SignalCalls[0], 1);
  EXPECT_EQ(SignalCalls[1], 1);
  EXPECT_EQ(SignalCalls[2], 1);
}

TEST(DumpSignal, UnregisterTombstonesWithoutDisturbingOthers) {
  ASSERT_EQ(dumpSignalUnregister(&subsystem<0>), 0);
  EXPECT_EQ(dumpSignalUnregister(&subsystem<0>), ENOENT) << "already gone";
  EXPECT_EQ(dumpSignalUnregister(nullptr), EINVAL);
  EXPECT_EQ(dumpSignalCount(), 2u);

  Journal.clear();
  dumpSignalFire();
  EXPECT_EQ(Journal, (std::vector<int>{2, 1}))
      << "survivors keep firing in their original order";

  // A late registration lands behind the survivors (slot 4 of 8; the
  // tombstone is not reused).
  ASSERT_EQ(dumpSignalRegister(&subsystem<3>), 0);
  Journal.clear();
  dumpSignalFire();
  EXPECT_EQ(Journal, (std::vector<int>{2, 1, 3}));
}

TEST(DumpSignal, CapacityExhaustionReportsEnospc) {
  // 4 slots consumed so far (3 live + 1 tombstone). Fill the remaining 4.
  ASSERT_EQ(dumpSignalRegister(&subsystem<4>), 0);
  ASSERT_EQ(dumpSignalRegister(&subsystem<5>), 0);
  ASSERT_EQ(dumpSignalRegister(&subsystem<6>), 0);
  ASSERT_EQ(dumpSignalRegister(&subsystem<7>), 0);
  EXPECT_EQ(dumpSignalCount(), 7u);
  EXPECT_EQ(dumpSignalRegister(&subsystem<8>), ENOSPC);
  // Idempotent re-registration still succeeds at capacity.
  EXPECT_EQ(dumpSignalRegister(&subsystem<7>), 0);
}
