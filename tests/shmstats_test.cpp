//===- tests/shmstats_test.cpp - lfm-shmstats-v1 segment tests ------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Covers both sides of the shared-memory stats segment: the in-process
// writer (telemetry/ShmStats.h, driven through the shmstats.* ctl keys)
// and the out-of-process reader contract (telemetry/ShmStatsFormat.h):
// layout round-trip, checksum and geometry rejection, the TooSmall vs
// Truncated distinction, torn-read rejection, and a live preload smoke
// where the lfm-top binary attaches to a running shimmed process.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/LFMalloc.h"
#include "telemetry/Counters.h"
#include "telemetry/LatencyPath.h"
#include "telemetry/MetricsSnapshot.h"
#include "telemetry/ShmStats.h"
#include "telemetry/ShmStatsFormat.h"
#include "telemetry/TelemetryConfig.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace lfm;

namespace {

#if LFM_TELEMETRY

std::string slurp(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return {};
  std::string S;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    S.append(Buf, N);
  std::fclose(F);
  return S;
}

/// Opens the process-wide segment on a temp file, closes it again on
/// scope exit so tests cannot leak state into one another.
struct SegmentScope {
  std::string Path;
  explicit SegmentScope(const char *Name) {
    Path = std::string("/tmp/lfm-shmstats-test-") + Name + "-" +
           std::to_string(::getpid()) + ".shm";
    Rc = telemetry::ShmStats::open(Path.c_str());
  }
  ~SegmentScope() {
    telemetry::ShmStats::close();
    ::unlink(Path.c_str());
  }
  int Rc = -1;
};

/// Reads the whole backing file into a private buffer (a "static"
/// attachment, like a core dump or an scp'd file).
std::vector<unsigned char> snapshotFile(const std::string &Path) {
  std::vector<unsigned char> Buf;
  const int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return Buf;
  struct stat St {};
  if (::fstat(Fd, &St) == 0) {
    Buf.resize(static_cast<std::size_t>(St.st_size));
    std::size_t Got = 0;
    while (Got < Buf.size()) {
      const ssize_t N = ::read(Fd, Buf.data() + Got, Buf.size() - Got);
      if (N <= 0)
        break;
      Got += static_cast<std::size_t>(N);
    }
    Buf.resize(Got);
  }
  ::close(Fd);
  return Buf;
}

#endif // LFM_TELEMETRY

} // namespace

//===----------------------------------------------------------------------===//
// Reader contract: pure ShmStatsFormat.h, no allocator involvement. These
// run in every build configuration (the header is self-contained).
//===----------------------------------------------------------------------===//

namespace {

/// A minimal valid segment built by hand, the way a reader would find it.
shmstats::Segment makeValidSegment() {
  shmstats::Segment S;
  std::memset(&S, 0, sizeof(S));
  S.H.MagicV = shmstats::Magic;
  S.H.VersionV = shmstats::Version;
  S.H.LayoutChecksum = shmstats::layoutChecksum();
  S.H.HeaderBytes = sizeof(shmstats::SegmentHeader);
  S.H.NamesBytes = sizeof(shmstats::NameTables);
  S.H.FrameBytes = sizeof(shmstats::Frame);
  S.H.FrameCountV = shmstats::FrameCount;
  S.H.NameCapV = shmstats::NameCap;
  S.H.ActiveFrame = 0;
  S.H.NumCounters = 1;
  return S;
}

} // namespace

TEST(ShmStatsFormat, ValidatesDistinguishesTooSmallFromTruncated) {
  const shmstats::Segment S = makeValidSegment();
  // TooSmall: not even a header — the wrong file entirely.
  EXPECT_EQ(shmstats::validate(&S, 8), shmstats::ReadStatus::TooSmall);
  EXPECT_EQ(shmstats::validate(nullptr, shmstats::SegmentBytes),
            shmstats::ReadStatus::TooSmall);
  // Truncated: a valid header promising frames the buffer does not hold —
  // a clipped core or partial copy, worth a different diagnostic.
  EXPECT_EQ(shmstats::validate(&S, shmstats::SegmentBytes - 1),
            shmstats::ReadStatus::Truncated);
  EXPECT_EQ(shmstats::validate(&S, sizeof(shmstats::SegmentHeader)),
            shmstats::ReadStatus::Truncated);
  EXPECT_EQ(shmstats::validate(&S, shmstats::SegmentBytes),
            shmstats::ReadStatus::Ok);
}

TEST(ShmStatsFormat, RejectsMagicVersionChecksumAndGeometryDrift) {
  shmstats::Segment S = makeValidSegment();
  S.H.MagicV ^= 0xFF;
  EXPECT_EQ(shmstats::validate(&S, sizeof(S)),
            shmstats::ReadStatus::BadMagic);
  S = makeValidSegment();
  S.H.VersionV = shmstats::Version + 1;
  EXPECT_EQ(shmstats::validate(&S, sizeof(S)),
            shmstats::ReadStatus::BadVersion);
  // The checksum rejection is the ABI-drift guard: a reader built against
  // a different struct layout must get a clean error, not garbage fields.
  S = makeValidSegment();
  S.H.LayoutChecksum += 1;
  EXPECT_EQ(shmstats::validate(&S, sizeof(S)),
            shmstats::ReadStatus::BadChecksum);
  S = makeValidSegment();
  S.H.FrameBytes -= 8;
  EXPECT_EQ(shmstats::validate(&S, sizeof(S)),
            shmstats::ReadStatus::BadGeometry);
  S = makeValidSegment();
  S.H.NumCounters = shmstats::MaxCounters + 1;
  EXPECT_EQ(shmstats::validate(&S, sizeof(S)),
            shmstats::ReadStatus::BadGeometry);
}

TEST(ShmStatsFormat, TornFramesAreRejectedNotReturned) {
  shmstats::Segment S = makeValidSegment();
  // Both frames mid-write (odd Seq): a static reader must refuse rather
  // than hand back half a frame.
  S.Frames[0].Seq = 1;
  S.Frames[1].Seq = 3;
  shmstats::Frame Out;
  std::uint64_t Retries = 0;
  EXPECT_EQ(shmstats::readLatestFrame(&S, sizeof(S), Out, /*Live=*/false,
                                      &Retries),
            shmstats::ReadStatus::Torn);
  EXPECT_EQ(Retries, 2u) << "both torn frames must count as retries";

  // One frame torn, the other stable: the stable one wins and the torn
  // copy is observable through RetriesOut.
  S.Frames[0].Seq = 1; // Active frame: mid-write.
  S.Frames[1].Seq = 4; // Stable.
  S.Frames[1].Epoch = 7;
  Retries = 0;
  ASSERT_EQ(shmstats::readLatestFrame(&S, sizeof(S), Out, /*Live=*/false,
                                      &Retries),
            shmstats::ReadStatus::Ok);
  EXPECT_EQ(Out.Epoch, 7u);
  EXPECT_EQ(Retries, 1u);
}

TEST(ShmStatsFormat, PrefersHighestEpochAcrossBothFrames) {
  shmstats::Segment S = makeValidSegment();
  S.Frames[0].Seq = 2;
  S.Frames[0].Epoch = 41;
  S.Frames[1].Seq = 2;
  S.Frames[1].Epoch = 42;
  // ActiveFrame deliberately points at the older frame — the window
  // between the frame store and the index flip.
  S.H.ActiveFrame = 0;
  shmstats::Frame Out;
  ASSERT_EQ(shmstats::readLatestFrame(&S, sizeof(S), Out, /*Live=*/false),
            shmstats::ReadStatus::Ok);
  EXPECT_EQ(Out.Epoch, 42u);
}

TEST(ShmStatsFormat, HammerReaderNeverObservesTornPayload) {
  // A dedicated writer republishes with the exact store sequence the
  // allocator's publisher uses, stamping every payload word with the
  // epoch. Any torn read the seqlock failed to reject would surface as a
  // mixed-epoch payload. Runs on a private buffer so the hammer controls
  // the payload contents completely.
  shmstats::Segment S = makeValidSegment();
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Published{0};
  std::thread Writer([&S, &Stop, &Published] {
    std::uint64_t Epoch = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      ++Epoch;
      const std::uint32_t Next = (S.H.ActiveFrame + 1) % shmstats::FrameCount;
      shmstats::Frame &F = S.Frames[Next];
      const std::uint64_t Seq0 = F.Seq;
      __atomic_store_n(&F.Seq, Seq0 + 1, __ATOMIC_RELAXED);
      std::atomic_thread_fence(std::memory_order_release);
      F.Epoch = Epoch;
      F.WallNs = Epoch;
      F.MonoNs = Epoch;
      std::uint64_t *Words = reinterpret_cast<std::uint64_t *>(&F.P);
      for (std::size_t W = 0; W < sizeof(F.P) / sizeof(std::uint64_t); ++W)
        Words[W] = Epoch;
      std::atomic_thread_fence(std::memory_order_release);
      __atomic_store_n(&F.Seq, Seq0 + 2, __ATOMIC_RELEASE);
      __atomic_store_n(&S.H.ActiveFrame, Next, __ATOMIC_RELEASE);
      Published.store(Epoch, std::memory_order_release);
    }
  });

  std::uint64_t TotalRetries = 0;
  std::uint64_t LastEpoch = 0;
  unsigned Reads = 0;
  while (Reads < 4000) {
    shmstats::Frame Out;
    std::uint64_t Retries = 0;
    const shmstats::ReadStatus St =
        shmstats::readLatestFrame(&S, sizeof(S), Out, /*Live=*/true,
                                  &Retries);
    TotalRetries += Retries;
    if (Published.load(std::memory_order_acquire) == 0)
      continue; // Writer has not produced a stable frame yet.
    ASSERT_EQ(St, shmstats::ReadStatus::Ok);
    ++Reads;
    // Consistency: every payload word carries the frame's epoch, and
    // epochs never run backwards across reads.
    const std::uint64_t *Words =
        reinterpret_cast<const std::uint64_t *>(&Out.P);
    for (std::size_t W = 0; W < sizeof(Out.P) / sizeof(std::uint64_t); ++W)
      ASSERT_EQ(Words[W], Out.Epoch)
          << "torn payload leaked through the seqlock at word " << W;
    ASSERT_GE(Out.Epoch, LastEpoch) << "epoch ran backwards";
    LastEpoch = Out.Epoch;
  }
  Stop.store(true, std::memory_order_relaxed);
  Writer.join();
  // With a continuously-republishing writer the reader must have hit (and
  // survived) mid-write frames; this is the observable seqlock retry.
  EXPECT_GT(TotalRetries, 0u)
      << "hammer never observed a torn copy; seqlock path untested";
  EXPECT_GT(LastEpoch, 0u);
}

//===----------------------------------------------------------------------===//
// Writer side: the real segment, driven through ShmStats and the
// shmstats.* ctl namespace. Telemetry builds only (the stubs publish
// nothing).
//===----------------------------------------------------------------------===//

#if LFM_TELEMETRY

TEST(ShmStats, LayoutRoundTripMatchesLiveSnapshot) {
  SegmentScope Scope("roundtrip");
  ASSERT_EQ(Scope.Rc, 0);
  // Traffic, then one explicit publish through the ctl action.
  void *P = lf_malloc(1024);
  lf_free(P);
  std::uint64_t Epoch = 0;
  size_t Len = sizeof(Epoch);
  ASSERT_EQ(lf_malloc_ctl("shmstats.publish", &Epoch, &Len, nullptr, 0), 0);
  EXPECT_GE(Epoch, 1u);

  const std::vector<unsigned char> Buf = snapshotFile(Scope.Path);
  ASSERT_EQ(Buf.size(), shmstats::SegmentBytes);
  shmstats::Frame F;
  ASSERT_EQ(shmstats::readLatestFrame(Buf.data(), Buf.size(), F,
                                      /*Live=*/false),
            shmstats::ReadStatus::Ok);
  EXPECT_EQ(F.Epoch, Epoch);

  const auto *Seg =
      reinterpret_cast<const shmstats::Segment *>(Buf.data());
  EXPECT_EQ(Seg->H.Pid, static_cast<std::uint32_t>(::getpid()));
  ASSERT_EQ(Seg->H.NumCounters, telemetry::NumCounters);
  ASSERT_EQ(Seg->H.NumLatencyPaths, telemetry::NumLatencyPaths);
  ASSERT_EQ(Seg->H.NumContentionSites, telemetry::NumContentionSites);
  // Name tables label every live slot exactly as the JSON document does.
  for (unsigned C = 0; C < telemetry::NumCounters; ++C)
    EXPECT_STREQ(Seg->N.CounterNames[C],
                 telemetry::counterName(static_cast<telemetry::Counter>(C)));
  for (unsigned P2 = 0; P2 < telemetry::NumLatencyPaths; ++P2)
    EXPECT_STREQ(
        Seg->N.LatencyPathNames[P2],
        telemetry::latencyPathName(static_cast<telemetry::LatencyPath>(P2)));

  // The frame agrees with a fresh snapshot on quiesced, monotone fields.
  const telemetry::MetricsSnapshot Snap =
      lfm::defaultAllocator().metricsSnapshot();
  EXPECT_EQ(F.P.Heaps, Snap.Heaps);
  EXPECT_EQ(F.P.Classes, Snap.Classes);
  EXPECT_EQ(F.P.SuperblockBytes, Snap.SuperblockBytes);
  EXPECT_LE(F.P.SpacePeakBytes, Snap.Space.PeakBytes);
  EXPECT_LE(F.P.Counters[static_cast<unsigned>(telemetry::Counter::Mallocs)],
            Snap.counter(telemetry::Counter::Mallocs));
  // And the snapshot's own v5 shmstats section sees the segment.
  EXPECT_TRUE(Snap.ShmStatsActive);
  EXPECT_GE(Snap.ShmStatsEpoch, Epoch);
  EXPECT_EQ(Snap.ShmStatsBytes, shmstats::SegmentBytes);
}

TEST(ShmStats, CtlNamespaceReadsAndGuards) {
  // Inactive: reads report zero/empty, publish refuses cleanly.
  ASSERT_FALSE(telemetry::ShmStats::active());
  std::uint64_t V = 99;
  size_t Len = sizeof(V);
  ASSERT_EQ(lf_malloc_ctl("shmstats.active", &V, &Len, nullptr, 0), 0);
  EXPECT_EQ(V, 0u);
  EXPECT_EQ(lf_malloc_ctl("shmstats.publish", nullptr, nullptr, nullptr, 0),
            ENXIO);
  EXPECT_EQ(lf_malloc_ctl("shmstats.nonsense", &V, &Len, nullptr, 0),
            ENOENT);
  // Status keys are read-only.
  EXPECT_EQ(lf_malloc_ctl("shmstats.epoch", nullptr, nullptr, &V, sizeof(V)),
            EPERM);

  SegmentScope Scope("ctl");
  ASSERT_EQ(Scope.Rc, 0);
  // Double-open refuses; the first segment stays mapped.
  EXPECT_EQ(lf_malloc_ctl("shmstats.open", nullptr, nullptr, "1", 2),
            EALREADY);
  char Path[4096];
  Len = sizeof(Path);
  ASSERT_EQ(lf_malloc_ctl("shmstats.path", Path, &Len, nullptr, 0), 0);
  EXPECT_STREQ(Path, Scope.Path.c_str());
  Len = sizeof(Path);
  ASSERT_EQ(lf_malloc_ctl("opt.shm_stats", Path, &Len, nullptr, 0), 0);
  EXPECT_STREQ(Path, Scope.Path.c_str())
      << "opt.shm_stats echoes the active backing";
  Len = sizeof(V);
  ASSERT_EQ(lf_malloc_ctl("shmstats.bytes", &V, &Len, nullptr, 0), 0);
  EXPECT_EQ(V, shmstats::SegmentBytes);
  ASSERT_EQ(lf_malloc_ctl("shmstats.publish", nullptr, nullptr, nullptr, 0),
            0);
  Len = sizeof(V);
  ASSERT_EQ(lf_malloc_ctl("shmstats.publishes", &V, &Len, nullptr, 0), 0);
  EXPECT_GE(V, 1u);
}

TEST(ShmStats, PublishedEpochsAdvanceAndAlternateFrames) {
  SegmentScope Scope("epochs");
  ASSERT_EQ(Scope.Rc, 0);
  for (int I = 0; I < 5; ++I)
    ASSERT_EQ(lf_malloc_ctl("shmstats.publish", nullptr, nullptr, nullptr, 0),
              0);
  EXPECT_EQ(telemetry::ShmStats::epoch(), 5u);
  const std::vector<unsigned char> Buf = snapshotFile(Scope.Path);
  ASSERT_EQ(Buf.size(), shmstats::SegmentBytes);
  const auto *Seg =
      reinterpret_cast<const shmstats::Segment *>(Buf.data());
  // Double buffering: both frames have been written, epochs differ by 1,
  // and the advertised frame holds the newest.
  EXPECT_EQ(Seg->Frames[0].Epoch + Seg->Frames[1].Epoch, 4u + 5u);
  EXPECT_EQ(Seg->Frames[Seg->H.ActiveFrame].Epoch, 5u);
  shmstats::Frame F;
  ASSERT_EQ(shmstats::readLatestFrame(Buf.data(), Buf.size(), F,
                                      /*Live=*/false),
            shmstats::ReadStatus::Ok);
  EXPECT_EQ(F.Epoch, 5u);
}

TEST(ShmStats, OpenRejectsBadSpecs) {
  EXPECT_EQ(telemetry::ShmStats::open(nullptr), EINVAL);
  EXPECT_EQ(telemetry::ShmStats::open(""), EINVAL);
  EXPECT_EQ(telemetry::ShmStats::open("/nonexistent-dir-zzz/seg"), ENOENT);
  EXPECT_FALSE(telemetry::ShmStats::active());
}

//===----------------------------------------------------------------------===//
// Live preload smoke: a real shimmed process, attached by pid through the
// memfd discovery path, while it is still running.
//===----------------------------------------------------------------------===//

TEST(ShmStats, LfmTopAttachesToLivePreloadedProcess) {
  const char *Lib = std::getenv("LFM_PRELOAD_LIB");
  const char *Top = std::getenv("LFM_TOP_BIN");
  const char *Probe = std::getenv("LFM_PRELOAD_PROBE");
  if (!Lib || !Top || !Probe)
    GTEST_SKIP() << "LFM_PRELOAD_LIB/LFM_TOP_BIN/LFM_PRELOAD_PROBE not set";
  const std::string Dir =
      "/tmp/lfm-shmstats-smoke-" + std::to_string(::getpid());
  const std::string Go = Dir + "/go";
  const std::string Json = Dir + "/top.json";
  // The probe churns, prints ready, then polls for the go-file: a live,
  // malloc-active target for the whole attach window. lfm-top resolves
  // the anonymous memfd via /proc/<pid>/fd, exactly like production.
  const std::string Script =
      "mkdir -p " + Dir + " && " +
      "LD_PRELOAD=" + Lib + " LFM_STATS=1 LFM_SHM_STATS=1 " + Probe +
      " wait-usr2 " + Go + " > /dev/null & " +
      "pid=$!; sleep 1; " +
      Top + " --pid $pid --once --json > " + Json + "; rc=$?; " +
      ": > " + Go + "; wait $pid; exit $rc";
  ASSERT_EQ(std::system(("/bin/sh -c '" + Script + "'").c_str()), 0);
  const std::string Doc = slurp(Json);
  ASSERT_FALSE(Doc.empty());
  // Parseable: balanced braces, expected schema, live counters present.
  long Depth = 0;
  bool Balanced = true;
  for (char C : Doc) {
    if (C == '{')
      ++Depth;
    else if (C == '}' && --Depth < 0)
      Balanced = false;
  }
  EXPECT_TRUE(Balanced && Depth == 0) << "unbalanced JSON: " << Doc;
  EXPECT_NE(Doc.find("\"schema\":\"lfm-top-v1\""), std::string::npos);
  EXPECT_NE(Doc.find("\"source\":\"live\""), std::string::npos);
  EXPECT_NE(Doc.find("\"mallocs\":"), std::string::npos);
  std::system(("rm -rf " + Dir).c_str());
}

#endif // LFM_TELEMETRY
