//===- tests/TestSeed.h - One deterministic seed for every test --*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every seeded test derives its randomness from the single LFM_TEST_SEED
/// environment variable (default 20260806, logged on first use), so any
/// CI failure is locally replayable with
///   LFM_TEST_SEED=<seed from the log> ctest -R <test>
/// Tests needing several independent streams offset the base seed with a
/// per-test constant — never with time() or std::random_device.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_TESTS_TESTSEED_H
#define LFMALLOC_TESTS_TESTSEED_H

#include "schedtest/Explorer.h"

#include <cstdint>

namespace lfm {
namespace test {

/// The process-wide base seed (LFM_TEST_SEED or the fixed default).
inline std::uint64_t baseSeed() { return sched::envBaseSeed(); }

} // namespace test
} // namespace lfm

#endif // LFMALLOC_TESTS_TESTSEED_H
