//===- tests/trace_test.cpp - Trace generator/replayer tests --------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "harness/TraceWorkload.h"

#include <gtest/gtest.h>

using namespace lfm;

namespace {

class TraceOverProfiles : public ::testing::TestWithParam<TraceProfile> {};

std::string profileName(
    const ::testing::TestParamInfo<TraceProfile> &Info) {
  std::string Name = traceProfileName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

TEST_P(TraceOverProfiles, GenerationIsDeterministic) {
  const Trace A = generateTrace(GetParam(), 123, 5000);
  const Trace B = generateTrace(GetParam(), 123, 5000);
  ASSERT_EQ(A.Ops.size(), B.Ops.size());
  for (std::size_t I = 0; I < A.Ops.size(); ++I) {
    ASSERT_EQ(A.Ops[I].Slot, B.Ops[I].Slot) << I;
    ASSERT_EQ(A.Ops[I].Bytes, B.Ops[I].Bytes) << I;
  }
  const Trace C = generateTrace(GetParam(), 124, 5000);
  bool Differs = A.Ops.size() != C.Ops.size();
  for (std::size_t I = 0; !Differs && I < A.Ops.size(); ++I)
    Differs = A.Ops[I].Slot != C.Ops[I].Slot ||
              A.Ops[I].Bytes != C.Ops[I].Bytes;
  EXPECT_TRUE(Differs) << "different seeds must give different traces";
}

TEST_P(TraceOverProfiles, OpsAreWellFormed) {
  const Trace T = generateTrace(GetParam(), 7, 10000);
  EXPECT_GE(T.Ops.size(), 10000u);
  std::uint64_t AllocOps = 0, FreeOps = 0;
  for (const TraceOp &Op : T.Ops) {
    ASSERT_LT(Op.Slot, T.SlotCount);
    (Op.Bytes ? AllocOps : FreeOps) += 1;
  }
  EXPECT_GT(AllocOps, 0u);
  EXPECT_GT(FreeOps, 0u);
}

TEST_P(TraceOverProfiles, ReplayBalancesOnEveryAllocator) {
  const Trace T = generateTrace(GetParam(), 99, 4000);
  for (AllocatorKind K :
       {AllocatorKind::LockFree, AllocatorKind::SerialLock,
        AllocatorKind::Hoard, AllocatorKind::Ptmalloc}) {
    auto Alloc = makeAllocator(K, 3);
    const TraceResult R = replayTrace(*Alloc, 3, T);
    EXPECT_EQ(R.Corruptions, 0u)
        << allocatorKindName(K) << " corrupted a trace block";
    EXPECT_EQ(R.Allocs, R.Frees)
        << allocatorKindName(K) << " leaked trace blocks";
    EXPECT_GT(R.Allocs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, TraceOverProfiles,
                         ::testing::Values(TraceProfile::WebServer,
                                           TraceProfile::Scientific,
                                           TraceProfile::DataMining),
                         profileName);
