//===- tests/lfalloc_concurrent_test.cpp - Concurrency stress tests -------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The paper's core claims under concurrency: correctness with blocks freed
// by other threads (§4.2.3), progress under oversubscription, and bounded
// space under producer-consumer churn.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "support/Barrier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

AllocatorOptions stressOptions() {
  AllocatorOptions Opts;
  Opts.NumHeaps = 4;
  Opts.SuperblockSize = 4096; // Small: maximizes superblock transitions.
  Opts.EnableStats = true;
  return Opts;
}

} // namespace

TEST(LFAllocConcurrent, RandomChurnWithContentValidation) {
  LFAllocator Alloc(stressOptions());
  constexpr int Threads = 8, Iters = 60'000, Slots = 48;
  std::atomic<int> Corruptions{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      XorShift128 Rng(1000 + T);
      struct Rec {
        unsigned char *P = nullptr;
        std::size_t N = 0;
        unsigned char V = 0;
      } Slot[Slots];
      for (int I = 0; I < Iters; ++I) {
        Rec &R = Slot[Rng.nextBounded(Slots)];
        if (R.P) {
          for (std::size_t K = 0; K < R.N; K += 7)
            if (R.P[K] != R.V) {
              Corruptions.fetch_add(1);
              break;
            }
          Alloc.deallocate(R.P);
          R.P = nullptr;
        } else {
          R.N = Rng.nextBounded(700) + 1;
          R.V = static_cast<unsigned char>(Rng.next());
          R.P = static_cast<unsigned char *>(Alloc.allocate(R.N));
          ASSERT_NE(R.P, nullptr);
          std::memset(R.P, R.V, R.N);
        }
      }
      for (Rec &R : Slot)
        if (R.P)
          Alloc.deallocate(R.P);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Corruptions.load(), 0);
  EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
}

TEST(LFAllocConcurrent, RemoteFreeRingExercisesCrossThreadPaths) {
  // Thread i allocates, thread (i+1) frees — every single block dies on a
  // foreign thread. This is the pattern that breaks pure-private-heap
  // allocators (paper §1).
  LFAllocator Alloc(stressOptions());
  constexpr int Threads = 4, PerThread = 40'000, Cap = 1 << 12;
  struct Ring {
    std::atomic<void *> Slot[Cap] = {};
    std::atomic<long> Wr{0};
  };
  std::vector<Ring> Rings(Threads);
  std::vector<std::thread> Ts;
  std::atomic<int> Corruptions{0};

  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      XorShift128 Rng(77 + T);
      Ring &Out = Rings[T];
      Ring &In = Rings[(T + Threads - 1) % Threads];
      long Produced = 0, Consumed = 0;
      while (Produced < PerThread || Consumed < PerThread) {
        if (Produced < PerThread) {
          // >= 10 bytes: layout below is [marker][8-byte size][..][marker].
          const std::size_t N = Rng.nextBounded(198) + 10;
          auto *P = static_cast<unsigned char *>(Alloc.allocate(N));
          ASSERT_NE(P, nullptr);
          P[0] = static_cast<unsigned char>(N & 0xff);
          P[N - 1] = static_cast<unsigned char>(N >> 8);
          // Stash the size in the block for the consumer to verify.
          std::memcpy(P + 1, &N, sizeof(N));
          long S = Out.Wr.load(std::memory_order_relaxed);
          if (!Out.Slot[S % Cap].load(std::memory_order_acquire)) {
            Out.Slot[S % Cap].store(P, std::memory_order_release);
            Out.Wr.store(S + 1, std::memory_order_relaxed);
            ++Produced;
          } else {
            Alloc.deallocate(P); // Ring full; drop.
            ++Produced;
          }
        }
        if (Consumed < PerThread) {
          void *P = In.Slot[Consumed % Cap].exchange(
              nullptr, std::memory_order_acq_rel);
          if (P) {
            auto *B = static_cast<unsigned char *>(P);
            std::size_t N;
            std::memcpy(&N, B + 1, sizeof(N));
            if (B[0] != static_cast<unsigned char>(N & 0xff) ||
                B[N - 1] != static_cast<unsigned char>(N >> 8))
              Corruptions.fetch_add(1);
            Alloc.deallocate(P);
            ++Consumed;
          } else if (Produced >= PerThread &&
                     In.Wr.load(std::memory_order_acquire) <= Consumed) {
            break; // Upstream is done and drained.
          }
        }
      }
    });
  for (auto &T : Ts)
    T.join();
  // Free anything left in rings.
  for (auto &R : Rings)
    for (auto &S : R.Slot)
      if (void *P = S.load())
        Alloc.deallocate(P);
  EXPECT_EQ(Corruptions.load(), 0);
  EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
}

TEST(LFAllocConcurrent, OversubscriptionMakesProgress) {
  // 32 threads on however few cores this machine has: lock-holder
  // preemption cannot exist because there are no locks. The test is that
  // it finishes (quickly) with intact accounting.
  LFAllocator Alloc(stressOptions());
  constexpr int Threads = 32, Iters = 5'000;
  SpinBarrier Start(Threads);
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      Start.arriveAndWait();
      for (int I = 0; I < Iters; ++I) {
        void *P = Alloc.allocate(static_cast<std::size_t>(I % 256));
        ASSERT_NE(P, nullptr);
        Alloc.deallocate(P);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Alloc.opStats().Mallocs,
            static_cast<std::uint64_t>(Threads) * Iters);
  EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
}

TEST(LFAllocConcurrent, ProducerConsumerSpaceStaysBounded) {
  // The paper's §1 argument against pure private heaps: under a
  // producer-consumer pattern, freed memory must be reusable by the
  // producer. Bound: peak space stays within a small multiple of the live
  // set, instead of growing with the total bytes ever allocated.
  AllocatorOptions Opts = stressOptions();
  LFAllocator Alloc(Opts);
  // Enough volume that fixed overheads (one 1 MB hyperblock, control
  // structures) are small against the bound below.
  constexpr int Rounds = 150'000, WindowSize = 64;
  constexpr std::size_t BlockSize = 120;

  std::atomic<void *> Window[WindowSize] = {};
  std::atomic<bool> Done{false};
  std::thread Consumer([&] {
    for (;;) {
      bool SawAny = false;
      for (auto &S : Window)
        if (void *P = S.exchange(nullptr, std::memory_order_acq_rel)) {
          Alloc.deallocate(P);
          SawAny = true;
        }
      if (!SawAny && Done.load(std::memory_order_acquire))
        return;
    }
  });

  std::uint64_t TotalAllocated = 0;
  for (int I = 0; I < Rounds; ++I) {
    void *P = Alloc.allocate(BlockSize);
    ASSERT_NE(P, nullptr);
    TotalAllocated += BlockSize;
    // Publish to the consumer; if the previous occupant is still there the
    // consumer is lagging — free it ourselves (still a remote-free for the
    // consumer-processed ones, which is the point).
    if (void *Prev = Window[I % WindowSize].exchange(
            P, std::memory_order_acq_rel))
      Alloc.deallocate(Prev);
  }
  Done.store(true, std::memory_order_release);
  Consumer.join();

  const std::uint64_t Peak = Alloc.pageStats().PeakBytes;
  EXPECT_LT(Peak, TotalAllocated / 4)
      << "space grew with total allocation volume: producer-consumer "
         "blowup (peak "
      << Peak << " of " << TotalAllocated << " total)";
}
