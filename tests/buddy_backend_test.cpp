//===- tests/buddy_backend_test.cpp - Lock-free buddy large backend -------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The buddy large-object backend (BuddyBackend.h): order rounding, the
// split/coalesce accounting of the counting-tree protocol, steady-state
// freedom from OS map traffic, alignment, the >max-order and exhaustion
// OS fallbacks, ENOMEM propagation under fault injection, watermark
// decommit + trim, deterministic seeded double-runs, and the quiescent
// structural validator — plus the os backend's byte-identical behavior
// as the reference. Seeded randomness derives from LFM_TEST_SEED
// (tests/TestSeed.h).
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/BuddyBackend.h"
#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/SizeClasses.h"

#include "TestSeed.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <random>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

constexpr std::size_t MinOrder = BuddyBackend::MinOrderBytes; // 8 KiB
constexpr std::size_t MaxOrder = BuddyBackend::MaxOrderBytes; // 8 MiB

class BuddyBackendTest : public ::testing::Test {
protected:
  /// A buddy-backed instance with the smallest legal span (8 MiB = one
  /// tree root) so span-boundary behavior is cheap to reach.
  AllocatorOptions buddyOptions(std::size_t SpanBytes = MaxOrder) {
    AllocatorOptions Opts;
    Opts.NumHeaps = 1;
    Opts.EnableStats = true;
    Opts.LargeBackend = LargeBackendKind::Buddy;
    Opts.BuddySpanBytes = SpanBytes;
    return Opts;
  }

  static LargeBackendSnapshot snap(const LFAllocator &A) {
    LargeBackendSnapshot S;
    A.largeBackendSnapshot(S);
    return S;
  }

  static void expectValid(const LFAllocator &A) {
    const char *What = nullptr;
    EXPECT_TRUE(A.debugValidateLargeBackend(&What))
        << "buddy invariant broken: " << (What ? What : "?");
  }

  /// Sum of the free-forest census plus live bytes must cover the whole
  /// reservation when the backend is quiescent.
  static void expectCensusComplete(const LargeBackendSnapshot &S) {
    std::uint64_t Free = 0;
    for (unsigned O = 0; O < S.NumOrders; ++O)
      Free += S.FreeBytesByOrder[O];
    EXPECT_EQ(Free + S.BytesAllocated, S.BytesReserved);
  }
};

TEST_F(BuddyBackendTest, RoundsToOrdersAndAccounts) {
  LFAllocator A(buddyOptions());
  ASSERT_TRUE(A.largeBackendIsBuddy());

  // Each request lands in the smallest order covering payload + prefix.
  const std::size_t Probes[] = {MinOrder, MinOrder + 1, 3 * MinOrder,
                                (1u << 20) - 64, 1u << 20, (4u << 20) + 9};
  for (std::size_t Bytes : Probes) {
    const LargeBackendSnapshot Before = snap(A);
    void *P = A.allocate(Bytes);
    ASSERT_NE(P, nullptr);
    EXPECT_GE(A.usableSize(P), Bytes);
    std::memset(P, 0x5C, Bytes);
    const LargeBackendSnapshot After = snap(A);
    EXPECT_EQ(After.Allocs, Before.Allocs + 1) << Bytes;
    const std::uint64_t Order = After.BytesAllocated - Before.BytesAllocated;
    // Rounded size is a power of two in [MinOrder, MaxOrder] that covers
    // the request + prefix but is not gratuitously large.
    EXPECT_EQ(Order & (Order - 1), 0u) << Bytes;
    EXPECT_GE(Order, Bytes);
    EXPECT_LT(Order / 2, Bytes + BlockPrefixSize) << Bytes;
    A.deallocate(P);
    EXPECT_EQ(snap(A).Frees, After.Frees + 1);
  }
  EXPECT_EQ(snap(A).BytesAllocated, 0u);
  expectValid(A);
  expectCensusComplete(snap(A));
}

TEST_F(BuddyBackendTest, SplitAndCoalesceCountsMatchTreeDepth) {
  LFAllocator A(buddyOptions());
  // The smallest large-path block: an 8 KiB payload's total (+ prefix)
  // exceeds the last 8 KiB size class, so it rounds to a 16 KiB buddy —
  // 2 levels above the leaves. Its first claim in a fresh 8 MiB span
  // carves every level above it: exactly NumOrders-2 splits. Freeing it
  // drains the same ancestors back to zero: NumOrders-2 coalesces.
  const LargeBackendSnapshot S0 = snap(A);
  void *P = A.allocate(MinOrder);
  ASSERT_NE(P, nullptr);
  const LargeBackendSnapshot S1 = snap(A);
  EXPECT_EQ(S1.Splits - S0.Splits, BuddyBackend::NumOrders - 2);
  EXPECT_EQ(S1.BytesAllocated, 2 * MinOrder);

  // A sibling-sized claim reuses the carved path: no further splits.
  void *Q = A.allocate(MinOrder);
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(snap(A).Splits, S1.Splits);

  A.deallocate(Q);
  A.deallocate(P);
  const LargeBackendSnapshot S2 = snap(A);
  EXPECT_EQ(S2.Coalesces - S0.Coalesces, BuddyBackend::NumOrders - 2);
  EXPECT_EQ(S2.BytesAllocated, 0u);
  // The span is whole again: the census shows one max-order free block.
  EXPECT_EQ(S2.FreeBytesByOrder[S2.NumOrders - 1], S2.BytesReserved);
  expectValid(A);
}

TEST_F(BuddyBackendTest, SteadyStateMakesNoMapCalls) {
  LFAllocator A(buddyOptions(std::size_t{1} << 27)); // 128 MiB span
  // Warm up: one round touches the span and commits its pages.
  std::vector<void *> Ptrs;
  for (int I = 0; I < 16; ++I)
    Ptrs.push_back(A.allocate(1u << 20));
  for (void *P : Ptrs)
    A.deallocate(P);
  Ptrs.clear();

  // Steady state: the whole churn is CAS traffic inside the span — zero
  // map/unmap/reserve syscalls. This is the backend's reason to exist.
  const PageStats Before = A.pageStats();
  for (int Round = 0; Round < 32; ++Round) {
    for (int I = 0; I < 16; ++I)
      Ptrs.push_back(A.allocate(1u << 20));
    for (void *P : Ptrs)
      A.deallocate(P);
    Ptrs.clear();
  }
  const PageStats After = A.pageStats();
  EXPECT_EQ(After.MapCalls, Before.MapCalls);
  EXPECT_EQ(After.UnmapCalls, Before.UnmapCalls);
  EXPECT_EQ(After.ReserveCalls, Before.ReserveCalls);
  expectValid(A);
}

TEST_F(BuddyBackendTest, AlignedAllocationsWithinSpan) {
  LFAllocator A(buddyOptions());
  for (std::size_t Align : {std::size_t{4096}, std::size_t{1} << 16,
                            std::size_t{1} << 20}) {
    char *P = static_cast<char *>(A.allocateAligned(Align, 512 << 10));
    ASSERT_NE(P, nullptr) << Align;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % Align, 0u) << Align;
    std::memset(P, 0x3D, 512 << 10);
    A.deallocate(P);
  }
  EXPECT_EQ(snap(A).BytesAllocated, 0u);
  expectValid(A);
}

TEST_F(BuddyBackendTest, AboveMaxOrderFallsBackToOs) {
  LFAllocator A(buddyOptions());
  const LargeBackendSnapshot Before = snap(A);
  const std::size_t BeforeUse = A.pageStats().BytesInUse;
  char *P = static_cast<char *>(A.allocate(MaxOrder)); // + prefix > max
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x11, MaxOrder);
  const LargeBackendSnapshot Mid = snap(A);
  EXPECT_EQ(Mid.OsFallbacks, Before.OsFallbacks + 1);
  EXPECT_EQ(Mid.BytesAllocated, Before.BytesAllocated)
      << "fallback block must not be charged to the spans";
  A.deallocate(P);
  EXPECT_EQ(A.pageStats().BytesInUse, BeforeUse)
      << "fallback free must unmap immediately (Fig. 6 line 5)";
  expectValid(A);
}

TEST_F(BuddyBackendTest, SpanExhaustionFallsBackThenRecovers) {
  LFAllocator A(buddyOptions()); // one 8 MiB root per span
  // Claim whole max-order blocks until every span slot is in play and the
  // backend resorts to direct maps.
  std::vector<void *> Blocks;
  const std::size_t Payload = (MaxOrder / 2) - BlockPrefixSize;
  LargeBackendSnapshot S = snap(A);
  while (snap(A).OsFallbacks == S.OsFallbacks) {
    void *P = A.allocate(Payload);
    ASSERT_NE(P, nullptr);
    Blocks.push_back(P);
    ASSERT_LE(Blocks.size(), 4096u) << "fallback never engaged";
  }
  for (void *P : Blocks)
    A.deallocate(P);
  // With the spans drained the next claim comes from a span again.
  S = snap(A);
  void *P = A.allocate(Payload);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(snap(A).OsFallbacks, S.OsFallbacks);
  A.deallocate(P);
  expectValid(A);
  expectCensusComplete(snap(A));
}

TEST_F(BuddyBackendTest, ExhaustionSetsEnomem) {
  LFAllocator A(buddyOptions());
  // Refuse every further OS operation: the first large request needs a
  // span reserve (which fails), then tries the direct-map fallback (which
  // fails) — the user must see null + ENOMEM, never a crash.
  A.debugInjectMapFailuresAfter(0);
  errno = 0;
  EXPECT_EQ(A.allocate(1u << 20), nullptr);
  EXPECT_EQ(errno, ENOMEM);
  A.debugInjectMapFailuresAfter(-1);
  // The backend is not poisoned: maps restored, allocation succeeds.
  void *P = A.allocate(1u << 20);
  EXPECT_NE(P, nullptr);
  A.deallocate(P);
  expectValid(A);
}

TEST_F(BuddyBackendTest, WatermarkZeroDecommitsOnFree) {
  AllocatorOptions Opts = buddyOptions();
  Opts.RetainMaxBytes = 0; // Return every free committed page eagerly.
  LFAllocator A(Opts);
  const PageStats Before = A.pageStats();
  void *P = A.allocate(4u << 20);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x6E, 4u << 20);
  A.deallocate(P);
  const PageStats After = A.pageStats();
  EXPECT_GT(After.DecommitCalls, Before.DecommitCalls);
  EXPECT_GE(After.BytesDecommitted - Before.BytesDecommitted, 4u << 20);
  const LargeBackendSnapshot S = snap(A);
  EXPECT_GT(S.Decommits, 0u);
  EXPECT_EQ(S.FreeCommittedBytes, 0u);
  expectValid(A);
}

TEST_F(BuddyBackendTest, TrimReleasesRetainedPages) {
  LFAllocator A(buddyOptions()); // Default watermark: retain everything.
  std::vector<void *> Ptrs;
  for (int I = 0; I < 8; ++I)
    Ptrs.push_back(A.allocate(512 << 10));
  for (void *P : Ptrs) {
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x42, 512 << 10);
    A.deallocate(P);
  }
  const LargeBackendSnapshot Retained = snap(A);
  EXPECT_GE(Retained.FreeCommittedBytes, 8u * (512u << 10))
      << "frees below the watermark must stay resident";

  const std::size_t Freed = A.trimLargeBackend(0);
  EXPECT_GE(Freed, Retained.FreeCommittedBytes);
  EXPECT_EQ(snap(A).FreeCommittedBytes, 0u);
  // Trimmed address space is still reserved and still allocatable.
  void *P = A.allocate(512 << 10);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x24, 512 << 10);
  A.deallocate(P);
  expectValid(A);
}

TEST_F(BuddyBackendTest, ReallocAcrossOrdersPreservesContent) {
  LFAllocator A(buddyOptions());
  const std::size_t Start = 256 << 10;
  char *P = static_cast<char *>(A.allocate(Start));
  ASSERT_NE(P, nullptr);
  for (std::size_t I = 0; I < Start; ++I)
    P[I] = static_cast<char>(I * 29 + 3);
  // Grow across buddy orders (copy path) and past the max order (into an
  // OS-fallback block), then shrink back into a span.
  char *Q = static_cast<char *>(A.reallocate(P, 2u << 20));
  ASSERT_NE(Q, nullptr);
  char *R = static_cast<char *>(A.reallocate(Q, MaxOrder + (1u << 20)));
  ASSERT_NE(R, nullptr);
  char *S = static_cast<char *>(A.reallocate(R, Start / 2));
  ASSERT_NE(S, nullptr);
  for (std::size_t I = 0; I < Start / 2; ++I)
    ASSERT_EQ(S[I], static_cast<char>(I * 29 + 3)) << "byte " << I;
  A.deallocate(S);
  EXPECT_EQ(snap(A).BytesAllocated, 0u);
  expectValid(A);
}

TEST_F(BuddyBackendTest, SeededChurnIsDeterministic) {
  // The same seeded operation sequence against two fresh instances must
  // land every counter on the same value: no hidden time/address
  // dependence in the single-threaded protocol.
  const std::uint64_t Seed = test::baseSeed() + 9001;
  auto Run = [&](LFAllocator &A) {
    std::mt19937_64 Rng(Seed);
    std::vector<std::pair<void *, std::size_t>> Live;
    for (int Op = 0; Op < 400; ++Op) {
      if (Live.empty() || (Rng() & 3) != 0) {
        const std::size_t Bytes =
            MinOrder / 2 + Rng() % (2u << 20);
        void *P = A.allocate(Bytes);
        ASSERT_NE(P, nullptr);
        std::memset(P, 0x7A, 64);
        Live.emplace_back(P, Bytes);
      } else {
        const std::size_t Victim = Rng() % Live.size();
        A.deallocate(Live[Victim].first);
        Live[Victim] = Live.back();
        Live.pop_back();
      }
    }
    for (auto &[P, Bytes] : Live)
      A.deallocate(P);
    expectValid(A);
  };
  LFAllocator A1(buddyOptions()), A2(buddyOptions());
  Run(A1);
  Run(A2);
  const LargeBackendSnapshot S1 = snap(A1), S2 = snap(A2);
  EXPECT_EQ(S1.Allocs, S2.Allocs);
  EXPECT_EQ(S1.Frees, S2.Frees);
  EXPECT_EQ(S1.Splits, S2.Splits);
  EXPECT_EQ(S1.Coalesces, S2.Coalesces);
  EXPECT_EQ(S1.OsFallbacks, S2.OsFallbacks);
  EXPECT_EQ(S1.BytesAllocated, S2.BytesAllocated);
  EXPECT_EQ(S1.BytesAllocated, 0u);
}

TEST_F(BuddyBackendTest, ConcurrentChurnKeepsInvariants) {
  LFAllocator A(buddyOptions(std::size_t{1} << 27));
  constexpr int NumThreads = 4, OpsPerThread = 300;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&A, T] {
      std::mt19937_64 Rng(test::baseSeed() + 31 * T);
      std::vector<void *> Live;
      for (int Op = 0; Op < OpsPerThread; ++Op) {
        if (Live.empty() || (Rng() & 1)) {
          const std::size_t Bytes = MinOrder + Rng() % (1u << 20);
          if (void *P = A.allocate(Bytes)) {
            std::memset(P, T + 1, 64);
            Live.push_back(P);
          }
        } else {
          A.deallocate(Live.back());
          Live.pop_back();
        }
      }
      for (void *P : Live)
        A.deallocate(P);
    });
  for (std::thread &T : Threads)
    T.join();
  const LargeBackendSnapshot S = snap(A);
  EXPECT_EQ(S.Allocs - S.OsFallbacks, S.Frees - 0u);
  EXPECT_EQ(S.BytesAllocated, 0u);
  expectValid(A);
  expectCensusComplete(S);
}

TEST_F(BuddyBackendTest, OsBackendKeepsPaperBehavior) {
  // LargeBackendKind::OsDirect must reproduce the paper's large path
  // operation for operation: one map per malloc, one unmap per free.
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.EnableStats = true;
  Opts.LargeBackend = LargeBackendKind::OsDirect;
  LFAllocator A(Opts);
  ASSERT_FALSE(A.largeBackendIsBuddy());
  EXPECT_FALSE(snap(A).Buddy);

  const PageStats Before = A.pageStats();
  std::vector<void *> Ptrs;
  for (int I = 0; I < 8; ++I) {
    Ptrs.push_back(A.allocate(1u << 20));
    ASSERT_NE(Ptrs.back(), nullptr);
  }
  const PageStats Mid = A.pageStats();
  EXPECT_EQ(Mid.MapCalls, Before.MapCalls + 8);
  for (void *P : Ptrs)
    A.deallocate(P);
  const PageStats After = A.pageStats();
  EXPECT_EQ(After.UnmapCalls, Mid.UnmapCalls + 8);
  EXPECT_EQ(After.BytesInUse, Before.BytesInUse);
  EXPECT_EQ(After.ReserveCalls, Before.ReserveCalls);
}

} // namespace
