//===- tests/alloctrace_test.cpp - Allocation flight recorder tests -------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The recorder (trace/AllocTrace.h) is driven directly through its shim
// hooks with synthetic, deterministic pointers — the recorder never
// dereferences them, so a test can replay an exact op sequence without
// preloading anything. Covered here:
//   - varint encode/decode including truncation edges,
//   - single-thread round-trip: op counts, token wiring, live-byte curve,
//   - multithread round-trip with a known cross-thread-free topology,
//     replayed against a real allocator via the replay plan,
//   - drop accounting (Ops + Dropped == issued; nothing silent),
//   - truncated / corrupt file tolerance in the reader,
//   - the trace.* lf_malloc_ctl surface in both build configurations.
//
//===----------------------------------------------------------------------===//

#include "harness/ReplayWorkload.h"
#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/LFMalloc.h"
#include "support/Random.h"
#include "TestSeed.h"
#include "trace/AllocTrace.h"
#include "trace/TraceFormat.h"
#include "trace/TraceReader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lfm;
using namespace lfm::trace;

namespace {

std::string tmpTracePath(const char *Tag) {
  return "./alloctrace_test_" + std::string(Tag) + "_" +
         std::to_string(::getpid()) + ".trace";
}

/// A deterministic fake heap pointer. 16-aligned like real blocks; never
/// dereferenced by the recorder. (Unused, like slurp, when the recorder
/// is compiled out.)
[[maybe_unused]] void *fakePtr(std::uint64_t N) {
  return reinterpret_cast<void *>((N + 1) << 4);
}

[[maybe_unused]] std::vector<std::uint8_t> slurp(const std::string &Path) {
  std::vector<std::uint8_t> Bytes;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (F == nullptr)
    return Bytes;
  std::uint8_t Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return Bytes;
}

} // namespace

TEST(TraceFormat, VarintRoundTrip) {
  const std::uint64_t Cases[] = {0,       1,          0x7f,       0x80,
                                 0x3fff,  0x4000,     1u << 20,   ~0ull >> 1,
                                 ~0ull,   0x12345678, 0xdeadbeefcafeull};
  for (const std::uint64_t V : Cases) {
    std::uint8_t Buf[MaxVarintBytes];
    const std::size_t N = putVarint(Buf, V);
    ASSERT_GE(N, 1u);
    ASSERT_LE(N, MaxVarintBytes);
    std::uint64_t Out = ~V;
    EXPECT_EQ(getVarint(Buf, N, Out), N) << V;
    EXPECT_EQ(Out, V);
    // Every strict prefix must report truncation, not a wrong value.
    for (std::size_t Cut = 0; Cut + 1 < N; ++Cut)
      EXPECT_EQ(getVarint(Buf, Cut, Out), 0u) << V << " cut at " << Cut;
  }
}

TEST(TraceReader, RejectsGarbage) {
  const std::uint8_t Junk[] = {'n', 'o', 't', 'a', 't', 'r', 'c', '!', 0, 0};
  EXPECT_EQ(readTraceImage(Junk, sizeof(Junk)).Status, ReadStatus::Corrupt);
  EXPECT_EQ(readTraceImage(Junk, 3).Status, ReadStatus::Corrupt);
  EXPECT_EQ(readTraceFile("/nonexistent/alloctrace").Status,
            ReadStatus::Corrupt);
  // Valid magic, truncated header.
  std::uint8_t Short[9];
  std::memcpy(Short, FormatMagic, 8);
  Short[8] = 0x80; // Unterminated varint.
  const TraceFile F = readTraceImage(Short, sizeof(Short));
  EXPECT_EQ(F.Status, ReadStatus::Corrupt);
  EXPECT_FALSE(F.Error.empty());
}

TEST(TraceReader, GarbageOpcodeStopsStreamNotReader) {
  // Hand-build: header + one chunk whose payload starts with opcode 99.
  std::vector<std::uint8_t> Img(FormatMagic, FormatMagic + 8);
  std::uint8_t Tmp[MaxVarintBytes];
  auto PutV = [&](std::uint64_t V) {
    Img.insert(Img.end(), Tmp, Tmp + putVarint(Tmp, V));
  };
  PutV(FormatVersion);
  PutV(0);
  PutV(12345);
  PutV(0); // tid
  PutV(0); // seq
  PutV(1); // len
  Img.push_back(99);
  const TraceFile F = readTraceImage(Img.data(), Img.size());
  EXPECT_EQ(F.Status, ReadStatus::Truncated);
  EXPECT_EQ(F.TotalOps, 0u);
}

#if LFM_ALLOC_TRACE

TEST(AllocTrace, StartStopLifecycle) {
  const std::string Path = tmpTracePath("lifecycle");
  EXPECT_EQ(trace::stopRecording(), EALREADY);
  EXPECT_EQ(trace::flushNow(), EALREADY);
  EXPECT_EQ(trace::startRecording("", 0), EINVAL);
  ASSERT_EQ(trace::startRecording(Path.c_str(), 0), 0);
  EXPECT_TRUE(trace::recording());
  EXPECT_EQ(trace::startRecording(Path.c_str(), 0), EALREADY);
  EXPECT_EQ(trace::flushNow(), 0);
  ASSERT_EQ(trace::stopRecording(), 0);
  EXPECT_FALSE(trace::recording());
  // tmp was renamed into place at stop.
  const TraceFile F = readTraceFile(Path.c_str());
  EXPECT_EQ(F.Status, ReadStatus::Ok);
  EXPECT_EQ(F.Version, FormatVersion);
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
}

TEST(AllocTrace, SingleThreadRoundTripAndLiveByteCurve) {
  const std::string Path = tmpTracePath("roundtrip");
  ASSERT_EQ(trace::startRecording(Path.c_str(), 0), 0);

  // Issue a deterministic mixed sequence, tracking the expected live-byte
  // curve as the recorder should reconstruct it.
  XorShift128 Rng(test::baseSeed() ^ 0xa110c7);
  std::map<std::uint64_t, std::uint64_t> LiveBytes; // fake ptr id -> size
  std::vector<std::uint64_t> IssuedCurve;
  std::uint64_t Cur = 0, NextPtr = 0, IssuedOps = 0;
  for (unsigned I = 0; I < 5000; ++I) {
    const bool DoFree = !LiveBytes.empty() && Rng.nextBounded(3) == 0;
    if (DoFree) {
      auto It = LiveBytes.begin();
      std::advance(It, static_cast<long>(Rng.nextBounded(LiveBytes.size())));
      trace::onFree(fakePtr(It->first));
      Cur -= It->second;
      LiveBytes.erase(It);
    } else {
      const std::uint64_t Id = NextPtr++;
      const std::uint64_t Sz = 16 + Rng.nextBounded(4096);
      switch (Rng.nextBounded(3)) {
      case 0:
        trace::onMalloc(fakePtr(Id), Sz);
        break;
      case 1:
        trace::onCalloc(fakePtr(Id), 1, Sz);
        break;
      default:
        trace::onAlignedAlloc(fakePtr(Id), 64, Sz);
        break;
      }
      LiveBytes[Id] = Sz;
      Cur += Sz;
    }
    ++IssuedOps;
    IssuedCurve.push_back(Cur);
  }
  ASSERT_EQ(trace::stopRecording(), 0);

  const trace::RecorderStats St = trace::recorderStats();
  EXPECT_EQ(St.Dropped, 0u) << "default buffer must absorb 5k ops";
  EXPECT_EQ(St.Ops, IssuedOps);

  const TraceFile F = readTraceFile(Path.c_str());
  ASSERT_EQ(F.Status, ReadStatus::Ok) << F.Error;
  ASSERT_EQ(F.Threads.size(), 1u);
  EXPECT_EQ(F.TotalOps, IssuedOps);
  EXPECT_EQ(F.TotalDropped, 0u);

  // Reconstruct the live-byte curve from the decoded stream: tokens must
  // wire frees back to the right allocations.
  std::map<std::uint64_t, std::uint64_t> TokBytes;
  std::vector<std::uint64_t> DecodedCurve;
  std::uint64_t DCur = 0;
  for (const TraceOpRec &R : F.Threads[0].Ops) {
    switch (R.Kind) {
    case OpKind::Malloc:
    case OpKind::Calloc:
    case OpKind::AlignedAlloc:
      ASSERT_NE(R.Token, 0u);
      ASSERT_EQ(TokBytes.count(R.Token), 0u) << "token reused";
      TokBytes[R.Token] = R.Size;
      DCur += R.Size;
      break;
    case OpKind::Free: {
      auto It = TokBytes.find(R.Token);
      ASSERT_NE(It, TokBytes.end()) << "free of unknown token";
      DCur -= It->second;
      TokBytes.erase(It);
      break;
    }
    default:
      FAIL() << "unexpected record kind";
    }
    DecodedCurve.push_back(DCur);
  }
  EXPECT_EQ(DecodedCurve, IssuedCurve);
  std::remove(Path.c_str());
}

TEST(AllocTrace, ReallocTokenWiring) {
  const std::string Path = tmpTracePath("realloc");
  ASSERT_EQ(trace::startRecording(Path.c_str(), 0), 0);

  // grow: p0 -> p1; failed grow: p1 stays; realloc-to-zero frees p1.
  trace::onMalloc(fakePtr(0), 100);
  std::uint64_t Tok = trace::beforeRealloc(fakePtr(0));
  trace::afterRealloc(fakePtr(0), Tok, fakePtr(1), 200);
  Tok = trace::beforeRealloc(fakePtr(1));
  trace::afterRealloc(fakePtr(1), Tok, nullptr, 300); // failed grow
  Tok = trace::beforeRealloc(fakePtr(1));
  trace::afterRealloc(fakePtr(1), Tok, nullptr, 0); // realloc(p, 0)
  ASSERT_EQ(trace::stopRecording(), 0);

  const TraceFile F = readTraceFile(Path.c_str());
  ASSERT_EQ(F.Status, ReadStatus::Ok) << F.Error;
  ASSERT_EQ(F.Threads.size(), 1u);
  const auto &Ops = F.Threads[0].Ops;
  ASSERT_EQ(Ops.size(), 4u);
  ASSERT_EQ(Ops[0].Kind, OpKind::Malloc);
  const std::uint64_t T0 = Ops[0].Token;
  ASSERT_EQ(Ops[1].Kind, OpKind::Realloc);
  EXPECT_EQ(Ops[1].OldToken, T0);
  EXPECT_NE(Ops[1].Token, 0u);
  ASSERT_EQ(Ops[2].Kind, OpKind::Realloc);
  EXPECT_EQ(Ops[2].OldToken, Ops[1].Token) << "failed grow keeps old block";
  EXPECT_EQ(Ops[2].Token, 0u);
  EXPECT_EQ(Ops[2].Size, 300u);
  ASSERT_EQ(Ops[3].Kind, OpKind::Realloc);
  EXPECT_EQ(Ops[3].OldToken, Ops[1].Token)
      << "failed grow must restore the mapping under the same token";
  EXPECT_EQ(Ops[3].Token, 0u);
  EXPECT_EQ(Ops[3].Size, 0u);

  // The plan lowers these to: alloc T0, alloc T1+free T0, (failed: no-op),
  // free T1.
  const ReplayPlan Plan = buildReplayPlan(F);
  EXPECT_EQ(Plan.TotalAllocs, 2u);
  EXPECT_EQ(Plan.TotalFrees, 2u);
  EXPECT_EQ(Plan.SuppressedFrees, 0u);
  EXPECT_EQ(Plan.Leftover[0].size(), 0u);
  std::remove(Path.c_str());
}

TEST(AllocTrace, MultithreadCrossThreadFreeRoundTrip) {
  const std::string Path = tmpTracePath("crossthread");
  constexpr unsigned NumThreads = 4;
  constexpr unsigned BlocksPer = 500;
  ASSERT_EQ(trace::startRecording(Path.c_str(), 0), 0);

  // Phase 1: each thread allocates its own section of the fake heap.
  // Phase 2: each thread frees the *next* thread's section — every free
  // is a cross-thread free, BlocksPer * NumThreads edges in total.
  {
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < NumThreads; ++W)
      Ts.emplace_back([W] {
        for (unsigned B = 0; B < BlocksPer; ++B)
          trace::onMalloc(fakePtr(W * BlocksPer + B), 32 + W * 8 + B % 64);
      });
    for (auto &T : Ts)
      T.join();
  }
  {
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < NumThreads; ++W)
      Ts.emplace_back([W] {
        const unsigned Victim = (W + 1) % NumThreads;
        for (unsigned B = 0; B < BlocksPer; ++B)
          trace::onFree(fakePtr(Victim * BlocksPer + B));
      });
    for (auto &T : Ts)
      T.join();
  }
  ASSERT_EQ(trace::stopRecording(), 0);
  EXPECT_EQ(trace::recorderStats().Dropped, 0u);

  const TraceFile F = readTraceFile(Path.c_str());
  ASSERT_EQ(F.Status, ReadStatus::Ok) << F.Error;
  EXPECT_EQ(F.TotalOps, 2ull * NumThreads * BlocksPer);

  const ReplayPlan Plan = buildReplayPlan(F);
  EXPECT_EQ(Plan.TotalAllocs, std::uint64_t{NumThreads} * BlocksPer);
  EXPECT_EQ(Plan.TotalFrees, std::uint64_t{NumThreads} * BlocksPer);
  EXPECT_EQ(Plan.CrossThreadFrees, std::uint64_t{NumThreads} * BlocksPer)
      << "every free must be a preserved cross-thread edge";
  EXPECT_EQ(Plan.SuppressedFrees, 0u);

  // And the plan must actually replay, deadlock-free, with identical op
  // counts, against a real allocator.
  auto Alloc = makeAllocator(AllocatorKind::LockFree, NumThreads);
  const RecordedReplayResult R = replayRecorded(*Alloc, Plan, 4);
  EXPECT_EQ(R.Allocs, Plan.TotalAllocs);
  EXPECT_EQ(R.Frees, Plan.TotalFrees);
  EXPECT_EQ(R.FailedAllocs, 0u);
  EXPECT_EQ(R.CrossThreadFrees, Plan.CrossThreadFrees);
  EXPECT_GT(R.LatencyNs.count(), 0u);
  std::remove(Path.c_str());
}

TEST(AllocTrace, CrossThreadRoundTripReplaysThroughMagazines) {
  // Same record/replay round trip, but the replay target runs the
  // thread-local magazine cache: every preserved cross-thread edge now
  // lands in the freeing worker's magazine and flows back through depot
  // flushes and batch refills. The op accounting must be identical to the
  // classic allocator's.
  const std::string Path = tmpTracePath("crossthread-tcache");
  constexpr unsigned NumThreads = 4;
  constexpr unsigned BlocksPer = 500;
  ASSERT_EQ(trace::startRecording(Path.c_str(), 0), 0);
  {
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < NumThreads; ++W)
      Ts.emplace_back([W] {
        for (unsigned B = 0; B < BlocksPer; ++B)
          trace::onMalloc(fakePtr(W * BlocksPer + B), 16 + B % 240);
      });
    for (auto &T : Ts)
      T.join();
  }
  {
    std::vector<std::thread> Ts;
    for (unsigned W = 0; W < NumThreads; ++W)
      Ts.emplace_back([W] {
        const unsigned Victim = (W + 1) % NumThreads;
        for (unsigned B = 0; B < BlocksPer; ++B)
          trace::onFree(fakePtr(Victim * BlocksPer + B));
      });
    for (auto &T : Ts)
      T.join();
  }
  ASSERT_EQ(trace::stopRecording(), 0);

  const TraceFile F = readTraceFile(Path.c_str());
  ASSERT_EQ(F.Status, ReadStatus::Ok) << F.Error;
  const ReplayPlan Plan = buildReplayPlan(F);

  AllocatorOptions Opts;
  Opts.NumHeaps = NumThreads;
  Opts.EnableStats = true;
  Opts.EnableThreadCache = true;
  Opts.ThreadCacheMagSize = 16;
  auto Alloc = makeLockFreeAllocator(Opts, "lockfree-tcache");
  const RecordedReplayResult R = replayRecorded(*Alloc, Plan, 4);
  EXPECT_EQ(R.Allocs, Plan.TotalAllocs);
  EXPECT_EQ(R.Frees, Plan.TotalFrees);
  EXPECT_EQ(R.FailedAllocs, 0u);
  EXPECT_EQ(R.CrossThreadFrees, Plan.CrossThreadFrees);
  std::remove(Path.c_str());
}

TEST(AllocTrace, DropAccountingIsNeverSilent) {
  const std::string Path = tmpTracePath("drops");
  // Smallest legal pool (two 64 KiB chunks) and a tight loop: the writer
  // (200 ms pass period) cannot keep up, so the pool must exhaust.
  ASSERT_EQ(trace::startRecording(Path.c_str(), 1), 0);
  std::uint64_t Issued = 0;
  for (std::uint64_t I = 0; I < 400'000; I += 2, Issued += 2) {
    trace::onMalloc(fakePtr(7), 64);
    trace::onFree(fakePtr(7));
  }
  // Drain the pool, then record a little more: the first op after space
  // returns carries the accumulated in-stream Dropped marker (a trailing
  // pending batch with no subsequent record would never flush).
  ASSERT_EQ(trace::flushNow(), 0);
  for (unsigned I = 0; I < 10; ++I, Issued += 2) {
    trace::onMalloc(fakePtr(7), 64);
    trace::onFree(fakePtr(7));
  }
  ASSERT_EQ(trace::stopRecording(), 0);

  const trace::RecorderStats St = trace::recorderStats();
  EXPECT_EQ(St.Ops + St.Dropped, Issued)
      << "every issued op is either recorded or accounted as dropped";
  EXPECT_GT(St.Dropped, 0u) << "a 128 KiB pool cannot absorb 400k ops";

  const TraceFile F = readTraceFile(Path.c_str());
  ASSERT_NE(F.Status, ReadStatus::Corrupt) << F.Error;
  EXPECT_EQ(F.TotalOps, St.Ops) << "file and recorder must agree";
  // In-stream Dropped markers cover at most the global count (a trailing
  // pending-drop batch with no subsequent record never flushes).
  EXPECT_LE(F.TotalDropped, St.Dropped);
  EXPECT_GT(F.TotalDropped, 0u);
  std::remove(Path.c_str());
}

TEST(AllocTrace, TruncatedFileYieldsCleanPrefix) {
  const std::string Path = tmpTracePath("truncate");
  ASSERT_EQ(trace::startRecording(Path.c_str(), 0), 0);
  for (unsigned I = 0; I < 2000; ++I)
    trace::onMalloc(fakePtr(I), 128);
  ASSERT_EQ(trace::stopRecording(), 0);
  const std::vector<std::uint8_t> Full = slurp(Path);
  ASSERT_GT(Full.size(), 64u);

  const TraceFile Whole = readTraceImage(Full.data(), Full.size());
  ASSERT_EQ(Whole.Status, ReadStatus::Ok);
  ASSERT_EQ(Whole.TotalOps, 2000u);

  // Every truncation point must parse without error to a prefix no larger
  // than the full trace — never crash, never invent records.
  for (const double Frac : {0.2, 0.5, 0.9, 0.99}) {
    const auto Cut = static_cast<std::size_t>(Full.size() * Frac);
    const TraceFile F = readTraceImage(Full.data(), Cut);
    EXPECT_NE(F.Status, ReadStatus::Corrupt) << "cut at " << Cut;
    EXPECT_LE(F.TotalOps, Whole.TotalOps);
    const ReplayPlan Plan = buildReplayPlan(F); // must not throw/hang
    EXPECT_LE(Plan.TotalAllocs, 2000u);
  }
  std::remove(Path.c_str());
}

#endif // LFM_ALLOC_TRACE

TEST(TraceCtl, KeysResolveInEveryConfiguration) {
  // Echo/status keys must resolve regardless of LFM_ALLOC_TRACE, so the
  // env↔ctl registry invariant is configuration-independent.
  std::uint64_t V = ~0ull;
  std::size_t Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl("trace.status", &V, &Len, nullptr, 0), 0);
  EXPECT_EQ(V, 0u);
  Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl("trace.dropped", &V, &Len, nullptr, 0), 0);
  Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl("trace.ops", &V, &Len, nullptr, 0), 0);
  Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl("trace.buffer_kb", &V, &Len, nullptr, 0), 0);
  char Path[64];
  Len = sizeof(Path);
  EXPECT_EQ(lf_malloc_ctl("trace.path", Path, &Len, nullptr, 0), 0);
  EXPECT_EQ(lf_malloc_ctl("trace.nonsense", &V, &Len, nullptr, 0), ENOENT);
  // Write to a read-only echo key.
  EXPECT_EQ(lf_malloc_ctl("trace.status", nullptr, nullptr, &V, sizeof(V)),
            EPERM);
}

TEST(TraceCtl, StartStopThroughCtl) {
  const std::string Path = tmpTracePath("ctl");
  const int Rc = lf_malloc_ctl("trace.start", nullptr, nullptr, Path.c_str(),
                               Path.size() + 1);
#if LFM_ALLOC_TRACE
  ASSERT_EQ(Rc, 0);
  std::uint64_t V = 0;
  std::size_t Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl("trace.status", &V, &Len, nullptr, 0), 0);
  EXPECT_EQ(V, 1u);
  // The started path is echoed.
  char Echo[256];
  Len = sizeof(Echo);
  EXPECT_EQ(lf_malloc_ctl("trace.path", Echo, &Len, nullptr, 0), 0);
  EXPECT_STREQ(Echo, Path.c_str());
  trace::onMalloc(fakePtr(1), 64);
  trace::onFree(fakePtr(1));
  EXPECT_EQ(lf_malloc_ctl("trace.flush", nullptr, nullptr, nullptr, 0), 0);
  EXPECT_EQ(lf_malloc_ctl("trace.stop", nullptr, nullptr, nullptr, 0), 0);
  Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl("trace.ops", &V, &Len, nullptr, 0), 0);
  EXPECT_EQ(V, 2u);
  const TraceFile F = readTraceFile(Path.c_str());
  EXPECT_EQ(F.Status, ReadStatus::Ok) << F.Error;
  EXPECT_EQ(F.TotalOps, 2u);
  // lfm-metrics-v2 surfaces the recorder health under stats.*.
  Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl("stats.alloctrace_ops", &V, &Len, nullptr, 0), 0);
  EXPECT_EQ(V, 2u);
  Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl("stats.alloctrace_recording", &V, &Len, nullptr, 0),
            0);
  EXPECT_EQ(V, 0u);
#else
  // Recorder compiled out: action keys report ENOENT, echoes still work.
  EXPECT_EQ(Rc, ENOENT);
  EXPECT_EQ(lf_malloc_ctl("trace.stop", nullptr, nullptr, nullptr, 0),
            ENOENT);
  EXPECT_EQ(lf_malloc_ctl("trace.flush", nullptr, nullptr, nullptr, 0),
            ENOENT);
#endif
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
}

TEST(TraceCtl, BufferKbIsReadWrite) {
  std::uint64_t Kb = 512;
  ASSERT_EQ(lf_malloc_ctl("trace.buffer_kb", nullptr, nullptr, &Kb,
                          sizeof(Kb)),
            0);
  std::uint64_t Echo = 0;
  std::size_t Len = sizeof(Echo);
  ASSERT_EQ(lf_malloc_ctl("trace.buffer_kb", &Echo, &Len, nullptr, 0), 0);
  EXPECT_EQ(Echo, 512u);
  Kb = 0; // Back to "resolve the environment / default".
  ASSERT_EQ(lf_malloc_ctl("trace.buffer_kb", nullptr, nullptr, &Kb,
                          sizeof(Kb)),
            0);
}
