//===- tests/tcache_test.cpp - Thread-local magazine cache tests ----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// The magazine layer's observable contract: hits stay inside the calling
// thread's magazine, misses refill in batches through the anchor machinery,
// overflow flushes in batches back out, exiting threads retain nothing, and
// LFM_TCACHE=0 restores the classic allocator bit for bit. Every test ends
// with the allocator's own invariant oracle (debugValidate), which counts
// magazine- and depot-resident blocks against each superblock's freelist.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/SizeClasses.h"
#include "profiling/HeapTopology.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

using namespace lfm;
using telemetry::Counter;

namespace {

AllocatorOptions tcacheOptions(unsigned MagSize = 64) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 2;
  Opts.EnableStats = true;
  Opts.EnableThreadCache = true;
  Opts.ThreadCacheMagSize = MagSize;
  return Opts;
}

std::string validateMessage(LFAllocator &Alloc) {
  std::string Msg;
  EXPECT_TRUE(Alloc.debugValidate(&Msg)) << Msg;
  return Msg;
}

} // namespace

//===----------------------------------------------------------------------===//
// Hit / miss / refill / flush units
//===----------------------------------------------------------------------===//

TEST(Tcache, FirstAllocRefillsThenHits) {
  LFAllocator Alloc(tcacheOptions());
  ASSERT_TRUE(Alloc.threadCacheEnabled());

  const unsigned Class = sizeToClass(24);
  // The very first miss carves a fresh superblock and serves exactly one
  // block (nothing cached yet); the *next* miss finds an ACTIVE superblock
  // with credits and batch-fills the magazine through one anchor CAS.
  void *P = Alloc.allocate(24);
  ASSERT_NE(P, nullptr);
  void *P2 = Alloc.allocate(24);
  ASSERT_NE(P2, nullptr);

  auto Snap = Alloc.metricsSnapshot();
  if (Snap.TelemetryCompiled) {
    EXPECT_GE(Snap.counter(Counter::TcacheRefills), 2u);
    EXPECT_GE(Snap.counter(Counter::TcacheRefillBlocks), 2u);
  }
  const std::uint32_t Cached = Alloc.debugTcacheMagazineCount(Class);
  EXPECT_GE(Cached, 1u);

  // Subsequent allocations of the same class are hits: served from the
  // magazine with no further refills until it runs dry.
  std::vector<void *> Blocks;
  for (std::uint32_t I = 0; I < Cached; ++I) {
    void *Q = Alloc.allocate(24);
    ASSERT_NE(Q, nullptr);
    Blocks.push_back(Q);
  }
  auto Snap2 = Alloc.metricsSnapshot();
  EXPECT_EQ(Snap2.counter(Counter::TcacheRefills),
            Snap.counter(Counter::TcacheRefills));
  EXPECT_GE(Snap2.counter(Counter::TcacheHitMallocs), std::uint64_t{Cached});

  Alloc.deallocate(P);
  Alloc.deallocate(P2);
  for (void *Q : Blocks)
    Alloc.deallocate(Q);
  validateMessage(Alloc);
}

TEST(Tcache, FreeAbsorbsIntoMagazine) {
  LFAllocator Alloc(tcacheOptions());
  const unsigned Class = sizeToClass(24);

  void *P = Alloc.allocate(24);
  ASSERT_NE(P, nullptr);
  const std::uint32_t Before = Alloc.debugTcacheMagazineCount(Class);
  Alloc.deallocate(P);
  EXPECT_EQ(Alloc.debugTcacheMagazineCount(Class), Before + 1);

  auto Snap = Alloc.metricsSnapshot();
  EXPECT_GE(Snap.counter(Counter::TcacheHitFrees), 1u);
  EXPECT_GE(Snap.TcacheMagazineBlocks, 1u);
  validateMessage(Alloc);
}

TEST(Tcache, HitsFoldIntoMallocFreeTotals) {
  LFAllocator Alloc(tcacheOptions());
  constexpr int Ops = 200;
  for (int I = 0; I < Ops; ++I) {
    void *P = Alloc.allocate(32);
    ASSERT_NE(P, nullptr);
    Alloc.deallocate(P);
  }
  // Magazine hits bypass the sharded counters, but opStats() folds the
  // per-cache hit cells back in: totals must account for every operation.
  const auto Stats = Alloc.opStats();
  EXPECT_GE(Stats.Mallocs, std::uint64_t{Ops});
  EXPECT_GE(Stats.Frees, std::uint64_t{Ops});
  auto Snap = Alloc.metricsSnapshot();
  EXPECT_GE(Snap.counter(Counter::TcacheHitMallocs) +
                Snap.counter(Counter::TcacheHitFrees),
            std::uint64_t{Ops});
  validateMessage(Alloc);
}

TEST(Tcache, LiveBlocksStayWritableAndDistinct) {
  LFAllocator Alloc(tcacheOptions());
  std::set<void *> Seen;
  std::vector<std::pair<void *, int>> Blocks;
  // Interleave allocs and frees so the magazine recycles addresses; a
  // recycled address may repeat only after its previous life was freed.
  for (int I = 0; I < 2000; ++I) {
    void *P = Alloc.allocate(48);
    ASSERT_NE(P, nullptr);
    EXPECT_TRUE(Seen.insert(P).second) << "live blocks must not alias";
    std::memset(P, I & 0xff, 48);
    Blocks.push_back({P, I & 0xff});
    if (Blocks.size() >= 64) {
      for (auto &[Q, Fill] : Blocks) {
        EXPECT_EQ(static_cast<unsigned char *>(Q)[0], Fill);
        EXPECT_EQ(static_cast<unsigned char *>(Q)[47], Fill);
        Alloc.deallocate(Q);
        Seen.erase(Q);
      }
      Blocks.clear();
    }
  }
  for (auto &[Q, Fill] : Blocks) {
    (void)Fill;
    Alloc.deallocate(Q);
  }
  validateMessage(Alloc);
}

//===----------------------------------------------------------------------===//
// Capacity bounds and overflow flush
//===----------------------------------------------------------------------===//

TEST(Tcache, MagazineNeverExceedsCapacity) {
  LFAllocator Alloc(tcacheOptions(/*MagSize=*/8));
  const unsigned Class = sizeToClass(24);
  const std::uint32_t Cap = Alloc.debugTcacheMagazineCapacity(Class);
  ASSERT_GE(Cap, 2u);
  ASSERT_LE(Cap, 8u);

  std::vector<void *> Blocks;
  for (unsigned I = 0; I < Cap * 4; ++I) {
    void *P = Alloc.allocate(24);
    ASSERT_NE(P, nullptr);
    Blocks.push_back(P);
  }
  for (void *P : Blocks) {
    Alloc.deallocate(P);
    EXPECT_LE(Alloc.debugTcacheMagazineCount(Class), Cap);
  }
  // Freeing 4x the capacity must have overflowed into at least one flush.
  auto Snap = Alloc.metricsSnapshot();
  if (Snap.TelemetryCompiled) {
    EXPECT_GE(Snap.counter(Counter::TcacheFlushes), 1u);
    EXPECT_GE(Snap.counter(Counter::TcacheFlushBlocks), 1u);
  }
  validateMessage(Alloc);
}

TEST(Tcache, MagSizeOptionClampsToDocumentedRange) {
  {
    LFAllocator Tiny(tcacheOptions(/*MagSize=*/1));
    EXPECT_GE(Tiny.debugTcacheMagazineCapacity(0), 2u);
  }
  {
    LFAllocator Huge(tcacheOptions(/*MagSize=*/1u << 20));
    for (unsigned C = 0; C < NumSizeClasses; ++C)
      EXPECT_LE(Huge.debugTcacheMagazineCapacity(C), 1024u);
  }
}

TEST(Tcache, ReleaseMemoryDrainsMagazinesAndDepot) {
  LFAllocator Alloc(tcacheOptions(/*MagSize=*/8));
  std::vector<void *> Blocks;
  for (int I = 0; I < 128; ++I)
    Blocks.push_back(Alloc.allocate(24));
  for (void *P : Blocks)
    Alloc.deallocate(P);

  Alloc.releaseMemory(0);
  auto Snap = Alloc.metricsSnapshot();
  EXPECT_EQ(Snap.TcacheMagazineBlocks, 0u);
  EXPECT_EQ(Snap.TcacheDepotBlocks, 0u);

  profiling::TopologySnapshot Topo;
  Alloc.topologySnapshot(Topo);
  EXPECT_EQ(Topo.TotalUsedBlocks, 0u);
  EXPECT_EQ(Topo.TcacheCachedBlocks, 0u);
  validateMessage(Alloc);
}

TEST(Tcache, FlushThreadCacheReturnsOwnMagazines) {
  LFAllocator Alloc(tcacheOptions());
  void *P = Alloc.allocate(24);
  ASSERT_NE(P, nullptr);
  Alloc.deallocate(P);
  ASSERT_GE(Alloc.debugTcacheMagazineCount(sizeToClass(24)), 1u);

  EXPECT_GE(Alloc.flushThreadCache(), 1u);
  for (unsigned C = 0; C < NumSizeClasses; ++C)
    EXPECT_EQ(Alloc.debugTcacheMagazineCount(C), 0u);
  validateMessage(Alloc);
}

//===----------------------------------------------------------------------===//
// Topology accounting: cached blocks are free, not leaked
//===----------------------------------------------------------------------===//

TEST(Tcache, TopologyCountsCachedBlocksAsFree) {
  LFAllocator Alloc(tcacheOptions());
  void *P = Alloc.allocate(24);
  ASSERT_NE(P, nullptr);
  Alloc.deallocate(P);
  ASSERT_GE(Alloc.debugTcacheMagazineCount(sizeToClass(24)), 1u);

  // The block sits in a magazine — reserved from its superblock's point of
  // view — but the topology must not report it as live heap.
  profiling::TopologySnapshot Topo;
  Alloc.topologySnapshot(Topo);
  EXPECT_EQ(Topo.TotalUsedBlocks, 0u);
  EXPECT_GE(Topo.TcacheCachedBlocks, 1u);
  validateMessage(Alloc);
}

//===----------------------------------------------------------------------===//
// LFM_TCACHE=0: classic allocator, bit for bit
//===----------------------------------------------------------------------===//

TEST(Tcache, DisabledInstanceRunsClassicPath) {
  AllocatorOptions Opts = tcacheOptions();
  Opts.EnableThreadCache = false;
  LFAllocator Alloc(Opts);
  EXPECT_FALSE(Alloc.threadCacheEnabled());

  void *P = Alloc.allocate(24);
  ASSERT_NE(P, nullptr);
  Alloc.deallocate(P);

  auto Snap = Alloc.metricsSnapshot();
  EXPECT_FALSE(Snap.TcacheEnabled);
  EXPECT_EQ(Snap.TcacheCachesMinted, 0u);
  EXPECT_EQ(Snap.TcacheMagazineBlocks, 0u);
  EXPECT_EQ(Snap.counter(Counter::TcacheHitMallocs), 0u);
  EXPECT_EQ(Snap.counter(Counter::TcacheRefills), 0u);
  EXPECT_EQ(Alloc.flushThreadCache(), 0u);
  validateMessage(Alloc);
}

TEST(Tcache, DisabledMatchesEnabledObservableBehavior) {
  // The cache must be transparent: for the same request sequence, both
  // configurations hand out blocks of identical usable size, identical
  // alignment, and identical per-class accounting once drained.
  AllocatorOptions Off = tcacheOptions();
  Off.EnableThreadCache = false;
  LFAllocator WithCache(tcacheOptions());
  LFAllocator Without(Off);

  const std::size_t Sizes[] = {1, 8, 24, 48, 100, 256, 1000, 2048, 8000};
  for (int Round = 0; Round < 50; ++Round) {
    for (std::size_t S : Sizes) {
      void *A = WithCache.allocate(S);
      void *B = Without.allocate(S);
      ASSERT_NE(A, nullptr);
      ASSERT_NE(B, nullptr);
      EXPECT_EQ(WithCache.usableSize(A), Without.usableSize(B)) << S;
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(A) % 8, 0u);
      WithCache.deallocate(A);
      Without.deallocate(B);
    }
  }
  WithCache.releaseMemory(0);

  profiling::TopologySnapshot TopoA, TopoB;
  WithCache.topologySnapshot(TopoA);
  Without.topologySnapshot(TopoB);
  EXPECT_EQ(TopoA.TotalUsedBlocks, 0u);
  EXPECT_EQ(TopoB.TotalUsedBlocks, 0u);
  EXPECT_EQ(TopoA.TcacheCachedBlocks, 0u);
  validateMessage(WithCache);
  validateMessage(Without);
}

//===----------------------------------------------------------------------===//
// Cross-thread traffic
//===----------------------------------------------------------------------===//

TEST(Tcache, CrossThreadFreeOfCachedClassBlock) {
  LFAllocator Alloc(tcacheOptions());

  // Main warms its own magazine for the class, then another thread frees
  // blocks main allocated: the remote free lands in the *freeing* thread's
  // magazine and drains through its exit hook, never corrupting main's.
  std::vector<void *> Mine;
  for (int I = 0; I < 32; ++I)
    Mine.push_back(Alloc.allocate(24));

  std::thread Remote([&] {
    for (void *P : Mine)
      Alloc.deallocate(P);
  });
  Remote.join();

  // After the remote thread exits its blocks are back in anchors; all of
  // main's subsequent allocations still work and validate.
  std::vector<void *> Again;
  for (int I = 0; I < 64; ++I) {
    void *P = Alloc.allocate(24);
    ASSERT_NE(P, nullptr);
    Again.push_back(P);
  }
  for (void *P : Again)
    Alloc.deallocate(P);
  Alloc.releaseMemory(0);

  profiling::TopologySnapshot Topo;
  Alloc.topologySnapshot(Topo);
  EXPECT_EQ(Topo.TotalUsedBlocks, 0u);
  validateMessage(Alloc);
}

TEST(Tcache, ProducerConsumerPipelineBalances) {
  LFAllocator Alloc(tcacheOptions());
  constexpr int Iters = 5000;
  std::vector<std::atomic<void *>> Ring(64);
  for (auto &Slot : Ring)
    Slot.store(nullptr);
  std::atomic<int> Produced{0}, Consumed{0};

  std::thread Producer([&] {
    for (int I = 0; I < Iters; ++I) {
      void *P = Alloc.allocate(24);
      ASSERT_NE(P, nullptr);
      std::memset(P, 0x5a, 24);
      auto &Slot = Ring[I % Ring.size()];
      while (Slot.load(std::memory_order_acquire) != nullptr)
        std::this_thread::yield();
      Slot.store(P, std::memory_order_release);
      Produced.fetch_add(1);
    }
  });
  std::thread Consumer([&] {
    for (int I = 0; I < Iters; ++I) {
      auto &Slot = Ring[I % Ring.size()];
      void *P = nullptr;
      while ((P = Slot.load(std::memory_order_acquire)) == nullptr)
        std::this_thread::yield();
      Slot.store(nullptr, std::memory_order_release);
      EXPECT_EQ(static_cast<unsigned char *>(P)[0], 0x5a);
      Alloc.deallocate(P);
      Consumed.fetch_add(1);
    }
  });
  Producer.join();
  Consumer.join();
  EXPECT_EQ(Produced.load(), Iters);
  EXPECT_EQ(Consumed.load(), Iters);

  Alloc.releaseMemory(0);
  profiling::TopologySnapshot Topo;
  Alloc.topologySnapshot(Topo);
  EXPECT_EQ(Topo.TotalUsedBlocks, 0u);
  validateMessage(Alloc);
}

//===----------------------------------------------------------------------===//
// Thread exit: drain everything, retain nothing, recycle cache slabs
//===----------------------------------------------------------------------===//

TEST(Tcache, ThreadChurnRetainsNothing) {
  LFAllocator Alloc(tcacheOptions());

  // 10k short-lived threads churn through the cache. Exit drains go to the
  // anchors (not the depot), so after the last join every block is back in
  // its superblock and the topology shows zero live, zero cached.
  constexpr int TotalThreads = 10000;
  constexpr int Wave = 32;
  for (int Base = 0; Base < TotalThreads; Base += Wave) {
    std::vector<std::thread> Threads;
    const int N = std::min(Wave, TotalThreads - Base);
    for (int T = 0; T < N; ++T) {
      Threads.emplace_back([&Alloc, T] {
        void *Blocks[8];
        for (int I = 0; I < 8; ++I) {
          Blocks[I] = Alloc.allocate(16 + 16 * (T % 4));
          ASSERT_NE(Blocks[I], nullptr);
        }
        for (int I = 0; I < 8; ++I)
          Alloc.deallocate(Blocks[I]);
      });
    }
    for (auto &Th : Threads)
      Th.join();
  }

  auto Snap = Alloc.metricsSnapshot();
  if (Snap.TelemetryCompiled) {
    EXPECT_GE(Snap.counter(Counter::TcacheExitDrains),
              std::uint64_t{TotalThreads});
    EXPECT_GE(Snap.counter(Counter::TcacheAdopts),
              std::uint64_t{TotalThreads} - Snap.TcacheCachesMinted);
  }
  EXPECT_EQ(Snap.TcacheMagazineBlocks, 0u);
  EXPECT_EQ(Snap.TcacheDepotBlocks, 0u);

  // All exited caches parked for adoption; adoption kept minting bounded
  // by peak concurrency, orders of magnitude under the thread count.
  EXPECT_EQ(Snap.TcacheCachesParked, Snap.TcacheCachesMinted);
  EXPECT_LE(Snap.TcacheCachesMinted, std::uint64_t{2 * Wave});

  profiling::TopologySnapshot Topo;
  Alloc.topologySnapshot(Topo);
  EXPECT_EQ(Topo.TotalUsedBlocks, 0u) << "thread churn leaked blocks";
  EXPECT_EQ(Topo.TcacheCachedBlocks, 0u);
  validateMessage(Alloc);
}

TEST(Tcache, ExitedCacheIsAdoptedNotReminted) {
  LFAllocator Alloc(tcacheOptions());
  auto Churn = [&Alloc] {
    void *P = Alloc.allocate(24);
    ASSERT_NE(P, nullptr);
    Alloc.deallocate(P);
  };
  std::thread(Churn).join();
  const std::uint64_t MintedAfterFirst = Alloc.debugTcacheCachesMinted();
  EXPECT_GE(MintedAfterFirst, 1u);
  EXPECT_GE(Alloc.debugTcacheCachesParked(), 1u);

  for (int I = 0; I < 16; ++I)
    std::thread(Churn).join();
  // Sequential threads reuse the one parked cache; nothing new is minted.
  EXPECT_EQ(Alloc.debugTcacheCachesMinted(), MintedAfterFirst);
  auto Snap = Alloc.metricsSnapshot();
  if (Snap.TelemetryCompiled) {
    EXPECT_GE(Snap.counter(Counter::TcacheAdopts), 16u);
  }
  validateMessage(Alloc);
}

//===----------------------------------------------------------------------===//
// Many instances on one thread: TLS slots must recycle
//===----------------------------------------------------------------------===//

TEST(Tcache, TlsSlotsRecycleAcrossInstanceLifetimes) {
  // One long-lived thread creates and destroys more allocators than there
  // are TLS attachment slots. Dead epochs must be reclaimed on attach, so
  // every generation still gets a working cache.
  for (int Gen = 0; Gen < 10; ++Gen) {
    LFAllocator Alloc(tcacheOptions());
    ASSERT_TRUE(Alloc.threadCacheEnabled()) << "generation " << Gen;
    void *P = Alloc.allocate(24);
    ASSERT_NE(P, nullptr);
    Alloc.deallocate(P);
    EXPECT_GE(Alloc.debugTcacheMagazineCount(sizeToClass(24)), 1u)
        << "generation " << Gen << " ran uncached: TLS slot leak";
    validateMessage(Alloc);
  }
}

TEST(Tcache, ConcurrentInstancesKeepSeparateCaches) {
  LFAllocator A(tcacheOptions());
  LFAllocator B(tcacheOptions(/*MagSize=*/8));
  void *Pa = A.allocate(24);
  void *Pb = B.allocate(24);
  ASSERT_NE(Pa, nullptr);
  ASSERT_NE(Pb, nullptr);
  A.deallocate(Pa);
  B.deallocate(Pb);
  EXPECT_GE(A.debugTcacheMagazineCount(sizeToClass(24)), 1u);
  EXPECT_GE(B.debugTcacheMagazineCount(sizeToClass(24)), 1u);
  // Draining one instance's cache must not disturb the other's.
  A.flushThreadCache();
  EXPECT_EQ(A.debugTcacheMagazineCount(sizeToClass(24)), 0u);
  EXPECT_GE(B.debugTcacheMagazineCount(sizeToClass(24)), 1u);
  validateMessage(A);
  validateMessage(B);
}

//===----------------------------------------------------------------------===//
// Large and aligned requests bypass the magazines
//===----------------------------------------------------------------------===//

TEST(Tcache, LargeAllocationsBypassCache) {
  LFAllocator Alloc(tcacheOptions());
  void *P = Alloc.allocate(1 << 20);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xab, 1 << 20);
  Alloc.deallocate(P);
  auto Snap = Alloc.metricsSnapshot();
  EXPECT_EQ(Snap.TcacheMagazineBlocks, 0u);
  validateMessage(Alloc);
}

TEST(Tcache, AlignedBlocksRoundTripThroughCacheSafely) {
  LFAllocator Alloc(tcacheOptions());
  // Aligned small blocks carry the offset marker prefix; the free path
  // must route them (and recycled copies) correctly through or around the
  // magazine without corrupting the prefix.
  for (int I = 0; I < 200; ++I) {
    void *P = Alloc.allocateAligned(64, 48);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % 64, 0u);
    std::memset(P, 0x77, 48);
    Alloc.deallocate(P);
  }
  validateMessage(Alloc);
}
