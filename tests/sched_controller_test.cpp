//===- tests/sched_controller_test.cpp - ScheduleController unit tests ----===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Exercises the deterministic scheduler itself, independent of the
// allocator: bodies call yield()/shouldFailCas() explicitly, so this suite
// runs in every build configuration (no LFM_SCHED_POINT hooks needed).
//
//===----------------------------------------------------------------------===//

#include "schedtest/Explorer.h"
#include "schedtest/ScheduleController.h"

#include "TestSeed.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

using namespace lfm;
using namespace lfm::sched;

namespace {

/// Records the order in which controlled threads pass schedule points.
/// Safe without a mutex while the controller serializes execution, but a
/// runaway escape free-runs the bodies — so guard anyway.
struct TraceLog {
  std::mutex M;
  std::string Order;
  void mark(char C) {
    std::lock_guard<std::mutex> Lock(M);
    Order += C;
  }
};

/// A body that logs \p Tag at each of \p Points schedule points.
std::function<void()> tracer(TraceLog &Log, char Tag, unsigned Points) {
  return [&Log, Tag, Points] {
    for (unsigned I = 0; I < Points; ++I) {
      Log.mark(Tag);
      ScheduleController::current()->yield(Site::TreiberPush);
    }
  };
}

std::string runOnce(const SchedOptions &Opts, unsigned Threads,
                    unsigned Points) {
  TraceLog Log;
  ScheduleController Ctl(Opts);
  std::vector<std::function<void()>> Bodies;
  for (unsigned T = 0; T < Threads; ++T)
    Bodies.push_back(tracer(Log, static_cast<char>('A' + T), Points));
  Ctl.run(std::move(Bodies));
  std::lock_guard<std::mutex> Lock(Log.M);
  return Log.Order;
}

TEST(SchedController, SameSeedSameSchedule) {
  SchedOptions Opts;
  Opts.Seed = test::baseSeed();
  Opts.MaxPreemptions = 3;
  Opts.HorizonEstimate = 30;
  const std::string First = runOnce(Opts, 3, 10);
  ASSERT_EQ(First.size(), 30u);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(runOnce(Opts, 3, 10), First) << "schedule not deterministic";
}

TEST(SchedController, DifferentSeedsDiversify) {
  SchedOptions Opts;
  Opts.MaxPreemptions = 3;
  Opts.HorizonEstimate = 30;
  std::set<std::string> Schedules;
  for (std::uint64_t S = 0; S < 32; ++S) {
    Opts.Seed = test::baseSeed() + S;
    Schedules.insert(runOnce(Opts, 3, 10));
  }
  // 32 seeds over 3 threads x 3 change points must not collapse onto a
  // single interleaving.
  EXPECT_GT(Schedules.size(), 4u);
}

TEST(SchedController, ZeroPreemptionsRunsThreadsWhole) {
  SchedOptions Opts;
  Opts.Seed = test::baseSeed();
  Opts.MaxPreemptions = 0;
  const std::string Order = runOnce(Opts, 3, 5);
  ASSERT_EQ(Order.size(), 15u);
  // Without change points each thread runs to completion before the next
  // starts: the trace is three uninterrupted runs covering all tags.
  std::string Tags;
  for (unsigned T = 0; T < 3; ++T) {
    EXPECT_EQ(Order.substr(T * 5, 5), std::string(5, Order[T * 5]));
    Tags += Order[T * 5];
  }
  std::sort(Tags.begin(), Tags.end());
  EXPECT_EQ(Tags, "ABC");
}

TEST(SchedController, PreemptionBoundRespected) {
  SchedOptions Opts;
  Opts.Seed = test::baseSeed() + 7;
  Opts.MaxPreemptions = 2;
  Opts.HorizonEstimate = 60;
  const std::string Order = runOnce(Opts, 3, 20);
  ASSERT_EQ(Order.size(), 60u);
  // Context switches = boundary count; with N threads and at most d
  // preemptions there are at most N-1+d switches (end-of-thread handoffs
  // plus forced preemptions).
  unsigned Switches = 0;
  for (std::size_t I = 1; I < Order.size(); ++I)
    Switches += Order[I] != Order[I - 1];
  EXPECT_LE(Switches, 2u + Opts.MaxPreemptions);
}

TEST(SchedController, ManualSteppingScriptsInterleaving) {
  TraceLog Log;
  SchedOptions Opts;
  Opts.Seed = test::baseSeed();
  ScheduleController Ctl(Opts);
  Ctl.start({tracer(Log, 'A', 3), tracer(Log, 'B', 3)});

  // Script A,A,B,A,B,B precisely.
  EXPECT_TRUE(Ctl.step(0, 2));
  EXPECT_TRUE(Ctl.step(1, 1));
  EXPECT_TRUE(Ctl.step(0, 1)); // A logs its 3rd point, parks on it.
  EXPECT_TRUE(Ctl.step(1, 2));
  Ctl.finish();
  std::lock_guard<std::mutex> Lock(Log.M);
  EXPECT_EQ(Log.Order, "AABABB");
}

TEST(SchedController, StepReportsCompletion) {
  TraceLog Log;
  SchedOptions Opts;
  Opts.Seed = test::baseSeed();
  ScheduleController Ctl(Opts);
  Ctl.start({tracer(Log, 'A', 2)});
  // A giant budget lets the body run to completion inside one step call,
  // which must then report "done".
  EXPECT_FALSE(Ctl.step(0, 1000));
  EXPECT_FALSE(Ctl.step(0, 1)); // Stepping a done thread stays false.
  Ctl.finish();
}

TEST(SchedController, RunawayScheduleEscapesToFreeRun) {
  SchedOptions Opts;
  Opts.Seed = test::baseSeed();
  Opts.MaxSteps = 64; // Tiny guard so the "livelock" trips it instantly.
  ScheduleController Ctl(Opts);
  std::atomic<bool> Stop{false};
  Ctl.start({[&] {
    // Livelock-shaped body: yields forever until told to stop.
    while (!Stop.load(std::memory_order_relaxed))
      ScheduleController::current()->yield(Site::TreiberPop);
  }});
  // A budget far beyond MaxSteps: the guard must fire first and hand the
  // thread to free-running, unblocking step().
  Ctl.step(0, 100000);
  EXPECT_TRUE(Ctl.runawayDetected());
  Stop.store(true, std::memory_order_relaxed);
  Ctl.finish();
}

TEST(SchedController, CasFailureInjectionBudgetAndDeterminism) {
  SchedOptions Opts;
  Opts.Seed = test::baseSeed();
  Opts.CasFailPercent = 100;
  Opts.CasFailBudget = 5;
  auto CountForced = [&Opts] {
    ScheduleController Ctl(Opts);
    std::uint64_t Seen = 0;
    Ctl.run({[&] {
      for (unsigned I = 0; I < 50; ++I)
        Seen += ScheduleController::current()->shouldFailCas(
            Site::ActiveReserve);
    }});
    EXPECT_EQ(Seen, Ctl.forcedFailures());
    return Ctl.forcedFailures();
  };
  EXPECT_EQ(CountForced(), 5u) << "budget must cap forced failures";
  EXPECT_EQ(CountForced(), CountForced()) << "injection must be seeded";
}

TEST(SchedController, CasFailureSiteMaskFilters) {
  SchedOptions Opts;
  Opts.Seed = test::baseSeed();
  Opts.CasFailPercent = 100;
  Opts.CasFailSiteMask = 1ull << static_cast<unsigned>(Site::DescPop);
  ScheduleController Ctl(Opts);
  std::uint64_t OnSite = 0, OffSite = 0;
  Ctl.run({[&] {
    for (unsigned I = 0; I < 10; ++I) {
      OnSite += ScheduleController::current()->shouldFailCas(Site::DescPop);
      OffSite +=
          ScheduleController::current()->shouldFailCas(Site::FreePush);
    }
  }});
  EXPECT_GT(OnSite, 0u);
  EXPECT_EQ(OffSite, 0u);
}

TEST(SchedController, UncontrolledThreadsPassThrough) {
  // The hook entry points must be no-ops on threads without a controller
  // (TlsController null), controller or not in the process.
  EXPECT_EQ(ScheduleController::current(), nullptr);
  schedYield(Site::FreePush);                     // Must not hang.
  EXPECT_FALSE(schedShouldFailCas(Site::FreePush)); // Must not fire.
}

TEST(SchedExplorer, FindsAndShrinksSeededFailure) {
  // Synthetic scenario: "fails" when the schedule uses >= 2 preemptions
  // and any forced CAS failures fire. The explorer must find it, confirm
  // reproducibility, and shrink casfail -> 0 is impossible here (failure
  // needs it), so the minimal config keeps casfail but drops preemptions
  // to the boundary.
  ExploreOptions Opts;
  Opts.BaseSeed = test::baseSeed();
  Opts.NumSeeds = 64;
  Opts.Proto.CasFailBudget = 8;
  const ExploreResult Res = explore(Opts, [](const SchedOptions &O) {
    ScheduleOutcome Out;
    if (O.MaxPreemptions >= 2 && O.CasFailPercent > 0) {
      Out.Ok = false;
      Out.Message = "synthetic bug";
    }
    return Out;
  });
  ASSERT_TRUE(Res.FoundFailure);
  EXPECT_TRUE(Res.Reproducible);
  EXPECT_EQ(Res.Failing.MaxPreemptions, 2u) << "shrink must reach minimum";
  EXPECT_GT(Res.Failing.CasFailPercent, 0u);
  EXPECT_NE(Res.Message.find("LFM_SCHED_REPLAY"), std::string::npos)
      << "failure report must carry replay instructions: " << Res.Message;
}

TEST(SchedExplorer, CleanScenarioFindsNothing) {
  ExploreOptions Opts;
  Opts.BaseSeed = test::baseSeed();
  Opts.NumSeeds = 16;
  const ExploreResult Res =
      explore(Opts, [](const SchedOptions &) { return ScheduleOutcome{}; });
  EXPECT_FALSE(Res.FoundFailure);
  EXPECT_EQ(Res.SchedulesRun, envNumSeeds(16)); // LFM_SCHED_SEEDS-aware.
}

} // namespace
