//===- tests/anchor_test.cpp - Anchor/Active word packing tests -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/Anchor.h"
#include "lfmalloc/Descriptor.h"

#include <gtest/gtest.h>

#include <tuple>

using namespace lfm;

//===----------------------------------------------------------------------===
// Anchor packing
//===----------------------------------------------------------------------===

TEST(Anchor, FieldWidthsCoverTheWord) {
  EXPECT_EQ(AnchorAvailBits + AnchorCountBits + AnchorStateBits +
                AnchorTagBits,
            64u);
  EXPECT_GE(AnchorTagBits, 32u)
      << "tag must be wide enough that wraparound against one stalled "
         "thread is practically impossible (paper §3.2.3)";
}

TEST(Anchor, RoundTripZero) {
  const Anchor A; // Default state is Empty (the unpublished condition).
  EXPECT_EQ(unpackAnchor(packAnchor(A)), A);
  EXPECT_EQ(A.State, SbState::Empty);
  Anchor Zero = unpackAnchor(0);
  EXPECT_EQ(Zero.Avail, 0u);
  EXPECT_EQ(Zero.Count, 0u);
  EXPECT_EQ(Zero.Tag, 0u);
  EXPECT_EQ(Zero.State, SbState::Active) << "state code 0 is ACTIVE";
}

/// Property sweep: every combination of extreme and mid-range sub-field
/// values must survive a pack/unpack round trip without bleeding into
/// neighbouring fields.
class AnchorRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, SbState, std::uint64_t>> {
};

TEST_P(AnchorRoundTrip, PackUnpackIsIdentity) {
  const auto [Avail, Count, State, Tag] = GetParam();
  Anchor A;
  A.Avail = Avail;
  A.Count = Count;
  A.State = State;
  A.Tag = Tag;
  const Anchor Back = unpackAnchor(packAnchor(A));
  EXPECT_EQ(Back.Avail, Avail);
  EXPECT_EQ(Back.Count, Count);
  EXPECT_EQ(Back.State, State);
  EXPECT_EQ(Back.Tag, Tag & ((1ULL << AnchorTagBits) - 1));
}

INSTANTIATE_TEST_SUITE_P(
    FieldExtremes, AnchorRoundTrip,
    ::testing::Combine(
        ::testing::Values(0u, 1u, 777u, MaxBlocksPerSuperblock),
        ::testing::Values(0u, 1u, 1000u, MaxBlocksPerSuperblock),
        ::testing::Values(SbState::Active, SbState::Full, SbState::Partial,
                          SbState::Empty),
        ::testing::Values(std::uint64_t{0}, std::uint64_t{1},
                          (1ULL << AnchorTagBits) - 1)));

TEST(Anchor, TagWrapsModuloItsWidth) {
  Anchor A;
  A.Tag = (1ULL << AnchorTagBits) - 1;
  AtomicAnchor W;
  W.storeRelaxed(A);
  Anchor Old = W.load();
  Anchor New = Old;
  New.Tag = Old.Tag + 1; // Wraps to 0 in the packed form.
  EXPECT_TRUE(W.compareExchange(Old, New));
  EXPECT_EQ(W.load().Tag, 0u);
}

TEST(AtomicAnchor, CasSucceedsOnExactMatchOnly) {
  AtomicAnchor W;
  Anchor Init;
  Init.Avail = 5;
  Init.Count = 3;
  Init.State = SbState::Partial;
  Init.Tag = 9;
  W.storeRelaxed(Init);

  Anchor Wrong = Init;
  Wrong.Tag = 8; // Stale tag.
  Anchor New = Init;
  New.Count = 2;
  EXPECT_FALSE(W.compareExchange(Wrong, New));
  EXPECT_EQ(Wrong, Init) << "failed CAS must refresh the expected value";
  EXPECT_TRUE(W.compareExchange(Wrong, New));
  EXPECT_EQ(W.load().Count, 2u);
}

//===----------------------------------------------------------------------===
// Active word packing
//===----------------------------------------------------------------------===

TEST(ActiveWord, NullEncodesAsZero) {
  const ActiveRef Null{};
  EXPECT_EQ(packActive(Null), 0u);
  const ActiveRef Back = unpackActive(0);
  EXPECT_EQ(Back.Desc, nullptr);
  EXPECT_EQ(Back.Credits, 0u);
}

TEST(ActiveWord, RoundTripsPointerAndCredits) {
  alignas(DescriptorAlignment) static Descriptor D;
  for (std::uint32_t Credits : {0u, 1u, 31u, MaxCredits - 1}) {
    const ActiveRef A{&D, Credits};
    const ActiveRef Back = unpackActive(packActive(A));
    EXPECT_EQ(Back.Desc, &D);
    EXPECT_EQ(Back.Credits, Credits);
  }
}

TEST(AtomicActive, CreditDecrementLoop) {
  alignas(DescriptorAlignment) static Descriptor D;
  AtomicActive W;
  ActiveRef Expected{};
  ASSERT_TRUE(W.compareExchange(Expected, ActiveRef{&D, 3}));

  // Simulate four MallocFromActive reservations: 3,2,1,0 then take-last.
  for (int I = 3; I >= 0; --I) {
    ActiveRef Old = W.load();
    ASSERT_EQ(Old.Credits, static_cast<std::uint32_t>(I));
    const ActiveRef New =
        Old.Credits == 0 ? ActiveRef{} : ActiveRef{Old.Desc, Old.Credits - 1};
    ASSERT_TRUE(W.compareExchange(Old, New));
  }
  EXPECT_EQ(W.load().Desc, nullptr) << "taking the last credit clears Active";
}

TEST(DescriptorLayout, AlignmentLeavesRoomForCredits) {
  EXPECT_EQ(alignof(Descriptor), DescriptorAlignment);
  EXPECT_EQ(sizeof(Descriptor) % DescriptorAlignment, 0u);
  EXPECT_EQ(sizeof(ProcHeap), CacheLineSize);
}
