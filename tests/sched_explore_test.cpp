//===- tests/sched_explore_test.cpp - Allocator schedule exploration ------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The tentpole suite of the schedule harness: replays the paper's
// known-dangerous windows across many seeded schedules with PCT bounded
// preemption and forced CAS failures, checking allocator invariants after
// every schedule (docs/TESTING.md). Built only with -DLFMALLOC_SCHED_TEST=ON
// so the LFM_SCHED_POINT hooks in the lock-free core are live.
//
// Replay a reported failure with:
//   LFM_SCHED_REPLAY="seed=S,preempt=P,casfail=F" ./sched_explore_test
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/BuddyBackend.h"
#include "lfmalloc/DescriptorAllocator.h"
#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/SizeClasses.h"
#include "schedtest/Explorer.h"
#include "schedtest/ScheduleController.h"

#include "TestSeed.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace lfm;
using namespace lfm::sched;

#if !LFM_SCHED_TEST
#error "sched_explore_test requires -DLFMALLOC_SCHED_TEST=ON"
#endif

namespace {

/// Payload size used by every scenario: with 4 KB superblocks this yields
/// small superblocks (few dozen blocks), so full/partial/empty transitions
/// happen within a handful of operations.
constexpr std::size_t PayloadBytes = 120;

AllocatorOptions tinyOptions(HazardDomain &Domain, unsigned CreditsLimit) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.SuperblockSize = 4096;
  Opts.HyperblockSize = 64 * 1024;
  // CreditsLimit=1 maximizes anchor traffic (every malloc takes the last
  // credit, every path goes through UpdateActive / MallocFromPartial);
  // CreditsLimit>1 lets several threads pop the SAME anchor concurrently,
  // which is the only regime where the anchor tag carries the ABA load.
  Opts.CreditsLimit = CreditsLimit;
  Opts.Domain = &Domain;
  return Opts;
}

/// Cross-thread bookkeeping shared by scenario bodies. The controller
/// serializes controlled threads, but a runaway escape free-runs them, so
/// all access is mutex-guarded.
class BlockOracle {
public:
  /// Records a fresh allocation; flags a pointer handed out twice.
  void onAlloc(void *Ptr, std::uint64_t Stamp) {
    if (!Ptr)
      return;
    std::lock_guard<std::mutex> Lock(M);
    if (!Live.insert(Ptr).second && FirstError.empty())
      FirstError = "block handed out twice";
    std::memset(Ptr, pattern(Stamp), PayloadBytes);
    Stamps[Ptr] = Stamp;
  }

  /// Verifies the byte pattern, then frees through \p Free.
  void checkAndFree(void *Ptr, const std::function<void(void *)> &Free) {
    if (!Ptr)
      return;
    {
      std::lock_guard<std::mutex> Lock(M);
      const unsigned char Want = pattern(Stamps[Ptr]);
      const auto *Bytes = static_cast<const unsigned char *>(Ptr);
      for (std::size_t I = 0; I < PayloadBytes; ++I)
        if (Bytes[I] != Want) {
          if (FirstError.empty())
            FirstError = "block contents clobbered while allocated";
          break;
        }
      Live.erase(Ptr);
      Stamps.erase(Ptr);
    }
    Free(Ptr);
  }

  std::size_t liveCount() {
    std::lock_guard<std::mutex> Lock(M);
    return Live.size();
  }

  std::string firstError() {
    std::lock_guard<std::mutex> Lock(M);
    return FirstError;
  }

private:
  static unsigned char pattern(std::uint64_t Stamp) {
    return static_cast<unsigned char>(0x40 + Stamp % 0xBF);
  }

  std::mutex M;
  std::set<void *> Live;
  std::map<void *, std::uint64_t> Stamps;
  std::string FirstError;
};

/// Runs one schedule of a scenario: builds a fresh allocator, executes the
/// bodies under the controller, then applies the oracle: per-schedule
/// bookkeeping errors, leaked blocks, and the quiescent debugValidate.
ScheduleOutcome
runAllocatorSchedule(const SchedOptions &O,
                     const std::function<std::vector<std::function<void()>>(
                         LFAllocator &, BlockOracle &)> &MakeBodies,
                     bool ExpectAllFreed = true, unsigned CreditsLimit = 1) {
  ScheduleOutcome Out;
  HazardDomain Domain;
  LFAllocator Alloc(tinyOptions(Domain, CreditsLimit));
  BlockOracle Oracle;
  ScheduleController Ctl(O);
  Ctl.run(MakeBodies(Alloc, Oracle));

  std::string Err = Oracle.firstError();
  if (Err.empty() && ExpectAllFreed && Oracle.liveCount() != 0)
    Err = "blocks leaked by the schedule";
  std::string Msg;
  if (Err.empty() && !Alloc.debugValidate(&Msg))
    Err = Msg;
  if (Err.empty() && Ctl.runawayDetected())
    Err = "schedule exceeded MaxSteps (livelock-shaped)";
  if (!Err.empty()) {
    Out.Ok = false;
    Out.Message = Err;
  }
  return Out;
}

void reportExplore(const ExploreResult &Res) {
  EXPECT_FALSE(Res.FoundFailure) << Res.Message;
  if (!Res.FoundFailure)
    std::fprintf(stderr, "[lfm-sched] %llu schedules clean\n",
                 static_cast<unsigned long long>(Res.SchedulesRun));
}

ExploreOptions exploreOptions(std::uint64_t SeedOffset,
                              std::uint64_t NumSeeds) {
  ExploreOptions Opts;
  Opts.BaseSeed = test::baseSeed() + SeedOffset;
  Opts.NumSeeds = NumSeeds;
  Opts.Proto.HorizonEstimate = 128; // Scenarios run ~100-200 points.
  Opts.Proto.MaxSteps = 1 << 16;
  return Opts;
}

/// Scenario 1 — the partial-to-full race (§3.2.2/3.2.4): several threads
/// hammer one size class of a one-heap allocator with CreditsLimit=1, so
/// every operation crosses the Active/Partial/Full anchor transitions;
/// cross-thread frees drive FULL->PARTIAL republication against
/// MallocFromPartial.
TEST(SchedExplore, PartialToFullRace) {
  const auto MakeBodies = [](LFAllocator &Alloc, BlockOracle &Oracle) {
    std::vector<std::function<void()>> Bodies;
    for (unsigned T = 0; T < 3; ++T)
      Bodies.push_back([&Alloc, &Oracle, T] {
        void *Mine[4] = {};
        for (unsigned Round = 0; Round < 4; ++Round) {
          Mine[Round] = Alloc.allocate(PayloadBytes);
          Oracle.onAlloc(Mine[Round], T * 100 + Round);
          if (Round % 2 == 1) { // Free the OLDER block: cross-superblock
                                // lifetimes, partial transitions.
            Oracle.checkAndFree(Mine[Round - 1],
                                [&Alloc](void *P) { Alloc.deallocate(P); });
            Mine[Round - 1] = nullptr;
          }
        }
        for (void *&P : Mine)
          if (P) {
            Oracle.checkAndFree(P,
                                [&Alloc](void *Q) { Alloc.deallocate(Q); });
            P = nullptr;
          }
      });
    return Bodies;
  };
  reportExplore(explore(exploreOptions(0, 400),
                        [&](const SchedOptions &O) {
                          return runAllocatorSchedule(O, MakeBodies);
                        }));
}

/// Scenario 2 — free()'s RetireAll window vs a concurrent
/// MallocFromPartial (Fig. 6 lines 12-21 vs Fig. 4 lines 4-10): one
/// thread frees the last outstanding blocks of a PARTIAL superblock,
/// driving the EMPTY transition, superblock release and RemoveEmptyDesc,
/// while another allocates from the same class — which may pull the very
/// descriptor being emptied and must then observe EMPTY and retire it
/// (Fig. 4 line 6).
TEST(SchedExplore, RetireAllVsMallocFromPartial) {
  const auto MakeBodies = [](LFAllocator &Alloc, BlockOracle &Oracle) {
    // Uncontrolled prefill (main thread, deterministic): drive the
    // superblock close to the all-free boundary, so the workers' frees
    // and allocations race right where the EMPTY transition, superblock
    // release and RemoveEmptyDesc fire.
    void *Hold[6] = {};
    for (void *&P : Hold)
      P = Alloc.allocate(PayloadBytes);
    for (unsigned I = 2; I < 6; ++I)
      Alloc.deallocate(Hold[I]);
    void *Last[2] = {Hold[0], Hold[1]};
    Oracle.onAlloc(Last[0], 900);
    Oracle.onAlloc(Last[1], 901);

    std::vector<std::function<void()>> Bodies;
    Bodies.push_back([&Alloc, &Oracle, Last] {
      // The retiring thread: frees the final outstanding blocks. In
      // schedules where thread B has displaced the superblock from
      // Active, the second free is the EMPTY transition racing B's
      // MallocFromPartial on the same descriptor (Fig. 4 line 6).
      for (void *P : Last)
        Oracle.checkAndFree(P, [&Alloc](void *Q) { Alloc.deallocate(Q); });
    });
    Bodies.push_back([&Alloc, &Oracle] {
      for (unsigned I = 0; I < 6; ++I) {
        void *P = Alloc.allocate(PayloadBytes);
        Oracle.onAlloc(P, 910 + I);
        Oracle.checkAndFree(P, [&Alloc](void *Q) { Alloc.deallocate(Q); });
      }
    });
    return Bodies;
  };
  reportExplore(explore(exploreOptions(1 << 20, 400),
                        [&](const SchedOptions &O) {
                          return runAllocatorSchedule(O, MakeBodies);
                        }));
}

/// Scenario 3 — DescAlloc pop vs retire (Fig. 7, §3.2.5): the
/// hazard-protected freelist pop racing concurrent retirements, the exact
/// reclamation/ABA regime of Arbel-Raviv & Brown. Drives the descriptor
/// allocator directly so the freelist stays short and contended.
TEST(SchedExplore, DescAllocPopVsRetire) {
  const auto RunOne = [](const SchedOptions &O) {
    ScheduleOutcome Out;
    HazardDomain Domain;
    PageAllocator Pages;
    DescriptorAllocator Descs(Domain, Pages);

    // Seed the freelist so pops contend on recycled descriptors rather
    // than minting fresh chunks.
    std::vector<Descriptor *> Seeded;
    for (unsigned I = 0; I < 4; ++I)
      Seeded.push_back(Descs.alloc());
    for (Descriptor *D : Seeded)
      Descs.retire(D);

    std::mutex M;
    std::set<Descriptor *> Held;
    std::string Err;
    ScheduleController Ctl(O);
    std::vector<std::function<void()>> Bodies;
    for (unsigned T = 0; T < 3; ++T)
      Bodies.push_back([&] {
        for (unsigned I = 0; I < 4; ++I) {
          Descriptor *D = Descs.alloc();
          if (!D)
            continue;
          {
            std::lock_guard<std::mutex> Lock(M);
            if (!Held.insert(D).second && Err.empty())
              Err = "descriptor handed out twice concurrently";
            // Scribble while owned: a recycled-while-held descriptor
            // shows up as a torn Sb/BlockSize pair or an ASan hit.
            D->Sb = D;
            D->BlockSize = 0xDEAD;
          }
          {
            std::lock_guard<std::mutex> Lock(M);
            if (D->Sb != D && Err.empty())
              Err = "descriptor mutated while exclusively held";
            Held.erase(D);
          }
          Descs.retire(D);
        }
      });
    Ctl.run(std::move(Bodies));
    if (Err.empty() && Ctl.runawayDetected())
      Err = "schedule exceeded MaxSteps (livelock-shaped)";
    if (!Err.empty()) {
      Out.Ok = false;
      Out.Message = Err;
    }
    return Out;
  };
  ExploreOptions Opts = exploreOptions(2 << 20, 400);
  // Focus forced failures on the descriptor freelist CAS sites.
  Opts.Proto.CasFailSiteMask =
      (1ull << static_cast<unsigned>(Site::DescPop)) |
      (1ull << static_cast<unsigned>(Site::DescPush)) |
      (1ull << static_cast<unsigned>(Site::HazardProtect));
  reportExplore(explore(Opts, RunOne));
}

/// Scenario 4 — the anchor-tag ABA recipe (§3.2.3): a victim thread is
/// preempted inside MallocFromActive's stale-Next window (between reading
/// the head block's link and the anchor CAS) while an attacker pops that
/// head and its successor, then frees a previously held block plus the
/// popped head — restoring Avail/Count/State exactly while KEEPING the
/// successor block allocated. Only the tag distinguishes the restored
/// anchor from the victim's snapshot; without the increment the victim's
/// CAS lands and publishes the held successor as the freelist head, and a
/// later malloc hands it out twice. This is the scenario that pins the
/// `NewAnchor.Tag = OldAnchor.Tag + 1` line (mutation-tested: removing it
/// must fail here).
///
/// Needs CreditsLimit >= 2: with a single credit the victim's reservation
/// drains Active, so no second thread can pop the same anchor inside the
/// window and the count arithmetic alone rejects every stale CAS.
TEST(SchedExplore, AnchorTagAbaRecipe) {
  const auto MakeBodies = [](LFAllocator &Alloc, BlockOracle &Oracle) {
    // Prior-held block the attacker frees mid-recipe to restore Count.
    void *Prior = Alloc.allocate(PayloadBytes);
    Oracle.onAlloc(Prior, 800);

    std::vector<std::function<void()>> Bodies;
    const auto Free = [&Alloc](void *Q) { Alloc.deallocate(Q); };
    Bodies.push_back([&Alloc, &Oracle, Free] {
      // Victim: one malloc whose pop CAS may act on a stale link.
      void *Q = Alloc.allocate(PayloadBytes);
      Oracle.onAlloc(Q, 810);
      Oracle.checkAndFree(Q, Free);
    });
    Bodies.push_back([&Alloc, &Oracle, Free, Prior] {
      // Attacker: pop head, pop successor, free Prior, free the head —
      // anchor word restored except for the tag; the successor stays
      // allocated past the end of the schedule (leak-check disabled).
      void *Head = Alloc.allocate(PayloadBytes);
      Oracle.onAlloc(Head, 820);
      void *Succ = Alloc.allocate(PayloadBytes);
      Oracle.onAlloc(Succ, 821);
      Oracle.checkAndFree(Prior, Free);
      Oracle.checkAndFree(Head, Free);
      (void)Succ; // Held forever: any later handout of it is the bug.
    });
    Bodies.push_back([&Alloc, &Oracle, Free] {
      // Late allocator: picks up whatever the victim's CAS published.
      void *R = Alloc.allocate(PayloadBytes);
      Oracle.onAlloc(R, 830);
      Oracle.checkAndFree(R, Free);
    });
    return Bodies;
  };
  ExploreOptions Opts = exploreOptions(3 << 20, 800);
  Opts.Proto.HorizonEstimate = 48; // ~35 points/schedule: keep the PCT
                                   // change points inside the run.
  reportExplore(explore(Opts, [&](const SchedOptions &O) {
    return runAllocatorSchedule(O, MakeBodies, /*ExpectAllFreed=*/false,
                                /*CreditsLimit=*/2);
  }));
}

//===----------------------------------------------------------------------===//
// Thread-local magazine cache scenarios. Same harness, but the allocator
// runs with the magazine layer on and deliberately tiny magazines (4
// slots), so refill, overflow flush, and depot traffic all fire within a
// handful of operations. The quiescent oracle (debugValidate) counts
// magazine- and depot-resident blocks against superblock freelists, so a
// block simultaneously cached and on a freelist — the double-pop shape —
// fails the schedule even when no payload is clobbered.
//===----------------------------------------------------------------------===//

namespace {

/// runAllocatorSchedule with the magazine layer enabled.
ScheduleOutcome
runTcacheSchedule(const SchedOptions &O,
                  const std::function<std::vector<std::function<void()>>(
                      LFAllocator &, BlockOracle &)> &MakeBodies,
                  bool ExpectAllFreed = true, unsigned CreditsLimit = 2) {
  ScheduleOutcome Out;
  HazardDomain Domain;
  AllocatorOptions Opts = tinyOptions(Domain, CreditsLimit);
  Opts.EnableThreadCache = true;
  Opts.ThreadCacheMagSize = 4;
  LFAllocator Alloc(Opts);
  BlockOracle Oracle;
  ScheduleController Ctl(O);
  Ctl.run(MakeBodies(Alloc, Oracle));

  std::string Err = Oracle.firstError();
  if (Err.empty() && ExpectAllFreed && Oracle.liveCount() != 0)
    Err = "blocks leaked by the schedule";
  std::string Msg;
  if (Err.empty() && !Alloc.debugValidate(&Msg))
    Err = Msg;
  if (Err.empty() && Ctl.runawayDetected())
    Err = "schedule exceeded MaxSteps (livelock-shaped)";
  if (!Err.empty()) {
    Out.Ok = false;
    Out.Message = Err;
  }
  return Out;
}

} // namespace

/// Scenario 5 — magazine flush vs depot steal: free-heavy threads
/// overflow their 4-slot magazines, pushing chains into the shared depot
/// (TcacheFlush), while alloc-heavy threads refill by exchanging the
/// whole depot head (TcacheSteal) and re-pushing the leftover chain. The
/// forced-failure mask keeps the depot head CAS and the batch anchor
/// pushes failing mid-recipe, so chains are repeatedly re-linked against
/// moved heads.
TEST(SchedExplore, TcacheFlushVsSteal) {
  const auto MakeBodies = [](LFAllocator &Alloc, BlockOracle &Oracle) {
    std::vector<std::function<void()>> Bodies;
    const auto Free = [&Alloc](void *Q) { Alloc.deallocate(Q); };
    for (unsigned T = 0; T < 2; ++T)
      Bodies.push_back([&Alloc, &Oracle, Free, T] {
        // Free-heavy: burst-allocate, then free everything at once so the
        // magazine overflows and flushes half its slots per burst.
        void *Mine[6] = {};
        for (unsigned I = 0; I < 6; ++I) {
          Mine[I] = Alloc.allocate(PayloadBytes);
          Oracle.onAlloc(Mine[I], 500 + T * 50 + I);
        }
        for (void *P : Mine)
          Oracle.checkAndFree(P, Free);
      });
    Bodies.push_back([&Alloc, &Oracle, Free] {
      // Alloc-heavy: misses steal from the depot the others are filling.
      for (unsigned I = 0; I < 8; ++I) {
        void *P = Alloc.allocate(PayloadBytes);
        Oracle.onAlloc(P, 560 + I);
        Oracle.checkAndFree(P, Free);
      }
    });
    return Bodies;
  };
  ExploreOptions Opts = exploreOptions(4ull << 20, 400);
  Opts.Proto.CasFailSiteMask =
      (1ull << static_cast<unsigned>(Site::TcacheFlush)) |
      (1ull << static_cast<unsigned>(Site::TcacheSteal)) |
      (1ull << static_cast<unsigned>(Site::FreePush));
  reportExplore(explore(Opts, [&](const SchedOptions &O) {
    return runTcacheSchedule(O, MakeBodies);
  }));
}

/// Scenario 6 — batch refill vs the EMPTY transition: one thread frees
/// the final outstanding blocks of a PARTIAL superblock (driving EMPTY,
/// superblock release, RemoveEmptyDesc) while another's magazine refill
/// pulls that same descriptor from the partial list and must observe
/// EMPTY and retire it instead of popping from a reclaimed superblock.
/// The tcache analogue of RetireAllVsMallocFromPartial, with the added
/// twist that the refill wants several blocks in one tagged anchor CAS.
TEST(SchedExplore, TcacheRefillVsEmptyTransition) {
  const auto MakeBodies = [](LFAllocator &Alloc, BlockOracle &Oracle) {
    // Deterministic prefill on the main thread: a superblock near the
    // all-free boundary, displaced from Active. Main's own magazine is
    // bypassed by going through enough blocks to force anchor traffic.
    void *Hold[6] = {};
    for (void *&P : Hold)
      P = Alloc.allocate(PayloadBytes);
    for (unsigned I = 2; I < 6; ++I)
      Alloc.deallocate(Hold[I]);
    Alloc.flushThreadCache(); // Main's cached blocks back to anchors.
    void *Last[2] = {Hold[0], Hold[1]};
    Oracle.onAlloc(Last[0], 600);
    Oracle.onAlloc(Last[1], 601);

    std::vector<std::function<void()>> Bodies;
    const auto Free = [&Alloc](void *Q) { Alloc.deallocate(Q); };
    Bodies.push_back([&Alloc, &Oracle, Free, Last] {
      // Retiring thread: frees the last outstanding blocks; in schedules
      // where the superblock left Active these frees drive the EMPTY
      // transition against the other thread's batch refill.
      for (void *P : Last)
        Oracle.checkAndFree(P, Free);
    });
    Bodies.push_back([&Alloc, &Oracle, Free] {
      // Refilling thread: every first allocation of a class misses and
      // batch-refills through heapGetPartial — possibly pulling the very
      // descriptor being emptied.
      void *Mine[4] = {};
      for (unsigned I = 0; I < 4; ++I) {
        Mine[I] = Alloc.allocate(PayloadBytes);
        Oracle.onAlloc(Mine[I], 610 + I);
      }
      for (void *P : Mine)
        Oracle.checkAndFree(P, Free);
    });
    return Bodies;
  };
  ExploreOptions Opts = exploreOptions(5ull << 20, 400);
  Opts.Proto.CasFailSiteMask =
      (1ull << static_cast<unsigned>(Site::TcacheRefill)) |
      (1ull << static_cast<unsigned>(Site::PartialReserve)) |
      (1ull << static_cast<unsigned>(Site::FreePush)) |
      (1ull << static_cast<unsigned>(Site::HeapPartialSlot));
  reportExplore(explore(Opts, [&](const SchedOptions &O) {
    return runTcacheSchedule(O, MakeBodies);
  }));
}

/// Scenario 7 — exit drain vs concurrent free: one thread fills its
/// magazine and then drains it to the anchors through the same
/// batch-chain path the pthread-key exit hook uses (flushThreadCache with
/// depot bypass), while another thread concurrently frees blocks of the
/// same class into the same superblocks. The N-block chain push
/// (tcacheFreeChain) and the single-block Fig. 6 push race on one anchor
/// word; a lost update either leaks blocks (caught by the leak oracle) or
/// corrupts the freelist (caught by debugValidate's chain walk).
TEST(SchedExplore, TcacheExitDrainVsConcurrentFree) {
  const auto MakeBodies = [](LFAllocator &Alloc, BlockOracle &Oracle) {
    // Blocks main hands to the freeing thread, same class as the drain.
    void *Remote[4] = {};
    for (unsigned I = 0; I < 4; ++I) {
      Remote[I] = Alloc.allocate(PayloadBytes);
      Oracle.onAlloc(Remote[I], 700 + I);
    }
    Alloc.flushThreadCache();

    std::vector<std::function<void()>> Bodies;
    const auto Free = [&Alloc](void *Q) { Alloc.deallocate(Q); };
    Bodies.push_back([&Alloc, &Oracle, Free] {
      // Draining thread: fill the magazine with frees, then drain it in
      // descriptor-grouped chains exactly as the exit hook would.
      void *Mine[4] = {};
      for (unsigned I = 0; I < 4; ++I) {
        Mine[I] = Alloc.allocate(PayloadBytes);
        Oracle.onAlloc(Mine[I], 710 + I);
      }
      for (void *P : Mine)
        Oracle.checkAndFree(P, Free);
      Alloc.flushThreadCache();
    });
    Bodies.push_back([&Alloc, &Oracle, Free, Remote] {
      // Concurrent freer: pushes single blocks into the same anchors the
      // drain is chain-pushing into.
      for (void *P : Remote)
        Oracle.checkAndFree(P, Free);
    });
    return Bodies;
  };
  ExploreOptions Opts = exploreOptions(6ull << 20, 400);
  Opts.Proto.CasFailSiteMask =
      (1ull << static_cast<unsigned>(Site::TcacheFlush)) |
      (1ull << static_cast<unsigned>(Site::FreePush)) |
      (1ull << static_cast<unsigned>(Site::UpdateActive));
  reportExplore(explore(Opts, [&](const SchedOptions &O) {
    return runTcacheSchedule(O, MakeBodies);
  }));
}

/// Scenario 8 — the cache-adoption ABA recipe: parked ThreadCache shells
/// live on a tagged Treiber stack (TcFree); every controlled thread's
/// first allocation pops it. Three fresh threads adopt concurrently out
/// of a two-deep parked stack (prefilled by real short-lived threads)
/// with forced failures on the stack CASes, so a preempted adopter's pop
/// can straddle park/adopt cycles that restore the head pointer — only
/// the tag tells the restored head from the stale snapshot. Two threads
/// adopting the SAME shell would interleave plain stores into one
/// magazine and surface as double-handouts or freelist corruption.
TEST(SchedExplore, TcacheAdoptAbaRecipe) {
  const auto MakeBodies = [](LFAllocator &Alloc, BlockOracle &Oracle) {
    // Park two cache shells deterministically: two short-lived threads
    // touch the allocator and exit before the controlled region starts.
    for (int I = 0; I < 2; ++I)
      std::thread([&Alloc] { Alloc.deallocate(Alloc.allocate(16)); }).join();

    std::vector<std::function<void()>> Bodies;
    const auto Free = [&Alloc](void *Q) { Alloc.deallocate(Q); };
    for (unsigned T = 0; T < 3; ++T)
      Bodies.push_back([&Alloc, &Oracle, Free, T] {
        // First allocation adopts (pops TcFree); the rest hammer the
        // adopted magazine so shared-shell corruption becomes visible.
        void *Mine[3] = {};
        for (unsigned I = 0; I < 3; ++I) {
          Mine[I] = Alloc.allocate(PayloadBytes);
          Oracle.onAlloc(Mine[I], 750 + T * 10 + I);
        }
        for (void *P : Mine)
          Oracle.checkAndFree(P, Free);
      });
    return Bodies;
  };
  ExploreOptions Opts = exploreOptions(7ull << 20, 400);
  Opts.Proto.CasFailSiteMask =
      (1ull << static_cast<unsigned>(Site::TreiberPop)) |
      (1ull << static_cast<unsigned>(Site::TreiberPush)) |
      (1ull << static_cast<unsigned>(Site::TcacheRefill));
  reportExplore(explore(Opts, [&](const SchedOptions &O) {
    return runTcacheSchedule(O, MakeBodies);
  }));
}

//===----------------------------------------------------------------------===//
// Buddy large-backend scenarios. The allocator runs with the buddy
// backend on its smallest legal span (8 MiB = one status tree), so every
// large operation contends on one counting tree. The quiescent oracle
// (debugValidate, which includes BuddyBackend::debugValidate) recomputes
// every node's count from its children, so a lost up-mark, a leaked
// claim, or a meter drift fails the schedule even when no payload is
// clobbered.
//===----------------------------------------------------------------------===//

namespace {

/// Payload that rounds to the smallest large-path buddy order (16 KiB):
/// its total exceeds the last 8 KiB size class.
constexpr std::size_t BuddyPayloadBytes = 12 * 1024;

/// runAllocatorSchedule with the buddy large backend enabled.
ScheduleOutcome
runBuddySchedule(const SchedOptions &O,
                 const std::function<std::vector<std::function<void()>>(
                     LFAllocator &, BlockOracle &)> &MakeBodies) {
  ScheduleOutcome Out;
  HazardDomain Domain;
  AllocatorOptions Opts = tinyOptions(Domain, 1);
  Opts.LargeBackend = LargeBackendKind::Buddy;
  Opts.BuddySpanBytes = BuddyBackend::MaxOrderBytes;
  LFAllocator Alloc(Opts);
  BlockOracle Oracle;
  ScheduleController Ctl(O);
  Ctl.run(MakeBodies(Alloc, Oracle));

  std::string Err = Oracle.firstError();
  if (Err.empty() && Oracle.liveCount() != 0)
    Err = "blocks leaked by the schedule";
  std::string Msg;
  if (Err.empty() && !Alloc.debugValidate(&Msg))
    Err = Msg;
  if (Err.empty() && Ctl.runawayDetected())
    Err = "schedule exceeded MaxSteps (livelock-shaped)";
  if (!Err.empty()) {
    Out.Ok = false;
    Out.Message = Err;
  }
  return Out;
}

} // namespace

/// Scenario 9 — concurrent sibling frees vs the parent-order claim: two
/// threads free the two halves of a carved buddy pair (wait-free down-
/// marks draining the shared ancestors toward 0) while a third repeatedly
/// claims at the PARENT order — its CAS(0 -> BUSY|1) may only fire once
/// BOTH siblings have fully drained, and a success while either sibling's
/// count is still in flight hands out overlapping memory (the oracle's
/// clobber check) or strands a count (debugValidate). Forced failures on
/// the claim CAS keep the scanner re-reading mid-drain words.
TEST(SchedExplore, BuddySiblingFreesVsParentClaim) {
  const auto MakeBodies = [](LFAllocator &Alloc, BlockOracle &Oracle) {
    // Deterministic prefill: two 16 KiB siblings carved from one 32 KiB
    // parent (first two same-order claims in a fresh span are adjacent).
    void *Left = Alloc.allocate(BuddyPayloadBytes);
    void *Right = Alloc.allocate(BuddyPayloadBytes);
    Oracle.onAlloc(Left, 950);
    Oracle.onAlloc(Right, 951);

    std::vector<std::function<void()>> Bodies;
    const auto Free = [&Alloc](void *Q) { Alloc.deallocate(Q); };
    Bodies.push_back([&Oracle, Free, Left] {
      Oracle.checkAndFree(Left, Free);
    });
    Bodies.push_back([&Oracle, Free, Right] {
      Oracle.checkAndFree(Right, Free);
    });
    Bodies.push_back([&Alloc, &Oracle, Free] {
      // Parent-order claimer: wants the 32 KiB whole the frees reform.
      for (unsigned I = 0; I < 3; ++I) {
        void *P = Alloc.allocate(2 * BuddyPayloadBytes);
        Oracle.onAlloc(P, 960 + I);
        Oracle.checkAndFree(P, Free);
      }
    });
    return Bodies;
  };
  ExploreOptions Opts = exploreOptions(8ull << 20, 400);
  Opts.Proto.CasFailSiteMask =
      (1ull << static_cast<unsigned>(Site::BuddyAlloc)) |
      (1ull << static_cast<unsigned>(Site::BuddyCoalesce));
  reportExplore(explore(Opts, [&](const SchedOptions &O) {
    return runBuddySchedule(O, MakeBodies);
  }));
}

/// Scenario 10 — the claim-CAS ABA shape plus trim interference: a victim
/// scanner reads a node word as 0 and is preempted before its CAS while
/// an attacker allocates that very block, touches it, and frees it back —
/// restoring the word to exactly 0. The victim's stale CAS then fires,
/// which the counting protocol must treat as BENIGN (0 always means
/// genuinely free; the attacker's claim is long gone). Meanwhile a
/// trimmer claims free wholes through the BuddyCoalesce site and
/// decommits them, so the victim's claim also races obstruction-free trim
/// claims. A protocol that peeked at stale sibling state instead would
/// hand the same block to victim and attacker — the double-handout /
/// clobber oracles.
TEST(SchedExplore, BuddyClaimAbaVsTrim) {
  const auto MakeBodies = [](LFAllocator &Alloc, BlockOracle &Oracle) {
    std::vector<std::function<void()>> Bodies;
    const auto Free = [&Alloc](void *Q) { Alloc.deallocate(Q); };
    for (unsigned T = 0; T < 2; ++T)
      Bodies.push_back([&Alloc, &Oracle, Free, T] {
        // Victim/attacker pair: both scan the same level of the same
        // tree; each allocate-touch-free cycles node words 0 -> BUSY -> 0
        // under the other's nose.
        for (unsigned I = 0; I < 3; ++I) {
          void *P = Alloc.allocate(BuddyPayloadBytes);
          Oracle.onAlloc(P, 970 + T * 10 + I);
          Oracle.checkAndFree(P, Free);
        }
      });
    Bodies.push_back([&Alloc] {
      // Trimmer: claims maximal free blocks via the BuddyCoalesce CAS and
      // decommits them; must yield to (not corrupt) concurrent claims.
      for (unsigned I = 0; I < 2; ++I)
        Alloc.trimLargeBackend(0);
    });
    return Bodies;
  };
  ExploreOptions Opts = exploreOptions(9ull << 20, 400);
  Opts.Proto.CasFailSiteMask =
      (1ull << static_cast<unsigned>(Site::BuddyAlloc)) |
      (1ull << static_cast<unsigned>(Site::BuddyCoalesce));
  reportExplore(explore(Opts, [&](const SchedOptions &O) {
    return runBuddySchedule(O, MakeBodies);
  }));
}

/// Sanity: one fixed schedule end-to-end with every oracle engaged, so a
/// broken harness (rather than a broken allocator) fails fast and clearly.
TEST(SchedExplore, SingleScheduleSmoke) {
  SchedOptions O;
  O.Seed = test::baseSeed();
  O.MaxPreemptions = 2;
  O.CasFailPercent = 30;
  O.HorizonEstimate = 512;
  const ScheduleOutcome Out = runAllocatorSchedule(
      O, [](LFAllocator &Alloc, BlockOracle &Oracle) {
        std::vector<std::function<void()>> Bodies;
        for (unsigned T = 0; T < 2; ++T)
          Bodies.push_back([&Alloc, &Oracle, T] {
            for (unsigned I = 0; I < 3; ++I) {
              void *P = Alloc.allocate(PayloadBytes);
              Oracle.onAlloc(P, T * 10 + I);
              Oracle.checkAndFree(
                  P, [&Alloc](void *Q) { Alloc.deallocate(Q); });
            }
          });
        return Bodies;
      });
  EXPECT_TRUE(Out.Ok) << Out.Message;
}

} // namespace
