//===- tests/lockfree_stack_test.cpp - Dynamic LIFO stack tests -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lockfree/LockFreeStack.h"

#include "baselines/AllocatorInterface.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

using namespace lfm;

TEST(LockFreeStack, LifoSemantics) {
  HazardDomain Domain;
  LockFreeStack<int> Stack(Domain);
  int V = -1;
  EXPECT_TRUE(Stack.empty());
  EXPECT_FALSE(Stack.pop(V));
  for (int I = 0; I < 100; ++I)
    ASSERT_TRUE(Stack.push(I));
  EXPECT_EQ(Stack.approxSize(), 100);
  for (int I = 99; I >= 0; --I) {
    ASSERT_TRUE(Stack.pop(V));
    EXPECT_EQ(V, I);
  }
  EXPECT_FALSE(Stack.pop(V));
}

TEST(LockFreeStack, NodeRecyclingAcrossGenerations) {
  HazardDomain Domain;
  LockFreeStack<std::uint64_t> Stack(Domain);
  for (std::uint64_t I = 0; I < 100'000; ++I) {
    ASSERT_TRUE(Stack.push(I));
    std::uint64_t V = ~0ull;
    ASSERT_TRUE(Stack.pop(V));
    ASSERT_EQ(V, I);
  }
}

TEST(LockFreeStack, MpmcConservation) {
  HazardDomain Domain;
  LockFreeStack<std::uint64_t> Stack(Domain);
  constexpr int Producers = 4, Consumers = 4, PerProducer = 20000;
  std::atomic<bool> Done{false};
  std::vector<std::vector<std::uint64_t>> Got(Consumers);
  std::vector<std::thread> Ts;
  for (int P = 0; P < Producers; ++P)
    Ts.emplace_back([&, P] {
      for (int I = 0; I < PerProducer; ++I)
        ASSERT_TRUE(
            Stack.push((static_cast<std::uint64_t>(P) << 32) | I));
    });
  for (int C = 0; C < Consumers; ++C)
    Ts.emplace_back([&, C] {
      std::uint64_t V;
      for (;;) {
        if (Stack.pop(V))
          Got[C].push_back(V);
        else if (Done.load(std::memory_order_acquire))
          break;
        else
          cpuRelax();
      }
      while (Stack.pop(V))
        Got[C].push_back(V);
    });
  for (int P = 0; P < Producers; ++P)
    Ts[P].join();
  Done.store(true, std::memory_order_release);
  for (int C = 0; C < Consumers; ++C)
    Ts[Producers + C].join();

  std::map<std::uint64_t, int> Counts;
  for (auto &G : Got)
    for (std::uint64_t V : G)
      ++Counts[V];
  EXPECT_EQ(Counts.size(),
            static_cast<std::size_t>(Producers) * PerProducer);
  for (auto &[V, N] : Counts)
    ASSERT_EQ(N, 1) << V;
}

TEST(LockFreeStack, MallocBackedNodesFlowThroughTheAllocator) {
  // §5 composition: node storage is the lock-free allocator itself.
  auto Alloc = makeAllocator(AllocatorKind::LockFree, 2);
  const std::uint64_t Before = Alloc->pageStats().BytesInUse;
  {
    HazardDomain Domain;
    struct Shim {
      static void *alloc(void *Ctx, std::size_t N) {
        return static_cast<MallocInterface *>(Ctx)->malloc(N);
      }
      static void free(void *Ctx, void *P) {
        static_cast<MallocInterface *>(Ctx)->free(P);
      }
    };
    LockFreeStack<int> Stack(
        Domain, NodeMemory{Shim::alloc, Shim::free, Alloc.get()});
    for (int Round = 0; Round < 1000; ++Round) {
      for (int I = 0; I < 20; ++I)
        ASSERT_TRUE(Stack.push(I));
      int V;
      for (int I = 0; I < 20; ++I)
        ASSERT_TRUE(Stack.pop(V));
    }
    EXPECT_GE(Alloc->pageStats().BytesInUse, Before);
  }
  SUCCEED();
}

TEST(LockFreeStack, PopUnderContentionNeverDuplicates) {
  // All threads pop from a pre-filled stack; every element seen once.
  HazardDomain Domain;
  LockFreeStack<std::uint32_t> Stack(Domain);
  constexpr unsigned N = 50'000, Threads = 6;
  for (std::uint32_t I = 0; I < N; ++I)
    Stack.push(I);
  std::vector<std::vector<std::uint32_t>> Got(Threads);
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      std::uint32_t V;
      while (Stack.pop(V))
        Got[T].push_back(V);
    });
  for (auto &T : Ts)
    T.join();
  std::vector<bool> Seen(N, false);
  std::size_t Total = 0;
  for (auto &G : Got)
    for (std::uint32_t V : G) {
      ASSERT_LT(V, N);
      ASSERT_FALSE(Seen[V]) << "duplicate pop of " << V;
      Seen[V] = true;
      ++Total;
    }
  EXPECT_EQ(Total, N);
}
