//===- tests/page_allocator_test.cpp - OS page provider tests -------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "os/PageAllocator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

using namespace lfm;

TEST(PageAllocator, MapReturnsZeroedUsableMemory) {
  PageAllocator Pages;
  auto *P = static_cast<unsigned char *>(Pages.map(OsPageSize));
  ASSERT_NE(P, nullptr);
  for (std::size_t I = 0; I < OsPageSize; ++I)
    ASSERT_EQ(P[I], 0u);
  std::memset(P, 0xff, OsPageSize); // Must be writable.
  Pages.unmap(P, OsPageSize);
}

TEST(PageAllocator, RoundsUpToWholePages) {
  PageAllocator Pages;
  void *P = Pages.map(1); // One byte still costs a page.
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Pages.stats().BytesInUse, OsPageSize);
  Pages.unmap(P, 1);
  EXPECT_EQ(Pages.stats().BytesInUse, 0u);
}

TEST(PageAllocator, HonorsLargeAlignment) {
  PageAllocator Pages;
  for (std::size_t Align : {4096ul, 65536ul, 1048576ul}) {
    void *P = Pages.map(OsPageSize, Align);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % Align, 0u)
        << "alignment " << Align;
    Pages.unmap(P, OsPageSize);
  }
}

TEST(PageAllocator, AlignedMappingsAccountOnlyUsedBytes) {
  PageAllocator Pages;
  void *P = Pages.map(2 * OsPageSize, 1048576);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(Pages.stats().BytesInUse, 2 * OsPageSize)
      << "alignment slack must be trimmed, not accounted";
  Pages.unmap(P, 2 * OsPageSize);
  EXPECT_EQ(Pages.stats().BytesInUse, 0u);
}

TEST(PageAllocator, PeakTracksHighWaterMark) {
  PageAllocator Pages;
  void *A = Pages.map(4 * OsPageSize);
  void *B = Pages.map(4 * OsPageSize);
  EXPECT_EQ(Pages.stats().PeakBytes, 8 * OsPageSize);
  Pages.unmap(A, 4 * OsPageSize);
  EXPECT_EQ(Pages.stats().PeakBytes, 8 * OsPageSize)
      << "peak must not decay on unmap";
  Pages.resetPeak();
  EXPECT_EQ(Pages.stats().PeakBytes, 4 * OsPageSize);
  Pages.unmap(B, 4 * OsPageSize);
}

TEST(PageAllocator, CountsCalls) {
  PageAllocator Pages;
  void *A = Pages.map(OsPageSize);
  void *B = Pages.map(OsPageSize);
  Pages.unmap(A, OsPageSize);
  const PageStats St = Pages.stats();
  EXPECT_EQ(St.MapCalls, 2u);
  EXPECT_EQ(St.UnmapCalls, 1u);
  Pages.unmap(B, OsPageSize);
}

TEST(PageAllocator, InstancesMeterIndependently) {
  PageAllocator A, B;
  void *P = A.map(OsPageSize);
  EXPECT_EQ(A.stats().BytesInUse, OsPageSize);
  EXPECT_EQ(B.stats().BytesInUse, 0u);
  A.unmap(P, OsPageSize);
}

TEST(PageAllocator, RemapGrowsAndShrinksWithHonestBooks) {
  PageAllocator Pages;
  auto *P = static_cast<unsigned char *>(Pages.map(2 * OsPageSize));
  ASSERT_NE(P, nullptr);
  P[0] = 0x42;
  P[2 * OsPageSize - 1] = 0x43;

  auto *Grown = static_cast<unsigned char *>(
      Pages.remap(P, 2 * OsPageSize, 8 * OsPageSize));
  ASSERT_NE(Grown, nullptr);
  EXPECT_EQ(Pages.stats().BytesInUse, 8 * OsPageSize);
  EXPECT_EQ(Grown[0], 0x42) << "contents must survive the move";
  EXPECT_EQ(Grown[2 * OsPageSize - 1], 0x43);
  Grown[8 * OsPageSize - 1] = 1; // New tail must be writable.

  auto *Shrunk = static_cast<unsigned char *>(
      Pages.remap(Grown, 8 * OsPageSize, OsPageSize));
  ASSERT_NE(Shrunk, nullptr);
  EXPECT_EQ(Pages.stats().BytesInUse, OsPageSize);
  EXPECT_EQ(Shrunk[0], 0x42);
  Pages.unmap(Shrunk, OsPageSize);
  EXPECT_EQ(Pages.stats().BytesInUse, 0u);
}

TEST(PageAllocator, RemapSameSizeIsANoOp) {
  PageAllocator Pages;
  void *P = Pages.map(OsPageSize);
  EXPECT_EQ(Pages.remap(P, OsPageSize, OsPageSize), P);
  Pages.unmap(P, OsPageSize);
}

TEST(PageAllocator, ConcurrentMapUnmapKeepsBooksBalanced) {
  PageAllocator Pages;
  constexpr int Threads = 8, Iters = 500;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < Iters; ++I) {
        void *P = Pages.map(OsPageSize * (1 + I % 3));
        ASSERT_NE(P, nullptr);
        Pages.unmap(P, OsPageSize * (1 + I % 3));
      }
    });
  for (auto &T : Ts)
    T.join();
  const PageStats St = Pages.stats();
  EXPECT_EQ(St.BytesInUse, 0u);
  EXPECT_EQ(St.MapCalls, St.UnmapCalls);
  EXPECT_EQ(St.MapCalls, static_cast<std::uint64_t>(Threads) * Iters);
}
