//===- tests/support_test.cpp - Support-library unit tests ----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Barrier.h"
#include "support/Histogram.h"
#include "support/Platform.h"
#include "support/Random.h"
#include "support/SpinLock.h"
#include "support/ThreadRegistry.h"
#include "support/Timing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

using namespace lfm;

//===----------------------------------------------------------------------===
// Platform helpers
//===----------------------------------------------------------------------===

TEST(Platform, AlignUpBasics) {
  EXPECT_EQ(alignUp(0, 8), 0u);
  EXPECT_EQ(alignUp(1, 8), 8u);
  EXPECT_EQ(alignUp(8, 8), 8u);
  EXPECT_EQ(alignUp(9, 8), 16u);
  EXPECT_EQ(alignUp(4095, 4096), 4096u);
  EXPECT_EQ(alignUp(4097, 4096), 8192u);
}

TEST(Platform, AlignDownBasics) {
  EXPECT_EQ(alignDown(0, 8), 0u);
  EXPECT_EQ(alignDown(7, 8), 0u);
  EXPECT_EQ(alignDown(8, 8), 8u);
  EXPECT_EQ(alignDown(4097, 4096), 4096u);
}

TEST(Platform, AlignIsIdempotent) {
  for (std::uint64_t V : {0ull, 1ull, 63ull, 64ull, 65ull, 12345ull})
    for (std::uint64_t A : {1ull, 2ull, 64ull, 4096ull}) {
      EXPECT_EQ(alignUp(alignUp(V, A), A), alignUp(V, A));
      EXPECT_EQ(alignDown(alignDown(V, A), A), alignDown(V, A));
      EXPECT_LE(alignDown(V, A), V);
      EXPECT_GE(alignUp(V, A), V);
    }
}

TEST(Platform, PowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(1ull << 40));
  EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(Platform, Log2) {
  EXPECT_EQ(log2Floor(1), 0u);
  EXPECT_EQ(log2Floor(2), 1u);
  EXPECT_EQ(log2Floor(3), 1u);
  EXPECT_EQ(log2Floor(4), 2u);
  EXPECT_EQ(log2Ceil(1), 0u);
  EXPECT_EQ(log2Ceil(3), 2u);
  EXPECT_EQ(log2Ceil(4), 2u);
  EXPECT_EQ(log2Ceil(5), 3u);
}

//===----------------------------------------------------------------------===
// Random
//===----------------------------------------------------------------------===

TEST(Random, DeterministicPerSeed) {
  XorShift128 A(42), B(42), C(43);
  bool Diverged = false;
  for (int I = 0; I < 100; ++I) {
    const std::uint64_t V = A.next();
    EXPECT_EQ(V, B.next());
    if (V != C.next())
      Diverged = true;
  }
  EXPECT_TRUE(Diverged) << "different seeds must give different streams";
}

TEST(Random, ZeroSeedIsNotStuck) {
  XorShift128 Rng(0);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I < 64; ++I)
    Seen.insert(Rng.next());
  EXPECT_GT(Seen.size(), 60u);
}

TEST(Random, BoundedStaysInBounds) {
  XorShift128 Rng(7);
  for (std::uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull})
    for (int I = 0; I < 1000; ++I)
      EXPECT_LT(Rng.nextBounded(Bound), Bound);
}

TEST(Random, RangeIsInclusive) {
  XorShift128 Rng(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 20000; ++I) {
    const std::uint64_t V = Rng.nextInRange(16, 80);
    ASSERT_GE(V, 16u);
    ASSERT_LE(V, 80u);
    SawLo |= V == 16;
    SawHi |= V == 80;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Random, RoughlyUniform) {
  XorShift128 Rng(123);
  constexpr int Buckets = 16, N = 160000;
  int Hist[Buckets] = {};
  for (int I = 0; I < N; ++I)
    ++Hist[Rng.nextBounded(Buckets)];
  for (int B = 0; B < Buckets; ++B) {
    EXPECT_GT(Hist[B], N / Buckets * 0.9) << "bucket " << B;
    EXPECT_LT(Hist[B], N / Buckets * 1.1) << "bucket " << B;
  }
}

//===----------------------------------------------------------------------===
// Timing
//===----------------------------------------------------------------------===

TEST(Timing, MonotonicNeverRegresses) {
  std::uint64_t Prev = monotonicNanos();
  for (int I = 0; I < 1000; ++I) {
    const std::uint64_t Now = monotonicNanos();
    ASSERT_GE(Now, Prev);
    Prev = Now;
  }
}

TEST(Timing, StopwatchMeasuresSleep) {
  Stopwatch W;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(W.elapsedNanos(), 15'000'000u);
  W.reset();
  EXPECT_LT(W.elapsedNanos(), 15'000'000u);
}

//===----------------------------------------------------------------------===
// Locks
//===----------------------------------------------------------------------===

namespace {

template <typename LockT> void exerciseMutualExclusion() {
  LockT Lock;
  long Counter = 0; // Deliberately non-atomic: the lock must protect it.
  constexpr int Threads = 8, PerThread = 20000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        Lock.lock();
        ++Counter;
        Lock.unlock();
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Counter, static_cast<long>(Threads) * PerThread);
}

} // namespace

TEST(SpinLock, TasMutualExclusion) { exerciseMutualExclusion<TasLock>(); }
TEST(SpinLock, TicketMutualExclusion) {
  exerciseMutualExclusion<TicketLock>();
}

TEST(SpinLock, TryLockReportsContention) {
  TasLock Lock;
  EXPECT_TRUE(Lock.tryLock());
  EXPECT_TRUE(Lock.isLocked());
  EXPECT_FALSE(Lock.tryLock()) << "second tryLock must fail while held";
  Lock.unlock();
  EXPECT_FALSE(Lock.isLocked());
  EXPECT_TRUE(Lock.tryLock());
  Lock.unlock();
}

TEST(SpinLock, GuardReleasesOnScopeExit) {
  TasLock Lock;
  {
    LockGuard<TasLock> G(Lock);
    EXPECT_TRUE(Lock.isLocked());
  }
  EXPECT_FALSE(Lock.isLocked());
}

//===----------------------------------------------------------------------===
// Barrier
//===----------------------------------------------------------------------===

TEST(Barrier, AllArriveBeforeAnyProceeds) {
  constexpr unsigned Threads = 6;
  SpinBarrier Bar(Threads);
  std::atomic<unsigned> Arrived{0};
  std::atomic<bool> Violation{false};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      Arrived.fetch_add(1);
      Bar.arriveAndWait();
      if (Arrived.load() != Threads)
        Violation = true;
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_FALSE(Violation.load());
}

TEST(Barrier, ReusableAcrossPhases) {
  constexpr unsigned Threads = 4, Phases = 50;
  SpinBarrier Bar(Threads);
  std::atomic<unsigned> Phase[Phases] = {};
  std::atomic<bool> Violation{false};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (unsigned P = 0; P < Phases; ++P) {
        Phase[P].fetch_add(1);
        Bar.arriveAndWait();
        if (Phase[P].load() != Threads)
          Violation = true;
        Bar.arriveAndWait();
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_FALSE(Violation.load());
}

//===----------------------------------------------------------------------===
// ThreadRegistry
//===----------------------------------------------------------------------===

TEST(ThreadRegistry, StablePerThread) {
  const std::uint32_t A = threadIndex();
  EXPECT_EQ(A, threadIndex());
}

TEST(ThreadRegistry, DistinctAcrossThreads) {
  constexpr int N = 16;
  std::vector<std::uint32_t> Ids(N);
  std::vector<std::thread> Ts;
  for (int I = 0; I < N; ++I)
    Ts.emplace_back([&, I] { Ids[I] = threadIndex(); });
  for (auto &T : Ts)
    T.join();
  std::set<std::uint32_t> Unique(Ids.begin(), Ids.end());
  EXPECT_EQ(Unique.size(), static_cast<std::size_t>(N));
  EXPECT_GE(threadIndexWatermark(), static_cast<std::uint32_t>(N));
}

//===----------------------------------------------------------------------===
// Histogram / StreamingStats
//===----------------------------------------------------------------------===

TEST(StreamingStats, MeanAndExtremes) {
  StreamingStats S;
  for (double V : {1.0, 2.0, 3.0, 4.0, 5.0})
    S.add(V);
  EXPECT_EQ(S.count(), 5u);
  EXPECT_DOUBLE_EQ(S.mean(), 3.0);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 5.0);
  EXPECT_NEAR(S.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats All, Left, Right;
  XorShift128 Rng(5);
  for (int I = 0; I < 1000; ++I) {
    const double V = static_cast<double>(Rng.nextBounded(1000));
    All.add(V);
    (I % 2 ? Left : Right).add(V);
  }
  Left.merge(Right);
  EXPECT_EQ(Left.count(), All.count());
  EXPECT_NEAR(Left.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(Left.stddev(), All.stddev(), 1e-9);
  EXPECT_EQ(Left.min(), All.min());
  EXPECT_EQ(Left.max(), All.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats A, Empty;
  A.add(7);
  A.merge(Empty);
  EXPECT_EQ(A.count(), 1u);
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 1u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 7.0);
}

TEST(LogHistogram, QuantilesBracketTheData) {
  LogHistogram H;
  for (std::uint64_t V = 1; V <= 1024; ++V)
    H.add(V);
  EXPECT_EQ(H.count(), 1024u);
  const std::uint64_t Median = H.quantile(0.5);
  EXPECT_GE(Median, 256u);
  EXPECT_LE(Median, 1024u);
  EXPECT_LE(H.quantile(0.1), H.quantile(0.9));
  EXPECT_FALSE(H.summary().empty());
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram A, B;
  A.add(10);
  B.add(20);
  B.add(30);
  A.merge(B);
  EXPECT_EQ(A.count(), 3u);
}

TEST(LogHistogram, ZeroSample) {
  LogHistogram H;
  H.add(0);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.quantile(0.5), 0u);
}
