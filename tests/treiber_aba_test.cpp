//===- tests/treiber_aba_test.cpp - Scripted tagged-ABA regression --------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Drives the classic ABA pattern against TreiberStack deterministically:
// manual schedule stepping parks a popping thread exactly inside the
// window between its link read and its head CAS (the LFM_SCHED_POINT in
// TreiberStack::pop), while the main thread — uncontrolled, so its hooks
// pass through — reshapes the stack underneath. The first test pins that
// the IBM tag makes the stale CAS fail (§3.2.3); the second deliberately
// wraps the 16-bit tag through all 65536 values and shows the stale CAS
// then SUCCEEDS, corrupting the stack — pinning the documented limit of
// the tag mechanism (Tagged.h header comment) that the paper's descriptor
// list avoids by using hazard pointers instead.
//
// Only built under LFMALLOC_SCHED_TEST: without the hooks there is no way
// to hold a thread inside the window.
//
//===----------------------------------------------------------------------===//

#if !LFM_SCHED_TEST
#error treiber_aba_test requires -DLFMALLOC_SCHED_TEST=ON
#endif

#include "lockfree/TreiberStack.h"
#include "schedtest/ScheduleController.h"

#include "TestSeed.h"

#include <gtest/gtest.h>

using namespace lfm;
using namespace lfm::sched;

namespace {

struct TestNode {
  TestNode *Next = nullptr;
  int Id = 0;
};

using Stack = TreiberStack<TestNode>;

/// Parks thread 0 of \p Ctl inside pop's link-read/CAS window and returns
/// once it is there. The body will have loaded the current head snapshot
/// and read Head->Next, but not yet attempted the CAS.
void parkInPopWindow(ScheduleController &Ctl) {
  ASSERT_TRUE(Ctl.step(0, 1));
}

TEST(TreiberAba, TagMakesStaleCasFail) {
  Stack S;
  TestNode Z{nullptr, 3}, Y{nullptr, 2}, X{nullptr, 1};
  S.push(&Z);
  S.push(&Y);
  S.push(&X); // Stack (top->bottom): X, Y, Z.
  const std::uint16_t T0 = S.headTag();

  SchedOptions Opts;
  Opts.Seed = test::baseSeed();
  ScheduleController Ctl(Opts);
  TestNode *Popped = nullptr;
  Ctl.start({[&] { Popped = S.pop(); }});

  // Thread A reads head {X, T0} and Next = Y, then stalls in the window.
  parkInPopWindow(Ctl);
  EXPECT_EQ(S.headTag(), T0) << "A must not have CASed yet";

  // Main thread plays attacker B: pop X, pop Y, push X back. The head
  // pointer is X again — the textbook ABA state — but three successful
  // CASes moved the tag to T0+3, and X->Next is now Z, not Y.
  EXPECT_EQ(S.pop(), &X);
  EXPECT_EQ(S.pop(), &Y);
  S.push(&X);
  EXPECT_EQ(static_cast<std::uint16_t>(T0 + 3), S.headTag());
  ASSERT_EQ(X.Next, &Z);

  // Resume A. Its CAS expects {X, T0}, sees {X, T0+3}: the tag mismatch
  // forces a retry, and the retry pops X with the *current* link (Z), so
  // nothing is lost. Without the tag A would have installed the stale Y,
  // resurrecting a removed node and losing Z.
  EXPECT_FALSE(Ctl.step(0, 1000)); // Runs A's body to completion.
  Ctl.finish();
  EXPECT_EQ(Popped, &X);
  EXPECT_EQ(S.pop(), &Z) << "retry must have preserved the remainder";
  EXPECT_EQ(S.pop(), nullptr);
}

TEST(TreiberAba, TagWraparoundWindowIsReal) {
  // The 16-bit tag is a probabilistic defense: 65536 successful head
  // CASes while one popper stalls in the window bring the tag back to its
  // old value, and the stale CAS then succeeds. This test constructs that
  // schedule on purpose and pins the resulting (documented) corruption,
  // so any future change to the tag width or packing that alters the
  // wraparound behavior shows up here.
  Stack S;
  TestNode Z{nullptr, 3}, Y{nullptr, 2}, X{nullptr, 1}, W{nullptr, 4};
  S.push(&Z);
  S.push(&Y);
  S.push(&X); // Stack: X, Y, Z.
  const std::uint16_t T0 = S.headTag();

  SchedOptions Opts;
  Opts.Seed = test::baseSeed();
  ScheduleController Ctl(Opts);
  TestNode *Popped = nullptr;
  Ctl.start({[&] { Popped = S.pop(); }});
  parkInPopWindow(Ctl); // A holds snapshot {X, T0}, Next = Y.

  // Reshape: remove Y, insert W — four CASes, keeping the head pointer's
  // eventual value X while changing the structure underneath. (A
  // height-changing reshape costs an odd number of CASes and so could
  // never land the tag back on T0; inserting W keeps the count even.)
  EXPECT_EQ(S.pop(), &X);
  EXPECT_EQ(S.pop(), &Y);
  S.push(&W); // W->Next = Z.
  S.push(&X); // X->Next = W.  Stack: X, W, Z; tag T0+4.

  // Spin pop/push of the head (tag +2 per round trip) until the tag has
  // walked all the way around to T0. Bounded: the offset is even and the
  // period is 65536, so exactly 32766 iterations.
  unsigned Spins = 0;
  while (S.headTag() != T0) {
    TestNode *P = S.pop();
    ASSERT_EQ(P, &X);
    S.push(P);
    ASSERT_LT(++Spins, 40000u) << "tag failed to wrap — width changed?";
  }
  EXPECT_EQ(Spins, 32766u);

  // Resume A. Its stale CAS expects {X, T0} and — after full wraparound —
  // that is exactly what the word holds, so it SUCCEEDS, installing the
  // long-retired Y as head. (x86-64 cmpxchg does not fail spuriously, so
  // the weak CAS is deterministic here.) W and the re-pushed X are lost;
  // Y is resurrected with its stale link to Z.
  EXPECT_FALSE(Ctl.step(0, 1000));
  Ctl.finish();
  EXPECT_EQ(Popped, &X);
  EXPECT_EQ(S.pop(), &Y) << "wraparound must resurrect the retired node";
  EXPECT_EQ(S.pop(), &Z);
  EXPECT_EQ(S.pop(), nullptr) << "W and X are leaked by the ABA corruption";
}

} // namespace
