//===- tests/partial_list_test.cpp - §3.2.6 partial list tests ------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/PartialList.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

/// Fixture parameterized on the list policy so both disciplines pass the
/// same behavioural contract.
class PartialListTest : public ::testing::TestWithParam<PartialListPolicy> {
protected:
  PartialListTest()
      : Descs(Domain, Pages), List(GetParam(), Domain, Pages) {}

  /// Makes a descriptor in a given superblock state.
  Descriptor *makeDesc(SbState State) {
    Descriptor *D = Descs.alloc();
    Anchor A;
    A.State = State;
    A.Count = State == SbState::Partial ? 1 : 0;
    D->AnchorWord.storeRelaxed(A);
    return D;
  }

  HazardDomain Domain;
  PageAllocator Pages;
  DescriptorAllocator Descs;
  PartialList List;
};

} // namespace

TEST_P(PartialListTest, EmptyListGetsNull) {
  EXPECT_EQ(List.get(), nullptr);
}

TEST_P(PartialListTest, PutThenGetReturnsSameDescriptor) {
  Descriptor *D = makeDesc(SbState::Partial);
  List.put(D);
  EXPECT_EQ(List.get(), D);
  EXPECT_EQ(List.get(), nullptr);
}

TEST_P(PartialListTest, OrderMatchesPolicy) {
  Descriptor *A = makeDesc(SbState::Partial);
  Descriptor *B = makeDesc(SbState::Partial);
  Descriptor *C = makeDesc(SbState::Partial);
  List.put(A);
  List.put(B);
  List.put(C);
  if (GetParam() == PartialListPolicy::Fifo) {
    EXPECT_EQ(List.get(), A);
    EXPECT_EQ(List.get(), B);
    EXPECT_EQ(List.get(), C);
  } else {
    EXPECT_EQ(List.get(), C);
    EXPECT_EQ(List.get(), B);
    EXPECT_EQ(List.get(), A);
  }
}

TEST_P(PartialListTest, RemoveEmptyRetiresEmptyDescriptors) {
  Descriptor *Dead = makeDesc(SbState::Empty);
  List.put(Dead);
  List.removeEmpty(Descs);
  EXPECT_EQ(List.get(), nullptr) << "empty descriptor must leave the list";

  // The retired descriptor must become allocatable again after a drain.
  Domain.drainAll();
  std::set<Descriptor *> Seen;
  bool Recycled = false;
  for (std::uint64_t I = 0; I < Descs.mintedCount() && !Recycled; ++I) {
    Descriptor *D = Descs.alloc();
    Recycled = D == Dead;
  }
  EXPECT_TRUE(Recycled) << "removeEmpty must feed DescRetire";
}

TEST_P(PartialListTest, RemoveEmptyKeepsNonEmptyDescriptors) {
  Descriptor *Live = makeDesc(SbState::Partial);
  List.put(Live);
  List.removeEmpty(Descs);
  EXPECT_EQ(List.get(), Live) << "non-empty descriptor must survive";
}

TEST_P(PartialListTest, RemoveEmptySkipsLeadingEmpties) {
  // FIFO contract: dequeue empties until a non-empty is found; that one is
  // re-enqueued. LIFO inspects the head only — also covered because the
  // single empty sits at the head.
  Descriptor *Dead1 = makeDesc(SbState::Empty);
  Descriptor *Live = makeDesc(SbState::Partial);
  if (GetParam() == PartialListPolicy::Fifo) {
    Descriptor *Dead2 = makeDesc(SbState::Empty);
    List.put(Dead1);
    List.put(Dead2);
    List.put(Live);
    List.removeEmpty(Descs);
    EXPECT_EQ(List.get(), Live);
    EXPECT_EQ(List.get(), nullptr);
  } else {
    List.put(Live);
    List.put(Dead1); // LIFO head.
    List.removeEmpty(Descs);
    EXPECT_EQ(List.get(), Live);
  }
}

TEST_P(PartialListTest, ConcurrentPutGetConservation) {
  constexpr int Threads = 6, Iters = 10000;
  std::vector<Descriptor *> All;
  for (int I = 0; I < 64; ++I)
    All.push_back(makeDesc(SbState::Partial));
  for (Descriptor *D : All)
    List.put(D);

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < Iters; ++I)
        if (Descriptor *D = List.get())
          List.put(D);
    });
  for (auto &T : Ts)
    T.join();

  std::set<Descriptor *> Seen;
  while (Descriptor *D = List.get())
    EXPECT_TRUE(Seen.insert(D).second) << "descriptor duplicated in list";
  EXPECT_EQ(Seen.size(), All.size());
}

INSTANTIATE_TEST_SUITE_P(BothPolicies, PartialListTest,
                         ::testing::Values(PartialListPolicy::Fifo,
                                           PartialListPolicy::Lifo),
                         [](const auto &Info) {
                           return Info.param == PartialListPolicy::Fifo
                                      ? "Fifo"
                                      : "Lifo";
                         });
