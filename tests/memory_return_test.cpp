//===- tests/memory_return_test.cpp - Bounded retention and OOM rescue ----===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The memory-return subsystem: watermark decommit on release, explicit
// trimming (releaseMemory / lf_malloc_trim), decay-driven background
// trimming, hyperblock parking, the OOM rescue path (trim-and-retry when
// the OS refuses mappings), and AllocatorOptions validation. Everything
// is asserted through the metrics snapshot so the same expectations hold
// in telemetry and no-telemetry builds (counters are gated on
// TelemetryCompiled; gauges and PageStats work everywhere).
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/Config.h"
#include "lfmalloc/LFAllocator.h"
#include "telemetry/MetricsSnapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

/// Fills \p Blocks with \p Count touched small allocations.
void spike(LFAllocator &Alloc, std::vector<void *> &Blocks,
           std::size_t Count, std::size_t Bytes = 1024) {
  for (std::size_t I = 0; I < Count; ++I) {
    void *P = Alloc.allocate(Bytes);
    ASSERT_NE(P, nullptr);
    std::memset(P, 0x7e, Bytes);
    Blocks.push_back(P);
  }
}

void freeAll(LFAllocator &Alloc, std::vector<void *> &Blocks) {
  for (void *P : Blocks)
    Alloc.deallocate(P);
  Blocks.clear();
}

} // namespace

TEST(MemoryReturn, WatermarkDecommitsReleasedSuperblocks) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.RetainMaxBytes = 4 * Opts.SuperblockSize;
  LFAllocator Alloc(Opts);

  // ~4 MB of small blocks, then free: far past the 64 KB watermark, so
  // releases must decommit.
  std::vector<void *> Blocks;
  spike(Alloc, Blocks, 4096);
  freeAll(Alloc, Blocks);

  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_GT(Snap.Space.DecommitCalls, 0u)
      << "no pages went back to the OS despite the watermark";
  EXPECT_GT(Snap.Space.BytesDecommitted, 0u);
  EXPECT_GT(Snap.DecommittedSuperblocks, 0u);
  EXPECT_EQ(Snap.RetainMaxBytes, Opts.RetainMaxBytes);

  // Decommitted superblocks must come back as usable memory.
  spike(Alloc, Blocks, 4096);
  freeAll(Alloc, Blocks);
  std::string Msg;
  EXPECT_TRUE(Alloc.debugValidate(&Msg)) << Msg;
}

TEST(MemoryReturn, ExplicitTrimParksHyperblocksAndReports) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  LFAllocator Alloc(Opts);

  std::vector<void *> Blocks;
  spike(Alloc, Blocks, 8192); // ~8 MB: several hyperblocks.
  freeAll(Alloc, Blocks);

  const std::uint64_t CachedBefore =
      Alloc.metricsSnapshot().CachedSuperblocks;
  EXPECT_GT(CachedBefore, 0u);

  const std::size_t Released = Alloc.releaseMemory(0);
  EXPECT_GT(Released, 0u) << "a full cache must release something";

  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_GT(Snap.ParkedHyperblocks, 0u)
      << "fully-free hyperblocks should be parked, not kept hot";
  if (Snap.TelemetryCompiled && Snap.StatsEnabled) {
    EXPECT_GT(Snap.counter(telemetry::Counter::HyperblockParks), 0u);
  }

  // Idempotence: a second trim on the emptied cache releases ~nothing.
  EXPECT_EQ(Alloc.releaseMemory(0), 0u);

  // Parked hyperblocks must unpark and serve the next spike.
  spike(Alloc, Blocks, 8192);
  freeAll(Alloc, Blocks);
  std::string Msg;
  EXPECT_TRUE(Alloc.debugValidate(&Msg)) << Msg;
}

TEST(MemoryReturn, TrimHonorsKeepBytes) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  LFAllocator Alloc(Opts);

  std::vector<void *> Blocks;
  spike(Alloc, Blocks, 8192);
  freeAll(Alloc, Blocks);

  const std::size_t Keep = 2 * Opts.HyperblockSize;
  Alloc.releaseMemory(Keep);

  // The keep budget stays committed: cached minus decommitted covers it.
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  const std::uint64_t CommittedCached =
      (Snap.CachedSuperblocks - Snap.DecommittedSuperblocks) *
      Opts.SuperblockSize;
  EXPECT_GE(CommittedCached + Opts.SuperblockSize, Keep)
      << "trim released superblocks the keep budget should have spared";
}

TEST(MemoryReturn, DecayTrimsFromAllocatorSlowPaths) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.RetainDecayMs = 10;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);
  EXPECT_EQ(Alloc.retainDecayMs(), 10);

  std::vector<void *> Blocks;
  spike(Alloc, Blocks, 8192);
  freeAll(Alloc, Blocks);

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // Slow-path traffic after the period: a burst bigger than one Active
  // superblock, so acquire()/release() run and notice the elapsed decay.
  spike(Alloc, Blocks, 256);
  freeAll(Alloc, Blocks);

  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_GT(Snap.ParkedHyperblocks + Snap.Space.DecommitCalls, 0u)
      << "decay never trimmed";
  if (Snap.TelemetryCompiled) {
    EXPECT_GT(Snap.counter(telemetry::Counter::TrimRuns), 0u);
  }
}

TEST(MemoryReturn, OomRescueTrimsCacheAndRetries) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);

  // Fill the retained cache, so a rescue has something to give back.
  std::vector<void *> Blocks;
  spike(Alloc, Blocks, 8192);
  freeAll(Alloc, Blocks);

  // Every map attempt fails until the finite budget (covering the whole
  // in-call retry loop) is spent; the rescue's trim-then-retry issues a
  // fresh map call that succeeds.
  Alloc.debugInjectMapFailures(0, 3);
  void *P = Alloc.allocate(1 << 20);
  EXPECT_NE(P, nullptr)
      << "trim-and-retry should have absorbed the map failures";
  Alloc.deallocate(P);
  Alloc.debugInjectMapFailuresAfter(-1);

  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_GE(Snap.Space.MapRetries, 1u);
  if (Snap.TelemetryCompiled) {
    EXPECT_GE(Snap.counter(telemetry::Counter::OomRescues), 1u);
  }
  std::string Msg;
  EXPECT_TRUE(Alloc.debugValidate(&Msg)) << Msg;
}

TEST(MemoryReturn, ExhaustedAllocatorReportsEnomemAndStaysValid) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  LFAllocator Alloc(Opts);
  Alloc.debugInjectMapFailuresAfter(0);

  errno = 0;
  EXPECT_EQ(Alloc.allocate(1 << 20), nullptr);
  EXPECT_EQ(errno, ENOMEM) << "large path must report ENOMEM";

  // The small path eventually needs a fresh superblock; every failure on
  // the way there must read ENOMEM too, never crash.
  void *Last = nullptr;
  std::vector<void *> Small;
  for (int I = 0; I < 100'000; ++I) {
    errno = 0;
    Last = Alloc.allocate(256);
    if (!Last)
      break;
    Small.push_back(Last);
  }
  EXPECT_EQ(Last, nullptr) << "exhaustion never surfaced";
  EXPECT_EQ(errno, ENOMEM) << "small path must report ENOMEM";

  std::string Msg;
  EXPECT_TRUE(Alloc.debugValidate(&Msg))
      << "invariants broken after OOM: " << Msg;

  Alloc.debugInjectMapFailuresAfter(-1);
  void *P = Alloc.allocate(256);
  EXPECT_NE(P, nullptr) << "must recover once memory returns";
  Alloc.deallocate(P);
  freeAll(Alloc, Small);
}

TEST(MemoryReturn, ConcurrentThreadsProgressThroughOomWaves) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 4;
  LFAllocator Alloc(Opts);

  constexpr unsigned Threads = 4;
  std::atomic<bool> Stop{false};
  std::atomic<std::uint64_t> Successes{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&Alloc, &Stop, &Successes, T] {
      std::vector<void *> Mine;
      unsigned Round = 0;
      while (!Stop.load(std::memory_order_relaxed)) {
        void *P = Alloc.allocate(64 + (T * 37 + Round) % 900);
        if (P) {
          Mine.push_back(P);
          Successes.fetch_add(1, std::memory_order_relaxed);
        }
        if (Mine.size() > 64 || (!P && !Mine.empty())) {
          for (void *Q : Mine)
            Alloc.deallocate(Q);
          Mine.clear();
        }
        ++Round;
      }
      for (void *Q : Mine)
        Alloc.deallocate(Q);
    });
  }

  // Waves of total map failure while the workers run: allocation may fail
  // (null), but nothing may crash or wedge, and frees must keep working.
  for (int Wave = 0; Wave < 10; ++Wave) {
    Alloc.debugInjectMapFailuresAfter(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Alloc.debugInjectMapFailuresAfter(-1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  Stop.store(true, std::memory_order_relaxed);
  for (std::thread &W : Workers)
    W.join();

  EXPECT_GT(Successes.load(), 0u);
  std::string Msg;
  EXPECT_TRUE(Alloc.debugValidate(&Msg)) << Msg;
}

TEST(MemoryReturn, RetentionKnobsRoundTripOnInstance) {
  LFAllocator Alloc;
  EXPECT_EQ(Alloc.retainMaxBytes(), ~std::size_t{0});
  EXPECT_EQ(Alloc.retainDecayMs(), -1);
  Alloc.setRetainMaxBytes(1 << 20);
  Alloc.setRetainDecayMs(250);
  EXPECT_EQ(Alloc.retainMaxBytes(), std::size_t{1} << 20);
  EXPECT_EQ(Alloc.retainDecayMs(), 250);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_EQ(Snap.RetainMaxBytes, std::uint64_t{1} << 20);
  EXPECT_EQ(Snap.RetainDecayMs, 250);
}

TEST(OptionsValidate, ClampsOutOfRangeFieldsAndReports) {
  AllocatorOptions Opts;
  Opts.SuperblockSize = 5000;          // Not a power of two.
  Opts.HyperblockSize = 8192;          // Below 4x superblock.
  Opts.NumHeaps = 100'000;             // Above the cap.
  Opts.PartialSlotsPerHeap = 0;        // Below minimum.
  Opts.CreditsLimit = 1000;            // Above MaxCredits.
  Opts.ProfileRateBytes = 0;           // Degenerate sampling rate.
  AllocatorOptions::Diagnostic Diag;
  EXPECT_FALSE(Opts.validate(&Diag));
  EXPECT_TRUE(Diag.Clamped);
  EXPECT_NE(std::strstr(Diag.Text, "SuperblockSize"), nullptr) << Diag.Text;
  EXPECT_EQ(Opts.SuperblockSize, 8192u); // 5000 rounds up to 8192.
  EXPECT_GE(Opts.HyperblockSize, 4 * Opts.SuperblockSize);
  EXPECT_EQ(Opts.NumHeaps, 4096u);
  EXPECT_EQ(Opts.PartialSlotsPerHeap, 1u);
  EXPECT_EQ(Opts.CreditsLimit, MaxCredits);
  EXPECT_EQ(Opts.ProfileRateBytes, 1u);

  // Defaults are valid and untouched.
  AllocatorOptions Good;
  AllocatorOptions::Diagnostic NoDiag;
  EXPECT_TRUE(Good.validate(&NoDiag));
  EXPECT_FALSE(NoDiag.Clamped);
}

TEST(OptionsValidate, ConstructorClampsInsteadOfMisbehaving) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.SuperblockSize = 3000; // Invalid; ctor must clamp, then work.
  Opts.HyperblockSize = 0;
  LFAllocator Alloc(Opts);
  EXPECT_EQ(Alloc.options().SuperblockSize, 4096u);
  void *P = Alloc.allocate(128);
  ASSERT_NE(P, nullptr);
  std::memset(P, 1, 128);
  Alloc.deallocate(P);
}
