//===- tests/heap_topology_test.cpp - Heap-topology inspector tests -------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The topology inspector's contract: a lock-free walk over every
// descriptor ever minted that reports, per size class, superblock counts
// by state, block occupancy (exact at quiescence), occupancy histograms,
// and fragmentation ratios — plus an address-ordered heap map in the JSON
// export. Unlike the profiler, the inspector works in every build
// configuration; only the internal-fragmentation ratios (which need
// request sizes from the sampling profiler) are telemetry-gated.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "profiling/HeapTopology.h"

#include "TestSeed.h"
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace lfm;

namespace {

AllocatorOptions smallOptions() {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;       // One heap: superblock geometry is predictable.
  Opts.HyperblockSize = 0; // No cache quantization; EMPTY goes to the OS.
  return Opts;
}

/// Sum of UsedBlocks across all classes of \p T.
std::uint64_t sumUsed(const profiling::TopologySnapshot &T) {
  std::uint64_t Sum = 0;
  for (unsigned C = 0; C < T.ClassCount; ++C)
    Sum += T.Classes[C].UsedBlocks;
  return Sum;
}

template <typename Fn> std::string captureStream(Fn &&F) {
  char *Buf = nullptr;
  std::size_t Len = 0;
  std::FILE *Mem = open_memstream(&Buf, &Len);
  EXPECT_NE(Mem, nullptr);
  F(Mem);
  std::fclose(Mem);
  std::string S(Buf, Len);
  std::free(Buf);
  return S;
}

bool jsonBalanced(const std::string &S) {
  int Depth = 0;
  bool InString = false, Escaped = false, Closed = false;
  for (char C : S) {
    if (Escaped) {
      Escaped = false;
      continue;
    }
    if (InString) {
      if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (Closed && !std::isspace(static_cast<unsigned char>(C)))
      return false;
    if (C == '"')
      InString = true;
    else if (C == '{' || C == '[')
      ++Depth;
    else if (C == '}' || C == ']') {
      if (--Depth < 0)
        return false;
      if (Depth == 0)
        Closed = true;
    }
  }
  return Depth == 0 && !InString && Closed;
}

} // namespace

TEST(HeapTopology, EmptyAllocatorReportsNothing) {
  LFAllocator Alloc(smallOptions());
  profiling::TopologySnapshot T;
  Alloc.topologySnapshot(T);
  EXPECT_EQ(T.TotalSuperblocks, 0u);
  EXPECT_EQ(T.TotalUsedBlocks, 0u);
  EXPECT_EQ(T.SuperblockBytes, Alloc.options().SuperblockSize);
  EXPECT_GT(T.ClassCount, 0u);
}

TEST(HeapTopology, CountsKnownAllocationPatternExactly) {
  LFAllocator Alloc(smallOptions());
  constexpr std::size_t Payload = 100;
  const unsigned Class = sizeToClass(Payload);
  ASSERT_NE(Class, LargeSizeClass);
  constexpr unsigned N = 37;

  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < N; ++I)
    Ptrs.push_back(Alloc.allocate(Payload));

  profiling::TopologySnapshot T;
  Alloc.topologySnapshot(T);
  const profiling::ClassTopology &CT = T.Classes[Class];
  EXPECT_EQ(CT.BlockSize, classBlockSize(Class));
  EXPECT_EQ(CT.UsedBlocks, N);
  EXPECT_GE(CT.Superblocks, 1u);
  EXPECT_EQ(sumUsed(T), N);
  EXPECT_EQ(T.TotalUsedBlocks, N);

  // Quiescent cross-checks: totals reconcile with the class rows.
  std::uint64_t Sbs = 0, Blocks = 0;
  for (unsigned C = 0; C < T.ClassCount; ++C) {
    Sbs += T.Classes[C].Superblocks;
    Blocks += T.Classes[C].TotalBlocks;
  }
  EXPECT_EQ(Sbs, T.TotalSuperblocks);
  EXPECT_EQ(Blocks, T.TotalBlocks);

  for (void *P : Ptrs)
    Alloc.deallocate(P);
  Alloc.topologySnapshot(T);
  EXPECT_EQ(T.TotalUsedBlocks, 0u);
}

TEST(HeapTopology, FullSuperblocksAreVisible) {
  // FULL superblocks are unreachable from any heap or partial list — only
  // the descriptor-chunk walk can see them. Fill whole superblocks and
  // check they are reported with every block in use.
  LFAllocator Alloc(smallOptions());
  constexpr std::size_t Payload = 2000;
  const unsigned Class = sizeToClass(Payload);
  ASSERT_NE(Class, LargeSizeClass);
  const std::uint32_t BlockSize = classBlockSize(Class);
  const std::uint32_t PerSb = static_cast<std::uint32_t>(
      Alloc.options().SuperblockSize / BlockSize);
  const unsigned N = 3 * PerSb + PerSb / 2;

  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < N; ++I)
    Ptrs.push_back(Alloc.allocate(Payload));

  profiling::TopologySnapshot T;
  Alloc.topologySnapshot(T);
  const profiling::ClassTopology &CT = T.Classes[Class];
  EXPECT_EQ(CT.UsedBlocks, N);
  EXPECT_GE(CT.FullSbs, 2u) << "filled superblocks must appear in the walk";
  EXPECT_GE(CT.Superblocks, 4u);
  EXPECT_EQ(CT.TotalBlocks, CT.Superblocks * PerSb);

  // Occupancy histogram: every superblock lands in exactly one bucket,
  // and the filled ones land in the top (90-100%) bucket.
  std::uint64_t HistSum = 0;
  for (unsigned B = 0; B < profiling::TopoOccBuckets; ++B)
    HistSum += CT.OccHist[B];
  EXPECT_EQ(HistSum, CT.Superblocks);
  EXPECT_GE(CT.OccHist[profiling::TopoOccBuckets - 1], CT.FullSbs);

  // External fragmentation: free half the blocks in an interleaved
  // pattern; used bytes halve while superblock bytes stay, so the ratio
  // must rise.
  const double FragBefore = CT.externalFragRatio(T.SuperblockBytes);
  for (unsigned I = 0; I < N; I += 2) {
    Alloc.deallocate(Ptrs[I]);
    Ptrs[I] = nullptr;
  }
  Alloc.topologySnapshot(T);
  const double FragAfter =
      T.Classes[Class].externalFragRatio(T.SuperblockBytes);
  EXPECT_GT(FragAfter, FragBefore);
  EXPECT_EQ(T.Classes[Class].UsedBlocks, N - (N + 1) / 2);

  for (void *P : Ptrs)
    if (P)
      Alloc.deallocate(P);
}

TEST(HeapTopology, JsonExportIsWellFormedWithOrderedHeapMap) {
  LFAllocator Alloc(smallOptions());
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 200; ++I)
    Ptrs.push_back(Alloc.allocate(48 + (I % 5) * 200));

  const std::string Json =
      captureStream([&](std::FILE *Out) { Alloc.heapTopologyJson(Out); });
  EXPECT_TRUE(jsonBalanced(Json)) << Json.substr(0, 200);
  EXPECT_NE(Json.find("\"lfm-heaptopology-v1\""), std::string::npos);
  EXPECT_NE(Json.find("\"classes\""), std::string::npos);
  EXPECT_NE(Json.find("\"occupancy_hist\""), std::string::npos);
  EXPECT_NE(Json.find("\"heap_map\""), std::string::npos);

  // The heap map must be address-ordered: extract every "addr":"0x..."
  // and check monotonicity.
  std::vector<unsigned long long> Addrs;
  std::size_t Pos = 0;
  while ((Pos = Json.find("\"addr\":\"0x", Pos)) != std::string::npos) {
    Pos += std::strlen("\"addr\":\"0x");
    Addrs.push_back(std::strtoull(Json.c_str() + Pos, nullptr, 16));
  }
  ASSERT_GE(Addrs.size(), 2u) << "expected several mapped superblocks";
  for (std::size_t I = 1; I < Addrs.size(); ++I)
    EXPECT_LT(Addrs[I - 1], Addrs[I]) << "heap map not address-ordered";

  for (void *P : Ptrs)
    Alloc.deallocate(P);
}

TEST(HeapTopology, SuperblockCacheIsReported) {
  // With hyperblock caching on, freeing every block parks EMPTY
  // superblocks in the cache instead of unmapping them.
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  LFAllocator Alloc(Opts);
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 2000; ++I)
    Ptrs.push_back(Alloc.allocate(64));
  for (void *P : Ptrs)
    Alloc.deallocate(P);

  profiling::TopologySnapshot T;
  Alloc.topologySnapshot(T);
  EXPECT_EQ(T.TotalUsedBlocks, 0u);
  EXPECT_GT(T.CachedSuperblocks, 0u);
  EXPECT_GT(T.DescriptorsMinted, 0u);
}

#if LFM_TELEMETRY
TEST(HeapTopology, InternalFragmentationExactUnderFullSampling) {
  // Rate 16 with 100-byte payloads >= 64 * 16 = 1024? No — full sampling
  // needs the payload to dominate the clamped interval, so use rate 1:
  // max interval 64 bytes, every 100-byte allocation samples. Each sample
  // then stands for exactly one object and internal fragmentation is the
  // closed-form 1 - payload/block.
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.HyperblockSize = 0;
  Opts.EnableProfiler = true;
  Opts.ProfileRateBytes = 1;
  Opts.ProfileSeed = test::baseSeed() + 5;
  LFAllocator Alloc(Opts);
  ASSERT_TRUE(Alloc.profilerEnabled());

  constexpr std::size_t Payload = 100;
  const unsigned Class = sizeToClass(Payload);
  const double Expected =
      1.0 - static_cast<double>(Payload) / classBlockSize(Class);

  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 200; ++I)
    Ptrs.push_back(Alloc.allocate(Payload));

  profiling::TopologySnapshot T;
  Alloc.topologySnapshot(T);
  EXPECT_TRUE(T.ProfilerAttached);
  const profiling::ClassTopology &CT = T.Classes[Class];
  EXPECT_EQ(CT.LiveEstReqBytes, 200u * Payload);
  EXPECT_EQ(CT.LiveEstBlockBytes, 200u * classBlockSize(Class));
  EXPECT_NEAR(CT.internalFragRatio(), Expected, 1e-9);
  EXPECT_NEAR(T.internalFragRatio(), Expected, 1e-9);

  for (void *P : Ptrs)
    Alloc.deallocate(P);
  Alloc.topologySnapshot(T);
  EXPECT_EQ(T.Classes[Class].LiveEstReqBytes, 0u);
  EXPECT_NEAR(T.internalFragRatio(), 0.0, 1e-9);
}

TEST(HeapTopology, LargeAllocationsLandInLargeBucket) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.EnableProfiler = true;
  Opts.ProfileRateBytes = 1;
  Opts.ProfileSeed = test::baseSeed() + 6;
  LFAllocator Alloc(Opts);

  void *P = Alloc.allocate(256 * 1024); // Far beyond the class table.
  ASSERT_NE(P, nullptr);
  profiling::TopologySnapshot T;
  Alloc.topologySnapshot(T);
  EXPECT_EQ(T.LargeLiveEstReqBytes, 256u * 1024u);
  EXPECT_GE(T.LargeLiveEstBlockBytes, T.LargeLiveEstReqBytes);
  Alloc.deallocate(P);
  Alloc.topologySnapshot(T);
  EXPECT_EQ(T.LargeLiveEstReqBytes, 0u);
}
#else
TEST(HeapTopology, WorksWithoutTelemetry) {
  // The inspector is not telemetry-gated; only internal fragmentation
  // (profiler-fed) is absent.
  LFAllocator Alloc(smallOptions());
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 100; ++I)
    Ptrs.push_back(Alloc.allocate(256));
  profiling::TopologySnapshot T;
  Alloc.topologySnapshot(T);
  EXPECT_EQ(T.TotalUsedBlocks, 100u);
  EXPECT_FALSE(T.ProfilerAttached);
  EXPECT_EQ(T.internalFragRatio(), 0.0);
  for (void *P : Ptrs)
    Alloc.deallocate(P);
}
#endif // LFM_TELEMETRY
