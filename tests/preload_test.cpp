//===- tests/preload_test.cpp - LD_PRELOAD shim smoke tests ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Runs real programs with liblfmalloc_preload.so interposed over malloc:
// every allocation they make goes through the lock-free allocator. The
// library path arrives via the LFM_PRELOAD_LIB environment variable set
// by CTest.
//
//===----------------------------------------------------------------------===//

#include "harness/ReplayWorkload.h"
#include "telemetry/TelemetryConfig.h"
#include "trace/TraceConfig.h"
#include "trace/TraceReader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

/// Runs \p Command under the preload shim; \returns the exit status.
int runPreloaded(const std::string &Command) {
  const char *Lib = std::getenv("LFM_PRELOAD_LIB");
  if (!Lib)
    return -1;
  const std::string Full =
      "LD_PRELOAD=" + std::string(Lib) + " " + Command;
  return std::system(Full.c_str());
}

bool shimAvailable() { return std::getenv("LFM_PRELOAD_LIB") != nullptr; }

/// The helper binary (tests/preload_probe.cpp) CTest points us at; the
/// profiler smoke tests need a cooperative program, not /bin/ls.
const char *probePath() { return std::getenv("LFM_PRELOAD_PROBE"); }

std::string slurp(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return {};
  std::string S;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    S.append(Buf, N);
  std::fclose(F);
  return S;
}

} // namespace

TEST(Preload, LsRunsOnLockFreeMalloc) {
  if (!shimAvailable())
    GTEST_SKIP() << "LFM_PRELOAD_LIB not set";
  EXPECT_EQ(runPreloaded("/bin/ls / > /dev/null"), 0);
}

TEST(Preload, ShellPipelineRunsOnLockFreeMalloc) {
  if (!shimAvailable())
    GTEST_SKIP() << "LFM_PRELOAD_LIB not set";
  // sort and uniq allocate heavily (lines, buffers).
  EXPECT_EQ(runPreloaded("/bin/sh -c 'ls /usr/lib | sort | uniq -c | "
                         "head -50' > /dev/null"),
            0);
}

TEST(Preload, AllocationHeavyToolSurvives) {
  if (!shimAvailable())
    GTEST_SKIP() << "LFM_PRELOAD_LIB not set";
  // sort of a generated stream: thousands of variable-length lines.
  EXPECT_EQ(
      runPreloaded("/bin/sh -c 'seq 1 20000 | sort -R | sort -n | "
                   "tail -1' | grep -q 20000"),
      0);
}

TEST(Preload, MallocTrimReturnsSpikeRss) {
  if (!shimAvailable() || !probePath())
    GTEST_SKIP() << "LFM_PRELOAD_LIB / LFM_PRELOAD_PROBE not set";
  // The probe spikes ~64 MB of small blocks, frees them (the shim retains
  // every empty superblock by default), then calls glibc's malloc_trim —
  // interposed onto lf_malloc_trim. At least half the retained spike must
  // leave the resident set.
  const std::string Out = "./preload_trim_rss.out";
  ASSERT_EQ(runPreloaded(std::string(probePath()) + " trim-rss > " + Out),
            0);
  const std::string Text = slurp(Out);
  std::remove(Out.c_str());
  unsigned long long Spike = 0, Trimmed = 0;
  ASSERT_EQ(std::sscanf(Text.c_str(), "rss_spike=%llu rss_trimmed=%llu",
                        &Spike, &Trimmed),
            2)
      << Text;
  ASSERT_GT(Spike, 64ull * 1024 * 1024) << "spike never became resident";
  EXPECT_LT(Trimmed, Spike / 2)
      << "malloc_trim returned too little: spike=" << Spike
      << " trimmed=" << Trimmed;
}

TEST(Preload, MallocReturnsEnomemUnderFailMap) {
  if (!shimAvailable() || !probePath())
    GTEST_SKIP() << "LFM_PRELOAD_LIB / LFM_PRELOAD_PROBE not set";
  // LFM_FAIL_MAP=48 arms the shim's allocator to refuse OS maps after 48
  // more succeed. The probe then allocates 1 MB blocks until malloc fails
  // and exits 0 only if the failure surfaced as null + errno == ENOMEM
  // (exit 3: never failed, 4: wrong errno). The buddy leg pins the span
  // size to the 8 MiB minimum so the probe's 256 MB of demand actually
  // exhausts spans and hits the injected reserve/map failures; the os leg
  // maps per block and trips the injection directly.
  EXPECT_EQ(runPreloaded("env LFM_FAIL_MAP=48 LFM_BUDDY_SPAN_BYTES=8388608 " +
                         std::string(probePath()) + " oom-enomem > /dev/null"),
            0);
  EXPECT_EQ(runPreloaded("env LFM_FAIL_MAP=48 LFM_LARGE_BACKEND=os " +
                         std::string(probePath()) + " oom-enomem > /dev/null"),
            0);
}

TEST(Preload, MallocInfoEmitsLfmallocXml) {
  if (!shimAvailable() || !probePath())
    GTEST_SKIP() << "LFM_PRELOAD_LIB / LFM_PRELOAD_PROBE not set";
  // malloc_info(0, stderr) through the shim must emit our XML dialect —
  // proof the call was interposed and the topology walk ran.
  const std::string Err = "./preload_malloc_info.err";
  ASSERT_EQ(runPreloaded(std::string(probePath()) + " malloc-info 2> " +
                         Err),
            0);
  const std::string Xml = slurp(Err);
  std::remove(Err.c_str());
  EXPECT_NE(Xml.find("<malloc version=\"lfmalloc-1\">"), std::string::npos)
      << Xml.substr(0, 200);
  EXPECT_NE(Xml.find("</malloc>"), std::string::npos);
  EXPECT_NE(Xml.find("<heap "), std::string::npos);
}

TEST(Preload, AtexitLeakReportAppearsOnStderr) {
  if (!shimAvailable() || !probePath())
    GTEST_SKIP() << "LFM_PRELOAD_LIB / LFM_PRELOAD_PROBE not set";
  // LFM_LEAK_REPORT=1 makes the shim register the leak report with
  // atexit; the probe leaks ~200 KB on purpose. In no-telemetry builds
  // the report still appears but states the profiler is off.
  const std::string Err = "./preload_leak_report.err";
  ASSERT_EQ(runPreloaded("env LFM_LEAK_REPORT=1 LFM_PROFILE=1 "
                         "LFM_PROFILE_RATE=4096 " +
                         std::string(probePath()) + " churn 2> " + Err),
            0);
  const std::string Report = slurp(Err);
  std::remove(Err.c_str());
  EXPECT_NE(Report.find("lfm-leak-report"), std::string::npos)
      << Report.substr(0, 200);
#if LFM_TELEMETRY
  // ~200 KB leaked at rate 4096: the surviving estimate cannot read zero.
  EXPECT_EQ(Report.find("lfm-leak-report: 0 objects"), std::string::npos)
      << Report.substr(0, 200);
  EXPECT_NE(Report.find("leak: "), std::string::npos)
      << Report.substr(0, 400);
#else
  EXPECT_NE(Report.find("profiler off"), std::string::npos)
      << Report.substr(0, 200);
#endif
}

TEST(Preload, BackgroundExporterPublishesArtifacts) {
  if (!shimAvailable() || !probePath())
    GTEST_SKIP() << "LFM_PRELOAD_LIB / LFM_PRELOAD_PROBE not set";
  // LFM_STATS_INTERVAL_MS starts the exporter thread inside the shim; the
  // probe's wait mode simply polls for the atomically-renamed .prom
  // artifact, so no signalling is involved. Works in every build: the
  // counter families exist with or without telemetry.
  std::system("rm -f ./preload-exp.prom ./preload-exp.metrics.json "
              "./preload-exp.*.prom");
  ASSERT_EQ(runPreloaded("env LFM_STATS_INTERVAL_MS=20 LFM_LATENCY_SAMPLE=8 "
                         "LFM_STATS_PREFIX=./preload-exp " +
                         std::string(probePath()) +
                         " wait-usr2 ./preload-exp.prom > /dev/null"),
            0);
  const std::string Prom = slurp("./preload-exp.prom");
  EXPECT_EQ(Prom.rfind("# HELP ", 0), 0u) << Prom.substr(0, 120);
  EXPECT_NE(Prom.find("lf_malloc_mallocs_total"), std::string::npos);
  const std::string Json = slurp("./preload-exp.metrics.json");
  EXPECT_NE(Json.find("\"schema\":\"lfm-metrics-v5\""), std::string::npos)
      << Json.substr(0, 120);
  std::system("rm -f ./preload-exp.prom ./preload-exp.metrics.json "
              "./preload-exp.*.prom");
}

#if LFM_ALLOC_TRACE
TEST(Preload, FlightRecorderCapturesRealBinaryAndReplays) {
  if (!shimAvailable() || !probePath())
    GTEST_SKIP() << "LFM_PRELOAD_LIB / LFM_PRELOAD_PROBE not set";
  // LFM_TRACE_RECORD makes the shim flight-record the probe's entire
  // lifetime; the recorder's atexit hook publishes the file at exit. The
  // churn mode mallocs/frees tens of thousands of blocks, so the artifact
  // must decode to a substantial trace — and replay cleanly against the
  // lock-free allocator with the recorded op counts.
  const std::string Path = "./preload-rec.trace";
  std::remove(Path.c_str());
  std::remove((Path + ".tmp").c_str());
  ASSERT_EQ(runPreloaded("env LFM_TRACE_RECORD=" + Path + " " +
                         std::string(probePath()) + " churn > /dev/null"),
            0);
  const lfm::trace::TraceFile F = lfm::trace::readTraceFile(Path.c_str());
  ASSERT_EQ(F.Status, lfm::trace::ReadStatus::Ok) << F.Error;
  EXPECT_GT(F.TotalOps, 10'000u) << "churn records tens of thousands of ops";
  ASSERT_FALSE(F.Threads.empty());

  const lfm::trace::ReplayPlan Plan = lfm::trace::buildReplayPlan(F);
  EXPECT_GT(Plan.TotalAllocs, 0u);
  auto Alloc = lfm::makeAllocator(lfm::AllocatorKind::LockFree,
                                  static_cast<unsigned>(F.Threads.size()));
  const lfm::RecordedReplayResult R = lfm::replayRecorded(*Alloc, Plan, 0);
  EXPECT_EQ(R.Allocs, Plan.TotalAllocs);
  EXPECT_EQ(R.Frees, Plan.TotalFrees);
  EXPECT_EQ(R.FailedAllocs, 0u);
  std::remove(Path.c_str());
}
#endif // LFM_ALLOC_TRACE

#if LFM_TELEMETRY
TEST(Preload, AtexitLatencyDumpRidesOnLeakReport) {
  if (!shimAvailable() || !probePath())
    GTEST_SKIP() << "LFM_PRELOAD_LIB / LFM_PRELOAD_PROBE not set";
  // LFM_LEAK_REPORT registers the atexit hook; with latency sampling live
  // the exit path also writes the sequenced Prometheus exposition.
  std::system("rm -f ./preload-exit.*.prom");
  ASSERT_EQ(runPreloaded("env LFM_LEAK_REPORT=1 LFM_LATENCY_SAMPLE=1 "
                         "LFM_STATS_PREFIX=./preload-exit " +
                         std::string(probePath()) + " churn 2> /dev/null"),
            0);
  const std::string Prom = slurp("./preload-exit.0000.prom");
  std::system("rm -f ./preload-exit.*.prom");
  ASSERT_FALSE(Prom.empty()) << "atexit path wrote no .prom dump";
  EXPECT_EQ(Prom.rfind("# HELP ", 0), 0u) << Prom.substr(0, 120);
  EXPECT_NE(Prom.find("lf_malloc_latency_ns_bucket"), std::string::npos);
  EXPECT_NE(Prom.find("le=\"+Inf\""), std::string::npos);
}

TEST(Preload, Sigusr2DumpsParseablePrometheus) {
  if (!shimAvailable() || !probePath())
    GTEST_SKIP() << "LFM_PRELOAD_LIB / LFM_PRELOAD_PROBE not set";
  const char *Lib = std::getenv("LFM_PRELOAD_LIB");
  // Latency sampling alone (no profiler) must install the SIGUSR2 handler
  // and the dump must be a parseable exposition with histogram series.
  const std::string Script =
      "rm -f ./preload-lat.*.prom ./preload_lat.out; "
      "LD_PRELOAD=" + std::string(Lib) +
      " LFM_LATENCY_SAMPLE=1"
      " LFM_STATS_PREFIX=./preload-lat " +
      probePath() +
      " wait-usr2 ./preload-lat.0000.prom > ./preload_lat.out & "
      "pid=$!; "
      "n=0; while [ $n -lt 100 ]; do "
      "grep -q ready ./preload_lat.out 2>/dev/null && break; "
      "sleep 0.05; n=$((n+1)); done; "
      "kill -USR2 $pid; wait $pid";
  ASSERT_EQ(std::system(("/bin/sh -c '" + Script + "'").c_str()), 0);
  const std::string Dump = slurp("./preload-lat.0000.prom");
  std::remove("./preload-lat.0000.prom");
  std::remove("./preload_lat.out");
  EXPECT_EQ(Dump.rfind("# HELP ", 0), 0u) << Dump.substr(0, 120);
  EXPECT_NE(Dump.find("# TYPE lf_malloc_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(Dump.find("lf_malloc_latency_ns_bucket{path=\"malloc_"),
            std::string::npos);
  EXPECT_NE(Dump.find("lf_malloc_latency_ns_count{path=\"free_small\"}"),
            std::string::npos);
}

TEST(Preload, Sigusr2DumpsParseableHeapProfile) {
  if (!shimAvailable() || !probePath())
    GTEST_SKIP() << "LFM_PRELOAD_LIB / LFM_PRELOAD_PROBE not set";
  const char *Lib = std::getenv("LFM_PRELOAD_LIB");
  // The probe churns, prints "ready", and then waits for the dump file
  // the shim's SIGUSR2 handler writes; the script signals it after the
  // ready line. The probe exits 0 only once the file exists.
  const std::string Script =
      "rm -f ./preload-usr2.*.heap ./preload_usr2.out; "
      "LD_PRELOAD=" + std::string(Lib) +
      " LFM_PROFILE=1 LFM_PROFILE_RATE=4096"
      " LFM_PROFILE_DUMP=./preload-usr2 " +
      probePath() +
      " wait-usr2 ./preload-usr2.0000.heap > ./preload_usr2.out & "
      "pid=$!; "
      "n=0; while [ $n -lt 100 ]; do "
      "grep -q ready ./preload_usr2.out 2>/dev/null && break; "
      "sleep 0.05; n=$((n+1)); done; "
      "kill -USR2 $pid; wait $pid";
  ASSERT_EQ(std::system(("/bin/sh -c '" + Script + "'").c_str()), 0);
  const std::string Dump = slurp("./preload-usr2.0000.heap");
  std::remove("./preload-usr2.0000.heap");
  std::remove("./preload_usr2.out");
  EXPECT_EQ(Dump.rfind("heap profile: ", 0), 0u)
      << Dump.substr(0, 120);
  EXPECT_NE(Dump.find("@ heap_v2/4096"), std::string::npos);
  EXPECT_NE(Dump.find("MAPPED_LIBRARIES:"), std::string::npos);
}
#endif // LFM_TELEMETRY
