//===- tests/preload_test.cpp - LD_PRELOAD shim smoke tests ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Runs real programs with liblfmalloc_preload.so interposed over malloc:
// every allocation they make goes through the lock-free allocator. The
// library path arrives via the LFM_PRELOAD_LIB environment variable set
// by CTest.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

/// Runs \p Command under the preload shim; \returns the exit status.
int runPreloaded(const std::string &Command) {
  const char *Lib = std::getenv("LFM_PRELOAD_LIB");
  if (!Lib)
    return -1;
  const std::string Full =
      "LD_PRELOAD=" + std::string(Lib) + " " + Command;
  return std::system(Full.c_str());
}

bool shimAvailable() { return std::getenv("LFM_PRELOAD_LIB") != nullptr; }

} // namespace

TEST(Preload, LsRunsOnLockFreeMalloc) {
  if (!shimAvailable())
    GTEST_SKIP() << "LFM_PRELOAD_LIB not set";
  EXPECT_EQ(runPreloaded("/bin/ls / > /dev/null"), 0);
}

TEST(Preload, ShellPipelineRunsOnLockFreeMalloc) {
  if (!shimAvailable())
    GTEST_SKIP() << "LFM_PRELOAD_LIB not set";
  // sort and uniq allocate heavily (lines, buffers).
  EXPECT_EQ(runPreloaded("/bin/sh -c 'ls /usr/lib | sort | uniq -c | "
                         "head -50' > /dev/null"),
            0);
}

TEST(Preload, AllocationHeavyToolSurvives) {
  if (!shimAvailable())
    GTEST_SKIP() << "LFM_PRELOAD_LIB not set";
  // sort of a generated stream: thousands of variable-length lines.
  EXPECT_EQ(
      runPreloaded("/bin/sh -c 'seq 1 20000 | sort -R | sort -n | "
                   "tail -1' | grep -q 20000"),
      0);
}
