//===- tests/contention_test.cpp - CAS contention observability -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Covers the contention-and-progress layer bottom-up: the deterministic
// countdown sampler (seeded from LFM_TEST_SEED), per-site retry and
// time-in-loop filing, the CAS-claimed heat table's exact overflow
// accounting (dropped counters, never silent), the progress watchdog's
// storm/stall verdicts, and the allocator-level wiring seen through
// metricsSnapshot(), metricsJson() and the contention.* ctl keys. A
// sched-gated scenario forces a real retry storm in free()'s anchor-push
// loop and requires the watchdog to catch the thread in the act.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/LFMalloc.h"
#include "lfmalloc/SizeClasses.h"
#include "telemetry/ContentionSite.h"
#include "telemetry/MetricsSnapshot.h"
#include "telemetry/TelemetryConfig.h"
#if LFM_TELEMETRY
#include "telemetry/ContentionRecorder.h"
#endif
#if LFM_SCHED_TEST
#include "schedtest/ScheduleController.h"
#endif

#include "TestSeed.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lfm;
using telemetry::ContentionSite;

namespace {

/// Slurps one of the allocator's FILE* dump methods into a string.
std::string capture(LFAllocator &Alloc,
                    void (LFAllocator::*Dump)(std::FILE *) const) {
  std::FILE *F = std::tmpfile();
  EXPECT_NE(F, nullptr);
  (Alloc.*Dump)(F);
  std::rewind(F);
  std::string Out;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// ContentionRecorder: deterministic sampling
//===----------------------------------------------------------------------===//

#if LFM_TELEMETRY

using telemetry::ContentionRecorder;

namespace {

/// Drives \p N loopBegin() gates on a fresh recorder and returns the
/// index of every gate that sampled (single-threaded, so the gap sequence
/// is exactly the thread slot's seeded xorshift draw).
std::vector<unsigned> sampledLoops(std::uint64_t Period, std::uint64_t Seed,
                                   unsigned N) {
  ContentionRecorder Rec({Period, Seed});
  std::vector<unsigned> Out;
  for (unsigned I = 0; I < N; ++I) {
    const std::uint64_t Start = Rec.loopBegin();
    if (Start != 0) {
      Out.push_back(I);
      Rec.loopEnd(ContentionSite::ActiveReserve, Start, 1,
                  ContentionRecorder::NoClass, nullptr);
    }
  }
  return Out;
}

} // namespace

TEST(ContentionRecorder, SameSeedSameSchedule) {
  const std::uint64_t Seed = test::baseSeed();
  const auto A = sampledLoops(8, Seed, 4000);
  const auto B = sampledLoops(8, Seed, 4000);
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(A, B) << "sampling schedule must be a pure function of the seed";
  // Mean gap ~8: the sample count lands within a loose 3x band.
  EXPECT_GT(A.size(), 4000u / 24);
  EXPECT_LT(A.size(), 4000u * 3 / 8);
}

TEST(ContentionRecorder, DifferentSeedsDiverge) {
  const std::uint64_t Seed = test::baseSeed();
  EXPECT_NE(sampledLoops(8, Seed, 4000), sampledLoops(8, Seed + 1, 4000));
}

TEST(ContentionRecorder, PeriodOneSamplesEveryLoop) {
  ContentionRecorder Rec({1, test::baseSeed()});
  ASSERT_TRUE(Rec.enabled());
  for (unsigned I = 0; I < 300; ++I) {
    const std::uint64_t Start = Rec.loopBegin();
    ASSERT_NE(Start, 0u) << "period 1 must sample every loop";
    Rec.loopEnd(ContentionSite::FreePush, Start, 1, 2, nullptr);
  }
  EXPECT_EQ(Rec.samples(), 300u);
  telemetry::LatencyHistogramSnapshot Snap;
  Rec.snapshotRetries(ContentionSite::FreePush, Snap);
  EXPECT_EQ(Snap.Count, 300u);
  EXPECT_EQ(Snap.SumNs, 0u) << "attempts 1 = zero retries";
}

TEST(ContentionRecorder, PeriodZeroWithoutWatchdogIsFullyDisabled) {
  ContentionRecorder Rec({0, 0});
  EXPECT_FALSE(Rec.enabled());
  EXPECT_FALSE(Rec.watchdogArmed());
  EXPECT_EQ(Rec.loopBegin(), 0u);
  EXPECT_EQ(Rec.samples(), 0u);
  EXPECT_EQ(Rec.heatEntries(), 0u);
  const telemetry::WatchdogReport Rep = Rec.watchdogScan(-1);
  EXPECT_EQ(Rep.BusySlots, 0u);
  EXPECT_EQ(Rec.watchdogScans(), 0u);
}

TEST(ContentionRecorder, WatchdogOnlyModeNeverSamples) {
  ContentionRecorder::Options O;
  O.SamplePeriod = 0;
  O.Watchdog = true;
  ContentionRecorder Rec(O);
  ASSERT_TRUE(Rec.enabled()) << "watchdog-only mode maps the tables";
  EXPECT_TRUE(Rec.watchdogArmed());
  for (unsigned I = 0; I < 10000; ++I)
    ASSERT_EQ(Rec.loopBegin(), 0u);
  EXPECT_EQ(Rec.samples(), 0u);
}

//===----------------------------------------------------------------------===//
// Per-site filing and class attribution
//===----------------------------------------------------------------------===//

TEST(ContentionRecorder, RecordSampleFilesRetriesLoopNsAndClass) {
  ContentionRecorder Rec({1, 0});
  Rec.recordSample(ContentionSite::ActivePop, 3, 500, 4, nullptr);
  Rec.recordSample(ContentionSite::ActivePop, 0, 40, 4, nullptr);
  Rec.recordSample(ContentionSite::DescPop, 2, 900,
                   ContentionRecorder::NoClass, nullptr);

  telemetry::LatencyHistogramSnapshot Retries, LoopNs;
  Rec.snapshotRetries(ContentionSite::ActivePop, Retries);
  Rec.snapshotLoopNs(ContentionSite::ActivePop, LoopNs);
  EXPECT_EQ(Retries.Count, 2u);
  EXPECT_EQ(Retries.SumNs, 3u); // The "ns" of this histogram is retries.
  EXPECT_EQ(Retries.MaxNs, 3u);
  EXPECT_EQ(LoopNs.Count, 2u);
  EXPECT_EQ(LoopNs.SumNs, 540u);
  EXPECT_EQ(LoopNs.MaxNs, 500u);

  // Retry mass lands on the size class; NoClass (and anything out of
  // range) shares the beyond-class bucket. Zero-retry samples attribute
  // nothing.
  EXPECT_EQ(Rec.classRetries(4), 3u);
  EXPECT_EQ(Rec.classRetries(NumSizeClasses), 2u);
  std::uint64_t Total = 0;
  for (unsigned C = 0; C < telemetry::NumContentionClasses; ++C)
    Total += Rec.classRetries(C);
  EXPECT_EQ(Total, 5u);
  EXPECT_EQ(Rec.samples(), 3u);
}

TEST(ContentionRecorder, RetriesUpToSevenAreExactSingletonBuckets) {
  // LogBuckets keeps 0..7 as exact singletons, so small retry counts — the
  // overwhelmingly common case — report exact p50/p99 bounds.
  ContentionRecorder Rec({1, 0});
  for (std::uint64_t R = 0; R <= 7; ++R)
    Rec.recordSample(ContentionSite::UpdateActive, R, 10, 0, nullptr);
  telemetry::LatencyHistogramSnapshot Snap;
  Rec.snapshotRetries(ContentionSite::UpdateActive, Snap);
  ASSERT_EQ(Snap.Count, 8u);
  // Singleton buckets: the [lower, upper) bracket pins each count to one
  // exact retry value.
  EXPECT_EQ(Snap.quantileLowerNs(0.0), 0u);
  EXPECT_EQ(Snap.quantileUpperNs(0.0), 1u);
  EXPECT_EQ(Snap.quantileLowerNs(1.0), 7u);
  EXPECT_EQ(Snap.quantileUpperNs(1.0), 8u);
}

//===----------------------------------------------------------------------===//
// Heat table: attribution and exact overflow accounting
//===----------------------------------------------------------------------===//

TEST(ContentionHeat, TopKOrdersByRetryMass) {
  ContentionRecorder Rec({1, 0});
  // Three fabricated superblock addresses with distinct retry mass.
  const char *Base = reinterpret_cast<const char *>(std::uintptr_t{1} << 20);
  Rec.recordSample(ContentionSite::FreePush, 10, 50, 3, Base);
  Rec.recordSample(ContentionSite::FreePush, 200, 50, 5, Base + 64);
  Rec.recordSample(ContentionSite::FreePush, 40, 50, 3, Base + 128);
  Rec.recordSample(ContentionSite::FreePush, 5, 50, 3, Base); // accumulate

  EXPECT_EQ(Rec.heatEntries(), 3u);
  EXPECT_EQ(Rec.heatDropped(), 0u);
  telemetry::ContentionHeatEntry Top[telemetry::ContentionTopK];
  const unsigned N = Rec.topHeat(Top, telemetry::ContentionTopK);
  ASSERT_EQ(N, 3u);
  EXPECT_EQ(Top[0].Sb, reinterpret_cast<std::uint64_t>(Base + 64));
  EXPECT_EQ(Top[0].Retries, 200u);
  EXPECT_EQ(Top[0].Class, 5u);
  EXPECT_EQ(Top[1].Sb, reinterpret_cast<std::uint64_t>(Base + 128));
  EXPECT_EQ(Top[2].Sb, reinterpret_cast<std::uint64_t>(Base));
  EXPECT_EQ(Top[2].Retries, 15u) << "same-superblock mass must accumulate";
}

TEST(ContentionHeat, OverflowIsAccountedNeverSilent) {
  ContentionRecorder::Options O;
  O.SamplePeriod = 1;
  O.HeatCapacity = 1; // Clamped up to the 64-slot floor.
  ContentionRecorder Rec(O);
  ASSERT_EQ(Rec.heatCapacity(), 64u);

  // Distinct keys never accumulate, so every attribution either claims a
  // fresh slot or drops: entries + dropped must equal inserts exactly.
  constexpr unsigned Inserts = 4096;
  const char *Base = reinterpret_cast<const char *>(std::uintptr_t{1} << 24);
  for (unsigned I = 0; I < Inserts; ++I)
    Rec.recordSample(ContentionSite::FreePush, 1, 10, 0, Base + 64 * I);
  EXPECT_LE(Rec.heatEntries(), 64u);
  EXPECT_GT(Rec.heatDropped(), 0u);
  EXPECT_EQ(Rec.heatEntries() + Rec.heatDropped(), Inserts)
      << "heat-table overflow must be accounted one-for-one";
  // topHeat caps at K even with a full table.
  telemetry::ContentionHeatEntry Top[telemetry::ContentionTopK];
  EXPECT_EQ(Rec.topHeat(Top, telemetry::ContentionTopK),
            telemetry::ContentionTopK);
}

//===----------------------------------------------------------------------===//
// Progress watchdog: storm and stall verdicts
//===----------------------------------------------------------------------===//

namespace {

/// A cooperating "stuck" thread the watchdog tests catch in the act: runs
/// \p Action under a simple step handshake so the main thread scans while
/// the slot is provably published.
class SlotHolder {
public:
  explicit SlotHolder(ContentionRecorder &Rec) : Rec(Rec) {
    Worker = std::thread([this] { run(); });
  }
  ~SlotHolder() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Quit = true;
      Pending = nullptr;
    }
    Cv.notify_all();
    Worker.join();
  }

  /// Runs \p F on the worker thread and waits for it to finish.
  template <typename Fn> void exec(Fn &&F) {
    std::unique_lock<std::mutex> Lock(M);
    Fn Local = std::forward<Fn>(F);
    Pending = [&Local] { Local(); };
    Cv.notify_all();
    Cv.wait(Lock, [this] { return Pending == nullptr; });
  }

  ContentionRecorder &Rec;

private:
  void run() {
    std::unique_lock<std::mutex> Lock(M);
    for (;;) {
      Cv.wait(Lock, [this] { return Pending != nullptr || Quit; });
      if (Quit)
        return;
      Pending();
      Pending = nullptr;
      Cv.notify_all();
    }
  }

  std::thread Worker;
  std::mutex M;
  std::condition_variable Cv;
  std::function<void()> Pending;
  bool Quit = false;
};

ContentionRecorder::Options watchdogOptions() {
  ContentionRecorder::Options O;
  O.SamplePeriod = 0;
  O.Watchdog = true;
  O.StallMs = 1;        // Tick 1 is ancient: age checks pass immediately.
  O.StormRetries = 8;   // Low bar so tests reach it deterministically.
  return O;
}

} // namespace

TEST(ContentionWatchdog, StormFlagsPathologicalAttemptCounts) {
  ContentionRecorder Rec(watchdogOptions());
  SlotHolder Holder(Rec);
  Holder.exec([&] { Rec.retryTick(ContentionSite::FreePush, 20, 1); });

  const telemetry::WatchdogReport Rep = Rec.watchdogScan(-1);
  EXPECT_EQ(Rep.BusySlots, 1u);
  EXPECT_EQ(Rep.Storms, 1u) << "attempts past the limit is a storm, "
                               "regardless of age";
  EXPECT_EQ(Rep.Stalls, 0u);
  EXPECT_EQ(Rec.watchdogStorms(), 1u);
  EXPECT_EQ(Rec.watchdogScans(), 1u);

  Holder.exec([&] { Rec.retryDone(); });
  const telemetry::WatchdogReport After = Rec.watchdogScan(-1);
  EXPECT_EQ(After.BusySlots, 0u);
  EXPECT_EQ(After.Storms, 0u);
}

TEST(ContentionWatchdog, StallNeedsTwoScansToProveTheCountFroze) {
  ContentionRecorder Rec(watchdogOptions());
  SlotHolder Holder(Rec);
  // Below the storm limit, tick 1 = older than StallNs immediately.
  Holder.exec([&] { Rec.retryTick(ContentionSite::ActiveReserve, 2, 1); });

  // First scan: the attempt count moved since the (empty) last scan, so
  // the slot reads as a storm — threads running but not succeeding.
  const telemetry::WatchdogReport First = Rec.watchdogScan(-1);
  EXPECT_EQ(First.BusySlots, 1u);
  EXPECT_EQ(First.Storms, 1u);
  // Second scan with no progress in between: the count froze mid-loop —
  // a stalled operation (descheduled or killed; per the paper's progress
  // guarantee it must not have wedged anyone else).
  const telemetry::WatchdogReport Second = Rec.watchdogScan(-1);
  EXPECT_EQ(Second.BusySlots, 1u);
  EXPECT_EQ(Second.Stalls, 1u);
  EXPECT_EQ(Second.Storms, 0u);
  EXPECT_EQ(Rec.watchdogStalls(), 1u);

  Holder.exec([&] { Rec.retryDone(); });
}

TEST(ContentionWatchdog, DiagnosisWritesSiteAndVerdict) {
  ContentionRecorder Rec(watchdogOptions());
  SlotHolder Holder(Rec);
  Holder.exec([&] { Rec.retryTick(ContentionSite::MsqDequeue, 50, 1); });

  char Path[] = "/tmp/lfm_watchdog_diag_XXXXXX";
  const int Fd = ::mkstemp(Path);
  ASSERT_GE(Fd, 0);
  Rec.watchdogScan(Fd);
  ::lseek(Fd, 0, SEEK_SET);
  char Buf[512] = {};
  const ssize_t N = ::read(Fd, Buf, sizeof(Buf) - 1);
  ::close(Fd);
  std::remove(Path);
  ASSERT_GT(N, 0);
  const std::string Diag(Buf);
  EXPECT_NE(Diag.find("lf_malloc watchdog: storm"), std::string::npos)
      << Diag;
  EXPECT_NE(Diag.find("site=msq_dequeue"), std::string::npos) << Diag;
  EXPECT_NE(Diag.find("attempts=50"), std::string::npos) << Diag;

  Holder.exec([&] { Rec.retryDone(); });
}

TEST(ContentionWatchdog, QuiescentLoopsAreNeverFlagged) {
  ContentionRecorder::Options O = watchdogOptions();
  O.SamplePeriod = 1;
  ContentionRecorder Rec(O);
  for (unsigned I = 0; I < 100; ++I) {
    const std::uint64_t Start = Rec.loopBegin();
    ASSERT_NE(Start, 0u);
    Rec.loopEnd(ContentionSite::TreiberPush, Start, 1, 0, nullptr);
  }
  const telemetry::WatchdogReport Rep = Rec.watchdogScan(-1);
  EXPECT_EQ(Rep.BusySlots, 0u);
  EXPECT_EQ(Rep.Stalls + Rep.Storms, 0u);
}

#endif // LFM_TELEMETRY

//===----------------------------------------------------------------------===//
// Allocator integration: metricsSnapshot() and the export surface
//===----------------------------------------------------------------------===//

namespace {

AllocatorOptions contentionOptions() {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  Opts.ContentionSamplePeriod = 1; // Every loop: exact attribution.
  Opts.ContentionSampleSeed = test::baseSeed();
  return Opts;
}

} // namespace

TEST(AllocatorContention, EveryLoopLandsOnExactlyOneSite) {
  LFAllocator Alloc(contentionOptions());
  constexpr unsigned N = 2000;
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < N; ++I)
    Ptrs.push_back(Alloc.allocate(64));
  for (void *P : Ptrs)
    Alloc.deallocate(P);

  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
#if LFM_TELEMETRY
  ASSERT_TRUE(Snap.ContentionEnabled);
  EXPECT_EQ(Snap.ContentionSamplePeriod, 1u);
  // Every sampled loop execution filed under exactly one site.
  std::uint64_t SiteTotal = 0;
  for (unsigned S = 0; S < telemetry::NumContentionSites; ++S)
    SiteTotal += Snap.Contention[S].Count;
  EXPECT_EQ(SiteTotal, Snap.ContentionSamples);
  // free() runs the anchor push loop once per small free.
  const telemetry::ContentionSiteStats &FreePush =
      Snap.Contention[static_cast<unsigned>(ContentionSite::FreePush)];
  EXPECT_GE(FreePush.Count, N);
  EXPECT_GT(FreePush.LoopSumNs, 0u);
  // Every malloc reserved a credit somewhere: the Active word or the
  // partial/new-superblock machinery.
  const std::uint64_t MallocLoops =
      Snap.Contention[static_cast<unsigned>(ContentionSite::ActiveReserve)]
          .Count +
      Snap.Contention[static_cast<unsigned>(ContentionSite::PartialReserve)]
          .Count +
      Snap.Contention[static_cast<unsigned>(ContentionSite::SbAcquire)].Count;
  EXPECT_GE(MallocLoops, N);
  EXPECT_FALSE(Snap.WatchdogArmed);
  EXPECT_EQ(Snap.ContentionHeatCapacity, 512u);
#else
  EXPECT_FALSE(Snap.ContentionEnabled);
  EXPECT_EQ(Snap.ContentionSamples, 0u);
#endif
}

TEST(AllocatorContention, StatsOffMeansNoRecorder) {
  AllocatorOptions Opts;
  Opts.EnableStats = false;
  Opts.ContentionSamplePeriod = 1; // Ignored without stats.
  LFAllocator Alloc(Opts);
  void *P = Alloc.allocate(64);
  Alloc.deallocate(P);
  EXPECT_FALSE(Alloc.contentionEnabled());
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_FALSE(Snap.ContentionEnabled);
  EXPECT_EQ(Snap.ContentionSamplePeriod, 0u);
  EXPECT_EQ(Snap.ContentionSamples, 0u);
}

TEST(AllocatorContention, WatchdogArmsWithoutSampling) {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  Opts.ContentionWatchdog = true; // Period stays 0: watchdog-only mode.
  LFAllocator Alloc(Opts);
  void *P = Alloc.allocate(64);
  Alloc.deallocate(P);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  (void)Snap; // Only inspected in telemetry builds.
#if LFM_TELEMETRY
  EXPECT_TRUE(Alloc.contentionWatchdogArmed());
  EXPECT_TRUE(Snap.WatchdogArmed);
  EXPECT_EQ(Snap.ContentionSamples, 0u) << "watchdog-only mode never samples";
  // An explicit scan over a quiescent allocator flags nothing but counts.
  EXPECT_EQ(Alloc.contentionWatchdogScan(-1), 0u);
  EXPECT_EQ(Alloc.metricsSnapshot().WatchdogScans, 1u);
#else
  EXPECT_FALSE(Alloc.contentionWatchdogArmed());
  EXPECT_EQ(Alloc.contentionWatchdogScan(-1), 0u);
#endif
}

TEST(AllocatorContention, MetricsJsonCarriesTheContentionSection) {
  LFAllocator Alloc(contentionOptions());
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 500; ++I)
    Ptrs.push_back(Alloc.allocate(128));
  for (void *P : Ptrs)
    Alloc.deallocate(P);

  const std::string Json = capture(Alloc, &LFAllocator::metricsJson);
  EXPECT_NE(Json.find("\"schema\":\"lfm-metrics-v5\""), std::string::npos);
  EXPECT_NE(Json.find("\"contention\""), std::string::npos);
  EXPECT_NE(Json.find("\"heat\""), std::string::npos);
  EXPECT_NE(Json.find("\"watchdog\""), std::string::npos);
#if LFM_TELEMETRY
  EXPECT_NE(Json.find("\"enabled\":true"), std::string::npos);
  // Per-site summaries under snake_case site names, sampled or not.
  for (const char *Site :
       {"\"active_reserve\"", "\"active_pop\"", "\"partial_reserve\"",
        "\"partial_pop\"", "\"free_push\"", "\"update_active\"",
        "\"desc_pop\"", "\"desc_push\"", "\"sb_acquire\"",
        "\"treiber_push\"", "\"treiber_pop\"", "\"msq_enqueue\"",
        "\"msq_dequeue\"", "\"tcache_depot_push\"",
        "\"tcache_depot_steal\""})
    EXPECT_NE(Json.find(Site), std::string::npos) << Site;
  EXPECT_NE(Json.find("\"retries_p99\""), std::string::npos);
  EXPECT_NE(Json.find("\"loop_p99_upper_ns\""), std::string::npos);
#endif
}

TEST(AllocatorContention, CtlKeysEchoConfigurationAndScan) {
  // Through the process-default allocator: the keys must resolve with the
  // documented read conventions whatever the environment selected.
  std::uint64_t V = ~std::uint64_t{0};
  size_t Len = sizeof(V);
  ASSERT_EQ(lf_malloc_ctl("contention.enabled", &V, &Len, nullptr, 0), 0);
  EXPECT_LE(V, 1u);
  ASSERT_EQ(lf_malloc_ctl("contention.stall_ms", &V, &Len, nullptr, 0), 0);
  EXPECT_GT(V, 0u) << "default stall threshold must be nonzero";
  ASSERT_EQ(lf_malloc_ctl("contention.storm_retries", &V, &Len, nullptr, 0),
            0);
  EXPECT_GT(V, 0u);
  ASSERT_EQ(lf_malloc_ctl("contention.heat_capacity", &V, &Len, nullptr, 0),
            0);
  // Read-only keys refuse writes with EPERM (the ctl convention).
  std::uint64_t In = 7;
  EXPECT_EQ(lf_malloc_ctl("contention.enabled", nullptr, nullptr, &In,
                          sizeof(In)),
            EPERM);
  EXPECT_EQ(lf_malloc_ctl("contention.nonsense", &V, &Len, nullptr, 0),
            ENOENT);
  // The scan action is always accepted; it reports flagged slots (zero on
  // a quiescent process or when the recorder is disabled).
  V = ~std::uint64_t{0};
  Len = sizeof(V);
  ASSERT_EQ(lf_malloc_ctl("contention.scan", &V, &Len, nullptr, 0), 0);
  EXPECT_EQ(V, 0u);
  // opt.* echoes the effective configuration.
  ASSERT_EQ(lf_malloc_ctl("opt.contention_sample", &V, &Len, nullptr, 0), 0);
  ASSERT_EQ(lf_malloc_ctl("opt.contention_watchdog", &V, &Len, nullptr, 0),
            0);
}

//===----------------------------------------------------------------------===//
// Sched-gated scenario: a forced retry storm, caught in the act
//===----------------------------------------------------------------------===//

#if LFM_SCHED_TEST && LFM_TELEMETRY

TEST(ContentionWatchdogSched, ForcedRetryStormIsFlaggedMidLoop) {
  AllocatorOptions Opts = contentionOptions();
  Opts.ContentionWatchdog = true;
  Opts.ContentionStormRetries = 4; // Reachable under the injection budget.
  Opts.ContentionStallMs = 1u << 20; // Storms only: no age-based flags.
  LFAllocator Alloc(Opts);
  void *P = Alloc.allocate(64);
  ASSERT_NE(P, nullptr);

  // Force every FreePush CAS to fail (budgeted), so free() climbs its
  // retry loop with no other thread involved — a deterministic storm.
  sched::SchedOptions SOpts;
  SOpts.Seed = test::baseSeed();
  SOpts.CasFailPercent = 100;
  SOpts.CasFailBudget = 64;
  SOpts.CasFailSiteMask = std::uint64_t{1}
                          << static_cast<unsigned>(sched::Site::FreePush);
  sched::ScheduleController Ctl(SOpts);
  Ctl.start({[&] { Alloc.deallocate(P); }});

  // Play the exporter thread: step the victim one schedule point at a
  // time and scan between steps. The watchdog must catch it mid-loop once
  // the attempt count passes the storm limit.
  bool StormSeen = false;
  while (Ctl.step(0, 1))
    if (Alloc.contentionWatchdogScan(-1) > 0) {
      StormSeen = true;
      break;
    }
  Ctl.finish();

  EXPECT_TRUE(StormSeen) << "watchdog missed a forced retry storm";
  // The loop publishes its attempt count before the attempt's CAS fires,
  // so when the scan flags attempt StormRetries, one fewer injected
  // failure has been tallied — the storm verdict leads the failure count.
  EXPECT_GE(Ctl.forcedFailures(), 3u);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_GT(Snap.WatchdogStorms, 0u);
  EXPECT_EQ(Snap.WatchdogStalls, 0u);
}

#endif // LFM_SCHED_TEST && LFM_TELEMETRY
