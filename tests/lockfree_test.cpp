//===- tests/lockfree_test.cpp - Tagged CAS / Treiber stack tests ---------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lockfree/Tagged.h"
#include "lockfree/TreiberStack.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace lfm;

//===----------------------------------------------------------------------===
// TaggedAtomic
//===----------------------------------------------------------------------===

namespace {
struct Dummy {
  int Value;
};
} // namespace

TEST(TaggedAtomic, LoadAfterConstruct) {
  TaggedAtomic<Dummy> T;
  const auto S = T.load();
  EXPECT_EQ(S.Ptr, nullptr);
  EXPECT_EQ(S.Tag, 0u);

  Dummy D{1};
  TaggedAtomic<Dummy> U(&D);
  EXPECT_EQ(U.load().Ptr, &D);
}

TEST(TaggedAtomic, CasIncrementsTag) {
  Dummy A{1}, B{2};
  TaggedAtomic<Dummy> T(&A);
  auto S = T.load();
  EXPECT_TRUE(T.compareExchange(S, &B));
  const auto After = T.load();
  EXPECT_EQ(After.Ptr, &B);
  EXPECT_EQ(After.Tag, 1u);
}

TEST(TaggedAtomic, CasFailsOnStaleTag) {
  Dummy A{1}, B{2};
  TaggedAtomic<Dummy> T(&A);
  auto Stale = T.load();

  // Another "thread" swings A -> B -> A (the ABA pattern).
  auto S = T.load();
  ASSERT_TRUE(T.compareExchange(S, &B));
  S = T.load();
  ASSERT_TRUE(T.compareExchange(S, &A));

  // Pointer matches the stale snapshot but the tag has moved on: the CAS
  // must fail — this is the IBM tag mechanism doing its job.
  EXPECT_FALSE(T.compareExchange(Stale, &B));
  EXPECT_EQ(Stale.Tag, 2u) << "failed CAS must refresh the snapshot";
}

TEST(TaggedAtomic, TagWrapsWithoutCorruptingPointer) {
  Dummy A{1};
  TaggedAtomic<Dummy> T(&A);
  for (int I = 0; I < 70000; ++I) { // Beyond the 16-bit tag space.
    auto S = T.load();
    ASSERT_TRUE(T.compareExchange(S, &A));
  }
  EXPECT_EQ(T.load().Ptr, &A);
}

//===----------------------------------------------------------------------===
// TreiberStack
//===----------------------------------------------------------------------===

namespace {
struct Node {
  Node *Next = nullptr;
  int Value = 0;
};
} // namespace

TEST(TreiberStack, LifoOrder) {
  TreiberStack<Node> Stack;
  EXPECT_TRUE(Stack.empty());
  EXPECT_EQ(Stack.pop(), nullptr);

  Node N[3];
  for (int I = 0; I < 3; ++I) {
    N[I].Value = I;
    Stack.push(&N[I]);
  }
  EXPECT_FALSE(Stack.empty());
  EXPECT_EQ(Stack.pop()->Value, 2);
  EXPECT_EQ(Stack.pop()->Value, 1);
  EXPECT_EQ(Stack.pop()->Value, 0);
  EXPECT_EQ(Stack.pop(), nullptr);
}

TEST(TreiberStack, AlternateLinkField) {
  struct TwoLinks {
    TwoLinks *Next = nullptr;
    TwoLinks *FreeNext = nullptr;
  };
  TreiberStack<TwoLinks, &TwoLinks::FreeNext> Stack;
  TwoLinks A, B;
  A.Next = &B; // Must survive untouched.
  Stack.push(&A);
  Stack.push(&B);
  EXPECT_EQ(Stack.pop(), &B);
  EXPECT_EQ(Stack.pop(), &A);
  EXPECT_EQ(A.Next, &B) << "stack must only write its own link field";
}

TEST(TreiberStack, ConcurrentConservation) {
  // N nodes circulate among threads that pop and re-push; at the end all
  // nodes must be present exactly once.
  constexpr int NumNodes = 256, Threads = 8, Iters = 20000;
  std::vector<Node> Nodes(NumNodes);
  TreiberStack<Node> Stack;
  for (auto &N : Nodes)
    Stack.push(&N);

  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < Iters; ++I) {
        Node *N = Stack.pop();
        if (N)
          Stack.push(N);
      }
    });
  for (auto &T : Ts)
    T.join();

  std::set<Node *> Seen;
  while (Node *N = Stack.pop())
    EXPECT_TRUE(Seen.insert(N).second) << "node popped twice";
  EXPECT_EQ(Seen.size(), static_cast<std::size_t>(NumNodes));
}

TEST(TreiberStack, ConcurrentProducersConsumers) {
  // Producers push their own nodes; consumers pop anything. Total pops
  // must equal total pushes once the dust settles.
  constexpr int PerProducer = 10000, Producers = 4, Consumers = 4;
  std::vector<std::vector<Node>> Pools(Producers);
  for (auto &P : Pools)
    P.resize(PerProducer);

  TreiberStack<Node> Stack;
  std::atomic<long> Popped{0};
  std::atomic<bool> Done{false};
  std::vector<std::thread> Ts;
  for (int P = 0; P < Producers; ++P)
    Ts.emplace_back([&, P] {
      for (auto &N : Pools[P])
        Stack.push(&N);
    });
  for (int C = 0; C < Consumers; ++C)
    Ts.emplace_back([&] {
      while (!Done.load() || !Stack.empty())
        if (Stack.pop())
          Popped.fetch_add(1);
    });
  for (int P = 0; P < Producers; ++P)
    Ts[P].join();
  Done.store(true);
  for (int C = 0; C < Consumers; ++C)
    Ts[Producers + C].join();

  EXPECT_EQ(Popped.load(), static_cast<long>(Producers) * PerProducer);
}
