//===- tests/superblock_cache_test.cpp - Hyperblock cache tests -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/SuperblockCache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

using namespace lfm;

namespace {
constexpr std::size_t SbSize = 16 * 1024;
constexpr std::size_t HyperSize = 256 * 1024;
} // namespace

TEST(SuperblockCacheDirect, MapsAndUnmapsIndividually) {
  PageAllocator Pages;
  SuperblockCache Cache(Pages, SbSize, 0);
  void *A = Cache.acquire();
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(Pages.stats().BytesInUse, SbSize);
  EXPECT_EQ(Cache.cachedCount(), 0u);
  std::memset(A, 0x5a, SbSize);
  Cache.release(A);
  EXPECT_EQ(Pages.stats().BytesInUse, 0u)
      << "direct mode returns EMPTY superblocks straight to the OS";
}

TEST(SuperblockCacheHyper, BatchesMappingCalls) {
  PageAllocator Pages;
  SuperblockCache Cache(Pages, SbSize, HyperSize);
  const unsigned PerHyper =
      static_cast<unsigned>(HyperSize / SbSize) - 1; // Header slot.

  std::set<void *> Sbs;
  for (unsigned I = 0; I < PerHyper; ++I) {
    void *Sb = Cache.acquire();
    ASSERT_NE(Sb, nullptr);
    EXPECT_TRUE(Sbs.insert(Sb).second) << "superblock handed out twice";
  }
  EXPECT_EQ(Pages.stats().MapCalls, 1u)
      << "one hyperblock must serve all its superblocks";
  void *Extra = Cache.acquire();
  EXPECT_EQ(Pages.stats().MapCalls, 2u);

  Cache.release(Extra);
  for (void *Sb : Sbs)
    Cache.release(Sb);
  // Both hyperblocks' slots are now free: the first one's PerHyper plus
  // the second one's PerHyper (Extra back, rest never handed out).
  EXPECT_EQ(Cache.cachedCount(), 2 * PerHyper);
  EXPECT_GT(Pages.stats().BytesInUse, 0u) << "hyper mode retains memory";
}

TEST(SuperblockCacheHyper, SuperblocksDoNotOverlap) {
  PageAllocator Pages;
  SuperblockCache Cache(Pages, SbSize, HyperSize);
  std::vector<char *> Sbs;
  for (int I = 0; I < 40; ++I) { // Several hyperblocks.
    auto *Sb = static_cast<char *>(Cache.acquire());
    ASSERT_NE(Sb, nullptr);
    std::memset(Sb, I, SbSize); // Scribble whole superblock.
    Sbs.push_back(Sb);
  }
  for (int I = 0; I < 40; ++I)
    for (std::size_t B = 0; B < SbSize; B += 997)
      ASSERT_EQ(Sbs[I][B], static_cast<char>(I)) << "superblocks overlap";
  for (char *Sb : Sbs)
    Cache.release(Sb);
}

TEST(SuperblockCacheHyper, ReusesReleasedSuperblocks) {
  PageAllocator Pages;
  SuperblockCache Cache(Pages, SbSize, HyperSize);
  void *A = Cache.acquire();
  Cache.release(A);
  const std::uint64_t Maps = Pages.stats().MapCalls;
  void *B = Cache.acquire();
  EXPECT_EQ(Pages.stats().MapCalls, Maps) << "release->acquire must reuse";
  EXPECT_EQ(B, A) << "LIFO reuse expected from the free stack";
  Cache.release(B);
}

TEST(SuperblockCacheHyper, TrimReturnsFullyFreeHyperblocks) {
  PageAllocator Pages;
  SuperblockCache Cache(Pages, SbSize, HyperSize);
  const unsigned PerHyper = static_cast<unsigned>(HyperSize / SbSize) - 1;

  // Fill two hyperblocks' worth; keep one superblock of the second alive.
  std::vector<void *> Sbs;
  for (unsigned I = 0; I < PerHyper + 1; ++I)
    Sbs.push_back(Cache.acquire());
  void *Keep = Sbs.back();
  Sbs.pop_back();
  for (void *Sb : Sbs)
    Cache.release(Sb);

  const std::size_t Freed = Cache.trimQuiescent();
  EXPECT_EQ(Freed, HyperSize) << "exactly the fully-free hyperblock";
  EXPECT_EQ(Pages.stats().BytesInUse, HyperSize)
      << "the partially used hyperblock must survive";

  // The kept superblock must still be usable memory.
  std::memset(Keep, 0x77, SbSize);
  Cache.release(Keep);
  EXPECT_EQ(Cache.trimQuiescent(), HyperSize);
  EXPECT_EQ(Pages.stats().BytesInUse, 0u);
}

TEST(SuperblockCacheHyper, TeardownUnmapsEverything) {
  PageAllocator Pages;
  {
    SuperblockCache Cache(Pages, SbSize, HyperSize);
    for (int I = 0; I < 20; ++I)
      Cache.acquire(); // Deliberately not released.
    EXPECT_GT(Pages.stats().BytesInUse, 0u);
  }
  EXPECT_EQ(Pages.stats().BytesInUse, 0u);
}

TEST(SuperblockCacheHyper, ConcurrentAcquireReleaseUnique) {
  PageAllocator Pages;
  SuperblockCache Cache(Pages, SbSize, HyperSize);
  constexpr int Threads = 8, Iters = 2000;
  std::atomic<bool> Fail{false};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      void *Mine[4] = {};
      for (int I = 0; I < Iters; ++I) {
        const int S = I % 4;
        if (Mine[S]) {
          // Validate our scribble before returning it.
          if (*static_cast<unsigned char *>(Mine[S]) !=
              static_cast<unsigned char>(T + 1))
            Fail = true;
          Cache.release(Mine[S]);
          Mine[S] = nullptr;
        } else {
          Mine[S] = Cache.acquire();
          if (!Mine[S]) {
            Fail = true;
            continue;
          }
          *static_cast<unsigned char *>(Mine[S]) =
              static_cast<unsigned char>(T + 1);
        }
      }
      for (void *&P : Mine)
        if (P)
          Cache.release(P);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_FALSE(Fail.load()) << "two threads held the same superblock";
}
