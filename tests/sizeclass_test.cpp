//===- tests/sizeclass_test.cpp - Size-class geometry tests ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/SizeClasses.h"

#include <gtest/gtest.h>

using namespace lfm;

TEST(SizeClasses, TableIsStrictlyIncreasingAnd16Aligned) {
  for (unsigned C = 0; C < NumSizeClasses; ++C) {
    EXPECT_EQ(classBlockSize(C) % 16, 0u) << "class " << C;
    if (C > 0) {
      EXPECT_GT(classBlockSize(C), classBlockSize(C - 1)) << "class " << C;
    }
  }
  EXPECT_EQ(classBlockSize(0), 16u);
  EXPECT_EQ(MaxClassBlockSize, 8192u);
}

TEST(SizeClasses, GeometricGrowthIsBounded) {
  // Internal fragmentation bound: consecutive classes differ by at most a
  // 16-byte linear step (small sizes) or a 30% geometric step, so no
  // request wastes more than ~25% of its block.
  for (unsigned C = 1; C < NumSizeClasses; ++C) {
    const double Ratio = static_cast<double>(classBlockSize(C)) /
                         classBlockSize(C - 1);
    const std::uint32_t Step = classBlockSize(C) - classBlockSize(C - 1);
    EXPECT_TRUE(Step <= 16 || Ratio <= 1.30)
        << "class " << C << ": step " << Step << ", ratio " << Ratio;
  }
}

TEST(SizeClasses, MappingEdgeCases) {
  EXPECT_EQ(sizeToClass(0), 0u) << "malloc(0) uses the smallest class";
  EXPECT_EQ(sizeToClass(8), 0u) << "8 B payload + 8 B prefix = 16 B block";
  EXPECT_EQ(sizeToClass(9), 1u);
  EXPECT_EQ(sizeToClass(MaxClassBlockSize - BlockPrefixSize),
            NumSizeClasses - 1);
  EXPECT_EQ(sizeToClass(MaxClassBlockSize - BlockPrefixSize + 1),
            LargeSizeClass);
  EXPECT_EQ(sizeToClass(1 << 20), LargeSizeClass);
}

/// Exhaustive property: every payload from 0 to beyond the table maps to
/// the smallest class that fits it.
class SizeToClassProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(SizeToClassProperty, MapsToSmallestFittingClass) {
  const unsigned Stride = GetParam();
  for (std::size_t Payload = 0; Payload <= MaxClassBlockSize + 64;
       Payload += Stride) {
    const unsigned Class = sizeToClass(Payload);
    const std::size_t Needed = Payload + BlockPrefixSize;
    if (Needed > MaxClassBlockSize) {
      EXPECT_EQ(Class, LargeSizeClass) << "payload " << Payload;
      continue;
    }
    ASSERT_LT(Class, NumSizeClasses) << "payload " << Payload;
    // Fits...
    EXPECT_GE(classBlockSize(Class), Needed) << "payload " << Payload;
    EXPECT_GE(classPayloadSize(Class), Payload) << "payload " << Payload;
    // ...and is the smallest that fits.
    if (Class > 0) {
      EXPECT_LT(classBlockSize(Class - 1), Needed) << "payload " << Payload;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strides, SizeToClassProperty,
                         ::testing::Values(1u, 3u, 7u, 13u));

TEST(SizeClasses, PayloadAndBlockSizesAgree) {
  for (unsigned C = 0; C < NumSizeClasses; ++C)
    EXPECT_EQ(classPayloadSize(C) + BlockPrefixSize, classBlockSize(C));
}

TEST(SizeClasses, AllClassesFitDefaultSuperblock) {
  // With the default 16 KB superblock, every class must yield at least
  // two blocks and at most MaxBlocksPerSuperblock.
  constexpr std::size_t SbSize = 16 * 1024;
  for (unsigned C = 0; C < NumSizeClasses; ++C) {
    const std::size_t Blocks = SbSize / classBlockSize(C);
    EXPECT_GE(Blocks, 2u) << "class " << C;
    EXPECT_LE(Blocks, MaxBlocksPerSuperblock) << "class " << C;
  }
}
