//===- tests/lfalloc_paths_test.cpp - Algorithm path coverage -------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Drives the allocator through every route of the paper's Fig. 4/6 state
// machine — MallocFromActive / MallocFromPartial / MallocFromNewSB, the
// FULL->PARTIAL and ->EMPTY transitions — and checks the route taken via
// the operation counters.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace lfm;

namespace {

/// Small superblocks (4 KB) make superblock-level transitions cheap to
/// reach: a 64-byte class yields 64 blocks per superblock.
AllocatorOptions tinyOptions() {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.SuperblockSize = 4096;
  Opts.HyperblockSize = 0; // Direct mode: EMPTY superblocks unmap at once.
  Opts.EnableStats = true;
  return Opts;
}

} // namespace

TEST(LFAllocPaths, FirstMallocMintsASuperblock) {
  LFAllocator Alloc(tinyOptions());
  void *P = Alloc.allocate(56);
  const OpStats St = Alloc.opStats();
  EXPECT_EQ(St.FromNewSb, 1u);
  EXPECT_EQ(St.FromActive, 0u);
  Alloc.deallocate(P);
}

TEST(LFAllocPaths, SubsequentMallocsRideTheActiveSuperblock) {
  LFAllocator Alloc(tinyOptions());
  std::vector<void *> Blocks;
  for (int I = 0; I < 32; ++I)
    Blocks.push_back(Alloc.allocate(56));
  const OpStats St = Alloc.opStats();
  EXPECT_EQ(St.FromNewSb, 1u);
  EXPECT_EQ(St.FromActive, 31u) << "fast path must serve the rest";
  for (void *P : Blocks)
    Alloc.deallocate(P);
}

TEST(LFAllocPaths, FillingASuperblockMovesToTheNext) {
  LFAllocator Alloc(tinyOptions());
  // 64-byte blocks (56-byte payload): 4096/64 = 64 per superblock. Fill
  // three superblocks' worth.
  std::vector<void *> Blocks;
  for (int I = 0; I < 192; ++I)
    Blocks.push_back(Alloc.allocate(56));
  const OpStats St = Alloc.opStats();
  EXPECT_EQ(St.FromNewSb, 3u);
  for (void *P : Blocks)
    Alloc.deallocate(P);
}

TEST(LFAllocPaths, LastFreeEmptiesTheSuperblock) {
  LFAllocator Alloc(tinyOptions());
  std::vector<void *> Blocks;
  for (int I = 0; I < 64; ++I) // Exactly one full superblock.
    Blocks.push_back(Alloc.allocate(56));
  EXPECT_EQ(Alloc.opStats().SbFreed, 0u);
  for (void *P : Blocks)
    Alloc.deallocate(P);
  // All blocks freed; the (now inactive, FULL->PARTIAL->EMPTY) superblock
  // must have been freed once the last block came back.
  EXPECT_EQ(Alloc.opStats().SbFreed, 1u);
}

TEST(LFAllocPaths, FreeIntoFullSuperblockRepublishesIt) {
  LFAllocator Alloc(tinyOptions());
  // Fill superblock #1 completely (64 blocks), then one block of #2 so the
  // active superblock moves on.
  std::vector<void *> First(64), Second(8);
  for (auto &P : First)
    P = Alloc.allocate(56);
  for (auto &P : Second)
    P = Alloc.allocate(56);

  // Free one block of the FULL superblock #1: it must become PARTIAL and
  // reachable again (Fig. 6 lines 22-23 -> HeapPutPartial).
  Alloc.deallocate(First[0]);

  // Exhaust the active superblock (#2) and keep allocating: the allocator
  // must find the partial superblock #1 again rather than minting only
  // fresh ones.
  std::vector<void *> Rest;
  for (int I = 0; I < 64; ++I)
    Rest.push_back(Alloc.allocate(56));
  const OpStats St = Alloc.opStats();
  EXPECT_GT(St.FromPartial, 0u)
      << "the republished superblock was never reused";

  for (std::size_t I = 1; I < First.size(); ++I)
    Alloc.deallocate(First[I]);
  for (void *P : Second)
    Alloc.deallocate(P);
  for (void *P : Rest)
    Alloc.deallocate(P);
}

TEST(LFAllocPaths, EmptySuperblockReturnsMemoryInDirectMode) {
  LFAllocator Alloc(tinyOptions());
  // Warm up so descriptor chunks and the first superblock are minted
  // before the baseline snapshot.
  Alloc.deallocate(Alloc.allocate(56));
  const std::uint64_t Baseline = Alloc.pageStats().BytesInUse;

  std::vector<void *> Blocks;
  for (int I = 0; I < 64 * 4; ++I)
    Blocks.push_back(Alloc.allocate(56));
  EXPECT_GT(Alloc.pageStats().BytesInUse, Baseline);
  for (void *P : Blocks)
    Alloc.deallocate(P);
  // Direct mode: EMPTY superblocks go straight back to the OS. Everything
  // except superblocks pinned by Active-word credit reservations (at most
  // a couple) must be gone.
  EXPECT_LE(Alloc.pageStats().BytesInUse, Baseline + 2 * 4096)
      << "EMPTY superblocks were not returned";
  EXPECT_GT(Alloc.opStats().SbFreed, 0u);
}

TEST(LFAllocPaths, CreditsLimitOneStillCorrect) {
  // With CreditsLimit = 1 every allocation exhausts the Active word and
  // exercises the refill path constantly — a correctness stress for
  // UpdateActive.
  AllocatorOptions Opts = tinyOptions();
  Opts.CreditsLimit = 1;
  LFAllocator Alloc(Opts);
  std::vector<void *> Blocks;
  for (int I = 0; I < 500; ++I) {
    void *P = Alloc.allocate(56);
    ASSERT_NE(P, nullptr);
    std::memset(P, I & 0xff, 56);
    Blocks.push_back(P);
  }
  for (void *P : Blocks)
    Alloc.deallocate(P);
  EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
}

TEST(LFAllocPaths, UniprocessorModeUsesOneHeap) {
  AllocatorOptions Opts = tinyOptions();
  Opts.NumHeaps = 1;
  LFAllocator Alloc(Opts);
  EXPECT_EQ(Alloc.numHeaps(), 1u);
  void *P = Alloc.allocate(8);
  ASSERT_NE(P, nullptr);
  Alloc.deallocate(P);
}

TEST(LFAllocPaths, StatsDisabledMeansZeros) {
  AllocatorOptions Opts = tinyOptions();
  Opts.EnableStats = false;
  LFAllocator Alloc(Opts);
  Alloc.deallocate(Alloc.allocate(100));
  const OpStats St = Alloc.opStats();
  EXPECT_EQ(St.Mallocs, 0u);
  EXPECT_EQ(St.Frees, 0u);
}

TEST(LFAllocPaths, DistinctSizeClassesUseDistinctSuperblocks) {
  LFAllocator Alloc(tinyOptions());
  void *Small = Alloc.allocate(8);
  void *Mid = Alloc.allocate(100);
  void *Big = Alloc.allocate(1000);
  EXPECT_EQ(Alloc.opStats().FromNewSb, 3u)
      << "each size class needs its own superblock";
  Alloc.deallocate(Small);
  Alloc.deallocate(Mid);
  Alloc.deallocate(Big);
}

TEST(LFAllocPaths, LifoPartialPolicyWorksEndToEnd) {
  AllocatorOptions Opts = tinyOptions();
  Opts.PartialPolicy = PartialListPolicy::Lifo;
  LFAllocator Alloc(Opts);
  std::vector<void *> Blocks;
  for (int I = 0; I < 1000; ++I)
    Blocks.push_back(Alloc.allocate(56));
  for (std::size_t I = 0; I < Blocks.size(); I += 2)
    Alloc.deallocate(Blocks[I]); // Punch holes -> many PARTIAL superblocks.
  for (int I = 0; I < 500; ++I)
    Blocks.push_back(Alloc.allocate(56));
  for (std::size_t I = 1; I < 1000; I += 2)
    Alloc.deallocate(Blocks[I]);
  for (std::size_t I = 1000; I < Blocks.size(); ++I)
    Alloc.deallocate(Blocks[I]);
  EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
}
