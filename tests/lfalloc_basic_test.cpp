//===- tests/lfalloc_basic_test.cpp - Core allocator unit tests -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

using namespace lfm;

namespace {

AllocatorOptions statOptions() {
  AllocatorOptions Opts;
  Opts.NumHeaps = 2;
  Opts.EnableStats = true;
  return Opts;
}

} // namespace

TEST(LFAllocBasic, MallocGivesWritableDistinctBlocks) {
  LFAllocator Alloc;
  std::set<void *> Seen;
  std::vector<void *> Blocks;
  for (int I = 0; I < 1000; ++I) {
    void *P = Alloc.allocate(24);
    ASSERT_NE(P, nullptr);
    EXPECT_TRUE(Seen.insert(P).second) << "live blocks must not alias";
    std::memset(P, I & 0xff, 24);
    Blocks.push_back(P);
  }
  for (void *P : Blocks)
    Alloc.deallocate(P);
}

TEST(LFAllocBasic, PayloadsAre8ByteAligned) {
  LFAllocator Alloc;
  for (std::size_t Size : {1ul, 7ul, 8ul, 100ul, 1000ul, 9000ul, 100000ul}) {
    void *P = Alloc.allocate(Size);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % 8, 0u)
        << "size " << Size;
    Alloc.deallocate(P);
  }
}

TEST(LFAllocBasic, MallocZeroReturnsUniquePointers) {
  LFAllocator Alloc;
  void *A = Alloc.allocate(0);
  void *B = Alloc.allocate(0);
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_NE(A, B);
  Alloc.deallocate(A);
  Alloc.deallocate(B);
}

TEST(LFAllocBasic, FreeNullIsANoOp) {
  LFAllocator Alloc;
  Alloc.deallocate(nullptr); // Must not crash (Fig. 6 line 1).
}

TEST(LFAllocBasic, UsableSizeCoversRequest) {
  LFAllocator Alloc;
  for (std::size_t Size = 0; Size <= 9000; Size += 61) {
    void *P = Alloc.allocate(Size);
    ASSERT_NE(P, nullptr);
    EXPECT_GE(Alloc.usableSize(P), Size);
    // Usable size must really be writable.
    std::memset(P, 0xee, Alloc.usableSize(P));
    Alloc.deallocate(P);
  }
}

TEST(LFAllocBasic, LargeBlocksRoundTrip) {
  AllocatorOptions Opts = statOptions();
  LFAllocator Alloc(Opts);
  for (std::size_t Size : {8185ul, 16384ul, 1048576ul, 5000000ul}) {
    auto *P = static_cast<unsigned char *>(Alloc.allocate(Size));
    ASSERT_NE(P, nullptr) << "size " << Size;
    P[0] = 1;
    P[Size - 1] = 2;
    EXPECT_GE(Alloc.usableSize(P), Size);
    Alloc.deallocate(P);
  }
  const OpStats St = Alloc.opStats();
  EXPECT_EQ(St.LargeMallocs, 4u);
  EXPECT_EQ(St.LargeFrees, 4u);
}

TEST(LFAllocBasic, LargeFreeReturnsPagesImmediately) {
  LFAllocator Alloc;
  const std::uint64_t Before = Alloc.pageStats().BytesInUse;
  void *P = Alloc.allocate(1 << 20);
  EXPECT_GE(Alloc.pageStats().BytesInUse, Before + (1 << 20));
  Alloc.deallocate(P);
  EXPECT_EQ(Alloc.pageStats().BytesInUse, Before);
}

TEST(LFAllocBasic, ContentSurvivesNeighbourChurn) {
  LFAllocator Alloc;
  auto *Keep = static_cast<unsigned char *>(Alloc.allocate(100));
  std::memset(Keep, 0x5c, 100);
  // Churn thousands of neighbours in the same size class.
  for (int I = 0; I < 5000; ++I) {
    void *P = Alloc.allocate(100);
    std::memset(P, 0xff, 100);
    Alloc.deallocate(P);
  }
  for (int I = 0; I < 100; ++I)
    ASSERT_EQ(Keep[I], 0x5c) << "neighbour churn corrupted a live block";
  Alloc.deallocate(Keep);
}

TEST(LFAllocBasic, AlignedAllocHonorsAlignment) {
  LFAllocator Alloc;
  for (std::size_t Alignment : {8ul, 16ul, 64ul, 256ul, 4096ul, 16384ul}) {
    for (std::size_t Size : {1ul, 100ul, 1000ul, 10000ul}) {
      auto *P = static_cast<unsigned char *>(
          Alloc.allocateAligned(Alignment, Size));
      ASSERT_NE(P, nullptr) << Alignment << "/" << Size;
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % Alignment, 0u)
          << Alignment << "/" << Size;
      EXPECT_GE(Alloc.usableSize(P), Size);
      std::memset(P, 0xcd, Size);
      Alloc.deallocate(P);
    }
  }
}

TEST(LFAllocBasic, AlignedBlocksCoexistWithPlainOnes) {
  LFAllocator Alloc;
  std::vector<void *> Blocks;
  for (int I = 0; I < 500; ++I) {
    void *P = I % 2 ? Alloc.allocateAligned(128, 50)
                    : Alloc.allocate(50);
    ASSERT_NE(P, nullptr);
    std::memset(P, I & 0xff, 50);
    Blocks.push_back(P);
  }
  for (void *P : Blocks)
    Alloc.deallocate(P);
}

TEST(LFAllocBasic, ReallocOnAlignedBlockPreservesContents) {
  LFAllocator Alloc;
  auto *P = static_cast<unsigned char *>(Alloc.allocateAligned(256, 64));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 64; ++I)
    P[I] = static_cast<unsigned char>(I * 3);
  auto *Q = static_cast<unsigned char *>(Alloc.reallocate(P, 10000));
  ASSERT_NE(Q, nullptr);
  for (int I = 0; I < 64; ++I)
    ASSERT_EQ(Q[I], static_cast<unsigned char>(I * 3));
  Alloc.deallocate(Q);
}

TEST(LFAllocBasic, MultiplePartialSlotsWorkEndToEnd) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 2;
  Opts.SuperblockSize = 4096;
  Opts.PartialSlotsPerHeap = MaxPartialSlots;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);
  // Punch holes in many superblocks so several PARTIALs exist at once,
  // then reallocate: the extra slots must serve them back.
  std::vector<void *> Blocks;
  for (int I = 0; I < 64 * 6; ++I)
    Blocks.push_back(Alloc.allocate(56));
  for (std::size_t I = 0; I < Blocks.size(); I += 3)
    Alloc.deallocate(Blocks[I]);
  for (std::size_t I = 0; I < Blocks.size(); I += 3)
    Blocks[I] = Alloc.allocate(56);
  for (void *P : Blocks)
    Alloc.deallocate(P);
  EXPECT_EQ(Alloc.opStats().Mallocs, Alloc.opStats().Frees);
}

TEST(LFAllocBasic, CallocZeroesAndChecksOverflow) {
  LFAllocator Alloc;
  auto *P = static_cast<unsigned char *>(Alloc.allocateZeroed(100, 8));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 800; ++I)
    ASSERT_EQ(P[I], 0u);
  Alloc.deallocate(P);

  EXPECT_EQ(Alloc.allocateZeroed(~std::size_t{0} / 2, 4), nullptr)
      << "overflowing calloc must fail, not wrap";
  EXPECT_NE(P = static_cast<unsigned char *>(Alloc.allocateZeroed(0, 8)),
            nullptr);
  Alloc.deallocate(P);
}

TEST(LFAllocBasic, ReallocPreservesContents) {
  LFAllocator Alloc;
  auto *P = static_cast<unsigned char *>(Alloc.allocate(64));
  for (int I = 0; I < 64; ++I)
    P[I] = static_cast<unsigned char>(I);

  // Grow within class, across classes, and into the large path.
  for (std::size_t NewSize : {64ul, 128ul, 4000ul, 50000ul}) {
    P = static_cast<unsigned char *>(Alloc.reallocate(P, NewSize));
    ASSERT_NE(P, nullptr);
    for (int I = 0; I < 64; ++I)
      ASSERT_EQ(P[I], static_cast<unsigned char>(I))
          << "realloc to " << NewSize << " lost contents";
  }
  Alloc.deallocate(P);
}

TEST(LFAllocBasic, LargeReallocGrowsViaRemapWithoutCopyCost) {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);
  const std::size_t Start = 1 << 20;
  auto *P = static_cast<unsigned char *>(Alloc.allocate(Start));
  ASSERT_NE(P, nullptr);
  P[0] = 0x11;
  P[Start - 1] = 0x22;
  // Grow 1 MB -> 16 MB: the mremap path must preserve contents and keep
  // the prefix coherent (usableSize must reflect the new size).
  auto *Q = static_cast<unsigned char *>(Alloc.reallocate(P, 16u << 20));
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q[0], 0x11);
  EXPECT_EQ(Q[Start - 1], 0x22);
  EXPECT_GE(Alloc.usableSize(Q), 16u << 20);
  Q[(16u << 20) - 1] = 0x33;
  // No extra LargeMalloc should have happened: remap, not alloc+copy.
  EXPECT_EQ(Alloc.opStats().LargeMallocs, 1u);
  Alloc.deallocate(Q);
  EXPECT_EQ(Alloc.opStats().LargeFrees, 1u);
}

TEST(LFAllocBasic, ReallocEdgeCases) {
  LFAllocator Alloc;
  // realloc(nullptr, n) == malloc(n).
  void *P = Alloc.reallocate(nullptr, 32);
  ASSERT_NE(P, nullptr);
  // realloc(p, 0) frees and returns null.
  EXPECT_EQ(Alloc.reallocate(P, 0), nullptr);
  // Shrinking realloc keeps the block.
  void *Q = Alloc.allocate(1000);
  EXPECT_EQ(Alloc.reallocate(Q, 10), Q);
  Alloc.deallocate(Q);
}

TEST(LFAllocBasic, ManySizesInterleavedRoundTrip) {
  LFAllocator Alloc;
  std::vector<std::pair<unsigned char *, std::size_t>> Live;
  for (std::size_t Size = 1; Size <= 3000; Size += 37) {
    auto *P = static_cast<unsigned char *>(Alloc.allocate(Size));
    ASSERT_NE(P, nullptr);
    std::memset(P, static_cast<int>(Size & 0xff), Size);
    Live.emplace_back(P, Size);
  }
  for (auto &[P, Size] : Live) {
    for (std::size_t I = 0; I < Size; I += 13)
      ASSERT_EQ(P[I], static_cast<unsigned char>(Size & 0xff));
    Alloc.deallocate(P);
  }
}

TEST(LFAllocBasic, OptionsAreResolved) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 0; // "Ask the OS".
  LFAllocator Alloc(Opts);
  EXPECT_GE(Alloc.numHeaps(), 1u);
  EXPECT_EQ(Alloc.options().NumHeaps, Alloc.numHeaps());
  EXPECT_GT(Alloc.numSizeClassesInUse(), 0u);
  EXPECT_NE(Alloc.options().Domain, nullptr);
}

TEST(LFAllocBasic, SmallSuperblockShrinksClassCount) {
  AllocatorOptions Opts;
  Opts.SuperblockSize = 4096;
  LFAllocator Alloc(Opts);
  // With 4 KB superblocks the largest class must be <= 2 KB blocks.
  EXPECT_LT(Alloc.numSizeClassesInUse(), NumSizeClasses);
  // A payload that no longer fits a class silently takes the large path.
  void *P = Alloc.allocate(3000);
  ASSERT_NE(P, nullptr);
  std::memset(P, 1, 3000);
  Alloc.deallocate(P);
}

TEST(LFAllocBasic, TeardownReturnsEverythingMapped) {
  PageStats Final;
  {
    LFAllocator Alloc;
    std::vector<void *> Blocks;
    for (int I = 0; I < 10000; ++I)
      Blocks.push_back(Alloc.allocate(I % 500));
    for (void *P : Blocks)
      Alloc.deallocate(P);
    Final = Alloc.pageStats();
    EXPECT_GT(Final.BytesInUse, 0u); // Caches retain memory while alive.
  }
  // PageAllocator is owned by the allocator; its books were balanced at
  // destruction or munmap would have asserted. Reaching here is the test.
  SUCCEED();
}

TEST(LFAllocBasic, TrimReturnsCachedHyperblocks) {
  AllocatorOptions Opts;
  Opts.HyperblockSize = 256 * 1024;
  LFAllocator Alloc(Opts);
  std::vector<void *> Blocks;
  for (int I = 0; I < 20000; ++I)
    Blocks.push_back(Alloc.allocate(64));
  for (void *P : Blocks)
    Alloc.deallocate(P);
  const std::uint64_t Before = Alloc.pageStats().BytesInUse;
  const std::size_t Freed = Alloc.trimQuiescent();
  EXPECT_GT(Freed, 0u) << "empty hyperblocks should be returnable";
  EXPECT_EQ(Alloc.pageStats().BytesInUse, Before - Freed);
}
