//===- tests/baselines_test.cpp - Lock-based baseline tests ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The baselines must be *correct* competitors — the comparison in the
// benches means nothing if a baseline cuts corners. One parameterized
// contract suite runs against every allocator kind, plus targeted tests
// for Hoard's global-heap transfer and Ptmalloc's arena growth.
//
//===----------------------------------------------------------------------===//

#include "baselines/AllocatorInterface.h"
#include "baselines/HoardLike.h"
#include "baselines/PtmallocLike.h"
#include "baselines/SeqAlloc.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

using namespace lfm;

//===----------------------------------------------------------------------===
// SeqAlloc (the sequential engine)
//===----------------------------------------------------------------------===

TEST(SeqAlloc, BlocksAreDistinctAndRecycled) {
  PageAllocator Pages;
  SeqAlloc Engine(Pages);
  std::set<void *> Seen;
  std::vector<void *> Blocks;
  for (int I = 0; I < 200; ++I) {
    void *B = Engine.allocateBlock(3);
    ASSERT_NE(B, nullptr);
    EXPECT_TRUE(Seen.insert(B).second);
    Blocks.push_back(B);
  }
  for (void *B : Blocks)
    Engine.freeBlock(B, 3);
  EXPECT_EQ(Engine.freeBlockCount(), 200u);
  // Recycling: next allocation must come from the bin, not fresh carving.
  void *B = Engine.allocateBlock(3);
  EXPECT_EQ(Engine.freeBlockCount(), 199u);
  EXPECT_EQ(Seen.count(B), 1u) << "freed block should be reused";
  Engine.freeBlock(B, 3);
}

TEST(SeqAlloc, ServesEveryClass) {
  PageAllocator Pages;
  SeqAlloc Engine(Pages);
  for (unsigned C = 0; C < NumSizeClasses; ++C) {
    void *B = Engine.allocateBlock(C);
    ASSERT_NE(B, nullptr) << "class " << C;
    std::memset(B, 0x11, classBlockSize(C)); // Whole block writable.
    Engine.freeBlock(B, C);
  }
}

TEST(SeqAlloc, BumpRemainderIsBinnedNotWasted) {
  // Force the scrap path: exhaust a region with large blocks so the bump
  // remainder is recycled into smaller bins when the next region is cut.
  PageAllocator Pages;
  SeqAlloc Engine(Pages);
  // 8 KB blocks: a 64 KB region holds 7 of them plus a remainder.
  const unsigned BigClass = NumSizeClasses - 1;
  std::vector<void *> Blocks;
  for (int I = 0; I < 8; ++I) { // The 8th crosses into a new region.
    void *B = Engine.allocateBlock(BigClass);
    ASSERT_NE(B, nullptr);
    std::memset(B, 0x21, classBlockSize(BigClass));
    Blocks.push_back(B);
  }
  // The remainder of region 1 must now be in smaller bins: a small-class
  // allocation must be servable without mapping a new region.
  const std::uint64_t Maps = Pages.stats().MapCalls;
  void *Small = Engine.allocateBlock(0);
  ASSERT_NE(Small, nullptr);
  EXPECT_EQ(Pages.stats().MapCalls, Maps)
      << "small allocation should come from the binned remainder";
  // And it must not overlap any live big block.
  for (void *B : Blocks) {
    const char *Lo = static_cast<char *>(B);
    EXPECT_TRUE(static_cast<char *>(Small) + 16 <= Lo ||
                static_cast<char *>(Small) >=
                    Lo + classBlockSize(BigClass))
        << "scrap block overlaps a live block";
  }
  Engine.freeBlock(Small, 0);
  for (void *B : Blocks)
    Engine.freeBlock(B, BigClass);
}

TEST(SeqAlloc, TeardownReturnsRegions) {
  PageAllocator Pages;
  {
    SeqAlloc Engine(Pages);
    for (int I = 0; I < 10000; ++I)
      Engine.allocateBlock(0);
    EXPECT_GT(Pages.stats().BytesInUse, 0u);
  }
  EXPECT_EQ(Pages.stats().BytesInUse, 0u);
}

//===----------------------------------------------------------------------===
// Common contract for every allocator kind
//===----------------------------------------------------------------------===

namespace {

class AllocatorContract : public ::testing::TestWithParam<AllocatorKind> {};

std::string kindName(const ::testing::TestParamInfo<AllocatorKind> &Info) {
  std::string Name = allocatorKindName(Info.param);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

} // namespace

TEST_P(AllocatorContract, RoundTripAllSizes) {
  auto Alloc = makeAllocator(GetParam(), 4);
  for (std::size_t Size : {0ul, 1ul, 8ul, 64ul, 500ul, 4000ul, 8176ul,
                           8200ul, 100000ul}) {
    auto *P = static_cast<unsigned char *>(Alloc->malloc(Size));
    ASSERT_NE(P, nullptr) << "size " << Size;
    std::memset(P, 0x3c, Size);
    Alloc->free(P);
  }
  Alloc->free(nullptr);
}

TEST_P(AllocatorContract, LiveBlocksDoNotAlias) {
  auto Alloc = makeAllocator(GetParam(), 4);
  std::set<void *> Seen;
  std::vector<void *> Blocks;
  for (int I = 0; I < 2000; ++I) {
    void *P = Alloc->malloc(static_cast<std::size_t>(I % 300));
    ASSERT_NE(P, nullptr);
    ASSERT_TRUE(Seen.insert(P).second);
    Blocks.push_back(P);
  }
  for (void *P : Blocks)
    Alloc->free(P);
}

TEST_P(AllocatorContract, CrossThreadFreeIsSafe) {
  auto Alloc = makeAllocator(GetParam(), 4);
  constexpr int Batch = 5000;
  std::vector<void *> Blocks(Batch);
  std::thread Producer([&] {
    for (int I = 0; I < Batch; ++I) {
      Blocks[I] = Alloc->malloc(static_cast<std::size_t>(I % 200) + 1);
      std::memset(Blocks[I], 0x42, static_cast<std::size_t>(I % 200) + 1);
    }
  });
  Producer.join();
  std::thread Consumer([&] {
    for (void *P : Blocks)
      Alloc->free(P);
  });
  Consumer.join();
}

TEST_P(AllocatorContract, ConcurrentChurnWithValidation) {
  auto Alloc = makeAllocator(GetParam(), 4);
  constexpr int Threads = 6, Iters = 20000, Slots = 16;
  std::atomic<int> Corruptions{0};
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      XorShift128 Rng(T + 500);
      struct Rec {
        unsigned char *P = nullptr;
        std::size_t N = 0;
        unsigned char V = 0;
      } Slot[Slots];
      for (int I = 0; I < Iters; ++I) {
        Rec &R = Slot[Rng.nextBounded(Slots)];
        if (R.P) {
          for (std::size_t K = 0; K < R.N; K += 5)
            if (R.P[K] != R.V)
              Corruptions.fetch_add(1);
          Alloc->free(R.P);
          R.P = nullptr;
        } else {
          R.N = Rng.nextBounded(400) + 1;
          R.V = static_cast<unsigned char>(Rng.next() | 1);
          R.P = static_cast<unsigned char *>(Alloc->malloc(R.N));
          ASSERT_NE(R.P, nullptr);
          std::memset(R.P, R.V, R.N);
        }
      }
      for (Rec &R : Slot)
        if (R.P)
          Alloc->free(R.P);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Corruptions.load(), 0);
}

TEST_P(AllocatorContract, SpaceMeterMovesAndPeaks) {
  auto Alloc = makeAllocator(GetParam(), 4);
  const std::uint64_t Before = Alloc->pageStats().BytesInUse;
  std::vector<void *> Blocks;
  for (int I = 0; I < 5000; ++I)
    Blocks.push_back(Alloc->malloc(128));
  EXPECT_GT(Alloc->pageStats().BytesInUse, Before);
  const std::uint64_t Peak = Alloc->pageStats().PeakBytes;
  EXPECT_GE(Peak, Alloc->pageStats().BytesInUse);
  for (void *P : Blocks)
    Alloc->free(P);
  EXPECT_EQ(Alloc->pageStats().PeakBytes, Peak) << "peak must persist";
  Alloc->resetPeak();
  EXPECT_LE(Alloc->pageStats().PeakBytes, Peak);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AllocatorContract,
                         ::testing::Values(AllocatorKind::LockFree,
                                           AllocatorKind::LockFreeUni,
                                           AllocatorKind::SerialLock,
                                           AllocatorKind::Hoard,
                                           AllocatorKind::Ptmalloc),
                         kindName);

//===----------------------------------------------------------------------===
// Baseline-specific behaviours
//===----------------------------------------------------------------------===

TEST(PtmallocLikeBehaviour, ArenasGrowUnderContention) {
  PtmallocLike Alloc(1);
  EXPECT_EQ(Alloc.arenaCount(), 1u);
  // Hammer from many threads; with one initial arena, contention must
  // create more ("if all arenas are found to be locked, the thread
  // creates a new arena").
  constexpr int Threads = 8, Iters = 30000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < Iters; ++I) {
        void *P = Alloc.malloc(64);
        Alloc.free(P);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_GE(Alloc.arenaCount(), 1u);
  EXPECT_LE(Alloc.arenaCount(), PtmallocLike::MaxArenas);
}

TEST(PtmallocLikeBehaviour, FreeGoesToOwningArena) {
  // Allocate on one thread, free on another, then verify the block is
  // reusable (i.e. it landed back in a real arena bin, not limbo). One
  // arena keeps the reuse deterministic.
  PtmallocLike Alloc(1);
  void *P = nullptr;
  std::thread([&] { P = Alloc.malloc(48); }).join();
  ASSERT_NE(P, nullptr);
  std::thread([&] { Alloc.free(P); }).join();
  // Exhaustively reallocate; the freed block must come back eventually.
  bool Reused = false;
  std::vector<void *> Probe;
  for (int I = 0; I < 1000 && !Reused; ++I) {
    void *Q = Alloc.malloc(48);
    Reused = Q == P;
    Probe.push_back(Q);
  }
  for (void *Q : Probe)
    Alloc.free(Q);
  EXPECT_TRUE(Reused) << "remote-freed block never returned to service";
}

TEST(HoardLikeBehaviour, EmptinessInvariantBoundsRetainedSpace) {
  // Allocate a large burst, free it all: Hoard's invariant must shed
  // superblocks to the global heap and keep them reusable, so a second
  // burst must not double the footprint.
  HoardLike Alloc(2);
  std::vector<void *> Blocks;
  for (int I = 0; I < 20000; ++I)
    Blocks.push_back(Alloc.malloc(64));
  const std::uint64_t PeakAfterFirst = Alloc.pageStats().PeakBytes;
  for (void *P : Blocks)
    Alloc.free(P);
  Blocks.clear();
  for (int I = 0; I < 20000; ++I)
    Blocks.push_back(Alloc.malloc(64));
  for (void *P : Blocks)
    Alloc.free(P);
  EXPECT_LE(Alloc.pageStats().PeakBytes,
            PeakAfterFirst + PeakAfterFirst / 4)
      << "freed superblocks were not reused across bursts";
}

TEST(SerialLockBehaviour, LargeBlocksBypassTheLockAndUnmap) {
  auto Alloc = makeAllocator(AllocatorKind::SerialLock, 1);
  const std::uint64_t Before = Alloc->pageStats().BytesInUse;
  void *P = Alloc->malloc(1 << 20);
  ASSERT_NE(P, nullptr);
  EXPECT_GE(Alloc->pageStats().BytesInUse, Before + (1 << 20));
  Alloc->free(P);
  EXPECT_EQ(Alloc->pageStats().BytesInUse, Before);
}
