//===- tests/michael_set_test.cpp - Lock-free set/hash tests --------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lockfree/MichaelHashSet.h"
#include "lockfree/MichaelSet.h"
#include "support/Barrier.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace lfm;

//===----------------------------------------------------------------------===
// MichaelSet: sequential semantics
//===----------------------------------------------------------------------===

TEST(MichaelSet, InsertRemoveContains) {
  HazardDomain Domain;
  MichaelSet<int> Set(Domain);
  EXPECT_FALSE(Set.contains(1));
  EXPECT_TRUE(Set.insert(1));
  EXPECT_FALSE(Set.insert(1)) << "duplicate insert must fail";
  EXPECT_TRUE(Set.contains(1));
  EXPECT_EQ(Set.size(), 1);
  EXPECT_TRUE(Set.remove(1));
  EXPECT_FALSE(Set.remove(1)) << "double remove must fail";
  EXPECT_FALSE(Set.contains(1));
  EXPECT_EQ(Set.size(), 0);
}

TEST(MichaelSet, KeepsSortedOrder) {
  HazardDomain Domain;
  MichaelSet<int> Set(Domain);
  for (int K : {5, 1, 9, 3, 7, 2, 8, 4, 6, 0})
    EXPECT_TRUE(Set.insert(K));
  std::vector<int> Seen;
  Set.forEachQuiescent([&](const int &K) { Seen.push_back(K); });
  ASSERT_EQ(Seen.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Seen[I], I) << "list must stay sorted";
}

TEST(MichaelSet, RemoveFromEveryPosition) {
  HazardDomain Domain;
  MichaelSet<int> Set(Domain);
  for (int K = 0; K < 10; ++K)
    Set.insert(K);
  EXPECT_TRUE(Set.remove(0)); // Head.
  EXPECT_TRUE(Set.remove(9)); // Tail.
  EXPECT_TRUE(Set.remove(5)); // Middle.
  EXPECT_EQ(Set.size(), 7);
  for (int K : {1, 2, 3, 4, 6, 7, 8})
    EXPECT_TRUE(Set.contains(K));
  for (int K : {0, 5, 9})
    EXPECT_FALSE(Set.contains(K));
}

TEST(MichaelSet, NodeRecyclingAcrossGenerations) {
  HazardDomain Domain;
  MichaelSet<std::uint64_t> Set(Domain);
  for (std::uint64_t Round = 0; Round < 50; ++Round) {
    for (std::uint64_t K = 0; K < 200; ++K)
      ASSERT_TRUE(Set.insert(Round * 1000 + K));
    for (std::uint64_t K = 0; K < 200; ++K)
      ASSERT_TRUE(Set.remove(Round * 1000 + K));
  }
  EXPECT_EQ(Set.size(), 0);
}

TEST(MichaelSet, RandomizedAgainstStdSet) {
  HazardDomain Domain;
  MichaelSet<std::uint32_t> Set(Domain);
  std::set<std::uint32_t> Model;
  XorShift128 Rng(99);
  for (int I = 0; I < 20000; ++I) {
    const auto K = static_cast<std::uint32_t>(Rng.nextBounded(500));
    switch (Rng.nextBounded(3)) {
    case 0:
      ASSERT_EQ(Set.insert(K), Model.insert(K).second) << "key " << K;
      break;
    case 1:
      ASSERT_EQ(Set.remove(K), Model.erase(K) > 0) << "key " << K;
      break;
    default:
      ASSERT_EQ(Set.contains(K), Model.count(K) > 0) << "key " << K;
    }
  }
  EXPECT_EQ(Set.size(), static_cast<std::int64_t>(Model.size()));
  std::vector<std::uint32_t> Seen;
  Set.forEachQuiescent([&](const std::uint32_t &K) { Seen.push_back(K); });
  EXPECT_TRUE(std::equal(Seen.begin(), Seen.end(), Model.begin(),
                         Model.end()));
}

//===----------------------------------------------------------------------===
// MichaelSet: concurrency
//===----------------------------------------------------------------------===

TEST(MichaelSet, DisjointConcurrentInsertsAllLand) {
  // Kept modest: a single sorted list is O(n) per operation by design —
  // the hash table below is the scalable form.
  HazardDomain Domain;
  MichaelSet<std::uint32_t> Set(Domain);
  constexpr unsigned Threads = 6, PerThread = 700;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      for (unsigned K = 0; K < PerThread; ++K)
        ASSERT_TRUE(Set.insert(T * PerThread + K));
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Set.size(), static_cast<std::int64_t>(Threads * PerThread));
  for (unsigned K = 0; K < Threads * PerThread; ++K)
    ASSERT_TRUE(Set.contains(K)) << K;
}

TEST(MichaelSet, ContendedInsertRemoveExactlyOnce) {
  // All threads race to insert the same keys, rendezvous at a barrier,
  // then race to remove them: each key must be inserted exactly once and
  // removed exactly once (without the barrier the phases interleave and
  // exactly-once does not hold).
  HazardDomain Domain;
  MichaelSet<std::uint32_t> Set(Domain);
  constexpr unsigned Threads = 6, Keys = 1000;
  SpinBarrier PhaseBarrier(Threads);
  std::atomic<int> Inserted{0}, Removed{0};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (unsigned K = 0; K < Keys; ++K)
        if (Set.insert(K))
          Inserted.fetch_add(1);
      PhaseBarrier.arriveAndWait();
      for (unsigned K = 0; K < Keys; ++K)
        if (Set.remove(K))
          Removed.fetch_add(1);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Inserted.load(), static_cast<int>(Keys));
  EXPECT_EQ(Removed.load(), static_cast<int>(Keys));
  EXPECT_EQ(Set.size(), 0);
}

TEST(MichaelSet, MixedChurnKeepsMembershipConsistent) {
  HazardDomain Domain;
  MichaelSet<std::uint32_t> Set(Domain);
  constexpr unsigned Threads = 6, Iters = 15000;
  std::atomic<long> Balance{0}; // inserts won - removes won.
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      XorShift128 Rng(T * 7 + 1);
      for (unsigned I = 0; I < Iters; ++I) {
        const auto K = static_cast<std::uint32_t>(Rng.nextBounded(300));
        if (Rng.nextBounded(2)) {
          if (Set.insert(K))
            Balance.fetch_add(1);
        } else {
          if (Set.remove(K))
            Balance.fetch_sub(1);
        }
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Set.size(), Balance.load())
      << "successful inserts minus removes must equal final cardinality";
  long Walked = 0;
  Set.forEachQuiescent([&](const std::uint32_t &) { ++Walked; });
  EXPECT_EQ(Walked, Balance.load());
}

//===----------------------------------------------------------------------===
// MichaelHashSet
//===----------------------------------------------------------------------===

TEST(MichaelHashSet, BasicSemantics) {
  HazardDomain Domain;
  MichaelHashSet<std::uint64_t> Set(64, Domain);
  EXPECT_EQ(Set.numBuckets(), 64u);
  for (std::uint64_t K = 0; K < 1000; ++K)
    ASSERT_TRUE(Set.insert(K));
  for (std::uint64_t K = 0; K < 1000; ++K) {
    ASSERT_TRUE(Set.contains(K));
    ASSERT_FALSE(Set.insert(K));
  }
  EXPECT_EQ(Set.size(), 1000);
  for (std::uint64_t K = 0; K < 1000; K += 2)
    ASSERT_TRUE(Set.remove(K));
  EXPECT_EQ(Set.size(), 500);
}

TEST(MichaelHashSet, RoundsBucketsToPowerOfTwo) {
  HazardDomain Domain;
  MichaelHashSet<int> Set(100, Domain);
  EXPECT_EQ(Set.numBuckets(), 128u);
}

TEST(MichaelHashSet, ConcurrentMixedWorkload) {
  HazardDomain Domain;
  MichaelHashSet<std::uint32_t> Set(256, Domain);
  constexpr unsigned Threads = 8, Iters = 20000;
  std::atomic<long> Balance{0};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      XorShift128 Rng(T + 1234);
      for (unsigned I = 0; I < Iters; ++I) {
        const auto K = static_cast<std::uint32_t>(Rng.nextBounded(5000));
        if (Rng.nextBounded(2)) {
          if (Set.insert(K))
            Balance.fetch_add(1);
        } else {
          if (Set.remove(K))
            Balance.fetch_sub(1);
        }
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Set.size(), Balance.load());
}
