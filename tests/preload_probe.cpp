//===- tests/preload_probe.cpp - Helper binary for preload smoke tests ----===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// A deliberately boring program run under LD_PRELOAD by preload_test: it
// churns the heap, leaks a known amount, optionally exercises
// malloc_info(), and can wait to be signalled. Modes (argv[1]):
//
//   churn        allocate/free heavily, leak ~200 KB, exit 0
//   malloc-info  churn, then malloc_info(0, stderr); exit 0 on rc == 0
//   wait-usr2    churn, print "ready", then poll for the heap-dump file
//                named by argv[2] until it appears (written by the shim's
//                SIGUSR2 handler when the parent signals us); exit 0 when
//                seen, 4 on timeout
//   trim-rss     spike ~64 MB of small blocks, free them, print RSS,
//                call malloc_trim(0), print RSS again; exit 0
//   oom-enomem   (run with LFM_FAIL_MAP set) allocate 1 MB blocks until
//                malloc returns null; exit 0 iff errno reads ENOMEM at
//                that point, 3 if malloc never failed, 4 on wrong errno.
//                No churn first and no stdio after arming — under
//                fail-forever even libc's printf buffers cannot allocate.
//
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <malloc.h>
#include <unistd.h>

namespace {

void *churn() {
  // Heavy mixed-size traffic so the sampling profiler (if attached by the
  // environment) records plenty of sites, then a recognizable leak.
  void *Slots[256] = {};
  for (unsigned Round = 0; Round < 200; ++Round) {
    for (unsigned I = 0; I < 256; ++I) {
      if (Slots[I]) {
        free(Slots[I]);
        Slots[I] = nullptr;
      } else {
        Slots[I] = malloc(16 + (Round * 131 + I * 17) % 4000);
      }
    }
  }
  for (unsigned I = 0; I < 256; ++I)
    free(Slots[I]);
  // The leak: 50 * 4096 = ~200 KB that never gets freed.
  void *Last = nullptr;
  for (unsigned I = 0; I < 50; ++I)
    Last = malloc(4096);
  return Last;
}

std::size_t rssBytes() {
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long Size = 0, Rss = 0;
  const int Got = std::fscanf(F, "%llu %llu", &Size, &Rss);
  std::fclose(F);
  return Got == 2 ? static_cast<std::size_t>(Rss) * 4096 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Mode = Argc > 1 ? Argv[1] : "churn";

  if (std::strcmp(Mode, "trim-rss") == 0) {
    constexpr unsigned Count = 64 * 1024;
    static void *Blocks[Count];
    for (unsigned I = 0; I < Count; ++I) {
      Blocks[I] = malloc(1024);
      if (!Blocks[I])
        return 2;
      std::memset(Blocks[I], 0x5a, 1024);
    }
    for (unsigned I = 0; I < Count; ++I)
      free(Blocks[I]);
    const std::size_t Before = rssBytes();
    malloc_trim(0);
    const std::size_t After = rssBytes();
    std::printf("rss_spike=%zu rss_trimmed=%zu\n", Before, After);
    return 0;
  }

  if (std::strcmp(Mode, "oom-enomem") == 0) {
    for (unsigned I = 0; I < 256; ++I) {
      errno = 0;
      void *P = malloc(1 << 20); // Large path: one OS map per block.
      if (!P) {
        const bool Enomem = errno == ENOMEM;
        const char *Msg = Enomem ? "got ENOMEM\n" : "wrong errno\n";
        if (write(STDOUT_FILENO, Msg, std::strlen(Msg)) < 0)
          return 6;
        return Enomem ? 0 : 4;
      }
      std::memset(P, 0x33, 64); // Touch the head; keep the block live.
    }
    return 3; // Injection never fired.
  }

  void *Keep = churn();
  if (!Keep)
    return 2;

  if (std::strcmp(Mode, "malloc-info") == 0)
    return malloc_info(0, stderr) == 0 ? 0 : 3;

  if (std::strcmp(Mode, "wait-usr2") == 0) {
    const char *DumpFile = Argc > 2 ? Argv[2] : nullptr;
    if (!DumpFile)
      return 5;
    std::printf("ready\n");
    std::fflush(stdout); // The parent waits for this before signalling.
    for (unsigned I = 0; I < 400; ++I) {
      if (access(DumpFile, R_OK) == 0)
        return 0;
      usleep(25 * 1000);
    }
    return 4;
  }

  return 0;
}
