//===- tests/preload_probe.cpp - Helper binary for preload smoke tests ----===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// A deliberately boring program run under LD_PRELOAD by preload_test: it
// churns the heap, leaks a known amount, optionally exercises
// malloc_info(), and can wait to be signalled. Modes (argv[1]):
//
//   churn        allocate/free heavily, leak ~200 KB, exit 0
//   malloc-info  churn, then malloc_info(0, stderr); exit 0 on rc == 0
//   wait-usr2    churn, print "ready", then poll for the heap-dump file
//                named by argv[2] until it appears (written by the shim's
//                SIGUSR2 handler when the parent signals us); exit 0 when
//                seen, 4 on timeout
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <malloc.h>
#include <unistd.h>

namespace {

void *churn() {
  // Heavy mixed-size traffic so the sampling profiler (if attached by the
  // environment) records plenty of sites, then a recognizable leak.
  void *Slots[256] = {};
  for (unsigned Round = 0; Round < 200; ++Round) {
    for (unsigned I = 0; I < 256; ++I) {
      if (Slots[I]) {
        free(Slots[I]);
        Slots[I] = nullptr;
      } else {
        Slots[I] = malloc(16 + (Round * 131 + I * 17) % 4000);
      }
    }
  }
  for (unsigned I = 0; I < 256; ++I)
    free(Slots[I]);
  // The leak: 50 * 4096 = ~200 KB that never gets freed.
  void *Last = nullptr;
  for (unsigned I = 0; I < 50; ++I)
    Last = malloc(4096);
  return Last;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Mode = Argc > 1 ? Argv[1] : "churn";
  void *Keep = churn();
  if (!Keep)
    return 2;

  if (std::strcmp(Mode, "malloc-info") == 0)
    return malloc_info(0, stderr) == 0 ? 0 : 3;

  if (std::strcmp(Mode, "wait-usr2") == 0) {
    const char *DumpFile = Argc > 2 ? Argv[2] : nullptr;
    if (!DumpFile)
      return 5;
    std::printf("ready\n");
    std::fflush(stdout); // The parent waits for this before signalling.
    for (unsigned I = 0; I < 400; ++I) {
      if (access(DumpFile, R_OK) == 0)
        return 0;
      usleep(25 * 1000);
    }
    return 4;
  }

  return 0;
}
