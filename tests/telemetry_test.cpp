//===- tests/telemetry_test.cpp - Telemetry subsystem tests ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Covers the observability layer: sharded counter exactness under
// concurrency, trace-ring wraparound and seqlock torn-read rejection while
// a writer is racing, metrics snapshots taken during live allocation, and
// well-formedness of the exported JSON (checked with a small recursive-
// descent parser — no JSON library dependency).
//
// Everything here must pass in both build configurations; assertions that
// only hold when the extended counters exist are guarded by LFM_TELEMETRY.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"
#include "telemetry/Counters.h"
#include "telemetry/TraceRing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace lfm;
using namespace lfm::telemetry;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON well-formedness checker.
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(const std::string &Text) : S(Text) {}

  /// \returns true iff the whole input is exactly one valid JSON value.
  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    const std::size_t N = std::strlen(Lit);
    if (S.compare(Pos, N, Lit) != 0)
      return false;
    Pos += N;
    return true;
  }

  bool string() {
    if (Pos >= S.size() || S[Pos] != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (static_cast<unsigned char>(S[Pos]) < 0x20)
        return false; // Raw control character.
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        const char E = S[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I)
            if (++Pos >= S.size() || !std::isxdigit(
                    static_cast<unsigned char>(S[Pos])))
              return false;
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // Closing quote.
    return true;
  }

  bool number() {
    const std::size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos < S.size() && S[Pos] == '.') {
      ++Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    if (Pos < S.size() && (S[Pos] == 'e' || S[Pos] == 'E')) {
      ++Pos;
      if (Pos < S.size() && (S[Pos] == '+' || S[Pos] == '-'))
        ++Pos;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    return Pos > Start;
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (Pos < S.size() && S[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (Pos >= S.size() || S[Pos] != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (Pos < S.size() && S[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (Pos >= S.size())
        return false;
      if (S[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (S[Pos] == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  const std::string &S;
  std::size_t Pos = 0;
};

/// Captures a member writer (metricsJson / traceJson / dumpState) into a
/// string via a memory stream.
std::string capture(const LFAllocator &Alloc,
                    void (LFAllocator::*Writer)(std::FILE *) const) {
  char *Buffer = nullptr;
  std::size_t Size = 0;
  std::FILE *Stream = open_memstream(&Buffer, &Size);
  EXPECT_NE(Stream, nullptr);
  (Alloc.*Writer)(Stream);
  std::fclose(Stream);
  std::string Out(Buffer, Size);
  ::free(Buffer);
  return Out;
}

//===----------------------------------------------------------------------===//
// CounterSet
//===----------------------------------------------------------------------===//

TEST(Counters, AggregationIsExactAcrossThreads) {
  auto Set = std::make_unique<CounterSet>();
  constexpr unsigned NumThreads = 8;
  constexpr std::uint64_t PerThread = 100'000;

  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < NumThreads; ++T)
    Workers.emplace_back([&Set] {
      for (std::uint64_t I = 0; I < PerThread; ++I) {
        Set->add(Counter::Mallocs);
        Set->add(Counter::FromActive);
        if (I % 10 == 0)
          Set->add(Counter::FreePushRetries, 3);
      }
    });
  for (std::thread &W : Workers)
    W.join();

  EXPECT_EQ(Set->total(Counter::Mallocs), NumThreads * PerThread);
  EXPECT_EQ(Set->total(Counter::FromActive), NumThreads * PerThread);
  EXPECT_EQ(Set->total(Counter::FreePushRetries),
            NumThreads * (PerThread / 10) * 3);
  EXPECT_EQ(Set->total(Counter::Frees), 0u);

  // snapshot() must agree with per-counter totals.
  std::uint64_t Snap[NumCounters];
  Set->snapshot(Snap);
  for (unsigned C = 0; C < NumCounters; ++C)
    EXPECT_EQ(Snap[C], Set->total(static_cast<Counter>(C))) << C;
}

TEST(Counters, NamesAreStableAndUnique) {
  std::set<std::string> Seen;
  for (unsigned C = 0; C < NumCounters; ++C) {
    const char *Name = counterName(static_cast<Counter>(C));
    ASSERT_NE(Name, nullptr);
    ASSERT_NE(Name[0], '\0');
    for (const char *P = Name; *P; ++P)
      EXPECT_TRUE((*P >= 'a' && *P <= 'z') || *P == '_')
          << "metrics keys are snake_case: " << Name;
    EXPECT_TRUE(Seen.insert(Name).second) << "duplicate name " << Name;
  }
}

//===----------------------------------------------------------------------===//
// TraceRing
//===----------------------------------------------------------------------===//

struct RingDeleter {
  void operator()(TraceRing *R) const { ::operator delete(R); }
};

std::unique_ptr<TraceRing, RingDeleter> makeRing(std::uint32_t Tid,
                                                 std::uint32_t Capacity) {
  void *Mem = ::operator new(TraceRing::bytesFor(Capacity));
  return std::unique_ptr<TraceRing, RingDeleter>(
      new (Mem) TraceRing(Tid, Capacity));
}

TEST(TraceRing, WraparoundKeepsNewestEvents) {
  constexpr std::uint32_t Cap = 8;
  auto Ring = makeRing(/*Tid=*/7, Cap);
  EXPECT_EQ(Ring->capacity(), Cap);

  for (std::uint64_t I = 1; I <= 20; ++I)
    Ring->emit(EventType::SbNew, /*TimestampNs=*/I, /*Arg0=*/I * 10,
               /*Arg1=*/I * 100);

  EXPECT_EQ(Ring->emitted(), 20u);
  EXPECT_EQ(Ring->overwritten(), 20u - Cap);

  TraceEvent Out[Cap];
  const std::uint32_t N = Ring->drain(Out, Cap);
  ASSERT_EQ(N, Cap);
  // Oldest-first window over the newest Cap events: timestamps 13..20.
  for (std::uint32_t I = 0; I < N; ++I) {
    EXPECT_EQ(Out[I].TimestampNs, 20 - Cap + 1 + I);
    EXPECT_EQ(Out[I].Arg0, Out[I].TimestampNs * 10);
    EXPECT_EQ(Out[I].Arg1, Out[I].TimestampNs * 100);
    EXPECT_EQ(Out[I].Tid, 7u);
    EXPECT_EQ(Out[I].Type, EventType::SbNew);
  }
}

TEST(TraceRing, DrainBeforeFirstWrapSeesEverything) {
  auto Ring = makeRing(0, 16);
  Ring->emit(EventType::OsMap, 1, 4096, 0);
  Ring->emit(EventType::SbNew, 2, 0xABC, 64);
  TraceEvent Out[16];
  const std::uint32_t N = Ring->drain(Out, 16);
  ASSERT_EQ(N, 2u);
  EXPECT_EQ(Out[0].Type, EventType::OsMap);
  EXPECT_EQ(Out[1].Type, EventType::SbNew);
  EXPECT_EQ(Ring->overwritten(), 0u);
}

TEST(TraceRing, ConcurrentDrainNeverReturnsTornEvents) {
  // One writer wraps a tiny ring at full speed; a reader drains throughout.
  // Every event carries TimestampNs == Arg0 == Arg1, so any torn read
  // (payload halves from different writes) is detectable. The seqlock must
  // reject them all, and drained windows must be oldest-first.
  constexpr std::uint32_t Cap = 16;
  auto Ring = makeRing(3, Cap);
  constexpr std::uint64_t Total = 200'000;

  std::atomic<bool> Done{false};
  std::thread Writer([&] {
    for (std::uint64_t I = 1; I <= Total; ++I) {
      const EventType T = static_cast<EventType>(
          1 + I % (static_cast<std::uint64_t>(EventType::EventTypeCount) - 1));
      Ring->emit(T, I, I, I);
    }
    Done.store(true, std::memory_order_release);
  });

  std::uint64_t Drains = 0, Events = 0;
  TraceEvent Out[Cap];
  while (!Done.load(std::memory_order_acquire)) {
    const std::uint32_t N = Ring->drain(Out, Cap);
    ++Drains;
    Events += N;
    std::uint64_t Prev = 0;
    for (std::uint32_t I = 0; I < N; ++I) {
      ASSERT_EQ(Out[I].TimestampNs, Out[I].Arg0) << "torn event";
      ASSERT_EQ(Out[I].TimestampNs, Out[I].Arg1) << "torn event";
      ASSERT_GT(Out[I].TimestampNs, Prev) << "window not oldest-first";
      ASSERT_NE(Out[I].Type, EventType::None);
      ASSERT_LT(static_cast<std::uint32_t>(Out[I].Type),
                static_cast<std::uint32_t>(EventType::EventTypeCount));
      Prev = Out[I].TimestampNs;
    }
  }
  Writer.join();

  EXPECT_EQ(Ring->emitted(), Total);
  // Quiescent drain sees a full, exact window.
  const std::uint32_t N = Ring->drain(Out, Cap);
  ASSERT_EQ(N, Cap);
  EXPECT_EQ(Out[N - 1].TimestampNs, Total);
  EXPECT_EQ(Out[0].TimestampNs, Total - Cap + 1);
  std::printf("  (%llu drains saw %llu stable events)\n",
              static_cast<unsigned long long>(Drains),
              static_cast<unsigned long long>(Events));
}

//===----------------------------------------------------------------------===//
// Allocator-level counters
//===----------------------------------------------------------------------===//

TEST(Telemetry, CountersMatchKnownOperationSequence) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);

  constexpr unsigned Small = 300;
  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < Small; ++I)
    Ptrs.push_back(Alloc.allocate(48));
  void *Large = Alloc.allocate(2u << 20); // Direct-mmap path.
  ASSERT_NE(Large, nullptr);
  for (void *P : Ptrs)
    Alloc.deallocate(P);
  Alloc.deallocate(Large);

  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_EQ(Snap.counter(Counter::Mallocs), Small + 1);
  EXPECT_EQ(Snap.counter(Counter::Frees), Small + 1);
  EXPECT_EQ(Snap.counter(Counter::LargeMallocs), 1u);
  EXPECT_EQ(Snap.counter(Counter::LargeFrees), 1u);
  // Every non-large malloc came from exactly one of the three paths.
  EXPECT_EQ(Snap.counter(Counter::FromActive) +
                Snap.counter(Counter::FromPartial) +
                Snap.counter(Counter::FromNewSb),
            Snap.counter(Counter::Mallocs) -
                Snap.counter(Counter::LargeMallocs));
  EXPECT_GT(Snap.counter(Counter::FromNewSb), 0u);

  // The legacy opStats() view and the snapshot must agree.
  const OpStats Ops = Alloc.opStats();
  EXPECT_EQ(Ops.Mallocs, Snap.counter(Counter::Mallocs));
  EXPECT_EQ(Ops.Frees, Snap.counter(Counter::Frees));
  EXPECT_EQ(Ops.FromActive, Snap.counter(Counter::FromActive));
  EXPECT_EQ(Ops.FromNewSb, Snap.counter(Counter::FromNewSb));

#if LFM_TELEMETRY
  // Extended counters exist in this configuration: the sequence above
  // demonstrably minted descriptors and acquired superblocks.
  EXPECT_GT(Snap.counter(Counter::DescAllocs), 0u);
  EXPECT_GT(Snap.counter(Counter::SbAcquires), 0u);
  EXPECT_GT(Snap.counter(Counter::DescChunkMaps), 0u);
  EXPECT_TRUE(Snap.TelemetryCompiled);
#else
  EXPECT_EQ(Snap.counter(Counter::DescAllocs), 0u);
  EXPECT_FALSE(Snap.TelemetryCompiled);
#endif
}

TEST(Telemetry, DisabledStatsStayZero) {
  LFAllocator Alloc; // EnableStats defaults to false.
  void *P = Alloc.allocate(64);
  Alloc.deallocate(P);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_EQ(Snap.counter(Counter::Mallocs), 0u);
  EXPECT_EQ(Snap.counter(Counter::Frees), 0u);
  EXPECT_FALSE(Snap.StatsEnabled);
  // The space meter is independent of the stats gate.
  EXPECT_GT(Snap.Space.PeakBytes, 0u);
}

//===----------------------------------------------------------------------===//
// JSON export
//===----------------------------------------------------------------------===//

TEST(Telemetry, MetricsJsonIsWellFormed) {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);
  void *P = Alloc.allocate(128);
  Alloc.deallocate(P);

  const std::string Json = capture(Alloc, &LFAllocator::metricsJson);
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"schema\":\"lfm-metrics-v5\""), std::string::npos);
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"mallocs\""), std::string::npos);
  EXPECT_NE(Json.find("\"space\""), std::string::npos);
}

TEST(Telemetry, MetricsV3IsSupersetOfV2) {
  // Each schema bump only ever adds sections: v2 added "latency", v3 adds
  // "contention". Every earlier field keeps its exact name so existing
  // consumers only have to accept the new schema string.
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);
  void *P = Alloc.allocate(128);
  Alloc.deallocate(P);

  const std::string Json = capture(Alloc, &LFAllocator::metricsJson);
  for (const char *V1Field :
       {"\"config\"", "\"superblock_bytes\"", "\"counters\"", "\"space\"",
        "\"bytes_in_use\"", "\"peak_bytes\"", "\"gauges\"",
        "\"cached_superblocks\"", "\"descriptors_minted\"",
        "\"hazard_retired\"", "\"trace_events_emitted\"",
        "\"retained_bytes\""})
    EXPECT_NE(Json.find(V1Field), std::string::npos) << V1Field;
  EXPECT_NE(Json.find("\"latency\""), std::string::npos);
  // The v3 "contention" section is emitted in every build (all-zero when
  // sampling is off) so consumers see a stable document shape.
  EXPECT_NE(Json.find("\"contention\""), std::string::npos);
  EXPECT_NE(Json.find("\"watchdog\""), std::string::npos);
  EXPECT_NE(Json.find("\"heat\""), std::string::npos);
#if LFM_TELEMETRY
  // Stats imply the default sampling period, so the section reports
  // enabled with per-path stats under their snake_case path names.
  EXPECT_NE(Json.find("\"sample_period\""), std::string::npos);
  EXPECT_NE(Json.find("\"malloc_active\""), std::string::npos);
  EXPECT_NE(Json.find("\"free_small\""), std::string::npos);
  // Per-site contention distributions keep their snake_case site names
  // even when no sampling ran.
  EXPECT_NE(Json.find("\"active_reserve\""), std::string::npos);
  EXPECT_NE(Json.find("\"free_push\""), std::string::npos);
  EXPECT_NE(Json.find("\"tcache_depot_steal\""), std::string::npos);
#endif
}

TEST(Telemetry, TraceJsonIsWellFormedAndChromeShaped) {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  Opts.EnableTrace = true;
  Opts.TraceEventsPerThread = 256;
  LFAllocator Alloc(Opts);

  std::vector<void *> Ptrs;
  for (unsigned I = 0; I < 200; ++I)
    Ptrs.push_back(Alloc.allocate(48));
  for (void *P : Ptrs)
    Alloc.deallocate(P);

  const std::string Json = capture(Alloc, &LFAllocator::traceJson);
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);

#if LFM_TELEMETRY
  // With tracing compiled in, the workload must have recorded superblock
  // births and the snapshot must account for the emissions.
  EXPECT_NE(Json.find("\"sb_new\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_GT(Snap.TraceEventsEmitted, 0u);
  EXPECT_TRUE(Snap.TraceEnabled);
#endif
}

TEST(Telemetry, SnapshotWhileAllocatingIsSafeAndParsable) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 2;
  Opts.EnableStats = true;
  Opts.EnableTrace = true;
  Opts.TraceEventsPerThread = 128;
  LFAllocator Alloc(Opts);

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Churners;
  for (unsigned T = 0; T < 3; ++T)
    Churners.emplace_back([&] {
      void *Slots[64] = {};
      unsigned I = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        const unsigned S = I++ % 64;
        if (Slots[S]) {
          Alloc.deallocate(Slots[S]);
          Slots[S] = nullptr;
        } else {
          Slots[S] = Alloc.allocate(16 + I % 500);
        }
      }
      for (void *&P : Slots)
        if (P)
          Alloc.deallocate(P);
    });

  for (int I = 0; I < 25; ++I) {
    const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
    (void)Snap;
    EXPECT_TRUE(JsonChecker(capture(Alloc, &LFAllocator::metricsJson)).valid());
    EXPECT_TRUE(JsonChecker(capture(Alloc, &LFAllocator::traceJson)).valid());
  }
  Stop.store(true, std::memory_order_release);
  for (std::thread &C : Churners)
    C.join();

  // Quiescent now: the books must balance exactly.
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  EXPECT_EQ(Snap.counter(Counter::Mallocs), Snap.counter(Counter::Frees));
}

} // namespace
