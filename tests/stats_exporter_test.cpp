//===- tests/stats_exporter_test.cpp - Background exporter lifecycle ------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// The background stats exporter's contract: atomic artifact publication
// (write-tmp-then-rename, never a torn file), clean start/stop/restart,
// fork hygiene (the child inherits no thread and can start its own), and
// the reentrancy watchdog — with latency sampling at period 1, a single
// allocation made from the exporter thread through the instrumented
// allocator would show up in stats.exporter_allocs.
//
// The default allocator here is configured through the environment in a
// static initializer (the registry reads LFM_* at first use), so this
// test drives the same env -> ctl -> exporter path production uses.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFMalloc.h"
#include "telemetry/StatsExporter.h"
#include "telemetry/TelemetryConfig.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace lfm;
using telemetry::StatsExporter;

namespace {

// Before any lf_malloc_ctl call can create the default allocator: sample
// every operation (the watchdog needs period 1 to catch a single stray
// allocation) and point the artifact prefix into the working directory.
const bool EnvReady = [] {
  ::setenv("LFM_LATENCY_SAMPLE", "1", 0);
  ::setenv("LFM_STATS_PREFIX", "./lfm-exporter-test", 0);
  return true;
}();

std::string slurp(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return {};
  std::string S;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    S.append(Buf, N);
  std::fclose(F);
  return S;
}

bool exists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

void removeArtifacts() {
  for (const char *Suffix : {".metrics.json", ".prom", ".heap",
                             ".metrics.json.tmp", ".prom.tmp", ".heap.tmp"})
    std::remove((std::string("./lfm-exporter-test") + Suffix).c_str());
}

std::uint64_t ctlU64(const char *Key) {
  std::uint64_t V = 0;
  std::size_t Len = sizeof(V);
  EXPECT_EQ(lf_malloc_ctl(Key, &V, &Len, nullptr, 0), 0) << Key;
  return V;
}

} // namespace

TEST(StatsExporter, FlushPublishesAtomicArtifacts) {
  ASSERT_TRUE(EnvReady);
  removeArtifacts();
  // Churn so the artifacts have real content.
  void *P = lf_malloc(256);
  lf_free(P);

  ASSERT_EQ(lf_malloc_ctl("exporter.flush", nullptr, nullptr, nullptr, 0), 0);

  const std::string Json = slurp("./lfm-exporter-test.metrics.json");
  ASSERT_FALSE(Json.empty());
  EXPECT_EQ(Json.front(), '{');
  EXPECT_NE(Json.find("\"schema\":\"lfm-metrics-v5\""), std::string::npos);
  EXPECT_NE(Json.find("\"latency\""), std::string::npos);

  const std::string Prom = slurp("./lfm-exporter-test.prom");
  ASSERT_FALSE(Prom.empty());
  EXPECT_EQ(Prom.rfind("# HELP ", 0), 0u);
  EXPECT_NE(Prom.find("lf_malloc_mallocs_total"), std::string::npos);

  // No profiler attached: the heap artifact is skipped, not published
  // empty; and no .tmp file may survive a completed cycle.
  EXPECT_FALSE(exists("./lfm-exporter-test.heap"));
  EXPECT_FALSE(exists("./lfm-exporter-test.metrics.json.tmp"));
  EXPECT_FALSE(exists("./lfm-exporter-test.prom.tmp"));
  removeArtifacts();
}

TEST(StatsExporter, ExporterNeverAllocatesFromInstrumentedMalloc) {
  ASSERT_TRUE(EnvReady);
  removeArtifacts();
  for (unsigned I = 0; I < 64; ++I) {
    void *P = lf_malloc(64 + I * 8);
    lf_free(P);
  }
  for (unsigned Cycle = 0; Cycle < 5; ++Cycle)
    ASSERT_EQ(lf_malloc_ctl("exporter.flush", nullptr, nullptr, nullptr, 0),
              0);
#if LFM_TELEMETRY
  // Sampling period is 1: any allocation the export path made through the
  // instrumented allocator would have been sampled with the exporter flag
  // raised and counted here.
  EXPECT_EQ(ctlU64("stats.exporter_allocs"), 0u);
  EXPECT_GT(ctlU64("stats.latency_samples"), 0u);
#endif
  removeArtifacts();
}

TEST(StatsExporter, StartStopRestartLifecycle) {
  ASSERT_TRUE(EnvReady);
  removeArtifacts();
  EXPECT_FALSE(StatsExporter::running());

  // Invalid starts are rejected without side effects.
  std::uint64_t Ms = 0;
  EXPECT_EQ(lf_malloc_ctl("exporter.start", nullptr, nullptr, &Ms,
                          sizeof(Ms)),
            EINVAL);
  EXPECT_EQ(lf_malloc_ctl("exporter.start", nullptr, nullptr, nullptr, 0),
            EINVAL);
  EXPECT_FALSE(StatsExporter::running());

  Ms = 10;
  const std::uint64_t Before = StatsExporter::cycles();
  ASSERT_EQ(lf_malloc_ctl("exporter.start", nullptr, nullptr, &Ms,
                          sizeof(Ms)),
            0);
  EXPECT_TRUE(StatsExporter::running());
  EXPECT_EQ(ctlU64("opt.stats_interval_ms"), 10u);
  // A second start while running reports EALREADY.
  EXPECT_EQ(lf_malloc_ctl("exporter.start", nullptr, nullptr, &Ms,
                          sizeof(Ms)),
            EALREADY);

  ASSERT_TRUE(StatsExporter::waitForCycles(Before + 2, 5000))
      << "exporter thread produced no cycles";
  EXPECT_TRUE(exists("./lfm-exporter-test.prom"));
  EXPECT_TRUE(exists("./lfm-exporter-test.metrics.json"));

  ASSERT_EQ(lf_malloc_ctl("exporter.stop", nullptr, nullptr, nullptr, 0), 0);
  EXPECT_FALSE(StatsExporter::running());
  EXPECT_EQ(ctlU64("opt.stats_interval_ms"), 0u);
  // Idempotent stop.
  EXPECT_EQ(lf_malloc_ctl("exporter.stop", nullptr, nullptr, nullptr, 0), 0);

  // Restart works and the cycle counter keeps rising monotonically.
  const std::uint64_t AfterStop = StatsExporter::cycles();
  ASSERT_EQ(lf_malloc_ctl("exporter.start", nullptr, nullptr, &Ms,
                          sizeof(Ms)),
            0);
  ASSERT_TRUE(StatsExporter::waitForCycles(AfterStop + 1, 5000));
  ASSERT_EQ(lf_malloc_ctl("exporter.stop", nullptr, nullptr, nullptr, 0), 0);
  EXPECT_GE(ctlU64("exporter.cycles"), AfterStop + 1);
  removeArtifacts();
}

TEST(StatsExporter, ForkChildInheritsNoThreadButCanExport) {
  ASSERT_TRUE(EnvReady);
  removeArtifacts();
  std::uint64_t Ms = 10;
  ASSERT_EQ(lf_malloc_ctl("exporter.start", nullptr, nullptr, &Ms,
                          sizeof(Ms)),
            0);
  ASSERT_TRUE(StatsExporter::waitForCycles(1, 5000));

  const pid_t Pid = ::fork();
  ASSERT_GE(Pid, 0);
  if (Pid == 0) {
    // Child: the exporter thread did not cross fork; state is reset.
    int Rc = 0;
    if (StatsExporter::running())
      Rc |= 1;
    if (StatsExporter::cycles() != 0)
      Rc |= 2;
    // The child can run its own cycle through the same ctl surface.
    if (lf_malloc_ctl("exporter.flush", nullptr, nullptr, nullptr, 0) != 0)
      Rc |= 4;
    ::_exit(Rc);
  }
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0) << "child exporter state bits: "
                                    << WEXITSTATUS(Status);

  // Parent's exporter is unaffected by the fork.
  EXPECT_TRUE(StatsExporter::running());
  const std::uint64_t Now = StatsExporter::cycles();
  EXPECT_TRUE(StatsExporter::waitForCycles(Now + 1, 5000));
  ASSERT_EQ(lf_malloc_ctl("exporter.stop", nullptr, nullptr, nullptr, 0), 0);
  removeArtifacts();
}

TEST(StatsExporter, DirectApiRejectsBadArguments) {
  EXPECT_EQ(StatsExporter::start(0, "x", nullptr, nullptr), EINVAL);
  EXPECT_EQ(StatsExporter::start(100, "x", nullptr, nullptr), EINVAL);
  EXPECT_EQ(StatsExporter::stop(), 0); // Never started: still 0.
  // The watchdog flag reads false off the exporter thread in every build.
  EXPECT_FALSE(telemetry::onExporterThread());
}
