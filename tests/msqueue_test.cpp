//===- tests/msqueue_test.cpp - Michael-Scott queue tests -----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lockfree/MSQueue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

using namespace lfm;

TEST(MSQueue, EmptyDequeueFails) {
  MSQueue<int> Q;
  int V = -1;
  EXPECT_FALSE(Q.dequeue(V));
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.approxSize(), 0);
}

TEST(MSQueue, FifoOrder) {
  MSQueue<int> Q;
  for (int I = 0; I < 100; ++I)
    Q.enqueue(I);
  EXPECT_EQ(Q.approxSize(), 100);
  EXPECT_FALSE(Q.empty());
  for (int I = 0; I < 100; ++I) {
    int V = -1;
    ASSERT_TRUE(Q.dequeue(V));
    EXPECT_EQ(V, I) << "FIFO order violated";
  }
  int V;
  EXPECT_FALSE(Q.dequeue(V));
}

TEST(MSQueue, InterleavedEnqueueDequeue) {
  MSQueue<int> Q;
  int Next = 0, Expect = 0;
  for (int Round = 0; Round < 50; ++Round) {
    for (int I = 0; I < Round % 7 + 1; ++I)
      Q.enqueue(Next++);
    for (int I = 0; I < Round % 5 + 1; ++I) {
      int V;
      if (Q.dequeue(V)) {
        EXPECT_EQ(V, Expect++);
      }
    }
  }
  int V;
  while (Q.dequeue(V))
    EXPECT_EQ(V, Expect++);
  EXPECT_EQ(Expect, Next);
}

TEST(MSQueue, NodeRecyclingSurvivesManyGenerations) {
  // Far more enqueues than fit in one node chunk: recycling must work.
  MSQueue<std::uint64_t> Q;
  for (std::uint64_t I = 0; I < 100'000; ++I) {
    Q.enqueue(I);
    std::uint64_t V = ~0ull;
    ASSERT_TRUE(Q.dequeue(V));
    ASSERT_EQ(V, I);
  }
}

TEST(MSQueue, MpmcConservation) {
  // Every value enqueued is dequeued exactly once, across 4x4 threads.
  constexpr int Producers = 4, Consumers = 4, PerProducer = 25000;
  MSQueue<std::uint64_t> Q;
  std::atomic<bool> ProducersDone{false};
  std::vector<std::vector<std::uint64_t>> Got(Consumers);
  std::vector<std::thread> Ts;

  for (int P = 0; P < Producers; ++P)
    Ts.emplace_back([&, P] {
      for (int I = 0; I < PerProducer; ++I)
        Q.enqueue((static_cast<std::uint64_t>(P) << 32) | I);
    });
  for (int C = 0; C < Consumers; ++C)
    Ts.emplace_back([&, C] {
      std::uint64_t V;
      for (;;) {
        if (Q.dequeue(V))
          Got[C].push_back(V);
        else if (ProducersDone.load(std::memory_order_acquire))
          break;
        else
          cpuRelax();
      }
      // Final sweep: empty-then-done can race a straggling enqueue.
      while (Q.dequeue(V))
        Got[C].push_back(V);
    });

  for (int P = 0; P < Producers; ++P)
    Ts[P].join();
  ProducersDone.store(true, std::memory_order_release);
  for (int C = 0; C < Consumers; ++C)
    Ts[Producers + C].join();

  std::map<std::uint64_t, int> Counts;
  for (auto &G : Got)
    for (std::uint64_t V : G)
      ++Counts[V];
  EXPECT_EQ(Counts.size(),
            static_cast<std::size_t>(Producers) * PerProducer);
  for (auto &[V, N] : Counts)
    ASSERT_EQ(N, 1) << "value " << V << " dequeued " << N << " times";
}

TEST(MSQueue, PerProducerOrderPreserved) {
  // FIFO per producer: consumer must see each producer's values in order.
  constexpr int Producers = 3, PerProducer = 20000;
  MSQueue<std::uint64_t> Q;
  std::vector<std::thread> Ts;
  for (int P = 0; P < Producers; ++P)
    Ts.emplace_back([&, P] {
      for (int I = 0; I < PerProducer; ++I)
        Q.enqueue((static_cast<std::uint64_t>(P) << 32) | I);
    });

  std::uint64_t LastSeen[Producers];
  for (auto &L : LastSeen)
    L = 0;
  std::atomic<bool> Done{false};
  std::thread Consumer([&] {
    std::uint64_t V;
    std::uint64_t Next[Producers] = {};
    for (;;) {
      if (Q.dequeue(V)) {
        const int P = static_cast<int>(V >> 32);
        const std::uint64_t Seq = V & 0xffffffff;
        ASSERT_EQ(Seq, Next[P]) << "per-producer order violated";
        ++Next[P];
      } else if (Done.load()) {
        while (Q.dequeue(V)) {
          const int P = static_cast<int>(V >> 32);
          ASSERT_EQ((V & 0xffffffff), Next[P]++);
        }
        break;
      }
    }
    for (int P = 0; P < Producers; ++P)
      EXPECT_EQ(Next[P], static_cast<std::uint64_t>(PerProducer));
  });
  for (auto &T : Ts)
    T.join();
  Done.store(true);
  Consumer.join();
}

TEST(MSQueue, ExternalPageAllocatorIsCharged) {
  PageAllocator Pages;
  {
    MSQueue<int> Q(HazardDomain::global(), &Pages);
    Q.enqueue(1);
    EXPECT_GT(Pages.stats().BytesInUse, 0u)
        << "node chunks must be billed to the external provider";
    int V;
    Q.dequeue(V);
  }
  EXPECT_EQ(Pages.stats().BytesInUse, 0u)
      << "queue teardown must return every chunk";
}
