//===- tests/lfmalloc_api_test.cpp - Global facade tests ------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFMalloc.h"

#include "lfmalloc/LFAllocator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

using namespace lfm;

TEST(LFMallocApi, DefaultAllocatorIsSingleton) {
  EXPECT_EQ(&defaultAllocator(), &defaultAllocator());
  LFAllocator *FromThread = nullptr;
  std::thread([&] { FromThread = &defaultAllocator(); }).join();
  EXPECT_EQ(FromThread, &defaultAllocator());
}

TEST(LFMallocApi, MallocFreeRoundTrip) {
  void *P = lfMalloc(100);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xaa, 100);
  EXPECT_GE(lfUsableSize(P), 100u);
  lfFree(P);
  lfFree(nullptr); // Must be a no-op.
}

TEST(LFMallocApi, CallocZeroes) {
  auto *P = static_cast<unsigned char *>(lfCalloc(32, 32));
  ASSERT_NE(P, nullptr);
  for (int I = 0; I < 1024; ++I)
    ASSERT_EQ(P[I], 0u);
  lfFree(P);
  EXPECT_EQ(lfCalloc(~std::size_t{0}, 2), nullptr);
}

TEST(LFMallocApi, ReallocSemantics) {
  auto *P = static_cast<char *>(lfMalloc(16));
  std::strcpy(P, "fifteen chars..");
  P = static_cast<char *>(lfRealloc(P, 4096));
  ASSERT_NE(P, nullptr);
  EXPECT_STREQ(P, "fifteen chars..");
  EXPECT_EQ(lfRealloc(P, 0), nullptr); // Free-and-null.
  EXPECT_NE(P = static_cast<char *>(lfRealloc(nullptr, 8)), nullptr);
  lfFree(P);
}

TEST(LFMallocApi, AlignedAlloc) {
  void *P = lfAlignedAlloc(4096, 100);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(P) % 4096, 0u);
  std::memset(P, 1, 100);
  lfFree(P);
}

TEST(LFMallocApi, CLinkageShim) {
  void *P = lf_malloc(64);
  ASSERT_NE(P, nullptr);
  EXPECT_GE(lf_malloc_usable_size(P), 64u);
  P = lf_realloc(P, 256);
  ASSERT_NE(P, nullptr);
  lf_free(P);

  auto *Z = static_cast<unsigned char *>(lf_calloc(16, 16));
  ASSERT_NE(Z, nullptr);
  for (int I = 0; I < 256; ++I)
    ASSERT_EQ(Z[I], 0u);
  lf_free(Z);

  void *A = lf_aligned_alloc(512, 100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(A) % 512, 0u);
  lf_free(A);
  lf_free(nullptr);
}

TEST(LFMallocApi, UsableFromManyThreads) {
  constexpr int Threads = 8, Iters = 20000;
  std::vector<std::thread> Ts;
  std::atomic<int> Failures{0};
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < Iters; ++I) {
        void *P = lfMalloc(static_cast<std::size_t>(I % 128));
        if (!P) {
          Failures.fetch_add(1);
          continue;
        }
        lfFree(P);
      }
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}
