//===- tests/introspection_test.cpp - dumpState report tests --------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

/// Captures a dumpState() report into a string via a temp stream.
std::string captureDump(const LFAllocator &Alloc) {
  char *Buffer = nullptr;
  std::size_t Size = 0;
  std::FILE *Stream = open_memstream(&Buffer, &Size);
  EXPECT_NE(Stream, nullptr);
  Alloc.dumpState(Stream);
  std::fclose(Stream);
  std::string Out(Buffer, Size);
  ::free(Buffer);
  return Out;
}

} // namespace

TEST(Introspection, FreshAllocatorReportsConfiguration) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 4;
  Opts.SuperblockSize = 8192;
  LFAllocator Alloc(Opts);
  const std::string Dump = captureDump(Alloc);
  EXPECT_NE(Dump.find("4 heaps"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("sb=8192"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("FIFO"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("space:"), std::string::npos) << Dump;
  EXPECT_EQ(Dump.find("  class "), std::string::npos)
      << "no superblocks should exist yet: " << Dump;
}

TEST(Introspection, LiveSuperblocksAppearWithStates) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.SuperblockSize = 4096;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);

  void *A = Alloc.allocate(56);  // Creates an ACTIVE superblock.
  const std::string Dump = captureDump(Alloc);
  EXPECT_NE(Dump.find("active"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("ACTIVE"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("ops: mallocs=1"), std::string::npos) << Dump;
  Alloc.deallocate(A);
}

TEST(Introspection, PartialSlotOccupancyIsVisible) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.SuperblockSize = 4096;
  LFAllocator Alloc(Opts);

  // Fill one superblock completely, start a second, then free one block
  // of the first: it becomes PARTIAL and lands in the heap slot.
  std::vector<void *> First(64), Second(4);
  for (auto &P : First)
    P = Alloc.allocate(56);
  for (auto &P : Second)
    P = Alloc.allocate(56);
  Alloc.deallocate(First[0]);

  const std::string Dump = captureDump(Alloc);
  EXPECT_NE(Dump.find("partial"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("PARTIAL"), std::string::npos) << Dump;

  for (std::size_t I = 1; I < First.size(); ++I)
    Alloc.deallocate(First[I]);
  for (void *P : Second)
    Alloc.deallocate(P);
}

#if LFM_TELEMETRY
TEST(Introspection, TelemetryLinesAppearWhenStatsEnabled) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 1;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);
  void *P = Alloc.allocate(72);
  Alloc.deallocate(P);

  const std::string Dump = captureDump(Alloc);
  EXPECT_NE(Dump.find("cas-retries:"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("activeReserve="), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("paths:"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("descAllocs="), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("hazard:"), std::string::npos) << Dump;
  // Trace is off, so the trace gauge line must not print.
  EXPECT_EQ(Dump.find("trace:"), std::string::npos) << Dump;
}

TEST(Introspection, TraceLineAppearsWhenTracing) {
  AllocatorOptions Opts;
  Opts.EnableTrace = true;
  Opts.TraceEventsPerThread = 64;
  LFAllocator Alloc(Opts);
  void *P = Alloc.allocate(72);
  Alloc.deallocate(P);

  const std::string Dump = captureDump(Alloc);
  EXPECT_NE(Dump.find("trace: emitted="), std::string::npos) << Dump;
}
#endif // LFM_TELEMETRY

TEST(Introspection, StatsDisabledHidesTelemetryLines) {
  LFAllocator Alloc;
  void *P = Alloc.allocate(72);
  Alloc.deallocate(P);
  const std::string Dump = captureDump(Alloc);
  EXPECT_EQ(Dump.find("cas-retries:"), std::string::npos) << Dump;
  EXPECT_EQ(Dump.find("trace:"), std::string::npos) << Dump;
}

TEST(Introspection, DumpIsSafeDuringConcurrentTraffic) {
  AllocatorOptions Opts;
  Opts.NumHeaps = 2;
  Opts.EnableStats = true;
  LFAllocator Alloc(Opts);
  std::atomic<bool> Stop{false};
  std::thread Churner([&] {
    void *Slots[32] = {};
    unsigned I = 0;
    while (!Stop.load(std::memory_order_acquire)) {
      const unsigned S = I++ % 32;
      if (Slots[S]) {
        Alloc.deallocate(Slots[S]);
        Slots[S] = nullptr;
      } else {
        Slots[S] = Alloc.allocate(I % 400);
      }
    }
    for (void *&P : Slots)
      if (P)
        Alloc.deallocate(P);
  });
  for (int I = 0; I < 50; ++I) {
    const std::string Dump = captureDump(Alloc);
    EXPECT_FALSE(Dump.empty());
  }
  Stop.store(true, std::memory_order_release);
  Churner.join();
}
