file(REMOVE_RECURSE
  "CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/DescriptorAllocator.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/DescriptorAllocator.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/LFAllocator.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/LFAllocator.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/LFMalloc.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/LFMalloc.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/SuperblockCache.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/SuperblockCache.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/lockfree/HazardPointers.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/lockfree/HazardPointers.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/os/PageAllocator.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/os/PageAllocator.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/support/Barrier.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/support/Barrier.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/support/Histogram.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/support/Histogram.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/support/ThreadRegistry.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/support/ThreadRegistry.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/support/Timing.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/support/Timing.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/__/telemetry/Telemetry.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/__/telemetry/Telemetry.cpp.o.d"
  "CMakeFiles/lfmalloc_preload.dir/malloc_shim.cpp.o"
  "CMakeFiles/lfmalloc_preload.dir/malloc_shim.cpp.o.d"
  "liblfmalloc_preload.pdb"
  "liblfmalloc_preload.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfmalloc_preload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
