# Empty dependencies file for lfmalloc_preload.
# This may be replaced when dependencies are built.
