
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfmalloc/DescriptorAllocator.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/DescriptorAllocator.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/DescriptorAllocator.cpp.o.d"
  "/root/repo/src/lfmalloc/LFAllocator.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/LFAllocator.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/LFAllocator.cpp.o.d"
  "/root/repo/src/lfmalloc/LFMalloc.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/LFMalloc.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/LFMalloc.cpp.o.d"
  "/root/repo/src/lfmalloc/SuperblockCache.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/SuperblockCache.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lfmalloc/SuperblockCache.cpp.o.d"
  "/root/repo/src/lockfree/HazardPointers.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lockfree/HazardPointers.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/lockfree/HazardPointers.cpp.o.d"
  "/root/repo/src/os/PageAllocator.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/os/PageAllocator.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/os/PageAllocator.cpp.o.d"
  "/root/repo/src/support/Barrier.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/support/Barrier.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/support/Barrier.cpp.o.d"
  "/root/repo/src/support/Histogram.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/support/Histogram.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/support/Histogram.cpp.o.d"
  "/root/repo/src/support/ThreadRegistry.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/support/ThreadRegistry.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/support/ThreadRegistry.cpp.o.d"
  "/root/repo/src/support/Timing.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/support/Timing.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/support/Timing.cpp.o.d"
  "/root/repo/src/telemetry/Telemetry.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/telemetry/Telemetry.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/__/telemetry/Telemetry.cpp.o.d"
  "/root/repo/src/shim/malloc_shim.cpp" "src/shim/CMakeFiles/lfmalloc_preload.dir/malloc_shim.cpp.o" "gcc" "src/shim/CMakeFiles/lfmalloc_preload.dir/malloc_shim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
