# Empty dependencies file for lfm_lockfree.
# This may be replaced when dependencies are built.
