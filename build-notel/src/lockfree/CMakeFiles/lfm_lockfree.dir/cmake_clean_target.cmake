file(REMOVE_RECURSE
  "liblfm_lockfree.a"
)
