file(REMOVE_RECURSE
  "CMakeFiles/lfm_lockfree.dir/HazardPointers.cpp.o"
  "CMakeFiles/lfm_lockfree.dir/HazardPointers.cpp.o.d"
  "liblfm_lockfree.a"
  "liblfm_lockfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_lockfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
