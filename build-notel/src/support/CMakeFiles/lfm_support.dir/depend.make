# Empty dependencies file for lfm_support.
# This may be replaced when dependencies are built.
