file(REMOVE_RECURSE
  "liblfm_support.a"
)
