file(REMOVE_RECURSE
  "CMakeFiles/lfm_support.dir/Barrier.cpp.o"
  "CMakeFiles/lfm_support.dir/Barrier.cpp.o.d"
  "CMakeFiles/lfm_support.dir/Histogram.cpp.o"
  "CMakeFiles/lfm_support.dir/Histogram.cpp.o.d"
  "CMakeFiles/lfm_support.dir/ThreadRegistry.cpp.o"
  "CMakeFiles/lfm_support.dir/ThreadRegistry.cpp.o.d"
  "CMakeFiles/lfm_support.dir/Timing.cpp.o"
  "CMakeFiles/lfm_support.dir/Timing.cpp.o.d"
  "liblfm_support.a"
  "liblfm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
