file(REMOVE_RECURSE
  "liblfm_harness.a"
)
