# Empty dependencies file for lfm_harness.
# This may be replaced when dependencies are built.
