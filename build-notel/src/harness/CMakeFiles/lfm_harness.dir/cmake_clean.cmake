file(REMOVE_RECURSE
  "CMakeFiles/lfm_harness.dir/Driver.cpp.o"
  "CMakeFiles/lfm_harness.dir/Driver.cpp.o.d"
  "CMakeFiles/lfm_harness.dir/TraceWorkload.cpp.o"
  "CMakeFiles/lfm_harness.dir/TraceWorkload.cpp.o.d"
  "CMakeFiles/lfm_harness.dir/Workloads.cpp.o"
  "CMakeFiles/lfm_harness.dir/Workloads.cpp.o.d"
  "liblfm_harness.a"
  "liblfm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
