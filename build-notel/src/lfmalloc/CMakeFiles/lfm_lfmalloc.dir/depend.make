# Empty dependencies file for lfm_lfmalloc.
# This may be replaced when dependencies are built.
