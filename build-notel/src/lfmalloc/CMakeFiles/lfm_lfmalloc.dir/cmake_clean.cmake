file(REMOVE_RECURSE
  "CMakeFiles/lfm_lfmalloc.dir/DescriptorAllocator.cpp.o"
  "CMakeFiles/lfm_lfmalloc.dir/DescriptorAllocator.cpp.o.d"
  "CMakeFiles/lfm_lfmalloc.dir/LFAllocator.cpp.o"
  "CMakeFiles/lfm_lfmalloc.dir/LFAllocator.cpp.o.d"
  "CMakeFiles/lfm_lfmalloc.dir/LFMalloc.cpp.o"
  "CMakeFiles/lfm_lfmalloc.dir/LFMalloc.cpp.o.d"
  "CMakeFiles/lfm_lfmalloc.dir/SuperblockCache.cpp.o"
  "CMakeFiles/lfm_lfmalloc.dir/SuperblockCache.cpp.o.d"
  "liblfm_lfmalloc.a"
  "liblfm_lfmalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_lfmalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
