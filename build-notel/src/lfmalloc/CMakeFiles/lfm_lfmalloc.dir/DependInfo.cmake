
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfmalloc/DescriptorAllocator.cpp" "src/lfmalloc/CMakeFiles/lfm_lfmalloc.dir/DescriptorAllocator.cpp.o" "gcc" "src/lfmalloc/CMakeFiles/lfm_lfmalloc.dir/DescriptorAllocator.cpp.o.d"
  "/root/repo/src/lfmalloc/LFAllocator.cpp" "src/lfmalloc/CMakeFiles/lfm_lfmalloc.dir/LFAllocator.cpp.o" "gcc" "src/lfmalloc/CMakeFiles/lfm_lfmalloc.dir/LFAllocator.cpp.o.d"
  "/root/repo/src/lfmalloc/LFMalloc.cpp" "src/lfmalloc/CMakeFiles/lfm_lfmalloc.dir/LFMalloc.cpp.o" "gcc" "src/lfmalloc/CMakeFiles/lfm_lfmalloc.dir/LFMalloc.cpp.o.d"
  "/root/repo/src/lfmalloc/SuperblockCache.cpp" "src/lfmalloc/CMakeFiles/lfm_lfmalloc.dir/SuperblockCache.cpp.o" "gcc" "src/lfmalloc/CMakeFiles/lfm_lfmalloc.dir/SuperblockCache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-notel/src/lockfree/CMakeFiles/lfm_lockfree.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/os/CMakeFiles/lfm_os.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/support/CMakeFiles/lfm_support.dir/DependInfo.cmake"
  "/root/repo/build-notel/src/telemetry/CMakeFiles/lfm_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
