file(REMOVE_RECURSE
  "liblfm_lfmalloc.a"
)
