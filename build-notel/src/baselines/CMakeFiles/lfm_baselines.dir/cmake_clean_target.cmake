file(REMOVE_RECURSE
  "liblfm_baselines.a"
)
