# Empty dependencies file for lfm_baselines.
# This may be replaced when dependencies are built.
