file(REMOVE_RECURSE
  "CMakeFiles/lfm_baselines.dir/AllocatorInterface.cpp.o"
  "CMakeFiles/lfm_baselines.dir/AllocatorInterface.cpp.o.d"
  "CMakeFiles/lfm_baselines.dir/HoardLike.cpp.o"
  "CMakeFiles/lfm_baselines.dir/HoardLike.cpp.o.d"
  "CMakeFiles/lfm_baselines.dir/PtmallocLike.cpp.o"
  "CMakeFiles/lfm_baselines.dir/PtmallocLike.cpp.o.d"
  "CMakeFiles/lfm_baselines.dir/SeqAlloc.cpp.o"
  "CMakeFiles/lfm_baselines.dir/SeqAlloc.cpp.o.d"
  "CMakeFiles/lfm_baselines.dir/SerialLockMalloc.cpp.o"
  "CMakeFiles/lfm_baselines.dir/SerialLockMalloc.cpp.o.d"
  "liblfm_baselines.a"
  "liblfm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
