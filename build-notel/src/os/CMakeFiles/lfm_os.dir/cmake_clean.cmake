file(REMOVE_RECURSE
  "CMakeFiles/lfm_os.dir/PageAllocator.cpp.o"
  "CMakeFiles/lfm_os.dir/PageAllocator.cpp.o.d"
  "liblfm_os.a"
  "liblfm_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
