# Empty dependencies file for lfm_os.
# This may be replaced when dependencies are built.
