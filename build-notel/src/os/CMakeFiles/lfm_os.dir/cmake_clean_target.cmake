file(REMOVE_RECURSE
  "liblfm_os.a"
)
