file(REMOVE_RECURSE
  "CMakeFiles/lfm_telemetry.dir/Telemetry.cpp.o"
  "CMakeFiles/lfm_telemetry.dir/Telemetry.cpp.o.d"
  "liblfm_telemetry.a"
  "liblfm_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfm_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
