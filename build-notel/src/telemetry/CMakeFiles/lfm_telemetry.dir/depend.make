# Empty dependencies file for lfm_telemetry.
# This may be replaced when dependencies are built.
