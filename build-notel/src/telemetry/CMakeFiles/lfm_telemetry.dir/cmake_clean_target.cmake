file(REMOVE_RECURSE
  "liblfm_telemetry.a"
)
