file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8e_larson.dir/bench_fig8e_larson.cpp.o"
  "CMakeFiles/bench_fig8e_larson.dir/bench_fig8e_larson.cpp.o.d"
  "bench_fig8e_larson"
  "bench_fig8e_larson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8e_larson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
