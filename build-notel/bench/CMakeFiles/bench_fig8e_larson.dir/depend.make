# Empty dependencies file for bench_fig8e_larson.
# This may be replaced when dependencies are built.
