file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8a_linux_scalability.dir/bench_fig8a_linux_scalability.cpp.o"
  "CMakeFiles/bench_fig8a_linux_scalability.dir/bench_fig8a_linux_scalability.cpp.o.d"
  "bench_fig8a_linux_scalability"
  "bench_fig8a_linux_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8a_linux_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
