file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8c_active_false.dir/bench_fig8c_active_false.cpp.o"
  "CMakeFiles/bench_fig8c_active_false.dir/bench_fig8c_active_false.cpp.o.d"
  "bench_fig8c_active_false"
  "bench_fig8c_active_false.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8c_active_false.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
