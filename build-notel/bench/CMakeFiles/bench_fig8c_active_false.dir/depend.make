# Empty dependencies file for bench_fig8c_active_false.
# This may be replaced when dependencies are built.
