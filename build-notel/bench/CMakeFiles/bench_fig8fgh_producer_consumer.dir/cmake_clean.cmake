file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8fgh_producer_consumer.dir/bench_fig8fgh_producer_consumer.cpp.o"
  "CMakeFiles/bench_fig8fgh_producer_consumer.dir/bench_fig8fgh_producer_consumer.cpp.o.d"
  "bench_fig8fgh_producer_consumer"
  "bench_fig8fgh_producer_consumer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8fgh_producer_consumer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
