file(REMOVE_RECURSE
  "CMakeFiles/bench_false_placement.dir/bench_false_placement.cpp.o"
  "CMakeFiles/bench_false_placement.dir/bench_false_placement.cpp.o.d"
  "bench_false_placement"
  "bench_false_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_false_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
