file(REMOVE_RECURSE
  "CMakeFiles/bench_uniprocessor.dir/bench_uniprocessor.cpp.o"
  "CMakeFiles/bench_uniprocessor.dir/bench_uniprocessor.cpp.o.d"
  "bench_uniprocessor"
  "bench_uniprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uniprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
