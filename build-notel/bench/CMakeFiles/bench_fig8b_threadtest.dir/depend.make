# Empty dependencies file for bench_fig8b_threadtest.
# This may be replaced when dependencies are built.
