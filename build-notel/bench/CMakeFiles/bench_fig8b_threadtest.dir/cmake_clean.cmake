file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8b_threadtest.dir/bench_fig8b_threadtest.cpp.o"
  "CMakeFiles/bench_fig8b_threadtest.dir/bench_fig8b_threadtest.cpp.o.d"
  "bench_fig8b_threadtest"
  "bench_fig8b_threadtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8b_threadtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
