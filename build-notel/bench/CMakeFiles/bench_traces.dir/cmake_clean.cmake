file(REMOVE_RECURSE
  "CMakeFiles/bench_traces.dir/bench_traces.cpp.o"
  "CMakeFiles/bench_traces.dir/bench_traces.cpp.o.d"
  "bench_traces"
  "bench_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
