file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_micro.dir/bench_latency_micro.cpp.o"
  "CMakeFiles/bench_latency_micro.dir/bench_latency_micro.cpp.o.d"
  "bench_latency_micro"
  "bench_latency_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
