# Empty dependencies file for bench_latency_micro.
# This may be replaced when dependencies are built.
