file(REMOVE_RECURSE
  "CMakeFiles/preemption_tolerance.dir/preemption_tolerance.cpp.o"
  "CMakeFiles/preemption_tolerance.dir/preemption_tolerance.cpp.o.d"
  "preemption_tolerance"
  "preemption_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preemption_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
