# Empty dependencies file for preemption_tolerance.
# This may be replaced when dependencies are built.
