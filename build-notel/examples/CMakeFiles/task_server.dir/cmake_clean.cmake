file(REMOVE_RECURSE
  "CMakeFiles/task_server.dir/task_server.cpp.o"
  "CMakeFiles/task_server.dir/task_server.cpp.o.d"
  "task_server"
  "task_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
