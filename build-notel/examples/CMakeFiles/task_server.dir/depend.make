# Empty dependencies file for task_server.
# This may be replaced when dependencies are built.
