# Empty dependencies file for signal_safety.
# This may be replaced when dependencies are built.
