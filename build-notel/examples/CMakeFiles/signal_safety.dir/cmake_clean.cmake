file(REMOVE_RECURSE
  "CMakeFiles/signal_safety.dir/signal_safety.cpp.o"
  "CMakeFiles/signal_safety.dir/signal_safety.cpp.o.d"
  "signal_safety"
  "signal_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
