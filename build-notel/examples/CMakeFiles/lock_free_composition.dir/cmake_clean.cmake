file(REMOVE_RECURSE
  "CMakeFiles/lock_free_composition.dir/lock_free_composition.cpp.o"
  "CMakeFiles/lock_free_composition.dir/lock_free_composition.cpp.o.d"
  "lock_free_composition"
  "lock_free_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_free_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
