file(REMOVE_RECURSE
  "CMakeFiles/lfalloc_paths_test.dir/lfalloc_paths_test.cpp.o"
  "CMakeFiles/lfalloc_paths_test.dir/lfalloc_paths_test.cpp.o.d"
  "lfalloc_paths_test"
  "lfalloc_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfalloc_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
