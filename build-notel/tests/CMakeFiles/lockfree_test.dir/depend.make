# Empty dependencies file for lockfree_test.
# This may be replaced when dependencies are built.
