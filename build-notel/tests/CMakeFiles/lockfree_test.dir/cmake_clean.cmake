file(REMOVE_RECURSE
  "CMakeFiles/lockfree_test.dir/lockfree_test.cpp.o"
  "CMakeFiles/lockfree_test.dir/lockfree_test.cpp.o.d"
  "lockfree_test"
  "lockfree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockfree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
