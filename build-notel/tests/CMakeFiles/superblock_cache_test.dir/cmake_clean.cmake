file(REMOVE_RECURSE
  "CMakeFiles/superblock_cache_test.dir/superblock_cache_test.cpp.o"
  "CMakeFiles/superblock_cache_test.dir/superblock_cache_test.cpp.o.d"
  "superblock_cache_test"
  "superblock_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superblock_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
