file(REMOVE_RECURSE
  "CMakeFiles/msqueue_test.dir/msqueue_test.cpp.o"
  "CMakeFiles/msqueue_test.dir/msqueue_test.cpp.o.d"
  "msqueue_test"
  "msqueue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
