# Empty dependencies file for msqueue_test.
# This may be replaced when dependencies are built.
