file(REMOVE_RECURSE
  "CMakeFiles/sizeclass_test.dir/sizeclass_test.cpp.o"
  "CMakeFiles/sizeclass_test.dir/sizeclass_test.cpp.o.d"
  "sizeclass_test"
  "sizeclass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizeclass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
