file(REMOVE_RECURSE
  "CMakeFiles/michael_set_test.dir/michael_set_test.cpp.o"
  "CMakeFiles/michael_set_test.dir/michael_set_test.cpp.o.d"
  "michael_set_test"
  "michael_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/michael_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
