file(REMOVE_RECURSE
  "CMakeFiles/signal_safety_test.dir/signal_safety_test.cpp.o"
  "CMakeFiles/signal_safety_test.dir/signal_safety_test.cpp.o.d"
  "signal_safety_test"
  "signal_safety_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_safety_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
