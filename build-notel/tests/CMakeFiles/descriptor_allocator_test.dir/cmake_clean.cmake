file(REMOVE_RECURSE
  "CMakeFiles/descriptor_allocator_test.dir/descriptor_allocator_test.cpp.o"
  "CMakeFiles/descriptor_allocator_test.dir/descriptor_allocator_test.cpp.o.d"
  "descriptor_allocator_test"
  "descriptor_allocator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/descriptor_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
