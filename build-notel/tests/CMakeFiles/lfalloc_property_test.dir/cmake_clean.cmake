file(REMOVE_RECURSE
  "CMakeFiles/lfalloc_property_test.dir/lfalloc_property_test.cpp.o"
  "CMakeFiles/lfalloc_property_test.dir/lfalloc_property_test.cpp.o.d"
  "lfalloc_property_test"
  "lfalloc_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfalloc_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
