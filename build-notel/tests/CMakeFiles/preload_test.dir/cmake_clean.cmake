file(REMOVE_RECURSE
  "CMakeFiles/preload_test.dir/preload_test.cpp.o"
  "CMakeFiles/preload_test.dir/preload_test.cpp.o.d"
  "preload_test"
  "preload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
