file(REMOVE_RECURSE
  "CMakeFiles/lfmalloc_api_test.dir/lfmalloc_api_test.cpp.o"
  "CMakeFiles/lfmalloc_api_test.dir/lfmalloc_api_test.cpp.o.d"
  "lfmalloc_api_test"
  "lfmalloc_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfmalloc_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
