file(REMOVE_RECURSE
  "CMakeFiles/extqueue_test.dir/extqueue_test.cpp.o"
  "CMakeFiles/extqueue_test.dir/extqueue_test.cpp.o.d"
  "extqueue_test"
  "extqueue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
