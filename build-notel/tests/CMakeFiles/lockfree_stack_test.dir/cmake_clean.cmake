file(REMOVE_RECURSE
  "CMakeFiles/lockfree_stack_test.dir/lockfree_stack_test.cpp.o"
  "CMakeFiles/lockfree_stack_test.dir/lockfree_stack_test.cpp.o.d"
  "lockfree_stack_test"
  "lockfree_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockfree_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
