# Empty dependencies file for lockfree_stack_test.
# This may be replaced when dependencies are built.
