# Empty dependencies file for split_ordered_test.
# This may be replaced when dependencies are built.
