file(REMOVE_RECURSE
  "CMakeFiles/split_ordered_test.dir/split_ordered_test.cpp.o"
  "CMakeFiles/split_ordered_test.dir/split_ordered_test.cpp.o.d"
  "split_ordered_test"
  "split_ordered_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_ordered_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
