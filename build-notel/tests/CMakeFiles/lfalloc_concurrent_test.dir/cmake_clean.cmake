file(REMOVE_RECURSE
  "CMakeFiles/lfalloc_concurrent_test.dir/lfalloc_concurrent_test.cpp.o"
  "CMakeFiles/lfalloc_concurrent_test.dir/lfalloc_concurrent_test.cpp.o.d"
  "lfalloc_concurrent_test"
  "lfalloc_concurrent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfalloc_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
