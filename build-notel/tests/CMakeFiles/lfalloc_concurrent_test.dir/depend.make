# Empty dependencies file for lfalloc_concurrent_test.
# This may be replaced when dependencies are built.
