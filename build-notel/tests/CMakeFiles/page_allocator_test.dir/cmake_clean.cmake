file(REMOVE_RECURSE
  "CMakeFiles/page_allocator_test.dir/page_allocator_test.cpp.o"
  "CMakeFiles/page_allocator_test.dir/page_allocator_test.cpp.o.d"
  "page_allocator_test"
  "page_allocator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
