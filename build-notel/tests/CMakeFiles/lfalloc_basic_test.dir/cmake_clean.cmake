file(REMOVE_RECURSE
  "CMakeFiles/lfalloc_basic_test.dir/lfalloc_basic_test.cpp.o"
  "CMakeFiles/lfalloc_basic_test.dir/lfalloc_basic_test.cpp.o.d"
  "lfalloc_basic_test"
  "lfalloc_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lfalloc_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
