# Empty dependencies file for introspection_test.
# This may be replaced when dependencies are built.
