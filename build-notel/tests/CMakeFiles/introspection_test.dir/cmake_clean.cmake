file(REMOVE_RECURSE
  "CMakeFiles/introspection_test.dir/introspection_test.cpp.o"
  "CMakeFiles/introspection_test.dir/introspection_test.cpp.o.d"
  "introspection_test"
  "introspection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/introspection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
