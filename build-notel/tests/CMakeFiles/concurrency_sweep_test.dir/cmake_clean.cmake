file(REMOVE_RECURSE
  "CMakeFiles/concurrency_sweep_test.dir/concurrency_sweep_test.cpp.o"
  "CMakeFiles/concurrency_sweep_test.dir/concurrency_sweep_test.cpp.o.d"
  "concurrency_sweep_test"
  "concurrency_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrency_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
