# Empty dependencies file for concurrency_sweep_test.
# This may be replaced when dependencies are built.
