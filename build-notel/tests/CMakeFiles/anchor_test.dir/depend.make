# Empty dependencies file for anchor_test.
# This may be replaced when dependencies are built.
