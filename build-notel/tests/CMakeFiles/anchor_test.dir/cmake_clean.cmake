file(REMOVE_RECURSE
  "CMakeFiles/anchor_test.dir/anchor_test.cpp.o"
  "CMakeFiles/anchor_test.dir/anchor_test.cpp.o.d"
  "anchor_test"
  "anchor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
