# Empty dependencies file for partial_list_test.
# This may be replaced when dependencies are built.
