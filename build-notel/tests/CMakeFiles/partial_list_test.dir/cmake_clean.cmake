file(REMOVE_RECURSE
  "CMakeFiles/partial_list_test.dir/partial_list_test.cpp.o"
  "CMakeFiles/partial_list_test.dir/partial_list_test.cpp.o.d"
  "partial_list_test"
  "partial_list_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_list_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
