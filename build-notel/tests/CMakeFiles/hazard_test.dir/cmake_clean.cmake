file(REMOVE_RECURSE
  "CMakeFiles/hazard_test.dir/hazard_test.cpp.o"
  "CMakeFiles/hazard_test.dir/hazard_test.cpp.o.d"
  "hazard_test"
  "hazard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
