# Empty dependencies file for hazard_test.
# This may be replaced when dependencies are built.
