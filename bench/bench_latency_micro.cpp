//===- bench_latency_micro.cpp - §4.2.1 micro latency ---------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// google-benchmark microbenchmarks behind the paper's §4.2.1 latency
// argument:
//
//   "the average contention-free latency for a pair of lock acquire and
//    release is 165 ns. ... the average contention-free latency for a
//    pair of malloc and free in Linux Scalability using our allocator is
//    282 ns., i.e., it is less than twice that of a minimal critical
//    section protected by a lightweight test-and-set lock."
//
// The reproduction target is the RATIO: malloc/free pair (new) should be
// under ~2x a bare TasLock acquire/release pair, and under every
// lock-based allocator's pair.
//
//===----------------------------------------------------------------------===//

#include "baselines/AllocatorInterface.h"
#include "lfmalloc/LFAllocator.h"
#include "support/SpinLock.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

using namespace lfm;

namespace {

void BM_MallocFreePair(benchmark::State &State, AllocatorKind Kind) {
  auto Alloc = makeAllocator(Kind, 4);
  for (auto _ : State) {
    void *P = Alloc->malloc(8);
    benchmark::DoNotOptimize(P);
    Alloc->free(P);
  }
}

void BM_TasLockPair(benchmark::State &State) {
  TasLock Lock;
  for (auto _ : State) {
    Lock.lock();
    benchmark::ClobberMemory();
    Lock.unlock();
  }
}

void BM_TicketLockPair(benchmark::State &State) {
  TicketLock Lock;
  for (auto _ : State) {
    Lock.lock();
    benchmark::ClobberMemory();
    Lock.unlock();
  }
}

void BM_CasPair(benchmark::State &State) {
  std::atomic<std::uint64_t> Word{0};
  std::uint64_t V = 0;
  for (auto _ : State) {
    Word.compare_exchange_strong(V, V + 1, std::memory_order_acq_rel);
    benchmark::DoNotOptimize(V);
  }
}

void BM_SeqCstFence(benchmark::State &State) {
  for (auto _ : State)
    std::atomic_thread_fence(std::memory_order_seq_cst);
}

/// The §4.2.1 fence-count claim: the lock-free allocator's malloc/free
/// pair on the common path performs one publication fence (free's hazard
/// pin) plus its CASes — measured here directly on LFAllocator without
/// the virtual-dispatch adapter.
void BM_LFAllocatorDirectPair(benchmark::State &State) {
  LFAllocator Alloc;
  for (auto _ : State) {
    void *P = Alloc.allocate(8);
    benchmark::DoNotOptimize(P);
    Alloc.deallocate(P);
  }
}

/// Telemetry cost under contention: all threads hammer ONE stats-enabled
/// allocator, so every pair also bumps Mallocs/Frees/FromActive. The
/// counters are sharded by thread index; compare 1 vs 8 threads against
/// BM_StatsOffPairShared to see that the counter writes don't serialize.
void BM_StatsOnPairShared(benchmark::State &State) {
  static LFAllocator *Alloc = [] {
    AllocatorOptions Opts;
    Opts.EnableStats = true;
    return new LFAllocator(Opts);
  }();
  for (auto _ : State) {
    void *P = Alloc->allocate(8);
    benchmark::DoNotOptimize(P);
    Alloc->deallocate(P);
  }
}

/// Control for BM_StatsOnPairShared: the same shared-allocator pair with
/// counters off isolates the telemetry delta from ordinary allocator
/// contention.
void BM_StatsOffPairShared(benchmark::State &State) {
  static LFAllocator *Alloc = new LFAllocator;
  for (auto _ : State) {
    void *P = Alloc->allocate(8);
    benchmark::DoNotOptimize(P);
    Alloc->deallocate(P);
  }
}

} // namespace

BENCHMARK_CAPTURE(BM_MallocFreePair, new_, AllocatorKind::LockFree);
BENCHMARK_CAPTURE(BM_MallocFreePair, new_uni, AllocatorKind::LockFreeUni);
BENCHMARK_CAPTURE(BM_MallocFreePair, hoard, AllocatorKind::Hoard);
BENCHMARK_CAPTURE(BM_MallocFreePair, ptmalloc, AllocatorKind::Ptmalloc);
BENCHMARK_CAPTURE(BM_MallocFreePair, libc, AllocatorKind::SerialLock);
BENCHMARK(BM_LFAllocatorDirectPair);
BENCHMARK(BM_StatsOnPairShared)->Threads(1)->Threads(8);
BENCHMARK(BM_StatsOffPairShared)->Threads(1)->Threads(8);
BENCHMARK(BM_TasLockPair);
BENCHMARK(BM_TicketLockPair);
BENCHMARK(BM_CasPair);
BENCHMARK(BM_SeqCstFence);

BENCHMARK_MAIN();
