//===- bench_traces.cpp - Application-profile trace replays ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Replays the synthetic application traces (web-server, scientific,
// data-mining — the application classes the paper's introduction names)
// over every allocator, single-threaded and oversubscribed. Complements
// the paper's §4.1 microbenchmarks, which each isolate one behaviour,
// with their superposition.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"
#include "harness/ReplayWorkload.h"
#include "harness/TraceWorkload.h"

#include <cstdio>
#include <cstring>

using namespace lfm;

namespace {

// --trace-file=<path>: run a recorded lfm-alloctrace-v1 file through the
// same allocator table instead of the synthetic profiles, so recorded and
// synthetic traces share one driver (bench_replay adds latency/RSS
// detail and plan diagnostics on top of this).
int runRecorded(const char *Path) {
  const trace::TraceFile File = trace::readTraceFile(Path);
  if (File.Status == trace::ReadStatus::Corrupt) {
    std::fprintf(stderr, "bench_traces: %s: %s\n", Path, File.Error.c_str());
    return 1;
  }
  const trace::ReplayPlan Plan = trace::buildReplayPlan(File);
  std::printf("\nRecorded trace %s — %llu ops, %zu threads, %llu "
              "cross-thread frees\n",
              Path, static_cast<unsigned long long>(File.TotalOps),
              File.Threads.size(),
              static_cast<unsigned long long>(Plan.CrossThreadFrees));
  std::printf("%-10s %16s %12s\n", "", "Mops/s", "peak MB");
  for (AllocatorKind K :
       {AllocatorKind::LockFree, AllocatorKind::Hoard,
        AllocatorKind::Ptmalloc, AllocatorKind::SerialLock}) {
    auto Alloc = makeAllocator(K, static_cast<unsigned>(File.Threads.size()));
    const RecordedReplayResult R = replayRecorded(*Alloc, Plan, 0);
    std::printf("%-10s %16.2f %12.2f\n", allocatorKindName(K),
                R.throughput() / 1e6,
                static_cast<double>(R.PeakBytes) / 1048576);
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], "--trace-file=", 13) == 0)
      return runRecorded(argv[I] + 13);

  const BenchScale &Scale = benchScale();
  const auto NumOps =
      static_cast<std::uint32_t>(Scale.scaled(200'000));
  const unsigned Threads = Scale.MaxThreads;

  for (TraceProfile Profile :
       {TraceProfile::WebServer, TraceProfile::Scientific,
        TraceProfile::DataMining}) {
    const Trace T = generateTrace(Profile, 0x7ace, NumOps);
    std::printf("\nTrace %s — %zu ops/thread, slots=%u\n",
                traceProfileName(Profile), T.Ops.size(), T.SlotCount);
    std::printf("%-10s %16s %16s %12s\n", "", "1-thr Mops/s",
                "16-thr Mops/s", "peak MB");
    for (AllocatorKind K :
         {AllocatorKind::LockFree, AllocatorKind::Hoard,
          AllocatorKind::Ptmalloc, AllocatorKind::SerialLock}) {
      double OneThr = 0, ManyThr = 0, PeakMb = 0;
      {
        auto Alloc = makeAllocator(K, Threads);
        OneThr = replayTrace(*Alloc, 1, T).throughput() / 1e6;
      }
      {
        auto Alloc = makeAllocator(K, Threads);
        const TraceResult R = replayTrace(*Alloc, Threads, T);
        ManyThr = R.throughput() / 1e6;
        PeakMb =
            static_cast<double>(Alloc->pageStats().PeakBytes) / 1048576;
        if (R.Corruptions)
          std::printf("  !! %llu corruptions\n",
                      static_cast<unsigned long long>(R.Corruptions));
      }
      std::printf("%-10s %16.2f %16.2f %12.2f\n", allocatorKindName(K),
                  OneThr, ManyThr, PeakMb);
    }
  }
  return 0;
}
