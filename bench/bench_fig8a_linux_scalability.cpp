//===- bench_fig8a_linux_scalability.cpp - Paper Fig. 8(a) ----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Regenerates Fig. 8(a): Linux scalability speedup over contention-free
// libc malloc, threads 1..16, for new / hoard / ptmalloc / libc. Paper
// parameters: 10 million malloc/free pairs of 8-byte blocks per thread; we
// default to 200k pairs per thread (scale with LFM_BENCH_SCALE).
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include <cstdio>

using namespace lfm;

int main(int Argc, char **Argv) {
  benchInit(Argc, Argv);
  const std::uint64_t Pairs = benchScale().scaled(200'000);
  std::printf("Fig. 8(a) Linux scalability — %llu malloc/free pairs of 8 B "
              "per thread (paper: 10M)\n",
              static_cast<unsigned long long>(Pairs));
  runStandardFigure("Linux scalability speedup",
                    [Pairs](MallocInterface &Alloc, unsigned Threads) {
                      return runLinuxScalability(Alloc, Threads, Pairs);
                    });
  return 0;
}
