//===- bench_latency_overhead.cpp - Sampling-overhead guard ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Measures what the sampled observability recorders cost the hot path:
// an 8-thread malloc/free pair loop with stats on, run with a recorder
// absent (period 0, begin() is a single predicted branch) and at the
// default period 64. Two cells share the harness:
//
//   latency     LatencySamplePeriod 0 vs 64 (timestamped op sampling)
//   contention  ContentionSamplePeriod 0 vs 64 (CAS retry-loop sampling
//               riding every malloc/free retry loop's exit edge)
//
// The observability layer's contract is that each recorder's
// default-rate overhead stays under 3% on the 8-thread configuration;
// with LFM_BENCH_ENFORCE=1 in the environment (the CI regression job)
// an unambiguous overshoot in either cell fails the process (see the
// estimator and budget notes in main()).
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"
#include "lfmalloc/LFAllocator.h"
#include "support/Barrier.h"
#include "support/Timing.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

/// The documented bound is on the 8-thread pair bench; on hosts with
/// fewer cores an 8-way spin-barrier workload measures the scheduler,
/// not the recorder, so the count adapts downward. On a single-CPU host
/// even two threads only time-slice — they cannot actually race — so the
/// measurement drops to one thread rather than benchmarking the context
/// switch.
unsigned numThreads() {
  const unsigned Hw = std::thread::hardware_concurrency();
  return Hw >= 8 ? 8 : (Hw >= 2 ? Hw : 1);
}
const unsigned NumThreads = numThreads();

/// Which recorder a cell turns on at \p Period; both share the same
/// pair-loop workload and estimators.
struct Cell {
  const char *Name;
  void (*Configure)(AllocatorOptions &Opts, std::uint64_t Period);
};

/// One timed run: every thread does \p Pairs malloc(64)/free pairs after a
/// barrier; \returns aggregate pairs per second.
double pairRate(const Cell &C, std::uint64_t SamplePeriod,
                std::uint64_t Pairs) {
  AllocatorOptions Opts;
  Opts.EnableStats = true;
  C.Configure(Opts, SamplePeriod);
  LFAllocator Alloc(Opts);

  SpinBarrier Barrier(NumThreads + 1);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      Barrier.arriveAndWait();
      for (std::uint64_t I = 0; I < Pairs; ++I) {
        void *P = Alloc.allocate(64);
        if (P == nullptr)
          std::abort();
        Alloc.deallocate(P);
      }
      Barrier.arriveAndWait();
    });

  Barrier.arriveAndWait(); // Start the timed region with everyone ready.
  Stopwatch Watch;
  Barrier.arriveAndWait();
  const double Seconds = Watch.elapsedSeconds();
  for (std::thread &T : Threads)
    T.join();
  return static_cast<double>(Pairs) * NumThreads / Seconds;
}

/// Runs one cell's off-vs-sampled comparison; \returns true when the
/// budget is unambiguously blown (both estimators agree).
bool runCell(const Cell &C, std::uint64_t Pairs, double Budget) {
  // Interleaved warmup so CPU frequency state is comparable.
  pairRate(C, 0, Pairs / 4);
  pairRate(C, 64, Pairs / 4);

  // Back-to-back (off, sampled) pairs, judged by the MEDIAN of the
  // per-pair overhead ratios. A shared or thermally drifting machine
  // perturbs throughput by far more than the effect under test; taking
  // the ratio within each adjacent pair cancels the drift, and the
  // median discards the runs a scheduler hiccup poisoned outright.
  constexpr unsigned Rounds = 7;
  double Ratio[Rounds];
  double Off = 0, Sampled = 0;
  for (unsigned Run = 0; Run < Rounds; ++Run) {
    const double R0 = pairRate(C, 0, Pairs);
    const double R64 = pairRate(C, 64, Pairs);
    Ratio[Run] = R0 > 0 ? (R0 - R64) / R0 * 100.0 : 0.0;
    if (R0 > Off)
      Off = R0;
    if (R64 > Sampled)
      Sampled = R64;
  }
  std::sort(Ratio, Ratio + Rounds);
  const double MedianPct = Ratio[Rounds / 2];
  // Second estimator: ratio of the best rates. Timing noise on a shared
  // machine is one-sided (a hiccup only ever slows a run down), so the
  // best of N runs converges on the clean-machine rate for each
  // configuration, and their ratio isolates the effect under test.
  const double BestPct = Off > 0 ? (Off - Sampled) / Off * 100.0 : 0.0;

  std::printf("%s sampling:\n", C.Name);
  std::printf("  period 0  : %12.0f pairs/s (best)\n", Off);
  std::printf("  period 64 : %12.0f pairs/s (best)\n", Sampled);
  std::printf("  overhead  : %+.2f%% median of %u round ratios "
              "[%+.2f%% .. %+.2f%%]; %+.2f%% best-of rates "
              "(budget %.0f%%)\n",
              MedianPct, Rounds, Ratio[0], Ratio[Rounds - 1], BestPct,
              Budget);

  // Fail only when both independent estimators agree the budget is blown:
  // each is noisy on shared hardware, and a genuine hot-path regression
  // (the kind this guard is for) shows up unambiguously in both.
  if (MedianPct > Budget && BestPct > Budget) {
    std::fprintf(stderr,
                 "FAIL: %s sampling costs %.2f%% (median) / %.2f%% "
                 "(best-of) > %.0f%% budget\n",
                 C.Name, MedianPct, BestPct, Budget);
    return true;
  }
  return false;
}

} // namespace

int main() {
  const std::uint64_t Pairs = benchScale().scaled(400'000);

  // The documented <3% bound is defined on the 8-thread pair bench, whose
  // contended baseline pair is ~2x the cost of an uncontended one. A host
  // too small to run anything like that shape (one or two hardware
  // threads) has a baseline so cheap that two bare rdtsc reads per sample
  // already exceed 3% — unreachable for any implementation — so such
  // hosts enforce a looser bound that still catches the regression class
  // this guard exists for (e.g. hot-path false sharing measured at ~12%).
  const double Budget = NumThreads >= 4 ? 3.0 : 8.0;

  const Cell Cells[] = {
      {"latency",
       [](AllocatorOptions &Opts, std::uint64_t Period) {
         Opts.LatencySamplePeriod = Period;
       }},
      {"contention",
       [](AllocatorOptions &Opts, std::uint64_t Period) {
         Opts.ContentionSamplePeriod = Period;
       }},
  };

  std::printf("sampling overhead, %u threads, %llu pairs/thread\n",
              NumThreads, static_cast<unsigned long long>(Pairs));
  bool Blown = false;
  for (const Cell &C : Cells)
    Blown |= runCell(C, Pairs, Budget);

  const char *Enforce = std::getenv("LFM_BENCH_ENFORCE");
  if (Enforce && Enforce[0] != '\0' && Enforce[0] != '0' && Blown)
    return 1;
  return 0;
}
