//===- bench_fastpath.cpp - RMW-free magazine hit-path guard --------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Proves the thread-cache contract head-on: a malloc/free pair that hits
// the magazine executes ZERO lock-prefixed read-modify-write instructions
// — plain loads and stores into thread-local storage only — while the
// classic anchor path pays several CASes per pair.
//
// Counting mechanism, in preference order:
//
//  1. (sched builds, -DLFMALLOC_SCHED_TEST=ON) sched::TlsSiteVisits — a
//     deterministic per-thread count of instrumented linearization
//     windows. Every site in the lock-free core marks exactly one
//     lock-prefixed RMW's window, so a delta of 0 across N pairs IS the
//     RMW-free property, independent of the host. This is the enforced
//     guard: with LFM_BENCH_ENFORCE=1 a nonzero hit-path delta fails the
//     process. The classic path is counted first and must be nonzero —
//     otherwise the instrumentation itself is broken and a zero would
//     prove nothing.
//
//  2. (informational, any build) perf_event_open hardware instruction
//     counts per pair, when the container permits it. A magazine hit is
//     expected to retire a small flat number of instructions; the
//     classic pair several times that. Unavailable perf (EPERM/ENOSYS in
//     most CI sandboxes) degrades to a notice, never a failure.
//
// Both modes also report wall-clock ns/pair for the hit path, the miss
// path (magazine disabled), and a cold refill cycle, so EXPERIMENTS.md
// before/after numbers come from one reproducible binary.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"
#include "lfmalloc/LFAllocator.h"
#include "schedtest/SchedPoint.h"
#include "support/Timing.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace lfm;

namespace {

/// Thin wrapper over one perf_event_open hardware-instruction counter for
/// the calling thread. Most CI containers refuse the syscall entirely
/// (perf_event_paranoid, seccomp); every failure path leaves Fd == -1 and
/// the caller reports "unavailable" instead of numbers.
struct PerfInstructions {
  int Fd = -1;

  PerfInstructions() {
#if defined(__linux__)
    perf_event_attr Attr;
    std::memset(&Attr, 0, sizeof(Attr));
    Attr.size = sizeof(Attr);
    Attr.type = PERF_TYPE_HARDWARE;
    Attr.config = PERF_COUNT_HW_INSTRUCTIONS;
    Attr.disabled = 1;
    Attr.exclude_kernel = 1;
    Attr.exclude_hv = 1;
    Fd = static_cast<int>(
        syscall(SYS_perf_event_open, &Attr, 0, -1, -1, 0));
#endif
  }
  ~PerfInstructions() {
#if defined(__linux__)
    if (Fd >= 0)
      close(Fd);
#endif
  }

  bool available() const { return Fd >= 0; }
  void start() {
#if defined(__linux__)
    if (Fd >= 0) {
      ioctl(Fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(Fd, PERF_EVENT_IOC_ENABLE, 0);
    }
#endif
  }
  std::uint64_t stop() {
#if defined(__linux__)
    if (Fd >= 0) {
      ioctl(Fd, PERF_EVENT_IOC_DISABLE, 0);
      std::uint64_t Count = 0;
      if (read(Fd, &Count, sizeof(Count)) == sizeof(Count))
        return Count;
    }
#endif
    return 0;
  }
};

/// Per-thread instrumented-site visits, or 0 in non-sched builds where
/// the counter does not exist (and where no enforcement happens).
std::uint64_t siteVisits() {
#if LFM_SCHED_TEST
  return sched::TlsSiteVisits;
#else
  return 0;
#endif
}

struct PairRun {
  double NsPerPair = 0;        ///< Wall-clock per malloc/free pair.
  double VisitsPerPair = 0;    ///< Instrumented RMW windows per pair.
  double InstrPerPair = 0;     ///< Retired instructions per pair (0 if
                               ///< perf is unavailable).
  bool PerfAvailable = false;
};

/// Times \p Pairs same-size malloc/free pairs against \p Alloc on the
/// calling thread, reading the RMW-window counter and (best effort) the
/// hardware instruction counter across the loop. \p Burst > 1 allocates
/// that many blocks before freeing them all — sized past the magazine
/// capacity it forces every round through batch refill AND batch flush,
/// which a plain pair loop never does (a pair never leaves the magazine's
/// [1, capacity] occupancy band).
PairRun measurePairs(LFAllocator &Alloc, std::uint64_t Pairs,
                     std::size_t Size, unsigned Burst = 1) {
  PairRun R;
  PerfInstructions Perf;
  R.PerfAvailable = Perf.available();
  void *Held[64];
  if (Burst > 64)
    std::abort();

  const std::uint64_t VisitsBefore = siteVisits();
  Perf.start();
  Stopwatch Watch;
  for (std::uint64_t I = 0; I < Pairs; I += Burst) {
    for (unsigned B = 0; B < Burst; ++B) {
      Held[B] = Alloc.allocate(Size);
      if (Held[B] == nullptr)
        std::abort();
    }
    for (unsigned B = 0; B < Burst; ++B)
      Alloc.deallocate(Held[B]);
  }
  const double Seconds = Watch.elapsedSeconds();
  const std::uint64_t Instr = Perf.stop();
  const std::uint64_t Visits = siteVisits() - VisitsBefore;

  R.NsPerPair = Seconds * 1e9 / static_cast<double>(Pairs);
  R.VisitsPerPair =
      static_cast<double>(Visits) / static_cast<double>(Pairs);
  R.InstrPerPair =
      static_cast<double>(Instr) / static_cast<double>(Pairs);
  return R;
}

void report(const char *Label, const PairRun &R) {
  std::printf("  %-22s %8.1f ns/pair  %10.3f RMW-windows/pair", Label,
              R.NsPerPair, R.VisitsPerPair);
  if (R.PerfAvailable)
    std::printf("  %10.1f instr/pair", R.InstrPerPair);
  std::printf("\n");
}

} // namespace

int main() {
  const std::uint64_t Pairs = benchScale().scaled(2'000'000);
  constexpr std::size_t Size = 64;

  std::printf("fast-path RMW census, %" PRIu64 " pairs of malloc(%zu)/free"
              " per configuration\n",
              Pairs, Size);
#if LFM_SCHED_TEST
  std::printf("  RMW-window counter: sched::TlsSiteVisits (enforced)\n");
#else
  std::printf("  RMW-window counter: absent in this build "
              "(-DLFMALLOC_SCHED_TEST=OFF); latency + perf only\n");
#endif

  // Classic anchor path: thread cache off, stats off. Counted FIRST and
  // required to be nonzero in sched builds — it calibrates that the
  // instrumentation is alive before a hit-path zero is trusted.
  PairRun Classic, ClassicBurst;
  {
    AllocatorOptions Opts;
    Opts.EnableThreadCache = false;
    LFAllocator Alloc(Opts);
    measurePairs(Alloc, Pairs / 8, Size); // Warm the Active superblock.
    Classic = measurePairs(Alloc, Pairs, Size);
    ClassicBurst = measurePairs(Alloc, Pairs, Size, /*Burst=*/32);
  }

  // Magazine hit path: thread cache on, stats off (the 99% configuration;
  // hit tallies are plain thread-local cells either way). The warmup
  // loop's second miss batch-refills the magazine, after which every
  // steady-state pair is a pop and a push of the same thread-local array
  // — the band [1, capacity] is never left, so no refill or flush can
  // intervene in the measured region.
  PairRun Hit;
  {
    AllocatorOptions Opts;
    Opts.EnableThreadCache = true;
    LFAllocator Alloc(Opts);
    for (int I = 0; I < 64; ++I) { // Fill the magazine past one block.
      void *A = Alloc.allocate(Size);
      void *B = Alloc.allocate(Size);
      Alloc.deallocate(A);
      Alloc.deallocate(B);
    }
    Hit = measurePairs(Alloc, Pairs, Size);
  }

  // Overflow cycle, informational: 32-block bursts against a minimum
  // (2-slot) magazine, so every round runs through batch refill and
  // batch flush. This is the miss-path number EXPERIMENTS.md tracks for
  // no-regression against the classic path.
  PairRun Miss;
  {
    AllocatorOptions Opts;
    Opts.EnableThreadCache = true;
    Opts.ThreadCacheMagSize = 2; // Minimum magazine: constant traffic
                                 // through batch refill and flush.
    LFAllocator Alloc(Opts);
    measurePairs(Alloc, Pairs / 8, Size, /*Burst=*/32);
    Miss = measurePairs(Alloc, Pairs, Size, /*Burst=*/32);
  }

  report("classic pair:", Classic);
  report("classic burst-32:", ClassicBurst);
  report("magazine hit:", Hit);
  report("overflow burst-32:", Miss);
  if (!Classic.PerfAvailable)
    std::printf("  (hardware instruction counter unavailable in this "
                "container; RMW-window counts are authoritative)\n");

#if LFM_SCHED_TEST
  // The guard proper. Exact-zero, not a threshold: one RMW on the hit
  // path is a design regression, not noise.
  bool Ok = true;
  if (Classic.VisitsPerPair <= 0.0) {
    std::fprintf(stderr, "FAIL: classic path reports zero RMW windows — "
                         "site instrumentation is broken\n");
    Ok = false;
  }
  if (Hit.VisitsPerPair != 0.0) {
    std::fprintf(stderr,
                 "FAIL: magazine hit path executed %.6f RMW windows per "
                 "pair; the contract is exactly 0\n",
                 Hit.VisitsPerPair);
    Ok = false;
  }
  const char *Enforce = std::getenv("LFM_BENCH_ENFORCE");
  if (!Ok && Enforce && Enforce[0] != '\0' && Enforce[0] != '0')
    return 1;
  if (Ok)
    std::printf("  hit-path RMW windows: 0 per pair across %" PRIu64
                " pairs (classic: %.2f) — contract holds\n",
                Pairs, Classic.VisitsPerPair);
#endif
  return 0;
}
