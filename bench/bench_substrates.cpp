//===- bench_substrates.cpp - Lock-free substrate throughput --------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Microbenchmarks for the lock-free building blocks underneath the
// allocator (and cited by the paper's §5 composition claim): the hazard
// pointer operations, the Treiber stacks, the Michael-Scott queue, and
// the Michael list/hash set. Not a paper figure; a performance inventory
// for users adopting the substrates directly.
//
//===----------------------------------------------------------------------===//

#include "lockfree/HazardPointers.h"
#include "lockfree/LockFreeStack.h"
#include "lockfree/MSQueue.h"
#include "lockfree/MichaelHashSet.h"
#include "lockfree/TreiberStack.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace lfm;

namespace {

void BM_HazardProtectClear(benchmark::State &State) {
  HazardDomain Domain;
  int Value = 7;
  std::atomic<int *> Src{&Value};
  for (auto _ : State) {
    benchmark::DoNotOptimize(Domain.protect(0, Src));
    Domain.clear(0);
  }
}

void BM_HazardRetireReclaim(benchmark::State &State) {
  HazardDomain Domain;
  struct Victim : HazardErasable {};
  static Victim Pool[HazardDomain::ScanThreshold + 1];
  std::size_t Next = 0;
  for (auto _ : State) {
    Domain.retire(
        &Pool[Next], +[](HazardErasable *, void *) {}, nullptr);
    Next = (Next + 1) % (HazardDomain::ScanThreshold + 1);
  }
  Domain.drainAll();
}

void BM_TaggedTreiberPushPop(benchmark::State &State) {
  struct Node {
    Node *Next = nullptr;
  };
  Node N;
  TreiberStack<Node> Stack;
  for (auto _ : State) {
    Stack.push(&N);
    benchmark::DoNotOptimize(Stack.pop());
  }
}

void BM_DynamicStackPushPop(benchmark::State &State) {
  HazardDomain Domain;
  LockFreeStack<std::uint64_t> Stack(Domain);
  std::uint64_t V = 0;
  for (auto _ : State) {
    Stack.push(1);
    benchmark::DoNotOptimize(Stack.pop(V));
  }
}

void BM_MsQueueEnqueueDequeue(benchmark::State &State) {
  MSQueue<std::uint64_t> Queue;
  std::uint64_t V = 0;
  for (auto _ : State) {
    Queue.enqueue(1);
    benchmark::DoNotOptimize(Queue.dequeue(V));
  }
}

void BM_MichaelSetInsertRemove(benchmark::State &State) {
  HazardDomain Domain;
  MichaelSet<std::uint64_t> Set(Domain);
  // Pre-populate so operations traverse a realistic short list.
  for (std::uint64_t K = 0; K < 16; ++K)
    Set.insert(K * 2);
  for (auto _ : State) {
    Set.insert(101);
    Set.remove(101);
  }
}

void BM_MichaelHashSetMixed(benchmark::State &State) {
  HazardDomain Domain;
  MichaelHashSet<std::uint64_t> Set(1024, Domain);
  for (std::uint64_t K = 0; K < 4096; ++K)
    Set.insert(K);
  XorShift128 Rng(3);
  for (auto _ : State) {
    const std::uint64_t K = Rng.nextBounded(8192);
    switch (Rng.nextBounded(4)) {
    case 0:
      Set.insert(K);
      break;
    case 1:
      Set.remove(K);
      break;
    default:
      benchmark::DoNotOptimize(Set.contains(K));
    }
  }
}

} // namespace

BENCHMARK(BM_HazardProtectClear);
BENCHMARK(BM_HazardRetireReclaim);
BENCHMARK(BM_TaggedTreiberPushPop);
BENCHMARK(BM_DynamicStackPushPop);
BENCHMARK(BM_MsQueueEnqueueDequeue);
BENCHMARK(BM_MichaelSetInsertRemove);
BENCHMARK(BM_MichaelHashSetMixed);

BENCHMARK_MAIN();
