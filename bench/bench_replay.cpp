//===- bench_replay.cpp - Recorded-trace replay benchmark -----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Replays an lfm-alloctrace-v1 recording (captured from any preloaded
// binary with LFM_TRACE_RECORD=<path>, see docs/OBSERVABILITY.md) against
// every allocator, reproducing the recorded thread count, per-thread op
// order, and cross-thread-free topology. Where bench_traces runs
// synthetic application classes, this runs the real thing.
//
// Usage: bench_replay <trace-file> [--no-latency]
//
//===----------------------------------------------------------------------===//

#include "harness/ReplayWorkload.h"
#include "trace/TraceReader.h"

#include <cstdio>
#include <cstring>

using namespace lfm;

int main(int argc, char **argv) {
  const char *Path = nullptr;
  unsigned SampleEvery = 16;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--no-latency") == 0)
      SampleEvery = 0;
    else if (argv[I][0] != '-')
      Path = argv[I];
  }
  if (Path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_replay <trace-file> [--no-latency]\n"
                 "  record one with: LD_PRELOAD=liblfmalloc_preload.so "
                 "LFM_TRACE_RECORD=app.trace <cmd>\n");
    return 2;
  }

  const trace::TraceFile File = trace::readTraceFile(Path);
  if (File.Status == trace::ReadStatus::Corrupt) {
    std::fprintf(stderr, "bench_replay: %s: %s\n", Path, File.Error.c_str());
    return 1;
  }
  if (File.Status == trace::ReadStatus::Truncated)
    std::fprintf(stderr, "note: %s (replaying the clean prefix)\n",
                 File.Error.c_str());

  const trace::ReplayPlan Plan = trace::buildReplayPlan(File);
  std::printf("Trace %s: %llu ops on %zu threads (%llu allocs, %llu frees, "
              "%llu cross-thread frees, %llu recorded drops)\n",
              Path, static_cast<unsigned long long>(File.TotalOps),
              File.Threads.size(),
              static_cast<unsigned long long>(Plan.TotalAllocs),
              static_cast<unsigned long long>(Plan.TotalFrees),
              static_cast<unsigned long long>(Plan.CrossThreadFrees),
              static_cast<unsigned long long>(File.TotalDropped));

  const auto Threads = static_cast<unsigned>(File.Threads.size());
  std::printf("%-10s %12s %10s %28s\n", "", "Mops/s", "peak MB",
              "latency ns");
  for (AllocatorKind K :
       {AllocatorKind::LockFree, AllocatorKind::Hoard,
        AllocatorKind::Ptmalloc, AllocatorKind::SerialLock}) {
    auto Alloc = makeAllocator(K, Threads);
    const RecordedReplayResult R = replayRecorded(*Alloc, Plan, SampleEvery);
    std::printf("%-10s %12.2f %10.2f %28s\n", allocatorKindName(K),
                R.throughput() / 1e6,
                static_cast<double>(R.PeakBytes) / 1048576,
                SampleEvery != 0 ? R.LatencyNs.summary().c_str() : "-");
    if (R.FailedAllocs != 0)
      std::printf("  !! %llu replay-time allocation failures\n",
                  static_cast<unsigned long long>(R.FailedAllocs));
  }
  return 0;
}
