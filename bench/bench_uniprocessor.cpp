//===- bench_uniprocessor.cpp - §4.2.4 uniprocessor optimization ----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Reproduces §4.2.4: "we modified a version of our allocator such that
// threads use only one heap, and thus when executing malloc, threads do
// not need to know their id. This optimization achieved 15% increase in
// contention-free speedup on Linux scalability ... When we used multiple
// threads on the same processor, performance remained unaffected, as our
// allocator is preemption-tolerant."
//
// Shape to reproduce: new-uni >= new contention-free, and new-uni does
// not collapse when oversubscribed.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include <cstdio>

using namespace lfm;

int main() {
  const std::uint64_t Pairs = benchScale().scaled(500'000);
  const WorkloadFn Fn = [=](MallocInterface &A, unsigned T) {
    return runLinuxScalability(A, T, Pairs);
  };

  std::printf("§4.2.4 Uniprocessor optimization — Linux scalability, %llu "
              "pairs/thread\n\n",
              static_cast<unsigned long long>(Pairs));

  // Contention-free comparison (1 thread).
  double MultiTput = 0, UniTput = 0;
  {
    spawnDeadThread();
    auto Multi = makeAllocator(AllocatorKind::LockFree, 16);
    MultiTput = Fn(*Multi, 1).throughput();
    spawnDeadThread();
    auto Uni = makeAllocator(AllocatorKind::LockFreeUni, 1);
    UniTput = Fn(*Uni, 1).throughput();
  }
  std::printf("contention-free  new(16 heaps): %12.0f pairs/s\n", MultiTput);
  std::printf("contention-free  new-uni(1 heap): %10.0f pairs/s\n", UniTput);
  std::printf("uni speedup over multi: %.2fx (paper: ~1.15x)\n\n",
              MultiTput > 0 ? UniTput / MultiTput : 0);

  // Preemption tolerance: many threads on one heap, oversubscribed.
  std::printf("%8s %14s %s\n", "threads", "pairs/s", "(new-uni, one heap, "
                                                     "oversubscribed)");
  for (unsigned Threads : {1u, 2u, 4u, 8u, 16u}) {
    auto Uni = makeAllocator(AllocatorKind::LockFreeUni, 1);
    const WorkloadResult R = Fn(*Uni, Threads);
    std::printf("%8u %14.0f\n", Threads, R.throughput());
  }
  return 0;
}
