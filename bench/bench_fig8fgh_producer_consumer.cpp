//===- bench_fig8fgh_producer_consumer.cpp - Paper Fig. 8(f-h) ------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Regenerates Fig. 8(f), (g) and (h): the lock-free Producer-consumer
// benchmark at work = 500, 750 and 1000. One producer feeds tasks through
// a lock-free FIFO to the remaining threads; every task costs the producer
// 3 mallocs and the consumer 1 malloc + 4 frees. The paper's headline:
// Hoard collapses under contention on the producer's heap; the lock-free
// allocator does not, though 75% of operations target one heap.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include <cstdio>

using namespace lfm;

int main(int Argc, char **Argv) {
  benchInit(Argc, Argv);
  const double Seconds = benchScale().Seconds;
  // A smaller database than the paper's 1M keeps per-cell setup cheap; the
  // allocation pattern (the object of the experiment) is unchanged.
  const std::uint32_t DbSize = 1u << 18;
  for (unsigned Work : {500u, 750u, 1000u}) {
    char Title[96];
    std::snprintf(Title, sizeof(Title),
                  "Fig. 8(%c) Producer-consumer, work = %u (%.2f s phase; "
                  "paper: 30 s)",
                  Work == 500 ? 'f' : Work == 750 ? 'g' : 'h', Work,
                  Seconds);
    runStandardFigure(Title,
                      [=](MallocInterface &Alloc, unsigned Threads) {
                        return runProducerConsumer(Alloc, Threads, Work,
                                                   Seconds, DbSize);
                      });
  }
  return 0;
}
