//===- bench_memory_return.cpp - RSS over a spike-idle-spike cycle --------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Measures what the memory-return subsystem actually gives back to the
// OS. The workload is the canonical cache-retention embarrassment: a
// large allocation spike, then idle. A retain-everything allocator keeps
// the spike's RSS forever; the retention policies (explicit trim, a
// watermark on the superblock cache, jemalloc-style decay) should return
// most of it while keeping the address ranges mapped for the next spike.
//
// Four policy rows, each on a fresh allocator instance:
//   retain-all      the paper's base behaviour; nothing returned (baseline)
//   explicit-trim   releaseMemory(0) after the frees (lf_malloc_trim path)
//   watermark-8MB   RetainMaxBytes=8MB; release decommits past the mark
//   decay-100ms     RetainDecayMs=100; slow-path-driven background trim
//
// Columns are process RSS (from /proc/self/statm) at the phase edges and
// the fraction of the spike's RSS growth returned while idle. A second
// spike at the end proves decommitted ranges refault cleanly and reuse
// stays allocation-correct.
//
// Shape to reproduce: retain-all returns ~0%; explicit-trim and decay
// >= 80% (hyperblock parking keeps only one header page per MB); the
// watermark row lands lower (~70%) because the per-superblock decommit
// must keep each free-list link page resident — its job is bounding the
// cache, not emptying it.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"
#include "lfmalloc/Config.h"
#include "lfmalloc/LFAllocator.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

/// Current resident set in bytes (statm field 2, in pages).
std::size_t currentRssBytes() {
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long SizePages = 0, RssPages = 0;
  const int Got = std::fscanf(F, "%llu %llu", &SizePages, &RssPages);
  std::fclose(F);
  if (Got != 2)
    return 0;
  return static_cast<std::size_t>(RssPages) * OsPageSize;
}

constexpr std::size_t BlockBytes = 1024;

/// Allocates and touches \p Count blocks so their pages are resident.
void spike(LFAllocator &Alloc, std::vector<void *> &Blocks,
           std::size_t Count) {
  Blocks.clear();
  Blocks.reserve(Count);
  for (std::size_t I = 0; I < Count; ++I) {
    void *P = Alloc.allocate(BlockBytes);
    if (!P)
      break;
    std::memset(P, 0xA5, BlockBytes);
    Blocks.push_back(P);
  }
}

void freeAll(LFAllocator &Alloc, std::vector<void *> &Blocks) {
  for (void *P : Blocks)
    Alloc.deallocate(P);
  Blocks.clear();
}

struct Policy {
  const char *Name;
  std::size_t RetainMaxBytes;
  std::int64_t RetainDecayMs;
  bool ExplicitTrim;
};

/// One measured policy row, kept so the optional --json report can be
/// written in one shot after the table prints.
struct PolicyResult {
  const char *Name;
  std::size_t Start, Peak, Freed, Idle, Respike;
  double Returned;
};

/// Writes the machine-readable counterpart of the printed table. The CI
/// baseline gate (tools/check_bench_baseline.py) compares the
/// returned_fraction and respike/peak ratios against checked-in bands;
/// absolute byte counts are reported for humans but never gated on.
void writeJsonReport(const char *Path, std::size_t SpikeMb,
                     const std::vector<PolicyResult> &Rows) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "bench_memory_return: cannot write %s\n", Path);
    std::exit(1);
  }
  std::fprintf(F, "{\"schema\":\"lfm-bench-memret-v1\",\"spike_mb\":%zu,"
                  "\"policies\":[",
               SpikeMb);
  bool First = true;
  for (const PolicyResult &R : Rows) {
    std::fprintf(F,
                 "%s{\"name\":\"%s\",\"start_bytes\":%zu,\"peak_bytes\":%zu,"
                 "\"freed_bytes\":%zu,\"idle_bytes\":%zu,"
                 "\"respike_bytes\":%zu,\"returned_fraction\":%.6f}",
                 First ? "" : ",", R.Name, R.Start, R.Peak, R.Freed, R.Idle,
                 R.Respike, R.Returned);
    First = false;
  }
  std::fprintf(F, "]}\n");
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  benchInit(Argc, Argv);
  const char *JsonPath = nullptr;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
  const BenchScale &Scale = benchScale();
  // ~128 MB spike at scale 1; floor of 16 MB keeps the signal above page
  // cache noise even under aggressive scaling.
  std::size_t SpikeBlocks =
      static_cast<std::size_t>(Scale.scaled(128 * 1024));
  if (SpikeBlocks < 16 * 1024)
    SpikeBlocks = 16 * 1024;

  const Policy Policies[] = {
      {"retain-all", ~std::size_t{0}, -1, false},
      {"explicit-trim", ~std::size_t{0}, -1, true},
      {"watermark-8MB", std::size_t{8} * 1024 * 1024, -1, false},
      {"decay-100ms", ~std::size_t{0}, 100, false},
  };

  std::vector<PolicyResult> Rows;
  std::printf("Memory return over a spike-idle-spike cycle (%zu MB spike)\n",
              SpikeBlocks * BlockBytes / (1024 * 1024));
  std::printf("%-15s %10s %10s %10s %10s %9s %10s\n", "", "start-MB",
              "peak-MB", "freed-MB", "idle-MB", "returned", "respike-MB");

  for (const Policy &Pol : Policies) {
    AllocatorOptions Opts;
    Opts.RetainMaxBytes = Pol.RetainMaxBytes;
    Opts.RetainDecayMs = Pol.RetainDecayMs;
    LFAllocator Alloc(Opts);
    std::vector<void *> Blocks;

    const std::size_t Start = currentRssBytes();
    spike(Alloc, Blocks, SpikeBlocks);
    const std::size_t Peak = currentRssBytes();
    freeAll(Alloc, Blocks);
    const std::size_t Freed = currentRssBytes();

    if (Pol.ExplicitTrim) {
      Alloc.releaseMemory(0);
    } else if (Pol.RetainDecayMs >= 0) {
      // Decay trims from allocator slow paths; idle past the period, then
      // nudge with a burst big enough to leave the fast path (a lone
      // alloc/free recycles one Active block and never reaches the cache).
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Pol.RetainDecayMs + 50));
      std::vector<void *> Nudge;
      spike(Alloc, Nudge, 256);
      freeAll(Alloc, Nudge);
    }
    const std::size_t Idle = currentRssBytes();

    const double SpikeGrowth =
        Peak > Start ? static_cast<double>(Peak - Start) : 1.0;
    const double Returned =
        Idle < Peak ? static_cast<double>(Peak - Idle) / SpikeGrowth : 0.0;

    // Second spike: decommitted superblocks and parked hyperblocks must
    // come back as usable zero-filled memory.
    spike(Alloc, Blocks, SpikeBlocks);
    const std::size_t Respike = currentRssBytes();
    freeAll(Alloc, Blocks);

    std::printf("%-15s %10.1f %10.1f %10.1f %10.1f %8.1f%% %10.1f\n",
                Pol.Name, Start / 1048576.0, Peak / 1048576.0,
                Freed / 1048576.0, Idle / 1048576.0, Returned * 100,
                Respike / 1048576.0);
    Rows.push_back({Pol.Name, Start, Peak, Freed, Idle, Respike, Returned});
  }

  std::printf("\nShape to reproduce: retain-all ~0%% returned; "
              "explicit-trim and decay >= 80%%; watermark bounds the cache "
              "(lower %% is by design).\n");
  if (JsonPath)
    writeJsonReport(JsonPath, SpikeBlocks * BlockBytes / (1024 * 1024), Rows);
  return 0;
}
