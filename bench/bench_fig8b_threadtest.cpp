//===- bench_fig8b_threadtest.cpp - Paper Fig. 8(b) -----------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Regenerates Fig. 8(b): Threadtest speedup over contention-free libc.
// Paper parameters: 100 iterations of allocating 100,000 8-byte blocks and
// freeing them in order, per thread; we default to 20 x 10,000.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include <cstdio>

using namespace lfm;

int main(int Argc, char **Argv) {
  benchInit(Argc, Argv);
  const unsigned Iterations =
      static_cast<unsigned>(benchScale().scaled(20));
  const unsigned Blocks = 10'000;
  std::printf("Fig. 8(b) Threadtest — %u iterations x %u 8 B blocks per "
              "thread (paper: 100 x 100,000)\n",
              Iterations, Blocks);
  runStandardFigure("Threadtest speedup",
                    [=](MallocInterface &Alloc, unsigned Threads) {
                      return runThreadtest(Alloc, Threads, Iterations,
                                           Blocks);
                    });
  return 0;
}
