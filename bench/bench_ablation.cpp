//===- bench_ablation.cpp - Design-choice ablations -----------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Ablates the design decisions the paper calls out in §3:
//
//  A. Credits (§3.2.1): the Active word's credits let the common-case
//     malloc skip re-reserving from the anchor. CreditsLimit = 1 disables
//     batching; 64 is the paper's MAXCREDITS.
//  B. Partial-list discipline (§3.2.6): FIFO (preferred) vs LIFO.
//  C. Superblock size (§3.1 "e.g., 16 KB").
//  D. Hyperblock batching (§3.2.5) vs returning every EMPTY superblock to
//     the OS directly — trades mmap/munmap rate for retained memory.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"
#include "lfmalloc/Config.h"

#include <cstdio>

using namespace lfm;

namespace {

AllocatorOptions baseOptions() {
  AllocatorOptions Opts;
  Opts.NumHeaps = benchScale().MaxThreads;
  return Opts;
}

} // namespace

int main() {
  const BenchScale &Scale = benchScale();
  const std::uint64_t Pairs = Scale.scaled(500'000);
  const double Seconds = Scale.Seconds;

  // --- A: credits batching, contention-free Linux scalability. ---
  std::printf("Ablation A: Active-word credits limit (Linux scalability, "
              "1 thread, %llu pairs)\n",
              static_cast<unsigned long long>(Pairs));
  std::printf("%12s %14s\n", "credits", "pairs/s");
  for (unsigned Credits : {1u, 2u, 4u, 16u, 64u}) {
    AllocatorOptions Opts = baseOptions();
    Opts.CreditsLimit = Credits;
    auto Alloc = makeLockFreeAllocator(Opts, "new");
    const WorkloadResult R = runLinuxScalability(*Alloc, 1, Pairs);
    std::printf("%12u %14.0f\n", Credits, R.throughput());
  }

  // --- B: FIFO vs LIFO partial lists under Larson churn. ---
  std::printf("\nAblation B: partial-list policy (Larson, %u threads, "
              "%.2f s)\n",
              Scale.MaxThreads, Seconds);
  std::printf("%12s %14s\n", "policy", "pairs/s");
  for (PartialListPolicy Policy :
       {PartialListPolicy::Fifo, PartialListPolicy::Lifo}) {
    AllocatorOptions Opts = baseOptions();
    Opts.PartialPolicy = Policy;
    auto Alloc = makeLockFreeAllocator(
        Opts, Policy == PartialListPolicy::Fifo ? "fifo" : "lifo");
    const WorkloadResult R =
        runLarson(*Alloc, Scale.MaxThreads, 1024, 16, 80, Seconds);
    std::printf("%12s %14.0f\n",
                Policy == PartialListPolicy::Fifo ? "fifo" : "lifo",
                R.throughput());
  }

  // --- C: superblock size under Threadtest. ---
  const unsigned TtIters = static_cast<unsigned>(Scale.scaled(20));
  std::printf("\nAblation C: superblock size (Threadtest, %u threads)\n",
              Scale.MaxThreads);
  std::printf("%12s %14s %12s\n", "sb bytes", "pairs/s", "peak MB");
  for (std::size_t Sb : {4096ul, 8192ul, 16384ul, 32768ul}) {
    AllocatorOptions Opts = baseOptions();
    Opts.SuperblockSize = Sb;
    auto Alloc = makeLockFreeAllocator(Opts, "new");
    const WorkloadResult R =
        runThreadtest(*Alloc, Scale.MaxThreads, TtIters, 10'000);
    std::printf("%12zu %14.0f %12.2f\n", Sb, R.throughput(),
                static_cast<double>(Alloc->pageStats().PeakBytes) / 1048576);
  }

  // --- D: hyperblock batching vs direct OS superblocks under Larson. ---
  std::printf("\nAblation D: hyperblock batching (Larson, %u threads, "
              "%.2f s)\n",
              Scale.MaxThreads, Seconds);
  std::printf("%12s %14s %12s %12s\n", "mode", "pairs/s", "mmap calls",
              "peak MB");
  for (std::size_t Hyper : {0ul, 1048576ul}) {
    AllocatorOptions Opts = baseOptions();
    Opts.HyperblockSize = Hyper;
    auto Alloc = makeLockFreeAllocator(Opts, "new");
    const WorkloadResult R =
        runLarson(*Alloc, Scale.MaxThreads, 1024, 16, 80, Seconds);
    const PageStats St = Alloc->pageStats();
    std::printf("%12s %14.0f %12llu %12.2f\n",
                Hyper ? "hyper-1MB" : "direct", R.throughput(),
                static_cast<unsigned long long>(St.MapCalls),
                static_cast<double>(St.PeakBytes) / 1048576);
  }

  // --- E: Partial slots per heap (§3.2.6 "multiple slots can be used").
  std::printf("\nAblation E: MRU Partial slots per heap (Larson, %u "
              "threads, %.2f s)\n",
              Scale.MaxThreads, Seconds);
  std::printf("%12s %14s\n", "slots", "pairs/s");
  for (unsigned Slots : {1u, 2u, 4u}) {
    AllocatorOptions Opts = baseOptions();
    Opts.PartialSlotsPerHeap = Slots;
    auto Alloc = makeLockFreeAllocator(Opts, "new");
    const WorkloadResult R =
        runLarson(*Alloc, Scale.MaxThreads, 1024, 16, 80, Seconds);
    std::printf("%12u %14.0f\n", Slots, R.throughput());
  }
  return 0;
}
