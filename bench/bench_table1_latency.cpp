//===- bench_table1_latency.cpp - Paper Table 1 ---------------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Regenerates Table 1: contention-free speedup over libc malloc for the
// new allocator, Hoard and Ptmalloc on the three latency-bound benchmarks
// (Linux scalability, Threadtest, Larson). Also prints the absolute
// nanoseconds per malloc/free pair, the quantity behind the paper's
// §4.2.1 numbers (282 ns for the new allocator on POWER4, etc.).
//
// Paper's Table 1 shape to reproduce: new > ptmalloc > hoard > 1.0 on
// every row (the lock-free allocator has the lowest contention-free
// latency; Hoard pays three lock operations per pair, Ptmalloc two).
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include <cstdio>

using namespace lfm;

namespace {

struct Row {
  const char *Name;
  WorkloadFn Fn;
};

} // namespace

int main() {
  const BenchScale &Scale = benchScale();
  const std::uint64_t Pairs = Scale.scaled(500'000);
  const unsigned TtIters = static_cast<unsigned>(Scale.scaled(40));
  const double Seconds = Scale.Seconds;

  const Row Rows[] = {
      {"Linux scalability",
       [=](MallocInterface &A, unsigned T) {
         return runLinuxScalability(A, T, Pairs);
       }},
      {"Threadtest",
       [=](MallocInterface &A, unsigned T) {
         return runThreadtest(A, T, TtIters, 10'000);
       }},
      {"Larson",
       [=](MallocInterface &A, unsigned T) {
         return runLarson(A, T, 1024, 16, 80, Seconds);
       }},
  };
  const AllocatorKind Kinds[] = {AllocatorKind::LockFree,
                                 AllocatorKind::Hoard,
                                 AllocatorKind::Ptmalloc};

  std::printf("Table 1: contention-free speedup over libc malloc\n");
  std::printf("(single worker thread; a dead thread is spawned first per "
              "the paper's footnote 4)\n\n");
  std::printf("%-18s %10s %10s %10s %14s\n", "", "new", "hoard", "ptmalloc",
              "libc ns/pair");

  for (const Row &R : Rows) {
    const double Baseline = contentionFreeLibcBaseline(R.Fn);
    std::printf("%-18s", R.Name);
    for (AllocatorKind K : Kinds) {
      spawnDeadThread();
      auto Alloc = makeAllocator(K, Scale.MaxThreads);
      const WorkloadResult Res = R.Fn(*Alloc, 1);
      std::printf(" %10.2f", Baseline > 0 ? Res.throughput() / Baseline : 0);
      std::fflush(stdout);
    }
    std::printf(" %14.0f\n", Baseline > 0 ? 1e9 / Baseline : 0);
  }

  std::printf("\nAbsolute contention-free latency (ns per malloc/free "
              "pair, Linux scalability):\n");
  const WorkloadFn &Ls = Rows[0].Fn;
  for (AllocatorKind K :
       {AllocatorKind::LockFree, AllocatorKind::Hoard,
        AllocatorKind::Ptmalloc, AllocatorKind::SerialLock}) {
    spawnDeadThread();
    auto Alloc = makeAllocator(K, Scale.MaxThreads);
    const WorkloadResult Res = Ls(*Alloc, 1);
    std::printf("  %-10s %8.1f ns\n", Alloc->name(),
                Res.throughput() > 0 ? 1e9 / Res.throughput() : 0);
  }
  return 0;
}
