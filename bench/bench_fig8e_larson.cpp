//===- bench_fig8e_larson.cpp - Paper Fig. 8(e) ---------------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Regenerates Fig. 8(e): Larson server simulation — random 16-80 byte
// blocks, 1024 live slots per thread seeded by one thread, then a timed
// phase where every thread frees a random victim and reallocates. The
// paper runs 30-second phases; default here is LFM_BENCH_SECONDS (0.4 s).
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include <cstdio>

using namespace lfm;

int main(int Argc, char **Argv) {
  benchInit(Argc, Argv);
  const double Seconds = benchScale().Seconds;
  std::printf("Fig. 8(e) Larson — 1024 slots/thread, 16-80 B, %.2f s timed "
              "phase (paper: 30 s)\n",
              Seconds);
  runStandardFigure("Larson speedup",
                    [=](MallocInterface &Alloc, unsigned Threads) {
                      return runLarson(Alloc, Threads, 1024, 16, 80,
                                       Seconds);
                    });
  return 0;
}
