//===- bench_false_placement.cpp - Fig. 8(c,d) placement proxy ------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Fig. 8(c)/(d) measure the THROUGHPUT cost of allocator-induced false
// sharing, which only exists between distinct caches — a single-core host
// cannot exhibit it. This bench measures the CAUSE instead of the
// symptom: how often an allocator hands blocks that share a cache line to
// different threads. That placement property is exactly what the paper
// credits for Fig. 8(c,d): "Our allocator and Hoard are less likely to
// induce false sharing than Ptmalloc and libc malloc."
//
// Active variant: all threads allocate small blocks simultaneously; count
// cross-thread line-sharing among the live blocks. Passive variant: the
// blocks are then freed by a *different* thread before the next round, so
// an allocator that recycles remote-freed memory across threads gets
// caught (the paper's Passive-false hand-off).
//
//===----------------------------------------------------------------------===//

#include "baselines/AllocatorInterface.h"
#include "harness/Driver.h"
#include "support/Barrier.h"
#include "support/Platform.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

struct PlacementResult {
  std::uint64_t SharingPairs = 0; ///< Cross-thread same-line block pairs.
  std::uint64_t Rounds = 0;
};

PlacementResult measurePlacement(MallocInterface &Alloc, unsigned Threads,
                                 unsigned Rounds, bool Passive) {
  std::vector<void *> Blocks(Threads, nullptr);
  SpinBarrier Bar(Threads);
  PlacementResult Result;
  Result.Rounds = Rounds;
  std::atomic<std::uint64_t> Pairs{0};

  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([&, T] {
      for (unsigned R = 0; R < Rounds; ++R) {
        Blocks[T] = Alloc.malloc(8);
        *static_cast<volatile char *>(Blocks[T]) = 1;
        Bar.arriveAndWait();
        if (T == 0) {
          // Count pairs of distinct threads' live blocks in one line.
          for (unsigned I = 0; I < Threads; ++I)
            for (unsigned J = I + 1; J < Threads; ++J)
              if ((reinterpret_cast<std::uintptr_t>(Blocks[I]) &
                   ~(CacheLineSize - 1)) ==
                  (reinterpret_cast<std::uintptr_t>(Blocks[J]) &
                   ~(CacheLineSize - 1)))
                Pairs.fetch_add(1, std::memory_order_relaxed);
        }
        Bar.arriveAndWait();
        // Active: free our own block. Passive: free a neighbour's, so
        // remote-freed memory is what the allocator recycles next round.
        Alloc.free(Passive ? Blocks[(T + 1) % Threads] : Blocks[T]);
        Bar.arriveAndWait();
      }
    });
  for (auto &T : Ts)
    T.join();
  Result.SharingPairs = Pairs.load();
  return Result;
}

} // namespace

int main() {
  const unsigned Threads = std::min(benchScale().MaxThreads, 8u);
  const unsigned Rounds =
      static_cast<unsigned>(benchScale().scaled(1'000));

  std::printf("Fig. 8(c,d) placement proxy — cross-thread cache-line "
              "sharing of simultaneously live 8 B blocks\n");
  std::printf("(%u threads, %u rounds; lower = less allocator-induced "
              "false sharing)\n\n",
              Threads, Rounds);
  std::printf("%-10s %22s %22s\n", "", "active pairs/round",
              "passive pairs/round");

  for (AllocatorKind K :
       {AllocatorKind::LockFree, AllocatorKind::Hoard,
        AllocatorKind::Ptmalloc, AllocatorKind::SerialLock}) {
    double PerRound[2] = {};
    for (int Passive = 0; Passive <= 1; ++Passive) {
      auto Alloc = makeAllocator(K, Threads);
      const PlacementResult R =
          measurePlacement(*Alloc, Threads, Rounds, Passive != 0);
      PerRound[Passive] =
          static_cast<double>(R.SharingPairs) / R.Rounds;
    }
    std::printf("%-10s %22.3f %22.3f\n", allocatorKindName(K), PerRound[0],
                PerRound[1]);
  }
  std::printf("\nShape to reproduce: new and hoard near zero; ptmalloc "
              "and libc substantial (paper §4.2.2).\n");
  return 0;
}
