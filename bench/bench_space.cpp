//===- bench_space.cpp - §4.2.5 space efficiency --------------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Reproduces §4.2.5: maximum space used by each allocator on the three
// allocation-heavy benchmarks (Threadtest, Larson, Producer-consumer) at
// the full thread count. Paper findings to reproduce:
//
//   "The maximum space used by our allocator was consistently slightly
//    less than that used by Hoard ... The maximum space allocated by
//    Ptmalloc was consistently more ... The ratio of the maximum space
//    allocated by Ptmalloc to [ours], on 16 processors, ranged from 1.16
//    in Threadtest to 3.83 in Larson."
//
// Every allocator meters its own PageAllocator, so "space" is exactly the
// bytes it holds mapped from the OS at peak.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"
#include "lfmalloc/Config.h"

#include <cstdio>
#include <memory>

using namespace lfm;

int main() {
  const BenchScale &Scale = benchScale();
  const unsigned Threads = Scale.MaxThreads;
  const double Seconds = Scale.Seconds;
  const unsigned TtIters = static_cast<unsigned>(Scale.scaled(20));

  struct Row {
    const char *Name;
    WorkloadFn Fn;
  } Rows[] = {
      {"Threadtest",
       [=](MallocInterface &A, unsigned T) {
         return runThreadtest(A, T, TtIters, 10'000);
       }},
      {"Larson",
       [=](MallocInterface &A, unsigned T) {
         return runLarson(A, T, 1024, 16, 80, Seconds);
       }},
      {"Producer-consumer",
       [=](MallocInterface &A, unsigned T) {
         return runProducerConsumer(A, T, 500, Seconds, 1u << 18);
       }},
  };

  std::printf("§4.2.5 Maximum space used (MB at peak), %u threads\n\n",
              Threads);
  std::printf("%-20s %10s %10s %10s %16s\n", "", "new", "hoard", "ptmalloc",
              "ptmalloc/new");

  for (const Row &R : Rows) {
    double Peak[3] = {};
    for (unsigned I = 0; I < 3; ++I) {
      std::unique_ptr<MallocInterface> Alloc;
      if (I == 0) {
        // The paper's base design returns every EMPTY superblock to the
        // OS directly; hyperblock caching (an extension) would quantize
        // the footprint to 1 MB and obscure the comparison.
        AllocatorOptions Opts;
        Opts.NumHeaps = Threads;
        Opts.HyperblockSize = 0;
        Alloc = makeLockFreeAllocator(Opts, "new");
      } else {
        Alloc = makeAllocator(I == 1 ? AllocatorKind::Hoard
                                     : AllocatorKind::Ptmalloc,
                              Threads);
      }
      R.Fn(*Alloc, Threads);
      Peak[I] = static_cast<double>(Alloc->pageStats().PeakBytes) / 1048576;
    }
    std::printf("%-20s %10.2f %10.2f %10.2f %16.2f\n", R.Name, Peak[0],
                Peak[1], Peak[2], Peak[0] > 0 ? Peak[2] / Peak[0] : 0);
  }
  std::printf("\nShape to reproduce: new <= hoard < ptmalloc on every "
              "row.\n");
  return 0;
}
