//===- bench_space.cpp - §4.2.5 space efficiency --------------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Reproduces §4.2.5: maximum space used by each allocator on the three
// allocation-heavy benchmarks (Threadtest, Larson, Producer-consumer) at
// the full thread count. Paper findings to reproduce:
//
//   "The maximum space used by our allocator was consistently slightly
//    less than that used by Hoard ... The maximum space allocated by
//    Ptmalloc was consistently more ... The ratio of the maximum space
//    allocated by Ptmalloc to [ours], on 16 processors, ranged from 1.16
//    in Threadtest to 3.83 in Larson."
//
// Every allocator meters its own PageAllocator, so "space" is exactly the
// bytes it holds mapped from the OS at peak.
//
// For the lock-free allocator the heap-topology inspector additionally
// reports measured fragmentation near peak footprint: a monitor thread
// polls topologySnapshot() during the run and keeps the snapshot taken at
// the highest bytes-in-use. External fragmentation (free blocks stranded
// inside non-empty superblocks) works in every build; internal
// fragmentation (requested vs backing bytes) needs the sampling profiler,
// so it reads "-" in LFMALLOC_TELEMETRY=OFF builds.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"
#include "lfmalloc/Config.h"
#include "lfmalloc/LFAllocator.h"
#include "profiling/HeapTopology.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

using namespace lfm;

namespace {

/// Polls the lock-free allocator's topology during a workload, keeping the
/// snapshot observed at the highest bytes-from-OS — fragmentation at the
/// moment that matters for §4.2.5, not after teardown has emptied the heap.
class PeakTopologyMonitor {
public:
  explicit PeakTopologyMonitor(LFAllocator *Alloc) : Alloc(Alloc) {
    if (Alloc)
      Poller = std::thread([this] { run(); });
  }

  ~PeakTopologyMonitor() { stop(); }

  void stop() {
    Stop.store(true, std::memory_order_relaxed);
    if (Poller.joinable())
      Poller.join();
  }

  const profiling::TopologySnapshot &peak() const { return Best; }

private:
  void run() {
    std::uint64_t BestBytes = 0;
    profiling::TopologySnapshot S;
    while (!Stop.load(std::memory_order_relaxed)) {
      Alloc->topologySnapshot(S);
      if (S.Space.BytesInUse >= BestBytes) {
        BestBytes = S.Space.BytesInUse;
        Best = S;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  LFAllocator *Alloc;
  std::atomic<bool> Stop{false};
  profiling::TopologySnapshot Best;
  std::thread Poller;
};

} // namespace

int main() {
  const BenchScale &Scale = benchScale();
  const unsigned Threads = Scale.MaxThreads;
  const double Seconds = Scale.Seconds;
  const unsigned TtIters = static_cast<unsigned>(Scale.scaled(20));

  struct Row {
    const char *Name;
    WorkloadFn Fn;
  } Rows[] = {
      {"Threadtest",
       [=](MallocInterface &A, unsigned T) {
         return runThreadtest(A, T, TtIters, 10'000);
       }},
      {"Larson",
       [=](MallocInterface &A, unsigned T) {
         return runLarson(A, T, 1024, 16, 80, Seconds);
       }},
      {"Producer-consumer",
       [=](MallocInterface &A, unsigned T) {
         return runProducerConsumer(A, T, 500, Seconds, 1u << 18);
       }},
  };

  std::printf("§4.2.5 Maximum space used (MB at peak), %u threads\n",
              Threads);
  std::printf("(int-frag / ext-frag: lock-free allocator's measured "
              "fragmentation near peak)\n\n");
  std::printf("%-20s %10s %10s %10s %16s %9s %9s\n", "", "new", "hoard",
              "ptmalloc", "ptmalloc/new", "int-frag", "ext-frag");

  for (const Row &R : Rows) {
    double Peak[3] = {};
    double IntFrag = -1.0, ExtFrag = -1.0;
    for (unsigned I = 0; I < 3; ++I) {
      std::unique_ptr<MallocInterface> Alloc;
      if (I == 0) {
        // The paper's base design returns every EMPTY superblock to the
        // OS directly; hyperblock caching (an extension) would quantize
        // the footprint to 1 MB and obscure the comparison.
        AllocatorOptions Opts;
        Opts.NumHeaps = Threads;
        Opts.HyperblockSize = 0;
        // Internal fragmentation needs request sizes, which only the
        // sampling profiler records. Sample densely — this is a space
        // study, not a latency one. No-op under LFMALLOC_TELEMETRY=OFF.
        Opts.EnableProfiler = true;
        Opts.ProfileRateBytes = 16 * 1024;
        Opts.ProfileLiveCapacity = 1u << 16;
        Alloc = makeLockFreeAllocator(Opts, "new");
      } else {
        Alloc = makeAllocator(I == 1 ? AllocatorKind::Hoard
                                     : AllocatorKind::Ptmalloc,
                              Threads);
      }
      {
        PeakTopologyMonitor Monitor(Alloc->lockFreeAllocator());
        R.Fn(*Alloc, Threads);
        Monitor.stop();
        if (I == 0) {
          const profiling::TopologySnapshot &T = Monitor.peak();
          ExtFrag = T.externalFragRatio();
          if (T.ProfilerAttached)
            IntFrag = T.internalFragRatio();
        }
      }
      Peak[I] = static_cast<double>(Alloc->pageStats().PeakBytes) / 1048576;
    }
    char IntBuf[16] = "-";
    if (IntFrag >= 0)
      std::snprintf(IntBuf, sizeof(IntBuf), "%.1f%%", IntFrag * 100);
    std::printf("%-20s %10.2f %10.2f %10.2f %16.2f %9s %8.1f%%\n", R.Name,
                Peak[0], Peak[1], Peak[2],
                Peak[0] > 0 ? Peak[2] / Peak[0] : 0, IntBuf, ExtFrag * 100);
  }
  std::printf("\nShape to reproduce: new <= hoard < ptmalloc on every "
              "row.\n");
  return 0;
}
