//===- bench_fig8d_passive_false.cpp - Paper Fig. 8(d) --------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Regenerates Fig. 8(d): Passive false sharing — like Active-false, but
// one thread allocates the initial blocks and hands them to the others,
// which free them immediately; a placement policy that then re-issues
// line-sharing blocks across threads gets caught.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include <cstdio>

using namespace lfm;

int main(int Argc, char **Argv) {
  benchInit(Argc, Argv);
  const unsigned Pairs = static_cast<unsigned>(benchScale().scaled(500));
  const unsigned Writes = 1'000;
  std::printf("Fig. 8(d) Passive-false — %u pairs x %u writes/byte per "
              "thread (paper: 10,000 x 1,000)\n",
              Pairs, Writes);
  runStandardFigure("Passive false sharing speedup",
                    [=](MallocInterface &Alloc, unsigned Threads) {
                      return runFalseSharing(Alloc, Threads, Pairs, Writes,
                                             /*Passive=*/true);
                    });
  return 0;
}
