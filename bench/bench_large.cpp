//===- bench_large.cpp - Large-object backend comparison ------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Measures what the buddy large backend buys over the paper's
// per-operation mmap/munmap round trip. The workload is the large-object
// pattern the os-direct path handles worst: bursts of mixed 8 KiB - 8 MiB
// allocations (log-uniform, so small orders dominate counts and big
// orders dominate bytes) with cross-thread frees — thread T frees what
// thread T+1 allocated, as a router/pipeline would.
//
// Two rows, each a fresh allocator on the identical seeded workload:
//   os-direct   LFM_LARGE_BACKEND=os behavior: one map per malloc, one
//               unmap per free (baseline)
//   buddy       the lock-free buddy spans: syscalls only to reserve a
//               span, commit fresh pages, and decommit past the watermark
//
// Columns are throughput, total OS calls for the run (map + unmap +
// reserve + decommit), and RSS at the peak and after lf_malloc_trim. The
// headline shape: the buddy row makes >= 10x fewer OS calls (steady state
// makes none at all) and trims back to the same idle RSS — address space
// stays reserved, physical pages go back.
//
// The CI baseline gate (bench/baselines/large.json) bounds the
// buddy-row ratio metrics, which are precomputed here so the checker
// (tools/check_bench_baseline.py, memret format) needs no new logic.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"
#include "lfmalloc/Config.h"
#include "lfmalloc/LFAllocator.h"
#include "support/Barrier.h"
#include "support/Random.h"
#include "support/Timing.h"

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

using namespace lfm;

namespace {

constexpr unsigned NumThreads = 4;
constexpr std::size_t MinBytes = 8 * 1024;
constexpr std::size_t MaxBytes = 8 * 1024 * 1024;

/// Current resident set in bytes (statm field 2, in pages).
std::size_t currentRssBytes() {
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long SizePages = 0, RssPages = 0;
  const int Got = std::fscanf(F, "%llu %llu", &SizePages, &RssPages);
  std::fclose(F);
  if (Got != 2)
    return 0;
  return static_cast<std::size_t>(RssPages) * OsPageSize;
}

/// Log-uniform size in [MinBytes, MaxBytes]: pick an octave, then a point
/// inside it. Counts concentrate in the small orders, bytes in the large.
std::size_t drawSize(XorShift128 &Rng) {
  constexpr unsigned Octaves = 10; // 8 KiB << 10 == 8 MiB
  const unsigned Oct = static_cast<unsigned>(Rng.nextBounded(Octaves));
  const std::size_t Lo = MinBytes << Oct;
  return Rng.nextInRange(Lo, Lo * 2 - 1);
}

struct RowResult {
  const char *Name;
  std::uint64_t Ops;
  double Seconds;
  std::uint64_t Syscalls;
  std::size_t PeakRss;
  std::size_t IdleRss;
};

/// Runs the burst/cross-free workload on \p Alloc and fills a row.
RowResult runRow(const char *Name, LFAllocator &Alloc, unsigned Rounds,
                 unsigned BlocksPerThread) {
  // Burst slots: Slots[T] holds thread T's allocations of the current
  // round; in the free phase thread T drains Slots[(T+1) % NumThreads].
  std::vector<std::vector<void *>> Slots(NumThreads);
  for (auto &S : Slots)
    S.resize(BlocksPerThread);

  const PageStats Before = Alloc.pageStats();
  SpinBarrier Barrier(NumThreads);
  std::size_t PeakRss = 0;
  const std::uint64_t StartNs = monotonicNanos();

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      XorShift128 Rng(0x1afe1afeULL * (T + 1) + 17);
      for (unsigned Round = 0; Round < Rounds; ++Round) {
        for (unsigned I = 0; I < BlocksPerThread; ++I) {
          const std::size_t Bytes = drawSize(Rng);
          void *P = Alloc.allocate(Bytes);
          if (P) // Touch one page per 64 KiB: realistic partial writes.
            for (std::size_t Off = 0; Off < Bytes; Off += 64 * 1024)
              static_cast<char *>(P)[Off] = static_cast<char>(Round);
          Slots[T][I] = P;
        }
        Barrier.arriveAndWait();
        if (T == 0 && Round == Rounds / 2) {
          const std::size_t Rss = currentRssBytes();
          if (Rss > PeakRss)
            PeakRss = Rss;
        }
        // Cross-thread frees, newest-first so sibling pairs reform under
        // contention rather than in allocation order.
        std::vector<void *> &Victim = Slots[(T + 1) % NumThreads];
        for (unsigned I = BlocksPerThread; I-- > 0;)
          if (Victim[I]) {
            Alloc.deallocate(Victim[I]);
            Victim[I] = nullptr;
          }
        Barrier.arriveAndWait();
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  const double Seconds = (monotonicNanos() - StartNs) / 1e9;
  {
    const std::size_t Rss = currentRssBytes();
    if (Rss > PeakRss)
      PeakRss = Rss;
  }
  Alloc.releaseMemory(0);
  const std::size_t IdleRss = currentRssBytes();
  const PageStats After = Alloc.pageStats();

  RowResult Row;
  Row.Name = Name;
  Row.Ops = std::uint64_t{NumThreads} * Rounds * BlocksPerThread;
  Row.Seconds = Seconds;
  Row.Syscalls = (After.MapCalls - Before.MapCalls) +
                 (After.UnmapCalls - Before.UnmapCalls) +
                 (After.ReserveCalls - Before.ReserveCalls) +
                 (After.DecommitCalls - Before.DecommitCalls);
  Row.PeakRss = PeakRss;
  Row.IdleRss = IdleRss;
  return Row;
}

} // namespace

int main(int Argc, char **Argv) {
  benchInit(Argc, Argv);
  const char *JsonPath = nullptr;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      JsonPath = Argv[I] + 7;
  const BenchScale &Scale = benchScale();
  unsigned Rounds = static_cast<unsigned>(Scale.scaled(24));
  if (Rounds < 4)
    Rounds = 4;
  constexpr unsigned BlocksPerThread = 24; // ~70 MB live per burst.

  std::printf("Large-object backends: %u threads, %u rounds x %u blocks, "
              "%zu KiB - %zu MiB log-uniform, cross-thread frees\n",
              NumThreads, Rounds, BlocksPerThread, MinBytes / 1024,
              MaxBytes / (1024 * 1024));
  std::printf("%-10s %10s %10s %10s %10s %10s\n", "", "ops/s", "os-calls",
              "calls/op", "peak-MB", "idle-MB");

  std::vector<RowResult> Rows;
  for (const bool Buddy : {false, true}) {
    AllocatorOptions Opts;
    Opts.LargeBackend =
        Buddy ? LargeBackendKind::Buddy : LargeBackendKind::OsDirect;
    LFAllocator Alloc(Opts);
    const RowResult Row = runRow(Buddy ? "buddy" : "os-direct", Alloc,
                                 Rounds, BlocksPerThread);
    std::printf("%-10s %10.0f %10llu %10.3f %10.1f %10.1f\n", Row.Name,
                Row.Ops / Row.Seconds,
                static_cast<unsigned long long>(Row.Syscalls),
                static_cast<double>(Row.Syscalls) / Row.Ops,
                Row.PeakRss / 1048576.0, Row.IdleRss / 1048576.0);
    Rows.push_back(Row);
  }

  const RowResult &Os = Rows[0], &Bd = Rows[1];
  const double SyscallReduction =
      static_cast<double>(Os.Syscalls) / (Bd.Syscalls ? Bd.Syscalls : 1);
  const double ThroughputOverOs =
      (Bd.Ops / Bd.Seconds) / (Os.Ops / Os.Seconds);
  const double PeakRssOverOs =
      static_cast<double>(Bd.PeakRss) / (Os.PeakRss ? Os.PeakRss : 1);
  const double IdleRssOverOs =
      static_cast<double>(Bd.IdleRss) / (Os.IdleRss ? Os.IdleRss : 1);
  std::printf("\nbuddy vs os-direct: %.1fx fewer OS calls, %.2fx throughput, "
              "%.2fx peak RSS, %.2fx idle RSS after trim\n",
              SyscallReduction, ThroughputOverOs, PeakRssOverOs,
              IdleRssOverOs);
  std::printf("Shape to reproduce: >= 10x fewer OS calls; peak and idle RSS "
              "within noise of os-direct (reserved space is not resident).\n");

  if (JsonPath) {
    std::FILE *F = std::fopen(JsonPath, "w");
    if (!F) {
      std::fprintf(stderr, "bench_large: cannot write %s\n", JsonPath);
      return 1;
    }
    // memret-shaped report so tools/check_bench_baseline.py gates the
    // ratio metrics (precomputed on the buddy row) with no new logic.
    std::fprintf(F, "{\"schema\":\"lfm-bench-memret-v1\",\"policies\":[");
    bool First = true;
    for (const RowResult &R : Rows) {
      std::fprintf(F,
                   "%s{\"name\":\"%s\",\"ops\":%llu,\"seconds\":%.6f,"
                   "\"ops_per_sec\":%.1f,\"os_calls\":%llu,"
                   "\"peak_rss_bytes\":%zu,\"idle_rss_bytes\":%zu",
                   First ? "" : ",", R.Name,
                   static_cast<unsigned long long>(R.Ops), R.Seconds,
                   R.Ops / R.Seconds,
                   static_cast<unsigned long long>(R.Syscalls), R.PeakRss,
                   R.IdleRss);
      if (&R == &Bd)
        std::fprintf(F,
                     ",\"syscall_reduction\":%.4f,"
                     "\"throughput_over_os\":%.4f,"
                     "\"peak_rss_over_os\":%.4f,\"idle_rss_over_os\":%.4f",
                     SyscallReduction, ThroughputOverOs, PeakRssOverOs,
                     IdleRssOverOs);
      std::fprintf(F, "}");
      First = false;
    }
    std::fprintf(F, "]}\n");
    std::fclose(F);
  }
  return 0;
}
