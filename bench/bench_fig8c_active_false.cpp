//===- bench_fig8c_active_false.cpp - Paper Fig. 8(c) ---------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Regenerates Fig. 8(c): Active false sharing. Each thread does malloc/
// free pairs of 8-byte blocks, writing 1,000 times to each byte in
// between; an allocator that packs different threads' blocks into one
// cache line bleeds throughput here. Paper: 10,000 pairs; default 500.
//
//===----------------------------------------------------------------------===//

#include "harness/Driver.h"

#include <cstdio>

using namespace lfm;

int main(int Argc, char **Argv) {
  benchInit(Argc, Argv);
  const unsigned Pairs = static_cast<unsigned>(benchScale().scaled(500));
  const unsigned Writes = 1'000;
  std::printf("Fig. 8(c) Active-false — %u pairs x %u writes/byte per "
              "thread (paper: 10,000 x 1,000)\n",
              Pairs, Writes);
  runStandardFigure("Active false sharing speedup",
                    [=](MallocInterface &Alloc, unsigned Threads) {
                      return runFalseSharing(Alloc, Threads, Pairs, Writes,
                                             /*Passive=*/false);
                    });
  return 0;
}
