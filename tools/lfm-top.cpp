//===- tools/lfm-top.cpp - Out-of-process allocator inspector -------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Attaches to a live (or dead) lfmalloc process through its
// lfm-shmstats-v1 shared-memory segment and renders the allocator's
// telemetry without any cooperation from the target: no ctl call, no
// signal, no exporter thread — the segment is parsed with seqlock'd
// copies that stay consistent even while the target spins in a retry
// storm. Deliberately not linked against the allocator; the wire format
// header is the only shared code.
//
//   lfm-top --pid <pid>            attach via /proc/<pid>/fd (memfd segment)
//   lfm-top --segment <path>       attach to a file-backed segment
//   lfm-top --core <corefile>      extract the final frame from a core dump
//   lfm-top --once [--json]        one snapshot (JSON for scripting)
//   lfm-top --interval <ms>        watch mode refresh period (default 1000)
//
//===----------------------------------------------------------------------===//

#include "telemetry/ShmStatsFormat.h"

#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <elf.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

using namespace lfm;

namespace {

struct Options {
  long Pid = -1;
  const char *SegmentPath = nullptr;
  const char *CorePath = nullptr;
  bool Once = false;
  bool Json = false;
  std::uint64_t IntervalMs = 1000;
};

[[noreturn]] void usage(int Rc) {
  std::fprintf(
      Rc == 0 ? stdout : stderr,
      "usage: lfm-top (--pid <pid> | --segment <path> | --core <file>)\n"
      "               [--once] [--json] [--interval <ms>]\n"
      "\n"
      "Attaches to an lfmalloc process via its lfm-shmstats-v1 segment\n"
      "(LFM_SHM_STATS=1 or =<path> in the target's environment) and shows\n"
      "live op rates, latency quantiles, CAS retry distributions,\n"
      "superblock heat, and watchdog verdicts. --core extracts the final\n"
      "published frame from a core dump. --once --json emits one\n"
      "machine-readable snapshot.\n");
  std::exit(Rc);
}

[[noreturn]] void die(const char *Fmt, const char *Arg = nullptr) {
  std::fprintf(stderr, "lfm-top: ");
  std::fprintf(stderr, Fmt, Arg);
  std::fprintf(stderr, "\n");
  std::exit(1);
}

std::uint64_t nowWallNs() {
  timespec Ts{};
  clock_gettime(CLOCK_REALTIME, &Ts);
  return static_cast<std::uint64_t>(Ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(Ts.tv_nsec);
}

/// A mapped (or loaded) segment plus how it may be read.
struct Attachment {
  const void *Buf = nullptr;
  std::size_t Len = 0;
  bool Live = false; ///< Concurrently written: use the retry loop.
  long Pid = -1;     ///< Target pid when known (for /proc RSS).
};

/// --segment / --pid attach: mmap the backing read-only and read it live.
Attachment attachFile(const char *Path, long Pid) {
  const int Fd = ::open(Path, O_RDONLY);
  if (Fd < 0)
    die("cannot open %s", Path);
  struct stat St{};
  if (::fstat(Fd, &St) != 0 || St.st_size <= 0)
    die("cannot stat %s", Path);
  void *Map = ::mmap(nullptr, static_cast<std::size_t>(St.st_size), PROT_READ,
                     MAP_SHARED, Fd, 0);
  ::close(Fd); // The mapping keeps the segment alive.
  if (Map == MAP_FAILED)
    die("cannot map %s", Path);
  Attachment A;
  A.Buf = Map;
  A.Len = static_cast<std::size_t>(St.st_size);
  A.Live = true;
  A.Pid = Pid;
  return A;
}

/// --pid attach: find the memfd named lfm-shmstats among the target's
/// open descriptors and map it through /proc. Requires the same access a
/// debugger needs (same user or CAP_SYS_PTRACE).
Attachment attachPid(long Pid) {
  char Dir[64];
  std::snprintf(Dir, sizeof(Dir), "/proc/%ld/fd", Pid);
  DIR *D = ::opendir(Dir);
  if (D == nullptr)
    die("cannot read %s (is the pid right, and yours?)", Dir);
  char Found[320] = "";
  while (dirent *E = ::readdir(D)) {
    if (E->d_name[0] == '.')
      continue;
    char LinkPath[320], Target[256];
    std::snprintf(LinkPath, sizeof(LinkPath), "/proc/%ld/fd/%s", Pid,
                  E->d_name);
    const ssize_t N = ::readlink(LinkPath, Target, sizeof(Target) - 1);
    if (N <= 0)
      continue;
    Target[N] = '\0';
    if (std::strstr(Target, "memfd:lfm-shmstats") != nullptr) {
      std::memcpy(Found, LinkPath, std::strlen(LinkPath) + 1);
      break;
    }
  }
  ::closedir(D);
  if (Found[0] == '\0')
    die("pid %s has no lfm-shmstats memfd (target needs LFM_SHM_STATS=1; "
        "file-backed segments attach with --segment <path>)",
        Dir + 6); // Skip "/proc/" for the message.
  return attachFile(Found, Pid);
}

/// --core attach: scan every PT_LOAD segment's file bytes for the magic
/// and keep the candidate whose stable frame has the highest epoch. The
/// segment is a shared mapping, which default coredump_filter settings
/// (bits 0x3) include in full.
Attachment attachCore(const char *Path) {
  const int Fd = ::open(Path, O_RDONLY);
  if (Fd < 0)
    die("cannot open %s", Path);
  struct stat St{};
  if (::fstat(Fd, &St) != 0 || St.st_size < (off_t)sizeof(Elf64_Ehdr))
    die("cannot stat %s (or not a core file)", Path);
  const std::size_t Len = static_cast<std::size_t>(St.st_size);
  const void *Map = ::mmap(nullptr, Len, PROT_READ, MAP_PRIVATE, Fd, 0);
  ::close(Fd);
  if (Map == MAP_FAILED)
    die("cannot map %s", Path);
  const auto *Bytes = static_cast<const unsigned char *>(Map);
  const auto *Eh = reinterpret_cast<const Elf64_Ehdr *>(Bytes);
  if (std::memcmp(Eh->e_ident, ELFMAG, SELFMAG) != 0 ||
      Eh->e_ident[EI_CLASS] != ELFCLASS64 || Eh->e_type != ET_CORE)
    die("%s is not an ELF64 core file", Path);
  const unsigned char *Best = nullptr;
  std::uint64_t BestEpoch = 0;
  std::size_t BestLen = 0;
  for (unsigned I = 0; I < Eh->e_phnum; ++I) {
    const auto *Ph = reinterpret_cast<const Elf64_Phdr *>(
        Bytes + Eh->e_phoff + static_cast<std::size_t>(I) * Eh->e_phentsize);
    if (Ph->p_type != PT_LOAD || Ph->p_filesz == 0)
      continue;
    if (Ph->p_offset + Ph->p_filesz > Len)
      continue; // Clipped core; skip rather than read past the file.
    const unsigned char *Seg = Bytes + Ph->p_offset;
    const std::size_t SegLen = static_cast<std::size_t>(Ph->p_filesz);
    for (std::size_t Off = 0; Off + sizeof(std::uint64_t) <= SegLen;
         Off += 4096) {
      std::uint64_t Word;
      std::memcpy(&Word, Seg + Off, sizeof(Word));
      if (Word != shmstats::Magic)
        continue;
      shmstats::Frame F;
      const shmstats::ReadStatus S =
          shmstats::readLatestFrame(Seg + Off, SegLen - Off, F, false);
      if (S == shmstats::ReadStatus::Ok && F.Epoch >= BestEpoch) {
        Best = Seg + Off;
        BestEpoch = F.Epoch;
        BestLen = SegLen - Off;
      }
    }
  }
  if (Best == nullptr)
    die("no stable lfm-shmstats-v1 segment found in %s (was the target "
        "running with LFM_SHM_STATS, and did it ever publish?)",
        Path);
  Attachment A;
  A.Buf = Best;
  A.Len = BestLen;
  A.Live = false;
  return A;
}

/// Target resident set in bytes via /proc (0 when unknown/not attached by
/// pid) — the one gauge the segment cannot carry itself.
std::uint64_t targetRssBytes(long Pid) {
  if (Pid < 0)
    return 0;
  char Path[64];
  std::snprintf(Path, sizeof(Path), "/proc/%ld/statm", Pid);
  std::FILE *F = std::fopen(Path, "r");
  if (F == nullptr)
    return 0;
  unsigned long long Size = 0, Rss = 0;
  const int N = std::fscanf(F, "%llu %llu", &Size, &Rss);
  std::fclose(F);
  if (N != 2)
    return 0;
  return Rss * static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
}

const shmstats::Segment *segment(const Attachment &A) {
  return static_cast<const shmstats::Segment *>(A.Buf);
}

/// Looks a counter up by its wire name (the tool has no compiled-in enum
/// knowledge; the segment is self-describing). \returns ~0u when absent.
unsigned counterIndex(const shmstats::Segment *S, const char *Name) {
  for (unsigned C = 0; C < S->H.NumCounters; ++C)
    if (std::strncmp(S->N.CounterNames[C], Name, shmstats::NameCap) == 0)
      return C;
  return ~0u;
}

std::uint64_t counterOr0(const shmstats::Segment *S, const shmstats::Frame &F,
                         const char *Name) {
  const unsigned I = counterIndex(S, Name);
  return I == ~0u ? 0 : F.P.Counters[I];
}

// ---------------------------------------------------------------- JSON --

void jsonEscape(const char *S) {
  for (; *S; ++S) {
    if (*S == '"' || *S == '\\')
      std::printf("\\%c", *S);
    else if (static_cast<unsigned char>(*S) < 0x20)
      std::printf("\\u%04x", *S);
    else
      std::putchar(*S);
  }
}

void emitJson(const Attachment &A, const shmstats::Frame &F) {
  const shmstats::Segment *S = segment(A);
  const shmstats::Payload &P = F.P;
  std::printf("{\"schema\":\"lfm-top-v1\",\"source\":\"%s\"",
              A.Live ? "live" : "static");
  std::printf(",\"segment\":{\"pid\":%u,\"start_wall_ns\":%" PRIu64
              ",\"publishes\":%" PRIu64 ",\"bytes\":%zu}",
              S->H.Pid, S->H.StartWallNs, F.Epoch, shmstats::SegmentBytes);
  std::printf(",\"frame\":{\"epoch\":%" PRIu64 ",\"wall_ns\":%" PRIu64
              ",\"mono_ns\":%" PRIu64 "}",
              F.Epoch, F.WallNs, F.MonoNs);
  const std::uint64_t Rss = targetRssBytes(A.Pid);
  std::printf(",\"rss_bytes\":%" PRIu64, Rss);

  std::printf(",\"counters\":{");
  for (unsigned C = 0; C < S->H.NumCounters; ++C) {
    std::printf("%s\"", C ? "," : "");
    jsonEscape(S->N.CounterNames[C]);
    std::printf("\":%" PRIu64, P.Counters[C]);
  }
  std::printf("}");

  std::printf(",\"space\":{\"bytes_in_use\":%" PRIu64 ",\"peak_bytes\":%" PRIu64
              ",\"map_calls\":%" PRIu64 ",\"unmap_calls\":%" PRIu64
              ",\"decommit_calls\":%" PRIu64 ",\"bytes_decommitted\":%" PRIu64
              ",\"map_retries\":%" PRIu64 ",\"map_failures\":%" PRIu64
              ",\"bytes_reserved\":%" PRIu64 ",\"reserve_calls\":%" PRIu64 "}",
              P.SpaceBytesInUse, P.SpacePeakBytes, P.SpaceMapCalls,
              P.SpaceUnmapCalls, P.SpaceDecommitCalls, P.SpaceBytesDecommitted,
              P.SpaceMapRetries, P.SpaceMapFailures, P.SpaceBytesReserved,
              P.SpaceReserveCalls);

  std::printf(",\"gauges\":{\"cached_superblocks\":%" PRIu64
              ",\"retained_bytes\":%" PRIu64
              ",\"decommitted_superblocks\":%" PRIu64
              ",\"parked_hyperblocks\":%" PRIu64 ",\"retain_max_bytes\":%" PRIu64
              ",\"descriptors_minted\":%" PRIu64 ",\"hazard_retired\":%" PRIu64
              ",\"tcache_enabled\":%" PRIu64 ",\"tcache_magazine_blocks\":%" PRIu64
              ",\"tcache_depot_blocks\":%" PRIu64
              ",\"large_backend_buddy\":%" PRIu64
              ",\"buddy_bytes_reserved\":%" PRIu64
              ",\"buddy_bytes_committed\":%" PRIu64
              ",\"buddy_bytes_allocated\":%" PRIu64 "}",
              P.CachedSuperblocks, P.RetainedBytes, P.DecommittedSuperblocks,
              P.ParkedHyperblocks, P.RetainMaxBytes, P.DescriptorsMinted,
              P.HazardRetired, P.TcacheEnabled, P.TcacheMagazineBlocks,
              P.TcacheDepotBlocks, P.LargeBackendBuddy, P.BuddyBytesReserved,
              P.BuddyBytesCommitted, P.BuddyBytesAllocated);

  std::printf(",\"latency\":{\"enabled\":%s,\"sample_period\":%" PRIu64
              ",\"paths\":{",
              P.LatencyEnabled ? "true" : "false", P.LatencySamplePeriod);
  for (unsigned I = 0; I < S->H.NumLatencyPaths; ++I) {
    const shmstats::PathStats &L = P.Latency[I];
    std::printf("%s\"", I ? "," : "");
    jsonEscape(S->N.LatencyPathNames[I]);
    std::printf("\":{\"count\":%" PRIu64 ",\"sum_ns\":%" PRIu64
                ",\"max_ns\":%" PRIu64 ",\"p50_upper_ns\":%" PRIu64
                ",\"p99_upper_ns\":%" PRIu64 ",\"p999_upper_ns\":%" PRIu64 "}",
                L.Count, L.SumNs, L.MaxNs, L.P50UpperNs, L.P99UpperNs,
                L.P999UpperNs);
  }
  std::printf("}}");

  std::printf(",\"contention\":{\"enabled\":%s,\"sample_period\":%" PRIu64
              ",\"samples\":%" PRIu64 ",\"sites\":{",
              P.ContentionEnabled ? "true" : "false", P.ContentionSamplePeriod,
              P.ContentionSamples);
  for (unsigned I = 0; I < S->H.NumContentionSites; ++I) {
    const shmstats::SiteStats &C = P.Contention[I];
    std::printf("%s\"", I ? "," : "");
    jsonEscape(S->N.ContentionSiteNames[I]);
    std::printf("\":{\"count\":%" PRIu64 ",\"retries_sum\":%" PRIu64
                ",\"retries_max\":%" PRIu64 ",\"retries_p50\":%" PRIu64
                ",\"retries_p99\":%" PRIu64 ",\"loop_p99_upper_ns\":%" PRIu64
                "}",
                C.Count, C.RetriesSum, C.RetriesMax, C.RetriesP50, C.RetriesP99,
                C.LoopP99UpperNs);
  }
  std::printf("},\"heat\":[");
  for (std::uint64_t I = 0; I < P.ContentionHeatCount; ++I) {
    const shmstats::HeatEntry &H = P.ContentionHeat[I];
    std::printf("%s{\"sb\":%" PRIu64 ",\"class\":%" PRIu64
                ",\"retries\":%" PRIu64 "}",
                I ? "," : "", H.Sb, H.Class, H.Retries);
  }
  std::printf("],\"watchdog\":{\"armed\":%s,\"scans\":%" PRIu64
              ",\"stalls\":%" PRIu64 ",\"storms\":%" PRIu64 "}}",
              P.WatchdogArmed ? "true" : "false", P.WatchdogScans,
              P.WatchdogStalls, P.WatchdogStorms);

  std::printf(",\"config\":{\"heaps\":%" PRIu64 ",\"size_classes\":%" PRIu64
              ",\"superblock_bytes\":%" PRIu64 ",\"hyperblock_bytes\":%" PRIu64
              ",\"stats_enabled\":%s,\"telemetry_compiled\":%s}",
              P.Heaps, P.Classes, P.SuperblockBytes, P.HyperblockBytes,
              P.StatsEnabled ? "true" : "false",
              P.TelemetryCompiled ? "true" : "false");
  std::printf("}\n");
}

// ---------------------------------------------------------------- text --

void fmtBytes(std::uint64_t B, char *Out, std::size_t Cap) {
  const char *Units[] = {"B", "K", "M", "G", "T"};
  double V = static_cast<double>(B);
  unsigned U = 0;
  while (V >= 1024.0 && U < 4) {
    V /= 1024.0;
    ++U;
  }
  std::snprintf(Out, Cap, U == 0 ? "%.0f%s" : "%.1f%s", V, Units[U]);
}

void fmtCount(double V, char *Out, std::size_t Cap) {
  if (V >= 1e9)
    std::snprintf(Out, Cap, "%.2fG", V / 1e9);
  else if (V >= 1e6)
    std::snprintf(Out, Cap, "%.2fM", V / 1e6);
  else if (V >= 1e3)
    std::snprintf(Out, Cap, "%.1fk", V / 1e3);
  else
    std::snprintf(Out, Cap, "%.0f", V);
}

/// One human-readable refresh. \p Prev (epoch > 0) enables rate columns.
void emitText(const Attachment &A, const shmstats::Frame &F,
              const shmstats::Frame &Prev) {
  const shmstats::Segment *S = segment(A);
  const shmstats::Payload &P = F.P;
  const bool HaveRates = Prev.Epoch > 0 && F.MonoNs > Prev.MonoNs;
  const double Dt =
      HaveRates ? static_cast<double>(F.MonoNs - Prev.MonoNs) / 1e9 : 0.0;

  const std::uint64_t AgeNs =
      nowWallNs() > F.WallNs ? nowWallNs() - F.WallNs : 0;
  std::printf("lfm-top  pid %u  epoch %" PRIu64 "  published %.1fs ago  "
              "segment %zu bytes%s\n",
              S->H.Pid, F.Epoch, static_cast<double>(AgeNs) / 1e9,
              shmstats::SegmentBytes, A.Live ? "" : "  [post-mortem]");

  const std::uint64_t Mallocs = counterOr0(S, F, "mallocs");
  const std::uint64_t Frees = counterOr0(S, F, "frees");
  char B1[32], B2[32], B3[32], B4[32];
  fmtCount(static_cast<double>(Mallocs), B1, sizeof(B1));
  fmtCount(static_cast<double>(Frees), B2, sizeof(B2));
  std::printf("ops      mallocs %-10s frees %-10s", B1, B2);
  if (HaveRates) {
    const shmstats::Segment *SP = S;
    const std::uint64_t PM = counterOr0(SP, Prev, "mallocs");
    const std::uint64_t PF = counterOr0(SP, Prev, "frees");
    fmtCount((static_cast<double>(Mallocs - PM)) / Dt, B3, sizeof(B3));
    fmtCount((static_cast<double>(Frees - PF)) / Dt, B4, sizeof(B4));
    std::printf("  rate %s/s malloc, %s/s free", B3, B4);
  }
  std::printf("\n");

  fmtBytes(P.SpaceBytesInUse, B1, sizeof(B1));
  fmtBytes(P.SpacePeakBytes, B2, sizeof(B2));
  fmtBytes(P.SpaceBytesReserved, B3, sizeof(B3));
  fmtBytes(targetRssBytes(A.Pid), B4, sizeof(B4));
  std::printf("space    in-use %-8s peak %-8s reserved %-8s rss %s\n", B1, B2,
              B3, A.Pid >= 0 ? B4 : "-");

  fmtBytes(P.RetainedBytes, B1, sizeof(B1));
  fmtBytes(P.BuddyBytesCommitted, B2, sizeof(B2));
  std::printf("retain   cached-sbs %" PRIu64 "  retained %-8s parked %" PRIu64
              "  buddy-committed %s\n",
              P.CachedSuperblocks, B1, P.ParkedHyperblocks, B2);

  if (P.LatencyEnabled) {
    std::printf("latency  %-22s %10s %9s %9s %9s\n", "path", "count", "p50ns",
                "p99ns", "p999ns");
    for (unsigned I = 0; I < S->H.NumLatencyPaths; ++I) {
      const shmstats::PathStats &L = P.Latency[I];
      if (L.Count == 0)
        continue;
      std::printf("         %-22s %10" PRIu64 " %9" PRIu64 " %9" PRIu64
                  " %9" PRIu64 "\n",
                  S->N.LatencyPathNames[I], L.Count, L.P50UpperNs, L.P99UpperNs,
                  L.P999UpperNs);
    }
  }

  if (P.ContentionEnabled) {
    std::printf("cas      %-22s %10s %9s %12s\n", "site", "count", "ret-p99",
                "loop-p99ns");
    for (unsigned I = 0; I < S->H.NumContentionSites; ++I) {
      const shmstats::SiteStats &C = P.Contention[I];
      if (C.Count == 0)
        continue;
      std::printf("         %-22s %10" PRIu64 " %9" PRIu64 " %12" PRIu64 "\n",
                  S->N.ContentionSiteNames[I], C.Count, C.RetriesP99,
                  C.LoopP99UpperNs);
    }
    for (std::uint64_t I = 0; I < P.ContentionHeatCount; ++I) {
      const shmstats::HeatEntry &H = P.ContentionHeat[I];
      std::printf("heat     sb 0x%-14" PRIx64 " class %-3" PRIu64
                  " retries %" PRIu64 "\n",
                  H.Sb, H.Class, H.Retries);
    }
    std::printf("watchdog %s  scans %" PRIu64 "  stalls %" PRIu64
                "  storms %" PRIu64 "\n",
                P.WatchdogArmed ? "armed" : "unarmed", P.WatchdogScans,
                P.WatchdogStalls, P.WatchdogStorms);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    auto Next = [&]() -> const char * {
      if (I + 1 >= Argc)
        usage(1);
      return Argv[++I];
    };
    if (std::strcmp(A, "--pid") == 0 || std::strcmp(A, "-p") == 0)
      Opt.Pid = std::strtol(Next(), nullptr, 10);
    else if (std::strcmp(A, "--segment") == 0 || std::strcmp(A, "-s") == 0)
      Opt.SegmentPath = Next();
    else if (std::strcmp(A, "--core") == 0 || std::strcmp(A, "-c") == 0)
      Opt.CorePath = Next();
    else if (std::strcmp(A, "--once") == 0 || std::strcmp(A, "-1") == 0)
      Opt.Once = true;
    else if (std::strcmp(A, "--json") == 0 || std::strcmp(A, "-j") == 0)
      Opt.Json = true;
    else if (std::strcmp(A, "--interval") == 0 || std::strcmp(A, "-i") == 0)
      Opt.IntervalMs = std::strtoull(Next(), nullptr, 10);
    else if (std::strcmp(A, "--help") == 0 || std::strcmp(A, "-h") == 0)
      usage(0);
    else
      usage(1);
  }
  const int Sources = (Opt.Pid >= 0) + (Opt.SegmentPath != nullptr) +
                      (Opt.CorePath != nullptr);
  if (Sources != 1)
    usage(1);
  if (Opt.Json)
    Opt.Once = true; // JSON is a scripting snapshot, not a watch UI.
  if (Opt.CorePath != nullptr)
    Opt.Once = true; // A core has exactly one final frame.
  if (Opt.IntervalMs == 0)
    Opt.IntervalMs = 1000;

  Attachment A;
  if (Opt.Pid >= 0)
    A = attachPid(Opt.Pid);
  else if (Opt.SegmentPath != nullptr)
    A = attachFile(Opt.SegmentPath, -1);
  else
    A = attachCore(Opt.CorePath);

  shmstats::Frame Prev{};
  for (;;) {
    shmstats::Frame F;
    const shmstats::ReadStatus S =
        shmstats::readLatestFrame(A.Buf, A.Len, F, A.Live);
    if (S != shmstats::ReadStatus::Ok)
      die("cannot read segment: %s", shmstats::readStatusName(S));
    if (Opt.Json) {
      emitJson(A, F);
    } else {
      if (!Opt.Once)
        std::printf("\033[H\033[2J"); // Clear like top(1).
      emitText(A, F, Prev);
      std::fflush(stdout);
    }
    if (Opt.Once)
      break;
    Prev = F;
    timespec Ts{};
    Ts.tv_sec = static_cast<time_t>(Opt.IntervalMs / 1000);
    Ts.tv_nsec = static_cast<long>((Opt.IntervalMs % 1000) * 1000000ull);
    nanosleep(&Ts, nullptr);
  }
  return 0;
}
