#!/usr/bin/env python3
"""Compare a bench JSON report against a checked-in baseline band file.

Usage: check_bench_baseline.py <baseline.json> <result.json>

Baselines live in bench/baselines/ and express *machine-independent*
shape bounds, never absolute times: CI runners differ wildly in clock
speed and co-tenancy, but the returned-RSS fraction of a retention
policy and the ratio between two benchmarks measured in the same
process are stable properties of the allocator. A regression that
matters (a lock sneaking into the malloc path, a retention policy that
stops returning memory) moves these by integer factors; the bands leave
2-3x headroom above the observed values so runner noise cannot trip
them.

Two baseline formats, selected by the "format" key:

  memret  -- rows from bench_memory_return --json=<path>
             (schema lfm-bench-memret-v1). Checks select a policy row
             by name and bound a metric; "respike_over_peak" is
             computed as respike_bytes / peak_bytes.
  gbench  -- google-benchmark --benchmark_format=json output. Checks
             bound the ratio of one benchmark's cpu_time to another's.

Exit status: 0 when every check is inside its band, 1 otherwise (with
one line per check on stdout so the CI log shows the whole table).
"""

import json
import sys


def memret_value(result, policy, metric):
    if result.get("schema") != "lfm-bench-memret-v1":
        raise SystemExit(f"unexpected memret schema: {result.get('schema')}")
    for row in result["policies"]:
        if row["name"] == policy:
            if metric == "respike_over_peak":
                return row["respike_bytes"] / max(row["peak_bytes"], 1)
            return row[metric]
    raise SystemExit(f"policy not in report: {policy}")


def gbench_value(result, name, metric):
    for bench in result.get("benchmarks", []):
        if bench["name"] == name:
            return bench[metric]
    raise SystemExit(f"benchmark not in report: {name}")


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    with open(argv[2]) as f:
        result = json.load(f)
    if baseline.get("schema") != "lfm-bench-baseline-v1":
        raise SystemExit(f"unexpected baseline schema: {baseline.get('schema')}")

    fmt = baseline["format"]
    failures = 0
    for chk in baseline["checks"]:
        metric = chk.get("metric", "cpu_time")
        if fmt == "memret":
            value = memret_value(result, chk["policy"], metric)
            label = f"{chk['policy']}.{metric}"
        elif fmt == "gbench":
            num = gbench_value(result, chk["ratio"][0], metric)
            den = gbench_value(result, chk["ratio"][1], metric)
            value = num / den
            label = f"{chk['ratio'][0]} / {chk['ratio'][1]}"
        else:
            raise SystemExit(f"unknown baseline format: {fmt}")
        lo = chk.get("min")
        hi = chk.get("max")
        ok = (lo is None or value >= lo) and (hi is None or value <= hi)
        band = f"[{'-inf' if lo is None else lo}, {'inf' if hi is None else hi}]"
        print(f"{'ok  ' if ok else 'FAIL'} {label} = {value:.4f}  band {band}")
        failures += 0 if ok else 1

    if failures:
        print(f"{failures} baseline check(s) out of band", file=sys.stderr)
        return 1
    print(f"all {len(baseline['checks'])} baseline checks within bands")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
