# lfm_gdb.py - extract the lfm-shmstats-v1 segment from a live or crashed
# inferior (part of lfmalloc; MIT license, see LICENSE).
#
# Usage:
#   gdb -x tools/lfm_gdb.py ./app core
#   (gdb) lfm-shmstats-dump [out.shmstats]
#   $ lfm-top --segment out.shmstats
#
# The command locates the segment by its mapping name ("/memfd:lfm-shmstats"
# or the LFM_SHM_STATS file path), falls back to scanning writable mappings
# for the "LFMSHST1" magic, and writes the raw bytes to a file that
# `lfm-top --segment` (or the shmstats tests) can parse. This is the
# post-mortem path of last resort when the core file itself is unavailable
# or clipped — gdb reads whatever memory the debug target still exposes.

import struct

import gdb

MAGIC = struct.unpack("<Q", b"LFMSHST1")[0]


def _mappings():
    """Yields (start, end, name) from `info proc mappings`."""
    try:
        out = gdb.execute("info proc mappings", to_string=True)
    except gdb.error:
        return
    for line in out.splitlines():
        parts = line.split()
        if len(parts) < 5 or not parts[0].startswith("0x"):
            continue
        try:
            start, end = int(parts[0], 16), int(parts[1], 16)
        except ValueError:
            continue
        name = parts[-1] if not parts[-1].startswith("0x") else ""
        yield start, end, name


def _read(start, length):
    return bytes(gdb.selected_inferior().read_memory(start, length))


def _segment_size(start):
    # SegmentHeader: magic u64, version u32, checksum u32, header u32,
    # names u32, frame u32, framecount u32 ... — total mapped size is
    # header + names + framecount * frame.
    hdr = _read(start, 40)
    magic, _ver, _csum, hbytes, nbytes, fbytes, fcount = struct.unpack(
        "<QIIIIII", hdr[:32]
    )
    if magic != MAGIC:
        return None
    return hbytes + nbytes + fcount * fbytes


def _find_segment():
    # Pass 1: mapping name.
    for start, _end, name in _mappings():
        if "lfm-shmstats" in name:
            size = _segment_size(start)
            if size:
                return start, size
    # Pass 2: magic scan over mapping starts (the segment begins at a
    # mapping boundary; scanning only page 0 of each mapping is cheap).
    for start, end, _name in _mappings():
        if end - start < 40:
            continue
        try:
            size = _segment_size(start)
        except gdb.MemoryError:
            continue
        if size and start + size <= end:
            return start, size
    return None, None


class LfmShmStatsDump(gdb.Command):
    """Dump the lfm-shmstats-v1 segment to a file for lfm-top --segment."""

    def __init__(self):
        super().__init__("lfm-shmstats-dump", gdb.COMMAND_USER)

    def invoke(self, arg, _from_tty):
        out = arg.strip() or "lfm.shmstats"
        start, size = _find_segment()
        if start is None:
            gdb.write("lfm-shmstats: no segment found (was the target "
                      "running with LFM_SHM_STATS?)\n", gdb.STDERR)
            return
        data = _read(start, size)
        with open(out, "wb") as f:
            f.write(data)
        # Surface the final epoch so the user knows the dump is non-empty:
        # Publishes is the last u64 of the header.
        publishes = struct.unpack("<Q", data[72:80])[0]
        gdb.write(
            "lfm-shmstats: wrote %d bytes from 0x%x to %s "
            "(%d publishes)\n" % (size, start, out, publishes)
        )


LfmShmStatsDump()
