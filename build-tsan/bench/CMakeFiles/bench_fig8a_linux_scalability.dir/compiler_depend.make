# Empty compiler generated dependencies file for bench_fig8a_linux_scalability.
# This may be replaced when dependencies are built.
