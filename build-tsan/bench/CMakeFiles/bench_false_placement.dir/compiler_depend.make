# Empty compiler generated dependencies file for bench_false_placement.
# This may be replaced when dependencies are built.
