# Empty compiler generated dependencies file for bench_fig8fgh_producer_consumer.
# This may be replaced when dependencies are built.
