# Empty compiler generated dependencies file for bench_fig8d_passive_false.
# This may be replaced when dependencies are built.
