# Empty compiler generated dependencies file for lock_free_composition.
# This may be replaced when dependencies are built.
