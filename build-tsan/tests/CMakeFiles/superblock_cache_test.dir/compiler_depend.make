# Empty compiler generated dependencies file for superblock_cache_test.
# This may be replaced when dependencies are built.
