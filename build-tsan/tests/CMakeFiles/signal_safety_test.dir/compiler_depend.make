# Empty compiler generated dependencies file for signal_safety_test.
# This may be replaced when dependencies are built.
