# Empty compiler generated dependencies file for lfalloc_paths_test.
# This may be replaced when dependencies are built.
