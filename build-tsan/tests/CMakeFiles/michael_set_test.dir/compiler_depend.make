# Empty compiler generated dependencies file for michael_set_test.
# This may be replaced when dependencies are built.
