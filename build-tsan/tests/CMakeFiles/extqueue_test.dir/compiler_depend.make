# Empty compiler generated dependencies file for extqueue_test.
# This may be replaced when dependencies are built.
