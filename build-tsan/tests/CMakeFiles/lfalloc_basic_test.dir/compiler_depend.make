# Empty compiler generated dependencies file for lfalloc_basic_test.
# This may be replaced when dependencies are built.
