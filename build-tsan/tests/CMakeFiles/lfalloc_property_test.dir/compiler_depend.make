# Empty compiler generated dependencies file for lfalloc_property_test.
# This may be replaced when dependencies are built.
