# Empty compiler generated dependencies file for sizeclass_test.
# This may be replaced when dependencies are built.
