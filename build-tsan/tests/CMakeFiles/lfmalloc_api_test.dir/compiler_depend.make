# Empty compiler generated dependencies file for lfmalloc_api_test.
# This may be replaced when dependencies are built.
