//===- lfmalloc/LFMalloc.h - Process-global malloc facade --------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's quickstart surface: malloc/free-shaped functions backed by
/// one process-wide, immortal LFAllocator configured with the paper's
/// defaults. Programs needing multiple allocators, custom superblock
/// geometry, or metered space use LFAllocator directly.
///
/// All functions here are lock-free and — after the first call has
/// initialized the instance — async-signal-safe, the property motivating
/// the paper's design (§1, "a completely lock-free allocator is capable of
/// being async-signal-safe without incurring any performance cost").
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_LFMALLOC_H
#define LFMALLOC_LFMALLOC_LFMALLOC_H

#include <cstddef>

namespace lfm {

class LFAllocator;

/// \returns the immortal process-wide allocator (created on first use,
/// never destroyed — so signal handlers and exiting threads can always
/// rely on it).
///
/// Telemetry for this instance is controlled by environment variables read
/// at first use (the instance has no other configuration channel when it
/// is interposed as the process malloc):
///   LFM_STATS=1        maintain operation counters
///   LFM_TRACE=1        record trace events (implies counters)
///   LFM_TRACE_EVENTS=N per-thread trace-ring capacity (default 4096)
///   LFM_PROFILE=1      attach the sampling heap profiler (telemetry
///                      builds only; see docs/OBSERVABILITY.md)
///   LFM_PROFILE_RATE=N mean bytes between samples (default 524288)
///   LFM_PROFILE_SEED=N fixed sampler seed for reproducible runs
///   LFM_PROFILE_SITES=N / LFM_PROFILE_LIVE=N table capacities
///   LFM_PROFILE_DUMP=PREFIX path prefix for signal-triggered dumps
///                      (default "lfm-heap"; files PREFIX.NNNN.heap)
LFAllocator &defaultAllocator();

/// malloc(): lock-free allocation from the default allocator.
void *lfMalloc(std::size_t Bytes);

/// free(): lock-free deallocation; accepts null.
void lfFree(void *Ptr);

/// calloc(): zeroed, overflow-checked.
void *lfCalloc(std::size_t Num, std::size_t Size);

/// realloc() semantics (Bytes == 0 frees and returns null).
void *lfRealloc(void *Ptr, std::size_t Bytes);

/// aligned_alloc(): \p Alignment must be a power of two.
void *lfAlignedAlloc(std::size_t Alignment, std::size_t Bytes);

/// \returns usable payload capacity of an lfMalloc'd block.
std::size_t lfUsableSize(const void *Ptr);

} // namespace lfm

// C-linkage shim, so C code (or FFI) can link against the allocator
// without touching C++ headers. Same semantics as the lfm:: functions.
extern "C" {
void *lf_malloc(size_t Bytes);
void lf_free(void *Ptr);
void *lf_calloc(size_t Num, size_t Size);
void *lf_realloc(void *Ptr, size_t Bytes);
void *lf_aligned_alloc(size_t Alignment, size_t Bytes);
size_t lf_malloc_usable_size(const void *Ptr);

/// Writes the default allocator's metrics JSON to stderr (counters are
/// zero unless LFM_STATS/LFM_TRACE was set at first use).
void lf_malloc_stats(void);

/// Writes the default allocator's metrics JSON to \p Path (null or ""
/// selects stderr). \returns 0 on success, -1 if the file cannot be
/// opened.
int lf_malloc_metrics_json(const char *Path);

/// Writes the default allocator's recorded trace as Chrome trace JSON to
/// \p Path (null or "" selects stderr; empty event list unless LFM_TRACE
/// was set at first use). \returns 0 on success, -1 if the file cannot be
/// opened.
int lf_malloc_trace_dump(const char *Path);

/// Writes the default allocator's sampling heap profile in gperftools
/// `heap profile:` text to \p Path (null or "" selects stderr), so
/// `pprof --text <binary> <path>` renders it. Malloc-free, lock-free,
/// async-signal-safe (open/write/close on raw fds). An all-zero header
/// without a profiler (needs a telemetry build + LFM_PROFILE=1).
/// \returns 0 on success, -1 if the file cannot be opened.
int lf_malloc_heap_profile(const char *Path);

/// Writes the heap profile as `lfm-heapprofile-v1` JSON to \p Path (null
/// or "" selects stderr). Not async-signal-safe (stdio). \returns 0 on
/// success, -1 if the file cannot be opened.
int lf_malloc_heap_profile_json(const char *Path);

/// Writes the heap-topology census (`lfm-heaptopology-v1` JSON: per-class
/// occupancy histograms, fragmentation ratios, address-ordered heap map)
/// to \p Path (null or "" selects stderr). Works in every build. Not
/// async-signal-safe. \returns 0 on success, -1 on open failure.
int lf_malloc_heap_topology_json(const char *Path);

/// Signal-handler entry point: writes the heap profile to
/// "<LFM_PROFILE_DUMP>.<seq>.heap" (prefix cached at allocator init, so
/// no getenv here; default prefix "lfm-heap"). Async-signal-safe after the
/// default allocator exists. \returns 0 on success.
int lf_malloc_heap_profile_dump(void);

/// Writes the surviving-sampled-allocations leak report to stderr.
/// Async-signal-safe; the LD_PRELOAD shim registers this with atexit when
/// LFM_LEAK_REPORT=1.
void lf_malloc_leak_report(void);
}

#endif // LFMALLOC_LFMALLOC_LFMALLOC_H
