//===- lfmalloc/LFMalloc.h - Process-global malloc facade --------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's quickstart surface: malloc/free-shaped functions backed by
/// one process-wide, immortal LFAllocator configured with the paper's
/// defaults. Programs needing multiple allocators, custom superblock
/// geometry, or metered space use LFAllocator directly.
///
/// All functions here are lock-free and — after the first call has
/// initialized the instance — async-signal-safe, the property motivating
/// the paper's design (§1, "a completely lock-free allocator is capable of
/// being async-signal-safe without incurring any performance cost").
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_LFMALLOC_H
#define LFMALLOC_LFMALLOC_LFMALLOC_H

#include <cstddef>

namespace lfm {

class LFAllocator;

/// \returns the immortal process-wide allocator (created on first use,
/// never destroyed — so signal handlers and exiting threads can always
/// rely on it).
///
/// Telemetry for this instance is controlled by environment variables read
/// at first use (the instance has no other configuration channel when it
/// is interposed as the process malloc):
///   LFM_STATS=1        maintain operation counters
///   LFM_TRACE=1        record trace events (implies counters)
///   LFM_TRACE_EVENTS=N per-thread trace-ring capacity (default 4096)
LFAllocator &defaultAllocator();

/// malloc(): lock-free allocation from the default allocator.
void *lfMalloc(std::size_t Bytes);

/// free(): lock-free deallocation; accepts null.
void lfFree(void *Ptr);

/// calloc(): zeroed, overflow-checked.
void *lfCalloc(std::size_t Num, std::size_t Size);

/// realloc() semantics (Bytes == 0 frees and returns null).
void *lfRealloc(void *Ptr, std::size_t Bytes);

/// aligned_alloc(): \p Alignment must be a power of two.
void *lfAlignedAlloc(std::size_t Alignment, std::size_t Bytes);

/// \returns usable payload capacity of an lfMalloc'd block.
std::size_t lfUsableSize(const void *Ptr);

} // namespace lfm

// C-linkage shim, so C code (or FFI) can link against the allocator
// without touching C++ headers. Same semantics as the lfm:: functions.
extern "C" {
void *lf_malloc(size_t Bytes);
void lf_free(void *Ptr);
void *lf_calloc(size_t Num, size_t Size);
void *lf_realloc(void *Ptr, size_t Bytes);
void *lf_aligned_alloc(size_t Alignment, size_t Bytes);
size_t lf_malloc_usable_size(const void *Ptr);

/// Writes the default allocator's metrics JSON to stderr (counters are
/// zero unless LFM_STATS/LFM_TRACE was set at first use).
void lf_malloc_stats(void);

/// Writes the default allocator's metrics JSON to \p Path (null or ""
/// selects stderr). \returns 0 on success, -1 if the file cannot be
/// opened.
int lf_malloc_metrics_json(const char *Path);

/// Writes the default allocator's recorded trace as Chrome trace JSON to
/// \p Path (null or "" selects stderr; empty event list unless LFM_TRACE
/// was set at first use). \returns 0 on success, -1 if the file cannot be
/// opened.
int lf_malloc_trace_dump(const char *Path);
}

#endif // LFMALLOC_LFMALLOC_LFMALLOC_H
