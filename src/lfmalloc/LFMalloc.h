//===- lfmalloc/LFMalloc.h - Process-global malloc facade --------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's quickstart surface: malloc/free-shaped functions backed by
/// one process-wide, immortal LFAllocator configured with the paper's
/// defaults. Programs needing multiple allocators, custom superblock
/// geometry, or metered space use LFAllocator directly.
///
/// All allocation functions here are lock-free and — after the first call
/// has initialized the instance — async-signal-safe, the property
/// motivating the paper's design (§1, "a completely lock-free allocator is
/// capable of being async-signal-safe without incurring any performance
/// cost").
///
/// Introspection and control go through lf_malloc_ctl(), a keyed
/// mallctl-style surface documented in docs/API.md.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_LFMALLOC_H
#define LFMALLOC_LFMALLOC_LFMALLOC_H

#include <cstddef>

namespace lfm {

class LFAllocator;

/// \returns the immortal process-wide allocator (created on first use,
/// never destroyed — so signal handlers and exiting threads can always
/// rely on it).
///
/// The instance is configured by `LFM_*` environment variables read at
/// first use (it has no other configuration channel when interposed as
/// the process malloc). The full variable table lives in
/// support/RuntimeConfig.h and docs/API.md; each variable mirrors an
/// lf_malloc_ctl key (`opt.*`, `retain.*`, `debug.*`).
LFAllocator &defaultAllocator();

/// malloc(): lock-free allocation from the default allocator.
void *lfMalloc(std::size_t Bytes);

/// free(): lock-free deallocation; accepts null.
void lfFree(void *Ptr);

/// calloc(): zeroed, overflow-checked.
void *lfCalloc(std::size_t Num, std::size_t Size);

/// realloc() semantics (Bytes == 0 frees and returns null).
void *lfRealloc(void *Ptr, std::size_t Bytes);

/// aligned_alloc(): \p Alignment must be a power of two.
void *lfAlignedAlloc(std::size_t Alignment, std::size_t Bytes);

/// \returns usable payload capacity of an lfMalloc'd block.
std::size_t lfUsableSize(const void *Ptr);

} // namespace lfm

// C-linkage shim, so C code (or FFI) can link against the allocator
// without touching C++ headers. Same semantics as the lfm:: functions.
extern "C" {
void *lf_malloc(size_t Bytes);
void lf_free(void *Ptr);
void *lf_calloc(size_t Num, size_t Size);
void *lf_realloc(void *Ptr, size_t Bytes);
void *lf_aligned_alloc(size_t Alignment, size_t Bytes);
size_t lf_malloc_usable_size(const void *Ptr);

/// Keyed control/introspection over the default allocator, in the style
/// of jemalloc's mallctl. Reads fill \p Out / \p OutLen (null Out with
/// non-null OutLen probes the required size); writes take the new value
/// in \p In / \p InLen. See docs/API.md for the key namespace:
///   version                 build/schema identifier (string)
///   stats.<name>            any metrics counter/gauge (u64; see API.md)
///   retain.max_bytes        retention watermark (u64, get/set)
///   retain.decay_ms         decay period, -1 off (i64, get/set)
///   trim                    release retained memory now (action)
///   dump.metrics|trace|topology|heap_profile|heap_profile_json|
///   dump.leak_report|heap_profile_seq   write a report (In = path)
///   dump.prometheus         Prometheus text exposition (In = path)
///   dump.prometheus_seq     sequenced "<prefix>.<seq>.prom" dump (no In)
///   exporter.start          start background exporter (In = u64 ms)
///   exporter.stop           stop and join the exporter (action)
///   exporter.flush          run one export cycle synchronously (action)
///   exporter.cycles         completed export cycles (u64, read-only)
///   opt.<name>              resolved LFM_* option echo (read-only)
///   debug.fail_map          OS-map fault injection (test hook)
/// \returns 0 on success or an errno value (EINVAL, ENOENT, EPERM, EIO);
/// never touches the global errno.
int lf_malloc_ctl(const char *Key, void *Out, size_t *OutLen, const void *In,
                  size_t InLen);

/// glibc malloc_trim(): releases the retained superblock cache back to
/// the OS, keeping at most \p KeepBytes cached. Lock-free. \returns 1 if
/// any memory was released, else 0.
int lf_malloc_trim(size_t KeepBytes);

/// \deprecated Writes the default allocator's metrics JSON to stderr.
/// Wrapper over lf_malloc_ctl("dump.metrics").
void lf_malloc_stats(void);

/// \deprecated Writes metrics JSON to \p Path (null or "" selects
/// stderr). Wrapper over lf_malloc_ctl("dump.metrics"). \returns 0 on
/// success, -1 if the file cannot be opened.
int lf_malloc_metrics_json(const char *Path);

/// \deprecated Writes the recorded trace as Chrome trace JSON to \p Path
/// (null or "" selects stderr; empty event list unless LFM_TRACE was set
/// at first use). Wrapper over lf_malloc_ctl("dump.trace"). \returns 0 on
/// success, -1 if the file cannot be opened.
int lf_malloc_trace_dump(const char *Path);

/// \deprecated Writes the sampling heap profile in gperftools
/// `heap profile:` text to \p Path (null or "" selects stderr), so
/// `pprof --text <binary> <path>` renders it. Malloc-free, lock-free,
/// async-signal-safe (open/write/close on raw fds). An all-zero header
/// without a profiler (needs a telemetry build + LFM_PROFILE=1).
/// Wrapper over lf_malloc_ctl("dump.heap_profile"). \returns 0 on
/// success, -1 if the file cannot be opened.
int lf_malloc_heap_profile(const char *Path);

/// \deprecated Writes the heap profile as `lfm-heapprofile-v1` JSON to
/// \p Path (null or "" selects stderr). Not async-signal-safe (stdio).
/// Wrapper over lf_malloc_ctl("dump.heap_profile_json"). \returns 0 on
/// success, -1 if the file cannot be opened.
int lf_malloc_heap_profile_json(const char *Path);

/// \deprecated Writes the heap-topology census (`lfm-heaptopology-v1`
/// JSON: per-class occupancy histograms, fragmentation ratios,
/// address-ordered heap map) to \p Path (null or "" selects stderr).
/// Works in every build. Not async-signal-safe. Wrapper over
/// lf_malloc_ctl("dump.topology"). \returns 0 on success, -1 on open
/// failure.
int lf_malloc_heap_topology_json(const char *Path);

/// Signal-handler entry point: writes the heap profile to
/// "<LFM_PROFILE_DUMP>.<seq>.heap" (prefix cached at allocator init, so
/// no getenv here; default prefix "lfm-heap"). Async-signal-safe after the
/// default allocator exists. Also reachable as
/// lf_malloc_ctl("dump.heap_profile_seq"). \returns 0 on success.
int lf_malloc_heap_profile_dump(void);

/// Signal-handler entry point: writes the full Prometheus text exposition
/// (counters, gauges, and the sampled latency histograms) to
/// "<LFM_STATS_PREFIX>.<seq>.prom" (prefix cached at allocator init;
/// default "lfm-stats"). Async-signal-safe after the default allocator
/// exists — raw fds, no stdio, no allocation. Also reachable as
/// lf_malloc_ctl("dump.prometheus_seq"). \returns 0 on success.
int lf_malloc_latency_dump(void);

/// \deprecated Writes the surviving-sampled-allocations leak report to
/// stderr. Async-signal-safe; the LD_PRELOAD shim registers this with
/// atexit when LFM_LEAK_REPORT=1. Wrapper over
/// lf_malloc_ctl("dump.leak_report").
void lf_malloc_leak_report(void);
}

#endif // LFMALLOC_LFMALLOC_LFMALLOC_H
