//===- lfmalloc/BuddyBackend.h - Non-blocking buddy large backend -*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free buddy system for large objects, replacing the per-operation
/// mmap/munmap round trip of the paper's large path with CAS-only span
/// management — the NBBS design (Marotta et al., "A Non-blocking Buddy
/// System for Scalable Memory Allocation on Multi-core Machines") married
/// to scalloc's reserve-large/commit-lazily virtual-memory strategy.
///
/// ## Layout
///
/// Address space comes in large reserved spans (default 1 GiB, mmap with
/// MAP_NORESERVE — no physical memory until touched). Each span is carved
/// into power-of-two blocks from 8 KiB (min order) to 8 MiB (max order); a
/// request above the max order, or one that finds every span exhausted,
/// falls back to a direct OS map exactly like the os backend.
///
/// Per span there is a forest of complete binary status trees, one rooted
/// at each max-order block, stored level-major in one flat array: level 0
/// holds the TopCount max-order roots, level k holds TopCount<<k nodes,
/// and node (k,i) has children (k+1,2i) and (k+1,2i+1). Each node is one
/// 32-bit word:
///
///     bit 31        BUSY  — this exact block is allocated as a unit
///     bits 30..0    count — number of BUSY nodes in this subtree
///                           (including the node itself)
///
/// A block is allocatable if and only if its word is exactly 0: no unit
/// allocation here, none below (count covers descendants), and no live
/// allocation above (an ancestor's claim would have been rejected — see
/// the protocol). This replaces NBBS's per-node occupancy bits with a
/// counter, which is what makes rollback lossless under concurrency:
/// increments and decrements commute, so a retreating claimer can always
/// subtract exactly what it added without clobbering concurrent claims.
///
/// ## Protocol
///
/// Allocate(order): scan the target level from a per-level rotating hint
/// for a word equal to 0 and claim it with CAS(0 -> BUSY|1); then walk the
/// ancestors to the root doing fetch_add(+1). If any fetch_add returns a
/// value with BUSY set, an enclosing block was concurrently allocated as a
/// unit: subtract the increments made so far, release the claim with
/// fetch_sub(BUSY|1), count a rollback, and continue scanning. The claim
/// is complete — and only then is the memory handed out — once every
/// ancestor has been marked, at which point no enclosing CAS can succeed
/// (every ancestor word is nonzero) and no descendant CAS can succeed
/// (the claimed word is nonzero). Ancestors whose returned count was 0
/// were free wholes this allocation carved into: those are the splits.
///
/// Free: fetch_sub(BUSY|1) on the node, then fetch_sub(1) on each ancestor
/// up to the root — no CAS, no retry: the free path is wait-free, and
/// coalescing is implicit: a block at any level is reusable the instant
/// its count drains to 0, with no sibling hand-shake. Ancestors whose
/// count reaches 0 are the coalesces.
///
/// Progress: allocation is lock-free (a claim CAS or an up-mark conflict
/// fails only because another allocation succeeded), freeing is wait-free,
/// and trim is obstruction-free (its claims yield to allocations). The
/// claim CAS has no ABA hazard: it fires only on the exact value 0, and 0
/// always means genuinely free — a block that was freed and re-freed back
/// to 0 between a scanner's read and its CAS is still free.
///
/// ## Physical memory
///
/// A per-span residency bitmap (one bit per min-order leaf) tracks which
/// pages have ever been handed out. On allocate, newly-set bits are
/// counted into the committed meter (PageAllocator::recordCommit — the
/// §4.2.5 space meter sees lazily-faulted pages when they are promised,
/// not when the kernel faults them). On free, if free committed bytes
/// exceed the retention watermark (the PR 4 memory-return policy, second
/// tier), the block is decommitted (MADV_DONTNEED) while the claim still
/// stands — exclusivity makes the madvise race-free. trim(keep) walks the
/// trees claiming maximal free blocks through the same CAS protocol and
/// decommits them down to the watermark.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_BUDDYBACKEND_H
#define LFMALLOC_LFMALLOC_BUDDYBACKEND_H

#include "lfmalloc/LargeBackend.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lfm {

class BuddyBackend final : public LargeBackend {
public:
  /// Geometry. Orders count from 0 (min) to NumOrders-1 (max); tree levels
  /// count from 0 (max-order roots) down to NumOrders-1 (min-order leaves).
  static constexpr unsigned MinOrderShift = 13; ///< 8 KiB min block.
  static constexpr unsigned NumOrders = 11;     ///< 8 KiB .. 8 MiB.
  static constexpr unsigned MaxOrderShift = MinOrderShift + NumOrders - 1;
  static constexpr std::size_t MinOrderBytes = std::size_t{1} << MinOrderShift;
  static constexpr std::size_t MaxOrderBytes = std::size_t{1} << MaxOrderShift;
  /// Span directory capacity. Published by CAS; never shrinks.
  static constexpr unsigned MaxSpans = 16;

  explicit BuddyBackend(PageAllocator &Pages) : Pages(Pages) {}
  ~BuddyBackend() override;

  BuddyBackend(const BuddyBackend &) = delete;
  BuddyBackend &operator=(const BuddyBackend &) = delete;

  /// One-time setup before first use (the owning allocator's constructor):
  /// per-span reservation size (power of two, multiple of MaxOrderBytes)
  /// and the retention watermark shared with the superblock cache tier.
  void configure(std::size_t SpanBytesV, std::size_t RetainMaxV) {
    SpanBytes = SpanBytesV;
    RetainMax.store(RetainMaxV, std::memory_order_relaxed);
  }

  /// Runtime watermark update (lf_malloc_ctl trim.retain_max_bytes).
  void setRetainMaxBytes(std::size_t Bytes) {
    RetainMax.store(Bytes, std::memory_order_relaxed);
  }

  // LargeBackend interface.
  bool allocate(std::size_t Total, std::size_t Align,
                Allocation &Out) override;
  bool deallocate(void *Block, std::size_t Total) override;
  void *remap(void *Block, std::size_t OldTotal, std::size_t NewTotal,
              std::size_t &RoundedTotal) override;
  std::size_t trim(std::size_t KeepBytes) override;
  void snapshot(LargeBackendSnapshot &Out) const override;

  /// Quiescent structural check: every node's count equals its own BUSY
  /// bit plus its children's counts, BUSY nodes have all-zero subtrees,
  /// and the byte meters match the trees and bitmaps. Call only with no
  /// concurrent operations. \returns false with \p What naming the broken
  /// invariant.
  bool debugValidate(const char **What) const;

private:
  /// Node word encoding.
  static constexpr std::uint32_t BusyBit = 0x80000000u;
  static constexpr std::uint32_t CountMask = 0x7fffffffu;

  /// One reserved span plus its metadata, all living in a single page
  /// mapping laid out [Span | status trees | residency bitmap].
  struct Span {
    char *Base;               ///< Reserved range, MaxOrderBytes-aligned.
    std::size_t Bytes;        ///< Reserved size.
    std::uint32_t TopCount;   ///< Bytes / MaxOrderBytes tree roots.
    std::size_t MetaBytes;    ///< Size of this metadata mapping.
    std::atomic<std::uint32_t> *Tree;     ///< Level-major status nodes.
    std::atomic<std::uint64_t> *Resident; ///< One bit per min-order leaf.
    std::atomic<std::uint64_t> Committed; ///< Resident bytes in this span.
    std::atomic<std::uint64_t> Allocated; ///< Live-block bytes in this span.
    std::atomic<std::uint32_t> Hint[NumOrders]; ///< Per-level scan start.
  };

  static unsigned orderForTotal(std::size_t Total);
  static constexpr std::size_t blockBytes(unsigned Level) {
    return MaxOrderBytes >> Level;
  }
  static constexpr std::uint32_t levelOffset(std::uint32_t TopCount,
                                             unsigned Level) {
    return TopCount * ((1u << Level) - 1);
  }
  static std::atomic<std::uint32_t> &node(const Span &S, unsigned Level,
                                          std::uint32_t Idx) {
    return S.Tree[levelOffset(S.TopCount, Level) + Idx];
  }

  Span *spanOf(const void *P) const;
  Span *spanAt(unsigned Slot);

  bool upMark(Span &S, unsigned Level, std::uint32_t Idx, bool Account);
  void downMark(Span &S, unsigned Level, std::uint32_t Idx, bool Account);
  std::int64_t allocFromSpan(Span &S, unsigned Level);
  std::size_t commitRange(Span &S, std::size_t Off, std::size_t Len);
  std::size_t decommitRange(Span &S, std::size_t Off, std::size_t Len);
  std::size_t trimNode(Span &S, unsigned Level, std::uint32_t Idx,
                       std::size_t KeepBytes);
  void walkFree(const Span &S, unsigned Level, std::uint32_t Idx,
                LargeBackendSnapshot &Out) const;
  std::uint64_t freeCommittedBytes() const {
    const std::uint64_t C = TotalCommitted.load(std::memory_order_relaxed);
    const std::uint64_t A = TotalAllocated.load(std::memory_order_relaxed);
    return C > A ? C - A : 0;
  }

  PageAllocator &Pages;
  std::size_t SpanBytes = std::size_t{1} << 30;
  std::atomic<std::size_t> RetainMax{~std::size_t{0}};
  std::atomic<Span *> Spans[MaxSpans] = {};

  /// Backend-global meters and operation counters. Plain relaxed atomics,
  /// maintained in every build configuration; the telemetry layer folds
  /// them into Counter::Buddy* at snapshot time so this translation unit
  /// stays free of telemetry symbols (the CI nm check).
  std::atomic<std::uint64_t> TotalCommitted{0};
  std::atomic<std::uint64_t> TotalAllocated{0};
  std::atomic<std::uint64_t> StAllocs{0};
  std::atomic<std::uint64_t> StFrees{0};
  std::atomic<std::uint64_t> StSplits{0};
  std::atomic<std::uint64_t> StCoalesces{0};
  std::atomic<std::uint64_t> StOsFallbacks{0};
  std::atomic<std::uint64_t> StRollbacks{0};
  std::atomic<std::uint64_t> StDecommits{0};
  std::atomic<std::uint64_t> StSpanReserves{0};
};

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_BUDDYBACKEND_H
