//===- lfmalloc/LargeBackend.h - Pluggable large-object backends -*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend boundary for allocations beyond the last small size class.
/// LFAllocator's large path (Fig. 4 malloc line 3 / Fig. 6 free line 5)
/// talks only to this interface, so alternative large-object strategies —
/// the os-direct mmap round trip the paper describes, the non-blocking
/// buddy system (BuddyBackend.h), future NUMA arenas — plug in without
/// touching the allocator core.
///
/// Contract notes shared by every implementation:
///  - \c Total sizes always INCLUDE the 8-byte block prefix; the caller
///    writes `RoundedTotal | 1` into the first word of the returned block
///    and hands the payload (Block + BlockPrefixSize) to the user.
///  - The backend rounds \c Total up to its own granularity and reports
///    the rounded size; free() passes that same rounded size back.
///  - All entry points are safe under full concurrency and are lock-free
///    (the buddy's claim loops retry only against other threads'
///    successful progress; os-direct defers to the kernel, as the paper
///    accepts).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_LARGEBACKEND_H
#define LFMALLOC_LFMALLOC_LARGEBACKEND_H

#include "os/PageAllocator.h"

#include <cstddef>
#include <cstdint>

namespace lfm {

/// Upper bound on buddy orders any backend reports (the snapshot arrays
/// are fixed-size so snapshots stay allocation-free).
constexpr unsigned MaxBuddyOrders = 16;

/// Observability snapshot of a large backend. Plain struct, allocation-
/// free to fill; every field is zero for the os-direct backend except the
/// operation counters it shares.
struct LargeBackendSnapshot {
  bool Buddy = false; ///< True when the buddy backend filled this.
  std::uint64_t SpansReserved = 0;   ///< Spans currently reserved.
  std::uint64_t BytesReserved = 0;   ///< Address space under spans.
  std::uint64_t BytesCommitted = 0;  ///< Span bytes ever touched and resident.
  std::uint64_t BytesAllocated = 0;  ///< Span bytes in live blocks.
  std::uint64_t FreeCommittedBytes = 0; ///< Committed but free (trim target).
  std::uint64_t Allocs = 0;      ///< Blocks served from spans.
  std::uint64_t Frees = 0;       ///< Blocks returned to spans.
  std::uint64_t Splits = 0;      ///< Free blocks first carved by an alloc.
  std::uint64_t Coalesces = 0;   ///< Blocks whose subtree drained fully free.
  std::uint64_t OsFallbacks = 0; ///< Requests served by a direct OS map.
  std::uint64_t Rollbacks = 0;   ///< Claims undone after an ancestor conflict.
  std::uint64_t Decommits = 0;   ///< Free blocks returned to the OS (madvise).
  std::uint64_t SpanReserves = 0; ///< reserve() calls ever made.
  /// Committed-or-not free bytes per order (index 0 = min order). Walked
  /// from the status trees at snapshot time; maximal free blocks only.
  std::uint64_t FreeBytesByOrder[MaxBuddyOrders] = {};
  unsigned NumOrders = 0;            ///< Valid FreeBytesByOrder entries.
  std::uint64_t MinOrderBytes = 0;
  std::uint64_t MaxOrderBytes = 0;
  std::uint64_t SpanBytes = 0;       ///< Configured per-span reservation.
};

/// Abstract large-object backend.
class LargeBackend {
public:
  virtual ~LargeBackend() = default;

  /// Result of one allocation.
  struct Allocation {
    void *Block = nullptr;    ///< Block base (prefix word lives here).
    std::size_t Total = 0;    ///< Rounded size the prefix must record.
    bool OsMapped = false;    ///< True when a fresh OS mapping served it.
  };

  /// Allocates a block of at least \p Total bytes (prefix included) whose
  /// base is aligned to at least \p Align (a power of two <= OsPageSize;
  /// stronger alignment is the caller's marker-offset business).
  /// \returns false with Out.Block == nullptr on exhaustion — the caller
  /// may trim caches and retry once before reporting ENOMEM.
  virtual bool allocate(std::size_t Total, std::size_t Align,
                        Allocation &Out) = 0;

  /// Frees a block previously returned with rounded size \p Total.
  /// \returns true when the memory went back to the OS as a whole mapping
  /// (the caller emits its os_unmap trace event only then).
  virtual bool deallocate(void *Block, std::size_t Total) = 0;

  /// realloc()'s in-kernel resize: grows \p Block from rounded \p OldTotal
  /// to at least \p NewTotal without copying when the backend can.
  /// \returns the (possibly moved) block base with \p RoundedTotal set, or
  /// nullptr when unsupported for this block or failed — the caller falls
  /// back to allocate-copy-free.
  virtual void *remap(void *Block, std::size_t OldTotal, std::size_t NewTotal,
                      std::size_t &RoundedTotal) = 0;

  /// Returns free physical memory to the OS, keeping roughly \p KeepBytes
  /// of free committed span memory resident. \returns bytes decommitted.
  virtual std::size_t trim(std::size_t KeepBytes) = 0;

  /// Fills \p Out. Racy-but-consistent-per-word under concurrency.
  virtual void snapshot(LargeBackendSnapshot &Out) const = 0;
};

/// The paper's behavior, verbatim: every large allocation is one OS map,
/// every free one unmap. Kept as the reference backend (`LFM_LARGE_BACKEND
/// =os`) and as the bench baseline the buddy is measured against.
class OsDirectBackend final : public LargeBackend {
public:
  explicit OsDirectBackend(PageAllocator &Pages) : Pages(Pages) {}

  bool allocate(std::size_t Total, std::size_t Align,
                Allocation &Out) override;
  bool deallocate(void *Block, std::size_t Total) override;
  void *remap(void *Block, std::size_t OldTotal, std::size_t NewTotal,
              std::size_t &RoundedTotal) override;
  std::size_t trim(std::size_t KeepBytes) override;
  void snapshot(LargeBackendSnapshot &Out) const override;

private:
  PageAllocator &Pages;
};

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_LARGEBACKEND_H
