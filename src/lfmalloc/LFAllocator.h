//===- lfmalloc/LFAllocator.h - The lock-free allocator ----------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution: a completely lock-free general-purpose
/// malloc/free (Michael, PLDI 2004, §3). Every routine maps 1:1 onto the
/// paper's Figs. 4, 6 and 7; implementation comments cite figure and line
/// numbers.
///
/// Progress guarantee: between any two successful CAS operations system-
/// wide, some malloc or free has made progress; a thread delayed — or
/// killed — at ANY point inside allocate()/deallocate() never blocks other
/// threads. The only waiting in the entire allocator is bounded CAS-retry
/// against *successful* progress by others. (The OS page provider is the
/// one external dependency; the kernel may serialize mmap internally,
/// which the paper accepts and mitigates with hyperblock batching.)
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_LFALLOCATOR_H
#define LFMALLOC_LFMALLOC_LFALLOCATOR_H

#include "lfmalloc/BuddyBackend.h"
#include "lfmalloc/Config.h"
#include "lfmalloc/Descriptor.h"
#include "lfmalloc/DescriptorAllocator.h"
#include "lfmalloc/LargeBackend.h"
#include "lfmalloc/PartialList.h"
#include "lfmalloc/SizeClasses.h"
#include "lfmalloc/SuperblockCache.h"
#include "lfmalloc/ThreadCache.h"
#include "lockfree/TreiberStack.h"
#include "os/PageAllocator.h"
#include "telemetry/MetricsSnapshot.h"
#include "telemetry/TelemetryConfig.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

namespace lfm {

#if LFM_TELEMETRY
namespace telemetry {
class Telemetry;
}
#endif

namespace profiling {
class HeapProfiler;
struct TopologySnapshot;
struct SbMapEntry;
} // namespace profiling

/// Per-size-class runtime state: the paper's `typedef sizeclass` (Fig. 3)
/// — block size, superblock size, and the class-wide partial list.
struct SizeClassRuntime {
  SizeClassRuntime(std::uint32_t BlockSize, std::uint32_t SbSize,
                   PartialListPolicy Policy, HazardDomain &Domain,
                   PageAllocator &Pages)
      : BlockSize(BlockSize), SbSize(SbSize), Partial(Policy, Domain, Pages) {}

  const std::uint32_t BlockSize; ///< Includes the 8-byte prefix.
  const std::uint32_t SbSize;
  PartialList Partial;
};

/// Operation counters (all relaxed; enabled per instance via
/// AllocatorOptions — zero-cost branches when disabled would still dirty
/// cache lines, so they are only maintained when \c StatsEnabled).
struct OpStats {
  std::uint64_t Mallocs = 0;
  std::uint64_t Frees = 0;
  std::uint64_t FromActive = 0;   ///< Fast-path mallocs.
  std::uint64_t FromPartial = 0;  ///< Served from a PARTIAL superblock.
  std::uint64_t FromNewSb = 0;    ///< Required a fresh superblock.
  std::uint64_t LargeMallocs = 0;
  std::uint64_t LargeFrees = 0;
  std::uint64_t SbFreed = 0;      ///< Superblocks that went EMPTY.
};

/// The completely lock-free dynamic memory allocator.
///
/// Thread-safe for any mix of allocate/deallocate from any threads,
/// including blocks freed by threads other than their allocator (the
/// producer-consumer pattern the paper §4.2.3 stresses). Not copyable or
/// movable. Destruction requires quiescence: no concurrent operations, and
/// all outstanding blocks are invalidated.
class LFAllocator {
public:
  explicit LFAllocator(const AllocatorOptions &Opts = AllocatorOptions());
  ~LFAllocator();
  LFAllocator(const LFAllocator &) = delete;
  LFAllocator &operator=(const LFAllocator &) = delete;

  /// malloc(). \returns an 8-byte-aligned block of at least \p Bytes
  /// (a unique pointer for Bytes == 0), or nullptr if the OS is out of
  /// memory. Lock-free.
  void *allocate(std::size_t Bytes);

  /// free(). Accepts null. Lock-free. \p Ptr must come from allocate() of
  /// this instance and not be freed twice.
  void deallocate(void *Ptr);

  /// aligned_alloc()-style allocation: \returns a block of at least
  /// \p Bytes aligned to \p Alignment (a power of two). Implemented by
  /// over-allocating and planting an offset marker in front of the
  /// returned pointer, so deallocate()/usableSize() work unchanged.
  void *allocateAligned(std::size_t Alignment, std::size_t Bytes);

  /// calloc()-style zeroed allocation (overflow-checked).
  void *allocateZeroed(std::size_t Num, std::size_t Size);

  /// realloc()-style resize; contents preserved up to min(old, new).
  void *reallocate(void *Ptr, std::size_t Bytes);

  /// \returns the usable payload capacity of an allocated block.
  std::size_t usableSize(const void *Ptr) const;

  /// \returns how many processor heaps each size class has.
  unsigned numHeaps() const { return HeapCount; }

  /// \returns the number of size classes served from superblocks; payloads
  /// beyond classPayloadSize(numSizeClassesInUse()-1) take the large path.
  unsigned numSizeClassesInUse() const { return ClassCount; }

  /// \returns the space meter covering every byte this instance has mapped
  /// (superblocks, descriptors, large blocks, list nodes) — the paper's
  /// §4.2.5 "maximum space used" is PageStats::PeakBytes.
  PageStats pageStats() const { return Pages.stats(); }

  /// Resets the peak-space watermark to current usage (for benchmarks
  /// measuring per-phase maxima).
  void resetPeakSpace() { Pages.resetPeak(); }

  /// \returns operation counters (zeros unless options().EnableStats).
  OpStats opStats() const;

  /// \returns the full metrics snapshot: every telemetry counter, space
  /// accounting, and subsystem gauges. Counters beyond the legacy OpStats
  /// set are zero unless built with LFM_TELEMETRY=1 (see
  /// MetricsSnapshot::TelemetryCompiled) and options().EnableStats.
  /// Racy-but-consistent-per-word while threads run; exact at quiescence.
  telemetry::MetricsSnapshot metricsSnapshot() const;

  /// Writes metricsSnapshot() as one JSON object ("lfm-metrics-v1") to
  /// \p Out. Well-formed in every build configuration.
  void metricsJson(std::FILE *Out) const;

  /// Writes recorded trace events as Chrome trace JSON ({"traceEvents":
  /// [...]}; load in chrome://tracing or Perfetto). An empty event array
  /// unless options().EnableTrace and LFM_TELEMETRY=1. Safe to call while
  /// other threads allocate (events they race past are skipped).
  void traceJson(std::FILE *Out) const;

  /// True when the sampling heap profiler is attached (LFM_TELEMETRY=1 and
  /// options().EnableProfiler and its tables mapped).
  bool profilerEnabled() const;

  /// Writes the sampling heap profile as `lfm-heapprofile-v1` JSON.
  /// Well-formed in every build configuration ({"enabled": false, ...}
  /// without a profiler). Safe while other threads allocate. Not
  /// async-signal-safe (stdio); use heapProfileText from signal handlers.
  void heapProfileJson(std::FILE *Out) const;

  /// Writes the profile in gperftools `heap profile:` text (heap_v2) to a
  /// raw fd, so `pprof --text <binary> <file>` renders it. Malloc-free,
  /// lock-free, async-signal-safe. Without a profiler writes an all-zero
  /// header. \returns 0 on success, -1 on a bad fd.
  int heapProfileText(int Fd) const;

  /// Writes the surviving-sampled-allocations report (atexit leak report)
  /// to a raw fd. Malloc-free, async-signal-safe; a disabled profiler
  /// writes a single "profiler off" line.
  void leakReport(int Fd) const;

  /// Writes every metric — counters, space, gauges, and (when latency
  /// sampling is on) the per-path lf_malloc_latency_ns histograms — in
  /// Prometheus text exposition format 0.0.4 to a raw fd. Malloc-free,
  /// lock-free, async-signal-safe; well-formed in every build
  /// configuration. \returns 0 on success, -1 on a bad fd.
  int prometheusText(int Fd) const;

  /// True when sampled latency recording is active on this instance
  /// (LFM_TELEMETRY=1, options().EnableStats, LatencySamplePeriod > 0,
  /// tables mapped).
  bool latencyEnabled() const;

  /// True when contention recording is active on this instance
  /// (LFM_TELEMETRY=1, options().EnableStats, ContentionSamplePeriod > 0
  /// or the watchdog armed, tables mapped).
  bool contentionEnabled() const;

  /// True when the progress watchdog is armed on this instance (the
  /// StatsExporter ride scans only then; explicit contention.scan calls
  /// work whenever contentionEnabled()).
  bool contentionWatchdogArmed() const;

  /// Runs one progress-watchdog pass over the contention recorder's
  /// per-thread progress slots, writing a diagnosis of flagged slots to
  /// \p DiagFd (async-signal-safe; pass -1 to scan silently). No-op
  /// without an enabled recorder. \returns stalls + storms flagged.
  unsigned contentionWatchdogScan(int DiagFd = -1) const;

  /// Fills \p Out with a lock-free census of every superblock: per-class
  /// occupancy histograms, state counts, fragmentation ratios (internal
  /// fragmentation only when the profiler is attached), the superblock
  /// cache, and the space meter. Works in every build configuration; exact
  /// at quiescence, racy-but-safe snapshot under concurrency.
  void topologySnapshot(profiling::TopologySnapshot &Out) const;

  /// Writes topologySnapshot() plus an address-ordered heap map as
  /// `lfm-heaptopology-v1` JSON. Not async-signal-safe (stdio + a scratch
  /// mapping for sorting the map).
  void heapTopologyJson(std::FILE *Out) const;

#if LFM_TELEMETRY
  /// The attached profiler, or null. For tests and the harness.
  profiling::HeapProfiler *heapProfiler() const { return Prof; }
#endif

  /// Returns fully-free hyperblocks and fully-free descriptor superblocks
  /// to the OS (quiescent-state only; §3.2.5 extensions).
  std::size_t trimQuiescent() {
    return SbCache.trimQuiescent() + Descs.trimQuiescent();
  }

  /// Returns retained physical memory to the OS while other threads keep
  /// allocating (lock-free; concurrent callers race through a try-lock and
  /// losers return 0). Drains the thread-cache depot and the calling
  /// thread's own magazines back to the superblock anchors first, then
  /// keeps roughly \p KeepBytes of the superblock cache resident. Only RSS
  /// drops — address space stays mapped, and descriptor chunks are
  /// untouched (reclaiming those requires quiescence, see
  /// trimQuiescent()). \returns physical bytes returned.
  std::size_t releaseMemory(std::size_t KeepBytes = 0);

  /// True when this instance runs the thread-local magazine layer.
  bool threadCacheEnabled() const { return TcEpoch != 0; }

  /// Flushes the calling thread's magazines for this instance back to the
  /// superblock anchors (blocks go through the same hazard-protected
  /// EMPTY-transition path as free()). \returns blocks flushed. No-op
  /// without a thread cache; lock-free.
  std::size_t flushThreadCache();

  /// Drains \p Cache and parks it for adoption — the pthread-key exit
  /// destructor's entry point (ThreadCache.cpp). Also callable from tests
  /// to run an "exit drain" inline on a live thread (the TLS entry must
  /// be cleared separately via tcache::drainThreadTls). Internal.
  void tcacheThreadExit(tcache::ThreadCache *Cache);

  /// Test hooks into the tcache internals (stable under quiescence).
  /// Blocks resident in the calling thread's magazine for \p Class.
  std::uint32_t debugTcacheMagazineCount(unsigned Class);
  /// Magazine capacity for \p Class (0 without a thread cache).
  std::uint32_t debugTcacheMagazineCapacity(unsigned Class) const;
  /// Blocks resident in the shared depot for \p Class.
  std::uint32_t debugTcacheDepotBlocks(unsigned Class) const;
  /// Caches ever minted / currently parked for adoption.
  std::uint64_t debugTcacheCachesMinted() const;
  std::uint64_t debugTcacheCachesParked() const;
  /// 16-bit ABA tag on the parked-cache free-stack head.
  std::uint16_t debugTcacheFreeStackTag() const { return TcFree.headTag(); }

  /// Retention watermark shared by both memory-return tiers — the
  /// superblock cache and the buddy large backend (see
  /// AllocatorOptions::RetainMaxBytes). Adjustable at runtime.
  void setRetainMaxBytes(std::size_t Bytes) {
    SbCache.setRetainMaxBytes(Bytes);
    BuddyLarge.setRetainMaxBytes(Bytes);
  }
  std::size_t retainMaxBytes() const { return SbCache.retainMaxBytes(); }

  /// Decay period for background trimming (see
  /// AllocatorOptions::RetainDecayMs). Adjustable at runtime.
  void setRetainDecayMs(std::int64_t Ms) { SbCache.setRetainDecayMs(Ms); }
  std::int64_t retainDecayMs() const { return SbCache.retainDecayMs(); }

  /// True when the buddy backend serves the large path (see
  /// AllocatorOptions::LargeBackend / LFM_LARGE_BACKEND).
  bool largeBackendIsBuddy() const { return LargeB == &BuddyLarge; }

  /// Racy-but-consistent snapshot of the selected large backend's meters
  /// (all-zero with Buddy=false for the os-direct backend).
  void largeBackendSnapshot(LargeBackendSnapshot &Out) const {
    LargeB->snapshot(Out);
  }

  /// Trims only the large backend down to \p KeepBytes of free committed
  /// memory (releaseMemory() runs both tiers). \returns bytes decommitted.
  std::size_t trimLargeBackend(std::size_t KeepBytes = 0) {
    return LargeB->trim(KeepBytes);
  }

  /// Quiescent structural check of the buddy backend's status trees (see
  /// BuddyBackend::debugValidate). True for the os backend.
  bool debugValidateLargeBackend(const char **What = nullptr) const {
    const char *Unused;
    return BuddyLarge.debugValidate(What != nullptr ? What : &Unused);
  }

  /// Failure injection for tests: after \p Count further OS mappings,
  /// every mapping request fails. Negative re-arms to "never fail".
  void debugInjectMapFailuresAfter(std::int64_t Count) {
    Pages.injectMapFailuresAfter(Count);
  }

  /// Finite-budget variant: after \p After further mapping attempts, the
  /// next \p FailCount attempts fail, then mapping recovers.
  void debugInjectMapFailures(std::int64_t After, std::int64_t FailCount) {
    Pages.injectMapFailures(After, FailCount);
  }

  /// Options actually in effect (NumHeaps resolved).
  const AllocatorOptions &options() const { return Opts; }

  /// Writes a human-readable report of the allocator's current state to
  /// \p Out: per-size-class superblock census (active / heap-partial
  /// descriptors with their anchor fields), operation counters, and the
  /// space meter. Racy snapshots under concurrency (each word read
  /// atomically); intended for debugging and tests.
  void dumpState(std::FILE *Out) const;

  /// Quiescent-state invariant oracle for the schedule-exploration tests
  /// (docs/TESTING.md). Must be called with NO concurrent operations in
  /// flight. Walks every descriptor reachable from the heaps' Active
  /// references, the heaps' Partial slots, and the per-class partial
  /// lists (drained and restored), and checks:
  ///  - anchor State consistent with where the descriptor was found
  ///    (Active-referenced => ACTIVE; listed => PARTIAL, or EMPTY whose
  ///    superblock was already released);
  ///  - the superblock freelist chain from Anchor.Avail has exactly
  ///    Count (+ Credits + 1 for the Active reference) distinct in-range
  ///    blocks — no block lost, no block free twice;
  ///  - no descriptor (and no superblock) is reachable from two places.
  /// \returns true when consistent; otherwise false with the first
  /// violation described in \p Msg (when non-null).
  bool debugValidate(std::string *Msg = nullptr);

private:
  void *mallocFromActive(ProcHeap *Heap);
  void *mallocFromPartial(ProcHeap *Heap);
  void *mallocFromNewSb(ProcHeap *Heap, bool &OutOfMemory);

  // Thread-local magazine layer (ThreadCache.h; protocol in
  // docs/DESIGN.md). The hit paths are RMW-free; everything below the
  // first two methods is slow-path batch machinery over the same anchor
  // CASes the figures use.
  void *tcacheAllocate(unsigned Class, std::size_t Bytes);
  bool tcacheDeallocate(void *Ptr);
  tcache::ThreadCache *tcacheGetOrAttach(tcache::TlsState &T);
  tcache::ThreadCache *tcacheMint();
  unsigned tcacheRefill(unsigned Class, tcache::Magazine &M);
  unsigned tcacheStealFromDepot(unsigned Class, tcache::Magazine &M,
                                unsigned Want);
  unsigned mallocBatchFromActive(ProcHeap *Heap, tcache::Magazine &M,
                                 unsigned Want);
  unsigned mallocBatchFromPartial(ProcHeap *Heap, tcache::Magazine &M,
                                  unsigned Want);
  void tcacheFlushMagazine(unsigned Class, tcache::Magazine &M,
                           std::uint32_t Target, bool AllowDepot);
  void tcacheFreeChain(Descriptor *Desc, void *const *Payloads, unsigned N);
  void tcacheDepotPush(unsigned Class, void *ChainHead, void *ChainTail,
                       std::uint32_t N);
  void tcacheFlushCache(tcache::ThreadCache *Cache);
  std::size_t tcacheDrainDepot();
  /// Sums hit counters (and optionally resident-block gauges) over every
  /// cache ever minted. Racy snapshot; exact at quiescence.
  void tcacheAccumulate(std::uint64_t &HitMallocs, std::uint64_t &HitFrees,
                        std::uint64_t *MagazineBlocks,
                        std::uint64_t *PerClassBlocks) const;
  void updateActive(ProcHeap *Heap, Descriptor *Desc,
                    std::uint32_t MoreCredits);
  Descriptor *heapGetPartial(ProcHeap *Heap);
  void heapPutPartial(Descriptor *Desc);
  void removeEmptyDesc(ProcHeap *Heap, Descriptor *Desc);
  void *largeMalloc(std::size_t Bytes, std::uint64_t LatStart);
  void largeFree(void *Block, std::uint64_t Prefix);
  ProcHeap *findHeap(unsigned Class);

  /// Last-ditch response to a map failure: trim the retained superblock
  /// cache to zero and report whether anything came back — if so, the
  /// failed path retries once before giving up with ENOMEM.
  bool oomRescue();

  /// Shared walk behind topologySnapshot()/heapTopologyJson(). When \p Map
  /// is non-null, additionally records up to \p MapCap superblocks into it
  /// (unsorted) with overflow counted in *\p Truncated.
  void collectTopology(profiling::TopologySnapshot &Out,
                       profiling::SbMapEntry *Map, std::size_t MapCap,
                       std::size_t *MapCount,
                       std::uint64_t *Truncated) const;

  AllocatorOptions Opts;       ///< Resolved options.
  unsigned HeapCount = 0;      ///< Heaps per size class.
  unsigned PartialSlots = 1;   ///< MRU Partial slots per heap.
  unsigned ClassCount = 0;     ///< Size classes usable with this SbSize.
  PageAllocator Pages;         ///< Meter + source for everything below.
  HazardDomain &Domain;
  DescriptorAllocator Descs;
  SuperblockCache SbCache;
  /// Large-object backends (must follow Pages: both hold a reference and
  /// the buddy's destructor unmaps through it). LargeB points at the one
  /// options().LargeBackend selected; the other stays idle.
  OsDirectBackend OsLarge;
  BuddyBackend BuddyLarge;
  LargeBackend *LargeB = nullptr;
  SizeClassRuntime *Classes = nullptr; ///< [ClassCount], placement-new'd.
  ProcHeap *Heaps = nullptr;   ///< [ClassCount * HeapCount].
  void *ControlRegion = nullptr; ///< Backing mapping for the two arrays.
  std::size_t ControlBytes = 0;

  /// Thread-cache state. TcEpoch is this instance's never-reused id in
  /// the tcache live-instance table; 0 means the layer is off and every
  /// tcache probe is one predicted-false plain load.
  std::uint64_t TcEpoch = 0;
  std::uint32_t TcCaps[NumSizeClasses] = {}; ///< Magazine capacity per class.
  std::atomic<tcache::ThreadCache *> TcAll{nullptr}; ///< Push-only registry.
  std::atomic<std::uint64_t> TcMinted{0}; ///< Caches ever minted.
  std::atomic<std::uint64_t> TcParked{0}; ///< Caches currently adoptable.
  /// Parked caches for adoption. Tagged Treiber stack: cache slabs are
  /// type-stable until the allocator dies, exactly the contract it needs.
  TreiberStack<tcache::ThreadCache, &tcache::ThreadCache::FreeNext> TcFree;
  tcache::Depot TcDepot[NumSizeClasses]; ///< Shared per-class chains.
#if LFM_TELEMETRY
  /// Sharded counters + trace rings, placement-constructed in the control
  /// region. Non-null when EnableStats or EnableTrace.
  telemetry::Telemetry *Tel = nullptr;
  /// Sampling heap profiler, placement-constructed in the control region.
  /// Non-null when EnableProfiler and its tables mapped successfully.
  profiling::HeapProfiler *Prof = nullptr;
#else
  struct AtomicOpStats;
  AtomicOpStats *Stats = nullptr; ///< Non-null when EnableStats.
#endif
};

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_LFALLOCATOR_H
