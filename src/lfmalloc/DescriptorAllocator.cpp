//===- lfmalloc/DescriptorAllocator.cpp - Fig. 7 descriptor list ----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/DescriptorAllocator.h"

#include "schedtest/SchedPoint.h"
#include "telemetry/ContentionHook.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <new>

using namespace lfm;

namespace {

/// Hazard slot for freelist pops; see HazardDomain's slot convention.
constexpr unsigned HpSlotFreelist = 3;

} // namespace

DescriptorAllocator::~DescriptorAllocator() {
  // Flush descriptors parked in hazard retirement back into the freelist
  // before their storage disappears (quiescent-teardown contract).
  Domain.drainAll();
  DescChunk *Chunk = Chunks.load(std::memory_order_relaxed);
  while (Chunk) {
    DescChunk *Next = Chunk->Next;
    Pages.unmap(Chunk, DescSbBytes);
    Chunk = Next;
  }
}

Descriptor *DescriptorAllocator::alloc() {
  LFM_CONT_LOOP(DescPop);
  for (;;) {
    LFM_CONT_ATTEMPT(DescPop);
    // Fig. 7 lines 1-4: hazard-protected pop. protect() revalidates that
    // the published pointer is still the head, so reading Next below sees
    // the link of a descriptor that is currently first in the list.
    Descriptor *Desc = Domain.protect(HpSlotFreelist, DescAvail);
    if (Desc) {
      Descriptor *Next = Desc->Next.load(std::memory_order_relaxed);
      Descriptor *Expected = Desc;
      LFM_SCHED_POINT(DescPop);
      if (!LFM_SCHED_CAS_FAIL(DescPop) &&
          DescAvail.compare_exchange_strong(Expected, Next,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        Domain.clear(HpSlotFreelist);
        LFM_TEL_CTR(Tel, DescAllocs);
        return Desc;
      }
      continue; // Head moved; re-protect and retry.
    }

    // Fig. 7 lines 5-9: mint a superblock of descriptors. Keep the first
    // for ourselves and try to install the rest; if some other thread beat
    // us to stocking the list, return the whole superblock to the OS and
    // retry the pop — the paper does this "in order to avoid unnecessarily
    // allocating too many descriptors".
    void *Raw = Pages.map(DescSbBytes, DescSbBytes);
    if (!Raw)
      return nullptr; // Out of memory; the caller surfaces it.
    auto *Descs = reinterpret_cast<Descriptor *>(
        static_cast<char *>(Raw) + DescriptorAlignment);
    for (unsigned I = 0; I < DescsPerChunk; ++I) {
      Descriptor *D = new (&Descs[I]) Descriptor();
      // A zero anchor word decodes as state ACTIVE; store an explicit EMPTY
      // anchor so the topology walk (forEachDescriptor) can tell never-used
      // descriptors from ones that own a superblock. The descriptors are
      // unpublished here, so the relaxed store cannot race.
      D->AnchorWord.storeRelaxed(Anchor{});
      D->Next.store(I + 1 < DescsPerChunk ? &Descs[I + 1] : nullptr,
                    std::memory_order_relaxed);
    }

    Descriptor *Expected = nullptr;
    // Release publishes the Next links (the paper's line-7 memory fence).
    if (DescAvail.compare_exchange_strong(Expected, &Descs[1],
                                          std::memory_order_release,
                                          std::memory_order_relaxed)) {
      auto *Chunk = new (Raw) DescChunk();
      Chunk->Next = Chunks.load(std::memory_order_relaxed);
      while (!Chunks.compare_exchange_weak(Chunk->Next, Chunk,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
      }
      Minted.fetch_add(DescsPerChunk, std::memory_order_relaxed);
      LFM_TEL_CTR(Tel, DescAllocs);
      LFM_TEL_CTR(Tel, DescChunkMaps);
      LFM_TEL_EVT(Tel, OsMap, DescSbBytes, 0);
      return &Descs[0];
    }
    Pages.unmap(Raw, DescSbBytes);
  }
}

void DescriptorAllocator::retire(Descriptor *Desc) {
  assert(Desc && "retiring null descriptor");
  // Deferred reinsertion is what makes the pop's CAS ABA-safe: Desc cannot
  // reappear at the freelist head while any thread still holds a hazard
  // on it from an earlier pop attempt.
  LFM_TEL_CTR(Tel, DescRetires);
  LFM_TEL_EVT(Tel, DescRetired, reinterpret_cast<std::uintptr_t>(Desc), 0);
  Domain.retire(Desc, reclaimDescriptor, this);
}

void DescriptorAllocator::reclaimDescriptor(HazardErasable *Obj, void *Ctx) {
  auto *Self = static_cast<DescriptorAllocator *>(Ctx);
  Self->pushFree(static_cast<Descriptor *>(Obj));
}

void DescriptorAllocator::pushFree(Descriptor *Desc) {
  // Fig. 7 DescRetire: the classic freelist push. The release on success
  // is the paper's line-3 memory fence (publishes Desc->Next).
  LFM_CONT_LOOP(DescPush);
  Descriptor *Head = DescAvail.load(std::memory_order_relaxed);
  do {
    LFM_CONT_ATTEMPT(DescPush);
    LFM_SCHED_POINT(DescPush);
    Desc->Next.store(Head, std::memory_order_relaxed);
  } while (LFM_SCHED_CAS_FAIL(DescPush) ||
           !DescAvail.compare_exchange_weak(Head, Desc,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
}

std::size_t DescriptorAllocator::trimQuiescent() {
  // Flush hazard-retired descriptors into the freelist, then take the
  // whole freelist private (quiescent-state operation).
  Domain.drainAll();
  Descriptor *Free = DescAvail.exchange(nullptr, std::memory_order_acquire);

  // Count the free descriptors per chunk.
  for (DescChunk *C = Chunks.load(std::memory_order_relaxed); C;
       C = C->Next)
    C->TrimCount = 0;
  for (Descriptor *D = Free; D;
       D = D->Next.load(std::memory_order_relaxed))
    ++chunkOf(D)->TrimCount;

  // Partition the chunk list: fully free chunks die, the rest survive.
  DescChunk *Dead = nullptr;
  DescChunk *Live = nullptr;
  for (DescChunk *C = Chunks.load(std::memory_order_relaxed); C;) {
    DescChunk *Next = C->Next;
    if (C->TrimCount == DescsPerChunk) {
      C->Next = Dead;
      Dead = C;
    } else {
      C->Next = Live;
      Live = C;
    }
    C = Next;
  }
  Chunks.store(Live, std::memory_order_relaxed);

  // Re-stock the freelist with survivors only.
  while (Free) {
    Descriptor *Next = Free->Next.load(std::memory_order_relaxed);
    bool IsDead = false;
    for (DescChunk *C = Dead; C; C = C->Next)
      if (chunkOf(Free) == C)
        IsDead = true;
    if (!IsDead)
      pushFree(Free);
    Free = Next;
  }

  std::size_t Freed = 0;
  while (Dead) {
    DescChunk *Next = Dead->Next;
    Pages.unmap(Dead, DescSbBytes);
    Minted.fetch_sub(DescsPerChunk, std::memory_order_relaxed);
    Freed += DescSbBytes;
    Dead = Next;
  }
  return Freed;
}
