//===- lfmalloc/SuperblockCache.h - Hyperblock-batched superblocks -*- C++ -*-//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source of superblock memory. Two modes, both from the paper §3.2.5:
///
///  - Direct (HyperblockSize == 0): every superblock is mapped and unmapped
///    with the OS individually — the paper's base design ("An EMPTY
///    superblock is safe to be returned to the OS").
///  - Hyperblock batching: "in order to reduce the frequency of calls to
///    mmap and munmap, we allocate superblocks (e.g., 16 KB) in batches of
///    (e.g., 1 MB) hyperblocks ... allowing them eventually to be returned
///    to the OS." Free superblocks live on a lock-free tagged stack; fully
///    free hyperblocks can be unmapped by trimQuiescent().
///
/// Memory return while threads run. The Treiber free stack's type-stability
/// contract forbids unmapping any memory that was ever pushed (a stalled
/// popper may dereference a node's link arbitrarily late), so the
/// concurrent release paths never munmap. Instead they return *physical*
/// pages with madvise(MADV_DONTNEED), which keeps every byte readable
/// (as zeros) and therefore safe:
///
///  - Watermark: when the cached bytes exceed RetainMaxBytes, release()
///    decommits a superblock's tail pages before pushing it back.
///  - trimRetained(keep): drains the free list, tail-decommits survivors
///    beyond \p keep, and *parks* hyperblocks whose superblocks were all
///    drained — their pages (minus the header page) are decommitted and the
///    header goes onto a second Treiber stack for cheap revival. Real
///    munmap happens only in quiescent trimQuiescent() / the destructor.
///  - Decay: with a decay period set, release() slow paths trigger
///    trimRetained() once per period (jemalloc dirty_decay discipline).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_SUPERBLOCKCACHE_H
#define LFMALLOC_LFMALLOC_SUPERBLOCKCACHE_H

#include "lockfree/TreiberStack.h"
#include "os/PageAllocator.h"
#include "telemetry/TelemetryConfig.h"

#include <atomic>
#include <cstdint>

namespace lfm {

#if LFM_TELEMETRY
namespace telemetry {
class Telemetry;
}
#endif

/// Hands out and takes back superblock-sized memory regions, optionally
/// batching them in aligned hyperblocks.
class SuperblockCache {
public:
  /// \param Pages page provider charged for all mappings.
  /// \param SbSize superblock size (power of two, >= one page).
  /// \param HyperSize hyperblock size; 0 selects direct mode, otherwise
  /// must be a power of two >= 4 * SbSize (one slot hosts the header).
  SuperblockCache(PageAllocator &Pages, std::size_t SbSize,
                  std::size_t HyperSize);
  SuperblockCache(const SuperblockCache &) = delete;
  SuperblockCache &operator=(const SuperblockCache &) = delete;

  /// Unmaps every hyperblock. Teardown contract: quiescent, and all
  /// outstanding superblocks are dead memory the application no longer
  /// touches.
  ~SuperblockCache();

  /// \returns a superblock-sized region (contents unspecified), or nullptr
  /// if the OS is out of memory.
  void *acquire();

  /// Returns \p Sb, previously acquire()d, for reuse (hyperblock mode) or
  /// straight to the OS (direct mode).
  void release(void *Sb);

  /// Returns retained physical memory to the OS while other threads keep
  /// allocating: lock-free callers race through a non-blocking try-lock
  /// (losers return 0 immediately — someone else is already trimming).
  /// Keeps roughly \p KeepBytes of the retained cache resident; everything
  /// beyond that is decommitted in place and fully-collected hyperblocks
  /// are parked. Address space is not shrunk — only RSS drops.
  /// \returns physical bytes returned to the OS by this call.
  std::size_t trimRetained(std::size_t KeepBytes);

  /// Unmaps every hyperblock whose superblocks are all free, including
  /// parked ones. Quiescent-state only (free-stack nodes live inside the
  /// memory being unmapped). \returns bytes returned to the OS.
  std::size_t trimQuiescent();

  /// \returns racy count of cached free superblocks (0 in direct mode).
  std::uint64_t cachedCount() const {
    return CachedSbs.load(std::memory_order_relaxed);
  }

  /// \returns racy count of cached superblocks whose tail pages are
  /// currently decommitted.
  std::uint64_t decommittedCount() const {
    return DecommittedSbs.load(std::memory_order_relaxed);
  }

  /// \returns racy count of parked (fully decommitted, revivable)
  /// hyperblocks.
  std::uint64_t parkedCount() const {
    return ParkedHypers.load(std::memory_order_relaxed);
  }

  /// Retention watermark: once the cache holds more than this many bytes,
  /// further releases decommit their superblock's tail pages immediately.
  /// Default ~0 (retain everything resident).
  void setRetainMaxBytes(std::size_t Bytes) {
    RetainMaxBytes.store(Bytes, std::memory_order_relaxed);
  }
  std::size_t retainMaxBytes() const {
    return RetainMaxBytes.load(std::memory_order_relaxed);
  }

  /// Decay period in milliseconds; while set (>= 0), release() triggers a
  /// trimRetained() pass at most once per period. Negative disables decay
  /// (the default).
  void setRetainDecayMs(std::int64_t Ms) {
    DecayMs.store(Ms, std::memory_order_relaxed);
  }
  std::int64_t retainDecayMs() const {
    return DecayMs.load(std::memory_order_relaxed);
  }

  std::size_t superblockSize() const { return SbSize; }

#if LFM_TELEMETRY
  /// Attaches the owning allocator's telemetry (may be null). Called once
  /// before the cache is shared between threads.
  void setTelemetry(telemetry::Telemetry *T) { Tel = T; }
#endif

private:
  /// Lives in the first bytes of a free superblock while it is cached.
  /// The whole struct stays within the first page, which tail-decommit
  /// keeps resident, so links survive decommission.
  struct FreeSb {
    FreeSb *Next;
    std::uint64_t Flags; ///< Bit 0: tail pages currently decommitted.
  };
  static constexpr std::uint64_t FreeSbDecommitted = 1;

  /// Header occupying the first superblock slot of each hyperblock. The
  /// header's page is never decommitted, so Next/ParkNext links and the
  /// trim bookkeeping stay valid for stalled readers of either stack.
  struct HyperHeader {
    HyperHeader *ParkNext = nullptr; ///< Link while on the Parked stack.
    HyperHeader *Next = nullptr;     ///< Link on the all-hyperblocks list.
    std::atomic<std::uint32_t> FreeCount{0};
    /// Superblocks of this hyperblock drained by the current trim pass;
    /// SbsPerHyper + 1 is the "queued for parking" sentinel. Touched only
    /// under the trim try-lock, except unpark's reset to zero.
    std::atomic<std::uint32_t> TrimCollected{0};
    std::atomic<bool> Parked{false};
  };

  HyperHeader *hyperOf(void *Sb) const {
    return reinterpret_cast<HyperHeader *>(
        reinterpret_cast<std::uintptr_t>(Sb) & ~(HyperSize - 1));
  }

  bool mintHyperblock();
  bool unparkHyperblock();
  void decommitTail(FreeSb *Node);
  void maybeDecay();

  PageAllocator &Pages;
  const std::size_t SbSize;
  const std::size_t HyperSize;      ///< 0 in direct mode.
  const std::uint32_t SbsPerHyper;  ///< Usable slots per hyperblock.
  TreiberStack<FreeSb> FreeList;
  TreiberStack<HyperHeader, &HyperHeader::ParkNext> Parked;
  std::atomic<HyperHeader *> Hypers{nullptr};
  std::atomic<std::uint64_t> CachedSbs{0};
  std::atomic<std::uint64_t> DecommittedSbs{0};
  std::atomic<std::uint64_t> ParkedHypers{0};
  std::atomic<std::size_t> RetainMaxBytes{~std::size_t{0}};
  std::atomic<std::int64_t> DecayMs{-1};
  std::atomic<std::uint64_t> LastDecayMs{0};
  /// Trim try-lock: holders never block others (losers skip the trim), so
  /// the allocator's lock-freedom is unaffected.
  std::atomic<bool> TrimActive{false};
#if LFM_TELEMETRY
  telemetry::Telemetry *Tel = nullptr;
#endif
};

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_SUPERBLOCKCACHE_H
