//===- lfmalloc/SuperblockCache.h - Hyperblock-batched superblocks -*- C++ -*-//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source of superblock memory. Two modes, both from the paper §3.2.5:
///
///  - Direct (HyperblockSize == 0): every superblock is mapped and unmapped
///    with the OS individually — the paper's base design ("An EMPTY
///    superblock is safe to be returned to the OS").
///  - Hyperblock batching: "in order to reduce the frequency of calls to
///    mmap and munmap, we allocate superblocks (e.g., 16 KB) in batches of
///    (e.g., 1 MB) hyperblocks ... allowing them eventually to be returned
///    to the OS." Free superblocks live on a lock-free tagged stack; fully
///    free hyperblocks can be unmapped by trimQuiescent().
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_SUPERBLOCKCACHE_H
#define LFMALLOC_LFMALLOC_SUPERBLOCKCACHE_H

#include "lockfree/TreiberStack.h"
#include "os/PageAllocator.h"
#include "telemetry/TelemetryConfig.h"

#include <atomic>
#include <cstdint>

namespace lfm {

#if LFM_TELEMETRY
namespace telemetry {
class Telemetry;
}
#endif

/// Hands out and takes back superblock-sized memory regions, optionally
/// batching them in aligned hyperblocks.
class SuperblockCache {
public:
  /// \param Pages page provider charged for all mappings.
  /// \param SbSize superblock size (power of two, >= one page).
  /// \param HyperSize hyperblock size; 0 selects direct mode, otherwise
  /// must be a power of two >= 4 * SbSize (one slot hosts the header).
  SuperblockCache(PageAllocator &Pages, std::size_t SbSize,
                  std::size_t HyperSize);
  SuperblockCache(const SuperblockCache &) = delete;
  SuperblockCache &operator=(const SuperblockCache &) = delete;

  /// Unmaps every hyperblock. Teardown contract: quiescent, and all
  /// outstanding superblocks are dead memory the application no longer
  /// touches.
  ~SuperblockCache();

  /// \returns a superblock-sized region (contents unspecified), or nullptr
  /// if the OS is out of memory.
  void *acquire();

  /// Returns \p Sb, previously acquire()d, for reuse (hyperblock mode) or
  /// straight to the OS (direct mode).
  void release(void *Sb);

  /// Unmaps every hyperblock whose superblocks are all free. Quiescent-
  /// state only (free-stack nodes live inside the memory being unmapped).
  /// \returns bytes returned to the OS.
  std::size_t trimQuiescent();

  /// \returns racy count of cached free superblocks (0 in direct mode).
  std::uint64_t cachedCount() const {
    return CachedSbs.load(std::memory_order_relaxed);
  }

  std::size_t superblockSize() const { return SbSize; }

#if LFM_TELEMETRY
  /// Attaches the owning allocator's telemetry (may be null). Called once
  /// before the cache is shared between threads.
  void setTelemetry(telemetry::Telemetry *T) { Tel = T; }
#endif

private:
  /// Lives in the first bytes of a free superblock while it is cached.
  struct FreeSb {
    FreeSb *Next;
  };

  /// Header occupying the first superblock slot of each hyperblock.
  struct HyperHeader {
    HyperHeader *Next;
    std::atomic<std::uint32_t> FreeCount;
  };

  HyperHeader *hyperOf(void *Sb) const {
    return reinterpret_cast<HyperHeader *>(
        reinterpret_cast<std::uintptr_t>(Sb) & ~(HyperSize - 1));
  }

  bool mintHyperblock();

  PageAllocator &Pages;
  const std::size_t SbSize;
  const std::size_t HyperSize;      ///< 0 in direct mode.
  const std::uint32_t SbsPerHyper;  ///< Usable slots per hyperblock.
  TreiberStack<FreeSb> FreeList;
  std::atomic<HyperHeader *> Hypers{nullptr};
  std::atomic<std::uint64_t> CachedSbs{0};
#if LFM_TELEMETRY
  telemetry::Telemetry *Tel = nullptr;
#endif
};

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_SUPERBLOCKCACHE_H
