//===- lfmalloc/DescriptorAllocator.h - Fig. 7 descriptor list ---*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free allocation and retirement of superblock descriptors — the
/// paper's Fig. 7 (`DescAlloc` / `DescRetire`).
///
/// The freelist is a Treiber list over the descriptors' `Next` fields whose
/// pop is made ABA-safe with hazard pointers, the paper's "SafeCAS (i.e.,
/// ABA-safe) ... we use the hazard pointer methodology [17,19]": a popped
/// descriptor re-enters the list only through hazard retirement, so while a
/// popping thread holds a hazard on the head, that exact descriptor cannot
/// reappear at the head with a different Next.
///
/// Descriptor storage is minted in superblocks of descriptors (DESCSBSIZE)
/// and is type-stable for the life of the allocator instance.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_DESCRIPTORALLOCATOR_H
#define LFMALLOC_LFMALLOC_DESCRIPTORALLOCATOR_H

#include "lfmalloc/Descriptor.h"
#include "lockfree/HazardPointers.h"
#include "os/PageAllocator.h"
#include "telemetry/TelemetryConfig.h"

#include <atomic>
#include <cstdint>

namespace lfm {

#if LFM_TELEMETRY
namespace telemetry {
class Telemetry;
}
#endif

/// Mints, recycles, and (at teardown) releases descriptors for one
/// allocator instance.
class DescriptorAllocator {
public:
  /// Size of one superblock of descriptors (the paper's DESCSBSIZE).
  static constexpr std::size_t DescSbBytes = 16 * 1024;

  /// \param Domain hazard domain protecting the freelist pop and deferring
  /// retired descriptors' reinsertion.
  /// \param Pages page provider charged for descriptor storage.
  DescriptorAllocator(HazardDomain &Domain, PageAllocator &Pages)
      : Domain(Domain), Pages(Pages) {}
  DescriptorAllocator(const DescriptorAllocator &) = delete;
  DescriptorAllocator &operator=(const DescriptorAllocator &) = delete;

  /// Unmaps every descriptor superblock. Teardown contract: the owning
  /// allocator is quiescent and the domain has been drained, so no retired
  /// descriptor still points into the storage being released.
  ~DescriptorAllocator();

  /// Pops a descriptor from the freelist, minting a fresh batch if empty
  /// (paper Fig. 7 DescAlloc). The returned descriptor's fields are stale;
  /// the caller fully reinitializes them before publication.
  /// \returns nullptr only if the freelist is empty AND the OS refuses a
  /// fresh batch (out of memory).
  Descriptor *alloc();

  /// Returns \p Desc to the freelist once no thread holds a hazard on it
  /// (paper Fig. 7 DescRetire, deferred through the domain).
  void retire(Descriptor *Desc);

  /// §3.2.5 extension: "if desired, space for descriptors can be reused
  /// arbitrarily or returned to the OS". Unmaps every descriptor
  /// superblock whose descriptors are all on the freelist. Quiescent-state
  /// only. \returns bytes returned to the OS.
  std::size_t trimQuiescent();

  /// \returns total descriptors minted (for stats/tests; racy).
  std::uint64_t mintedCount() const {
    return Minted.load(std::memory_order_relaxed);
  }

  /// Invokes F(const Descriptor &) for every descriptor ever minted,
  /// including ones currently on the freelist and ones owning FULL
  /// superblocks that are reachable from no list — which is exactly why the
  /// topology inspector walks storage chunks instead of chasing lists.
  /// Lock-free and wait-free (the chunk list only ever grows); readers see
  /// racy-but-initialized descriptors: the mint loop stores an EMPTY anchor
  /// into every fresh descriptor before publishing the chunk, so "State !=
  /// EMPTY" reliably means "owns a superblock" to within in-flight
  /// transitions.
  template <typename Fn> void forEachDescriptor(Fn &&F) const {
    for (DescChunk *C = Chunks.load(std::memory_order_acquire); C != nullptr;
         C = C->Next) {
      const auto *Descs = reinterpret_cast<const Descriptor *>(
          reinterpret_cast<const char *>(C) + DescriptorAlignment);
      for (unsigned I = 0; I < DescsPerChunk; ++I)
        F(Descs[I]);
    }
  }

#if LFM_TELEMETRY
  /// Attaches the owning allocator's telemetry (may be null). Called once
  /// before the allocator is shared between threads.
  void setTelemetry(telemetry::Telemetry *T) { Tel = T; }
#endif

private:
  struct DescChunk {
    DescChunk *Next;
    std::uint32_t TrimCount; ///< Scratch counter used only by trim.
  };

  static DescChunk *chunkOf(Descriptor *Desc) {
    // Chunks are DescSbBytes-aligned mappings, so masking finds the header.
    return reinterpret_cast<DescChunk *>(
        reinterpret_cast<std::uintptr_t>(Desc) & ~(DescSbBytes - 1));
  }

  static constexpr unsigned DescsPerChunk = static_cast<unsigned>(
      (DescSbBytes - DescriptorAlignment) / sizeof(Descriptor));
  static_assert(DescsPerChunk >= 16, "descriptor chunk too small");

  static void reclaimDescriptor(HazardErasable *Obj, void *Ctx);
  void pushFree(Descriptor *Desc);

  HazardDomain &Domain;
  PageAllocator &Pages;
  std::atomic<Descriptor *> DescAvail{nullptr};
  std::atomic<DescChunk *> Chunks{nullptr};
  std::atomic<std::uint64_t> Minted{0};
#if LFM_TELEMETRY
  telemetry::Telemetry *Tel = nullptr;
#endif
};

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_DESCRIPTORALLOCATOR_H
