//===- lfmalloc/LFMalloc.cpp - Process-global malloc facade ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFMalloc.h"

#include "lfmalloc/LFAllocator.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <new>
#include <unistd.h>

using namespace lfm;

namespace {

/// Environment flag reader for the default instance's telemetry gating.
/// getenv only — no allocation, usable before main().
bool envFlag(const char *Name) {
  const char *V = std::getenv(Name);
  return V && V[0] != '\0' && !(V[0] == '0' && V[1] == '\0');
}

/// Dump-path prefix for lf_malloc_heap_profile_dump. Cached out of the
/// environment when the default allocator is created: getenv is not
/// async-signal-safe, and the dump entry point must be.
char DumpPrefix[256] = "lfm-heap";

AllocatorOptions defaultOptions() {
  AllocatorOptions Opts;
  Opts.EnableStats = envFlag("LFM_STATS");
  Opts.EnableTrace = envFlag("LFM_TRACE");
  if (const char *Cap = std::getenv("LFM_TRACE_EVENTS")) {
    const long N = std::atol(Cap);
    if (N > 0)
      Opts.TraceEventsPerThread = static_cast<unsigned>(N);
  }
  Opts.EnableProfiler = envFlag("LFM_PROFILE");
  if (const char *Rate = std::getenv("LFM_PROFILE_RATE")) {
    const long long N = std::atoll(Rate);
    if (N > 0)
      Opts.ProfileRateBytes = static_cast<std::size_t>(N);
  }
  if (const char *Seed = std::getenv("LFM_PROFILE_SEED")) {
    const long long N = std::atoll(Seed);
    if (N > 0)
      Opts.ProfileSeed = static_cast<std::uint64_t>(N);
  }
  if (const char *Sites = std::getenv("LFM_PROFILE_SITES")) {
    const long N = std::atol(Sites);
    if (N > 0)
      Opts.ProfileSiteCapacity = static_cast<std::uint32_t>(N);
  }
  if (const char *Live = std::getenv("LFM_PROFILE_LIVE")) {
    const long N = std::atol(Live);
    if (N > 0)
      Opts.ProfileLiveCapacity = static_cast<std::uint32_t>(N);
  }
  if (const char *Prefix = std::getenv("LFM_PROFILE_DUMP")) {
    if (Prefix[0] != '\0' &&
        std::strlen(Prefix) < sizeof(DumpPrefix)) {
      std::strcpy(DumpPrefix, Prefix);
    }
  }
  return Opts;
}

} // namespace

LFAllocator &lfm::defaultAllocator() {
  // Immortal storage (constructed on first use, never destroyed): avoids
  // static-destructor ordering hazards and keeps the allocator usable from
  // code running during process shutdown.
  alignas(LFAllocator) static unsigned char Storage[sizeof(LFAllocator)];
  static LFAllocator *Instance = new (Storage) LFAllocator(defaultOptions());
  return *Instance;
}

void *lfm::lfMalloc(std::size_t Bytes) {
  return defaultAllocator().allocate(Bytes);
}

void lfm::lfFree(void *Ptr) { defaultAllocator().deallocate(Ptr); }

void *lfm::lfCalloc(std::size_t Num, std::size_t Size) {
  return defaultAllocator().allocateZeroed(Num, Size);
}

void *lfm::lfRealloc(void *Ptr, std::size_t Bytes) {
  return defaultAllocator().reallocate(Ptr, Bytes);
}

void *lfm::lfAlignedAlloc(std::size_t Alignment, std::size_t Bytes) {
  return defaultAllocator().allocateAligned(Alignment, Bytes);
}

std::size_t lfm::lfUsableSize(const void *Ptr) {
  return defaultAllocator().usableSize(Ptr);
}

void *lf_malloc(size_t Bytes) { return lfm::lfMalloc(Bytes); }
void lf_free(void *Ptr) { lfm::lfFree(Ptr); }
void *lf_calloc(size_t Num, size_t Size) { return lfm::lfCalloc(Num, Size); }
void *lf_realloc(void *Ptr, size_t Bytes) {
  return lfm::lfRealloc(Ptr, Bytes);
}
void *lf_aligned_alloc(size_t Alignment, size_t Bytes) {
  return lfm::lfAlignedAlloc(Alignment, Bytes);
}
size_t lf_malloc_usable_size(const void *Ptr) {
  return lfm::lfUsableSize(Ptr);
}

namespace {

int writeToPathOrStderr(const char *Path,
                        void (LFAllocator::*Writer)(std::FILE *) const) {
  LFAllocator &Alloc = lfm::defaultAllocator();
  if (!Path || Path[0] == '\0') {
    (Alloc.*Writer)(stderr);
    return 0;
  }
  std::FILE *Out = std::fopen(Path, "w");
  if (!Out)
    return -1;
  (Alloc.*Writer)(Out);
  std::fclose(Out);
  return 0;
}

} // namespace

void lf_malloc_stats(void) {
  lfm::defaultAllocator().metricsJson(stderr);
}

int lf_malloc_metrics_json(const char *Path) {
  return writeToPathOrStderr(Path, &LFAllocator::metricsJson);
}

int lf_malloc_trace_dump(const char *Path) {
  return writeToPathOrStderr(Path, &LFAllocator::traceJson);
}

int lf_malloc_heap_profile(const char *Path) {
  // Raw fds end to end: this is the entry point signal handlers use.
  LFAllocator &Alloc = lfm::defaultAllocator();
  if (!Path || Path[0] == '\0')
    return Alloc.heapProfileText(STDERR_FILENO);
  const int Fd = ::open(Path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return -1;
  const int Rc = Alloc.heapProfileText(Fd);
  ::close(Fd);
  return Rc;
}

int lf_malloc_heap_profile_json(const char *Path) {
  return writeToPathOrStderr(Path, &LFAllocator::heapProfileJson);
}

int lf_malloc_heap_topology_json(const char *Path) {
  return writeToPathOrStderr(Path, &LFAllocator::heapTopologyJson);
}

int lf_malloc_heap_profile_dump(void) {
  // Async-signal-safe: cached prefix, hand-rolled sequence formatting,
  // open/write/close. The sequence counter makes concurrent or repeated
  // signals write distinct files instead of clobbering one another.
  static std::atomic<unsigned> Seq{0};
  const unsigned N = Seq.fetch_add(1, std::memory_order_relaxed);
  char Path[sizeof(DumpPrefix) + 16];
  std::size_t Len = 0;
  while (DumpPrefix[Len] != '\0' && Len < sizeof(DumpPrefix) - 1) {
    Path[Len] = DumpPrefix[Len];
    ++Len;
  }
  Path[Len++] = '.';
  char Digits[4];
  unsigned V = N % 10000;
  for (int D = 3; D >= 0; --D) {
    Digits[D] = static_cast<char>('0' + V % 10);
    V /= 10;
  }
  for (int D = 0; D < 4; ++D)
    Path[Len++] = Digits[D];
  Path[Len++] = '.';
  Path[Len++] = 'h';
  Path[Len++] = 'e';
  Path[Len++] = 'a';
  Path[Len++] = 'p';
  Path[Len] = '\0';
  return lf_malloc_heap_profile(Path);
}

void lf_malloc_leak_report(void) {
  lfm::defaultAllocator().leakReport(STDERR_FILENO);
}
