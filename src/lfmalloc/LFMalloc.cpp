//===- lfmalloc/LFMalloc.cpp - Process-global malloc facade ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFMalloc.h"

#include "lfmalloc/FacadeState.h"
#include "lfmalloc/LFAllocator.h"
#include "support/RuntimeConfig.h"

#include <cstring>
#include <new>

using namespace lfm;

namespace {

/// Builds the default instance's options from the LFM_* environment (the
/// instance has no other configuration channel when it is interposed as
/// the process malloc). The variable registry lives in
/// support/RuntimeConfig.h; this reads it with getenv only — no
/// allocation, usable before main().
AllocatorOptions defaultOptions() {
  using config::Var;
  AllocatorOptions Opts;
  Opts.EnableStats = config::varFlag(Var::Stats);
  Opts.EnableTrace = config::varFlag(Var::Trace);
  std::uint64_t U = 0;
  if (config::varU64(Var::TraceEvents, U) && U > 0)
    Opts.TraceEventsPerThread = static_cast<unsigned>(U);
  Opts.EnableProfiler = config::varFlag(Var::Profile);
  if (config::varU64(Var::ProfileRate, U) && U > 0)
    Opts.ProfileRateBytes = static_cast<std::size_t>(U);
  if (config::varU64(Var::ProfileSeed, U) && U > 0)
    Opts.ProfileSeed = U;
  if (config::varU64(Var::ProfileSites, U) && U > 0)
    Opts.ProfileSiteCapacity = static_cast<std::uint32_t>(U);
  if (config::varU64(Var::ProfileLive, U) && U > 0)
    Opts.ProfileLiveCapacity = static_cast<std::uint32_t>(U);
  if (config::varU64(Var::RetainMaxBytes, U))
    Opts.RetainMaxBytes = static_cast<std::size_t>(U);
  std::int64_t I = 0;
  if (config::varI64(Var::RetainDecayMs, I))
    Opts.RetainDecayMs = I;
  if (const char *Prefix = config::varRaw(Var::ProfileDump)) {
    if (std::strlen(Prefix) < detail::ProfileDumpPrefixCap)
      std::strcpy(detail::ProfileDumpPrefix, Prefix);
  }
  // An explicit LFM_LATENCY_SAMPLE implies stats: latency recording rides
  // on the telemetry block, and asking for samples while leaving stats off
  // would silently record nothing.
  if (config::varU64(Var::LatencySample, U)) {
    Opts.LatencySamplePeriod = U;
    if (U > 0)
      Opts.EnableStats = true;
  }
  // LFM_CONTENTION_SAMPLE / LFM_CONTENTION_WATCHDOG imply stats the same
  // way: the contention recorder rides on the telemetry block.
  if (config::varU64(Var::ContentionSample, U)) {
    Opts.ContentionSamplePeriod = U;
    if (U > 0)
      Opts.EnableStats = true;
  }
  if (config::varU64(Var::ContentionHeat, U) && U > 0)
    Opts.ContentionHeatCapacity = static_cast<std::uint32_t>(U);
  if (config::varFlag(Var::ContentionWatchdog)) {
    Opts.ContentionWatchdog = true;
    Opts.EnableStats = true;
  }
  if (config::varU64(Var::ContentionStallMs, U) && U > 0)
    Opts.ContentionStallMs = U;
  if (config::varU64(Var::ContentionStorm, U) && U > 0)
    Opts.ContentionStormRetries = U;
  if (config::varU64(Var::TestSeed, U) && U > 0) {
    Opts.LatencySampleSeed = U;
    Opts.ContentionSampleSeed = U;
  }
  if (const char *Prefix = config::varRaw(Var::StatsPrefix)) {
    if (std::strlen(Prefix) < detail::StatsPrefixCap)
      std::strcpy(detail::StatsPrefix, Prefix);
  }
  // Thread cache defaults ON for the process-wide default allocator (the
  // registry default "1"); LFM_TCACHE=0 turns it off. Explicitly-optioned
  // local instances keep the AllocatorOptions default (off).
  Opts.EnableThreadCache =
      config::varRaw(Var::Tcache) ? config::varFlag(Var::Tcache) : true;
  if (config::varU64(Var::TcacheMagSize, U) && U > 0)
    Opts.ThreadCacheMagSize = static_cast<unsigned>(U);
  // The buddy large backend defaults ON for the default allocator (the
  // registry default "buddy"); LFM_LARGE_BACKEND=os (or =0) restores the
  // paper's per-operation mmap path byte for byte. Explicitly-optioned
  // local instances keep the AllocatorOptions default (OsDirect).
  Opts.LargeBackend = LargeBackendKind::Buddy;
  if (const char *Backend = config::varRaw(Var::LargeBackend))
    if (std::strcmp(Backend, "os") == 0 || std::strcmp(Backend, "0") == 0)
      Opts.LargeBackend = LargeBackendKind::OsDirect;
  if (config::varU64(Var::BuddySpanBytes, U) && U > 0)
    Opts.BuddySpanBytes = static_cast<std::size_t>(U);
  return Opts;
}

} // namespace

LFAllocator &lfm::defaultAllocator() {
  // Immortal storage (constructed on first use, never destroyed): avoids
  // static-destructor ordering hazards and keeps the allocator usable from
  // code running during process shutdown.
  alignas(LFAllocator) static unsigned char Storage[sizeof(LFAllocator)];
  static LFAllocator *Instance = [] {
    auto *A = new (Storage) LFAllocator(defaultOptions());
    // Fault injection arms after construction so bootstrap maps (heap
    // directory, first descriptor chunk) are never the injected failures —
    // the contract under test is steady-state allocation, not bringup.
    std::int64_t FailAfter = 0;
    if (config::varI64(config::Var::FailMap, FailAfter)) {
      A->debugInjectMapFailuresAfter(FailAfter);
      detail::LastFailMapArm.store(FailAfter, std::memory_order_relaxed);
    }
    return A;
  }();
  return *Instance;
}

void *lfm::lfMalloc(std::size_t Bytes) {
  return defaultAllocator().allocate(Bytes);
}

void lfm::lfFree(void *Ptr) { defaultAllocator().deallocate(Ptr); }

void *lfm::lfCalloc(std::size_t Num, std::size_t Size) {
  return defaultAllocator().allocateZeroed(Num, Size);
}

void *lfm::lfRealloc(void *Ptr, std::size_t Bytes) {
  return defaultAllocator().reallocate(Ptr, Bytes);
}

void *lfm::lfAlignedAlloc(std::size_t Alignment, std::size_t Bytes) {
  return defaultAllocator().allocateAligned(Alignment, Bytes);
}

std::size_t lfm::lfUsableSize(const void *Ptr) {
  return defaultAllocator().usableSize(Ptr);
}

void *lf_malloc(size_t Bytes) { return lfm::lfMalloc(Bytes); }
void lf_free(void *Ptr) { lfm::lfFree(Ptr); }
void *lf_calloc(size_t Num, size_t Size) { return lfm::lfCalloc(Num, Size); }
void *lf_realloc(void *Ptr, size_t Bytes) {
  return lfm::lfRealloc(Ptr, Bytes);
}
void *lf_aligned_alloc(size_t Alignment, size_t Bytes) {
  return lfm::lfAlignedAlloc(Alignment, Bytes);
}
size_t lf_malloc_usable_size(const void *Ptr) {
  return lfm::lfUsableSize(Ptr);
}

// Legacy dump entry points, kept for source compatibility: each is a thin
// wrapper over the matching lf_malloc_ctl dump key (MallocCtl.cpp). New
// code should call lf_malloc_ctl directly.

namespace {

/// Adapts a ctl dump key to the legacy 0/-1 convention. A null or empty
/// path passes In = null so the key selects stderr.
int legacyDump(const char *Key, const char *Path) {
  const bool HavePath = Path != nullptr && Path[0] != '\0';
  const int Rc = lf_malloc_ctl(Key, nullptr, nullptr,
                               HavePath ? Path : nullptr,
                               HavePath ? std::strlen(Path) + 1 : 0);
  return Rc == 0 ? 0 : -1;
}

} // namespace

void lf_malloc_stats(void) { legacyDump("dump.metrics", nullptr); }

int lf_malloc_metrics_json(const char *Path) {
  return legacyDump("dump.metrics", Path);
}

int lf_malloc_trace_dump(const char *Path) {
  return legacyDump("dump.trace", Path);
}

int lf_malloc_heap_profile(const char *Path) {
  return legacyDump("dump.heap_profile", Path);
}

int lf_malloc_heap_profile_json(const char *Path) {
  return legacyDump("dump.heap_profile_json", Path);
}

int lf_malloc_heap_topology_json(const char *Path) {
  return legacyDump("dump.topology", Path);
}

void lf_malloc_leak_report(void) { legacyDump("dump.leak_report", nullptr); }
