//===- lfmalloc/LFMalloc.cpp - Process-global malloc facade ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFMalloc.h"

#include "lfmalloc/LFAllocator.h"

#include <cstdio>
#include <cstdlib>
#include <new>

using namespace lfm;

namespace {

/// Environment flag reader for the default instance's telemetry gating.
/// getenv only — no allocation, usable before main().
bool envFlag(const char *Name) {
  const char *V = std::getenv(Name);
  return V && V[0] != '\0' && !(V[0] == '0' && V[1] == '\0');
}

AllocatorOptions defaultOptions() {
  AllocatorOptions Opts;
  Opts.EnableStats = envFlag("LFM_STATS");
  Opts.EnableTrace = envFlag("LFM_TRACE");
  if (const char *Cap = std::getenv("LFM_TRACE_EVENTS")) {
    const long N = std::atol(Cap);
    if (N > 0)
      Opts.TraceEventsPerThread = static_cast<unsigned>(N);
  }
  return Opts;
}

} // namespace

LFAllocator &lfm::defaultAllocator() {
  // Immortal storage (constructed on first use, never destroyed): avoids
  // static-destructor ordering hazards and keeps the allocator usable from
  // code running during process shutdown.
  alignas(LFAllocator) static unsigned char Storage[sizeof(LFAllocator)];
  static LFAllocator *Instance = new (Storage) LFAllocator(defaultOptions());
  return *Instance;
}

void *lfm::lfMalloc(std::size_t Bytes) {
  return defaultAllocator().allocate(Bytes);
}

void lfm::lfFree(void *Ptr) { defaultAllocator().deallocate(Ptr); }

void *lfm::lfCalloc(std::size_t Num, std::size_t Size) {
  return defaultAllocator().allocateZeroed(Num, Size);
}

void *lfm::lfRealloc(void *Ptr, std::size_t Bytes) {
  return defaultAllocator().reallocate(Ptr, Bytes);
}

void *lfm::lfAlignedAlloc(std::size_t Alignment, std::size_t Bytes) {
  return defaultAllocator().allocateAligned(Alignment, Bytes);
}

std::size_t lfm::lfUsableSize(const void *Ptr) {
  return defaultAllocator().usableSize(Ptr);
}

void *lf_malloc(size_t Bytes) { return lfm::lfMalloc(Bytes); }
void lf_free(void *Ptr) { lfm::lfFree(Ptr); }
void *lf_calloc(size_t Num, size_t Size) { return lfm::lfCalloc(Num, Size); }
void *lf_realloc(void *Ptr, size_t Bytes) {
  return lfm::lfRealloc(Ptr, Bytes);
}
void *lf_aligned_alloc(size_t Alignment, size_t Bytes) {
  return lfm::lfAlignedAlloc(Alignment, Bytes);
}
size_t lf_malloc_usable_size(const void *Ptr) {
  return lfm::lfUsableSize(Ptr);
}

namespace {

int writeToPathOrStderr(const char *Path,
                        void (LFAllocator::*Writer)(std::FILE *) const) {
  LFAllocator &Alloc = lfm::defaultAllocator();
  if (!Path || Path[0] == '\0') {
    (Alloc.*Writer)(stderr);
    return 0;
  }
  std::FILE *Out = std::fopen(Path, "w");
  if (!Out)
    return -1;
  (Alloc.*Writer)(Out);
  std::fclose(Out);
  return 0;
}

} // namespace

void lf_malloc_stats(void) {
  lfm::defaultAllocator().metricsJson(stderr);
}

int lf_malloc_metrics_json(const char *Path) {
  return writeToPathOrStderr(Path, &LFAllocator::metricsJson);
}

int lf_malloc_trace_dump(const char *Path) {
  return writeToPathOrStderr(Path, &LFAllocator::traceJson);
}
