//===- lfmalloc/LFMalloc.cpp - Process-global malloc facade ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFMalloc.h"

#include "lfmalloc/LFAllocator.h"

#include <new>

using namespace lfm;

LFAllocator &lfm::defaultAllocator() {
  // Immortal storage (constructed on first use, never destroyed): avoids
  // static-destructor ordering hazards and keeps the allocator usable from
  // code running during process shutdown.
  alignas(LFAllocator) static unsigned char Storage[sizeof(LFAllocator)];
  static LFAllocator *Instance = new (Storage) LFAllocator();
  return *Instance;
}

void *lfm::lfMalloc(std::size_t Bytes) {
  return defaultAllocator().allocate(Bytes);
}

void lfm::lfFree(void *Ptr) { defaultAllocator().deallocate(Ptr); }

void *lfm::lfCalloc(std::size_t Num, std::size_t Size) {
  return defaultAllocator().allocateZeroed(Num, Size);
}

void *lfm::lfRealloc(void *Ptr, std::size_t Bytes) {
  return defaultAllocator().reallocate(Ptr, Bytes);
}

void *lfm::lfAlignedAlloc(std::size_t Alignment, std::size_t Bytes) {
  return defaultAllocator().allocateAligned(Alignment, Bytes);
}

std::size_t lfm::lfUsableSize(const void *Ptr) {
  return defaultAllocator().usableSize(Ptr);
}

void *lf_malloc(size_t Bytes) { return lfm::lfMalloc(Bytes); }
void lf_free(void *Ptr) { lfm::lfFree(Ptr); }
void *lf_calloc(size_t Num, size_t Size) { return lfm::lfCalloc(Num, Size); }
void *lf_realloc(void *Ptr, size_t Bytes) {
  return lfm::lfRealloc(Ptr, Bytes);
}
void *lf_aligned_alloc(size_t Alignment, size_t Bytes) {
  return lfm::lfAlignedAlloc(Alignment, Bytes);
}
size_t lf_malloc_usable_size(const void *Ptr) {
  return lfm::lfUsableSize(Ptr);
}
