//===- lfmalloc/SizeClasses.h - Size-class table and mapping -----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static size-class geometry: "Superblocks are distributed among size
/// classes based on their block sizes" (paper §3.1). Block sizes here
/// INCLUDE the 8-byte prefix. The paper does not prescribe a table; we use
/// 16-byte steps up to 128 bytes then ~25% geometric steps (Hoard-family
/// practice, bounding internal fragmentation to ~25%), up to half of the
/// default 16 KB superblock. Requests above an instance's largest class go
/// to the large-block OS path.
///
/// Everything here is constexpr so the mapping is O(1) at runtime (one
/// table load) and directly checkable in unit tests.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_SIZECLASSES_H
#define LFMALLOC_LFMALLOC_SIZECLASSES_H

#include "lfmalloc/Config.h"

#include <array>
#include <cstdint>

namespace lfm {

namespace sizeclass_detail {

/// Builds the block-size table: 16..128 step 16, then 4 classes per
/// power-of-two octave up to 8192.
consteval auto buildClassTable() {
  std::array<std::uint32_t, 32> Table{};
  unsigned N = 0;
  for (std::uint32_t Size = 16; Size <= 128; Size += 16)
    Table[N++] = Size;
  for (std::uint32_t Step = 32; Step <= 1024; Step *= 2)
    for (std::uint32_t I = 1; I <= 4; ++I)
      Table[N++] = 4 * Step + I * Step;
  return Table;
}

} // namespace sizeclass_detail

/// Block sizes (prefix included) of every size class, ascending.
inline constexpr auto SizeClassBlockSizes =
    sizeclass_detail::buildClassTable();

/// Total number of size classes in the static table.
inline constexpr unsigned NumSizeClasses =
    static_cast<unsigned>(SizeClassBlockSizes.size());

/// Largest block size (prefix included) served by a size class.
inline constexpr std::uint32_t MaxClassBlockSize =
    SizeClassBlockSizes[NumSizeClasses - 1];

namespace sizeclass_detail {

/// O(1) mapping: Lookup[ceil(Total/16)] = smallest class whose block size
/// holds Total bytes.
consteval auto buildLookup() {
  constexpr unsigned Slots = MaxClassBlockSize / 16 + 1;
  std::array<std::uint8_t, Slots> Lookup{};
  unsigned Class = 0;
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    const std::uint32_t Total = Slot * 16;
    while (Class < NumSizeClasses && SizeClassBlockSizes[Class] < Total)
      ++Class;
    Lookup[Slot] = static_cast<std::uint8_t>(Class);
  }
  return Lookup;
}

inline constexpr auto SizeClassLookup = buildLookup();

} // namespace sizeclass_detail

/// Sentinel returned by sizeToClass for requests beyond the table.
inline constexpr unsigned LargeSizeClass = ~0u;

/// Maps a *payload* request of \p Bytes to its size class, or
/// LargeSizeClass if no class fits. Zero-byte requests are valid and map
/// to the smallest class (malloc(0) returns a unique pointer).
constexpr unsigned sizeToClass(std::size_t Bytes) {
  const std::size_t Total = Bytes + BlockPrefixSize;
  if (Total > MaxClassBlockSize)
    return LargeSizeClass;
  return sizeclass_detail::SizeClassLookup[(Total + 15) / 16];
}

/// \returns the block size (prefix included) of class \p Class.
constexpr std::uint32_t classBlockSize(unsigned Class) {
  assert(Class < NumSizeClasses && "size class out of range");
  return SizeClassBlockSizes[Class];
}

/// \returns the largest payload class \p Class can serve.
constexpr std::size_t classPayloadSize(unsigned Class) {
  return classBlockSize(Class) - BlockPrefixSize;
}

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_SIZECLASSES_H
