//===- lfmalloc/Config.cpp - AllocatorOptions validation ------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/Config.h"

#include "lfmalloc/Descriptor.h"

#include <cstdio>

using namespace lfm;

namespace {

/// Appends one clamp note to the diagnostic text (best effort: the text
/// truncates rather than grows — validation must never allocate).
void note(AllocatorOptions::Diagnostic *Diag, std::size_t &Used,
          const char *Field, unsigned long long From,
          unsigned long long To) {
  if (!Diag)
    return;
  Diag->Clamped = true;
  if (Used >= sizeof(Diag->Text) - 1)
    return;
  const int N = std::snprintf(Diag->Text + Used, sizeof(Diag->Text) - Used,
                              "%s%s %llu -> %llu", Used ? "; " : "", Field,
                              From, To);
  if (N > 0)
    Used += static_cast<std::size_t>(N);
}

std::size_t roundUpPow2(std::size_t V) {
  std::size_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

} // namespace

bool AllocatorOptions::validate(Diagnostic *Diag) {
  std::size_t Used = 0;
  bool Valid = true;
  const auto clampSize = [&](std::size_t &Field, std::size_t Lo,
                             std::size_t Hi, bool Pow2, const char *Name) {
    std::size_t Want = Field;
    if (Pow2 && !isPowerOf2(Want))
      Want = roundUpPow2(Want);
    if (Want < Lo)
      Want = Lo;
    if (Want > Hi)
      Want = Hi;
    if (Want != Field) {
      note(Diag, Used, Name, Field, Want);
      Field = Want;
      Valid = false;
    }
  };

  // The smallest size class is 16 bytes, so the anchor's 12-bit block
  // index caps usable superblocks at MaxBlocksPerSuperblock * 16 bytes;
  // 32 KB is the largest power of two under that bound.
  clampSize(SuperblockSize, OsPageSize, std::size_t{32} * 1024,
            /*Pow2=*/true, "SuperblockSize");
  if (HyperblockSize != 0)
    clampSize(HyperblockSize, 4 * SuperblockSize,
              std::size_t{1} << 30, /*Pow2=*/true, "HyperblockSize");

  const auto clampUnsigned = [&](unsigned &Field, unsigned Lo, unsigned Hi,
                                 const char *Name) {
    unsigned Want = Field < Lo ? Lo : Field;
    if (Want > Hi)
      Want = Hi;
    if (Want != Field) {
      note(Diag, Used, Name, Field, Want);
      Field = Want;
      Valid = false;
    }
  };

  // NumHeaps 0 is the "detect processors" request, so only cap the top.
  if (NumHeaps > 4096) {
    note(Diag, Used, "NumHeaps", NumHeaps, 4096);
    NumHeaps = 4096;
    Valid = false;
  }
  clampUnsigned(PartialSlotsPerHeap, 1, MaxPartialSlots,
                "PartialSlotsPerHeap");
  clampUnsigned(CreditsLimit, 1, MaxCredits, "CreditsLimit");
  clampUnsigned(ThreadCacheMagSize, 2, 1024, "ThreadCacheMagSize");
  clampUnsigned(TraceEventsPerThread, 2, 1u << 24, "TraceEventsPerThread");

  // A span must hold at least one max-order block; cap at 64 GiB so the
  // 31-bit per-node subtree counters can never be approached.
  clampSize(BuddySpanBytes, std::size_t{1} << 23, std::size_t{1} << 36,
            /*Pow2=*/true, "BuddySpanBytes");

  if (ProfileRateBytes == 0) {
    note(Diag, Used, "ProfileRateBytes", 0, 1);
    ProfileRateBytes = 1;
    Valid = false;
  }
  if (ProfileSiteCapacity == 0) {
    note(Diag, Used, "ProfileSiteCapacity", 0, 1);
    ProfileSiteCapacity = 1;
    Valid = false;
  }
  if (ProfileLiveCapacity == 0) {
    note(Diag, Used, "ProfileLiveCapacity", 0, 1);
    ProfileLiveCapacity = 1;
    Valid = false;
  }
  // The recorder itself re-clamps (it must — tests construct it directly),
  // but clamping here too keeps the diagnostic visible at bootstrap.
  if (ContentionHeatCapacity != 0 &&
      (ContentionHeatCapacity < 64 || ContentionHeatCapacity > (1u << 20))) {
    const std::uint32_t Want =
        ContentionHeatCapacity < 64 ? 64u : (1u << 20);
    note(Diag, Used, "ContentionHeatCapacity", ContentionHeatCapacity, Want);
    ContentionHeatCapacity = Want;
    Valid = false;
  }
  if (ContentionStormRetries == 0) {
    note(Diag, Used, "ContentionStormRetries", 0, 1);
    ContentionStormRetries = 1;
    Valid = false;
  }
  return Valid;
}
