//===- lfmalloc/Descriptor.h - Superblock descriptors and heaps --*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Fig. 3 structures: the superblock descriptor, the processor
/// heap with its packed Active word, and the per-size-class runtime record.
///
/// Descriptors are type-stable: once minted they are recycled through the
/// hazard-protected descriptor freelist forever and only unmapped at
/// allocator teardown ("superblock descriptors are not reused as regular
/// blocks and cannot be returned to the OS", §3.2.5). That stability is
/// what makes it safe for free() to chase a block prefix to its descriptor
/// without synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_DESCRIPTOR_H
#define LFMALLOC_LFMALLOC_DESCRIPTOR_H

#include "lfmalloc/Anchor.h"
#include "lfmalloc/Config.h"
#include "lockfree/HazardPointers.h"

#include <atomic>
#include <cstdint>

namespace lfm {

struct ProcHeap;

/// Superblock descriptor (paper Fig. 3, `typedef descriptor`).
///
/// Field-mutability regimes, which the correctness argument leans on:
///  - \c AnchorWord mutates constantly via CAS.
///  - \c Heap changes when a partial superblock is adopted by a heap
///    (Fig. 4 MallocFromPartial line 3) and may be read concurrently by a
///    racing free(); hence atomic with relaxed order — any value the race
///    can observe is a heap that legitimately owned the superblock.
///  - \c Sb, \c BlockSize, \c MaxCount only change on descriptor reuse,
///    which requires the superblock to have been EMPTY (no outstanding
///    blocks), so no loser can still be reading them.
///  - \c Next links the descriptor freelist; \c PartialNext links LIFO
///    partial lists. Disjoint lifetimes, separate fields for clarity.
struct alignas(DescriptorAlignment) Descriptor : HazardErasable {
  AtomicAnchor AnchorWord;
  std::atomic<Descriptor *> Next{nullptr};
  Descriptor *PartialNext = nullptr;
  void *Sb = nullptr;
  std::atomic<ProcHeap *> Heap{nullptr};
  std::uint32_t BlockSize = 0;
  std::uint32_t MaxCount = 0;
};

static_assert(sizeof(Descriptor) == 2 * DescriptorAlignment,
              "descriptor layout drifted; update DESCSBSIZE math");
static_assert(alignof(Descriptor) == DescriptorAlignment,
              "Active word credit-packing requires 64-byte alignment");

/// The processor heap's Active word (paper Fig. 3, `typedef active`):
/// a descriptor pointer with the low CreditBits bits holding `credits`.
/// credits = n means the active superblock has n+1 blocks reservable
/// through this word. Zero encodes "no active superblock".
struct ActiveRef {
  Descriptor *Desc = nullptr;
  std::uint32_t Credits = 0;

  friend bool operator==(const ActiveRef &, const ActiveRef &) = default;
};

constexpr std::uint64_t packActive(const ActiveRef &A) {
  const std::uint64_t Bits = reinterpret_cast<std::uint64_t>(A.Desc);
  assert((Bits & (DescriptorAlignment - 1)) == 0 &&
         "descriptor not aligned; credits would corrupt the pointer");
  assert(A.Credits < MaxCredits && "credits overflow the packed field");
  assert((A.Desc != nullptr || A.Credits == 0) &&
         "null active must carry zero credits");
  return Bits | A.Credits;
}

constexpr ActiveRef unpackActive(std::uint64_t Word) {
  ActiveRef A;
  A.Desc = reinterpret_cast<Descriptor *>(Word &
                                          ~std::uint64_t{MaxCredits - 1});
  A.Credits = static_cast<std::uint32_t>(Word & (MaxCredits - 1));
  return A;
}

/// Atomic Active word with decoded CAS, mirroring Fig. 4's
/// `until CAS(&heap->Active, oldactive, newactive)`.
class AtomicActive {
public:
  ActiveRef load(std::memory_order Order = std::memory_order_acquire) const {
    return unpackActive(Word.load(Order));
  }

  bool compareExchange(ActiveRef &Expected, const ActiveRef &Desired) {
    std::uint64_t Want = packActive(Expected);
    if (Word.compare_exchange_strong(Want, packActive(Desired),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
      return true;
    Expected = unpackActive(Want);
    return false;
  }

private:
  std::atomic<std::uint64_t> Word{0};
};

struct SizeClassRuntime;

/// Maximum most-recently-used Partial slots a heap can be configured
/// with (§3.2.6: "multiple slots can be used if desired"); bounded so a
/// heap still fits one cache line.
inline constexpr unsigned MaxPartialSlots = 4;

/// Processor heap (paper Fig. 3, `typedef procheap`). One per
/// (size class, processor) pair; cache-line sized so heaps of neighbouring
/// processors never false-share.
struct alignas(CacheLineSize) ProcHeap {
  AtomicActive Active; ///< Initially null.
  /// Most-recently-used PARTIAL superblocks. Slot 0 is the paper's single
  /// Partial slot; extra slots (AllocatorOptions::PartialSlotsPerHeap)
  /// buffer more superblocks before demotion to the class-wide list.
  std::atomic<Descriptor *> Partial[MaxPartialSlots] = {};
  SizeClassRuntime *Sc = nullptr; ///< Parent size class.
};

static_assert(sizeof(ProcHeap) == CacheLineSize,
              "ProcHeap should occupy exactly one cache line");

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_DESCRIPTOR_H
