//===- lfmalloc/MallocCtl.cpp - Keyed control/introspection surface -------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// lf_malloc_ctl(): one keyed entry point over the default allocator's
/// statistics, dumps, and runtime knobs, in the style of jemalloc's
/// mallctl. The seven legacy lf_malloc_* dump functions are thin wrappers
/// over the `dump.*` keys (see LFMalloc.cpp); new surface area lands here
/// as keys, not as new C symbols.
///
/// Conventions (documented in docs/API.md):
///  - Reads fill *Out and set *OutLen to the bytes written. Passing a null
///    Out with a non-null OutLen probes the required size. A too-small
///    buffer fails with EINVAL after storing the required size.
///  - Writes take the new value in In/InLen with exact sizes (u64/i64 are
///    8 bytes, host-endian). Writing a read-only key fails with EPERM.
///  - `dump.*` keys take an optional NUL-terminated path in In (null or
///    empty selects stderr) and fail with EIO when it cannot be opened.
///  - Unknown keys fail with ENOENT. Returns 0 on success; never sets
///    errno itself.
///
/// The dispatcher allocates nothing and takes no locks; dump keys stream
/// through stdio except the heap-profile text dumps, which stay on raw
/// fds so signal handlers can reach them through the legacy wrappers.
///
//===----------------------------------------------------------------------===//

#include "lfmalloc/FacadeState.h"
#include "lfmalloc/LFAllocator.h"
#include "lfmalloc/LFMalloc.h"
#include "support/RuntimeConfig.h"
#include "support/Usdt.h"
#include "telemetry/MetricsSnapshot.h"
#include "telemetry/ShmStats.h"
#include "telemetry/StatsExporter.h"
#include "trace/AllocTrace.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <unistd.h>

using namespace lfm;

char lfm::detail::ProfileDumpPrefix[lfm::detail::ProfileDumpPrefixCap] =
    "lfm-heap";
std::atomic<bool> lfm::detail::LeakReportRequested{false};
std::atomic<std::int64_t> lfm::detail::LastFailMapArm{-1};
char lfm::detail::StatsPrefix[lfm::detail::StatsPrefixCap] = "lfm-stats";
std::atomic<std::uint64_t> lfm::detail::StatsIntervalMs{0};
char lfm::detail::TraceRecordPath[lfm::detail::TraceRecordPathCap] = "";
std::atomic<std::uint64_t> lfm::detail::TraceBufferKb{0};

namespace {

/// Copies \p Size bytes of \p Src out through the Out/OutLen protocol.
int readBytes(void *Out, size_t *OutLen, const void *Src, size_t Size) {
  if (OutLen == nullptr)
    return EINVAL;
  if (Out == nullptr) {
    *OutLen = Size; // Size probe.
    return 0;
  }
  if (*OutLen < Size) {
    *OutLen = Size;
    return EINVAL;
  }
  std::memcpy(Out, Src, Size);
  *OutLen = Size;
  return 0;
}

int readU64(void *Out, size_t *OutLen, std::uint64_t V) {
  return readBytes(Out, OutLen, &V, sizeof(V));
}

int readI64(void *Out, size_t *OutLen, std::int64_t V) {
  return readBytes(Out, OutLen, &V, sizeof(V));
}

int readStr(void *Out, size_t *OutLen, const char *S) {
  return readBytes(Out, OutLen, S, std::strlen(S) + 1);
}

int takeU64(const void *In, size_t InLen, std::uint64_t &V) {
  if (In == nullptr || InLen != sizeof(V))
    return EINVAL;
  std::memcpy(&V, In, sizeof(V));
  return 0;
}

int takeI64(const void *In, size_t InLen, std::int64_t &V) {
  if (In == nullptr || InLen != sizeof(V))
    return EINVAL;
  std::memcpy(&V, In, sizeof(V));
  return 0;
}

/// Extracts the optional dump path from In/InLen into \p Buf. A null or
/// empty In selects stderr (Buf left empty). The path must be
/// NUL-terminated within InLen and fit the buffer.
int takePath(const void *In, size_t InLen, char *Buf, size_t Cap) {
  Buf[0] = '\0';
  if (In == nullptr || InLen == 0)
    return 0;
  const char *S = static_cast<const char *>(In);
  const void *Nul = std::memchr(S, '\0', InLen);
  if (Nul == nullptr)
    return EINVAL;
  const size_t Len = static_cast<size_t>(static_cast<const char *>(Nul) - S);
  if (Len >= Cap)
    return EINVAL;
  std::memcpy(Buf, S, Len + 1);
  return 0;
}

/// Runs one of the allocator's stdio writers against the dump path.
int dumpStdio(const void *In, size_t InLen,
              void (LFAllocator::*Writer)(std::FILE *) const) {
  char Path[4096];
  if (const int Rc = takePath(In, InLen, Path, sizeof(Path)))
    return Rc;
  LFAllocator &Alloc = lfm::defaultAllocator();
  if (Path[0] == '\0') {
    (Alloc.*Writer)(stderr);
    return 0;
  }
  std::FILE *Out = std::fopen(Path, "w");
  if (Out == nullptr)
    return EIO;
  (Alloc.*Writer)(Out);
  std::fclose(Out);
  return 0;
}

/// Runs one of the allocator's raw-fd writers against the dump path.
int dumpFd(const void *In, size_t InLen, int (*Writer)(LFAllocator &, int)) {
  char Path[4096];
  if (const int Rc = takePath(In, InLen, Path, sizeof(Path)))
    return Rc;
  LFAllocator &Alloc = lfm::defaultAllocator();
  if (Path[0] == '\0')
    return Writer(Alloc, STDERR_FILENO) == 0 ? 0 : EIO;
  const int Fd = ::open(Path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return EIO;
  const int Rc = Writer(Alloc, Fd);
  ::close(Fd);
  return Rc == 0 ? 0 : EIO;
}

/// stats.<name>: every counter by its JSON name, plus the space and gauge
/// fields of the metrics snapshot under the same names the JSON uses.
int statsGet(const char *Name, void *Out, size_t *OutLen) {
  const telemetry::MetricsSnapshot Snap =
      lfm::defaultAllocator().metricsSnapshot();
  for (unsigned C = 0; C < telemetry::NumCounters; ++C) {
    if (std::strcmp(Name, telemetry::counterName(
                              static_cast<telemetry::Counter>(C))) == 0)
      return readU64(Out, OutLen, Snap.Counters[C]);
  }
  const struct {
    const char *Name;
    std::uint64_t Value;
  } Rows[] = {
      {"bytes_in_use", Snap.Space.BytesInUse},
      {"peak_bytes", Snap.Space.PeakBytes},
      {"map_calls", Snap.Space.MapCalls},
      {"unmap_calls", Snap.Space.UnmapCalls},
      {"decommit_calls", Snap.Space.DecommitCalls},
      {"bytes_decommitted", Snap.Space.BytesDecommitted},
      {"map_retries", Snap.Space.MapRetries},
      {"map_failures", Snap.Space.MapFailures},
      {"bytes_reserved", Snap.Space.BytesReserved},
      {"reserve_calls", Snap.Space.ReserveCalls},
      {"large_backend_buddy", Snap.LargeBackendBuddy ? 1u : 0u},
      {"buddy_spans_reserved", Snap.BuddySpansReserved},
      {"buddy_span_bytes", Snap.BuddySpanBytes},
      {"buddy_bytes_reserved", Snap.BuddyBytesReserved},
      {"buddy_bytes_committed", Snap.BuddyBytesCommitted},
      {"buddy_bytes_allocated", Snap.BuddyBytesAllocated},
      {"buddy_free_committed_bytes", Snap.BuddyFreeCommittedBytes},
      {"cached_superblocks", Snap.CachedSuperblocks},
      {"retained_bytes", Snap.RetainedBytes},
      {"decommitted_superblocks", Snap.DecommittedSuperblocks},
      {"parked_hyperblocks", Snap.ParkedHyperblocks},
      {"retain_max_bytes", Snap.RetainMaxBytes},
      {"descriptors_minted", Snap.DescriptorsMinted},
      {"hazard_retired", Snap.HazardRetired},
      {"hazard_scans", Snap.HazardScans},
      {"hazard_reclaims", Snap.HazardReclaims},
      {"trace_events_emitted", Snap.TraceEventsEmitted},
      {"trace_events_overwritten", Snap.TraceEventsOverwritten},
      {"alloctrace_recording", Snap.AllocTraceRecording ? 1u : 0u},
      {"alloctrace_ops", Snap.AllocTraceOps},
      {"alloctrace_dropped", Snap.AllocTraceDropped},
      {"tcache_caches_minted", Snap.TcacheCachesMinted},
      {"tcache_caches_parked", Snap.TcacheCachesParked},
      {"tcache_magazine_blocks", Snap.TcacheMagazineBlocks},
      {"tcache_depot_blocks", Snap.TcacheDepotBlocks},
  };
  for (const auto &Row : Rows)
    if (std::strcmp(Name, Row.Name) == 0)
      return readU64(Out, OutLen, Row.Value);
  if (std::strcmp(Name, "retain_decay_ms") == 0)
    return readI64(Out, OutLen, Snap.RetainDecayMs);
  return ENOENT;
}

/// opt.<name>: read-only echo of the default allocator's resolved options
/// (the values LFM_* variables produced at first use).
int optGet(const char *Name, void *Out, size_t *OutLen) {
  const AllocatorOptions &O = lfm::defaultAllocator().options();
  if (std::strcmp(Name, "stats") == 0)
    return readU64(Out, OutLen, O.EnableStats ? 1 : 0);
  if (std::strcmp(Name, "trace") == 0)
    return readU64(Out, OutLen, O.EnableTrace ? 1 : 0);
  if (std::strcmp(Name, "trace_events") == 0)
    return readU64(Out, OutLen, O.TraceEventsPerThread);
  if (std::strcmp(Name, "profile") == 0)
    return readU64(Out, OutLen, O.EnableProfiler ? 1 : 0);
  if (std::strcmp(Name, "profile_rate") == 0)
    return readU64(Out, OutLen, O.ProfileRateBytes);
  if (std::strcmp(Name, "profile_seed") == 0)
    return readU64(Out, OutLen, O.ProfileSeed);
  if (std::strcmp(Name, "profile_sites") == 0)
    return readU64(Out, OutLen, O.ProfileSiteCapacity);
  if (std::strcmp(Name, "profile_live") == 0)
    return readU64(Out, OutLen, O.ProfileLiveCapacity);
  if (std::strcmp(Name, "profile_dump") == 0)
    return readStr(Out, OutLen, detail::ProfileDumpPrefix);
  if (std::strcmp(Name, "leak_report") == 0)
    return readU64(Out, OutLen,
                   detail::LeakReportRequested.load(std::memory_order_relaxed)
                       ? 1
                       : 0);
  if (std::strcmp(Name, "latency_sample") == 0)
    // Echo the effective period: latency recording rides on the telemetry
    // block, so without stats nothing is recorded regardless of the knob.
    return readU64(Out, OutLen,
                   O.EnableStats ? O.LatencySamplePeriod : std::uint64_t{0});
  if (std::strcmp(Name, "contention_sample") == 0)
    // Same effective-period discipline as latency_sample.
    return readU64(Out, OutLen,
                   O.EnableStats ? O.ContentionSamplePeriod
                                 : std::uint64_t{0});
  if (std::strcmp(Name, "contention_watchdog") == 0)
    return readU64(Out, OutLen,
                   lfm::defaultAllocator().contentionWatchdogArmed() ? 1 : 0);
  if (std::strcmp(Name, "stats_interval_ms") == 0)
    return readU64(Out, OutLen,
                   detail::StatsIntervalMs.load(std::memory_order_relaxed));
  if (std::strcmp(Name, "stats_prefix") == 0)
    return readStr(Out, OutLen, detail::StatsPrefix);
  if (std::strcmp(Name, "tcache") == 0)
    // Echo the effective state (registration can refuse), not just the
    // requested option.
    return readU64(Out, OutLen,
                   lfm::defaultAllocator().threadCacheEnabled() ? 1 : 0);
  if (std::strcmp(Name, "tcache_mag_size") == 0)
    return readU64(Out, OutLen, O.ThreadCacheMagSize);
  if (std::strcmp(Name, "large_backend") == 0)
    return readStr(Out, OutLen,
                   O.LargeBackend == LargeBackendKind::Buddy ? "buddy"
                                                             : "os");
  if (std::strcmp(Name, "buddy_span_bytes") == 0)
    return readU64(Out, OutLen, O.BuddySpanBytes);
  if (std::strcmp(Name, "shm_stats") == 0) {
    // Echo the effective backing: the active segment's path once open
    // (which resolves "1"/"auto"/"memfd" to "memfd:<fd>"), else the raw
    // LFM_SHM_STATS value, else empty.
    const char *Path = telemetry::ShmStats::path();
    if (Path[0] == '\0') {
      const char *Raw = config::varRaw(config::Var::ShmStats);
      Path = Raw != nullptr ? Raw : "";
    }
    return readStr(Out, OutLen, Path);
  }
  if (std::strcmp(Name, "usdt") == 0) {
#if LFM_USDT
    return readU64(Out, OutLen, usdt::enabled() ? 1 : 0);
#else
    return readU64(Out, OutLen, 0);
#endif
  }
  return ENOENT;
}

/// shmstats.<name>: the lfm-shmstats-v1 shared-memory segment — status
/// reads plus the explicit publish action (docs/OBSERVABILITY.md, "Live
/// out-of-process inspection"). All keys resolve in telemetry-OFF builds
/// too (the ShmStats stubs report an inactive segment).
int shmstatsCtl(const char *Name, void *Out, size_t *OutLen, const void *In,
                size_t InLen) {
  if (std::strcmp(Name, "open") == 0) {
    // Action key: In carries the NUL-terminated backing spec (a path, or
    // "1"/"auto"/"memfd"). EALREADY when a segment is already mapped.
    char Spec[4096];
    if (const int Rc = takePath(In, InLen, Spec, sizeof(Spec)))
      return Rc;
    if (Spec[0] == '\0')
      return EINVAL;
#if !LFM_TELEMETRY
    return ENOENT; // No publisher compiled in.
#else
    return telemetry::ShmStats::open(Spec);
#endif
  }
  if (std::strcmp(Name, "publish") == 0) {
    // Action key: seqlock-publish a fresh snapshot frame right now.
    if (In != nullptr)
      return EINVAL;
    if (!telemetry::ShmStats::active())
      return ENXIO;
    telemetry::ShmStats::publish(lfm::defaultAllocator().metricsSnapshot());
    if (Out != nullptr || OutLen != nullptr)
      return readU64(Out, OutLen, telemetry::ShmStats::epoch());
    return 0;
  }
  if (In != nullptr)
    return EPERM; // Everything below is a read-only status key.
  if (std::strcmp(Name, "active") == 0)
    return readU64(Out, OutLen, telemetry::ShmStats::active() ? 1 : 0);
  if (std::strcmp(Name, "path") == 0)
    return readStr(Out, OutLen, telemetry::ShmStats::path());
  if (std::strcmp(Name, "epoch") == 0)
    return readU64(Out, OutLen, telemetry::ShmStats::epoch());
  if (std::strcmp(Name, "publishes") == 0)
    return readU64(Out, OutLen, telemetry::ShmStats::publishes());
  if (std::strcmp(Name, "bytes") == 0)
    return readU64(Out, OutLen, telemetry::ShmStats::bytes());
  return ENOENT;
}

/// largebackend.<name>: the selected large-object backend — kind echo,
/// byte meters, operation counters, per-order free census, and the trim
/// action (docs/API.md "Large-object backend").
int largeBackendCtl(const char *Name, void *Out, size_t *OutLen,
                    const void *In, size_t InLen) {
  LFAllocator &Alloc = lfm::defaultAllocator();
  if (std::strcmp(Name, "trim") == 0) {
    // Action key: trims only this backend's free committed pages down to
    // an optional u64 keep-bytes budget (default 0; `trim` runs both
    // tiers). Out optionally receives the bytes decommitted.
    std::uint64_t Keep = 0;
    if (In != nullptr) {
      if (const int Rc = takeU64(In, InLen, Keep))
        return Rc;
    } else if (InLen != 0) {
      return EINVAL;
    }
    const std::uint64_t Freed =
        Alloc.trimLargeBackend(static_cast<size_t>(Keep));
    if (Out != nullptr || OutLen != nullptr)
      return readU64(Out, OutLen, Freed);
    return 0;
  }
  if (In != nullptr)
    return EPERM; // Everything below is a read-only status key.
  if (std::strcmp(Name, "kind") == 0)
    return readStr(Out, OutLen, Alloc.largeBackendIsBuddy() ? "buddy" : "os");
  LargeBackendSnapshot LB;
  Alloc.largeBackendSnapshot(LB);
  if (std::strcmp(Name, "free_bytes_by_order") == 0)
    return readBytes(Out, OutLen, LB.FreeBytesByOrder,
                     sizeof(std::uint64_t) * LB.NumOrders);
  const struct {
    const char *Name;
    std::uint64_t Value;
  } Rows[] = {
      {"spans_reserved", LB.SpansReserved},
      {"span_bytes", LB.SpanBytes},
      {"bytes_reserved", LB.BytesReserved},
      {"bytes_committed", LB.BytesCommitted},
      {"bytes_allocated", LB.BytesAllocated},
      {"free_committed_bytes", LB.FreeCommittedBytes},
      {"num_orders", LB.NumOrders},
      {"min_order_bytes", LB.MinOrderBytes},
      {"max_order_bytes", LB.MaxOrderBytes},
      {"allocs", LB.Allocs},
      {"frees", LB.Frees},
      {"splits", LB.Splits},
      {"coalesces", LB.Coalesces},
      {"os_fallbacks", LB.OsFallbacks},
      {"rollbacks", LB.Rollbacks},
      {"decommits", LB.Decommits},
      {"span_reserves", LB.SpanReserves},
  };
  for (const auto &Row : Rows)
    if (std::strcmp(Name, Row.Name) == 0)
      return readU64(Out, OutLen, Row.Value);
  return ENOENT;
}

int heapProfileFd(LFAllocator &Alloc, int Fd) {
  return Alloc.heapProfileText(Fd);
}

int leakReportFd(LFAllocator &Alloc, int Fd) {
  Alloc.leakReport(Fd);
  return 0;
}

int prometheusFd(LFAllocator &Alloc, int Fd) {
  return Alloc.prometheusText(Fd);
}

/// contention.<name>: the contention recorder's health indicators and the
/// explicit watchdog trigger (docs/OBSERVABILITY.md, "Contention &
/// progress").
int contentionCtl(const char *Name, void *Out, size_t *OutLen,
                  const void *In, size_t InLen) {
  LFAllocator &Alloc = lfm::defaultAllocator();
  if (std::strcmp(Name, "scan") == 0) {
    // Action key: one watchdog pass now, diagnosis to the optional dump
    // path (stderr default). Works whenever the recorder is enabled, even
    // with the background watchdog unarmed. Out optionally receives the
    // flagged-slot count.
    char Path[4096];
    if (const int Rc = takePath(In, InLen, Path, sizeof(Path)))
      return Rc;
    unsigned Flagged = 0;
    if (Path[0] == '\0') {
      Flagged = Alloc.contentionWatchdogScan(STDERR_FILENO);
    } else {
      const int Fd = ::open(Path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (Fd < 0)
        return EIO;
      Flagged = Alloc.contentionWatchdogScan(Fd);
      ::close(Fd);
    }
    if (Out != nullptr || OutLen != nullptr)
      return readU64(Out, OutLen, Flagged);
    return 0;
  }
  if (In != nullptr)
    return EPERM; // Everything below is a read-only status key.
  const AllocatorOptions &O = Alloc.options();
  if (std::strcmp(Name, "stall_ms") == 0)
    return readU64(Out, OutLen, O.ContentionStallMs);
  if (std::strcmp(Name, "storm_retries") == 0)
    return readU64(Out, OutLen, O.ContentionStormRetries);
  const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
  const struct {
    const char *Name;
    std::uint64_t Value;
  } Rows[] = {
      {"enabled", Snap.ContentionEnabled ? 1u : 0u},
      {"sample_period", Snap.ContentionSamplePeriod},
      {"samples", Snap.ContentionSamples},
      {"heat_entries", Snap.ContentionHeatEntries},
      {"heat_capacity", Snap.ContentionHeatCapacity},
      {"heat_dropped", Snap.ContentionHeatDropped},
      {"watchdog", Snap.WatchdogArmed ? 1u : 0u},
      {"scans", Snap.WatchdogScans},
      {"stalls", Snap.WatchdogStalls},
      {"storms", Snap.WatchdogStorms},
  };
  for (const auto &Row : Rows)
    if (std::strcmp(Name, Row.Name) == 0)
      return readU64(Out, OutLen, Row.Value);
  return ENOENT;
}

/// StatsExporter emit callback over the default allocator. Every branch is
/// allocation-free (snapshots and raw-fd writers only) — the latency
/// recorder's exporter watchdog counts any violation.
int exporterEmit(void * /*Ctx*/, int Artifact, int Fd) {
  LFAllocator &Alloc = lfm::defaultAllocator();
  switch (Artifact) {
  case telemetry::StatsExporter::MetricsJson: {
    // The armed progress watchdog rides the exporter cadence: one scan of
    // the per-thread progress slots per metrics cycle, diagnosing stalls
    // and retry storms to stderr (raw fd — the exporter never allocates).
    if (Alloc.contentionWatchdogArmed())
      Alloc.contentionWatchdogScan(STDERR_FILENO);
    const telemetry::MetricsSnapshot Snap = Alloc.metricsSnapshot();
    // The shared-memory segment publishes on the same cadence from the
    // same snapshot, so lfm-top and the JSON artifact agree per epoch.
    telemetry::ShmStats::publish(Snap);
    telemetry::writeMetricsJsonFd(Snap, Fd);
    return 0;
  }
  case telemetry::StatsExporter::Prometheus:
    return Alloc.prometheusText(Fd) == 0 ? 0 : -1;
  case telemetry::StatsExporter::HeapProfile:
    // Skip the artifact entirely (negative return) when no profiler is
    // attached, instead of publishing an all-zero profile every cycle.
    if (!Alloc.options().EnableProfiler)
      return -1;
    return Alloc.heapProfileText(Fd) == 0 ? 0 : -1;
  }
  return -1;
}

/// Effective flight-recorder buffer budget in KiB: the last value written
/// through `trace.buffer_kb`, else LFM_TRACE_BUF_KB, else 0 — which the
/// recorder maps to its built-in default.
std::uint64_t traceBufferKb() {
  std::uint64_t Kb = detail::TraceBufferKb.load(std::memory_order_relaxed);
  if (Kb == 0)
    config::varU64(config::Var::TraceBufKb, Kb);
  return Kb;
}

/// trace.<name>: the allocation flight recorder (trace/AllocTrace.h).
/// Echo/status keys resolve in every build configuration; the action keys
/// return ENOENT under LFMALLOC_TRACE=OFF (the recorder stubs).
int traceCtl(const char *Name, void *Out, size_t *OutLen, const void *In,
             size_t InLen) {
  if (std::strcmp(Name, "start") == 0) {
    // In: NUL-terminated destination path (required).
    char Path[detail::TraceRecordPathCap];
    if (const int Rc = takePath(In, InLen, Path, sizeof(Path)))
      return Rc;
    if (Path[0] == '\0')
      return EINVAL;
    const int Rc = trace::startRecording(Path, traceBufferKb());
    if (Rc == 0)
      std::memcpy(detail::TraceRecordPath, Path, std::strlen(Path) + 1);
    return Rc;
  }
  if (std::strcmp(Name, "stop") == 0) {
    if (In != nullptr)
      return EINVAL;
    return trace::stopRecording();
  }
  if (std::strcmp(Name, "flush") == 0) {
    if (In != nullptr)
      return EINVAL;
    return trace::flushNow();
  }
  if (std::strcmp(Name, "buffer_kb") == 0) {
    // Read/write: the written value takes effect at the next trace.start.
    if (In != nullptr) {
      std::uint64_t Kb = 0;
      if (const int Rc = takeU64(In, InLen, Kb))
        return Rc;
      detail::TraceBufferKb.store(Kb, std::memory_order_relaxed);
      return 0;
    }
    return readU64(Out, OutLen, traceBufferKb());
  }
  if (In != nullptr)
    return EPERM; // Everything below is a read-only echo/status key.
  if (std::strcmp(Name, "status") == 0)
    return readU64(Out, OutLen, trace::recorderStats().Recording ? 1 : 0);
  if (std::strcmp(Name, "ops") == 0)
    return readU64(Out, OutLen, trace::recorderStats().Ops);
  if (std::strcmp(Name, "dropped") == 0)
    return readU64(Out, OutLen, trace::recorderStats().Dropped);
  if (std::strcmp(Name, "bytes_written") == 0)
    return readU64(Out, OutLen, trace::recorderStats().BytesWritten);
  if (std::strcmp(Name, "flushes") == 0)
    return readU64(Out, OutLen, trace::recorderStats().Flushes);
  if (std::strcmp(Name, "path") == 0)
    return readStr(Out, OutLen, detail::TraceRecordPath);
  return ENOENT;
}

/// Builds "<prefix>.<NNNN><suffix>" into \p Path using only
/// async-signal-safe operations. \p Path must hold at least
/// PrefixCap + 5 + strlen(Suffix) + 1 bytes. \returns the length written.
std::size_t buildSeqPath(const char *Prefix, std::size_t PrefixCap,
                         unsigned Seq, const char *Suffix, char *Path) {
  std::size_t Len = 0;
  while (Prefix[Len] != '\0' && Len < PrefixCap - 1) {
    Path[Len] = Prefix[Len];
    ++Len;
  }
  Path[Len++] = '.';
  unsigned V = Seq % 10000;
  for (int D = 3; D >= 0; --D) {
    Path[Len + static_cast<std::size_t>(D)] = static_cast<char>('0' + V % 10);
    V /= 10;
  }
  Len += 4;
  for (std::size_t S = 0; Suffix[S] != '\0'; ++S)
    Path[Len++] = Suffix[S];
  Path[Len] = '\0';
  return Len;
}

} // namespace

int lf_malloc_ctl(const char *Key, void *Out, size_t *OutLen, const void *In,
                  size_t InLen) {
  if (Key == nullptr)
    return EINVAL;

  if (std::strcmp(Key, "version") == 0) {
    if (In != nullptr)
      return EPERM;
    return readStr(Out, OutLen, "lfm-ctl-v1");
  }

  if (std::strcmp(Key, "trim") == 0) {
    // Action key: trims the retained superblock cache down to an optional
    // u64 keep-bytes budget (default 0) and optionally reports the bytes
    // released.
    std::uint64_t Keep = 0;
    if (In != nullptr) {
      if (const int Rc = takeU64(In, InLen, Keep))
        return Rc;
    } else if (InLen != 0) {
      return EINVAL;
    }
    const std::uint64_t Released =
        lfm::defaultAllocator().releaseMemory(static_cast<size_t>(Keep));
    if (Out != nullptr || OutLen != nullptr)
      return readU64(Out, OutLen, Released);
    return 0;
  }

  if (std::strcmp(Key, "retain.max_bytes") == 0) {
    LFAllocator &Alloc = lfm::defaultAllocator();
    const std::uint64_t Old = Alloc.retainMaxBytes();
    if (In != nullptr) {
      std::uint64_t New = 0;
      if (const int Rc = takeU64(In, InLen, New))
        return Rc;
      Alloc.setRetainMaxBytes(static_cast<size_t>(New));
    }
    if (Out != nullptr || OutLen != nullptr)
      return readU64(Out, OutLen, Old);
    return In != nullptr ? 0 : EINVAL;
  }

  if (std::strcmp(Key, "retain.decay_ms") == 0) {
    LFAllocator &Alloc = lfm::defaultAllocator();
    const std::int64_t Old = Alloc.retainDecayMs();
    if (In != nullptr) {
      std::int64_t New = 0;
      if (const int Rc = takeI64(In, InLen, New))
        return Rc;
      Alloc.setRetainDecayMs(New);
    }
    if (Out != nullptr || OutLen != nullptr)
      return readI64(Out, OutLen, Old);
    return In != nullptr ? 0 : EINVAL;
  }

  if (std::strcmp(Key, "debug.fail_map") == 0) {
    // In: i64 After (fail maps once After more succeed), optionally
    // followed by i64 FailCount for a finite failure budget (default -1:
    // fail forever). Get returns the last armed After value.
    if (In != nullptr) {
      std::int64_t Arm[2] = {0, -1};
      if (InLen != sizeof(std::int64_t) && InLen != sizeof(Arm))
        return EINVAL;
      std::memcpy(Arm, In, InLen);
      lfm::defaultAllocator().debugInjectMapFailures(Arm[0], Arm[1]);
      detail::LastFailMapArm.store(Arm[0], std::memory_order_relaxed);
    }
    if (Out != nullptr || OutLen != nullptr)
      return readI64(Out, OutLen,
                     detail::LastFailMapArm.load(std::memory_order_relaxed));
    return In != nullptr ? 0 : EINVAL;
  }

  if (std::strncmp(Key, "stats.", 6) == 0) {
    if (In != nullptr)
      return EPERM;
    return statsGet(Key + 6, Out, OutLen);
  }

  if (std::strncmp(Key, "opt.", 4) == 0) {
    if (In != nullptr)
      return EPERM;
    return optGet(Key + 4, Out, OutLen);
  }

  if (std::strcmp(Key, "exporter.start") == 0) {
    // In: u64 interval in milliseconds (> 0). The artifact prefix is the
    // cached LFM_STATS_PREFIX (opt.stats_prefix echoes it).
    std::uint64_t Ms = 0;
    if (const int Rc = takeU64(In, InLen, Ms))
      return Rc;
    const int Rc = telemetry::StatsExporter::start(Ms, detail::StatsPrefix,
                                                   exporterEmit, nullptr);
    if (Rc == 0)
      detail::StatsIntervalMs.store(Ms, std::memory_order_relaxed);
    return Rc;
  }
  if (std::strcmp(Key, "exporter.stop") == 0) {
    if (In != nullptr)
      return EINVAL;
    telemetry::StatsExporter::stop();
    detail::StatsIntervalMs.store(0, std::memory_order_relaxed);
    return 0;
  }
  if (std::strcmp(Key, "exporter.flush") == 0) {
    if (In != nullptr)
      return EINVAL;
    return telemetry::StatsExporter::runCycleNow(detail::StatsPrefix,
                                                 exporterEmit, nullptr);
  }
  if (std::strcmp(Key, "exporter.cycles") == 0) {
    if (In != nullptr)
      return EPERM;
    return readU64(Out, OutLen, telemetry::StatsExporter::cycles());
  }

  if (std::strcmp(Key, "dump.metrics") == 0)
    return dumpStdio(In, InLen, &LFAllocator::metricsJson);
  if (std::strcmp(Key, "dump.trace") == 0)
    return dumpStdio(In, InLen, &LFAllocator::traceJson);
  if (std::strcmp(Key, "dump.topology") == 0)
    return dumpStdio(In, InLen, &LFAllocator::heapTopologyJson);
  if (std::strcmp(Key, "dump.heap_profile_json") == 0)
    return dumpStdio(In, InLen, &LFAllocator::heapProfileJson);
  if (std::strcmp(Key, "dump.heap_profile") == 0)
    return dumpFd(In, InLen, heapProfileFd);
  if (std::strcmp(Key, "dump.leak_report") == 0)
    return dumpFd(In, InLen, leakReportFd);
  if (std::strcmp(Key, "dump.heap_profile_seq") == 0) {
    if (In != nullptr)
      return EINVAL;
    return lf_malloc_heap_profile_dump() == 0 ? 0 : EIO;
  }
  if (std::strcmp(Key, "dump.prometheus") == 0)
    return dumpFd(In, InLen, prometheusFd);
  if (std::strcmp(Key, "dump.prometheus_seq") == 0) {
    if (In != nullptr)
      return EINVAL;
    return lf_malloc_latency_dump() == 0 ? 0 : EIO;
  }

  if (std::strncmp(Key, "trace.", 6) == 0)
    return traceCtl(Key + 6, Out, OutLen, In, InLen);

  if (std::strncmp(Key, "contention.", 11) == 0)
    return contentionCtl(Key + 11, Out, OutLen, In, InLen);

  if (std::strncmp(Key, "largebackend.", 13) == 0)
    return largeBackendCtl(Key + 13, Out, OutLen, In, InLen);

  if (std::strncmp(Key, "shmstats.", 9) == 0)
    return shmstatsCtl(Key + 9, Out, OutLen, In, InLen);

  return ENOENT;
}

int lf_malloc_trim(size_t KeepBytes) {
  // glibc malloc_trim semantics: returns 1 when memory was actually
  // released back to the system, 0 otherwise.
  return lfm::defaultAllocator().releaseMemory(KeepBytes) > 0 ? 1 : 0;
}

int lf_malloc_heap_profile_dump(void) {
  // Async-signal-safe: cached prefix, hand-rolled sequence formatting, and
  // the raw-fd dump.heap_profile path underneath. The sequence counter
  // makes concurrent or repeated signals write distinct files instead of
  // clobbering one another.
  static std::atomic<unsigned> Seq{0};
  const unsigned N = Seq.fetch_add(1, std::memory_order_relaxed);
  char Path[detail::ProfileDumpPrefixCap + 16];
  const std::size_t Len = buildSeqPath(detail::ProfileDumpPrefix,
                                       detail::ProfileDumpPrefixCap, N,
                                       ".heap", Path);
  return lf_malloc_ctl("dump.heap_profile", nullptr, nullptr, Path, Len + 1) ==
                 0
             ? 0
             : -1;
}

int lf_malloc_latency_dump(void) {
  // Same discipline for the Prometheus exposition: distinct sequence
  // counter, cached LFM_STATS_PREFIX, raw fds all the way down.
  static std::atomic<unsigned> Seq{0};
  const unsigned N = Seq.fetch_add(1, std::memory_order_relaxed);
  char Path[detail::StatsPrefixCap + 16];
  const std::size_t Len = buildSeqPath(detail::StatsPrefix,
                                       detail::StatsPrefixCap, N, ".prom",
                                       Path);
  return lf_malloc_ctl("dump.prometheus", nullptr, nullptr, Path, Len + 1) == 0
             ? 0
             : -1;
}
