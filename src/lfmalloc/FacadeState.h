//===- lfmalloc/FacadeState.h - Shared default-facade state ------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal state shared between the default-allocator bootstrap
/// (LFMalloc.cpp, which reads the environment exactly once) and the
/// lf_malloc_ctl dispatcher (MallocCtl.cpp, which exposes the same values
/// by key). Not installed; not part of the public API.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_FACADESTATE_H
#define LFMALLOC_LFMALLOC_FACADESTATE_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lfm {
namespace detail {

inline constexpr std::size_t ProfileDumpPrefixCap = 256;

/// Dump-path prefix for sequenced heap-profile dumps. Cached out of
/// LFM_PROFILE_DUMP when the default allocator is created: getenv is not
/// async-signal-safe, and the sequenced dump entry point must be.
/// Defined in MallocCtl.cpp; written by LFMalloc.cpp's defaultOptions().
extern char ProfileDumpPrefix[ProfileDumpPrefixCap];

/// Whether the shim was asked to print a leak report at exit
/// (LFM_LEAK_REPORT); cached here so `opt.leak_report` can echo it.
extern std::atomic<bool> LeakReportRequested;

inline constexpr std::size_t StatsPrefixCap = 256;

/// Path prefix for background-exporter and signal-dump latency/metrics
/// artifacts. Cached out of LFM_STATS_PREFIX when the default allocator is
/// created for the same reason as ProfileDumpPrefix: getenv is not
/// async-signal-safe. Defined in MallocCtl.cpp.
extern char StatsPrefix[StatsPrefixCap];

/// Interval the background stats exporter was last started with (0 when
/// never started or stopped); `opt.stats_interval_ms` echoes it.
extern std::atomic<std::uint64_t> StatsIntervalMs;

/// Last map-failure injection armed through LFM_FAIL_MAP or
/// `debug.fail_map` (-1: never armed). Purely informational — the live
/// countdown belongs to the PageAllocator.
extern std::atomic<std::int64_t> LastFailMapArm;

inline constexpr std::size_t TraceRecordPathCap = 4096;

/// Destination of the last successful `trace.start` (empty: never
/// started); `trace.path` echoes it. Lives here — not in the recorder —
/// so the echo keys resolve even in LFMALLOC_TRACE=OFF builds, keeping
/// the env↔ctl registry invariant configuration-independent.
extern char TraceRecordPath[TraceRecordPathCap];

/// Flight-recorder buffer budget in KiB for the next `trace.start`
/// (0: resolve LFM_TRACE_BUF_KB, falling back to the recorder default).
extern std::atomic<std::uint64_t> TraceBufferKb;

} // namespace detail
} // namespace lfm

#endif // LFMALLOC_LFMALLOC_FACADESTATE_H
