//===- lfmalloc/BuddyBackend.cpp - Non-blocking buddy large backend -------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// See BuddyBackend.h for the protocol and its correctness argument. Two
// discipline notes for this translation unit:
//
//  - It must contribute zero telemetry symbols under LFM_TELEMETRY=0 (CI
//    nm check): all instrumentation goes through the ContentionHook.h /
//    SchedPoint.h macro gates, and the backend's own statistics are plain
//    relaxed atomics folded into telemetry counters at snapshot time.
//
//  - Span status trees and residency bitmaps live in zero-filled mmap
//    memory and are accessed through std::atomic without placement-new:
//    the static_asserts below pin the layout assumptions that make the
//    all-zero byte pattern a valid "everything free" initial state.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/BuddyBackend.h"

#include "schedtest/SchedPoint.h"
#include "support/Usdt.h"
#include "telemetry/ContentionHook.h"

#include <cassert>

using namespace lfm;

static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t),
              "status-tree nodes overlay raw zeroed pages");
static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t),
              "residency bitmap words overlay raw zeroed pages");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free &&
                  std::atomic<std::uint64_t>::is_always_lock_free,
              "the buddy protocol requires lock-free word atomics");

unsigned BuddyBackend::orderForTotal(std::size_t Total) {
  if (Total > MaxOrderBytes)
    return NumOrders;
  if (Total <= MinOrderBytes)
    return 0;
  const unsigned Bits =
      64 - static_cast<unsigned>(
               __builtin_clzll(static_cast<unsigned long long>(Total - 1)));
  return Bits - MinOrderShift;
}

BuddyBackend::~BuddyBackend() {
  for (std::atomic<Span *> &SlotRef : Spans) {
    Span *S = SlotRef.exchange(nullptr, std::memory_order_acq_rel);
    if (S == nullptr)
      continue;
    Pages.recordUncommit(
        static_cast<std::size_t>(S->Committed.load(std::memory_order_relaxed)));
    Pages.unreserve(S->Base, S->Bytes);
    Pages.unmap(S, S->MetaBytes);
  }
}

BuddyBackend::Span *BuddyBackend::spanAt(unsigned Slot) {
  Span *S = Spans[Slot].load(std::memory_order_acquire);
  if (LFM_LIKELY(S != nullptr))
    return S;

  // Mint a span: one accounted mapping for [Span | trees | bitmap], then
  // the MAP_NORESERVE reservation it describes. Racing minters both build;
  // the CAS loser tears its copy down and adopts the winner's.
  const std::size_t Bytes = SpanBytes;
  const std::uint32_t TopCount =
      static_cast<std::uint32_t>(Bytes >> MaxOrderShift);
  const std::size_t Nodes =
      static_cast<std::size_t>(TopCount) * ((1u << NumOrders) - 1);
  const std::size_t Words = ((Bytes >> MinOrderShift) + 63) / 64;
  const std::size_t TreeOff = alignUp(sizeof(Span), CacheLineSize);
  const std::size_t ResOff =
      alignUp(TreeOff + Nodes * sizeof(std::uint32_t), CacheLineSize);
  const std::size_t MetaBytes = ResOff + Words * sizeof(std::uint64_t);

  void *Meta = Pages.map(MetaBytes);
  if (Meta == nullptr)
    return nullptr;
  char *Base = static_cast<char *>(Pages.reserve(Bytes, MaxOrderBytes));
  if (Base == nullptr) {
    Pages.unmap(Meta, MetaBytes);
    return nullptr;
  }

  Span *Fresh = static_cast<Span *>(Meta);
  Fresh->Base = Base;
  Fresh->Bytes = Bytes;
  Fresh->TopCount = TopCount;
  Fresh->MetaBytes = MetaBytes;
  Fresh->Tree = reinterpret_cast<std::atomic<std::uint32_t> *>(
      static_cast<char *>(Meta) + TreeOff);
  Fresh->Resident = reinterpret_cast<std::atomic<std::uint64_t> *>(
      static_cast<char *>(Meta) + ResOff);
  Fresh->Committed.store(0, std::memory_order_relaxed);
  Fresh->Allocated.store(0, std::memory_order_relaxed);
  for (std::atomic<std::uint32_t> &H : Fresh->Hint)
    H.store(0, std::memory_order_relaxed);

  Span *Expected = nullptr;
  if (!Spans[Slot].compare_exchange_strong(Expected, Fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
    Pages.unreserve(Base, Bytes);
    Pages.unmap(Meta, MetaBytes);
    return Expected;
  }
  StSpanReserves.fetch_add(1, std::memory_order_relaxed);
  LFM_PROBE2(buddy_span_reserve, Base, Bytes);
  return Fresh;
}

BuddyBackend::Span *BuddyBackend::spanOf(const void *P) const {
  const char *C = static_cast<const char *>(P);
  for (const std::atomic<Span *> &SlotRef : Spans) {
    Span *S = SlotRef.load(std::memory_order_acquire);
    if (S == nullptr)
      continue;
    if (C >= S->Base && C < S->Base + S->Bytes)
      return S;
  }
  return nullptr;
}

bool BuddyBackend::upMark(Span &S, unsigned Level, std::uint32_t Idx,
                          bool Account) {
  std::uint32_t I = Idx;
  std::uint64_t NewSplits = 0;
  for (unsigned A = Level; A > 0;) {
    --A;
    I >>= 1;
    const std::uint32_t Old =
        node(S, A, I).fetch_add(1, std::memory_order_acq_rel);
    if (LFM_UNLIKELY((Old & BusyBit) != 0)) {
      // An enclosing block was concurrently allocated as a unit and its
      // claim completed below us. Retreat: subtract exactly the increments
      // made so far (levels A .. Level-1), then release our claim mark.
      // Counters commute, so concurrent claims are untouched.
      std::uint32_t J = Idx;
      for (unsigned B = Level; B > A;) {
        --B;
        J >>= 1;
        node(S, B, J).fetch_sub(1, std::memory_order_release);
      }
      node(S, Level, Idx).fetch_sub(BusyBit | 1, std::memory_order_release);
      StRollbacks.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if ((Old & CountMask) == 0)
      ++NewSplits; // This free whole is now carved into: a split.
  }
  if (Account && NewSplits != 0)
    StSplits.fetch_add(NewSplits, std::memory_order_relaxed);
  return true;
}

void BuddyBackend::downMark(Span &S, unsigned Level, std::uint32_t Idx,
                            bool Account) {
  node(S, Level, Idx).fetch_sub(BusyBit | 1, std::memory_order_release);
  std::uint32_t I = Idx;
  std::uint64_t NewCoalesces = 0;
  for (unsigned A = Level; A > 0;) {
    --A;
    I >>= 1;
    const std::uint32_t Old =
        node(S, A, I).fetch_sub(1, std::memory_order_release);
    if ((Old & CountMask) == 1 && (Old & BusyBit) == 0)
      ++NewCoalesces; // Subtree drained: this block is whole again.
  }
  if (Account && NewCoalesces != 0)
    StCoalesces.fetch_add(NewCoalesces, std::memory_order_relaxed);
}

std::int64_t BuddyBackend::allocFromSpan(Span &S, unsigned Level) {
  // Cheap full-span reject before an O(level-width) scan.
  if (S.Bytes - S.Allocated.load(std::memory_order_relaxed) <
      blockBytes(Level))
    return -1;
  const std::uint32_t N = S.TopCount << Level;
  std::uint32_t Start = S.Hint[Level].load(std::memory_order_relaxed);
  if (Start >= N)
    Start = 0;
  LFM_CONT_LOOP(BuddyAlloc);
  for (std::uint32_t Step = 0; Step < N; ++Step) {
    std::uint32_t I = Start + Step;
    if (I >= N)
      I -= N;
    std::atomic<std::uint32_t> &Node = node(S, Level, I);
    if (Node.load(std::memory_order_relaxed) != 0)
      continue;
    LFM_CONT_ATTEMPT(BuddyAlloc);
    LFM_SCHED_POINT(BuddyAlloc);
    std::uint32_t Expected = 0;
    if (LFM_SCHED_CAS_FAIL(BuddyAlloc) ||
        !Node.compare_exchange_strong(Expected, BusyBit | 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed))
      continue; // Lost the word to a peer; keep scanning.
    if (!upMark(S, Level, I, /*Account=*/true))
      continue; // Rolled back: an enclosing block won. Keep scanning.
    S.Hint[Level].store(I + 1 < N ? I + 1 : 0, std::memory_order_relaxed);
    LFM_CONT_DONE(BuddyAlloc);
    return static_cast<std::int64_t>(I);
  }
  LFM_CONT_DONE(BuddyAlloc);
  return -1;
}

std::size_t BuddyBackend::commitRange(Span &S, std::size_t Off,
                                      std::size_t Len) {
  std::size_t Bit = Off >> MinOrderShift;
  const std::size_t End = (Off + Len) >> MinOrderShift;
  std::uint64_t NewBits = 0;
  while (Bit < End) {
    const std::size_t Word = Bit >> 6;
    const std::size_t WordEnd = (Word + 1) << 6;
    const unsigned Lo = static_cast<unsigned>(Bit & 63);
    const unsigned Hi =
        static_cast<unsigned>((End < WordEnd ? End : WordEnd) - (Word << 6));
    std::uint64_t Mask = ~std::uint64_t{0} << Lo;
    if (Hi < 64)
      Mask &= (std::uint64_t{1} << Hi) - 1;
    const std::uint64_t Old =
        S.Resident[Word].fetch_or(Mask, std::memory_order_relaxed);
    NewBits +=
        static_cast<std::uint64_t>(__builtin_popcountll(Mask & ~Old));
    Bit = WordEnd;
  }
  const std::size_t NewBytes = static_cast<std::size_t>(NewBits)
                               << MinOrderShift;
  if (NewBytes != 0) {
    S.Committed.fetch_add(NewBytes, std::memory_order_relaxed);
    TotalCommitted.fetch_add(NewBytes, std::memory_order_relaxed);
    Pages.recordCommit(NewBytes);
  }
  return NewBytes;
}

std::size_t BuddyBackend::decommitRange(Span &S, std::size_t Off,
                                        std::size_t Len) {
  std::size_t Bit = Off >> MinOrderShift;
  const std::size_t End = (Off + Len) >> MinOrderShift;
  std::uint64_t ClearedBits = 0;
  while (Bit < End) {
    const std::size_t Word = Bit >> 6;
    const std::size_t WordEnd = (Word + 1) << 6;
    const unsigned Lo = static_cast<unsigned>(Bit & 63);
    const unsigned Hi =
        static_cast<unsigned>((End < WordEnd ? End : WordEnd) - (Word << 6));
    std::uint64_t Mask = ~std::uint64_t{0} << Lo;
    if (Hi < 64)
      Mask &= (std::uint64_t{1} << Hi) - 1;
    const std::uint64_t Old =
        S.Resident[Word].fetch_and(~Mask, std::memory_order_relaxed);
    ClearedBits +=
        static_cast<std::uint64_t>(__builtin_popcountll(Mask & Old));
    Bit = WordEnd;
  }
  const std::size_t ClearedBytes = static_cast<std::size_t>(ClearedBits)
                                   << MinOrderShift;
  if (ClearedBytes == 0)
    return 0; // Never touched: nothing resident to give back.
  // The caller holds the block's claim, so no one else can fault pages in
  // concurrently; untouched pages inside the range make madvise a no-op.
  Pages.decommit(S.Base + Off, Len);
  S.Committed.fetch_sub(ClearedBytes, std::memory_order_relaxed);
  TotalCommitted.fetch_sub(ClearedBytes, std::memory_order_relaxed);
  Pages.recordUncommit(ClearedBytes);
  StDecommits.fetch_add(1, std::memory_order_relaxed);
  return ClearedBytes;
}

bool BuddyBackend::allocate(std::size_t Total, std::size_t Align,
                            Allocation &Out) {
  // A buddy block's alignment equals its size, so folding the alignment
  // into the order request satisfies both with one claim.
  const std::size_t Want = Total < Align ? Align : Total;
  const unsigned Order = orderForTotal(Want);
  if (Order < NumOrders) {
    const unsigned Level = (NumOrders - 1) - Order;
    for (unsigned Slot = 0; Slot < MaxSpans; ++Slot) {
      Span *S = spanAt(Slot);
      if (S == nullptr)
        break; // Reservation refused: let the OS fallback try below.
      const std::int64_t Idx = allocFromSpan(*S, Level);
      if (Idx < 0)
        continue; // Span full (or fragmented) at this order.
      const std::size_t Len = blockBytes(Level);
      const std::size_t Off = static_cast<std::size_t>(Idx) * Len;
      S->Allocated.fetch_add(Len, std::memory_order_relaxed);
      TotalAllocated.fetch_add(Len, std::memory_order_relaxed);
      commitRange(*S, Off, Len);
      StAllocs.fetch_add(1, std::memory_order_relaxed);
      Out.Block = S->Base + Off;
      Out.Total = Len;
      Out.OsMapped = false;
      return true;
    }
  }
  // Above the max order, every span exhausted, or reservation impossible:
  // direct OS map, exactly the os backend's behavior.
  const std::size_t Rounded = alignUp(Total, OsPageSize);
  void *Block = Pages.map(Rounded, Align);
  if (Block == nullptr)
    return false;
  StOsFallbacks.fetch_add(1, std::memory_order_relaxed);
  Out.Block = Block;
  Out.Total = Rounded;
  Out.OsMapped = true;
  return true;
}

bool BuddyBackend::deallocate(void *Block, std::size_t Total) {
  Span *S = spanOf(Block);
  if (S == nullptr) {
    Pages.unmap(Block, Total);
    return true;
  }
  const unsigned Order = orderForTotal(Total);
  assert(Order < NumOrders && blockBytes((NumOrders - 1) - Order) == Total &&
         "in-span frees carry the exact order size the allocate returned");
  const unsigned Level = (NumOrders - 1) - Order;
  const std::size_t Off =
      static_cast<std::size_t>(static_cast<char *>(Block) - S->Base);
  const std::uint32_t Idx = static_cast<std::uint32_t>(Off / Total);
  StFrees.fetch_add(1, std::memory_order_relaxed);
  // Watermark decommit happens while the claim still stands: exclusivity
  // makes the madvise race-free, and the block re-enters circulation cold.
  const std::uint64_t C = TotalCommitted.load(std::memory_order_relaxed);
  const std::uint64_t A = TotalAllocated.load(std::memory_order_relaxed);
  const std::uint64_t FreeAfter = C > A - Total ? C - (A - Total) : 0;
  if (FreeAfter > RetainMax.load(std::memory_order_relaxed))
    decommitRange(*S, Off, Total);
  S->Allocated.fetch_sub(Total, std::memory_order_relaxed);
  TotalAllocated.fetch_sub(Total, std::memory_order_relaxed);
  downMark(*S, Level, Idx, /*Account=*/true);
  S->Hint[Level].store(Idx, std::memory_order_relaxed);
  return false;
}

void *BuddyBackend::remap(void *Block, std::size_t OldTotal,
                          std::size_t NewTotal, std::size_t &RoundedTotal) {
  Span *S = spanOf(Block);
  if (S != nullptr) {
    // In-span blocks regrow only within their own order; merging with a
    // free sibling would need another claim protocol and realloc-grow of
    // large blocks is too rare to justify it. The caller copies instead.
    if (NewTotal <= OldTotal) {
      RoundedTotal = OldTotal;
      return Block;
    }
    const unsigned Order = orderForTotal(NewTotal);
    if (Order < NumOrders && blockBytes((NumOrders - 1) - Order) == OldTotal) {
      RoundedTotal = OldTotal;
      return Block;
    }
    return nullptr;
  }
  // OS-fallback blocks behave exactly like the os backend.
  const std::size_t Rounded = alignUp(NewTotal, OsPageSize);
  void *Fresh = Pages.remap(Block, OldTotal, Rounded);
  if (Fresh == nullptr)
    return nullptr;
  RoundedTotal = Rounded;
  return Fresh;
}

std::size_t BuddyBackend::trimNode(Span &S, unsigned Level, std::uint32_t Idx,
                                   std::size_t KeepBytes) {
  const std::uint32_t V = node(S, Level, Idx).load(std::memory_order_acquire);
  if ((V & BusyBit) != 0)
    return 0; // Allocated as a unit: nothing below is free.
  if ((V & CountMask) == 0) {
    const std::size_t Len = blockBytes(Level);
    const std::size_t Off = static_cast<std::size_t>(Idx) * Len;
    // Skip blocks with no resident pages: claiming them frees nothing.
    bool AnyResident = false;
    std::size_t Bit = Off >> MinOrderShift;
    const std::size_t End = (Off + Len) >> MinOrderShift;
    while (Bit < End) {
      const std::size_t Word = Bit >> 6;
      const std::size_t WordEnd = (Word + 1) << 6;
      const unsigned Lo = static_cast<unsigned>(Bit & 63);
      const unsigned Hi =
          static_cast<unsigned>((End < WordEnd ? End : WordEnd) - (Word << 6));
      std::uint64_t Mask = ~std::uint64_t{0} << Lo;
      if (Hi < 64)
        Mask &= (std::uint64_t{1} << Hi) - 1;
      if ((S.Resident[Word].load(std::memory_order_relaxed) & Mask) != 0) {
        AnyResident = true;
        break;
      }
      Bit = WordEnd;
    }
    if (!AnyResident)
      return 0;
    // Whole free block with resident pages: claim it through the normal
    // protocol so no allocation can race the decommit, give the pages
    // back, release. This is the obstruction-free coalesce walk — a lost
    // claim means an allocation won; descend and trim around it.
    LFM_CONT_LOOP(BuddyCoalesce);
    LFM_CONT_ATTEMPT(BuddyCoalesce);
    LFM_SCHED_POINT(BuddyCoalesce);
    std::uint32_t Expected = 0;
    const bool Claimed =
        !LFM_SCHED_CAS_FAIL(BuddyCoalesce) &&
        node(S, Level, Idx).compare_exchange_strong(Expected, BusyBit | 1,
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_relaxed) &&
        upMark(S, Level, Idx, /*Account=*/false);
    LFM_CONT_DONE(BuddyCoalesce);
    if (Claimed) {
      const std::size_t Released = decommitRange(S, Off, Len);
      downMark(S, Level, Idx, /*Account=*/false);
      return Released;
    }
  }
  if (Level + 1 >= NumOrders)
    return 0;
  std::size_t Released = trimNode(S, Level + 1, 2 * Idx, KeepBytes);
  if (freeCommittedBytes() > KeepBytes)
    Released += trimNode(S, Level + 1, 2 * Idx + 1, KeepBytes);
  return Released;
}

std::size_t BuddyBackend::trim(std::size_t KeepBytes) {
  std::size_t Released = 0;
  for (std::atomic<Span *> &SlotRef : Spans) {
    if (freeCommittedBytes() <= KeepBytes)
      break;
    Span *S = SlotRef.load(std::memory_order_acquire);
    if (S == nullptr)
      break;
    for (std::uint32_t Root = 0; Root < S->TopCount; ++Root) {
      if (freeCommittedBytes() <= KeepBytes)
        break;
      Released += trimNode(*S, 0, Root, KeepBytes);
    }
  }
  return Released;
}

void BuddyBackend::walkFree(const Span &S, unsigned Level, std::uint32_t Idx,
                            LargeBackendSnapshot &Out) const {
  const std::uint32_t V = node(S, Level, Idx).load(std::memory_order_relaxed);
  if ((V & BusyBit) != 0)
    return;
  if ((V & CountMask) == 0) {
    Out.FreeBytesByOrder[(NumOrders - 1) - Level] += blockBytes(Level);
    return;
  }
  if (Level + 1 < NumOrders) {
    walkFree(S, Level + 1, 2 * Idx, Out);
    walkFree(S, Level + 1, 2 * Idx + 1, Out);
  }
}

void BuddyBackend::snapshot(LargeBackendSnapshot &Out) const {
  Out = LargeBackendSnapshot{};
  Out.Buddy = true;
  Out.NumOrders = NumOrders;
  Out.MinOrderBytes = MinOrderBytes;
  Out.MaxOrderBytes = MaxOrderBytes;
  Out.SpanBytes = SpanBytes;
  Out.BytesCommitted = TotalCommitted.load(std::memory_order_relaxed);
  Out.BytesAllocated = TotalAllocated.load(std::memory_order_relaxed);
  Out.FreeCommittedBytes = freeCommittedBytes();
  Out.Allocs = StAllocs.load(std::memory_order_relaxed);
  Out.Frees = StFrees.load(std::memory_order_relaxed);
  Out.Splits = StSplits.load(std::memory_order_relaxed);
  Out.Coalesces = StCoalesces.load(std::memory_order_relaxed);
  Out.OsFallbacks = StOsFallbacks.load(std::memory_order_relaxed);
  Out.Rollbacks = StRollbacks.load(std::memory_order_relaxed);
  Out.Decommits = StDecommits.load(std::memory_order_relaxed);
  Out.SpanReserves = StSpanReserves.load(std::memory_order_relaxed);
  for (const std::atomic<Span *> &SlotRef : Spans) {
    const Span *S = SlotRef.load(std::memory_order_acquire);
    if (S == nullptr)
      continue;
    ++Out.SpansReserved;
    Out.BytesReserved += S->Bytes;
    for (std::uint32_t Root = 0; Root < S->TopCount; ++Root)
      walkFree(*S, 0, Root, Out);
  }
}

bool BuddyBackend::debugValidate(const char **What) const {
  std::uint64_t Allocated = 0;
  std::uint64_t Committed = 0;
  for (const std::atomic<Span *> &SlotRef : Spans) {
    const Span *S = SlotRef.load(std::memory_order_acquire);
    if (S == nullptr)
      continue;
    std::uint64_t SpanBusyBytes = 0;
    for (unsigned Level = 0; Level < NumOrders; ++Level) {
      const std::uint32_t N = S->TopCount << Level;
      for (std::uint32_t I = 0; I < N; ++I) {
        const std::uint32_t V =
            node(*S, Level, I).load(std::memory_order_relaxed);
        const std::uint32_t Self = (V & BusyBit) != 0 ? 1u : 0u;
        if ((V & BusyBit) != 0 && (V & CountMask) != 1) {
          *What = "busy node whose subtree count is not exactly itself";
          return false;
        }
        if (Level + 1 < NumOrders) {
          const std::uint32_t L =
              node(*S, Level + 1, 2 * I).load(std::memory_order_relaxed) &
              CountMask;
          const std::uint32_t R =
              node(*S, Level + 1, 2 * I + 1).load(std::memory_order_relaxed) &
              CountMask;
          if ((V & CountMask) != Self + L + R) {
            *What = "node count != own busy bit + children counts";
            return false;
          }
        } else if ((V & CountMask) != Self) {
          *What = "leaf count disagrees with its busy bit";
          return false;
        }
        if (Self != 0)
          SpanBusyBytes += blockBytes(Level);
      }
    }
    if (SpanBusyBytes != S->Allocated.load(std::memory_order_relaxed)) {
      *What = "span allocated meter disagrees with busy blocks";
      return false;
    }
    Allocated += SpanBusyBytes;
    std::uint64_t SpanResident = 0;
    const std::size_t Words = ((S->Bytes >> MinOrderShift) + 63) / 64;
    for (std::size_t W = 0; W < Words; ++W)
      SpanResident += static_cast<std::uint64_t>(__builtin_popcountll(
          S->Resident[W].load(std::memory_order_relaxed)));
    SpanResident <<= MinOrderShift;
    if (SpanResident != S->Committed.load(std::memory_order_relaxed)) {
      *What = "span committed meter disagrees with residency bitmap";
      return false;
    }
    Committed += SpanResident;
  }
  if (Allocated != TotalAllocated.load(std::memory_order_relaxed)) {
    *What = "backend allocated meter disagrees with spans";
    return false;
  }
  if (Committed != TotalCommitted.load(std::memory_order_relaxed)) {
    *What = "backend committed meter disagrees with spans";
    return false;
  }
  *What = nullptr;
  return true;
}
