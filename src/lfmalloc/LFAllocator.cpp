//===- lfmalloc/LFAllocator.cpp - The lock-free allocator -----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
// Implements the paper's Figs. 4 (malloc) and 6 (free) line by line; the
// comments cite "Fig. N line M" throughout so the code can be audited
// against the published pseudocode.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LFAllocator.h"

#include "profiling/FdWriter.h"
#include "profiling/HeapProfiler.h"
#include "profiling/HeapTopology.h"
#include "schedtest/SchedPoint.h"
#include "support/CycleClock.h"
#include "support/ThreadRegistry.h"
#include "support/Usdt.h"
#include "telemetry/ContentionHook.h"
#include "telemetry/PromWriter.h"
#include "telemetry/ShmStats.h"
#include "telemetry/Telemetry.h"
#include "trace/AllocTrace.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <unistd.h>
#include <vector>

using namespace lfm;

namespace {

/// Hazard slot used to pin a descriptor across free()'s EMPTY transition
/// (shared with the descriptor-freelist pop slot; the two uses never nest).
constexpr unsigned HpSlotDesc = 3;

/// Atomic load/store of a block's first word. While a block is free this
/// word is the free-list link (next block index, Fig. 5); while allocated
/// it is the prefix (descriptor pointer, or size|1 for large blocks).
/// Relaxed is sufficient: every value read here is validated by a tagged
/// anchor CAS before being trusted.
std::uint64_t loadBlockWord(const void *Addr) {
  return __atomic_load_n(static_cast<const std::uint64_t *>(Addr),
                         __ATOMIC_RELAXED);
}

void storeBlockWord(void *Addr, std::uint64_t Value) {
  __atomic_store_n(static_cast<std::uint64_t *>(Addr), Value,
                   __ATOMIC_RELAXED);
}

constexpr std::uint64_t LargePrefixBit = 1;

/// Prefix tag of an aligned-allocation offset marker: low two bits 11.
/// Distinguishable from both descriptor pointers (64-byte aligned, low
/// bits 00) and large-block prefixes (page-multiple | 1, bit 1 == 0).
constexpr std::uint64_t AlignedMarkerBits = 3;

} // namespace

#if !LFM_TELEMETRY
/// Relaxed counters living in the control region; opStats() snapshots them.
/// Only the non-telemetry configuration uses this single shared block — the
/// telemetry build replaces it with the sharded CounterSet.
struct LFAllocator::AtomicOpStats {
  std::atomic<std::uint64_t> Mallocs{0};
  std::atomic<std::uint64_t> Frees{0};
  std::atomic<std::uint64_t> FromActive{0};
  std::atomic<std::uint64_t> FromPartial{0};
  std::atomic<std::uint64_t> FromNewSb{0};
  std::atomic<std::uint64_t> LargeMallocs{0};
  std::atomic<std::uint64_t> LargeFrees{0};
  std::atomic<std::uint64_t> SbFreed{0};
};
#endif // !LFM_TELEMETRY

namespace {

using ChaosSite = AllocatorOptions::ChaosSite;

#if !LFM_TELEMETRY
void bump(std::atomic<std::uint64_t> *Counter) {
  if (Counter)
    Counter->fetch_add(1, std::memory_order_relaxed);
}
#endif

#if LFM_TELEMETRY
/// Counts CAS attempts around a retry loop so telemetry can attribute
/// contention (retries == attempts - 1 on the success path). Compiles to
/// nothing in non-telemetry builds.
struct RetryCounter {
  std::uint64_t Attempts = 0;
  void attempt() { ++Attempts; }
  std::uint64_t attempts() const { return Attempts; }
  std::uint64_t retries() const { return Attempts > 0 ? Attempts - 1 : 0; }
};
#else
struct RetryCounter {
  void attempt() {}
};
#endif

} // namespace

// Call-site shorthand expanding against the `Tel`/`Stats` member in scope.
// CTR covers the legacy OpStats counters (exist in both configurations);
// XCTR/CTR_N/EVT are telemetry-only and vanish under LFM_TELEMETRY=0
// (arguments unevaluated, so the RetryCounter plumbing folds away too).
#if LFM_TELEMETRY
#define CTR(Name) LFM_TEL_CTR(Tel, Name)
#define XCTR(Name) LFM_TEL_CTR(Tel, Name)
#define CTR_N(Name, N) LFM_TEL_CTR_N(Tel, Name, N)
#define EVT(Type, A0, A1) LFM_TEL_EVT(Tel, Type, A0, A1)
#else
#define CTR(Name)                                                            \
  do {                                                                       \
    if (Stats)                                                               \
      bump(&Stats->Name);                                                    \
  } while (0)
#define XCTR(Name)                                                           \
  do {                                                                       \
  } while (0)
#define CTR_N(Name, N)                                                       \
  do {                                                                       \
  } while (0)
#define EVT(Type, A0, A1)                                                    \
  do {                                                                       \
  } while (0)
#endif

// Heap-profiler hooks. One predicted-untaken null test per operation when a
// telemetry build runs unprofiled; nothing at all — arguments unevaluated —
// under LFM_TELEMETRY=0, preserving that configuration's exact-zero-overhead
// guarantee. PROF_ASSERT_NO_REENTRY backs the profiler's "never allocates
// from the allocator it instruments" contract in debug builds.
#if LFM_TELEMETRY
#define PROF_ALLOC(Ptr, Bytes)                                               \
  do {                                                                       \
    if (LFM_UNLIKELY(Prof != nullptr) && (Ptr) != nullptr)                   \
      Prof->onAlloc((Ptr), (Bytes));                                         \
  } while (0)
#define PROF_FREE(Ptr)                                                       \
  do {                                                                       \
    if (LFM_UNLIKELY(Prof != nullptr))                                       \
      Prof->onFree(Ptr);                                                     \
  } while (0)
#define PROF_ASSERT_NO_REENTRY()                                             \
  assert(!profiling::inProfilerPath() &&                                     \
         "allocator re-entered from a profiler path")
#else
#define PROF_ALLOC(Ptr, Bytes)                                               \
  do {                                                                       \
  } while (0)
#define PROF_FREE(Ptr)                                                       \
  do {                                                                       \
  } while (0)
#define PROF_ASSERT_NO_REENTRY()                                             \
  do {                                                                       \
  } while (0)
#endif

// Latency-sampling hooks. LAT_BEGIN at the top of an operation returns a
// start tick when this operation is sampled (0 otherwise — roughly
// (period-1)/period of the time the whole feature is one predicted branch
// plus a countdown store). LAT_END files the elapsed time at the outcome
// point that actually served the operation; its Path/Class arguments are
// evaluated only for sampled operations, so attribution lookups stay off
// the common path. LAT_RARE_* time every occurrence of rare maintenance
// paths (trim, OOM rescue). All four vanish — arguments unevaluated —
// under LFM_TELEMETRY=0.
#if LFM_TELEMETRY
#define LAT_BEGIN()                                                          \
  (LFM_UNLIKELY(Tel != nullptr) ? Tel->latencyBegin() : std::uint64_t{0})
#define LAT_END(Start, Path, Class)                                          \
  do {                                                                       \
    if (LFM_UNLIKELY((Start) != 0))                                          \
      Tel->latencyEnd((Start), ::lfm::telemetry::LatencyPath::Path,          \
                      (Class));                                              \
  } while (0)
#define LAT_RARE_BEGIN()                                                     \
  (LFM_UNLIKELY(Tel != nullptr) ? Tel->latency().rareBegin()                 \
                                : std::uint64_t{0})
#define LAT_RARE_END(Start, Path)                                            \
  do {                                                                       \
    if (LFM_UNLIKELY((Start) != 0))                                          \
      Tel->latency().rareEnd((Start),                                        \
                             ::lfm::telemetry::LatencyPath::Path);           \
  } while (0)
#else
#define LAT_BEGIN() (std::uint64_t{0})
#define LAT_END(Start, Path, Class)                                          \
  do {                                                                       \
    (void)(Start);                                                           \
  } while (0)
#define LAT_RARE_BEGIN() (std::uint64_t{0})
#define LAT_RARE_END(Start, Path)                                            \
  do {                                                                       \
    (void)(Start);                                                           \
  } while (0)
#endif

namespace {

/// Validates a caller's options up front so every member (notably the
/// SuperblockCache, whose constructor asserts on its sizes) sees only
/// in-range values. Clamps are reported, not fatal: a misconfigured
/// embedder degrades to the nearest valid configuration.
AllocatorOptions validatedOptions(const AllocatorOptions &O) {
  AllocatorOptions V = O;
  AllocatorOptions::Diagnostic Diag;
  if (!V.validate(&Diag))
    std::fprintf(stderr, "lfmalloc: invalid AllocatorOptions (clamped): %s\n",
                 Diag.Text);
  return V;
}

} // namespace

LFAllocator::LFAllocator(const AllocatorOptions &O)
    : Opts(validatedOptions(O)),
      Domain(O.Domain ? *O.Domain : HazardDomain::global()),
      Descs(Domain, Pages),
      SbCache(Pages, Opts.SuperblockSize, Opts.HyperblockSize),
      OsLarge(Pages), BuddyLarge(Pages) {
  assert(isPowerOf2(Opts.SuperblockSize) &&
         Opts.SuperblockSize >= OsPageSize &&
         Opts.SuperblockSize / 16 <= MaxBlocksPerSuperblock &&
         "superblock size must be a power of two in [4 KB, 32 KB]");

  SbCache.setRetainMaxBytes(Opts.RetainMaxBytes);
  SbCache.setRetainDecayMs(Opts.RetainDecayMs);
  // The buddy tier shares the retention watermark with the superblock
  // cache; both are configured even though only the selected one serves
  // (the other reserves nothing until its first allocation, i.e. never).
  BuddyLarge.configure(Opts.BuddySpanBytes, Opts.RetainMaxBytes);
  LargeB = Opts.LargeBackend == LargeBackendKind::Buddy
               ? static_cast<LargeBackend *>(&BuddyLarge)
               : static_cast<LargeBackend *>(&OsLarge);
  PartialSlots = Opts.PartialSlotsPerHeap;

  HeapCount = Opts.NumHeaps;
  if (HeapCount == 0) {
    // §4.2.4: "the allocator can determine the number of processors in the
    // system at initialization time by querying the system environment."
    const long N = ::sysconf(_SC_NPROCESSORS_ONLN);
    HeapCount = N > 0 ? static_cast<unsigned>(N) : 1;
  }
  // Round up to a power of two so heap selection is a mask, not a divide
  // (the paper only requires heaps "proportional to the number of
  // processors").
  while (!isPowerOf2(HeapCount))
    ++HeapCount;
  Opts.NumHeaps = HeapCount;
  Opts.Domain = &Domain;

  // Classes whose superblocks hold at least two blocks; bigger payloads
  // take the large-block OS path.
  ClassCount = NumSizeClasses;
  while (ClassCount > 0 &&
         classBlockSize(ClassCount - 1) > Opts.SuperblockSize / 2)
    --ClassCount;
  assert(ClassCount > 0 && "superblock too small for any size class");

  // One mapping backs the heap array, the size-class array, and the
  // optional stats block (paper §3.1: "the static structures for the size
  // classes and processor heaps ... are allocated and initialized in a
  // lock-free manner" — here, before the instance is shared).
  const std::size_t HeapsBytes =
      sizeof(ProcHeap) * ClassCount * HeapCount;
  const std::size_t ClassesOffset =
      alignUp(HeapsBytes, alignof(SizeClassRuntime));
  const std::size_t StatsOffset = alignUp(
      ClassesOffset + sizeof(SizeClassRuntime) * ClassCount, CacheLineSize);
#if LFM_TELEMETRY
  const std::size_t ProfOffset = alignUp(
      StatsOffset + sizeof(telemetry::Telemetry), CacheLineSize);
  ControlBytes = ProfOffset + sizeof(profiling::HeapProfiler);
#else
  ControlBytes = StatsOffset + sizeof(AtomicOpStats);
#endif
  ControlRegion = Pages.map(ControlBytes, OsPageSize);
  if (!ControlRegion) {
    std::fprintf(stderr, "lfmalloc: cannot map allocator control region\n");
    std::abort();
  }

  char *Base = static_cast<char *>(ControlRegion);
  Heaps = reinterpret_cast<ProcHeap *>(Base);
  Classes = reinterpret_cast<SizeClassRuntime *>(Base + ClassesOffset);
  for (unsigned C = 0; C < ClassCount; ++C) {
    new (&Classes[C]) SizeClassRuntime(
        classBlockSize(C), static_cast<std::uint32_t>(Opts.SuperblockSize),
        Opts.PartialPolicy, Domain, Pages);
    for (unsigned H = 0; H < HeapCount; ++H) {
      ProcHeap *Heap = new (&Heaps[C * HeapCount + H]) ProcHeap();
      Heap->Sc = &Classes[C];
    }
  }
#if LFM_TELEMETRY
  if (Opts.EnableStats || Opts.EnableTrace) {
    telemetry::Telemetry::Options TelOpts;
    TelOpts.Trace = Opts.EnableTrace;
    TelOpts.TraceEventsPerThread = Opts.TraceEventsPerThread;
    // Latency sampling rides on EnableStats (its histograms are part of
    // the stats surface). Calibrate the cycle clock before any sample can
    // need it — construction is the designated cold path.
    TelOpts.LatencySamplePeriod =
        Opts.EnableStats ? Opts.LatencySamplePeriod : 0;
    TelOpts.LatencySeed = Opts.LatencySampleSeed;
    // Contention sampling rides on EnableStats the same way. The watchdog
    // follows: progress slots are part of the contention surface.
    TelOpts.ContentionSamplePeriod =
        Opts.EnableStats ? Opts.ContentionSamplePeriod : 0;
    TelOpts.ContentionSeed = Opts.ContentionSampleSeed;
    TelOpts.ContentionHeatCapacity = Opts.ContentionHeatCapacity;
    TelOpts.ContentionWatchdog = Opts.EnableStats && Opts.ContentionWatchdog;
    TelOpts.ContentionStallMs = Opts.ContentionStallMs;
    TelOpts.ContentionStormRetries = Opts.ContentionStormRetries;
    if (TelOpts.LatencySamplePeriod != 0)
      cycleclock::calibrate();
    Tel = new (Base + StatsOffset) telemetry::Telemetry(TelOpts);
    Descs.setTelemetry(Tel);
    SbCache.setTelemetry(Tel);
  }
  if (Opts.EnableProfiler) {
    profiling::ProfilerOptions ProfOpts;
    ProfOpts.RateBytes =
        Opts.ProfileRateBytes != 0 ? Opts.ProfileRateBytes : 1;
    if (Opts.ProfileSeed != 0)
      ProfOpts.Seed = Opts.ProfileSeed;
    ProfOpts.SiteCapacity = Opts.ProfileSiteCapacity;
    ProfOpts.LiveCapacity = Opts.ProfileLiveCapacity;
    ProfOpts.ClassCount = ClassCount;
    Prof = new (Base + ProfOffset) profiling::HeapProfiler(ProfOpts);
    if (!Prof->valid()) {
      // Could not map the site/live tables; run unprofiled rather than
      // aborting — profiling is observability, not correctness.
      Prof->~HeapProfiler();
      Prof = nullptr;
    }
  }
#else
  if (Opts.EnableStats)
    Stats = new (Base + StatsOffset) AtomicOpStats();
#endif

  if (Opts.EnableThreadCache) {
    // Per-class magazine capacities: the configured slot cap, further
    // bounded so one magazine retains at most ~16 KB of any class (coarse
    // classes get fewer slots; every class keeps at least 2 so flush-half
    // still makes room).
    for (unsigned C = 0; C < ClassCount; ++C) {
      std::uint32_t Cap = static_cast<std::uint32_t>(
          (std::size_t{16} * 1024) / classBlockSize(C));
      if (Cap < 2)
        Cap = 2;
      if (Cap > Opts.ThreadCacheMagSize)
        Cap = Opts.ThreadCacheMagSize;
      TcCaps[C] = Cap;
    }
    TcEpoch = tcache::registerInstance(this);
    if (TcEpoch == 0)
      Opts.EnableThreadCache = false; // Live table full; run uncached.
  }
}

LFAllocator::~LFAllocator() {
  if (TcEpoch != 0) {
    // Unregister first: a thread exiting concurrently with destruction is
    // already outside the contract, but the live-table miss makes its exit
    // drain a no-op instead of a use-after-unmap. Then drain the depot and
    // every minted cache back through the anchors so the superblock sweep
    // below sees the true occupancy, and return the cache slabs.
    tcache::unregisterInstance(TcEpoch);
    tcacheDrainDepot();
    tcache::ThreadCache *TC = TcAll.load(std::memory_order_acquire);
    while (TC != nullptr) {
      tcache::ThreadCache *Next = TC->AllNext;
      tcacheFlushCache(TC);
      Pages.unmap(TC, TC->SlabBytes);
      TC = Next;
    }
  }
  // Sweep superblocks still referenced by heap structures so direct mode
  // returns them to the OS (EMPTY descriptors already released theirs in
  // free(), Fig. 6 line 20 — do not release twice).
  auto releaseIfLive = [&](Descriptor *Desc) {
    if (Desc && Desc->AnchorWord.load().State != SbState::Empty)
      SbCache.release(Desc->Sb);
  };
  for (unsigned I = 0; I < ClassCount * HeapCount; ++I) {
    releaseIfLive(Heaps[I].Active.load().Desc);
    for (unsigned S = 0; S < PartialSlots; ++S)
      releaseIfLive(Heaps[I].Partial[S].load(std::memory_order_relaxed));
  }
  for (unsigned C = 0; C < ClassCount; ++C)
    while (Descriptor *Desc = Classes[C].Partial.get())
      releaseIfLive(Desc);

  // Destroy the partial lists (their queue destructors drain the hazard
  // domain and release node chunks), flush any still-retired descriptors
  // into the freelist, then tear down storage.
  for (unsigned C = 0; C < ClassCount; ++C)
    Classes[C].~SizeClassRuntime();
  Domain.drainAll();
#if LFM_TELEMETRY
  if (Prof)
    Prof->~HeapProfiler(); // Unmaps the site/live tables (own page source).
  if (Tel)
    Tel->~Telemetry(); // Unmaps the trace rings (its own page source).
#endif
  Pages.unmap(ControlRegion, ControlBytes);
  // Members ~SuperblockCache and ~DescriptorAllocator unmap the rest.
}

ProcHeap *LFAllocator::findHeap(unsigned Class) {
  // §3.1: "Malloc starts by identifying the appropriate processor heap,
  // based on the requested block size and the identity of the calling
  // thread." With one heap (§4.2.4 uniprocessor mode) the thread id lookup
  // is skipped entirely.
  const unsigned H =
      HeapCount == 1 ? 0 : threadIndex() & (HeapCount - 1);
  return &Heaps[Class * HeapCount + H];
}

void *LFAllocator::allocate(std::size_t Bytes) {
  PROF_ASSERT_NO_REENTRY();
  // Magazine fast path. Deliberately ahead of CTR(Mallocs): the hit path
  // must execute zero lock-prefixed RMWs, so it tallies into the cache's
  // plain HitMallocs cell instead and snapshots fold the two together.
  if (TcEpoch != 0) {
    const unsigned Class = sizeToClass(Bytes);
    if (LFM_LIKELY(Class < ClassCount))
      if (void *Addr = tcacheAllocate(Class, Bytes))
        return Addr;
  }
  CTR(Mallocs);
  const std::uint64_t LatStart = LAT_BEGIN();
  const unsigned Class = sizeToClass(Bytes);
  if (Class >= ClassCount) { // Fig. 4 malloc lines 2-3: large block.
    // largeMalloc owns the LAT_END: only it knows whether the backend
    // served from a buddy span (MallocLargeBuddy) or the OS (MallocLarge).
    void *Addr = largeMalloc(Bytes, LatStart);
    PROF_ALLOC(Addr, Bytes);
    return Addr;
  }

  ProcHeap *Heap = findHeap(Class);
  // Fig. 4 malloc lines 4-9: try active, then partial, then a new
  // superblock; MallocFromNewSB fails only transiently (another thread
  // installed an active superblock first — then that one serves us).
  for (;;) {
    if (void *Addr = mallocFromActive(Heap)) {
      CTR(FromActive);
      PROF_ALLOC(Addr, Bytes);
      LAT_END(LatStart, MallocActive, Class);
      return Addr;
    }
    if (void *Addr = mallocFromPartial(Heap)) {
      CTR(FromPartial);
      PROF_ALLOC(Addr, Bytes);
      LAT_END(LatStart, MallocPartial, Class);
      return Addr;
    }
    bool OutOfMemory = false;
    if (void *Addr = mallocFromNewSb(Heap, OutOfMemory)) {
      CTR(FromNewSb);
      PROF_ALLOC(Addr, Bytes);
      LAT_END(LatStart, MallocNewSb, Class);
      return Addr;
    }
    if (OutOfMemory) {
      // Clean malloc() contract on exhaustion: null with errno set, every
      // internal invariant intact (debugValidate() stays green). The
      // failure is filed under MallocNewSb — exhaustion is that path's
      // tail, and an ENOMEM spike in its p99.9 is exactly the signal the
      // latency histograms exist to expose.
      errno = ENOMEM;
      LAT_END(LatStart, MallocNewSb, Class);
      return nullptr;
    }
  }
}

void *LFAllocator::mallocFromActive(ProcHeap *Heap) {
  // Fig. 4 MallocFromActive lines 1-6 — first step: reserve a block by
  // atomically decrementing the credits in the Active word.
  ActiveRef OldActive = Heap->Active.load();
  ActiveRef NewActive;
  RetryCounter Reserve;
  LFM_CONT_LOOP(ActiveReserve);
  do {
    LFM_CONT_ATTEMPT(ActiveReserve);
    LFM_SCHED_POINT(ActiveReserve);
    if (!OldActive.Desc) { // Line 2: no active superblock.
      XCTR(ActiveNullMisses);
      CTR_N(ActiveReserveRetries, Reserve.attempts());
      return nullptr; // Scope dtor closes out the contention sample.
    }
    if (OldActive.Credits == 0)
      NewActive = ActiveRef{}; // Line 4: taking the last credit.
    else
      NewActive = ActiveRef{OldActive.Desc, OldActive.Credits - 1}; // L5
    Reserve.attempt();
  } while (LFM_SCHED_CAS_FAIL(ActiveReserve) ||
           !Heap->Active.compareExchange(OldActive, NewActive));
  CTR_N(ActiveReserveRetries, Reserve.retries());
  LFM_CONT_DONE_ATTR(ActiveReserve,
                     static_cast<unsigned>(Heap->Sc - Classes),
                     OldActive.Desc->Sb);

  // After the CAS succeeds we own one reservation in this specific
  // superblock: it cannot go EMPTY under us, so its descriptor fields and
  // memory are stable (see the paper's discussion after Fig. 5).
  if (LFM_UNLIKELY(Opts.ChaosHook != nullptr))
    Opts.ChaosHook(ChaosSite::AfterCreditReserve, Opts.ChaosCtx);
  Descriptor *Desc = OldActive.Desc; // Line 7: mask_credits(oldactive).

  // Lines 8-18 — second step: lock-free pop from the superblock's list.
  Anchor OldAnchor = Desc->AnchorWord.load();
  Anchor NewAnchor;
  void *Addr;
  std::uint32_t MoreCredits = 0;
  RetryCounter Pop;
  LFM_CONT_LOOP(ActivePop);
  do {
    LFM_CONT_ATTEMPT(ActivePop);
    LFM_SCHED_POINT(ActivePop);
    if (LFM_UNLIKELY(Opts.ChaosHook != nullptr))
      Opts.ChaosHook(ChaosSite::BeforePopCas, Opts.ChaosCtx);
    // State may be ACTIVE, PARTIAL or FULL here — but never EMPTY.
    assert(OldAnchor.State != SbState::Empty &&
           "reserved superblock cannot be EMPTY");
    NewAnchor = OldAnchor;
    Addr = static_cast<char *>(Desc->Sb) +
           static_cast<std::size_t>(OldAnchor.Avail) * Desc->BlockSize;
    // Line 10: read the next-block link out of the block itself. The value
    // may be stale garbage if we lost a race; the tag CAS below rejects it
    // (the ABA discussion of §3.2.3), so only mask it into range.
    const std::uint64_t Next = loadBlockWord(Addr);
    NewAnchor.Avail =
        static_cast<std::uint32_t>(Next) & ((1u << AnchorAvailBits) - 1);
    NewAnchor.Tag = OldAnchor.Tag + 1; // Line 12: defeat ABA.
    if (OldActive.Credits == 0) {
      // Lines 13-17: we took the last credit; state must be ACTIVE.
      if (OldAnchor.Count == 0) {
        NewAnchor.State = SbState::Full; // Line 15.
      } else {
        MoreCredits = std::min(OldAnchor.Count, Opts.CreditsLimit); // L16
        NewAnchor.Count -= MoreCredits;                      // Line 17.
      }
    }
    // The window between reading Next above and the CAS below is where a
    // stale link gets installed if the tag ever stops protecting it — the
    // schedule tests preempt HERE, not just at the loop top.
    LFM_SCHED_POINT(ActivePop);
    Pop.attempt();
  } while (LFM_SCHED_CAS_FAIL(ActivePop) ||
           !Desc->AnchorWord.compareExchange(OldAnchor, NewAnchor));
  CTR_N(ActivePopRetries, Pop.retries());
  LFM_CONT_DONE_ATTR(ActivePop, static_cast<unsigned>(Heap->Sc - Classes),
                     Desc->Sb);
  if (OldActive.Credits == 0 && OldAnchor.Count == 0)
    EVT(SbFull, reinterpret_cast<std::uintptr_t>(Desc->Sb), Desc->BlockSize);

  if (OldActive.Credits == 0 && OldAnchor.Count > 0)
    updateActive(Heap, Desc, MoreCredits); // Lines 19-20.

  // Line 21: plant the prefix so free() can find the descriptor.
  storeBlockWord(Addr, reinterpret_cast<std::uint64_t>(Desc));
  return static_cast<char *>(Addr) + BlockPrefixSize;
}

void LFAllocator::updateActive(ProcHeap *Heap, Descriptor *Desc,
                               std::uint32_t MoreCredits) {
  assert(MoreCredits >= 1 && MoreCredits <= MaxCredits &&
         "credits out of range");
  // Fig. 4 UpdateActive lines 1-3: typically Active is still NULL (only
  // the thread that took the last credit may refill it) and this installs
  // the superblock back with fresh credits.
  ActiveRef Expected{};
  LFM_SCHED_POINT(UpdateActive);
  if (!LFM_SCHED_CAS_FAIL(UpdateActive) &&
      Heap->Active.compareExchange(Expected,
                                   ActiveRef{Desc, MoreCredits - 1}))
    return;

  // Lines 4-8: someone installed another superblock; return the reserved
  // credits to the anchor and surface the superblock as PARTIAL.
  XCTR(UpdateActiveReturns);
  Anchor OldAnchor = Desc->AnchorWord.load();
  Anchor NewAnchor;
  RetryCounter Ret;
  LFM_CONT_LOOP(UpdateActive);
  do {
    LFM_CONT_ATTEMPT(UpdateActive);
    LFM_SCHED_POINT(UpdateActive);
    NewAnchor = OldAnchor;
    NewAnchor.Count += MoreCredits;
    NewAnchor.State = SbState::Partial;
    Ret.attempt();
  } while (LFM_SCHED_CAS_FAIL(UpdateActive) ||
           !Desc->AnchorWord.compareExchange(OldAnchor, NewAnchor));
  CTR_N(UpdateActiveRetries, Ret.retries());
  LFM_CONT_DONE_ATTR(UpdateActive, static_cast<unsigned>(Heap->Sc - Classes),
                     Desc->Sb);
  EVT(SbPartial, reinterpret_cast<std::uintptr_t>(Desc->Sb),
      Desc->BlockSize);
  heapPutPartial(Desc);
}

void *LFAllocator::mallocFromPartial(ProcHeap *Heap) {
  for (;;) {
    // Fig. 4 MallocFromPartial lines 1-3.
    Descriptor *Desc = heapGetPartial(Heap);
    if (!Desc)
      return nullptr;
    Desc->Heap.store(Heap, std::memory_order_relaxed);

    // Lines 4-10: reserve one block for ourselves plus up to MAXCREDITS
    // extra, in a single anchor CAS.
    Anchor OldAnchor = Desc->AnchorWord.load();
    Anchor NewAnchor;
    std::uint32_t MoreCredits = 0;
    bool Retired = false;
    RetryCounter Reserve;
    LFM_CONT_LOOP(PartialReserve);
    do {
      LFM_CONT_ATTEMPT(PartialReserve);
      LFM_SCHED_POINT(PartialReserve);
      if (OldAnchor.State == SbState::Empty) {
        // Line 6: raced with the last free; recycle the descriptor (its
        // superblock is already gone) and try another.
        Descs.retire(Desc);
        Retired = true;
        break;
      }
      // "oldanchor state must be PARTIAL, oldanchor count must be > 0".
      assert(OldAnchor.State == SbState::Partial && OldAnchor.Count > 0 &&
             "partial-list descriptor in impossible state");
      NewAnchor = OldAnchor;
      MoreCredits =
          std::min(OldAnchor.Count - 1, Opts.CreditsLimit); // Line 7.
      NewAnchor.Count -= MoreCredits + 1;            // Line 8.
      NewAnchor.State =
          MoreCredits > 0 ? SbState::Active : SbState::Full; // Line 9.
      Reserve.attempt();
    } while (LFM_SCHED_CAS_FAIL(PartialReserve) ||
             !Desc->AnchorWord.compareExchange(OldAnchor, NewAnchor));
    if (Retired) {
      CTR_N(PartialReserveRetries, Reserve.attempts());
      continue; // Scope dtor closes out the contention sample.
    }
    CTR_N(PartialReserveRetries, Reserve.retries());
    LFM_CONT_DONE_ATTR(PartialReserve,
                       static_cast<unsigned>(Heap->Sc - Classes), Desc->Sb);
    if (NewAnchor.State == SbState::Full)
      EVT(SbFull, reinterpret_cast<std::uintptr_t>(Desc->Sb),
          Desc->BlockSize);
    else
      EVT(SbActive, reinterpret_cast<std::uintptr_t>(Desc->Sb),
          Desc->BlockSize);

    // Lines 11-15: pop our reserved block.
    OldAnchor = Desc->AnchorWord.load();
    void *Addr;
    RetryCounter Pop;
    LFM_CONT_LOOP(PartialPop);
    do {
      LFM_CONT_ATTEMPT(PartialPop);
      LFM_SCHED_POINT(PartialPop);
      NewAnchor = OldAnchor;
      Addr = static_cast<char *>(Desc->Sb) +
             static_cast<std::size_t>(OldAnchor.Avail) * Desc->BlockSize;
      const std::uint64_t Next = loadBlockWord(Addr);
      NewAnchor.Avail =
          static_cast<std::uint32_t>(Next) & ((1u << AnchorAvailBits) - 1);
      NewAnchor.Tag = OldAnchor.Tag + 1;
      LFM_SCHED_POINT(PartialPop); // Stale-Next window; see mallocFromActive.
      Pop.attempt();
    } while (LFM_SCHED_CAS_FAIL(PartialPop) ||
             !Desc->AnchorWord.compareExchange(OldAnchor, NewAnchor));
    CTR_N(PartialPopRetries, Pop.retries());
    LFM_CONT_DONE_ATTR(PartialPop, static_cast<unsigned>(Heap->Sc - Classes),
                       Desc->Sb);

    if (MoreCredits > 0)
      updateActive(Heap, Desc, MoreCredits); // Lines 16-17.

    storeBlockWord(Addr, reinterpret_cast<std::uint64_t>(Desc)); // Line 18.
    return static_cast<char *>(Addr) + BlockPrefixSize;
  }
}

Descriptor *LFAllocator::heapGetPartial(ProcHeap *Heap) {
  // Fig. 4 HeapGetPartial: empty the heap's slot cache, falling back to
  // the size class's shared list. exchange() is the loop-free form of the
  // paper's CAS loop (it tolerates a slot already being null).
  for (unsigned S = 0; S < PartialSlots; ++S) {
    LFM_SCHED_POINT(HeapPartialSlot);
    if (Descriptor *Desc =
            Heap->Partial[S].exchange(nullptr, std::memory_order_acq_rel))
      return Desc;
  }
  Descriptor *Desc = Heap->Sc->Partial.get(); // ListGetPartial.
  if (Desc)
    XCTR(PartialListGets);
  return Desc;
}

void LFAllocator::heapPutPartial(Descriptor *Desc) {
  // Fig. 6 HeapPutPartial: park in an empty most-recently-used slot of
  // the heap that last owned the superblock if one is free; otherwise
  // swap with slot 0 and demote the previous occupant to the class list.
  ProcHeap *Heap = Desc->Heap.load(std::memory_order_relaxed);
  for (unsigned S = 1; S < PartialSlots; ++S) {
    Descriptor *Expected = nullptr;
    LFM_SCHED_POINT(HeapPartialSlot);
    if (Heap->Partial[S].compare_exchange_strong(
            Expected, Desc, std::memory_order_acq_rel,
            std::memory_order_relaxed))
      return;
  }
  LFM_SCHED_POINT(HeapPartialSlot);
  Descriptor *Prev =
      Heap->Partial[0].exchange(Desc, std::memory_order_acq_rel);
  if (Prev) {
    XCTR(PartialListPuts);
    Heap->Sc->Partial.put(Prev); // ListPutPartial.
  }
}

void *LFAllocator::mallocFromNewSb(ProcHeap *Heap, bool &OutOfMemory) {
  SizeClassRuntime *Sc = Heap->Sc;
  // Fig. 4 MallocFromNewSB lines 1-2. On a map failure, trim the retained
  // cache once (returning physical pages the OS can hand back) and retry
  // before declaring exhaustion.
  Descriptor *Desc = Descs.alloc();
  if (LFM_UNLIKELY(!Desc) && oomRescue())
    Desc = Descs.alloc();
  if (!Desc) {
    OutOfMemory = true;
    return nullptr;
  }
  void *Sb = SbCache.acquire();
  if (LFM_UNLIKELY(!Sb) && oomRescue())
    Sb = SbCache.acquire();
  if (!Sb) {
    Descs.retire(Desc);
    OutOfMemory = true;
    return nullptr;
  }

  // Lines 3-11: initialize the descriptor and thread the blocks into a
  // linked list starting at index 0 (which we keep for ourselves, so the
  // list head is 1). The tag continues from the descriptor's previous
  // incarnation so a zombie CAS from before its retirement still misses.
  const std::uint32_t MaxCount = Sc->SbSize / Sc->BlockSize;
  assert(MaxCount >= 2 && MaxCount <= MaxBlocksPerSuperblock &&
         "size-class geometry violated");
  Desc->Sb = Sb;
  Desc->Heap.store(Heap, std::memory_order_relaxed);
  Desc->BlockSize = Sc->BlockSize;
  Desc->MaxCount = MaxCount;
  for (std::uint32_t I = 1; I < MaxCount; ++I)
    storeBlockWord(static_cast<char *>(Sb) +
                       static_cast<std::size_t>(I) * Sc->BlockSize,
                   I + 1);

  ActiveRef NewActive{Desc,
                      std::min(MaxCount - 1, Opts.CreditsLimit) - 1}; // L9
  Anchor A;
  A.Avail = 1;
  A.Count = (MaxCount - 1) - (NewActive.Credits + 1); // Line 10.
  A.State = SbState::Active;                          // Line 11.
  A.Tag = Desc->AnchorWord.load().Tag + 1;
  Desc->AnchorWord.storeRelaxed(A);

  // Line 12-13: the release semantics of the Active CAS publish every
  // initialization write above (the paper's explicit memory fence).
  ActiveRef Expected{};
  LFM_SCHED_POINT(NewSbInstall);
  if (!LFM_SCHED_CAS_FAIL(NewSbInstall) &&
      Heap->Active.compareExchange(Expected, NewActive)) {
    storeBlockWord(Sb, reinterpret_cast<std::uint64_t>(Desc)); // Line 15.
    EVT(SbNew, reinterpret_cast<std::uintptr_t>(Sb), Sc->BlockSize);
    return static_cast<char *>(Sb) + BlockPrefixSize;
  }

  // Lines 16-17: another thread installed an active superblock first.
  // Prefer deallocating ours over keeping it PARTIAL, "to avoid having too
  // many PARTIAL superblocks and hence cause unnecessary external
  // fragmentation".
  XCTR(NewSbInstallRaces);
  SbCache.release(Sb);
  // Restore the "EMPTY iff no superblock owned" invariant the topology walk
  // depends on before the descriptor returns to the freelist. Unpublished
  // here (the install CAS failed), so the relaxed store cannot race; the
  // bumped Tag is kept so pre-retirement zombie CASes still miss.
  A.Avail = 0;
  A.Count = 0;
  A.State = SbState::Empty;
  Desc->AnchorWord.storeRelaxed(A);
  Descs.retire(Desc);
  return nullptr;
}

void LFAllocator::deallocate(void *Ptr) {
  if (!Ptr) // Fig. 6 line 1.
    return;
  PROF_ASSERT_NO_REENTRY();
  // Profiler bookkeeping must precede the anchor push below: the moment the
  // block re-enters a freelist another thread may re-allocate this address,
  // and its PROF_ALLOC must find the live-map slot vacated. (For an
  // aligned-marker redirect this probe misses benignly; the recursive call
  // with the real block start does the accounting.)
  PROF_FREE(Ptr);
  // Magazine fast path: small blocks are absorbed into the calling
  // thread's magazine with plain stores (counted in the cache's HitFrees
  // cell, so CTR(Frees) below stays untouched on this path). Large and
  // aligned-marker prefixes fall through to the dispatch below.
  if (TcEpoch != 0 && tcacheDeallocate(Ptr))
    return;
  const std::uint64_t LatStart = LAT_BEGIN();
  void *Block = static_cast<char *>(Ptr) - BlockPrefixSize; // Line 2.
  const std::uint64_t Prefix = loadBlockWord(Block);        // Line 3.
  if (LFM_UNLIKELY(Prefix & LargePrefixBit)) {
    if ((Prefix & AlignedMarkerBits) == AlignedMarkerBits) {
      // Aligned-allocation marker: redirect to the real block start. Not
      // a free of its own — the redirected call does the counting, so one
      // logical free bumps Frees exactly once. The outer latency sample
      // is dropped for the same reason: the recursive call times the
      // whole real free if its own countdown fires.
      deallocate(static_cast<char *>(Ptr) - (Prefix >> 2));
      return;
    }
    CTR(Frees);
    largeFree(Block, Prefix); // Line 4/5: large block.
    LAT_END(LatStart, FreeLarge, NumSizeClasses);
    return;
  }
  CTR(Frees);

  auto *Desc = reinterpret_cast<Descriptor *>(Prefix);
  assert(Desc && "freeing a block with a corrupt prefix");
  void *Sb = Desc->Sb; // Line 6.

  Anchor OldAnchor = Desc->AnchorWord.load();
  Anchor NewAnchor;
  ProcHeap *Heap = nullptr;
  bool Pinned = false;
  const std::uint32_t BlockIndex = static_cast<std::uint32_t>(
      (static_cast<char *>(Block) - static_cast<char *>(Sb)) /
      Desc->BlockSize);
  assert((static_cast<char *>(Block) - static_cast<char *>(Sb)) %
                 Desc->BlockSize ==
             0 &&
         "pointer does not address a block of its superblock");
  RetryCounter Push;
  LFM_CONT_LOOP(FreePush);
  do {
    LFM_CONT_ATTEMPT(FreePush);
    LFM_SCHED_POINT(FreePush);
    if (LFM_UNLIKELY(Opts.ChaosHook != nullptr))
      Opts.ChaosHook(ChaosSite::BeforeFreeCas, Opts.ChaosCtx);
    NewAnchor = OldAnchor;
    storeBlockWord(Block, OldAnchor.Avail); // Line 8: link ourselves in.
    NewAnchor.Avail = BlockIndex;           // Line 9.
    if (OldAnchor.State == SbState::Full)   // Lines 10-11.
      NewAnchor.State = SbState::Partial;
    if (OldAnchor.Count == Desc->MaxCount - 1) {
      // Lines 12-15: we are freeing the last outstanding block. Pin the
      // descriptor BEFORE the CAS that makes it EMPTY: the instant the
      // CAS lands the descriptor is retire-able, and RemoveEmptyDesc
      // below must not race against its reuse (hazard-pointer ABA armor).
      // The publication fence is the paper's one common-case memory fence
      // per free (Fig. 6 line 17) — and here it is even off the common
      // path, paid only by the free that empties a superblock.
      if (!Pinned) {
        Domain.publish(HpSlotDesc, Desc);
        Pinned = true;
      }
      Heap = Desc->Heap.load(std::memory_order_acquire); // Line 13.
      NewAnchor.State = SbState::Empty;                  // Line 15.
    } else {
      NewAnchor.Count += 1; // Line 16.
    }
    // The release half of the CAS publishes the link store above no later
    // than the anchor update (Fig. 6 line 17's fence).
    LFM_SCHED_POINT(FreePush); // Link written but not yet published.
    Push.attempt();
  } while (LFM_SCHED_CAS_FAIL(FreePush) ||
           !Desc->AnchorWord.compareExchange(OldAnchor, NewAnchor));
  CTR_N(FreePushRetries, Push.retries());
  LFM_CONT_DONE_ATTR(FreePush, sizeToClass(Desc->BlockSize - BlockPrefixSize),
                     Sb);

  // Free-path attribution: the block size was read before the descriptor
  // could be retired, and LAT_END evaluates the class lookup only for
  // sampled frees.
  if (NewAnchor.State == SbState::Empty) {
    if (LFM_UNLIKELY(Opts.ChaosHook != nullptr))
      Opts.ChaosHook(ChaosSite::AfterEmptyTransition, Opts.ChaosCtx);
    // Lines 19-21: return the superblock and retire its descriptor.
    CTR(SbFreed);
    EVT(SbEmpty, reinterpret_cast<std::uintptr_t>(Sb), Desc->BlockSize);
    const std::uint32_t BlkSize = Desc->BlockSize;
    SbCache.release(Sb);
    removeEmptyDesc(Heap, Desc);
    LAT_END(LatStart, FreeSbRelease,
            sizeToClass(BlkSize - BlockPrefixSize));
    (void)BlkSize;
  } else if (OldAnchor.State == SbState::Full) {
    // Lines 22-23: first free into a FULL superblock re-publishes it.
    EVT(SbPartial, reinterpret_cast<std::uintptr_t>(Sb), Desc->BlockSize);
    heapPutPartial(Desc);
    LAT_END(LatStart, FreeSmall,
            sizeToClass(Desc->BlockSize - BlockPrefixSize));
  } else {
    LAT_END(LatStart, FreeSmall,
            sizeToClass(Desc->BlockSize - BlockPrefixSize));
  }
  if (Pinned)
    Domain.clear(HpSlotDesc);
}

void LFAllocator::removeEmptyDesc(ProcHeap *Heap, Descriptor *Desc) {
  // Fig. 6 RemoveEmptyDesc: if the descriptor still sits in the heap's
  // Partial slot a single CAS retires it; otherwise it may be somewhere in
  // the class list — retire *some* empty descriptor from there instead.
  // Our caller's hazard on Desc makes the slot CAS ABA-safe (Desc cannot
  // be recycled into the slot while we hold the hazard).
  for (unsigned S = 0; S < PartialSlots; ++S) {
    Descriptor *Expected = Desc;
    LFM_SCHED_POINT(HeapPartialSlot);
    if (Heap->Partial[S].compare_exchange_strong(
            Expected, nullptr, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      Descs.retire(Desc);
      return;
    }
  }
  Heap->Sc->Partial.removeEmpty(Descs); // ListRemoveEmptyDesc.
}

void *LFAllocator::largeMalloc(std::size_t Bytes, std::uint64_t LatStart) {
  // Fig. 4 malloc line 3: "Allocate block from OS and return its address";
  // the prefix records the backend's rounded total|1 so free() can route
  // it back (Fig. 6 line 4: "desc holds sz+1"). The backend decides where
  // the bytes come from — a buddy span or a direct OS map — and its
  // rounded total is what deallocate() later hands back.
  CTR(LargeMallocs);
  if (Bytes > ~std::uint64_t{0} - OsPageSize - BlockPrefixSize) {
    errno = ENOMEM;
    LAT_END(LatStart, MallocLarge, NumSizeClasses);
    return nullptr;
  }
  const std::size_t Total = Bytes + BlockPrefixSize;
  LargeBackend::Allocation A;
  bool Ok = LargeB->allocate(Total, OsPageSize, A);
  if (LFM_UNLIKELY(!Ok) && oomRescue())
    Ok = LargeB->allocate(Total, OsPageSize, A);
  if (!Ok) {
    errno = ENOMEM;
    LAT_END(LatStart, MallocLarge, NumSizeClasses);
    return nullptr;
  }
  if (A.OsMapped) {
    EVT(OsMap, A.Total, 0);
    LAT_END(LatStart, MallocLarge, NumSizeClasses);
  } else {
    LAT_END(LatStart, MallocLargeBuddy, NumSizeClasses);
  }
  storeBlockWord(A.Block, A.Total | LargePrefixBit);
  return static_cast<char *>(A.Block) + BlockPrefixSize;
}

void LFAllocator::largeFree(void *Block, std::uint64_t Prefix) {
  CTR(LargeFrees);
  const std::size_t Total = Prefix & ~LargePrefixBit;
  // Fig. 6 line 5, routed through the backend: only a real OS unmap (the
  // os backend always, the buddy backend's above-max-order fallbacks)
  // registers in the os_unmap event stream.
  if (LargeB->deallocate(Block, Total))
    EVT(OsUnmap, Total, 0);
}

bool LFAllocator::oomRescue() {
  // Rescues are rare and tail-defining, so every one is timed (not
  // sampled) — including failed rescues, whose cost the caller still paid
  // before returning ENOMEM. Both retention tiers are drained: the
  // superblock cache and the large backend's free committed pages.
  const std::uint64_t LatStart = LAT_RARE_BEGIN();
  const std::size_t Freed = SbCache.trimRetained(0) + LargeB->trim(0);
  LAT_RARE_END(LatStart, OomRescue);
  LFM_PROBE1(oom_rescue, Freed);
  if (Freed == 0)
    return false;
  XCTR(OomRescues);
  return true;
}

//===----------------------------------------------------------------------===//
// Thread-local magazine layer (docs/DESIGN.md "Thread cache").
//
// The protocol in one paragraph: a magazine hit/absorb is plain loads and
// stores on thread-private state — zero lock-prefixed instructions. A miss
// batch-refills by generalizing Fig. 4: one Active-word CAS reserves R
// credits (ActiveRef{D,c} grants c+1 pops, so R <= c+1), then ONE tagged
// anchor CAS pops all R blocks by walking the freelist R links deep. An
// overflow batch-flushes half the magazine, preferring a single Treiber
// chain-push into the shared per-class depot; when the depot is full the
// blocks go back to their anchors, one tagged CAS per same-descriptor run,
// mirroring Fig. 6 including the hazard-pinned EMPTY transition. Refills
// steal the WHOLE depot chain with one exchange — ABA-free by construction,
// since no stealer ever CASes against a previously-read head.
//===----------------------------------------------------------------------===//

void *LFAllocator::tcacheAllocate(unsigned Class, std::size_t Bytes) {
  (void)Bytes; // Consumed by PROF_ALLOC in profiler builds only.
  tcache::TlsState &T = tcache::tls();
  if (LFM_UNLIKELY(T.Busy != 0))
    return nullptr; // Reentered from a signal handler: take the backend.
  // Busy brackets the whole operation (plain stores): magazine Count
  // updates are not signal-atomic, so a handler's malloc must not see a
  // magazine mid-update.
  T.Busy = 1;
  void *Addr = nullptr;
  tcache::ThreadCache *TC = tcache::find(T, TcEpoch);
  if (LFM_UNLIKELY(TC == nullptr))
    TC = tcacheGetOrAttach(T);
  if (LFM_LIKELY(TC != nullptr)) {
    tcache::Magazine &M = TC->Mags[Class];
    const std::uint64_t LatStart = LAT_BEGIN();
    if (LFM_LIKELY(M.Count != 0)) {
      // The RMW-free hit: one indexed load, two plain stores.
      Addr = M.Slots[--M.Count];
      ++TC->HitMallocs;
      PROF_ALLOC(Addr, Bytes);
      LAT_END(LatStart, MallocTcache, Class);
    } else if (tcacheRefill(Class, M) != 0) {
      Addr = M.Slots[--M.Count];
      ++TC->HitMallocs;
      PROF_ALLOC(Addr, Bytes);
      // Refills file under the same path: malloc_tcache's p50 is the pure
      // hit, its tail carries the batch refill cost.
      LAT_END(LatStart, MallocTcache, Class);
    }
    // Addr == nullptr here means the backend is exhausted; returning null
    // sends the caller down the classic path, which reports ENOMEM with
    // full accounting.
  }
  T.Busy = 0;
  return Addr;
}

bool LFAllocator::tcacheDeallocate(void *Ptr) {
  tcache::TlsState &T = tcache::tls();
  if (LFM_UNLIKELY(T.Busy != 0))
    return false; // Signal-handler reentry: signal-safe backend free.
  void *Block = static_cast<char *>(Ptr) - BlockPrefixSize;
  const std::uint64_t Prefix = loadBlockWord(Block);
  if (LFM_UNLIKELY(Prefix & LargePrefixBit))
    return false; // Large block or aligned marker: classic dispatch.
  const auto *Desc = reinterpret_cast<const Descriptor *>(Prefix);
  const unsigned Class = sizeToClass(Desc->BlockSize - BlockPrefixSize);
  if (LFM_UNLIKELY(Class >= ClassCount))
    return false;
  T.Busy = 1;
  bool Took = false;
  tcache::ThreadCache *TC = tcache::find(T, TcEpoch);
  if (LFM_UNLIKELY(TC == nullptr))
    TC = tcacheGetOrAttach(T);
  if (LFM_LIKELY(TC != nullptr)) {
    tcache::Magazine &M = TC->Mags[Class];
    const std::uint64_t LatStart = LAT_BEGIN();
    if (LFM_UNLIKELY(M.Count == M.Capacity))
      // Overflow: flush the older half so bursts amortize; free_tcache's
      // tail carries this flush.
      tcacheFlushMagazine(Class, M, M.Capacity / 2, /*AllowDepot=*/true);
    M.Slots[M.Count++] = Ptr;
    ++TC->HitFrees;
    LAT_END(LatStart, FreeTcache, Class);
    Took = true;
  }
  T.Busy = 0;
  return Took;
}

tcache::ThreadCache *LFAllocator::tcacheGetOrAttach(tcache::TlsState &T) {
  // Adopt a parked cache from an exited thread before minting a new slab,
  // so thread churn recycles a handful of caches instead of growing one
  // per thread ever seen.
  tcache::ThreadCache *TC = TcFree.pop();
  if (TC != nullptr) {
    XCTR(TcacheAdopts);
    TcParked.fetch_sub(1, std::memory_order_relaxed);
  } else {
    TC = tcacheMint();
    if (TC == nullptr)
      return nullptr;
  }
  if (!tcache::attachTls(T, TcEpoch, TC)) {
    // No TLS slot free or no exit key: this thread runs uncached (the
    // shell parks for some future thread; it holds no blocks).
    TcParked.fetch_add(1, std::memory_order_relaxed);
    TcFree.push(TC);
    return nullptr;
  }
  return TC;
}

tcache::ThreadCache *LFAllocator::tcacheMint() {
  const std::size_t Bytes = tcache::slabBytes(ClassCount, TcCaps);
  void *Slab = Pages.map(Bytes, OsPageSize);
  if (Slab == nullptr)
    return nullptr; // Run uncached under memory pressure.
  tcache::ThreadCache *TC =
      tcache::formatSlab(Slab, Bytes, ClassCount, TcCaps);
  TC->Owner = this;
  TC->Epoch = TcEpoch;
  // Push-only registry walk list; slabs are type-stable until the
  // allocator's destructor, as the adoption free-stack requires.
  TC->AllNext = TcAll.load(std::memory_order_relaxed);
  while (!TcAll.compare_exchange_weak(TC->AllNext, TC,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
  }
  TcMinted.fetch_add(1, std::memory_order_relaxed);
  return TC;
}

unsigned LFAllocator::tcacheRefill(unsigned Class, tcache::Magazine &M) {
  XCTR(TcacheRefills);
  // Half a magazine per refill: enough to amortize, small enough that one
  // anchor CAS still pops it all (and the index scratch stays bounded).
  unsigned Want = M.Capacity / 2;
  if (Want == 0)
    Want = 1;
  if (Want > MaxCredits)
    Want = MaxCredits;
  unsigned Got = tcacheStealFromDepot(Class, M, Want);
  if (Got != 0) {
    CTR_N(TcacheRefillBlocks, Got);
    return Got;
  }
  ProcHeap *Heap = findHeap(Class);
  for (;;) {
    if ((Got = mallocBatchFromActive(Heap, M, Want)) != 0)
      break;
    if ((Got = mallocBatchFromPartial(Heap, M, Want)) != 0)
      break;
    bool OutOfMemory = false;
    if (void *Addr = mallocFromNewSb(Heap, OutOfMemory)) {
      // The install already reserved fresh Active credits; take the one
      // block and let the next miss batch from the new Active word.
      M.Slots[M.Count++] = Addr;
      Got = 1;
      break;
    }
    if (OutOfMemory)
      return 0;
  }
  CTR_N(TcacheRefillBlocks, Got);
  return Got;
}

unsigned LFAllocator::mallocBatchFromActive(ProcHeap *Heap,
                                            tcache::Magazine &M,
                                            unsigned Want) {
  // Fig. 4 MallocFromActive generalized to R blocks. Step one: reserve R
  // credits in a single Active-word CAS; ActiveRef{D, c} grants c+1 pops,
  // so R <= c+1, and taking all of them clears the word exactly as the
  // single-block path's last-credit case does.
  ActiveRef OldActive = Heap->Active.load();
  ActiveRef NewActive;
  unsigned R;
  // Batch refills fight over the same Active word / anchor as the
  // single-block figures, so they file under the same contention sites.
  LFM_CONT_LOOP(ActiveReserve);
  do {
    LFM_CONT_ATTEMPT(ActiveReserve);
    LFM_SCHED_POINT(TcacheRefill);
    if (!OldActive.Desc)
      return 0; // Scope dtor closes out the contention sample.
    R = std::min(static_cast<unsigned>(OldActive.Credits) + 1, Want);
    if (R == OldActive.Credits + 1)
      NewActive = ActiveRef{};
    else
      NewActive = ActiveRef{OldActive.Desc, OldActive.Credits - R};
  } while (LFM_SCHED_CAS_FAIL(TcacheRefill) ||
           !Heap->Active.compareExchange(OldActive, NewActive));
  const bool TookAll = R == OldActive.Credits + 1;
  Descriptor *Desc = OldActive.Desc;
  LFM_CONT_DONE_ATTR(ActiveReserve, static_cast<unsigned>(Heap->Sc - Classes),
                     Desc->Sb);
  // Same freeze window the single-block path exposes: R credits reserved,
  // nothing popped yet. A thread frozen here must not block anyone.
  if (LFM_UNLIKELY(Opts.ChaosHook != nullptr))
    Opts.ChaosHook(ChaosSite::AfterCreditReserve, Opts.ChaosCtx);

  // Step two: pop all R reserved blocks with ONE tagged anchor CAS by
  // walking the freelist R links deep. Intermediate links may be stale
  // garbage if the anchor moved under us — those are detected by a bounds
  // check and the walk restarts from a fresh anchor; if the anchor did
  // NOT move, the tag guarantees the whole walked chain was stable. The
  // final link (the new Avail) is masked but unchecked, exactly like the
  // single-pop path: it is garbage only when the chain held exactly R
  // blocks, in which case Count reaches 0 and no one follows it.
  Anchor OldAnchor = Desc->AnchorWord.load();
  Anchor NewAnchor;
  std::uint32_t MoreCredits = 0;
  std::uint32_t Index[MaxCredits];
  LFM_CONT_LOOP(ActivePop);
  for (;;) {
    LFM_CONT_ATTEMPT(ActivePop);
    LFM_SCHED_POINT(TcacheRefill);
    if (LFM_UNLIKELY(Opts.ChaosHook != nullptr))
      Opts.ChaosHook(ChaosSite::BeforePopCas, Opts.ChaosCtx);
    assert(OldAnchor.State != SbState::Empty &&
           "reserved superblock cannot be EMPTY");
    NewAnchor = OldAnchor;
    MoreCredits = 0;
    std::uint32_t Idx = OldAnchor.Avail;
    bool Stale = false;
    for (unsigned I = 0; I < R; ++I) {
      if (Idx >= Desc->MaxCount) {
        Stale = true;
        break;
      }
      Index[I] = Idx;
      const void *Blk = static_cast<const char *>(Desc->Sb) +
                        static_cast<std::size_t>(Idx) * Desc->BlockSize;
      Idx = static_cast<std::uint32_t>(loadBlockWord(Blk)) &
            ((1u << AnchorAvailBits) - 1);
    }
    if (Stale) {
      OldAnchor = Desc->AnchorWord.load();
      continue;
    }
    NewAnchor.Avail = Idx;
    NewAnchor.Tag = OldAnchor.Tag + 1;
    if (TookAll) {
      if (OldAnchor.Count == 0) {
        NewAnchor.State = SbState::Full;
      } else {
        MoreCredits = std::min(OldAnchor.Count, Opts.CreditsLimit);
        NewAnchor.Count -= MoreCredits;
      }
    }
    // Walked-chain-goes-stale window: the schedule tests preempt here.
    LFM_SCHED_POINT(TcacheRefill);
    if (!LFM_SCHED_CAS_FAIL(TcacheRefill) &&
        Desc->AnchorWord.compareExchange(OldAnchor, NewAnchor))
      break;
    // compareExchange refreshed OldAnchor on failure; loop re-walks.
  }
  LFM_CONT_DONE_ATTR(ActivePop, static_cast<unsigned>(Heap->Sc - Classes),
                     Desc->Sb);
  if (TookAll && OldAnchor.Count == 0)
    EVT(SbFull, reinterpret_cast<std::uintptr_t>(Desc->Sb), Desc->BlockSize);

  for (unsigned I = 0; I < R; ++I) {
    void *Blk = static_cast<char *>(Desc->Sb) +
                static_cast<std::size_t>(Index[I]) * Desc->BlockSize;
    storeBlockWord(Blk, reinterpret_cast<std::uint64_t>(Desc));
    M.Slots[M.Count++] = static_cast<char *>(Blk) + BlockPrefixSize;
  }
  if (TookAll && OldAnchor.Count > 0)
    updateActive(Heap, Desc, MoreCredits);
  return R;
}

unsigned LFAllocator::mallocBatchFromPartial(ProcHeap *Heap,
                                             tcache::Magazine &M,
                                             unsigned Want) {
  for (;;) {
    Descriptor *Desc = heapGetPartial(Heap);
    if (!Desc)
      return 0;
    Desc->Heap.store(Heap, std::memory_order_relaxed);

    // Reserve R blocks for the magazine plus up to CreditsLimit extra for
    // the Active word, in a single anchor CAS (Fig. 4 MallocFromPartial
    // lines 4-10 generalized).
    Anchor OldAnchor = Desc->AnchorWord.load();
    Anchor NewAnchor;
    unsigned R = 0;
    std::uint32_t MoreCredits = 0;
    bool Retired = false;
    LFM_CONT_LOOP(PartialReserve);
    do {
      LFM_CONT_ATTEMPT(PartialReserve);
      LFM_SCHED_POINT(TcacheRefill);
      if (OldAnchor.State == SbState::Empty) {
        // Raced with the last free (the refill-vs-EMPTY window the
        // schedule tests drive): the superblock is already gone; recycle
        // the descriptor and try another.
        Descs.retire(Desc);
        Retired = true;
        break;
      }
      assert(OldAnchor.State == SbState::Partial && OldAnchor.Count > 0 &&
             "partial-list descriptor in impossible state");
      NewAnchor = OldAnchor;
      R = std::min(OldAnchor.Count, Want);
      MoreCredits = std::min(OldAnchor.Count - R, Opts.CreditsLimit);
      NewAnchor.Count = OldAnchor.Count - R - MoreCredits;
      NewAnchor.State =
          MoreCredits > 0 ? SbState::Active : SbState::Full;
    } while (LFM_SCHED_CAS_FAIL(TcacheRefill) ||
             !Desc->AnchorWord.compareExchange(OldAnchor, NewAnchor));
    if (Retired)
      continue; // Scope dtor closes out the contention sample.
    LFM_CONT_DONE_ATTR(PartialReserve,
                       static_cast<unsigned>(Heap->Sc - Classes), Desc->Sb);
    if (NewAnchor.State == SbState::Full)
      EVT(SbFull, reinterpret_cast<std::uintptr_t>(Desc->Sb),
          Desc->BlockSize);
    else
      EVT(SbActive, reinterpret_cast<std::uintptr_t>(Desc->Sb),
          Desc->BlockSize);

    // Pop the R reserved blocks with one tagged CAS (same walk-and-
    // validate as mallocBatchFromActive; no credit bookkeeping here, the
    // reserve CAS above already moved Count).
    OldAnchor = Desc->AnchorWord.load();
    std::uint32_t Index[MaxCredits];
    LFM_CONT_LOOP(PartialPop);
    for (;;) {
      LFM_CONT_ATTEMPT(PartialPop);
      LFM_SCHED_POINT(TcacheRefill);
      NewAnchor = OldAnchor;
      std::uint32_t Idx = OldAnchor.Avail;
      bool Stale = false;
      for (unsigned I = 0; I < R; ++I) {
        if (Idx >= Desc->MaxCount) {
          Stale = true;
          break;
        }
        Index[I] = Idx;
        const void *Blk = static_cast<const char *>(Desc->Sb) +
                          static_cast<std::size_t>(Idx) * Desc->BlockSize;
        Idx = static_cast<std::uint32_t>(loadBlockWord(Blk)) &
              ((1u << AnchorAvailBits) - 1);
      }
      if (Stale) {
        OldAnchor = Desc->AnchorWord.load();
        continue;
      }
      NewAnchor.Avail = Idx;
      NewAnchor.Tag = OldAnchor.Tag + 1;
      LFM_SCHED_POINT(TcacheRefill);
      if (!LFM_SCHED_CAS_FAIL(TcacheRefill) &&
          Desc->AnchorWord.compareExchange(OldAnchor, NewAnchor))
        break;
    }
    LFM_CONT_DONE_ATTR(PartialPop, static_cast<unsigned>(Heap->Sc - Classes),
                       Desc->Sb);
    for (unsigned I = 0; I < R; ++I) {
      void *Blk = static_cast<char *>(Desc->Sb) +
                  static_cast<std::size_t>(Index[I]) * Desc->BlockSize;
      storeBlockWord(Blk, reinterpret_cast<std::uint64_t>(Desc));
      M.Slots[M.Count++] = static_cast<char *>(Blk) + BlockPrefixSize;
    }
    if (MoreCredits > 0)
      updateActive(Heap, Desc, MoreCredits);
    return R;
  }
}

unsigned LFAllocator::tcacheStealFromDepot(unsigned Class,
                                           tcache::Magazine &M,
                                           unsigned Want) {
  tcache::Depot &D = TcDepot[Class];
  if (D.Head.load(std::memory_order_relaxed) == nullptr)
    return 0;
  // The steal is one exchange (never retried), but it still gets a scope:
  // the sampled time-in-loop covers the chain walk plus any leftover
  // re-push, and a losing exchange shows up as a 0-retry sample.
  LFM_CONT_LOOP(TcacheDepotSteal);
  LFM_CONT_ATTEMPT(TcacheDepotSteal);
  LFM_SCHED_POINT(TcacheSteal);
  // Take the WHOLE chain in one exchange. No CAS against a read head ever
  // happens on this side, so the classic Treiber-pop ABA (head recycled
  // between read and CAS) cannot occur by construction.
  void *Chain = D.Head.exchange(nullptr, std::memory_order_acquire);
  if (Chain == nullptr)
    return 0; // Another stealer won the race.
  XCTR(TcacheSteals);
  unsigned Got = 0;
  while (Chain != nullptr && Got < Want && M.Count < M.Capacity) {
    void *Next = tcache::chainNext(Chain);
    M.Slots[M.Count++] = Chain;
    Chain = Next;
    ++Got;
  }
  if (Chain != nullptr) {
    // Re-push what the magazine did not take (its count is already in
    // D.Blocks; only the taken blocks are subtracted below).
    void *Tail = Chain;
    while (void *Next = tcache::chainNext(Tail))
      Tail = Next;
    tcacheDepotPush(Class, Chain, Tail, 0);
  }
  D.Blocks.fetch_sub(Got, std::memory_order_relaxed);
  CTR_N(TcacheStealBlocks, Got);
  LFM_CONT_DONE_ATTR(TcacheDepotSteal, Class, nullptr);
  return Got;
}

void LFAllocator::tcacheDepotPush(unsigned Class, void *ChainHead,
                                  void *ChainTail, std::uint32_t N) {
  tcache::Depot &D = TcDepot[Class];
  void *OldHead = D.Head.load(std::memory_order_relaxed);
  LFM_CONT_LOOP(TcacheDepotPush);
  do {
    LFM_CONT_ATTEMPT(TcacheDepotPush);
    LFM_SCHED_POINT(TcacheFlush);
    tcache::setChainNext(ChainTail, OldHead);
    // Chain-push ABA is harmless: whatever chain the head points at when
    // the CAS lands is exactly the chain we link behind.
  } while (LFM_SCHED_CAS_FAIL(TcacheFlush) ||
           !D.Head.compare_exchange_weak(OldHead, ChainHead,
                                         std::memory_order_release,
                                         std::memory_order_relaxed));
  LFM_CONT_DONE_ATTR(TcacheDepotPush, Class, nullptr);
  if (N != 0)
    D.Blocks.fetch_add(N, std::memory_order_relaxed);
}

void LFAllocator::tcacheFlushMagazine(unsigned Class, tcache::Magazine &M,
                                      std::uint32_t Target,
                                      bool AllowDepot) {
  if (M.Count <= Target)
    return;
  const std::uint32_t N = M.Count - Target;
  XCTR(TcacheFlushes);
  CTR_N(TcacheFlushBlocks, N);
  tcache::Depot &D = TcDepot[Class];
  if (AllowDepot &&
      D.Blocks.load(std::memory_order_relaxed) + N <= 2 * M.Capacity) {
    // Depot path: chain the flushed blocks through their payload words
    // and hand the whole chain over with a single CAS. The 2x-capacity
    // bound keeps the depot from absorbing unbounded producer-consumer
    // skew; beyond it blocks go back to their anchors below.
    void *Head = M.Slots[M.Count - 1];
    void *Cur = Head;
    for (std::uint32_t I = 1; I < N; ++I) {
      void *Next = M.Slots[M.Count - 1 - I];
      tcache::setChainNext(Cur, Next);
      Cur = Next;
    }
    M.Count -= N;
    tcacheDepotPush(Class, Head, Cur, N);
    return;
  }
  // Anchor path: group consecutive same-descriptor runs from the top of
  // the magazine so each run costs one anchor CAS.
  while (M.Count > Target) {
    void *Top = M.Slots[M.Count - 1];
    auto *Desc = reinterpret_cast<Descriptor *>(
        loadBlockWord(static_cast<char *>(Top) - BlockPrefixSize));
    std::uint32_t Run = 1;
    const std::uint32_t Max = M.Count - Target;
    while (Run < Max) {
      void *P = M.Slots[M.Count - 1 - Run];
      if (reinterpret_cast<Descriptor *>(loadBlockWord(
              static_cast<char *>(P) - BlockPrefixSize)) != Desc)
        break;
      ++Run;
    }
    M.Count -= Run;
    tcacheFreeChain(Desc, &M.Slots[M.Count], Run);
  }
}

void LFAllocator::tcacheFreeChain(Descriptor *Desc, void *const *Payloads,
                                  unsigned N) {
  assert(N >= 1 && "empty chain flush");
  void *Sb = Desc->Sb;
  const auto indexOf = [&](const void *Payload) {
    return static_cast<std::uint32_t>(
        (static_cast<const char *>(Payload) - BlockPrefixSize -
         static_cast<const char *>(Sb)) /
        Desc->BlockSize);
  };
  // Fig. 6 generalized to an N-block chain push. Interior links do not
  // depend on the anchor snapshot, so they are written once up front; only
  // the tail's link (to the current Avail) is redone per CAS attempt.
  for (unsigned I = 0; I + 1 < N; ++I)
    storeBlockWord(static_cast<char *>(Payloads[I]) - BlockPrefixSize,
                   indexOf(Payloads[I + 1]));
  void *TailBlock = static_cast<char *>(Payloads[N - 1]) - BlockPrefixSize;
  const std::uint32_t HeadIndex = indexOf(Payloads[0]);

  Anchor OldAnchor = Desc->AnchorWord.load();
  Anchor NewAnchor;
  ProcHeap *Heap = nullptr;
  bool Pinned = false;
  RetryCounter Push;
  // Same anchor CAS as free()'s push, so it files under FreePush.
  LFM_CONT_LOOP(FreePush);
  do {
    LFM_CONT_ATTEMPT(FreePush);
    LFM_SCHED_POINT(TcacheFlush);
    if (LFM_UNLIKELY(Opts.ChaosHook != nullptr))
      Opts.ChaosHook(ChaosSite::BeforeFreeCas, Opts.ChaosCtx);
    NewAnchor = OldAnchor;
    storeBlockWord(TailBlock, OldAnchor.Avail);
    NewAnchor.Avail = HeadIndex;
    if (OldAnchor.State == SbState::Full)
      NewAnchor.State = SbState::Partial;
    if (OldAnchor.Count + N == Desc->MaxCount) {
      // Flushing the last outstanding blocks empties the superblock: pin
      // the descriptor before the CAS exactly as free() does (Fig. 6
      // lines 12-15), and keep the single-free Count convention (EMPTY
      // shows MaxCount-1 — the emptying block is never counted).
      if (!Pinned) {
        Domain.publish(HpSlotDesc, Desc);
        Pinned = true;
      }
      Heap = Desc->Heap.load(std::memory_order_acquire);
      NewAnchor.State = SbState::Empty;
      NewAnchor.Count = OldAnchor.Count + N - 1;
    } else {
      NewAnchor.Count = OldAnchor.Count + N;
    }
    LFM_SCHED_POINT(TcacheFlush); // Links written but not yet published.
    Push.attempt();
  } while (LFM_SCHED_CAS_FAIL(TcacheFlush) ||
           !Desc->AnchorWord.compareExchange(OldAnchor, NewAnchor));
  CTR_N(FreePushRetries, Push.retries());
  LFM_CONT_DONE_ATTR(FreePush, sizeToClass(Desc->BlockSize - BlockPrefixSize),
                     Sb);

  // No CTR(Frees) anywhere on this path: each block was already counted
  // (HitFrees) when its thread pushed it into a magazine.
  if (NewAnchor.State == SbState::Empty) {
    if (LFM_UNLIKELY(Opts.ChaosHook != nullptr))
      Opts.ChaosHook(ChaosSite::AfterEmptyTransition, Opts.ChaosCtx);
    CTR(SbFreed);
    EVT(SbEmpty, reinterpret_cast<std::uintptr_t>(Sb), Desc->BlockSize);
    SbCache.release(Sb);
    removeEmptyDesc(Heap, Desc);
  } else if (OldAnchor.State == SbState::Full) {
    EVT(SbPartial, reinterpret_cast<std::uintptr_t>(Sb), Desc->BlockSize);
    heapPutPartial(Desc);
  }
  if (Pinned)
    Domain.clear(HpSlotDesc);
}

void LFAllocator::tcacheFlushCache(tcache::ThreadCache *Cache) {
  for (unsigned C = 0; C < Cache->ClassCount; ++C)
    tcacheFlushMagazine(C, Cache->Mags[C], 0, /*AllowDepot=*/false);
}

std::size_t LFAllocator::tcacheDrainDepot() {
  if (TcEpoch == 0)
    return 0;
  std::size_t Drained = 0;
  for (unsigned Class = 0; Class < ClassCount; ++Class) {
    tcache::Depot &D = TcDepot[Class];
    if (D.Head.load(std::memory_order_relaxed) == nullptr)
      continue;
    LFM_SCHED_POINT(TcacheSteal);
    void *Chain = D.Head.exchange(nullptr, std::memory_order_acquire);
    std::uint32_t Taken = 0;
    while (Chain != nullptr) {
      // Free same-descriptor runs together. The chain link of every block
      // in a run is read BEFORE the run is flushed — once flushed, a block
      // can be re-allocated and its payload overwritten at any moment.
      void *Run[MaxCredits];
      auto *Desc = reinterpret_cast<Descriptor *>(loadBlockWord(
          static_cast<char *>(Chain) - BlockPrefixSize));
      unsigned K = 0;
      while (Chain != nullptr && K < MaxCredits &&
             reinterpret_cast<Descriptor *>(loadBlockWord(
                 static_cast<char *>(Chain) - BlockPrefixSize)) == Desc) {
        Run[K++] = Chain;
        Chain = tcache::chainNext(Chain);
      }
      tcacheFreeChain(Desc, Run, K);
      Taken += K;
    }
    D.Blocks.fetch_sub(Taken, std::memory_order_relaxed);
    Drained += Taken;
  }
  return Drained;
}

void LFAllocator::tcacheThreadExit(tcache::ThreadCache *Cache) {
  if (Cache == nullptr || Cache->Epoch != TcEpoch)
    return;
  XCTR(TcacheExitDrains);
  // Drain to the ANCHORS, not the depot: an exiting thread must leave zero
  // blocks stranded in thread-cache structures (the churn tests assert
  // this), and anchor frees can release whole superblocks to the OS.
  tcacheFlushCache(Cache);
  TcParked.fetch_add(1, std::memory_order_relaxed);
  TcFree.push(Cache);
}

std::size_t LFAllocator::flushThreadCache() {
  if (TcEpoch == 0)
    return 0;
  tcache::TlsState &T = tcache::tls();
  if (T.Busy != 0)
    return 0; // Reached from inside a magazine op (e.g. OOM rescue).
  tcache::ThreadCache *TC = tcache::find(T, TcEpoch);
  if (TC == nullptr)
    return 0;
  T.Busy = 1;
  std::size_t Flushed = 0;
  for (unsigned C = 0; C < TC->ClassCount; ++C) {
    Flushed += TC->Mags[C].Count;
    tcacheFlushMagazine(C, TC->Mags[C], 0, /*AllowDepot=*/false);
  }
  T.Busy = 0;
  return Flushed;
}

std::size_t LFAllocator::releaseMemory(std::size_t KeepBytes) {
  // Memory-return entry point (malloc_ctl "trim"): push thread-cached
  // blocks back through the anchors first so newly-emptied superblocks are
  // part of what the trim below can return to the OS.
  if (TcEpoch != 0) {
    flushThreadCache();
    tcacheDrainDepot();
  }
  // Two trim tiers share the KeepBytes budget independently: the
  // superblock cache keeps up to KeepBytes of free superblocks resident,
  // and the large backend keeps up to KeepBytes of free buddy blocks.
  return SbCache.trimRetained(KeepBytes) + LargeB->trim(KeepBytes);
}

std::uint32_t LFAllocator::debugTcacheMagazineCount(unsigned Class) {
  if (TcEpoch == 0 || Class >= ClassCount)
    return 0;
  tcache::ThreadCache *TC = tcache::find(tcache::tls(), TcEpoch);
  return TC != nullptr ? TC->Mags[Class].Count : 0;
}

std::uint32_t LFAllocator::debugTcacheMagazineCapacity(unsigned Class) const {
  return (TcEpoch != 0 && Class < ClassCount) ? TcCaps[Class] : 0;
}

std::uint32_t LFAllocator::debugTcacheDepotBlocks(unsigned Class) const {
  return (TcEpoch != 0 && Class < ClassCount)
             ? TcDepot[Class].Blocks.load(std::memory_order_relaxed)
             : 0;
}

std::uint64_t LFAllocator::debugTcacheCachesMinted() const {
  return TcMinted.load(std::memory_order_relaxed);
}

std::uint64_t LFAllocator::debugTcacheCachesParked() const {
  return TcParked.load(std::memory_order_relaxed);
}

void *LFAllocator::allocateAligned(std::size_t Alignment,
                                   std::size_t Bytes) {
  assert(isPowerOf2(Alignment) && "alignment must be a power of two");
  if (Alignment <= BlockPrefixSize)
    return allocate(Bytes); // Natural alignment already suffices.
  if (Bytes > ~std::size_t{0} - Alignment) {
    errno = ENOMEM;
    return nullptr;
  }

  // Over-allocate so some 8-aligned point inside the block reaches the
  // requested alignment, then plant a marker word just before it. The
  // marker slot never collides with the block's own prefix: when the
  // payload start is already aligned we return it directly.
  char *Raw = static_cast<char *>(allocate(Bytes + Alignment));
  if (!Raw)
    return nullptr;
  const std::uintptr_t Addr = reinterpret_cast<std::uintptr_t>(Raw);
  if ((Addr & (Alignment - 1)) == 0)
    return Raw;
  char *Aligned = reinterpret_cast<char *>(alignUp(Addr, Alignment));
  const std::uint64_t Offset = static_cast<std::uint64_t>(Aligned - Raw);
  assert(Offset >= BlockPrefixSize && "no room for the marker word");
  storeBlockWord(Aligned - BlockPrefixSize,
                 (Offset << 2) | AlignedMarkerBits);
  return Aligned;
}

void *LFAllocator::allocateZeroed(std::size_t Num, std::size_t Size) {
  if (Size != 0 && Num > ~std::size_t{0} / Size) {
    errno = ENOMEM; // Multiplication would overflow.
    return nullptr;
  }
  const std::size_t Bytes = Num * Size;
  void *Ptr = allocate(Bytes);
  if (Ptr)
    std::memset(Ptr, 0, Bytes);
  return Ptr;
}

void *LFAllocator::reallocate(void *Ptr, std::size_t Bytes) {
  if (!Ptr)
    return allocate(Bytes);
  if (Bytes == 0) {
    deallocate(Ptr);
    return nullptr;
  }
  const std::size_t OldUsable = usableSize(Ptr);
  if (Bytes <= OldUsable)
    return Ptr; // Block already fits; shrink in place for free.

  // Large->large growth: let the backend resize in place — the buddy
  // backend within a block's own order, the os backend via mremap (the
  // kernel moves the pages instead of copying them). Only for plain large
  // blocks (not aligned-marker redirects, whose offset would not survive
  // a move).
  void *Block = static_cast<char *>(Ptr) - BlockPrefixSize;
  const std::uint64_t Prefix = loadBlockWord(Block);
  if ((Prefix & LargePrefixBit) &&
      (Prefix & AlignedMarkerBits) != AlignedMarkerBits &&
      sizeToClass(Bytes) == LargeSizeClass) {
    const std::size_t OldTotal = Prefix & ~LargePrefixBit;
    std::size_t NewTotal = 0;
    if (void *Fresh =
            LargeB->remap(Block, OldTotal, Bytes + BlockPrefixSize,
                          NewTotal)) {
      storeBlockWord(Fresh, NewTotal | LargePrefixBit);
      void *NewPtr = static_cast<char *>(Fresh) + BlockPrefixSize;
      // mremap bypasses deallocate/allocate, so retarget the profiler's
      // live entry by hand: the old address dies, the new one is born.
      PROF_FREE(Ptr);
      PROF_ALLOC(NewPtr, Bytes);
      return NewPtr;
    }
    // Fall through to copying on remap failure.
  }

  void *Fresh = allocate(Bytes);
  if (!Fresh)
    return nullptr;
  std::memcpy(Fresh, Ptr, OldUsable);
  deallocate(Ptr);
  return Fresh;
}

std::size_t LFAllocator::usableSize(const void *Ptr) const {
  assert(Ptr && "usableSize of null");
  const void *Block = static_cast<const char *>(Ptr) - BlockPrefixSize;
  const std::uint64_t Prefix = loadBlockWord(Block);
  if (Prefix & LargePrefixBit) {
    if ((Prefix & AlignedMarkerBits) == AlignedMarkerBits) {
      const std::size_t Offset = Prefix >> 2;
      const void *Real = static_cast<const char *>(Ptr) - Offset;
      return usableSize(Real) - Offset;
    }
    return (Prefix & ~LargePrefixBit) - BlockPrefixSize;
  }
  const auto *Desc = reinterpret_cast<const Descriptor *>(Prefix);
  return Desc->BlockSize - BlockPrefixSize;
}

OpStats LFAllocator::opStats() const {
  OpStats Out;
#if LFM_TELEMETRY
  if (!Tel)
    return Out;
  using telemetry::Counter;
  Out.Mallocs = Tel->counterTotal(Counter::Mallocs);
  Out.Frees = Tel->counterTotal(Counter::Frees);
  Out.FromActive = Tel->counterTotal(Counter::FromActive);
  Out.FromPartial = Tel->counterTotal(Counter::FromPartial);
  Out.FromNewSb = Tel->counterTotal(Counter::FromNewSb);
  Out.LargeMallocs = Tel->counterTotal(Counter::LargeMallocs);
  Out.LargeFrees = Tel->counterTotal(Counter::LargeFrees);
  Out.SbFreed = Tel->counterTotal(Counter::SbFreed);
#else
  if (!Stats)
    return Out;
  Out.Mallocs = Stats->Mallocs.load(std::memory_order_relaxed);
  Out.Frees = Stats->Frees.load(std::memory_order_relaxed);
  Out.FromActive = Stats->FromActive.load(std::memory_order_relaxed);
  Out.FromPartial = Stats->FromPartial.load(std::memory_order_relaxed);
  Out.FromNewSb = Stats->FromNewSb.load(std::memory_order_relaxed);
  Out.LargeMallocs = Stats->LargeMallocs.load(std::memory_order_relaxed);
  Out.LargeFrees = Stats->LargeFrees.load(std::memory_order_relaxed);
  Out.SbFreed = Stats->SbFreed.load(std::memory_order_relaxed);
#endif
  // Magazine-served operations never touch the shared counters (the fast
  // path is RMW-free); fold the per-cache tallies in so Mallocs/Frees
  // remain "every call", whichever path served it.
  if (TcEpoch != 0) {
    std::uint64_t HitMallocs = 0, HitFrees = 0;
    tcacheAccumulate(HitMallocs, HitFrees, nullptr, nullptr);
    Out.Mallocs += HitMallocs;
    Out.Frees += HitFrees;
  }
  return Out;
}

telemetry::MetricsSnapshot LFAllocator::metricsSnapshot() const {
  telemetry::MetricsSnapshot Snap;
#if LFM_TELEMETRY
  Snap.TelemetryCompiled = true;
  if (Tel) {
    Tel->counters().snapshot(Snap.Counters);
    Snap.TraceEnabled = Tel->traceEnabled();
    Snap.TraceEventsEmitted = Tel->traceEventsEmitted();
    Snap.TraceEventsOverwritten = Tel->traceEventsOverwritten();

    const telemetry::LatencyRecorder &Lat = Tel->latency();
    if (Lat.enabled()) {
      Snap.LatencyEnabled = true;
      Snap.LatencySamplePeriod = Lat.samplePeriod();
      // The recorder keeps its own totals (it cannot reach the sharded
      // CounterSet from the hot path); fold them into the counter slots
      // here so JSON, stats.* ctl keys, and Prometheus agree.
      Snap.Counters[static_cast<unsigned>(
          telemetry::Counter::LatencySamples)] = Lat.samples();
      Snap.Counters[static_cast<unsigned>(
          telemetry::Counter::ExporterAllocs)] = Lat.exporterSamples();
      telemetry::LatencyHistogramSnapshot Hist;
      for (unsigned P = 0; P < telemetry::NumLatencyPaths; ++P) {
        Lat.snapshotPath(static_cast<telemetry::LatencyPath>(P), Hist);
        telemetry::LatencyPathStats &S = Snap.Latency[P];
        S.Count = Hist.Count;
        S.SumNs = Hist.SumNs;
        S.MaxNs = Hist.MaxNs;
        S.P50UpperNs = Hist.quantileUpperNs(0.5);
        S.P99UpperNs = Hist.quantileUpperNs(0.99);
        S.P999UpperNs = Hist.quantileUpperNs(0.999);
      }
      for (unsigned C = 0; C < telemetry::NumLatencyClasses; ++C) {
        telemetry::LatencyClassStats &S = Snap.LatencyClasses[C];
        Lat.classSummary(C, S.Count, S.SumNs, S.MaxNs);
      }
    }

    const telemetry::ContentionRecorder &Cont = Tel->contention();
    if (Cont.enabled()) {
      Snap.ContentionEnabled = true;
      Snap.ContentionSamplePeriod = Cont.samplePeriod();
      Snap.ContentionSamples = Cont.samples();
      telemetry::LatencyHistogramSnapshot Hist;
      for (unsigned S = 0; S < telemetry::NumContentionSites; ++S) {
        const auto Site = static_cast<telemetry::ContentionSite>(S);
        telemetry::ContentionSiteStats &C = Snap.Contention[S];
        Cont.snapshotRetries(Site, Hist);
        C.Count = Hist.Count;
        C.RetriesSum = Hist.SumNs; // The retries histogram's "ns" is retries.
        C.RetriesMax = Hist.MaxNs;
        C.RetriesP50 = Hist.quantileUpperNs(0.5);
        C.RetriesP99 = Hist.quantileUpperNs(0.99);
        Cont.snapshotLoopNs(Site, Hist);
        C.LoopSumNs = Hist.SumNs;
        C.LoopMaxNs = Hist.MaxNs;
        C.LoopP50UpperNs = Hist.quantileUpperNs(0.5);
        C.LoopP99UpperNs = Hist.quantileUpperNs(0.99);
      }
      for (unsigned C = 0; C < telemetry::NumContentionClasses; ++C)
        Snap.ContentionClassRetries[C] = Cont.classRetries(C);
      Snap.ContentionHeatCount =
          Cont.topHeat(Snap.ContentionHeat, telemetry::ContentionTopK);
      Snap.ContentionHeatEntries = Cont.heatEntries();
      Snap.ContentionHeatCapacity = Cont.heatCapacity();
      Snap.ContentionHeatDropped = Cont.heatDropped();
      Snap.WatchdogArmed = Cont.watchdogArmed();
      Snap.WatchdogScans = Cont.watchdogScans();
      Snap.WatchdogStalls = Cont.watchdogStalls();
      Snap.WatchdogStorms = Cont.watchdogStorms();
    }
  }
#else
  // Legacy stats cover only the eight OpStats counters; fold them into
  // the same slots so consumers see one schema in both builds.
  using telemetry::Counter;
  const OpStats St = opStats();
  auto Put = [&Snap](Counter C, std::uint64_t V) {
    Snap.Counters[static_cast<unsigned>(C)] = V;
  };
  Put(Counter::Mallocs, St.Mallocs);
  Put(Counter::Frees, St.Frees);
  Put(Counter::FromActive, St.FromActive);
  Put(Counter::FromPartial, St.FromPartial);
  Put(Counter::FromNewSb, St.FromNewSb);
  Put(Counter::LargeMallocs, St.LargeMallocs);
  Put(Counter::LargeFrees, St.LargeFrees);
  Put(Counter::SbFreed, St.SbFreed);
#endif
  Snap.Space = Pages.stats();
  {
    // Large-backend gauges + counter folding. The backend maintains plain
    // relaxed cells in every build (its translation unit carries no
    // telemetry symbols); the snapshot is where they join the counter
    // schema, mirroring the tcache hit-counter idiom below.
    LargeBackendSnapshot LB;
    LargeB->snapshot(LB);
    Snap.LargeBackendBuddy = LB.Buddy;
    Snap.BuddySpansReserved = LB.SpansReserved;
    Snap.BuddySpanBytes = LB.SpanBytes;
    Snap.BuddyBytesReserved = LB.BytesReserved;
    Snap.BuddyBytesCommitted = LB.BytesCommitted;
    Snap.BuddyBytesAllocated = LB.BytesAllocated;
    Snap.BuddyFreeCommittedBytes = LB.FreeCommittedBytes;
#if LFM_TELEMETRY
    if (Tel != nullptr) {
      using telemetry::Counter;
      auto Put = [&Snap](Counter C, std::uint64_t V) {
        Snap.Counters[static_cast<unsigned>(C)] = V;
      };
      Put(Counter::BuddyAllocs, LB.Allocs);
      Put(Counter::BuddyFrees, LB.Frees);
      Put(Counter::BuddySplits, LB.Splits);
      Put(Counter::BuddyCoalesces, LB.Coalesces);
      Put(Counter::BuddyOsFallbacks, LB.OsFallbacks);
      Put(Counter::BuddyRollbacks, LB.Rollbacks);
      Put(Counter::BuddyDecommits, LB.Decommits);
      Put(Counter::BuddySpanReserves, LB.SpanReserves);
    }
#endif
  }
  Snap.CachedSuperblocks = SbCache.cachedCount();
  Snap.RetainedBytes = SbCache.cachedCount() * Opts.SuperblockSize;
  Snap.DecommittedSuperblocks = SbCache.decommittedCount();
  Snap.ParkedHyperblocks = SbCache.parkedCount();
  Snap.RetainMaxBytes = SbCache.retainMaxBytes();
  Snap.RetainDecayMs = SbCache.retainDecayMs();
  Snap.DescriptorsMinted = Descs.mintedCount();
  Snap.HazardRetired = Domain.retiredCount();
  Snap.HazardScans = Domain.scanCount();
  Snap.HazardReclaims = Domain.reclaimCount();
  {
    // Flight-recorder health (process-wide, not per-instance; all zero
    // under LFM_ALLOC_TRACE=0).
    const trace::RecorderStats TS = trace::recorderStats();
    Snap.AllocTraceRecording = TS.Recording;
    Snap.AllocTraceOps = TS.Ops;
    Snap.AllocTraceDropped = TS.Dropped;
  }
  {
    // Shared-memory segment health (process-wide singleton, like the
    // flight recorder above; the stubs report inactive under
    // LFM_TELEMETRY=0).
    Snap.ShmStatsActive = telemetry::ShmStats::active();
    Snap.ShmStatsEpoch = telemetry::ShmStats::epoch();
    Snap.ShmStatsPublishes = telemetry::ShmStats::publishes();
    Snap.ShmStatsBytes = telemetry::ShmStats::bytes();
  }
  Snap.Heaps = HeapCount;
  Snap.Classes = ClassCount;
  Snap.SuperblockBytes = Opts.SuperblockSize;
  Snap.HyperblockBytes = Opts.HyperblockSize;
  Snap.PartialPolicyFifo = Opts.PartialPolicy == PartialListPolicy::Fifo;
  Snap.StatsEnabled = Opts.EnableStats;
  Snap.TcacheEnabled = TcEpoch != 0;
  Snap.TcacheMagSize = Opts.ThreadCacheMagSize;
  if (TcEpoch != 0) {
    std::uint64_t HitMallocs = 0, HitFrees = 0, MagBlocks = 0;
    tcacheAccumulate(HitMallocs, HitFrees, &MagBlocks, nullptr);
    std::uint64_t DepotBlocks = 0;
    for (unsigned C = 0; C < ClassCount; ++C)
      DepotBlocks += TcDepot[C].Blocks.load(std::memory_order_relaxed);
    Snap.TcacheCachesMinted = TcMinted.load(std::memory_order_relaxed);
    Snap.TcacheCachesParked = TcParked.load(std::memory_order_relaxed);
    Snap.TcacheMagazineBlocks = MagBlocks;
    Snap.TcacheDepotBlocks = DepotBlocks;
    // Counter folding mirrors the latency-recorder idiom above: the
    // RMW-free hit path tallies into plain per-cache cells, and the
    // snapshot is where they join the shared counter schema.
    using telemetry::Counter;
    auto Slot = [&Snap](Counter C) -> std::uint64_t & {
      return Snap.Counters[static_cast<unsigned>(C)];
    };
#if LFM_TELEMETRY
    if (Tel != nullptr) {
      Slot(Counter::TcacheHitMallocs) = HitMallocs;
      Slot(Counter::TcacheHitFrees) = HitFrees;
      Slot(Counter::Mallocs) += HitMallocs;
      Slot(Counter::Frees) += HitFrees;
    }
#else
    // Mallocs/Frees came from opStats(), which already folds the hits.
    if (Stats != nullptr) {
      Slot(Counter::TcacheHitMallocs) = HitMallocs;
      Slot(Counter::TcacheHitFrees) = HitFrees;
    }
#endif
  }
  return Snap;
}

void LFAllocator::metricsJson(std::FILE *Out) const {
  telemetry::writeMetricsJson(metricsSnapshot(), Out);
}

void LFAllocator::traceJson(std::FILE *Out) const {
#if LFM_TELEMETRY
  if (Tel) {
    Tel->writeTraceJson(Out);
    return;
  }
#endif
  std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n", Out);
}

bool LFAllocator::profilerEnabled() const {
#if LFM_TELEMETRY
  return Prof != nullptr;
#else
  return false;
#endif
}

void LFAllocator::heapProfileJson(std::FILE *Out) const {
#if LFM_TELEMETRY
  if (Prof) {
    Prof->writeJson(Out);
    return;
  }
#endif
  std::fputs("{\"schema\":\"lfm-heapprofile-v1\",\"enabled\":false,"
             "\"sites\":[]}\n",
             Out);
}

int LFAllocator::heapProfileText(int Fd) const {
#if LFM_TELEMETRY
  if (Prof)
    return Prof->writeHeapText(Fd);
#endif
  if (Fd < 0)
    return -1;
  // Keep the format valid even unprofiled so dump tooling never chokes.
  profiling::FdWriter W(Fd);
  W.str("heap profile: 0: 0 [0: 0] @ heap_v2/1\n\nMAPPED_LIBRARIES:\n");
  return 0;
}

int LFAllocator::prometheusText(int Fd) const {
  if (Fd < 0)
    return -1;
  profiling::FdWriter W(Fd);
  telemetry::promWriteMetrics(W, metricsSnapshot());
#if LFM_TELEMETRY
  if (Tel != nullptr && Tel->latency().enabled()) {
    telemetry::promWriteLatencyHelp(W);
    telemetry::LatencyHistogramSnapshot Hist;
    for (unsigned P = 0; P < telemetry::NumLatencyPaths; ++P) {
      const auto Path = static_cast<telemetry::LatencyPath>(P);
      Tel->latency().snapshotPath(Path, Hist);
      telemetry::promWriteLatencySeries(W, telemetry::latencyPathName(Path),
                                        Hist);
    }
  }
  if (Tel != nullptr && Tel->contention().enabled()) {
    // Full per-site bucket detail lives here; the metrics JSON carries
    // only summaries.
    const telemetry::ContentionRecorder &Cont = Tel->contention();
    telemetry::promWriteCasRetriesHelp(W);
    telemetry::LatencyHistogramSnapshot Hist;
    for (unsigned S = 0; S < telemetry::NumContentionSites; ++S) {
      const auto Site = static_cast<telemetry::ContentionSite>(S);
      Cont.snapshotRetries(Site, Hist);
      telemetry::promWriteCasRetriesSeries(
          W, telemetry::contentionSiteName(Site), Hist);
    }
    telemetry::promWriteCasLoopNsHelp(W);
    for (unsigned S = 0; S < telemetry::NumContentionSites; ++S) {
      const auto Site = static_cast<telemetry::ContentionSite>(S);
      Cont.snapshotLoopNs(Site, Hist);
      telemetry::promWriteCasLoopNsSeries(
          W, telemetry::contentionSiteName(Site), Hist);
    }
  }
#endif
  return 0;
}

bool LFAllocator::latencyEnabled() const {
#if LFM_TELEMETRY
  return Tel != nullptr && Tel->latency().enabled();
#else
  return false;
#endif
}

bool LFAllocator::contentionEnabled() const {
#if LFM_TELEMETRY
  return Tel != nullptr && Tel->contention().enabled();
#else
  return false;
#endif
}

bool LFAllocator::contentionWatchdogArmed() const {
#if LFM_TELEMETRY
  return Tel != nullptr && Tel->contention().watchdogArmed();
#else
  return false;
#endif
}

unsigned LFAllocator::contentionWatchdogScan(int DiagFd) const {
#if LFM_TELEMETRY
  if (Tel != nullptr && Tel->contention().enabled()) {
    // const_cast: the scan mutates only recorder-internal bookkeeping;
    // the logical allocator state is unchanged.
    auto &Cont = const_cast<telemetry::ContentionRecorder &>(
        Tel->contention());
    const telemetry::WatchdogReport R = Cont.watchdogScan(DiagFd);
    return R.Stalls + R.Storms;
  }
#else
  (void)DiagFd;
#endif
  return 0;
}

void LFAllocator::leakReport(int Fd) const {
#if LFM_TELEMETRY
  if (Prof) {
    Prof->writeLeakReport(Fd);
    return;
  }
#endif
  profiling::FdWriter W(Fd);
  W.str("lfm-leak-report: profiler off (needs a telemetry build with "
        "EnableProfiler / LFM_PROFILE=1)\n");
}

namespace {

/// Scratch record of one heap's Active reference; Credits + 1 blocks are
/// reserved through the Active word and invisible to the anchor's Count.
struct ActiveCreditRec {
  const Descriptor *Desc;
  std::uint32_t Credits;
};

/// Racy-by-design reads of a descriptor's plain fields for the topology
/// walk (same idiom as loadBlockWord: every value is validated before use,
/// and the walk is documented as exact only at quiescence).
template <typename T> T topoLoad(const T &Field) {
  return __atomic_load_n(&Field, __ATOMIC_RELAXED);
}

} // namespace

void LFAllocator::tcacheAccumulate(std::uint64_t &HitMallocs,
                                   std::uint64_t &HitFrees,
                                   std::uint64_t *MagazineBlocks,
                                   std::uint64_t *PerClassBlocks) const {
  // Racy-by-design walk of the push-only cache registry (same contract as
  // the topology walk: monotonic counters may lag, block counts are exact
  // only at quiescence). Covers attached AND parked caches; parked ones
  // hold no blocks but their historical hit tallies still count.
  HitMallocs = 0;
  HitFrees = 0;
  for (const tcache::ThreadCache *TC =
           TcAll.load(std::memory_order_acquire);
       TC != nullptr; TC = TC->AllNext) {
    HitMallocs += topoLoad(TC->HitMallocs);
    HitFrees += topoLoad(TC->HitFrees);
    if (MagazineBlocks != nullptr || PerClassBlocks != nullptr)
      for (unsigned C = 0; C < TC->ClassCount; ++C) {
        const std::uint64_t N = topoLoad(TC->Mags[C].Count);
        if (MagazineBlocks != nullptr)
          *MagazineBlocks += N;
        if (PerClassBlocks != nullptr)
          PerClassBlocks[C] += N;
      }
  }
}

void LFAllocator::collectTopology(profiling::TopologySnapshot &Out,
                                  profiling::SbMapEntry *Map,
                                  std::size_t MapCap, std::size_t *MapCount,
                                  std::uint64_t *Truncated) const {
  Out = profiling::TopologySnapshot{};
  Out.ClassCount = ClassCount;
  Out.SuperblockBytes = Opts.SuperblockSize;
  for (unsigned C = 0; C < ClassCount; ++C)
    Out.Classes[C].BlockSize = classBlockSize(C);

  // Pass 1: snapshot every heap's Active reference so the walk can add the
  // reserved credits back to each active superblock's free count. Scratch
  // comes from a function-local page source — the walk must not allocate
  // from the instance it inspects, nor perturb its space accounting.
  PageAllocator Scratch;
  const std::size_t MaxActive = std::size_t{ClassCount} * HeapCount;
  const std::size_t CreditBytes =
      alignUp(MaxActive * sizeof(ActiveCreditRec), OsPageSize);
  auto *CreditRecs = static_cast<ActiveCreditRec *>(Scratch.map(CreditBytes));
  std::size_t NCredits = 0;
  if (CreditRecs != nullptr) {
    for (std::size_t I = 0; I < MaxActive; ++I) {
      const ActiveRef A = Heaps[I].Active.load();
      if (A.Desc != nullptr)
        CreditRecs[NCredits++] = {A.Desc, A.Credits};
    }
    std::sort(CreditRecs, CreditRecs + NCredits,
              [](const ActiveCreditRec &L, const ActiveCreditRec &R) {
                return L.Desc < R.Desc;
              });
  }
  auto reservedCredits = [&](const Descriptor *D) -> std::uint64_t {
    std::size_t Lo = 0, Hi = NCredits;
    while (Lo < Hi) {
      const std::size_t Mid = Lo + (Hi - Lo) / 2;
      if (CreditRecs[Mid].Desc < D)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo < NCredits && CreditRecs[Lo].Desc == D
               ? std::uint64_t{CreditRecs[Lo].Credits} + 1
               : 0;
  };

  // Pass 2: walk every descriptor ever minted — this is the only way to see
  // FULL superblocks, which are reachable from no heap or list by design.
  if (MapCount != nullptr)
    *MapCount = 0;
  if (Truncated != nullptr)
    *Truncated = 0;
  Descs.forEachDescriptor([&](const Descriptor &D) {
    const Anchor A = D.AnchorWord.load(std::memory_order_relaxed);
    if (A.State == SbState::Empty)
      return; // Freelist or never used; owns no superblock.
    const void *Sb = topoLoad(D.Sb);
    const std::uint32_t BlockSize = topoLoad(D.BlockSize);
    const std::uint32_t MaxCount = topoLoad(D.MaxCount);
    if (Sb == nullptr || BlockSize < classBlockSize(0) ||
        BlockSize > Opts.SuperblockSize || MaxCount == 0 ||
        MaxCount > MaxBlocksPerSuperblock)
      return; // Mid-initialization snapshot; skip rather than misfile.
    const unsigned C = sizeToClass(BlockSize - BlockPrefixSize);
    if (C >= ClassCount || classBlockSize(C) != BlockSize)
      return;

    profiling::ClassTopology &Cl = Out.Classes[C];
    Cl.Superblocks += 1;
    Cl.TotalBlocks += MaxCount;
    switch (A.State) {
    case SbState::Active:
      Cl.ActiveSbs += 1;
      break;
    case SbState::Full:
      Cl.FullSbs += 1;
      break;
    case SbState::Partial:
      Cl.PartialSbs += 1;
      break;
    case SbState::Empty:
      break;
    }
    std::uint64_t Free = A.Count + reservedCredits(&D);
    if (Free > MaxCount)
      Free = MaxCount; // Cross-word race skew; clamp.
    const std::uint64_t Used = MaxCount - Free;
    Cl.UsedBlocks += Used;
    unsigned Bucket = static_cast<unsigned>(
        Used * profiling::TopoOccBuckets / MaxCount);
    if (Bucket >= profiling::TopoOccBuckets)
      Bucket = profiling::TopoOccBuckets - 1;
    Cl.OccHist[Bucket] += 1;

    if (Map != nullptr && MapCount != nullptr) {
      if (*MapCount < MapCap) {
        profiling::SbMapEntry &E = Map[(*MapCount)++];
        E.Addr = reinterpret_cast<std::uintptr_t>(Sb);
        E.BlockSize = BlockSize;
        E.MaxCount = MaxCount;
        E.Used = static_cast<std::uint32_t>(Used);
        E.State = static_cast<std::uint8_t>(A.State);
      } else if (Truncated != nullptr) {
        *Truncated += 1;
      }
    }
  });
  if (CreditRecs != nullptr)
    Scratch.unmap(CreditRecs, CreditBytes);

  // Magazine/depot-resident blocks are "allocated" from the anchors' point
  // of view but are not live application memory: report them separately
  // and keep UsedBlocks meaning "blocks the application actually holds",
  // so cached blocks never read as heap leaks.
  if (TcEpoch != 0) {
    std::uint64_t HitMallocs = 0, HitFrees = 0;
    std::uint64_t PerClass[NumSizeClasses] = {};
    tcacheAccumulate(HitMallocs, HitFrees, nullptr, PerClass);
    for (unsigned C = 0; C < ClassCount; ++C) {
      std::uint64_t Cached =
          PerClass[C] + TcDepot[C].Blocks.load(std::memory_order_relaxed);
      if (Cached > Out.Classes[C].UsedBlocks)
        Cached = Out.Classes[C].UsedBlocks; // Cross-word race skew; clamp.
      Out.Classes[C].CachedBlocks = Cached;
      Out.Classes[C].UsedBlocks -= Cached;
      Out.TcacheCachedBlocks += Cached;
    }
  }

  for (unsigned C = 0; C < ClassCount; ++C) {
    Out.TotalSuperblocks += Out.Classes[C].Superblocks;
    Out.TotalBlocks += Out.Classes[C].TotalBlocks;
    Out.TotalUsedBlocks += Out.Classes[C].UsedBlocks;
  }
  Out.CachedSuperblocks = SbCache.cachedCount();
  Out.RetainedBytes = SbCache.cachedCount() * Opts.SuperblockSize;
  Out.DecommittedSuperblocks = SbCache.decommittedCount();
  Out.ParkedHyperblocks = SbCache.parkedCount();
  Out.RetainMaxBytes = SbCache.retainMaxBytes();
  Out.RetainDecayMs = SbCache.retainDecayMs();
  Out.DescriptorsMinted = Descs.mintedCount();
  Out.Space = Pages.stats();
  LargeB->snapshot(Out.LargeBackendState);

#if LFM_TELEMETRY
  if (Prof != nullptr) {
    Out.ProfilerAttached = true;
    for (unsigned C = 0; C < ClassCount; ++C) {
      Out.Classes[C].LiveEstReqBytes = Prof->classLiveEstReqBytes(C);
      Out.Classes[C].LiveEstBlockBytes = Prof->classLiveEstBlockBytes(C);
    }
    Out.LargeLiveEstReqBytes =
        Prof->classLiveEstReqBytes(profiling::LargeClassBucket);
    Out.LargeLiveEstBlockBytes =
        Prof->classLiveEstBlockBytes(profiling::LargeClassBucket);
  }
#endif
}

void LFAllocator::topologySnapshot(profiling::TopologySnapshot &Out) const {
  collectTopology(Out, nullptr, 0, nullptr, nullptr);
}

void LFAllocator::heapTopologyJson(std::FILE *Out) const {
  // Fixed-capacity heap map: enough for 256 MB of 16 KB superblocks, with
  // overflow reported rather than silently dropped.
  constexpr std::size_t MapCap = 16384;
  PageAllocator Scratch;
  const std::size_t MapBytes =
      alignUp(MapCap * sizeof(profiling::SbMapEntry), OsPageSize);
  auto *Map = static_cast<profiling::SbMapEntry *>(Scratch.map(MapBytes));

  profiling::TopologySnapshot Snap;
  std::size_t MapCount = 0;
  std::uint64_t Truncated = 0;
  collectTopology(Snap, Map, Map != nullptr ? MapCap : 0, &MapCount,
                  &Truncated);
  if (Map != nullptr)
    std::sort(Map, Map + MapCount,
              [](const profiling::SbMapEntry &L,
                 const profiling::SbMapEntry &R) { return L.Addr < R.Addr; });
  profiling::writeTopologyJson(Snap, Map, MapCount, Truncated, Out);
  if (Map != nullptr)
    Scratch.unmap(Map, MapBytes);
}

namespace {

const char *stateName(SbState State) {
  switch (State) {
  case SbState::Active:
    return "ACTIVE";
  case SbState::Full:
    return "FULL";
  case SbState::Partial:
    return "PARTIAL";
  case SbState::Empty:
    return "EMPTY";
  }
  return "?";
}

void dumpDescriptor(std::FILE *Out, const char *Label, unsigned HeapIdx,
                    const Descriptor *Desc, std::uint32_t Credits) {
  const Anchor A = Desc->AnchorWord.load();
  std::fprintf(Out,
               "    heap %2u %-7s desc=%p sb=%p state=%-7s avail=%u "
               "count=%u tag=%llu",
               HeapIdx, Label, static_cast<const void *>(Desc), Desc->Sb,
               stateName(A.State), A.Avail, A.Count,
               static_cast<unsigned long long>(A.Tag));
  if (Credits != ~0u)
    std::fprintf(Out, " credits=%u", Credits);
  std::fprintf(Out, "\n");
}

} // namespace

void LFAllocator::dumpState(std::FILE *Out) const {
  std::fprintf(Out, "LFAllocator@%p: %u heaps x %u classes, sb=%zu B, "
                    "hyper=%zu B, %s partial lists, %u slot(s), "
                    "credits<=%u\n",
               static_cast<const void *>(this), HeapCount, ClassCount,
               Opts.SuperblockSize, Opts.HyperblockSize,
               Opts.PartialPolicy == PartialListPolicy::Fifo ? "FIFO"
                                                             : "LIFO",
               PartialSlots, Opts.CreditsLimit);

  for (unsigned C = 0; C < ClassCount; ++C) {
    bool Printed = false;
    for (unsigned H = 0; H < HeapCount; ++H) {
      const ProcHeap &Heap = Heaps[C * HeapCount + H];
      const ActiveRef Active = Heap.Active.load();
      if (Active.Desc) {
        if (!Printed) {
          std::fprintf(Out, "  class %2u (block %u B):\n", C,
                       classBlockSize(C));
          Printed = true;
        }
        dumpDescriptor(Out, "active", H, Active.Desc, Active.Credits);
      }
      for (unsigned S = 0; S < PartialSlots; ++S)
        if (const Descriptor *Desc =
                Heap.Partial[S].load(std::memory_order_relaxed)) {
          if (!Printed) {
            std::fprintf(Out, "  class %2u (block %u B):\n", C,
                         classBlockSize(C));
            Printed = true;
          }
          dumpDescriptor(Out, "partial", H, Desc, ~0u);
        }
    }
  }

  const OpStats St = opStats();
  if (St.Mallocs || St.Frees)
    std::fprintf(Out,
                 "  ops: mallocs=%llu frees=%llu fast=%llu partial=%llu "
                 "newSb=%llu large=%llu/%llu sbFreed=%llu\n",
                 static_cast<unsigned long long>(St.Mallocs),
                 static_cast<unsigned long long>(St.Frees),
                 static_cast<unsigned long long>(St.FromActive),
                 static_cast<unsigned long long>(St.FromPartial),
                 static_cast<unsigned long long>(St.FromNewSb),
                 static_cast<unsigned long long>(St.LargeMallocs),
                 static_cast<unsigned long long>(St.LargeFrees),
                 static_cast<unsigned long long>(St.SbFreed));
  if (TcEpoch != 0) {
    std::uint64_t HitMallocs = 0, HitFrees = 0, MagBlocks = 0;
    tcacheAccumulate(HitMallocs, HitFrees, &MagBlocks, nullptr);
    std::uint64_t DepotBlocks = 0;
    for (unsigned C = 0; C < ClassCount; ++C)
      DepotBlocks += TcDepot[C].Blocks.load(std::memory_order_relaxed);
    std::fprintf(Out,
                 "  tcache: caches=%llu parked=%llu magBlocks=%llu "
                 "depotBlocks=%llu hitMallocs=%llu hitFrees=%llu\n",
                 static_cast<unsigned long long>(
                     TcMinted.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(
                     TcParked.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(MagBlocks),
                 static_cast<unsigned long long>(DepotBlocks),
                 static_cast<unsigned long long>(HitMallocs),
                 static_cast<unsigned long long>(HitFrees));
  }
#if LFM_TELEMETRY
  if (Tel) {
    using telemetry::Counter;
    const auto C = [this](Counter Ct) {
      return static_cast<unsigned long long>(Tel->counterTotal(Ct));
    };
    std::fprintf(Out,
                 "  cas-retries: activeReserve=%llu activePop=%llu "
                 "partialReserve=%llu partialPop=%llu freePush=%llu "
                 "updateActive=%llu\n",
                 C(Counter::ActiveReserveRetries),
                 C(Counter::ActivePopRetries),
                 C(Counter::PartialReserveRetries),
                 C(Counter::PartialPopRetries),
                 C(Counter::FreePushRetries),
                 C(Counter::UpdateActiveRetries));
    std::fprintf(Out,
                 "  paths: activeNull=%llu updateActiveReturns=%llu "
                 "newSbRaces=%llu partialPuts=%llu partialGets=%llu "
                 "descAllocs=%llu descRetires=%llu sbAcquires=%llu "
                 "sbReleases=%llu\n",
                 C(Counter::ActiveNullMisses),
                 C(Counter::UpdateActiveReturns),
                 C(Counter::NewSbInstallRaces),
                 C(Counter::PartialListPuts), C(Counter::PartialListGets),
                 C(Counter::DescAllocs), C(Counter::DescRetires),
                 C(Counter::SbAcquires), C(Counter::SbReleases));
    std::fprintf(Out, "  hazard: scans=%llu reclaims=%llu retired=%llu\n",
                 static_cast<unsigned long long>(Domain.scanCount()),
                 static_cast<unsigned long long>(Domain.reclaimCount()),
                 static_cast<unsigned long long>(Domain.retiredCount()));
    if (Tel->traceEnabled())
      std::fprintf(Out, "  trace: emitted=%llu overwritten=%llu drops=%llu\n",
                   static_cast<unsigned long long>(Tel->traceEventsEmitted()),
                   static_cast<unsigned long long>(
                       Tel->traceEventsOverwritten()),
                   C(Counter::TraceDrops));
  }
#endif
  const PageStats Space = Pages.stats();
  std::fprintf(Out,
               "  space: %.2f MB mapped, %.2f MB peak, %llu maps, %llu "
               "unmaps, %llu cached sbs, %llu descs minted\n",
               static_cast<double>(Space.BytesInUse) / 1048576,
               static_cast<double>(Space.PeakBytes) / 1048576,
               static_cast<unsigned long long>(Space.MapCalls),
               static_cast<unsigned long long>(Space.UnmapCalls),
               static_cast<unsigned long long>(SbCache.cachedCount()),
               static_cast<unsigned long long>(Descs.mintedCount()));
}

namespace {

/// Formats an invariant violation into \p Msg (when non-null); always
/// returns false so call sites can `return fail(...)`.
bool validateFail(std::string *Msg, const char *What, const Descriptor *Desc,
                  const Anchor &A) {
  if (Msg) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s [desc=%p sb=%p state=%s avail=%u count=%u tag=%llu]",
                  What, static_cast<const void *>(Desc),
                  Desc ? Desc->Sb : nullptr,
                  Desc ? stateName(A.State) : "?", A.Avail, A.Count,
                  static_cast<unsigned long long>(A.Tag));
    *Msg = Buf;
  }
  return false;
}

} // namespace

bool LFAllocator::debugValidate(std::string *Msg) {
  // Where a descriptor was discovered, for the duplicate-reachability and
  // state checks.
  struct Found {
    Descriptor *Desc;
    bool ViaActive;
    std::uint32_t Credits; // Meaningful only when ViaActive.
  };
  std::vector<Found> Reachable;

  for (unsigned C = 0; C < ClassCount; ++C) {
    for (unsigned H = 0; H < HeapCount; ++H) {
      ProcHeap &Heap = Heaps[C * HeapCount + H];
      const ActiveRef Active = Heap.Active.load();
      if (Active.Desc)
        Reachable.push_back({Active.Desc, true, Active.Credits});
      for (unsigned S = 0; S < PartialSlots; ++S)
        if (Descriptor *Desc =
                Heap.Partial[S].load(std::memory_order_relaxed))
          Reachable.push_back({Desc, false, 0});
    }
    // Drain the class-wide partial list, record its members, and restore
    // it. FIFO order survives a put-back in pop order; LIFO needs the
    // put-back reversed.
    std::vector<Descriptor *> Listed;
    while (Descriptor *Desc = Classes[C].Partial.get())
      Listed.push_back(Desc);
    if (Classes[C].Partial.policy() == PartialListPolicy::Fifo)
      for (Descriptor *Desc : Listed)
        Classes[C].Partial.put(Desc);
    else
      for (auto It = Listed.rbegin(); It != Listed.rend(); ++It)
        Classes[C].Partial.put(*It);
    for (Descriptor *Desc : Listed)
      Reachable.push_back({Desc, false, 0});
  }

  // Uniqueness: a descriptor reachable from two places (or two live
  // descriptors sharing a superblock) means a block could be handed out
  // twice.
  for (std::size_t I = 0; I < Reachable.size(); ++I)
    for (std::size_t J = I + 1; J < Reachable.size(); ++J) {
      if (Reachable[I].Desc == Reachable[J].Desc)
        return validateFail(Msg, "descriptor reachable from two places",
                            Reachable[I].Desc,
                            Reachable[I].Desc->AnchorWord.load());
      const Anchor Ai = Reachable[I].Desc->AnchorWord.load();
      const Anchor Aj = Reachable[J].Desc->AnchorWord.load();
      if (Ai.State != SbState::Empty && Aj.State != SbState::Empty &&
          Reachable[I].Desc->Sb == Reachable[J].Desc->Sb)
        return validateFail(Msg, "superblock owned by two live descriptors",
                            Reachable[J].Desc, Aj);
    }

  // Walked freelist membership per reachable descriptor, kept for the
  // magazine/depot cross-checks below.
  struct WalkedChain {
    Descriptor *Desc;
    std::uint64_t ChainLen;
    std::vector<bool> OnChain;
  };
  std::vector<WalkedChain> Chains;

  for (const Found &F : Reachable) {
    Descriptor *Desc = F.Desc;
    const Anchor A = Desc->AnchorWord.load();

    if (A.State == SbState::Empty) {
      // An EMPTY descriptor may legitimately linger in Partial slots and
      // class lists until RemoveEmptyDesc or MallocFromPartial retires it
      // — but its superblock is already released, so there is no chain to
      // walk, and it must never be Active-referenced.
      if (F.ViaActive)
        return validateFail(Msg, "Active references an EMPTY superblock",
                            Desc, A);
      continue;
    }

    const std::uint32_t MaxCount = Desc->MaxCount;
    if (MaxCount < 2 || MaxCount > MaxBlocksPerSuperblock ||
        Desc->BlockSize == 0 || !Desc->Sb)
      return validateFail(Msg, "descriptor geometry corrupt", Desc, A);

    std::uint64_t ExpectChain;
    if (F.ViaActive) {
      // The Active credits are reserved free blocks the anchor no longer
      // counts; +1 for the reservation the credits encoding hides
      // (ActiveRef{D, c} grants c+1 pops).
      if (A.State != SbState::Active)
        return validateFail(
            Msg, "Active-referenced superblock not in ACTIVE state", Desc, A);
      // At quiescence every block may be free, in which case the chain
      // holds all MaxCount blocks: Count + Credits + 1 == MaxCount.
      ExpectChain = static_cast<std::uint64_t>(A.Count) + F.Credits + 1;
      if (ExpectChain > MaxCount)
        return validateFail(Msg, "count + credits exceeds superblock capacity",
                            Desc, A);
    } else {
      if (A.State != SbState::Partial)
        return validateFail(
            Msg, "listed descriptor neither PARTIAL nor EMPTY", Desc, A);
      if (A.Count < 1 || A.Count > MaxCount - 1)
        return validateFail(Msg, "PARTIAL count out of range", Desc, A);
      ExpectChain = A.Count;
    }

    // Walk the in-superblock freelist: exactly ExpectChain distinct,
    // in-range blocks starting at Anchor.Avail (the chain carries no
    // terminator; the anchor count is authoritative, §3.2.2).
    std::vector<bool> Seen(MaxCount, false);
    std::uint32_t Index = A.Avail;
    for (std::uint64_t N = 0; N < ExpectChain; ++N) {
      if (Index >= MaxCount)
        return validateFail(Msg, "freelist link out of range", Desc, A);
      if (Seen[Index])
        return validateFail(Msg, "freelist cycle (block free twice)", Desc,
                            A);
      Seen[Index] = true;
      const void *Block = static_cast<const char *>(Desc->Sb) +
                          static_cast<std::size_t>(Index) * Desc->BlockSize;
      Index = static_cast<std::uint32_t>(loadBlockWord(Block)) &
              ((1u << AnchorAvailBits) - 1);
    }
    Chains.push_back({Desc, ExpectChain, std::move(Seen)});
  }

  // Thread-cache oracle: every block resident in a magazine or the depot
  // is "allocated" from the anchors' point of view. Each must name a sane
  // descriptor, appear at most once across all caches, never ALSO sit on
  // its superblock's freelist, and per descriptor the freelist chain plus
  // cached blocks must still fit in MaxCount.
  if (TcEpoch != 0) {
    struct CachedRef {
      void *Payload;
      Descriptor *Desc;
      std::uint32_t Index;
    };
    std::vector<CachedRef> Cached;
    Descriptor *BadDesc = nullptr;
    auto addCached = [&](void *Payload) -> bool {
      void *Block = static_cast<char *>(Payload) - BlockPrefixSize;
      const std::uint64_t Prefix = loadBlockWord(Block);
      if (Prefix & LargePrefixBit)
        return false; // Large/marker prefix cannot be magazine-resident.
      auto *Desc = reinterpret_cast<Descriptor *>(Prefix);
      BadDesc = Desc;
      if (Desc == nullptr)
        return false;
      const std::uint32_t MaxCount = Desc->MaxCount;
      if (MaxCount < 2 || MaxCount > MaxBlocksPerSuperblock ||
          Desc->BlockSize == 0 || Desc->Sb == nullptr)
        return false;
      if (Desc->AnchorWord.load().State == SbState::Empty)
        return false; // Its superblock is gone yet the block is cached?
      const std::ptrdiff_t Off =
          static_cast<char *>(Block) - static_cast<char *>(Desc->Sb);
      if (Off < 0 || Off % Desc->BlockSize != 0 ||
          static_cast<std::uint64_t>(Off / Desc->BlockSize) >= MaxCount)
        return false;
      Cached.push_back(
          {Payload, Desc, static_cast<std::uint32_t>(Off / Desc->BlockSize)});
      return true;
    };
    for (tcache::ThreadCache *TC = TcAll.load(std::memory_order_acquire);
         TC != nullptr; TC = TC->AllNext)
      for (unsigned C = 0; C < TC->ClassCount; ++C)
        for (std::uint32_t S = 0; S < TC->Mags[C].Count; ++S)
          if (!addCached(TC->Mags[C].Slots[S]))
            return validateFail(Msg, "magazine holds an invalid block",
                                BadDesc,
                                BadDesc ? BadDesc->AnchorWord.load()
                                        : Anchor{});
    for (unsigned C = 0; C < ClassCount; ++C)
      for (void *P = TcDepot[C].Head.load(std::memory_order_acquire);
           P != nullptr; P = tcache::chainNext(P))
        if (!addCached(P))
          return validateFail(Msg, "depot holds an invalid block", BadDesc,
                              BadDesc ? BadDesc->AnchorWord.load()
                                      : Anchor{});

    std::sort(Cached.begin(), Cached.end(),
              [](const CachedRef &L, const CachedRef &R) {
                return L.Payload < R.Payload;
              });
    for (std::size_t I = 1; I < Cached.size(); ++I)
      if (Cached[I].Payload == Cached[I - 1].Payload)
        return validateFail(Msg, "block cached twice (magazines/depot)",
                            Cached[I].Desc,
                            Cached[I].Desc->AnchorWord.load());

    for (const CachedRef &R : Cached)
      for (const WalkedChain &W : Chains)
        if (W.Desc == R.Desc && W.OnChain[R.Index])
          return validateFail(Msg, "cached block also on its freelist",
                              R.Desc, R.Desc->AnchorWord.load());

    // Per-descriptor balance: chain + cached <= MaxCount.
    std::sort(Cached.begin(), Cached.end(),
              [](const CachedRef &L, const CachedRef &R) {
                return L.Desc < R.Desc;
              });
    for (std::size_t I = 0; I < Cached.size();) {
      Descriptor *Desc = Cached[I].Desc;
      std::size_t J = I;
      while (J < Cached.size() && Cached[J].Desc == Desc)
        ++J;
      std::uint64_t ChainLen = 0;
      for (const WalkedChain &W : Chains)
        if (W.Desc == Desc)
          ChainLen = W.ChainLen;
      if (ChainLen + (J - I) > Desc->MaxCount)
        return validateFail(Msg,
                            "freelist chain + cached blocks exceed capacity",
                            Desc, Desc->AnchorWord.load());
      I = J;
    }
  }

  // Buddy-backend structural invariants (status-tree counts, byte meters,
  // residency accounting). Checked regardless of selection: an unselected
  // buddy backend has no spans and passes trivially.
  {
    const char *What = nullptr;
    if (!BuddyLarge.debugValidate(&What)) {
      if (Msg)
        *Msg = std::string("buddy backend: ") + (What ? What : "?");
      return false;
    }
  }
  return true;
}
