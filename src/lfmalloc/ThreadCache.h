//===- lfmalloc/ThreadCache.h - Thread-local magazine cache ------*- C++ -*-==//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thread-local magazine layer in front of the lock-free core
/// (ROADMAP item 1; scalloc-style frontend over the paper's backend).
///
/// A ThreadCache holds one Magazine per small size class: a plain pointer
/// array only its owner thread touches. The 99% path for small malloc and
/// free is then a handful of ordinary loads/stores — zero lock-prefixed
/// RMW instructions — while misses batch-refill from the Active/Partial
/// anchor CAS machinery and overflows batch-flush back through it, so
/// system-wide lock-freedom is untouched: a stalled thread can strand at
/// most the blocks parked in its own magazines, never another thread's
/// progress.
///
/// Three cooperating pieces (protocol details in docs/DESIGN.md):
///
///  - Magazines: per-thread, per-class block stacks. Slots store payload
///    pointers whose 8-byte block prefixes stay intact, so a magazine hit
///    returns the pointer as-is and cross-thread frees of a once-cached
///    block still classify correctly through the prefix.
///
///  - The depot: one lock-free chain per class, shared by all threads of
///    an instance. Flushes push whole chains (one CAS); refills "steal"
///    the entire chain with a single exchange — ABA-free by construction
///    because a stealer never CASes against a head it previously read.
///
///  - The cache registry: every ThreadCache ever minted by an instance
///    stays on a push-only list for snapshot walks; exiting threads drain
///    their magazines to the anchors (through the same hazard-protected
///    EMPTY transition as free()) and park the empty shell on a tagged
///    Treiber free-stack for the next thread to adopt, so 10k short-lived
///    threads reuse a handful of caches instead of minting 10k.
///
/// Thread exit runs through a process-wide pthread key destructor. The
/// TLS state is a plain POD (no C++ destructor ordering hazards), and the
/// destructor validates the owning allocator's registration epoch against
/// a global live-instance table before touching it, so an allocator
/// destroyed before some idle thread exits is simply skipped.
///
/// Reentrancy: magazine operations are not async-signal-atomic, so a
/// per-thread Busy flag (plain stores only) makes any malloc/free issued
/// from a signal handler that interrupted a tcache operation bypass the
/// magazines and take the signal-safe lock-free backend instead.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_THREADCACHE_H
#define LFMALLOC_LFMALLOC_THREADCACHE_H

#include "lfmalloc/Config.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace lfm {

class LFAllocator;

namespace tcache {

/// One per-class block stack. Owner-thread access only; no atomics.
struct Magazine {
  void **Slots = nullptr;      ///< Payload pointers, prefixes intact.
  std::uint32_t Count = 0;     ///< Live entries in Slots.
  std::uint32_t Capacity = 0;  ///< Slot array size (>= 2).
};

/// Per-(thread, allocator-instance) cache. Lives in one private slab
/// mapped by the owning allocator; never freed before the allocator is
/// destroyed (type-stable, as the free-stack contract requires).
struct ThreadCache {
  ThreadCache *AllNext = nullptr;  ///< Push-only registry of every cache.
  ThreadCache *FreeNext = nullptr; ///< Link while parked for adoption.
  LFAllocator *Owner = nullptr;    ///< Minting instance.
  std::uint64_t Epoch = 0;         ///< Owner's live-table epoch.
  std::uint32_t ClassCount = 0;    ///< Magazines in Mags.
  std::size_t SlabBytes = 0;       ///< Slab size, for the dtor's unmap.
  /// Plain (non-atomic) hit tallies: the RMW-free fast path cannot touch
  /// the sharded CounterSet, so snapshots aggregate these instead. Written
  /// only by the attached thread; read racily by snapshot walks. Never
  /// reset — they survive park/adopt cycles, keeping totals monotonic.
  std::uint64_t HitMallocs = 0;
  std::uint64_t HitFrees = 0;
  Magazine *Mags = nullptr; ///< ClassCount magazines, inside the slab.
};

/// One shared per-class depot of flushed block chains, linked through the
/// first payload word (every class holds >= 8 payload bytes). Pushes are
/// Treiber chain-pushes; refills steal the whole chain with one exchange.
struct alignas(DescriptorAlignment) Depot {
  std::atomic<void *> Head{nullptr};
  std::atomic<std::uint32_t> Blocks{0}; ///< Approximate resident count.
};

/// Chain links through the block payload (not the prefix — the prefix
/// keeps naming the descriptor while a block sits in depot or magazine).
inline void *chainNext(void *Payload) {
  void *Next;
  __atomic_load(reinterpret_cast<void **>(Payload), &Next, __ATOMIC_RELAXED);
  return Next;
}
inline void setChainNext(void *Payload, void *Next) {
  __atomic_store(reinterpret_cast<void **>(Payload), &Next, __ATOMIC_RELAXED);
}

/// How many distinct tcache-enabled instances one thread can attach to.
inline constexpr unsigned TlsEntrySlots = 4;

struct TlsEntry {
  std::uint64_t Epoch = 0; ///< Matching instance epoch; 0 = empty slot.
  ThreadCache *Cache = nullptr;
};

/// The whole per-thread state: a POD with constant initialization so the
/// fast path is a direct TLS access with no guard variable.
struct TlsState {
  TlsEntry Entries[TlsEntrySlots];
  /// Nonzero while a magazine operation is in flight on this thread;
  /// malloc/free reentered under it (signal handlers) bypass the cache.
  unsigned Busy = 0;
  bool ExitHooked = false; ///< pthread_setspecific done for this thread.
};

extern thread_local TlsState TheTls;

/// The calling thread's tcache state. Plain TLS load; safe everywhere.
inline TlsState &tls() { return TheTls; }

/// Finds the calling thread's cache for instance \p Epoch, or null.
/// RMW-free: a linear scan of at most TlsEntrySlots plain loads.
inline ThreadCache *find(TlsState &T, std::uint64_t Epoch) {
  for (unsigned I = 0; I < TlsEntrySlots; ++I)
    if (T.Entries[I].Epoch == Epoch)
      return T.Entries[I].Cache;
  return nullptr;
}

/// Mints a globally-unique, never-reused epoch and records \p Owner in
/// the live-instance table. \returns the epoch, or 0 when the table is
/// full (the caller must then run without a thread cache).
std::uint64_t registerInstance(LFAllocator *Owner);

/// Clears \p Epoch from the live-instance table. Threads exiting later
/// find no owner and skip the drain (their cached blocks died with the
/// instance, per the destruction-quiescence contract).
void unregisterInstance(std::uint64_t Epoch);

/// \returns the live allocator registered under \p Epoch, or null.
LFAllocator *lookupInstance(std::uint64_t Epoch);

/// Records \p Cache under \p Epoch in a free TLS slot and arms the
/// pthread-key exit destructor for this thread. \returns false (leaving
/// the TLS state untouched) when no slot is free or the key cannot be
/// created — the caller then runs uncached.
bool attachTls(TlsState &T, std::uint64_t Epoch, ThreadCache *Cache);

/// Drains every cache recorded in \p T whose instance is still live, then
/// empties the TLS slots. The pthread key destructor; also callable
/// directly by tests to simulate an exit on a live thread.
void drainThreadTls(TlsState &T);

/// Computes the slab size for a cache with \p ClassCount magazines of
/// capacities \p Caps, and formats \p Slab in place. The slab must be
/// zeroed (fresh map) and at least slabBytes() long.
std::size_t slabBytes(unsigned ClassCount, const std::uint32_t *Caps);
ThreadCache *formatSlab(void *Slab, std::size_t Bytes, unsigned ClassCount,
                        const std::uint32_t *Caps);

} // namespace tcache
} // namespace lfm

#endif // LFMALLOC_LFMALLOC_THREADCACHE_H
