//===- lfmalloc/Anchor.h - Single-word superblock anchor ---------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The superblock descriptor's `Anchor` word (paper Fig. 3):
///
///     typedef anchor : // fits in one atomic block
///       unsigned avail:10, count:10, state:2, tag:42;
///
/// All four sub-fields update together under a single 64-bit CAS; the `tag`
/// increments on every pop so a CAS that raced against pop/push of the same
/// head index fails (the ABA discussion of §3.2.3). We pack explicitly into
/// a uint64_t rather than relying on compiler bitfield layout, so the
/// packing is portable and directly unit-testable.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_ANCHOR_H
#define LFMALLOC_LFMALLOC_ANCHOR_H

#include "lfmalloc/Config.h"

#include <atomic>
#include <cstdint>

namespace lfm {

/// Superblock lifecycle states (paper §3.2.2).
enum class SbState : std::uint8_t {
  Active = 0,  ///< Installed (or about to be) as a heap's active superblock.
  Full = 1,    ///< Every block allocated or reserved.
  Partial = 2, ///< Not active; has unreserved available blocks.
  Empty = 3,   ///< All blocks free; safe to return memory to the OS.
};

/// Decoded view of the anchor word. Plain data; pack()/unpack() round-trip.
struct Anchor {
  std::uint32_t Avail = 0; ///< Index of first block in the free list.
  std::uint32_t Count = 0; ///< Unreserved available blocks.
  SbState State = SbState::Empty;
  std::uint64_t Tag = 0;   ///< ABA version; ++ on every pop.

  friend bool operator==(const Anchor &, const Anchor &) = default;
};

namespace anchor_detail {
inline constexpr unsigned AvailShift = 0;
inline constexpr unsigned CountShift = AnchorAvailBits;
inline constexpr unsigned StateShift = CountShift + AnchorCountBits;
inline constexpr unsigned TagShift = StateShift + AnchorStateBits;
inline constexpr std::uint64_t AvailMask = (1ULL << AnchorAvailBits) - 1;
inline constexpr std::uint64_t CountMask = (1ULL << AnchorCountBits) - 1;
inline constexpr std::uint64_t StateMask = (1ULL << AnchorStateBits) - 1;
inline constexpr std::uint64_t TagMask = (1ULL << AnchorTagBits) - 1;
} // namespace anchor_detail

/// Packs \p A into the single CAS-able word.
constexpr std::uint64_t packAnchor(const Anchor &A) {
  using namespace anchor_detail;
  assert((A.Avail & ~AvailMask) == 0 && "avail overflows its field");
  assert((A.Count & ~CountMask) == 0 && "count overflows its field");
  return (static_cast<std::uint64_t>(A.Avail) << AvailShift) |
         (static_cast<std::uint64_t>(A.Count) << CountShift) |
         (static_cast<std::uint64_t>(A.State) << StateShift) |
         ((A.Tag & TagMask) << TagShift);
}

/// Unpacks the word \p Word into field view.
constexpr Anchor unpackAnchor(std::uint64_t Word) {
  using namespace anchor_detail;
  Anchor A;
  A.Avail = static_cast<std::uint32_t>((Word >> AvailShift) & AvailMask);
  A.Count = static_cast<std::uint32_t>((Word >> CountShift) & CountMask);
  A.State = static_cast<SbState>((Word >> StateShift) & StateMask);
  A.Tag = (Word >> TagShift) & TagMask;
  return A;
}

/// Atomic wrapper with decoded load / encoded CAS, mirroring the paper's
/// `until CAS(&desc->Anchor, oldanchor, newanchor)` loops.
class AtomicAnchor {
public:
  Anchor load(std::memory_order Order = std::memory_order_acquire) const {
    return unpackAnchor(Word.load(Order));
  }

  /// Non-atomic store for descriptor (re)initialization only: the
  /// descriptor is unpublished at that point (paper Fig. 4 lines 5-11).
  void storeRelaxed(const Anchor &A) {
    Word.store(packAnchor(A), std::memory_order_relaxed);
  }

  /// One CAS attempt. On failure refreshes \p Expected from memory.
  /// Success order is acq_rel: release publishes the caller's preceding
  /// writes (e.g. free() linking the block, Fig. 6 line 8 before line 18);
  /// acquire pairs with other threads' releases (Fig. 6 line 14's
  /// "instruction fence" — the read of desc->heap cannot sink below a
  /// successful CAS).
  bool compareExchange(Anchor &Expected, const Anchor &Desired) {
    std::uint64_t Want = packAnchor(Expected);
    if (Word.compare_exchange_strong(Want, packAnchor(Desired),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
      return true;
    Expected = unpackAnchor(Want);
    return false;
  }

private:
  std::atomic<std::uint64_t> Word{0};
};

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_ANCHOR_H
