//===- lfmalloc/Config.h - Allocator configuration ---------------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time constants and per-instance options for the lock-free
/// allocator. The defaults mirror the paper's choices (16 KB superblocks,
/// MAXCREDITS bounded by the 6 credit bits carved from the Active word,
/// 8-byte block prefix, FIFO partial lists).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_CONFIG_H
#define LFMALLOC_LFMALLOC_CONFIG_H

#include "support/Platform.h"

#include <cstddef>
#include <cstdint>

namespace lfm {

class HazardDomain;

/// Every allocated block starts with an 8-byte prefix holding its
/// superblock's descriptor pointer (small blocks) or its size with the low
/// bit set (large blocks). Paper: "Each block includes an 8 byte prefix."
inline constexpr std::size_t BlockPrefixSize = 8;

/// Descriptor alignment. The Active word packs `credits` into the low bits
/// of a descriptor pointer, so descriptors are aligned to 64 and the low 6
/// bits carry credits (paper §3.2.1: "addresses of superblock descriptors
/// can be guaranteed to be aligned to some power of 2 (e.g., 64)").
inline constexpr std::size_t DescriptorAlignment = 64;

/// Number of credit bits in the Active word (log2 of DescriptorAlignment).
inline constexpr unsigned CreditBits = 6;

/// MAXCREDITS: the most blocks a thread may reserve into the Active word at
/// once. `credits = n` encodes n+1 reservable blocks, so 6 bits support
/// exactly 64 (paper Fig. 4, `min(oldanchor.count, MAXCREDITS)`).
inline constexpr unsigned MaxCredits = 1u << CreditBits;

/// Anchor sub-field widths. The paper packs avail:10 count:10 state:2
/// tag:42; we widen avail/count to 12 bits so superblocks of up to 4095
/// blocks are representable with the same 64-bit single-CAS anchor, and
/// keep 38 tag bits — wraparound against one stalled thread would need
/// 2^38 pops of the same anchor, the paper's "full wraparound practically
/// impossible in a short time" regime.
inline constexpr unsigned AnchorAvailBits = 12;
inline constexpr unsigned AnchorCountBits = 12;
inline constexpr unsigned AnchorStateBits = 2;
inline constexpr unsigned AnchorTagBits =
    64 - AnchorAvailBits - AnchorCountBits - AnchorStateBits;

/// Largest number of blocks a superblock may be divided into.
inline constexpr std::uint32_t MaxBlocksPerSuperblock =
    (1u << AnchorAvailBits) - 1;

/// Partial-superblock list discipline for each size class (§3.2.6).
enum class PartialListPolicy : std::uint8_t {
  Fifo, ///< Michael–Scott queue; the paper's preferred choice (less
        ///< contention and false sharing).
  Lifo, ///< Tagged Treiber stack; the simpler variant the paper describes
        ///< first. Kept for the ablation bench.
};

/// Which backend serves the large path (payloads beyond the largest size
/// class). OsDirect is the paper's behaviour — one mmap per largeMalloc,
/// one munmap per largeFree. Buddy routes requests up to
/// BuddyBackend::MaxOrderBytes through the lock-free buddy system over
/// reserved spans (BuddyBackend.h); larger requests still go to the OS.
enum class LargeBackendKind : std::uint8_t { OsDirect, Buddy };

/// Per-instance configuration. Default-constructed options reproduce the
/// paper's allocator.
struct AllocatorOptions {
  /// Superblock size in bytes (power of two, multiple of the OS page).
  /// Paper: "large superblocks (e.g., 16 KB)".
  std::size_t SuperblockSize = 16 * 1024;

  /// Hyperblock size for batched superblock allocation (§3.2.5: "we
  /// allocate superblocks ... in batches of (e.g., 1 MB) hyperblocks").
  std::size_t HyperblockSize = 1024 * 1024;

  /// Retention watermark for the superblock cache: once more than this
  /// many bytes of free superblocks are cached, further releases return
  /// their physical pages to the OS immediately (madvise MADV_DONTNEED;
  /// the address space stays mapped). Default ~0: retain everything, the
  /// paper's original always-cache behaviour.
  std::size_t RetainMaxBytes = ~std::size_t{0};

  /// Decay period in milliseconds for background trimming of the retained
  /// cache (jemalloc dirty_decay discipline): while >= 0, allocator slow
  /// paths trigger a trim of the cache down to RetainMaxBytes (or to zero
  /// when no watermark is set) at most once per period. Negative disables
  /// decay (the default).
  std::int64_t RetainDecayMs = -1;

  /// Processor heaps per size class. 0 means "ask the OS for the processor
  /// count at initialization" (§4.2.4: "the allocator can determine the
  /// number of processors in the system at initialization time").
  /// 1 selects the uniprocessor optimization: threads skip the thread-id
  /// lookup entirely.
  unsigned NumHeaps = 0;

  /// Partial-list discipline.
  PartialListPolicy PartialPolicy = PartialListPolicy::Fifo;

  /// Most-recently-used Partial slots per processor heap, in
  /// [1, MaxPartialSlots]. The paper uses one and notes "multiple slots
  /// can be used if desired" (§3.2.6); extra slots keep more partial
  /// superblocks heap-local before they migrate to the class-wide list.
  unsigned PartialSlotsPerHeap = 1;

  /// Upper bound on credits taken into the Active word at once, in
  /// [1, MaxCredits]. The paper's MAXCREDITS is the hardware bound (64);
  /// lowering it is the ablation knob for the credits mechanism — with 1,
  /// every malloc exhausts the Active word and pays the refill path.
  unsigned CreditsLimit = MaxCredits;

  /// Hazard-pointer domain for the descriptor freelist and FIFO partial
  /// lists. Null selects the process-wide immortal domain.
  HazardDomain *Domain = nullptr;

  /// Thread-local magazine cache in front of the lock-free core: the
  /// small-block hit path becomes plain loads/stores into a per-thread
  /// array, with batch refill/flush through the Active/Anchor CAS
  /// machinery (see ThreadCache.h and docs/DESIGN.md). Off by default so
  /// locally-constructed instances measure the paper's algorithm
  /// unchanged; the default allocator turns it on unless LFM_TCACHE=0.
  bool EnableThreadCache = false;

  /// Upper bound on one magazine's capacity, in blocks, clamped to
  /// [2, 1024]. The effective per-class capacity also caps the bytes a
  /// magazine can retain, so coarse classes get fewer slots.
  unsigned ThreadCacheMagSize = 64;

  /// Large-object backend. OsDirect by default so locally-constructed
  /// instances keep the paper's per-operation mmap behaviour unchanged;
  /// the default allocator selects Buddy unless LFM_LARGE_BACKEND=os.
  LargeBackendKind LargeBackend = LargeBackendKind::OsDirect;

  /// Reserved bytes per buddy span (power of two, clamped to
  /// [8 MiB, 64 GiB]; multiples of BuddyBackend::MaxOrderBytes). Address
  /// space only — physical pages are committed on first hand-out.
  std::size_t BuddySpanBytes = std::size_t{1} << 30;

  /// Maintain operation counters. Off by default: the latency benches
  /// measure the paper's fence-count argument and must not carry extra
  /// shared-counter traffic. In telemetry builds (LFM_TELEMETRY=1) this
  /// enables the full sharded counter set; otherwise the legacy OpStats
  /// block.
  bool EnableStats = false;

  /// Record allocator events (superblock state transitions, descriptor
  /// retires, OS map/unmap) into per-thread lock-free trace rings,
  /// exportable as Chrome trace JSON. Requires a telemetry build; ignored
  /// under LFM_TELEMETRY=0. Implies counters are worth having too, so
  /// enabling trace also constructs the telemetry block.
  bool EnableTrace = false;

  /// Capacity of each thread's trace ring, in events (rounded up to a
  /// power of two). 4096 events ≈ 160 KB per trace-emitting thread.
  unsigned TraceEventsPerThread = 4096;

  /// Attach the sampling heap profiler (allocation-site attribution and
  /// leak reporting; see src/profiling/). Requires a telemetry build;
  /// ignored under LFM_TELEMETRY=0 so the zero-overhead guarantee of the
  /// no-telemetry configuration is preserved exactly.
  bool EnableProfiler = false;

  /// Mean bytes between heap-profile samples (geometric distribution, the
  /// gperftools scheme). 1 samples every allocation — exact accounting for
  /// tests, far too slow for benches.
  std::size_t ProfileRateBytes = 512 * 1024;

  /// Seed for the profiler's per-thread interval RNGs; 0 keeps the built-in
  /// default. A fixed seed makes single-threaded sampling reproducible.
  std::uint64_t ProfileSeed = 0;

  /// Distinct allocation sites / concurrently-live sampled objects tracked
  /// (each rounded up to a power of two; overflow increments dropped-sample
  /// counters, never blocks or silently lies).
  std::uint32_t ProfileSiteCapacity = 1024;
  std::uint32_t ProfileLiveCapacity = 8192;

  /// Mean operations between latency samples when EnableStats is on
  /// (geometric gaps; see telemetry/LatencyRecorder.h). 0 disables latency
  /// recording entirely, 1 times every operation. Only effective in
  /// telemetry builds with EnableStats — the recorder rides on the
  /// telemetry block and the hot-path probe is a single predicted-false
  /// branch when stats are off.
  std::uint64_t LatencySamplePeriod = 64;

  /// Seed for the latency sampler's per-thread gap RNGs; 0 keeps the
  /// built-in default. A fixed seed makes single-threaded sampling
  /// sequences reproducible for tests.
  std::uint64_t LatencySampleSeed = 0;

  /// Mean retry-loop executions between contention samples when
  /// EnableStats is on (per-CAS-site retries-per-op and time-in-loop
  /// histograms; see telemetry/ContentionRecorder.h). 0 disables
  /// contention sampling — the default, so the hot-path cost of the
  /// instrumented loops is one predicted branch per loop entry. Like
  /// latency sampling, only effective in telemetry builds with
  /// EnableStats.
  std::uint64_t ContentionSamplePeriod = 0;

  /// Seed for the contention sampler's per-thread gap RNGs; 0 keeps the
  /// built-in default (fixed seeds make sampling reproducible).
  std::uint64_t ContentionSampleSeed = 0;

  /// Contention heat-table capacity in superblock entries (rounded up to
  /// a power of two, clamped to [64, 1 << 20]; overflow increments a
  /// dropped counter, never blocks or silently lies).
  std::uint32_t ContentionHeatCapacity = 512;

  /// Arm the progress watchdog: the stats-exporter thread scans per-thread
  /// progress slots for stalled operations and retry storms (see
  /// ContentionRecorder::watchdogScan). Works even with
  /// ContentionSamplePeriod 0 — the recorder then maps tables for the
  /// progress slots but samples nothing.
  bool ContentionWatchdog = false;

  /// Watchdog: a retry loop busy longer than this is reported (as a storm
  /// while its attempt count still advances, a stall once it froze).
  std::uint64_t ContentionStallMs = 100;

  /// Watchdog: attempts within one loop at/beyond this count as a retry
  /// storm regardless of age.
  std::uint64_t ContentionStormRetries = 1u << 20;

  /// Points inside malloc/free where a thread can be delayed arbitrarily.
  /// The paper's progress argument is precisely that a thread stalled (or
  /// killed) at ANY such point never blocks others; the chaos tests prove
  /// it by freezing a thread at each site while the rest of the system
  /// keeps allocating.
  enum class ChaosSite : unsigned {
    AfterCreditReserve, ///< Between Fig. 4 line 6 and the block pop.
    BeforePopCas,       ///< Inside the Fig. 4 line 8-18 pop loop.
    BeforeFreeCas,      ///< Inside the Fig. 6 line 7-18 push loop.
    AfterEmptyTransition, ///< After Fig. 6 line 18 made a superblock EMPTY.
  };

  /// Test-only delay hook, called at each ChaosSite when non-null (a
  /// single predicted-null branch per site in production). The hook runs
  /// on the allocating thread and may block indefinitely.
  void (*ChaosHook)(ChaosSite Site, void *Ctx) = nullptr;
  void *ChaosCtx = nullptr;

  /// What validate() found and fixed; fixed-size text so reporting never
  /// allocates (validation runs during allocator bootstrap, possibly under
  /// an interposed malloc).
  struct Diagnostic {
    char Text[512] = {0}; ///< Human-readable summary of every clamp.
    bool Clamped = false; ///< True when any field had to be adjusted.
  };

  /// Checks every field against its documented domain and clamps
  /// out-of-range values in place (non-power-of-two sizes round up, counts
  /// saturate at their bounds). The LFAllocator constructor calls this and
  /// reports \p Diag on stderr, so a bad configuration degrades to the
  /// nearest valid one instead of asserting or misbehaving silently.
  /// \returns true when the options were already valid.
  bool validate(Diagnostic *Diag = nullptr);
};

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_CONFIG_H
