//===- lfmalloc/LargeBackend.cpp - os-direct large backend ----------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/LargeBackend.h"

using namespace lfm;

bool OsDirectBackend::allocate(std::size_t Total, std::size_t Align,
                               Allocation &Out) {
  const std::size_t Rounded = alignUp(Total, OsPageSize);
  void *Block = Pages.map(Rounded, Align);
  if (Block == nullptr)
    return false;
  Out.Block = Block;
  Out.Total = Rounded;
  Out.OsMapped = true;
  return true;
}

bool OsDirectBackend::deallocate(void *Block, std::size_t Total) {
  Pages.unmap(Block, Total);
  return true;
}

void *OsDirectBackend::remap(void *Block, std::size_t OldTotal,
                             std::size_t NewTotal, std::size_t &RoundedTotal) {
  const std::size_t Rounded = alignUp(NewTotal, OsPageSize);
  void *Fresh = Pages.remap(Block, OldTotal, Rounded);
  if (Fresh == nullptr)
    return nullptr;
  RoundedTotal = Rounded;
  return Fresh;
}

std::size_t OsDirectBackend::trim(std::size_t) {
  // Nothing retained: every free already went straight back to the kernel.
  return 0;
}

void OsDirectBackend::snapshot(LargeBackendSnapshot &Out) const {
  Out = LargeBackendSnapshot{};
}
