//===- lfmalloc/SuperblockCache.cpp - Hyperblock-batched superblocks ------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/SuperblockCache.h"

#include "schedtest/SchedPoint.h"
#include "support/Platform.h"
#include "telemetry/Telemetry.h"

#include <cassert>
#include <new>

using namespace lfm;

SuperblockCache::SuperblockCache(PageAllocator &Pages, std::size_t SbSize,
                                 std::size_t HyperSize)
    : Pages(Pages), SbSize(SbSize), HyperSize(HyperSize),
      SbsPerHyper(HyperSize
                      ? static_cast<std::uint32_t>(HyperSize / SbSize - 1)
                      : 0) {
  assert(isPowerOf2(SbSize) && SbSize >= OsPageSize &&
         "superblock size must be a power-of-two number of pages");
  assert((HyperSize == 0 ||
          (isPowerOf2(HyperSize) && HyperSize >= 4 * SbSize)) &&
         "hyperblock must fit a header slot plus several superblocks");
}

SuperblockCache::~SuperblockCache() {
  HyperHeader *Hyper = Hypers.load(std::memory_order_relaxed);
  while (Hyper) {
    HyperHeader *Next = Hyper->Next;
    Pages.unmap(Hyper, HyperSize);
    Hyper = Next;
  }
}

void *SuperblockCache::acquire() {
  if (HyperSize == 0) {
    void *Sb = Pages.map(SbSize);
    if (Sb) {
      LFM_TEL_CTR(Tel, SbAcquires);
      LFM_TEL_EVT(Tel, OsMap, SbSize, 0);
    }
    return Sb;
  }

  for (;;) {
    LFM_SCHED_POINT(SbAcquire);
    if (FreeSb *Sb = FreeList.pop()) {
      CachedSbs.fetch_sub(1, std::memory_order_relaxed);
      hyperOf(Sb)->FreeCount.fetch_sub(1, std::memory_order_relaxed);
      LFM_TEL_CTR(Tel, SbAcquires);
      return Sb;
    }
    if (!mintHyperblock())
      return nullptr;
  }
}

void SuperblockCache::release(void *Sb) {
  assert(Sb && "releasing null superblock");
  LFM_TEL_CTR(Tel, SbReleases);
  if (HyperSize == 0) {
    Pages.unmap(Sb, SbSize);
    LFM_TEL_EVT(Tel, OsUnmap, SbSize, 0);
    return;
  }
  LFM_SCHED_POINT(SbRelease);
  hyperOf(Sb)->FreeCount.fetch_add(1, std::memory_order_relaxed);
  CachedSbs.fetch_add(1, std::memory_order_relaxed);
  FreeList.push(new (Sb) FreeSb());
}

bool SuperblockCache::mintHyperblock() {
  void *Raw = Pages.map(HyperSize, HyperSize);
  if (!Raw)
    return false;
  LFM_TEL_CTR(Tel, HyperblockMaps);
  LFM_TEL_EVT(Tel, OsMap, HyperSize, 0);
  auto *Hyper = new (Raw) HyperHeader();
  Hyper->FreeCount.store(SbsPerHyper, std::memory_order_relaxed);
  Hyper->Next = Hypers.load(std::memory_order_relaxed);
  while (!Hypers.compare_exchange_weak(Hyper->Next, Hyper,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
  // Slot 0 hosts the header; slots 1..SbsPerHyper are superblocks.
  char *Base = static_cast<char *>(Raw);
  for (std::uint32_t I = 1; I <= SbsPerHyper; ++I)
    FreeList.push(new (Base + static_cast<std::size_t>(I) * SbSize) FreeSb());
  CachedSbs.fetch_add(SbsPerHyper, std::memory_order_relaxed);
  return true;
}

std::size_t SuperblockCache::trimQuiescent() {
  if (HyperSize == 0)
    return 0;

  // Pop the whole free list, then re-push only superblocks whose
  // hyperblock is not fully free; unmap the fully free hyperblocks.
  FreeSb *Kept = nullptr;
  while (FreeSb *Sb = FreeList.pop()) {
    Sb->Next = Kept;
    Kept = Sb;
  }

  // Partition the hyper list into survivors and fully free hyperblocks.
  HyperHeader *DeadList = nullptr;
  HyperHeader *Live = nullptr;
  for (HyperHeader *Hyper = Hypers.load(std::memory_order_relaxed); Hyper;) {
    HyperHeader *Next = Hyper->Next;
    if (Hyper->FreeCount.load(std::memory_order_relaxed) == SbsPerHyper) {
      Hyper->Next = DeadList;
      DeadList = Hyper;
    } else {
      Hyper->Next = Live;
      Live = Hyper;
    }
    Hyper = Next;
  }
  Hypers.store(Live, std::memory_order_relaxed);

  // Re-push survivors whose hyperblock stays mapped.
  std::uint64_t Remaining = 0;
  while (Kept) {
    FreeSb *Next = Kept->Next;
    bool Dead = false;
    for (HyperHeader *D = DeadList; D; D = D->Next)
      if (hyperOf(Kept) == D)
        Dead = true;
    if (!Dead) {
      FreeList.push(Kept);
      ++Remaining;
    }
    Kept = Next;
  }
  CachedSbs.store(Remaining, std::memory_order_relaxed);

  std::size_t Freed = 0;
  while (DeadList) {
    HyperHeader *Next = DeadList->Next;
    Pages.unmap(DeadList, HyperSize);
    LFM_TEL_CTR(Tel, HyperblockUnmaps);
    LFM_TEL_EVT(Tel, OsUnmap, HyperSize, 0);
    Freed += HyperSize;
    DeadList = Next;
  }
  return Freed;
}
