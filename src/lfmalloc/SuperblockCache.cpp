//===- lfmalloc/SuperblockCache.cpp - Hyperblock-batched superblocks ------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/SuperblockCache.h"

#include "schedtest/SchedPoint.h"
#include "support/Platform.h"
#include "support/Usdt.h"
#include "telemetry/ContentionHook.h"
#include "support/Timing.h"
#include "telemetry/Telemetry.h"

#include <cassert>
#include <new>

using namespace lfm;

SuperblockCache::SuperblockCache(PageAllocator &Pages, std::size_t SbSize,
                                 std::size_t HyperSize)
    : Pages(Pages), SbSize(SbSize), HyperSize(HyperSize),
      SbsPerHyper(HyperSize
                      ? static_cast<std::uint32_t>(HyperSize / SbSize - 1)
                      : 0) {
  assert(isPowerOf2(SbSize) && SbSize >= OsPageSize &&
         "superblock size must be a power-of-two number of pages");
  assert((HyperSize == 0 ||
          (isPowerOf2(HyperSize) && HyperSize >= 4 * SbSize)) &&
         "hyperblock must fit a header slot plus several superblocks");
  LastDecayMs.store(monotonicNanos() / 1'000'000,
                    std::memory_order_relaxed);
}

SuperblockCache::~SuperblockCache() {
  HyperHeader *Hyper = Hypers.load(std::memory_order_relaxed);
  while (Hyper) {
    HyperHeader *Next = Hyper->Next;
    Pages.unmap(Hyper, HyperSize);
    Hyper = Next;
  }
}

void *SuperblockCache::acquire() {
  if (HyperSize == 0) {
    void *Sb = Pages.map(SbSize);
    if (Sb) {
      LFM_TEL_CTR(Tel, SbAcquires);
      LFM_TEL_EVT(Tel, OsMap, SbSize, 0);
      LFM_PROBE2(sb_acquire, Sb, SbSize);
    }
    return Sb;
  }

  // Decay runs off the allocator's slow paths; acquire is the allocation
  // side's (release covers the deallocation side), so an alloc-only phase
  // still trims on schedule.
  maybeDecay();

  // The pop below opens a nested TreiberPop scope; by design the
  // innermost active retry loop owns the thread's progress slot.
  LFM_CONT_LOOP(SbAcquire);
  for (;;) {
    LFM_CONT_ATTEMPT(SbAcquire);
    LFM_SCHED_POINT(SbAcquire);
    if (FreeSb *Sb = FreeList.pop()) {
      CachedSbs.fetch_sub(1, std::memory_order_relaxed);
      hyperOf(Sb)->FreeCount.fetch_sub(1, std::memory_order_relaxed);
      if (LFM_UNLIKELY(Sb->Flags & FreeSbDecommitted)) {
        // The tail pages were returned to the OS; they refault as zeros on
        // first touch, which the caller's "contents unspecified" contract
        // already allows.
        DecommittedSbs.fetch_sub(1, std::memory_order_relaxed);
        LFM_TEL_CTR(Tel, SbRecommits);
      }
      LFM_TEL_CTR(Tel, SbAcquires);
      LFM_PROBE2(sb_acquire, Sb, SbSize);
      return Sb;
    }
    if (unparkHyperblock())
      continue;
    if (!mintHyperblock())
      return nullptr;
  }
}

void SuperblockCache::release(void *Sb) {
  assert(Sb && "releasing null superblock");
  LFM_TEL_CTR(Tel, SbReleases);
  LFM_PROBE2(sb_release, Sb, SbSize);
  if (HyperSize == 0) {
    Pages.unmap(Sb, SbSize);
    LFM_TEL_EVT(Tel, OsUnmap, SbSize, 0);
    return;
  }
  LFM_SCHED_POINT(SbRelease);
  hyperOf(Sb)->FreeCount.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t Cached =
      CachedSbs.fetch_add(1, std::memory_order_relaxed) + 1;
  FreeSb *Node = new (Sb) FreeSb();
  // Over the retention watermark: return this superblock's physical pages
  // right away. This must happen *before* the push — afterwards another
  // thread could pop the block and write into pages we are discarding.
  if (LFM_UNLIKELY(Cached * SbSize >
                   RetainMaxBytes.load(std::memory_order_relaxed)))
    decommitTail(Node);
  FreeList.push(Node);
  maybeDecay();
}

void SuperblockCache::decommitTail(FreeSb *Node) {
  // The first page stays resident: it carries the free-list link that a
  // stalled popper may still read (TreiberStack type-stability).
  if (!Pages.decommit(reinterpret_cast<char *>(Node) + OsPageSize,
                      SbSize - OsPageSize))
    return;
  Node->Flags |= FreeSbDecommitted;
  DecommittedSbs.fetch_add(1, std::memory_order_relaxed);
  LFM_TEL_CTR(Tel, SbDecommits);
  LFM_TEL_EVT(Tel, OsDecommit, SbSize - OsPageSize, 0);
}

void SuperblockCache::maybeDecay() {
  const std::int64_t D = DecayMs.load(std::memory_order_relaxed);
  if (LFM_LIKELY(D < 0))
    return;
  const std::uint64_t NowMs = monotonicNanos() / 1'000'000;
  std::uint64_t Last = LastDecayMs.load(std::memory_order_relaxed);
  if (NowMs - Last < static_cast<std::uint64_t>(D))
    return;
  // One thread wins the epoch CAS and runs the trim; everyone else goes
  // straight back to work.
  if (!LastDecayMs.compare_exchange_strong(Last, NowMs,
                                           std::memory_order_relaxed))
    return;
  const std::size_t Keep = RetainMaxBytes.load(std::memory_order_relaxed);
  trimRetained(Keep == ~std::size_t{0} ? 0 : Keep);
}

bool SuperblockCache::mintHyperblock() {
  void *Raw = Pages.map(HyperSize, HyperSize);
  if (!Raw)
    return false;
  LFM_TEL_CTR(Tel, HyperblockMaps);
  LFM_TEL_EVT(Tel, OsMap, HyperSize, 0);
  auto *Hyper = new (Raw) HyperHeader();
  Hyper->FreeCount.store(SbsPerHyper, std::memory_order_relaxed);
  Hyper->Next = Hypers.load(std::memory_order_relaxed);
  while (!Hypers.compare_exchange_weak(Hyper->Next, Hyper,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
  // Slot 0 hosts the header; slots 1..SbsPerHyper are superblocks.
  char *Base = static_cast<char *>(Raw);
  for (std::uint32_t I = 1; I <= SbsPerHyper; ++I)
    FreeList.push(new (Base + static_cast<std::size_t>(I) * SbSize) FreeSb());
  CachedSbs.fetch_add(SbsPerHyper, std::memory_order_relaxed);
  return true;
}

bool SuperblockCache::unparkHyperblock() {
  HyperHeader *Hyper = Parked.pop();
  if (!Hyper)
    return false;
  // Revive: all SbsPerHyper superblocks go back on the free list, still
  // tail-decommitted (their pages refault zero-filled on first use). The
  // header page was never decommitted, so FreeCount survived intact at
  // SbsPerHyper.
  Hyper->Parked.store(false, std::memory_order_relaxed);
  Hyper->TrimCollected.store(0, std::memory_order_relaxed);
  ParkedHypers.fetch_sub(1, std::memory_order_relaxed);
  LFM_TEL_CTR(Tel, HyperblockUnparks);
  LFM_PROBE2(hyperblock_unpark, Hyper, HyperSize);
  char *Base = reinterpret_cast<char *>(Hyper);
  CachedSbs.fetch_add(SbsPerHyper, std::memory_order_relaxed);
  DecommittedSbs.fetch_add(SbsPerHyper, std::memory_order_relaxed);
  for (std::uint32_t I = 1; I <= SbsPerHyper; ++I) {
    auto *Node =
        new (Base + static_cast<std::size_t>(I) * SbSize) FreeSb();
    Node->Flags = FreeSbDecommitted;
    FreeList.push(Node);
  }
  return true;
}

std::size_t SuperblockCache::trimRetained(std::size_t KeepBytes) {
  if (HyperSize == 0)
    return 0;
  // Non-blocking single-trimmer slot: a loser returns immediately (the
  // winner is already doing the work), so no caller ever waits.
  if (TrimActive.exchange(true, std::memory_order_acquire))
    return 0;
  LFM_TEL_CTR(Tel, TrimRuns);
#if LFM_TELEMETRY
  // Trim passes are rare and entirely tail (they run under the retention
  // watermark or on OOM rescue), so every winner is timed, not sampled.
  const std::uint64_t LatStart =
      Tel != nullptr ? Tel->latency().rareBegin() : 0;
#endif

  // Drain the free list into a private chain. Every node drained is ours
  // alone; concurrent acquirers see an empty list and mint/unpark.
  FreeSb *Chain = nullptr;
  std::uint64_t Drained = 0;
  for (;;) {
    LFM_SCHED_POINT(SbTrim);
    FreeSb *Sb = FreeList.pop();
    if (!Sb)
      break;
    CachedSbs.fetch_sub(1, std::memory_order_relaxed);
    Sb->Next = Chain;
    Chain = Sb;
    ++Drained;
  }

  // Pass A: tally how many superblocks of each hyperblock we hold. A
  // hyperblock is parkable only when we drained every one of its slots —
  // FreeCount alone is racy (a popped-but-not-yet-reused block still
  // counts as free there).
  for (FreeSb *Node = Chain; Node; Node = Node->Next)
    hyperOf(Node)->TrimCollected.fetch_add(1, std::memory_order_relaxed);

  // Pass B: walk the chain once. Nodes of fully-collected hyperblocks are
  // withheld (their hyperblock gets parked below); survivors are re-pushed,
  // tail-decommitting those beyond the keep budget. The budget can also
  // spare a would-be-parked hyperblock by demoting one of its nodes back
  // to survivor (TrimCollected drops below the full count, so the rest of
  // its nodes classify as survivors too).
  std::size_t BudgetLeft = KeepBytes;
  std::size_t Released = 0;
  HyperHeader *DeadQ = nullptr;
  for (FreeSb *Node = Chain; Node;) {
    FreeSb *Next = Node->Next;
    HyperHeader *Hyper = hyperOf(Node);
    std::uint32_t Collected =
        Hyper->TrimCollected.load(std::memory_order_relaxed);
    bool Dead = Collected >= SbsPerHyper;
    // The spare is only legal before the hyperblock is queued (sentinel):
    // afterwards its siblings must all stay withheld or Pass C would
    // decommit a hyperblock with a block back in circulation.
    if (Dead && Collected == SbsPerHyper && BudgetLeft >= SbSize) {
      Hyper->TrimCollected.store(Collected - 1, std::memory_order_relaxed);
      Dead = false;
    }
    if (Dead) {
      if (Collected == SbsPerHyper) {
        // First withheld node of this hyperblock: queue it once, using the
        // +1 sentinel so siblings skip the queueing.
        Hyper->TrimCollected.store(SbsPerHyper + 1,
                                   std::memory_order_relaxed);
        Hyper->ParkNext = DeadQ;
        DeadQ = Hyper;
      }
      if (Node->Flags & FreeSbDecommitted)
        DecommittedSbs.fetch_sub(1, std::memory_order_relaxed);
    } else {
      const bool AlreadyOut = Node->Flags & FreeSbDecommitted;
      if (!AlreadyOut) {
        if (BudgetLeft >= SbSize) {
          BudgetLeft -= SbSize;
        } else {
          decommitTail(Node);
          Released += SbSize - OsPageSize;
        }
      }
      CachedSbs.fetch_add(1, std::memory_order_relaxed);
      FreeList.push(Node);
    }
    Node = Next;
  }

  // Pass C: park the fully-collected hyperblocks. Only now is it safe to
  // decommit their interiors — during Pass B a sibling node's link fields
  // still had to stay readable. The header page stays resident for the
  // Parked-stack link and FreeCount.
  while (DeadQ) {
    HyperHeader *Hyper = DeadQ;
    DeadQ = Hyper->ParkNext;
    Pages.decommit(reinterpret_cast<char *>(Hyper) + OsPageSize,
                   HyperSize - OsPageSize);
    Hyper->Parked.store(true, std::memory_order_relaxed);
    ParkedHypers.fetch_add(1, std::memory_order_relaxed);
    LFM_TEL_CTR(Tel, HyperblockParks);
    LFM_PROBE2(hyperblock_park, Hyper, HyperSize);
    LFM_TEL_EVT(Tel, OsDecommit, HyperSize - OsPageSize, 0);
    Released += HyperSize - OsPageSize;
    Parked.push(Hyper);
  }

  // Reset the tallies of live hyperblocks for the next pass. Parked ones
  // keep the sentinel until unpark clears it. Walking the Hypers list is
  // safe against concurrent minting: a new head simply is not visited and
  // its tally is already zero.
  for (HyperHeader *Hyper = Hypers.load(std::memory_order_acquire); Hyper;
       Hyper = Hyper->Next)
    if (!Hyper->Parked.load(std::memory_order_relaxed))
      Hyper->TrimCollected.store(0, std::memory_order_relaxed);

  LFM_TEL_EVT(Tel, Trim, Released, Drained);
  LFM_PROBE2(trim_pass, Released, Drained);
#if LFM_TELEMETRY
  if (LatStart != 0)
    Tel->latency().rareEnd(LatStart, telemetry::LatencyPath::Trim);
#endif
  TrimActive.store(false, std::memory_order_release);
  return Released;
}

std::size_t SuperblockCache::trimQuiescent() {
  if (HyperSize == 0)
    return 0;

  // Quiescent: no concurrent acquires/releases/trims. Parked hyperblocks
  // are fully free by construction, so draining the Parked stack and
  // letting the FreeCount partition below classify them as dead is enough.
  while (Parked.pop() != nullptr) {
  }
  ParkedHypers.store(0, std::memory_order_relaxed);

  // Pop the whole free list, then re-push only superblocks whose
  // hyperblock is not fully free; unmap the fully free hyperblocks.
  FreeSb *Kept = nullptr;
  while (FreeSb *Sb = FreeList.pop()) {
    Sb->Next = Kept;
    Kept = Sb;
  }

  // Partition the hyper list into survivors and fully free hyperblocks.
  HyperHeader *DeadList = nullptr;
  HyperHeader *Live = nullptr;
  for (HyperHeader *Hyper = Hypers.load(std::memory_order_relaxed); Hyper;) {
    HyperHeader *Next = Hyper->Next;
    if (Hyper->FreeCount.load(std::memory_order_relaxed) == SbsPerHyper) {
      Hyper->Next = DeadList;
      DeadList = Hyper;
    } else {
      Hyper->Next = Live;
      Live = Hyper;
    }
    Hyper = Next;
  }
  Hypers.store(Live, std::memory_order_relaxed);

  // Re-push survivors whose hyperblock stays mapped.
  std::uint64_t Remaining = 0;
  std::uint64_t RemainingDecommitted = 0;
  while (Kept) {
    FreeSb *Next = Kept->Next;
    bool Dead = false;
    for (HyperHeader *D = DeadList; D; D = D->Next)
      if (hyperOf(Kept) == D)
        Dead = true;
    if (!Dead) {
      if (Kept->Flags & FreeSbDecommitted)
        ++RemainingDecommitted;
      FreeList.push(Kept);
      ++Remaining;
    }
    Kept = Next;
  }
  CachedSbs.store(Remaining, std::memory_order_relaxed);
  DecommittedSbs.store(RemainingDecommitted, std::memory_order_relaxed);

  std::size_t Freed = 0;
  while (DeadList) {
    HyperHeader *Next = DeadList->Next;
    Pages.unmap(DeadList, HyperSize);
    LFM_TEL_CTR(Tel, HyperblockUnmaps);
    LFM_TEL_EVT(Tel, OsUnmap, HyperSize, 0);
    Freed += HyperSize;
    DeadList = Next;
  }
  return Freed;
}
