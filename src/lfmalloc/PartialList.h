//===- lfmalloc/PartialList.h - Size-class partial lists ---------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-size-class list of PARTIAL superblocks (paper §3.2.6), providing
/// the three operations ListPutPartial / ListGetPartial /
/// ListRemoveEmptyDesc under two disciplines:
///
///  - FIFO (the paper's preferred implementation): a Michael–Scott queue.
///    removeEmpty() "keeps dequeuing descriptors from the head of the list
///    until it dequeues a non-empty descriptor or reaches the end"; a
///    dequeued non-empty descriptor is re-enqueued at the tail. This keeps
///    at most half the listed descriptors empty.
///  - LIFO (the simpler variant): a tagged Treiber stack over the
///    descriptors' PartialNext links. The paper's LIFO variant uses a
///    lock-free linked list with middle removal [16]; we implement the
///    standard simplification of removing empties lazily at the head — a
///    get() that surfaces an EMPTY descriptor retires it (the caller's
///    MallocFromPartial retry loop), and removeEmpty() inspects the head.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_LFMALLOC_PARTIALLIST_H
#define LFMALLOC_LFMALLOC_PARTIALLIST_H

#include "lfmalloc/DescriptorAllocator.h"
#include "lfmalloc/Descriptor.h"
#include "lockfree/MSQueue.h"
#include "lockfree/TreiberStack.h"

#include <new>

namespace lfm {

/// Policy-switched list of partial superblock descriptors.
class PartialList {
public:
  PartialList(PartialListPolicy Policy, HazardDomain &Domain,
              PageAllocator &Pages)
      : Policy(Policy) {
    if (Policy == PartialListPolicy::Fifo)
      new (&FifoStorage) FifoT(Domain, &Pages);
    else
      new (&LifoStorage) LifoT();
  }
  PartialList(const PartialList &) = delete;
  PartialList &operator=(const PartialList &) = delete;

  ~PartialList() {
    if (Policy == PartialListPolicy::Fifo)
      fifo().~FifoT();
    else
      lifo().~LifoT();
  }

  /// ListPutPartial: makes \p Desc available to any heap of the class.
  void put(Descriptor *Desc) {
    if (Policy == PartialListPolicy::Fifo)
      fifo().enqueue(Desc);
    else
      lifo().push(Desc);
  }

  /// ListGetPartial. \returns a descriptor or nullptr. May return an
  /// EMPTY descriptor; the caller (MallocFromPartial) retires it and
  /// retries, per Fig. 4 line 6.
  Descriptor *get() {
    if (Policy == PartialListPolicy::Fifo) {
      Descriptor *Desc = nullptr;
      return fifo().dequeue(Desc) ? Desc : nullptr;
    }
    return lifo().pop();
  }

  /// ListRemoveEmptyDesc: retires empty descriptors so their storage
  /// becomes reusable — "the goal ... is to ensure that empty descriptors
  /// are eventually made available for reuse, and not necessarily to
  /// remove a specific empty descriptor immediately".
  void removeEmpty(DescriptorAllocator &Descs) {
    if (Policy == PartialListPolicy::Fifo) {
      // Bound the walk by the current length estimate so concurrent
      // enqueues cannot turn this into an unbounded loop.
      std::int64_t Budget = fifo().approxSize() + 1;
      Descriptor *Desc = nullptr;
      while (Budget-- > 0 && fifo().dequeue(Desc)) {
        if (Desc->AnchorWord.load().State == SbState::Empty) {
          Descs.retire(Desc);
          continue;
        }
        fifo().enqueue(Desc); // Non-empty: back to the tail, stop.
        break;
      }
      return;
    }
    if (Descriptor *Desc = lifo().pop()) {
      if (Desc->AnchorWord.load().State == SbState::Empty)
        Descs.retire(Desc);
      else
        lifo().push(Desc);
    }
  }

  PartialListPolicy policy() const { return Policy; }

private:
  using FifoT = MSQueue<Descriptor *>;
  using LifoT = TreiberStack<Descriptor, &Descriptor::PartialNext>;

  FifoT &fifo() { return *std::launder(reinterpret_cast<FifoT *>(&FifoStorage)); }
  LifoT &lifo() { return *std::launder(reinterpret_cast<LifoT *>(&LifoStorage)); }

  const PartialListPolicy Policy;
  union {
    alignas(FifoT) unsigned char FifoStorage[sizeof(FifoT)];
    alignas(LifoT) unsigned char LifoStorage[sizeof(LifoT)];
  };
};

} // namespace lfm

#endif // LFMALLOC_LFMALLOC_PARTIALLIST_H
