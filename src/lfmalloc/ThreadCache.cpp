//===- lfmalloc/ThreadCache.cpp - Thread-local magazine cache -------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
//
// Process-wide pieces of the magazine layer: the per-thread TLS state, the
// live-instance epoch table the thread-exit destructor validates against,
// and the cache-slab layout. The magazine/refill/flush protocol itself
// lives in LFAllocator.cpp next to the anchor machinery it batches over.
//
//===----------------------------------------------------------------------===//

#include "lfmalloc/ThreadCache.h"

#include "lfmalloc/LFAllocator.h"
#include "support/Platform.h"

#include <pthread.h>

using namespace lfm;
using namespace lfm::tcache;

namespace lfm {
namespace tcache {
thread_local TlsState TheTls;
} // namespace tcache
} // namespace lfm

namespace {

/// Epochs start at 1 so 0 always means "no instance"; 64 bits never wrap.
std::atomic<std::uint64_t> NextEpoch{1};

/// A slot is claimed by CASing Epoch 0 -> ClaimedEpoch, then publishing
/// Owner and the real epoch, so a concurrent lookup can never observe a
/// half-written slot under a matching epoch.
constexpr std::uint64_t ClaimedEpoch = ~std::uint64_t{0};

constexpr unsigned MaxLiveInstances = 64;

struct LiveSlot {
  std::atomic<std::uint64_t> Epoch{0};
  std::atomic<LFAllocator *> Owner{nullptr};
};

LiveSlot LiveTable[MaxLiveInstances];

pthread_key_t ExitKey;
pthread_once_t ExitKeyOnce = PTHREAD_ONCE_INIT;
std::atomic<int> ExitKeyState{0}; // 0 unmade, 1 usable, -1 creation failed.

extern "C" void lfmTcacheThreadExit(void *Arg) {
  TlsState *T = static_cast<TlsState *>(Arg);
  // Re-arm detection: if a later TSD destructor mallocs, attach runs again
  // and re-registers the key for another destructor round.
  T->ExitHooked = false;
  drainThreadTls(*T);
}

void makeExitKey() {
  ExitKeyState.store(
      pthread_key_create(&ExitKey, lfmTcacheThreadExit) == 0 ? 1 : -1,
      std::memory_order_relaxed);
}

} // namespace

std::uint64_t lfm::tcache::registerInstance(LFAllocator *Owner) {
  const std::uint64_t Epoch =
      NextEpoch.fetch_add(1, std::memory_order_relaxed);
  for (LiveSlot &S : LiveTable) {
    std::uint64_t Empty = 0;
    if (S.Epoch.load(std::memory_order_relaxed) != 0)
      continue;
    if (!S.Epoch.compare_exchange_strong(Empty, ClaimedEpoch,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed))
      continue;
    S.Owner.store(Owner, std::memory_order_relaxed);
    S.Epoch.store(Epoch, std::memory_order_release);
    return Epoch;
  }
  return 0; // Table full: this instance runs without a thread cache.
}

void lfm::tcache::unregisterInstance(std::uint64_t Epoch) {
  if (Epoch == 0)
    return;
  for (LiveSlot &S : LiveTable) {
    if (S.Epoch.load(std::memory_order_relaxed) != Epoch)
      continue;
    S.Owner.store(nullptr, std::memory_order_relaxed);
    S.Epoch.store(0, std::memory_order_release);
    return;
  }
}

LFAllocator *lfm::tcache::lookupInstance(std::uint64_t Epoch) {
  if (Epoch == 0)
    return nullptr;
  for (LiveSlot &S : LiveTable)
    if (S.Epoch.load(std::memory_order_acquire) == Epoch)
      return S.Owner.load(std::memory_order_relaxed);
  return nullptr;
}

bool lfm::tcache::attachTls(TlsState &T, std::uint64_t Epoch,
                            ThreadCache *Cache) {
  pthread_once(&ExitKeyOnce, makeExitKey);
  if (ExitKeyState.load(std::memory_order_relaxed) != 1)
    return false; // No exit drain possible: refuse to cache blocks.
  int Slot = -1;
  for (unsigned I = 0; I < TlsEntrySlots; ++I) {
    // Reclaim entries whose instance has been destroyed: the dead
    // allocator already unmapped the cache slab, so the stale pointer
    // must never be drained — dropping it here keeps slots available to
    // later instances on long-lived threads.
    if (T.Entries[I].Epoch != 0 && lookupInstance(T.Entries[I].Epoch) == nullptr)
      T.Entries[I] = TlsEntry{};
    if (T.Entries[I].Epoch == 0) {
      Slot = static_cast<int>(I);
      break;
    }
  }
  if (Slot < 0)
    return false;
  if (!T.ExitHooked) {
    if (pthread_setspecific(ExitKey, &T) != 0)
      return false;
    T.ExitHooked = true;
  }
  T.Entries[Slot] = TlsEntry{Epoch, Cache};
  return true;
}

void lfm::tcache::drainThreadTls(TlsState &T) {
  // Busy brackets the whole drain: a signal handler that mallocs while a
  // magazine is mid-flush must take the lock-free backend, not re-attach
  // or touch the half-drained cache.
  T.Busy = 1;
  for (TlsEntry &E : T.Entries) {
    if (E.Epoch == 0)
      continue;
    // Validate the instance is still alive: an allocator destroyed before
    // this thread exited already reclaimed the cache slab with everything
    // in it, so the entry is simply dropped.
    LFAllocator *Owner = lookupInstance(E.Epoch);
    ThreadCache *Cache = E.Cache;
    E = TlsEntry{};
    if (Owner)
      Owner->tcacheThreadExit(Cache);
  }
  T.Busy = 0;
}

std::size_t lfm::tcache::slabBytes(unsigned ClassCount,
                                   const std::uint32_t *Caps) {
  std::size_t Bytes = alignUp(sizeof(ThreadCache), alignof(Magazine));
  Bytes += std::size_t{ClassCount} * sizeof(Magazine);
  Bytes = alignUp(Bytes, alignof(void *));
  for (unsigned C = 0; C < ClassCount; ++C)
    Bytes += std::size_t{Caps[C]} * sizeof(void *);
  return alignUp(Bytes, OsPageSize);
}

ThreadCache *lfm::tcache::formatSlab(void *Slab, std::size_t Bytes,
                                     unsigned ClassCount,
                                     const std::uint32_t *Caps) {
  char *Base = static_cast<char *>(Slab);
  ThreadCache *TC = new (Base) ThreadCache;
  std::size_t Off = alignUp(sizeof(ThreadCache), alignof(Magazine));
  Magazine *Mags = reinterpret_cast<Magazine *>(Base + Off);
  Off += std::size_t{ClassCount} * sizeof(Magazine);
  Off = alignUp(Off, alignof(void *));
  for (unsigned C = 0; C < ClassCount; ++C) {
    Mags[C] = Magazine{};
    Mags[C].Slots = reinterpret_cast<void **>(Base + Off);
    Mags[C].Capacity = Caps[C];
    Off += std::size_t{Caps[C]} * sizeof(void *);
  }
  TC->ClassCount = ClassCount;
  TC->SlabBytes = Bytes;
  TC->Mags = Mags;
  return TC;
}
