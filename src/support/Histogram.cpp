//===- support/Histogram.cpp - Latency histograms and summaries -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

using namespace lfm;

void StreamingStats::add(double Sample) {
  if (Count == 0) {
    Min = Max = Sample;
  } else {
    Min = std::min(Min, Sample);
    Max = std::max(Max, Sample);
  }
  ++Count;
  const double Delta = Sample - Mean;
  Mean += Delta / static_cast<double>(Count);
  M2 += Delta * (Sample - Mean);
}

void StreamingStats::merge(const StreamingStats &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    *this = Other;
    return;
  }
  const double Delta = Other.Mean - Mean;
  const std::uint64_t NewCount = Count + Other.Count;
  Mean += Delta * static_cast<double>(Other.Count) /
          static_cast<double>(NewCount);
  M2 += Other.M2 + Delta * Delta * static_cast<double>(Count) *
                       static_cast<double>(Other.Count) /
                       static_cast<double>(NewCount);
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
  Count = NewCount;
}

double StreamingStats::stddev() const {
  if (Count < 2)
    return 0.0;
  return std::sqrt(M2 / static_cast<double>(Count - 1));
}

void LogHistogram::add(std::uint64_t Sample) {
  Buckets[logbuckets::bucketIndex(Sample)] += 1;
  ++Total;
}

void LogHistogram::merge(const LogHistogram &Other) {
  for (unsigned I = 0; I < NumBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
  Total += Other.Total;
}

std::uint64_t LogHistogram::quantile(double Q) const {
  assert(Q >= 0.0 && Q <= 1.0 && "quantile out of range");
  return logbuckets::quantileInterpolated(Buckets.data(), Total, Q);
}

std::string LogHistogram::summary() const {
  char Buf[128];
  std::snprintf(Buf, sizeof(Buf),
                "n=%llu p50=%llu p90=%llu p99=%llu max~%llu",
                static_cast<unsigned long long>(Total),
                static_cast<unsigned long long>(quantile(0.50)),
                static_cast<unsigned long long>(quantile(0.90)),
                static_cast<unsigned long long>(quantile(0.99)),
                static_cast<unsigned long long>(quantile(1.0)));
  return Buf;
}
