//===- support/RuntimeConfig.cpp - LFM_* environment registry -------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/RuntimeConfig.h"

#include <cstdlib>

using namespace lfm;
using namespace lfm::config;

namespace {

// Indexed by Var. Keep rows in enum order; varSpec() asserts nothing and
// relies on this table covering every enumerator.
const VarSpec Table[NumVars] = {
    {"LFM_STATS", "opt.stats", "0",
     "maintain operation counters in the default allocator"},
    {"LFM_TRACE", "opt.trace", "0",
     "record allocator trace events (implies counters)"},
    {"LFM_TRACE_EVENTS", "opt.trace_events", "4096",
     "per-thread trace-ring capacity in events"},
    {"LFM_PROFILE", "opt.profile", "0",
     "attach the sampling heap profiler (telemetry builds)"},
    {"LFM_PROFILE_RATE", "opt.profile_rate", "524288",
     "mean bytes between heap-profile samples"},
    {"LFM_PROFILE_SEED", "opt.profile_seed", "0",
     "fixed sampler seed for reproducible profiles"},
    {"LFM_PROFILE_SITES", "opt.profile_sites", "1024",
     "distinct allocation sites tracked"},
    {"LFM_PROFILE_LIVE", "opt.profile_live", "8192",
     "concurrently-live sampled objects tracked"},
    {"LFM_PROFILE_DUMP", "opt.profile_dump", "lfm-heap",
     "path prefix for signal-triggered heap-profile dumps"},
    {"LFM_LEAK_REPORT", "opt.leak_report", "0",
     "LD_PRELOAD shim prints a leak report at exit"},
    {"LFM_LATENCY_SAMPLE", "opt.latency_sample", "64",
     "mean ops between latency samples (0 off, 1 every op; implies stats)"},
    {"LFM_STATS_INTERVAL_MS", "opt.stats_interval_ms", "0",
     "background stats-exporter period in ms; 0 disables"},
    {"LFM_STATS_PREFIX", "opt.stats_prefix", "lfm-stats",
     "path prefix for background exporter / signal-dump artifacts"},
    {"LFM_SHM_STATS", "opt.shm_stats", "unset",
     "lfm-shmstats-v1 segment backing: a path, or 1/auto/memfd for an "
     "anonymous memfd (telemetry builds)"},
    {"LFM_USDT", "opt.usdt", "1",
     "fire the compiled-in USDT tracepoints at runtime (0 disables)"},
    {"LFM_CONTENTION_SAMPLE", "opt.contention_sample", "0",
     "mean retry-loop runs between contention samples (0 off; implies "
     "stats)"},
    {"LFM_CONTENTION_HEAT", "contention.heat_capacity", "512",
     "contention heat-table capacity in superblock entries"},
    {"LFM_CONTENTION_WATCHDOG", "opt.contention_watchdog", "0",
     "arm the progress watchdog on the stats exporter (implies stats)"},
    {"LFM_CONTENTION_STALL_MS", "contention.stall_ms", "100",
     "watchdog: flag a retry loop busy longer than this many ms"},
    {"LFM_CONTENTION_STORM", "contention.storm_retries", "1048576",
     "watchdog: attempts in one loop at/beyond this are a retry storm"},
    {"LFM_TRACE_RECORD", "trace.path", "unset",
     "record an lfm-alloctrace-v1 allocation trace to this path (shim)"},
    {"LFM_TRACE_BUF_KB", "trace.buffer_kb", "8192",
     "flight-recorder append-buffer budget in KiB"},
    {"LFM_RETAIN_MAX_BYTES", "retain.max_bytes", "unset",
     "superblock-cache retention watermark in bytes (~0: keep all)"},
    {"LFM_RETAIN_DECAY_MS", "retain.decay_ms", "-1",
     "decay period for background cache trimming; <0 disables"},
    {"LFM_TCACHE", "opt.tcache", "1",
     "thread-local magazine cache on the default allocator (0 disables)"},
    {"LFM_TCACHE_MAG_SIZE", "opt.tcache_mag_size", "64",
     "magazine slot cap per size class (clamped to [2, 1024])"},
    {"LFM_LARGE_BACKEND", "opt.large_backend", "buddy",
     "large-object backend: \"buddy\" (lock-free buddy spans) or \"os\" "
     "(per-operation mmap)"},
    {"LFM_BUDDY_SPAN_BYTES", "opt.buddy_span_bytes", "1073741824",
     "reserved address space per buddy span (power of two)"},
    {"LFM_FAIL_MAP", "debug.fail_map", "unset",
     "fault injection: fail OS map calls after N successes"},
    {"LFM_BENCH_SCALE", nullptr, "1.0",
     "bench harness: duration multiplier for every cell"},
    {"LFM_BENCH_SECONDS", nullptr, "unset",
     "bench harness: per-cell seconds override"},
    {"LFM_BENCH_MAXTHREADS", nullptr, "unset",
     "bench harness: cap on the thread axis"},
    {"LFM_METRICS_JSON", nullptr, "unset",
     "bench harness: write metrics JSON here after the run"},
    {"LFM_TRACE_JSON", nullptr, "unset",
     "bench harness: write Chrome trace JSON here after the run"},
    {"LFM_TEST_SEED", nullptr, "20260806",
     "base seed for seeded schedule-exploration tests"},
    {"LFM_SCHED_SEEDS", nullptr, "per-test",
     "schedules explored per schedule-exploration test"},
    {"LFM_SCHED_REPLAY", nullptr, "unset",
     "replay one schedule: \"seed=S,preempt=P,casfail=F\""},
};

} // namespace

const VarSpec &lfm::config::varSpec(Var V) {
  return Table[static_cast<unsigned>(V)];
}

const char *lfm::config::varRaw(Var V) {
  const char *Raw = std::getenv(varSpec(V).EnvName);
  return (Raw && *Raw) ? Raw : nullptr;
}

bool lfm::config::varFlag(Var V) {
  const char *Raw = varRaw(V);
  return Raw && !(Raw[0] == '0' && Raw[1] == '\0');
}

bool lfm::config::varU64(Var V, std::uint64_t &Out) {
  const char *Raw = varRaw(V);
  if (!Raw)
    return false;
  char *End = nullptr;
  const unsigned long long Val = std::strtoull(Raw, &End, 0);
  if (End == Raw || *End != '\0')
    return false;
  Out = static_cast<std::uint64_t>(Val);
  return true;
}

bool lfm::config::varI64(Var V, std::int64_t &Out) {
  const char *Raw = varRaw(V);
  if (!Raw)
    return false;
  char *End = nullptr;
  const long long Val = std::strtoll(Raw, &End, 0);
  if (End == Raw || *End != '\0')
    return false;
  Out = static_cast<std::int64_t>(Val);
  return true;
}

bool lfm::config::varF64(Var V, double &Out) {
  const char *Raw = varRaw(V);
  if (!Raw)
    return false;
  char *End = nullptr;
  const double Val = std::strtod(Raw, &End);
  if (End == Raw || *End != '\0')
    return false;
  Out = Val;
  return true;
}
