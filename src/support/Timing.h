//===- support/Timing.h - Monotonic clocks and stopwatches -------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nanosecond monotonic time and a stopwatch, used by the benchmark driver
/// to reproduce the paper's timed phases (e.g. Larson's 30-second parallel
/// phase, scaled down by the harness).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_TIMING_H
#define LFMALLOC_SUPPORT_TIMING_H

#include <cstdint>

namespace lfm {

/// \returns monotonic time in nanoseconds. Never goes backwards; suitable
/// for measuring intervals, not wall-clock dates.
std::uint64_t monotonicNanos();

/// Simple interval stopwatch over \c monotonicNanos().
class Stopwatch {
public:
  Stopwatch() : StartNs(monotonicNanos()) {}

  /// Restarts the interval at now.
  void reset() { StartNs = monotonicNanos(); }

  /// \returns nanoseconds since construction or the last reset().
  std::uint64_t elapsedNanos() const { return monotonicNanos() - StartNs; }

  /// \returns seconds since construction or the last reset().
  double elapsedSeconds() const {
    return static_cast<double>(elapsedNanos()) * 1e-9;
  }

private:
  std::uint64_t StartNs;
};

} // namespace lfm

#endif // LFMALLOC_SUPPORT_TIMING_H
