//===- support/Usdt.h - SystemTap/USDT static tracepoints -------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// USDT (user statically-defined tracing) probes for the allocator's
/// rare-event edges: superblock acquire/release, hyperblock park/unpark,
/// buddy span reserve, OOM rescue, trim passes, watchdog verdicts. Each
/// probe is a single nop plus an ELF .note.stapsdt record, consumable
/// from bpftrace/perf/systemtap without rebuilding:
///
///   bpftrace -e 'usdt:./liblfmalloc_preload.so:lfmalloc:oom_rescue
///                { printf("oom rescue, %d bytes\n", arg0); }' -p <pid>
///
/// <sys/sdt.h> is used when present; otherwise a minimal built-in
/// emitter produces the same note format (64-bit integer args only —
/// everything our probes pass). Probes live on rare paths only, never on
/// malloc/free hot paths.
///
/// Gates:
///  - compile: CMake option LFMALLOC_USDT (default ON) — OFF defines
///    LFM_USDT=0 and every macro compiles to nothing (readelf -n shows
///    zero stapsdt notes).
///  - runtime: LFM_USDT environment variable (default 1) — 0 skips the
///    probe block entirely (one cached-bool branch per rare event), for
///    processes that must not execute even the nop sleds.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_USDT_H
#define LFMALLOC_SUPPORT_USDT_H

#ifndef LFM_USDT
#define LFM_USDT 1
#endif

#if LFM_USDT

namespace lfm {
namespace usdt {
/// Resolves LFM_USDT once (strict parse, default enabled). Defined in
/// Usdt.cpp so the policy lives next to the RuntimeConfig registry.
bool enabledSlow();
inline bool enabled() {
  static const bool E = enabledSlow();
  return E;
}
} // namespace usdt
} // namespace lfm

#if defined(__has_include)
#if __has_include(<sys/sdt.h>)
#define LFM_USDT_HAVE_SYS_SDT 1
#endif
#endif

#ifdef LFM_USDT_HAVE_SYS_SDT

#include <sys/sdt.h>

#define LFM_USDT_EMIT0(name) DTRACE_PROBE(lfmalloc, name)
#define LFM_USDT_EMIT1(name, a) DTRACE_PROBE1(lfmalloc, name, a)
#define LFM_USDT_EMIT2(name, a, b) DTRACE_PROBE2(lfmalloc, name, a, b)

#elif defined(__x86_64__) || defined(__aarch64__)

// Built-in stapsdt note emitter for 64-bit targets: the exact section
// layout systemtap's <sys/sdt.h> produces (note type 3, name "stapsdt",
// desc = probe PC, link-time base, semaphore (0 = none), provider, name,
// arg template), restricted to u64 arguments. The .stapsdt.base comdat
// anchor lets consumers undo prelink-style address shifts.
#define LFM_USDT_BASE_ASM                                                    \
  ".ifndef _.stapsdt.base\n"                                                 \
  ".pushsection .stapsdt.base,\"aG\",\"progbits\",.stapsdt.base,comdat\n"    \
  ".weak _.stapsdt.base\n"                                                   \
  ".hidden _.stapsdt.base\n"                                                 \
  "_.stapsdt.base: .space 1\n"                                               \
  ".size _.stapsdt.base, 1\n"                                                \
  ".popsection\n"                                                            \
  ".endif\n"

#define LFM_USDT_NOTE(name, argtemplate)                                     \
  "990: nop\n"                                                               \
  ".pushsection .note.stapsdt,\"?\",\"note\"\n"                              \
  ".balign 4\n"                                                              \
  ".4byte 992f-991f, 994f-993f, 3\n"                                         \
  "991: .asciz \"stapsdt\"\n"                                                \
  "992: .balign 4\n"                                                         \
  "993: .8byte 990b\n"                                                       \
  ".8byte _.stapsdt.base\n"                                                  \
  ".8byte 0\n"                                                               \
  ".asciz \"lfmalloc\"\n"                                                    \
  ".asciz \"" name "\"\n"                                                    \
  ".asciz " argtemplate "\n"                                                 \
  "994: .balign 4\n"                                                         \
  ".popsection\n" LFM_USDT_BASE_ASM

#define LFM_USDT_EMIT0(name)                                                 \
  __asm__ __volatile__(LFM_USDT_NOTE(#name, "\"\"") ::: "memory")
#define LFM_USDT_EMIT1(name, a)                                              \
  __asm__ __volatile__(LFM_USDT_NOTE(#name, "\"8@%0\"") ::"nor"(             \
                           (unsigned long)(a))                    \
                       : "memory")
#define LFM_USDT_EMIT2(name, a, b)                                           \
  __asm__ __volatile__(LFM_USDT_NOTE(#name, "\"8@%0 8@%1\"") ::"nor"(        \
                           (unsigned long)(a)),                   \
                       "nor"((unsigned long)(b))                  \
                       : "memory")

#else // Unknown target: keep the build working, emit nothing.

#define LFM_USDT_EMIT0(name)                                                 \
  do {                                                                       \
  } while (0)
#define LFM_USDT_EMIT1(name, a)                                              \
  do {                                                                       \
    (void)(a);                                                               \
  } while (0)
#define LFM_USDT_EMIT2(name, a, b)                                           \
  do {                                                                       \
    (void)(a);                                                               \
    (void)(b);                                                               \
  } while (0)

#endif // LFM_USDT_HAVE_SYS_SDT

/// Probe-site macros: cached-bool gate (LFM_USDT env) around the nop-sled
/// note. Rare paths only — never place one on the malloc/free fast path.
#define LFM_PROBE(name)                                                      \
  do {                                                                       \
    if (lfm::usdt::enabled())                                                \
      LFM_USDT_EMIT0(name);                                                  \
  } while (0)
#define LFM_PROBE1(name, a)                                                  \
  do {                                                                       \
    if (lfm::usdt::enabled())                                                \
      LFM_USDT_EMIT1(name, a);                                               \
  } while (0)
#define LFM_PROBE2(name, a, b)                                               \
  do {                                                                       \
    if (lfm::usdt::enabled())                                                \
      LFM_USDT_EMIT2(name, a, b);                                            \
  } while (0)

#else // !LFM_USDT

#define LFM_PROBE(name)                                                      \
  do {                                                                       \
  } while (0)
#define LFM_PROBE1(name, a)                                                  \
  do {                                                                       \
    (void)sizeof(a);                                                         \
  } while (0)
#define LFM_PROBE2(name, a, b)                                               \
  do {                                                                       \
    (void)sizeof(a);                                                         \
    (void)sizeof(b);                                                         \
  } while (0)

#endif // LFM_USDT

#endif // LFMALLOC_SUPPORT_USDT_H
