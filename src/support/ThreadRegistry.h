//===- support/ThreadRegistry.h - Dense thread indices -----------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns every thread a small dense index on first use. The paper says
/// "threads use their thread ids to decide which processor heap to use"
/// (§2.2/§3.1); the allocators map \c threadIndex() onto their processor
/// heaps / arenas. Indices are never reused, which keeps assignment
/// lock-free and async-signal-safe after the first call on a thread.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_THREADREGISTRY_H
#define LFMALLOC_SUPPORT_THREADREGISTRY_H

#include <cstdint>

namespace lfm {

/// \returns this thread's process-unique dense index, assigning one on the
/// first call (a single atomic fetch-add; afterwards a thread-local read).
std::uint32_t threadIndex();

/// \returns the number of thread indices handed out so far. Monotonic;
/// useful for sizing hazard-pointer tables and for stats.
std::uint32_t threadIndexWatermark();

} // namespace lfm

#endif // LFMALLOC_SUPPORT_THREADREGISTRY_H
