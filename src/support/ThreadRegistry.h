//===- support/ThreadRegistry.h - Dense thread indices -----------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns every thread a small dense index on first use. The paper says
/// "threads use their thread ids to decide which processor heap to use"
/// (§2.2/§3.1); the allocators map \c threadIndex() onto their processor
/// heaps / arenas, and the telemetry layer onto its counter shards and
/// per-thread trace rings. Indices are never reused, which keeps assignment
/// lock-free and async-signal-safe after the first call on a thread.
///
/// The lookup is inline: after a thread's first call it is a single
/// thread-local read, cheap enough for the allocator's per-malloc heap
/// selection and the telemetry layer's per-increment shard selection.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_THREADREGISTRY_H
#define LFMALLOC_SUPPORT_THREADREGISTRY_H

#include "support/Platform.h"

#include <cstdint>

namespace lfm {

namespace detail {

/// Sentinel meaning "not yet assigned"; real indices start at 0.
inline constexpr std::uint32_t UnassignedThreadIndex = ~0u;

extern thread_local std::uint32_t CachedThreadIndex;

/// Cold path of threadIndex(): assigns and caches this thread's index
/// (a single atomic fetch-add).
std::uint32_t assignThreadIndex();

} // namespace detail

/// \returns this thread's process-unique dense index, assigning one on the
/// first call (a single atomic fetch-add; afterwards a thread-local read).
inline std::uint32_t threadIndex() {
  const std::uint32_t Cached = detail::CachedThreadIndex;
  if (LFM_LIKELY(Cached != detail::UnassignedThreadIndex))
    return Cached;
  return detail::assignThreadIndex();
}

/// \returns the number of thread indices handed out so far. Monotonic;
/// useful for sizing hazard-pointer tables and for stats.
std::uint32_t threadIndexWatermark();

} // namespace lfm

#endif // LFMALLOC_SUPPORT_THREADREGISTRY_H
