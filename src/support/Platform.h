//===- support/Platform.h - Platform constants and intrinsics ----*- C++ -*-=//
//
// Part of lfmalloc, a reproduction of Michael, "Scalable Lock-Free Dynamic
// Memory Allocation" (PLDI 2004). MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Platform-level constants (cache line, page size) and tiny intrinsics
/// (cpu relax, branch hints) shared by every other module. This is the
/// lowest layer of the library; it must not depend on anything else.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_PLATFORM_H
#define LFMALLOC_SUPPORT_PLATFORM_H

#include <cassert>
#include <cstddef>
#include <cstdint>

namespace lfm {

/// Size in bytes of one destructive-interference cache line. The paper's
/// false-sharing experiments (Active-false / Passive-false, Fig. 8c-d)
/// depend on blocks of different threads landing in the same line, so this
/// constant is load-bearing for the harness as well as for padding.
inline constexpr std::size_t CacheLineSize = 64;

/// Smallest unit the OS page provider deals in. Linux x86-64 base pages.
inline constexpr std::size_t OsPageSize = 4096;

/// Align \p Value up to the next multiple of \p Alignment (a power of two).
constexpr std::uint64_t alignUp(std::uint64_t Value, std::uint64_t Alignment) {
  assert((Alignment & (Alignment - 1)) == 0 && "alignment must be power of 2");
  return (Value + Alignment - 1) & ~(Alignment - 1);
}

/// Align \p Value down to a multiple of \p Alignment (a power of two).
constexpr std::uint64_t alignDown(std::uint64_t Value,
                                  std::uint64_t Alignment) {
  assert((Alignment & (Alignment - 1)) == 0 && "alignment must be power of 2");
  return Value & ~(Alignment - 1);
}

/// \returns true if \p Value is a power of two (and nonzero).
constexpr bool isPowerOf2(std::uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// \returns floor(log2(Value)); \p Value must be nonzero.
constexpr unsigned log2Floor(std::uint64_t Value) {
  assert(Value != 0 && "log2 of zero");
  unsigned Result = 0;
  while (Value >>= 1)
    ++Result;
  return Result;
}

/// \returns ceil(log2(Value)); \p Value must be nonzero.
constexpr unsigned log2Ceil(std::uint64_t Value) {
  return Value <= 1 ? 0 : log2Floor(Value - 1) + 1;
}

/// CPU relax hint for spin loops. On x86 this lowers to `pause`, which both
/// saves power and avoids the memory-order machine clear when the awaited
/// line changes. The paper's spin sites (CAS retry loops) are bounded, but
/// the lock-based baselines spin in earnest and need this.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  asm volatile("" ::: "memory");
#endif
}

#define LFM_LIKELY(x) (__builtin_expect(!!(x), 1))
#define LFM_UNLIKELY(x) (__builtin_expect(!!(x), 0))

} // namespace lfm

#endif // LFMALLOC_SUPPORT_PLATFORM_H
