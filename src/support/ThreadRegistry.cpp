//===- support/ThreadRegistry.cpp - Dense thread indices ------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadRegistry.h"

#include <atomic>

namespace {

std::atomic<std::uint32_t> NextIndex{0};

} // namespace

thread_local std::uint32_t lfm::detail::CachedThreadIndex =
    lfm::detail::UnassignedThreadIndex;

std::uint32_t lfm::detail::assignThreadIndex() {
  CachedThreadIndex = NextIndex.fetch_add(1, std::memory_order_relaxed);
  return CachedThreadIndex;
}

std::uint32_t lfm::threadIndexWatermark() {
  return NextIndex.load(std::memory_order_relaxed);
}
