//===- support/ThreadRegistry.cpp - Dense thread indices ------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadRegistry.h"

#include <atomic>

namespace {

std::atomic<std::uint32_t> NextIndex{0};

// Sentinel meaning "not yet assigned"; real indices start at 0.
constexpr std::uint32_t Unassigned = ~0u;

thread_local std::uint32_t CachedIndex = Unassigned;

} // namespace

std::uint32_t lfm::threadIndex() {
  if (CachedIndex == Unassigned)
    CachedIndex = NextIndex.fetch_add(1, std::memory_order_relaxed);
  return CachedIndex;
}

std::uint32_t lfm::threadIndexWatermark() {
  return NextIndex.load(std::memory_order_relaxed);
}
