//===- support/RuntimeConfig.h - LFM_* environment registry ------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single registry of every `LFM_*` environment variable the library
/// and its tools consume. Each variable has one row here — name, the
/// `lf_malloc_ctl` key it mirrors (when it configures the default
/// allocator), its default, and a help line — so the env surface is
/// documented in exactly one place (docs/API.md renders this table) and
/// scattered ad-hoc getenv calls cannot drift from it.
///
/// The readers are getenv-and-parse only: no allocation, no locks, usable
/// during allocator bootstrap and before main(). Parsing is strict — a
/// malformed value reads as "unset" rather than silently becoming zero.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_RUNTIMECONFIG_H
#define LFMALLOC_SUPPORT_RUNTIMECONFIG_H

#include <cstdint>

namespace lfm {
namespace config {

/// Every recognized LFM_* environment variable.
enum class Var : unsigned {
  // Default-allocator telemetry/profiling options (read at first use).
  Stats,        ///< LFM_STATS: maintain operation counters.
  Trace,        ///< LFM_TRACE: record trace events (implies counters).
  TraceEvents,  ///< LFM_TRACE_EVENTS: per-thread trace-ring capacity.
  Profile,      ///< LFM_PROFILE: attach the sampling heap profiler.
  ProfileRate,  ///< LFM_PROFILE_RATE: mean bytes between samples.
  ProfileSeed,  ///< LFM_PROFILE_SEED: fixed sampler seed.
  ProfileSites, ///< LFM_PROFILE_SITES: site-table capacity.
  ProfileLive,  ///< LFM_PROFILE_LIVE: live-table capacity.
  ProfileDump,  ///< LFM_PROFILE_DUMP: signal-dump path prefix.
  LeakReport,   ///< LFM_LEAK_REPORT: shim registers atexit leak report.

  // Latency observability and background stats export.
  LatencySample,   ///< LFM_LATENCY_SAMPLE: mean ops between latency samples.
  StatsIntervalMs, ///< LFM_STATS_INTERVAL_MS: background exporter period.
  StatsPrefix,     ///< LFM_STATS_PREFIX: exporter artifact path prefix.

  // Out-of-process live inspection.
  ShmStats, ///< LFM_SHM_STATS: lfm-shmstats-v1 segment backing
            ///< (filesystem path, or "1"/"auto"/"memfd" for an anonymous
            ///< memfd); unset disables.
  Usdt,     ///< LFM_USDT: fire USDT tracepoints at runtime (default 1).

  // Contention-and-progress observability.
  ContentionSample,   ///< LFM_CONTENTION_SAMPLE: mean retry-loop executions
                      ///< between contention samples (implies stats).
  ContentionHeat,     ///< LFM_CONTENTION_HEAT: heat-table capacity.
  ContentionWatchdog, ///< LFM_CONTENTION_WATCHDOG: arm the progress
                      ///< watchdog (implies stats).
  ContentionStallMs,  ///< LFM_CONTENTION_STALL_MS: watchdog stall age.
  ContentionStorm,    ///< LFM_CONTENTION_STORM: watchdog storm attempts.

  // Allocation flight recorder (shim; trace/AllocTrace.h).
  TraceRecord, ///< LFM_TRACE_RECORD: record an lfm-alloctrace-v1 file here.
  TraceBufKb,  ///< LFM_TRACE_BUF_KB: recorder append-buffer budget in KiB.

  // Memory-return policy (read at first use, adjustable via ctl).
  RetainMaxBytes, ///< LFM_RETAIN_MAX_BYTES: superblock-cache watermark.
  RetainDecayMs,  ///< LFM_RETAIN_DECAY_MS: decay period; <0 disables.

  // Thread-local magazine cache (read at first use).
  Tcache,        ///< LFM_TCACHE: thread-cache layer on the default allocator.
  TcacheMagSize, ///< LFM_TCACHE_MAG_SIZE: magazine slot cap per size class.

  // Large-object backend (read at first use).
  LargeBackend,   ///< LFM_LARGE_BACKEND: "buddy" (default) or "os".
  BuddySpanBytes, ///< LFM_BUDDY_SPAN_BYTES: reserved bytes per buddy span.

  // Fault injection (test/debug only).
  FailMap, ///< LFM_FAIL_MAP: fail OS maps after N successes.

  // Benchmark harness.
  BenchScale,      ///< LFM_BENCH_SCALE: global duration multiplier.
  BenchSeconds,    ///< LFM_BENCH_SECONDS: per-cell seconds override.
  BenchMaxThreads, ///< LFM_BENCH_MAXTHREADS: thread-axis cap.
  MetricsJson,     ///< LFM_METRICS_JSON: metrics dump path after a run.
  TraceJson,       ///< LFM_TRACE_JSON: trace dump path after a run.

  // Deterministic schedule-exploration harness.
  TestSeed,    ///< LFM_TEST_SEED: base seed for seeded tests.
  SchedSeeds,  ///< LFM_SCHED_SEEDS: schedules explored per test.
  SchedReplay, ///< LFM_SCHED_REPLAY: "seed=S,preempt=P,casfail=F" replay.
};

inline constexpr unsigned NumVars = static_cast<unsigned>(Var::SchedReplay) + 1;

/// One registry row. Everything is a string literal: the table is static
/// const data with no initialization order concerns.
struct VarSpec {
  const char *EnvName; ///< "LFM_..." environment variable name.
  const char *CtlKey;  ///< Matching lf_malloc_ctl key; null when the
                       ///< variable configures a tool, not the allocator.
  const char *Default; ///< Printable default ("0", "unset", "lfm-heap").
  const char *Help;    ///< One-line description.
};

/// \returns the registry row for \p V.
const VarSpec &varSpec(Var V);

/// \returns the raw environment value, or null when unset or empty.
const char *varRaw(Var V);

/// Boolean read: set, non-empty, and not exactly "0".
bool varFlag(Var V);

/// Strict unsigned read (base auto-detected, 0x.. accepted). \returns
/// false — leaving \p Out untouched — when unset or malformed.
bool varU64(Var V, std::uint64_t &Out);

/// Strict signed read; accepts negative values (LFM_RETAIN_DECAY_MS=-1).
bool varI64(Var V, std::int64_t &Out);

/// Strict floating-point read (LFM_BENCH_SCALE=0.25).
bool varF64(Var V, double &Out);

} // namespace config
} // namespace lfm

#endif // LFMALLOC_SUPPORT_RUNTIMECONFIG_H
