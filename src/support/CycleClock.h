//===- support/CycleClock.h - Calibrated cycle-counter clock -----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cheapest monotonic-enough timestamp the hardware offers, for timing
/// individual malloc/free operations: rdtsc on x86-64 (~7 ns, no kernel
/// crossing), the virtual counter on aarch64, clock_gettime(MONOTONIC)
/// elsewhere. Raw ticks are converted to nanoseconds through a ratio
/// calibrated once per process against the OS clock — call calibrate()
/// eagerly from cold setup code so no hot or signal path ever runs the
/// calibration spin.
///
/// Header-only on purpose: a build that never references the latency layer
/// (LFMALLOC_TELEMETRY=OFF) must contain zero object code from it.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_CYCLECLOCK_H
#define LFMALLOC_SUPPORT_CYCLECLOCK_H

#include "support/Timing.h"

#include <atomic>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace lfm {
namespace cycleclock {

/// Raw tick counter. Monotonic per core; modern x86 TSCs are invariant and
/// synchronized across cores, and the aarch64 virtual counter is
/// architecturally global. The clock_gettime fallback is ticks == ns.
inline std::uint64_t now() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t V;
  asm volatile("mrs %0, cntvct_el0" : "=r"(V));
  return V;
#else
  return monotonicNanos();
#endif
}

namespace detail {
/// Nanoseconds per tick, as a 32.32 fixed-point ratio so conversion is one
/// multiply and a shift — no floating point on the recording path. Zero
/// until calibrated.
inline std::atomic<std::uint64_t> NanosPerTickFixed{0};

inline std::uint64_t calibrateSlow() {
#if defined(__x86_64__) || defined(__i386__) || defined(__aarch64__)
  // Spin for ~200 us against the OS clock. Short enough for allocator
  // construction, long enough that the two clock reads' own latency
  // (tens of ns) contributes well under 0.1% error.
  const std::uint64_t T0 = now();
  const std::uint64_t N0 = monotonicNanos();
  std::uint64_t N1;
  do {
    N1 = monotonicNanos();
  } while (N1 - N0 < 200'000);
  const std::uint64_t T1 = now();
  const std::uint64_t Ticks = T1 - T0;
  const std::uint64_t Ratio =
      Ticks > 0 ? ((N1 - N0) << 32) / Ticks : (std::uint64_t{1} << 32);
  return Ratio != 0 ? Ratio : 1;
#else
  return std::uint64_t{1} << 32; // Fallback ticks are already ns.
#endif
}
} // namespace detail

/// Calibrates the tick→ns ratio (idempotent; racing callers both compute
/// it and one wins — the values agree to calibration noise). Call from
/// setup code, never from a signal handler.
inline void calibrate() {
  if (detail::NanosPerTickFixed.load(std::memory_order_relaxed) != 0)
    return;
  const std::uint64_t R = detail::calibrateSlow();
  std::uint64_t Expected = 0;
  detail::NanosPerTickFixed.compare_exchange_strong(
      Expected, R, std::memory_order_relaxed);
}

/// Converts a tick delta to nanoseconds. Requires a prior calibrate();
/// falls back to treating ticks as nanoseconds if none happened.
inline std::uint64_t ticksToNanos(std::uint64_t Ticks) {
  const std::uint64_t R =
      detail::NanosPerTickFixed.load(std::memory_order_relaxed);
  if (R == 0)
    return Ticks;
  // 128-bit multiply so multi-second deltas cannot overflow.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(Ticks) * R) >> 32);
}

} // namespace cycleclock
} // namespace lfm

#endif // LFMALLOC_SUPPORT_CYCLECLOCK_H
