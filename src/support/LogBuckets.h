//===- support/LogBuckets.h - Shared log-linear bucket math ------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one definition of the log-linear (HdrHistogram-style) bucket layout
/// used by every histogram in the tree: the bench-side LogHistogram and the
/// allocator-side latency histograms index with the same math, so a p99
/// reported by a bench and a p99 scraped out of the allocator are
/// comparable bucket-for-bucket.
///
/// Layout: each power-of-two "major" range [2^e, 2^(e+1)) is split into
/// NumMinor equal "minor" sub-buckets, giving a constant relative error of
/// 1/NumMinor (12.5%) across the whole 64-bit domain. Values below
/// NumMinor get exact singleton buckets. Everything here is constexpr and
/// allocation-free; the hot-path cost of bucketIndex() is one CLZ plus a
/// shift.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_LOGBUCKETS_H
#define LFMALLOC_SUPPORT_LOGBUCKETS_H

#include "support/Platform.h"

#include <cstdint>

namespace lfm {
namespace logbuckets {

/// Sub-buckets per power-of-two range (as a power of two).
inline constexpr unsigned MinorBits = 3;
inline constexpr unsigned NumMinor = 1u << MinorBits;

/// Total bucket count. Indices 0..NumMinor-1 are the exact singletons;
/// every exponent e in [MinorBits, 63] contributes NumMinor buckets at
/// group (e - MinorBits + 1).
inline constexpr unsigned NumBuckets = (64 - MinorBits + 1) * NumMinor;

/// \returns the bucket index of \p V. Total order preserving: V <= W
/// implies bucketIndex(V) <= bucketIndex(W).
constexpr unsigned bucketIndex(std::uint64_t V) {
  if (V < NumMinor)
    return static_cast<unsigned>(V);
  const unsigned Exp = log2Floor(V);
  const unsigned Sub =
      static_cast<unsigned>(V >> (Exp - MinorBits)) & (NumMinor - 1);
  return (Exp - MinorBits + 1) * NumMinor + Sub;
}

/// Inclusive lower bound of bucket \p I.
constexpr std::uint64_t bucketLower(unsigned I) {
  if (I < NumMinor)
    return I;
  const unsigned Exp = I / NumMinor + MinorBits - 1;
  const std::uint64_t Sub = I % NumMinor;
  return (std::uint64_t{1} << Exp) | (Sub << (Exp - MinorBits));
}

/// Exclusive upper bound of bucket \p I (saturates at UINT64_MAX for the
/// final bucket, whose true bound 2^64 is unrepresentable).
constexpr std::uint64_t bucketUpper(unsigned I) {
  if (I >= NumBuckets - 1)
    return ~std::uint64_t{0};
  if (I < NumMinor)
    return I + 1;
  const unsigned Exp = I / NumMinor + MinorBits - 1;
  return bucketLower(I) + (std::uint64_t{1} << (Exp - MinorBits));
}

/// \returns the index of the bucket containing the rank-\p Q sample of the
/// \p Total samples counted in \p Counts (0.5 = median), or 0 when empty.
/// The quantile value is then bracketed by that bucket's bounds — the
/// "exact bucket bound" contract the latency tests assert.
inline unsigned quantileBucket(const std::uint64_t *Counts,
                               std::uint64_t Total, double Q) {
  if (Total == 0)
    return 0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  const std::uint64_t Rank =
      static_cast<std::uint64_t>(Q * static_cast<double>(Total - 1));
  std::uint64_t Seen = 0;
  unsigned Last = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    if (Counts[I] == 0)
      continue;
    Last = I;
    if (Seen + Counts[I] > Rank)
      return I;
    Seen += Counts[I];
  }
  return Last; // Racy under-count of Total; clamp to the top sample.
}

/// Linear interpolation of the rank-\p Q sample within its bucket (uniform
/// within-bucket assumption). Exact for the singleton buckets.
inline std::uint64_t quantileInterpolated(const std::uint64_t *Counts,
                                          std::uint64_t Total, double Q) {
  if (Total == 0)
    return 0;
  const unsigned I = quantileBucket(Counts, Total, Q);
  const std::uint64_t Lo = bucketLower(I);
  const std::uint64_t Hi = bucketUpper(I);
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  const std::uint64_t Rank =
      static_cast<std::uint64_t>(Q * static_cast<double>(Total - 1));
  std::uint64_t Seen = 0;
  for (unsigned J = 0; J < I; ++J)
    Seen += Counts[J];
  const std::uint64_t InBucket = Counts[I];
  if (InBucket == 0 || Rank < Seen)
    return Lo;
  const double Frac = static_cast<double>(Rank - Seen) /
                      static_cast<double>(InBucket);
  return Lo + static_cast<std::uint64_t>(Frac *
                                         static_cast<double>(Hi - Lo));
}

static_assert(bucketIndex(0) == 0 && bucketIndex(7) == 7 &&
                  bucketIndex(8) == 8 && bucketIndex(15) == 15 &&
                  bucketIndex(16) == 16,
              "singleton and first-group buckets must be exact");
static_assert(bucketIndex(~std::uint64_t{0}) == NumBuckets - 1,
              "the largest value must land in the last bucket");
static_assert(bucketLower(NumBuckets - 1) <= ~std::uint64_t{0} &&
                  bucketUpper(NumBuckets - 1) == ~std::uint64_t{0},
              "final bucket saturates");
static_assert(bucketLower(bucketIndex(1000)) <= 1000 &&
                  1000 < bucketUpper(bucketIndex(1000)),
              "bounds must bracket their values");

} // namespace logbuckets
} // namespace lfm

#endif // LFMALLOC_SUPPORT_LOGBUCKETS_H
