//===- support/SpinLock.h - Lightweight user-level locks ---------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "lightweight test-and-set mutual exclusion lock" of the paper's
/// Section 4: the lock-based baseline allocators (Hoard-like, Ptmalloc-like,
/// SerialLockMalloc) are built on these locks, exactly as the paper replaced
/// pthread mutexes in Hoard/Ptmalloc with hand-coded lightweight locks for a
/// fair comparison.
///
/// Memory-order mapping of the paper's PowerPC fences: lock acquisition ends
/// with an acquire barrier (the paper's `isync`) and release begins with a
/// release barrier (the paper's `eieio`). C++20 `memory_order_acquire` /
/// `memory_order_release` express precisely that.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_SPINLOCK_H
#define LFMALLOC_SUPPORT_SPINLOCK_H

#include "support/Platform.h"

#include <atomic>
#include <cstdint>

namespace lfm {

/// Test-and-test-and-set spinlock with capped exponential backoff.
///
/// This is deliberately a *user-level* spinlock with no kernel assistance:
/// the paper's robustness experiments hinge on the fact that such locks
/// suffer lock-holder preemption when threads outnumber processors, while
/// the lock-free allocator does not. Sized and aligned to one cache line so
/// adjacent locks never false-share.
class alignas(CacheLineSize) TasLock {
public:
  TasLock() = default;
  TasLock(const TasLock &) = delete;
  TasLock &operator=(const TasLock &) = delete;

  /// Acquires the lock, spinning with backoff until available.
  void lock() {
    // Fast path: a single uncontended RMW.
    if (LFM_LIKELY(!Flag.exchange(true, std::memory_order_acquire)))
      return;
    lockSlow();
  }

  /// Tries to acquire without spinning. \returns true on success.
  bool tryLock() {
    // Test first so a failed try is read-only and does not bounce the line.
    if (Flag.load(std::memory_order_relaxed))
      return false;
    return !Flag.exchange(true, std::memory_order_acquire);
  }

  /// Releases the lock. Caller must hold it.
  void unlock() { Flag.store(false, std::memory_order_release); }

  /// \returns true if some thread currently holds the lock (racy snapshot;
  /// useful only for stats and assertions).
  bool isLocked() const { return Flag.load(std::memory_order_relaxed); }

private:
  void lockSlow() {
    std::uint32_t Backoff = 1;
    for (;;) {
      // Spin read-only on the cached line until the lock looks free.
      while (Flag.load(std::memory_order_relaxed)) {
        for (std::uint32_t I = 0; I < Backoff; ++I)
          cpuRelax();
        if (Backoff < MaxBackoff)
          Backoff <<= 1;
      }
      if (!Flag.exchange(true, std::memory_order_acquire))
        return;
    }
  }

  static constexpr std::uint32_t MaxBackoff = 1024;

  std::atomic<bool> Flag{false};
};

/// RAII guard for any lock with lock()/unlock().
template <typename LockT> class LockGuard {
public:
  explicit LockGuard(LockT &L) : Lock(L) { Lock.lock(); }
  ~LockGuard() { Lock.unlock(); }
  LockGuard(const LockGuard &) = delete;
  LockGuard &operator=(const LockGuard &) = delete;

private:
  LockT &Lock;
};

/// FIFO ticket lock. Used in tests as a fairness reference point and by the
/// ablation benches; the baselines use TasLock to match the paper's setup.
class alignas(CacheLineSize) TicketLock {
public:
  TicketLock() = default;
  TicketLock(const TicketLock &) = delete;
  TicketLock &operator=(const TicketLock &) = delete;

  void lock() {
    const std::uint32_t My = Next.fetch_add(1, std::memory_order_relaxed);
    while (Serving.load(std::memory_order_acquire) != My)
      cpuRelax();
  }

  void unlock() {
    Serving.store(Serving.load(std::memory_order_relaxed) + 1,
                  std::memory_order_release);
  }

private:
  std::atomic<std::uint32_t> Next{0};
  std::atomic<std::uint32_t> Serving{0};
};

} // namespace lfm

#endif // LFMALLOC_SUPPORT_SPINLOCK_H
