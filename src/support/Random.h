//===- support/Random.h - Fast deterministic PRNGs ---------------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small, fast, seedable PRNGs for the benchmark workloads. The Larson and
/// Producer-consumer benchmarks (paper §4.1) select random block sizes and
/// random victim slots on the allocation hot path, so the generator must be
/// a handful of instructions and must not share state across threads.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_RANDOM_H
#define LFMALLOC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace lfm {

/// SplitMix64: used to expand a small seed into well-mixed state for
/// XorShift. One round is a complete avalanche of the input.
constexpr std::uint64_t splitMix64(std::uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  std::uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// xorshift128+ generator: fast, passes BigCrush except two linearity tests,
/// far more than adequate for workload shuffling. Not cryptographic.
class XorShift128 {
public:
  /// Seeds the generator; distinct seeds give independent-looking streams.
  /// A zero seed is remapped (all-zero state is a fixed point of xorshift).
  explicit XorShift128(std::uint64_t Seed = 0x853c49e6748fea9bULL) {
    std::uint64_t Mix = Seed ? Seed : 0x9e3779b97f4a7c15ULL;
    S0 = splitMix64(Mix);
    S1 = splitMix64(Mix);
  }

  /// \returns the next 64 random bits.
  std::uint64_t next() {
    std::uint64_t X = S0;
    const std::uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// \returns a uniform value in [0, Bound). \p Bound must be nonzero.
  /// Uses Lemire's multiply-shift reduction (no modulo on the hot path).
  std::uint64_t nextBounded(std::uint64_t Bound) {
    assert(Bound != 0 && "bound must be nonzero");
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// \returns a uniform value in [Lo, Hi] inclusive. Requires Lo <= Hi.
  std::uint64_t nextInRange(std::uint64_t Lo, std::uint64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + nextBounded(Hi - Lo + 1);
  }

private:
  std::uint64_t S0;
  std::uint64_t S1;
};

} // namespace lfm

#endif // LFMALLOC_SUPPORT_RANDOM_H
