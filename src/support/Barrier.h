//===- support/Barrier.h - Sense-reversing thread barrier --------*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable sense-reversing spin barrier. The benchmark driver lines all
/// worker threads up on one of these before starting the timed region, so
/// thread-creation cost never pollutes a measurement (the paper times only
/// the parallel phase of each benchmark).
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_BARRIER_H
#define LFMALLOC_SUPPORT_BARRIER_H

#include "support/Platform.h"

#include <atomic>
#include <cassert>
#include <cstdint>

namespace lfm {

/// Spin barrier for a fixed set of participants; reusable across phases.
///
/// On a machine with fewer cores than participants pure spinning would
/// deadlock-by-starvation, so after a bounded spin each waiter yields the
/// processor. That keeps the barrier correct under the oversubscribed
/// configurations the harness uses to emulate a 16-way machine.
class SpinBarrier {
public:
  explicit SpinBarrier(std::uint32_t NumThreads) : Count(NumThreads) {
    assert(NumThreads > 0 && "barrier needs at least one participant");
  }
  SpinBarrier(const SpinBarrier &) = delete;
  SpinBarrier &operator=(const SpinBarrier &) = delete;

  /// Blocks until all participants have arrived. The last arrival flips the
  /// sense and releases everyone.
  void arriveAndWait() {
    const bool MySense = !Sense.load(std::memory_order_relaxed);
    if (Arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == Count) {
      Arrived.store(0, std::memory_order_relaxed);
      Sense.store(MySense, std::memory_order_release);
      return;
    }
    std::uint32_t Spins = 0;
    while (Sense.load(std::memory_order_acquire) != MySense) {
      cpuRelax();
      if (++Spins >= YieldThreshold) {
        Spins = 0;
        yieldThread();
      }
    }
  }

private:
  static void yieldThread();

  static constexpr std::uint32_t YieldThreshold = 256;

  const std::uint32_t Count;
  std::atomic<std::uint32_t> Arrived{0};
  std::atomic<bool> Sense{false};
};

} // namespace lfm

#endif // LFMALLOC_SUPPORT_BARRIER_H
