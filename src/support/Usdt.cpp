//===- support/Usdt.cpp - USDT runtime gate -------------------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Usdt.h"

#if LFM_USDT

#include "support/RuntimeConfig.h"

bool lfm::usdt::enabledSlow() {
  // Probes default on: their cost is one nop behind this cached bool, and
  // consumers expect an LD_PRELOAD'd binary to be traceable without extra
  // configuration. LFM_USDT=0 opts a process out.
  std::uint64_t V = 1;
  lfm::config::varU64(lfm::config::Var::Usdt, V);
  return V != 0;
}

#endif // LFM_USDT
