//===- support/Timing.cpp - Monotonic clocks ------------------------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Timing.h"

#include <ctime>

std::uint64_t lfm::monotonicNanos() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return static_cast<std::uint64_t>(Ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(Ts.tv_nsec);
}
