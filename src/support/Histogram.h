//===- support/Histogram.h - Latency histograms and summaries ----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A log-bucketed histogram and a streaming summary, used by the latency
/// benches (§4.2.1 of the paper reports per-pair malloc/free nanoseconds)
/// and by the workload self-checks in tests.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_HISTOGRAM_H
#define LFMALLOC_SUPPORT_HISTOGRAM_H

#include "support/LogBuckets.h"

#include <array>
#include <cstdint>
#include <string>

namespace lfm {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
class StreamingStats {
public:
  /// Folds one sample into the summary.
  void add(double Sample);

  /// Merges another summary into this one (parallel reduction).
  void merge(const StreamingStats &Other);

  std::uint64_t count() const { return Count; }
  double min() const { return Count ? Min : 0.0; }
  double max() const { return Count ? Max : 0.0; }
  double mean() const { return Count ? Mean : 0.0; }

  /// Sample standard deviation; 0 for fewer than two samples.
  double stddev() const;

private:
  std::uint64_t Count = 0;
  double Min = 0.0;
  double Max = 0.0;
  double Mean = 0.0;
  double M2 = 0.0;
};

/// Log-linear bucketed histogram of nonnegative 64-bit samples, on the
/// shared support/LogBuckets.h layout (12.5% relative resolution) — the
/// same buckets the allocator's in-process latency histograms use, so a
/// bench-reported p99 and a scraped allocator p99 are comparable
/// bucket-for-bucket. Cheap enough for per-op latency recording.
class LogHistogram {
public:
  static constexpr unsigned NumBuckets = logbuckets::NumBuckets;

  /// Records one sample.
  void add(std::uint64_t Sample);

  /// Merges another histogram into this one.
  void merge(const LogHistogram &Other);

  std::uint64_t count() const { return Total; }

  /// \returns an approximate quantile (e.g. Q=0.5 for the median) assuming
  /// uniform distribution within a bucket; exact for the singleton buckets.
  std::uint64_t quantile(double Q) const;

  /// Renders a compact textual summary ("p50=… p90=… p99=… max=…").
  std::string summary() const;

private:
  std::array<std::uint64_t, NumBuckets> Buckets{};
  std::uint64_t Total = 0;
};

} // namespace lfm

#endif // LFMALLOC_SUPPORT_HISTOGRAM_H
