//===- support/Histogram.h - Latency histograms and summaries ----*- C++ -*-=//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A log-bucketed histogram and a streaming summary, used by the latency
/// benches (§4.2.1 of the paper reports per-pair malloc/free nanoseconds)
/// and by the workload self-checks in tests.
///
//===----------------------------------------------------------------------===//

#ifndef LFMALLOC_SUPPORT_HISTOGRAM_H
#define LFMALLOC_SUPPORT_HISTOGRAM_H

#include <array>
#include <cstdint>
#include <string>

namespace lfm {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
class StreamingStats {
public:
  /// Folds one sample into the summary.
  void add(double Sample);

  /// Merges another summary into this one (parallel reduction).
  void merge(const StreamingStats &Other);

  std::uint64_t count() const { return Count; }
  double min() const { return Count ? Min : 0.0; }
  double max() const { return Count ? Max : 0.0; }
  double mean() const { return Count ? Mean : 0.0; }

  /// Sample standard deviation; 0 for fewer than two samples.
  double stddev() const;

private:
  std::uint64_t Count = 0;
  double Min = 0.0;
  double Max = 0.0;
  double Mean = 0.0;
  double M2 = 0.0;
};

/// Power-of-two bucketed histogram of nonnegative 64-bit samples
/// (bucket B holds samples in [2^B, 2^(B+1))). Cheap enough for per-op
/// latency recording; supports approximate quantiles.
class LogHistogram {
public:
  static constexpr unsigned NumBuckets = 64;

  /// Records one sample.
  void add(std::uint64_t Sample);

  /// Merges another histogram into this one.
  void merge(const LogHistogram &Other);

  std::uint64_t count() const { return Total; }

  /// \returns an approximate quantile (e.g. Q=0.5 for the median) assuming
  /// uniform distribution within a bucket; exact for min/max buckets.
  std::uint64_t quantile(double Q) const;

  /// Renders a compact textual summary ("p50=… p90=… p99=… max=…").
  std::string summary() const;

private:
  std::array<std::uint64_t, NumBuckets> Buckets{};
  std::uint64_t Total = 0;
};

} // namespace lfm

#endif // LFMALLOC_SUPPORT_HISTOGRAM_H
