//===- support/Barrier.cpp - Sense-reversing thread barrier ---------------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "support/Barrier.h"

#include <sched.h>

void lfm::SpinBarrier::yieldThread() { sched_yield(); }
