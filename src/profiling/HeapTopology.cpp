//===- profiling/HeapTopology.cpp - Topology JSON serialization -----------===//
//
// Part of lfmalloc. MIT license; see LICENSE.
//
//===----------------------------------------------------------------------===//

#include "profiling/HeapTopology.h"

#include "telemetry/JsonWriter.h"

using namespace lfm;
using namespace lfm::profiling;

const char *lfm::profiling::sbStateLabel(std::uint8_t State) {
  switch (State) {
  case 0:
    return "active";
  case 1:
    return "full";
  case 2:
    return "partial";
  case 3:
    return "empty";
  default:
    return "invalid";
  }
}

void lfm::profiling::writeTopologyJson(const TopologySnapshot &T,
                                       const SbMapEntry *Map,
                                       std::size_t MapCount,
                                       std::uint64_t TruncatedCount,
                                       std::FILE *Out) {
  telemetry::JsonWriter W(Out);
  W.beginObject();
  W.field("schema", "lfm-heaptopology-v1");
  W.key("config");
  W.beginObject();
  W.field("superblock_bytes", std::uint64_t{T.SuperblockBytes});
  W.field("class_count", std::uint64_t{T.ClassCount});
  W.field("profiler_attached", T.ProfilerAttached);
  W.field("retain_max_bytes", T.RetainMaxBytes);
  W.field("retain_decay_ms", T.RetainDecayMs);
  W.endObject();

  W.key("space");
  W.beginObject();
  W.field("bytes_in_use", T.Space.BytesInUse);
  W.field("peak_bytes", T.Space.PeakBytes);
  W.field("map_calls", T.Space.MapCalls);
  W.field("unmap_calls", T.Space.UnmapCalls);
  W.endObject();

  // The large-object backend's spans sit outside the superblock
  // topology below; this section is their whole footprint story.
  W.key("large_backend");
  W.beginObject();
  W.field("kind", T.LargeBackendState.Buddy ? "buddy" : "os");
  W.field("spans_reserved", T.LargeBackendState.SpansReserved);
  W.field("span_bytes", T.LargeBackendState.SpanBytes);
  W.field("bytes_reserved", T.LargeBackendState.BytesReserved);
  W.field("bytes_committed", T.LargeBackendState.BytesCommitted);
  W.field("bytes_allocated", T.LargeBackendState.BytesAllocated);
  W.field("free_committed_bytes", T.LargeBackendState.FreeCommittedBytes);
  W.field("min_order_bytes", T.LargeBackendState.MinOrderBytes);
  W.key("free_bytes_by_order");
  W.beginArray();
  for (std::uint64_t O = 0; O < T.LargeBackendState.NumOrders; ++O)
    W.value(T.LargeBackendState.FreeBytesByOrder[O]);
  W.endArray();
  W.endObject();

  W.key("totals");
  W.beginObject();
  W.field("superblocks", T.TotalSuperblocks);
  W.field("blocks", T.TotalBlocks);
  W.field("used_blocks", T.TotalUsedBlocks);
  W.field("tcache_cached_blocks", T.TcacheCachedBlocks);
  W.field("cached_superblocks", T.CachedSuperblocks);
  W.field("retained_bytes", T.RetainedBytes);
  W.field("decommitted_superblocks", T.DecommittedSuperblocks);
  W.field("parked_hyperblocks", T.ParkedHyperblocks);
  W.field("descriptors_minted", T.DescriptorsMinted);
  W.fieldDouble("ext_frag", T.externalFragRatio());
  if (T.ProfilerAttached)
    W.fieldDouble("int_frag", T.internalFragRatio());
  W.endObject();

  W.key("classes");
  W.beginArray();
  for (unsigned C = 0; C < T.ClassCount; ++C) {
    const ClassTopology &Cl = T.Classes[C];
    W.beginObject();
    W.field("class", std::uint64_t{C});
    W.field("block_size", std::uint64_t{Cl.BlockSize});
    W.field("superblocks", Cl.Superblocks);
    W.key("states");
    W.beginObject();
    W.field("active", Cl.ActiveSbs);
    W.field("full", Cl.FullSbs);
    W.field("partial", Cl.PartialSbs);
    W.endObject();
    W.field("blocks", Cl.TotalBlocks);
    W.field("used_blocks", Cl.UsedBlocks);
    W.field("cached_blocks", Cl.CachedBlocks);
    W.field("free_blocks", Cl.freeBlocks());
    W.fieldDouble("ext_frag", Cl.externalFragRatio(T.SuperblockBytes));
    if (T.ProfilerAttached && Cl.LiveEstBlockBytes != 0) {
      W.fieldDouble("int_frag", Cl.internalFragRatio());
      W.field("live_est_req_bytes", Cl.LiveEstReqBytes);
      W.field("live_est_block_bytes", Cl.LiveEstBlockBytes);
    }
    W.key("occupancy_hist");
    W.beginArray();
    for (unsigned B = 0; B < TopoOccBuckets; ++B)
      W.value(Cl.OccHist[B]);
    W.endArray();
    W.endObject();
  }
  W.endArray();

  if (T.ProfilerAttached) {
    W.key("large");
    W.beginObject();
    W.field("live_est_req_bytes", T.LargeLiveEstReqBytes);
    W.field("live_est_block_bytes", T.LargeLiveEstBlockBytes);
    W.endObject();
  }

  W.key("heap_map");
  W.beginArray();
  char Addr[2 + 16 + 1];
  for (std::size_t I = 0; I < MapCount; ++I) {
    const SbMapEntry &E = Map[I];
    W.beginObject();
    std::snprintf(Addr, sizeof(Addr), "0x%llx",
                  static_cast<unsigned long long>(E.Addr));
    W.field("addr", static_cast<const char *>(Addr));
    W.field("block_size", std::uint64_t{E.BlockSize});
    W.field("state", sbStateLabel(E.State));
    W.field("used", std::uint64_t{E.Used});
    W.field("max", std::uint64_t{E.MaxCount});
    W.endObject();
  }
  W.endArray();
  W.field("heap_map_truncated", TruncatedCount);
  W.endObject();
  std::fputc('\n', Out);
}
